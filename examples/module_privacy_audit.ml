(* Module privacy in practice: choose what to hide so a proprietary
   module's function cannot be reverse-engineered from provenance, then
   attack it to verify (paper Sec. 3 + experiment E8's machinery).

   Run with: dune exec examples/module_privacy_audit.exe *)

open Wfpriv_workflow
open Wfpriv_privacy

let section title = Printf.printf "\n### %s\n\n%!" title

(* A proprietary risk model: (genotype in 0..7, age band in 0..3) ->
   (risk class in 0..3, follow-up flag). *)
let risk_model =
  Module_privacy.of_function
    ~inputs:
      [ Module_privacy.int_attr "genotype" 8; Module_privacy.int_attr "age" 4 ]
    ~outputs:
      [ Module_privacy.int_attr "risk" 4; Module_privacy.int_attr "followup" 2 ]
    (fun x ->
      let v i = match x.(i) with Data_value.Int n -> n | _ -> 0 in
      let risk = (v 0 + (v 1 * 2)) mod 4 in
      [| Data_value.Int risk; Data_value.Int (if risk >= 2 then 1 else 0) |])

let () =
  section "The proprietary module's relation (first rows)";
  let rows = Module_privacy.rows risk_model in
  List.iteri
    (fun i (x, y) ->
      if i < 6 then
        Printf.printf "  genotype=%s age=%s  ->  risk=%s followup=%s\n"
          (Data_value.to_string x.(0))
          (Data_value.to_string x.(1))
          (Data_value.to_string y.(0))
          (Data_value.to_string y.(1)))
    rows;
  Printf.printf "  ... (%d rows total)\n" (Module_privacy.nb_rows risk_model);

  section "Without hiding, provenance fully reveals the module";
  Printf.printf "Γ with nothing hidden: %d (adversary pins every input)\n"
    (Module_privacy.privacy_level risk_model ~hidden:[]);

  section "Choosing a minimum-cost Γ-safe hidden set";
  (* Hiding the risk class is expensive for users; the flag is cheap. *)
  let weights = function
    | "risk" -> 10
    | "followup" -> 1
    | "genotype" -> 4
    | "age" -> 2
    | _ -> 1
  in
  List.iter
    (fun gamma ->
      match Module_privacy.optimal_hiding ~weights risk_model ~gamma with
      | Some hidden ->
          Printf.printf "  Γ=%-3d  hide {%s}  cost %d\n" gamma
            (String.concat ", " hidden)
            (Module_privacy.hiding_cost weights hidden)
      | None -> Printf.printf "  Γ=%-3d  unachievable\n" gamma)
    [ 2; 4; 8 ];

  section "Attacking the published provenance";
  let attack gamma =
    let hidden =
      match Module_privacy.optimal_hiding ~weights risk_model ~gamma with
      | Some h -> h
      | None -> []
    in
    (* Worst case: the adversary has watched every input execute. *)
    let all_inputs = List.map fst rows in
    let a =
      Audit.assess risk_model (Audit.observe risk_model ~hidden all_inputs)
    in
    Printf.printf
      "  hidden {%s}: adversary pins %d/%d inputs (%.0f%%), worst-case \
       candidates %d\n"
      (String.concat ", " hidden)
      a.Audit.pinned a.Audit.domain_size
      (100.0 *. a.Audit.recovered_fraction)
      a.Audit.min_candidates
  in
  Printf.printf "no hiding:\n";
  let all_inputs = List.map fst rows in
  let a0 = Audit.assess risk_model (Audit.observe risk_model ~hidden:[] all_inputs) in
  Printf.printf "  adversary pins %d/%d inputs (%.0f%%)\n" a0.Audit.pinned
    a0.Audit.domain_size
    (100.0 *. a0.Audit.recovered_fraction);
  Printf.printf "with Γ-safe hiding:\n";
  List.iter attack [ 2; 4; 8 ];

  section "Workflow-level composition: hide once, hidden everywhere";
  (* Downstream scheduler consumes the risk class; its table shares the
     "risk" attribute. Hiding "risk" protects both modules at once. *)
  let scheduler =
    Module_privacy.of_function
      ~inputs:[ Module_privacy.int_attr "risk" 4 ]
      ~outputs:[ Module_privacy.int_attr "slot" 4 ]
      (fun x ->
        match x.(0) with
        | Data_value.Int r -> [| Data_value.Int (3 - r) |]
        | _ -> [| Data_value.Int 0 |])
  in
  let network =
    Module_privacy.make_network [ (Ids.m 1, risk_model); (Ids.m 2, scheduler) ]
  in
  (match Module_privacy.optimal_network_hiding network ~gamma:4 with
  | Some hidden ->
      Printf.printf "network-wide Γ=4 hidden set: {%s}\n"
        (String.concat ", " hidden);
      List.iter
        (fun (m, level) ->
          Printf.printf "  %s reaches Γ=%d\n" (Ids.module_name m) level)
        (Module_privacy.network_privacy_level network ~hidden)
  | None -> Printf.printf "Γ=4 unachievable network-wide\n");

  section "The catch: what if the scheduler's behaviour is public knowledge?";
  (* The network analysis above treats both modules as private. If the
     scheduler is a textbook step the adversary knows, its visible output
     lets them invert the hidden risk class — the possible-worlds
     analysis quantifies the collapse. (Exact world enumeration is
     exponential, so this section uses a reduced model: genotype alone
     drives risk.) *)
  let small_risk =
    Module_privacy.of_function
      ~inputs:[ Module_privacy.int_attr "genotype" 4 ]
      ~outputs:[ Module_privacy.int_attr "risk" 4 ]
      (fun x ->
        match x.(0) with
        | Data_value.Int g -> [| Data_value.Int ((g + 1) mod 4) |]
        | _ -> assert false)
  in
  let small_scheduler =
    Module_privacy.of_function
      ~inputs:[ Module_privacy.int_attr "risk" 4 ]
      ~outputs:[ Module_privacy.int_attr "slot" 4 ]
      (fun x ->
        match x.(0) with
        | Data_value.Int r -> [| Data_value.Int (3 - r) |]
        | _ -> assert false)
  in
  let pipeline downstream_visibility =
    Workflow_privacy.make ~t_sources:[ "genotype" ]
      [
        {
          Workflow_privacy.w_id = Ids.m 1;
          w_table = small_risk;
          w_visibility = Workflow_privacy.Private;
        };
        {
          Workflow_privacy.w_id = Ids.m 2;
          w_table = small_scheduler;
          w_visibility = downstream_visibility;
        };
      ]
  in
  List.iter
    (fun (label, vis) ->
      let p = pipeline vis in
      let hidden = [ "risk" ] in
      let standalone =
        List.assoc (Ids.m 1) (Workflow_privacy.standalone_gamma p ~hidden)
      in
      let workflow = List.assoc (Ids.m 1) (Workflow_privacy.gamma p ~hidden) in
      Printf.printf
        "  scheduler %-8s hiding {risk}: standalone Γ=%d, workflow Γ=%d%s\n"
        label standalone workflow
        (if workflow < standalone then "  <- the leak" else ""))
    [ ("private:", Workflow_privacy.Private); ("public:", Workflow_privacy.Public) ];
  Printf.printf
    "lesson: a Γ-safe hidden set must be re-validated against every public\n\
     module that consumes the hidden data (experiment E12).\n"
