(* Privacy-integrated keyword search over a repository: the same store
   answers users at different privilege levels with views capped at their
   access rights, ranked by TF/IDF with optional privacy-aware score
   quantisation (paper Sec. 4, Fig. 5).

   Run with: dune exec examples/keyword_search.exe *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Disease = Wfpriv_workloads.Disease
module Synthetic = Wfpriv_workloads.Synthetic
module Rng = Wfpriv_workloads.Rng

let section title = Printf.printf "\n### %s\n\n%!" title

let () =
  (* A repository with the disease workflow plus two synthetic ones. *)
  let repo = Repository.create () in
  let disease_policy =
    Policy.make ~expand_levels:[ ("W2", 1); ("W3", 2); ("W4", 2) ] Disease.spec
  in
  Repository.add repo ~name:"disease-susceptibility" ~policy:disease_policy
    ~executions:[ Disease.run () ] ();
  let rng = Rng.create 17 in
  List.iter
    (fun name ->
      let spec = Synthetic.spec rng Synthetic.default_params in
      let assignments =
        Spec.workflow_ids spec
        |> List.filter (fun w -> w <> Spec.root spec)
        |> List.map (fun w -> (w, 1))
      in
      Repository.add repo ~name
        ~policy:(Policy.make ~expand_levels:assignments spec)
        ())
    [ "variant-calling"; "cohort-imaging" ];
  Printf.printf "repository entries: %s\n"
    (String.concat ", " (Repository.names repo));

  section "The paper's Fig. 5 query, as an admin (level 2)";
  let hits =
    Repository.keyword_search repo ~level:2 ~strategy:`Specific
      [ "database"; "disorder risk" ]
  in
  List.iter
    (fun h ->
      Printf.printf "hit: %s (score %.2f)\n" h.Repository.entry_name
        h.Repository.score;
      Format.printf "%a@." View.pp h.Repository.answer.Keyword.view)
    hits;

  section "Same query as a public user (level 0)";
  let hits0 =
    Repository.keyword_search repo ~level:0 ~strategy:`Specific
      [ "database"; "disorder risk" ]
  in
  (match hits0 with
  | [] ->
      Printf.printf
        "no hits: the witnesses live inside W2/W4, invisible at level 0.\n"
  | hs ->
      List.iter
        (fun h ->
          Printf.printf "hit: %s — capped view prefix {%s}\n"
            h.Repository.entry_name
            (String.concat ", " (View.prefix h.Repository.answer.Keyword.view)))
        hs);

  section "A structural query against stored executions";
  let q = Query_ast.before_by_name "Expand SNP" "OMIM" in
  List.iter
    (fun level ->
      let ws =
        Repository.structural_query repo ~level "disease-susceptibility" q
      in
      List.iter
        (fun w ->
          Printf.printf "level %d: %s -> %b\n" level (Query_ast.to_string q)
            w.Query_eval.holds)
        ws)
    [ 0; 2 ];

  section "Ranking with privacy-aware quantisation";
  let run ?quantize_scores label =
    let hits =
      Repository.keyword_search repo ~level:2 ?quantize_scores [ "query" ]
    in
    Printf.printf "%s:\n" label;
    List.iter
      (fun h ->
        Printf.printf "  %-24s %.3f\n" h.Repository.entry_name h.Repository.score)
      hits
  in
  run "exact scores";
  run ~quantize_scores:2.0 "bucketed scores (width 2)"
