(* Quickstart: build a two-step workflow, execute it, ask provenance
   questions, and apply an access view.

   Run with: dune exec examples/quickstart.exe *)

open Wfpriv_workflow
open Wfpriv_privacy

let () =
  (* 1. Describe a tiny hierarchical workflow: I -> clean -> analyze -> O,
     where "analyze" is a composite refined by workflow "sub" containing
     align -> score. *)
  let clean = Ids.m 1
  and analyze = Ids.m 2
  and align = Ids.m 3
  and score = Ids.m 4 in
  let modules =
    [
      Module_def.input;
      Module_def.output;
      Module_def.make ~id:clean ~name:"Clean samples" Module_def.Atomic;
      Module_def.make ~id:analyze ~name:"Analyze cohort" (Module_def.Composite "sub");
      Module_def.make ~id:align ~name:"Align reads" Module_def.Atomic;
      Module_def.make ~id:score ~name:"Score variants" Module_def.Atomic;
    ]
  in
  let edge src dst data = { Spec.src; dst; data } in
  let spec =
    Spec.create ~root:"main" modules
      [
        {
          Spec.wf_id = "main";
          title = "Quickstart pipeline";
          members = [ Ids.input_module; Ids.output_module; clean; analyze ];
          edges =
            [
              edge Ids.input_module clean [ "samples" ];
              edge clean analyze [ "cleaned" ];
              edge analyze Ids.output_module [ "report" ];
            ];
        };
        {
          Spec.wf_id = "sub";
          title = "Cohort analysis";
          members = [ align; score ];
          edges = [ edge align score [ "aligned" ] ];
        };
      ]
  in
  Format.printf "Specification:@.%a@." Spec.pp spec;

  (* 2. Give each atomic module a semantics and execute. *)
  let semantics =
    Executor.table_semantics
      [
        (clean, fun _ -> [ ("cleaned", Data_value.Str "clean(samples)") ]);
        (align, fun _ -> [ ("aligned", Data_value.Str "aligned-reads") ]);
        (score, fun _ -> [ ("report", Data_value.Str "variant-report") ]);
      ]
  in
  let exec =
    Executor.run spec semantics ~inputs:[ ("samples", Data_value.Str "cohort-7") ]
  in
  Format.printf "Execution (provenance graph):@.%a@." Execution.pp exec;

  (* 3. Provenance questions. *)
  let report = List.hd (Execution.items_named exec "report") in
  Printf.printf "lineage of %s: %s\n"
    (Ids.data_name report.Execution.data_id)
    (String.concat ", "
       (List.map Ids.data_name
          (Provenance.lineage exec report.Execution.data_id)));
  Printf.printf "did 'Align reads' run before 'Score variants'? %b\n"
    (Provenance.executed_before exec align score);

  (* 4. Privacy: a level-0 user may not expand the composite; their view
     of the same execution collapses it to one node. *)
  let privilege = Privilege.make spec [ ("sub", 1) ] in
  let user_view = Privilege.access_exec_view privilege 0 exec in
  Format.printf "What a level-0 user sees:@.%a@." Exec_view.pp user_view;
  Printf.printf "items hidden from level 0: %s\n"
    (String.concat ", " (List.map Ids.data_name (Exec_view.hidden_items user_view)))
