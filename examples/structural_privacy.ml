(* Structural privacy on the paper's own example: hide the fact that
   M13's reformatted PubMed data contributes to M11's private-DB update,
   by deletion and by clustering, and repair the unsound view the latter
   creates (paper Sec. 3).

   Run with: dune exec examples/structural_privacy.exe *)

open Wfpriv_workflow
open Wfpriv_privacy
module Disease = Wfpriv_workloads.Disease
module Digraph = Wfpriv_graph.Digraph
module Reachability = Wfpriv_graph.Reachability

let section title = Printf.printf "\n### %s\n\n%!" title
let name = Ids.module_name

let pp_facts fs =
  String.concat ", " (List.map (fun (u, v) -> name u ^ "⇝" ^ name v) fs)

let () =
  let g = Spec.graph_of Disease.spec "W3" in
  section "W3's dataflow and its reachability facts";
  List.iter
    (fun (u, v) -> Printf.printf "  %s -> %s\n" (name u) (name v))
    (Digraph.edges g);
  let closure = Reachability.closure g in
  Printf.printf "reachability facts: %d\n"
    (Wfpriv_graph.Reachability.nb_facts closure);
  Printf.printf "target to hide: %s ⇝ %s (PubMed data reaches the private DB)\n"
    (name Disease.m13) (name Disease.m11);

  section "Mechanism 1: deletion (minimum cut)";
  let d = Structural_privacy.hide_by_deletion g (Disease.m13, Disease.m11) in
  Printf.printf "edges deleted: %s\n"
    (String.concat ", "
       (List.map (fun (u, v) -> name u ^ "->" ^ name v) d.Structural_privacy.cut));
  Printf.printf "collateral damage (true facts also lost): %s\n"
    (pp_facts d.Structural_privacy.collateral);
  Printf.printf
    "-> exactly the paper's warning: deleting M13->M11 also hides M12⇝M11.\n";

  section "Mechanism 2: clustering into a composite";
  let c = Structural_privacy.hide_by_clustering g (Disease.m13, Disease.m11) in
  Printf.printf "cluster: {%s} (represented as one composite)\n"
    (String.concat ", " (List.map name c.Structural_privacy.cluster));
  Printf.printf "internal facts hidden: %s\n"
    (pp_facts c.Structural_privacy.internal_hidden);
  Printf.printf "spurious facts fabricated: %s\n"
    (pp_facts c.Structural_privacy.spurious);
  Printf.printf
    "-> exactly the paper's warning: the view now implies M10⇝M14, which is \
     false.\n";

  section "Quantifying the trade-off";
  let score_deletion =
    Utility.reachability_score ~base:g ~view:d.Structural_privacy.view ~map:Fun.id
  in
  let map n =
    if List.mem n c.Structural_privacy.cluster then c.Structural_privacy.cluster_rep
    else n
  in
  let score_cluster =
    Utility.reachability_score ~base:g ~view:c.Structural_privacy.cluster_view ~map
  in
  Printf.printf "deletion:   lost %d facts, fabricated %d (precision %.2f)\n"
    score_deletion.Utility.lost score_deletion.Utility.spurious
    score_deletion.Utility.precision;
  Printf.printf "clustering: lost %d facts, fabricated %d (precision %.2f)\n"
    score_cluster.Utility.lost score_cluster.Utility.spurious
    score_cluster.Utility.precision;

  section "Detecting and repairing the unsound view (Sun et al.)";
  let clustering = [ c.Structural_privacy.cluster ] in
  let verdict = Soundness.check g clustering in
  Printf.printf "sound? %b — spurious: %s\n" verdict.Soundness.sound
    (pp_facts verdict.Soundness.spurious);
  let repaired = Soundness.repair g clustering in
  Printf.printf "after repair (%d splits): clusters = %s — sound? %b\n"
    (Soundness.repair_steps g clustering)
    (String.concat "; "
       (List.map
          (fun cl -> "{" ^ String.concat "," (List.map name cl) ^ "}")
          repaired))
    (Soundness.is_sound g repaired);
  Printf.printf
    "-> repairing dissolves the offending cluster: for this pair, soundness \
     and privacy are incompatible, the paper's central tension.\n"
