(* The paper's running example end-to-end: the disease susceptibility
   workflow (Fig. 1), its execution (Fig. 4), views at every privilege
   level (Fig. 2), and a full privacy policy combining data, module and
   structural protections.

   Run with: dune exec examples/disease_susceptibility.exe *)

open Wfpriv_workflow
open Wfpriv_privacy
module Disease = Wfpriv_workloads.Disease

let section title = Printf.printf "\n### %s\n\n%!" title

let () =
  section "The specification (paper Fig. 1)";
  Format.printf "%a@." Spec.pp Disease.spec;

  section "One patient's execution (paper Fig. 4)";
  let exec = Disease.run () in
  Format.printf "%a@." Execution.pp exec;
  Printf.printf "final prognosis (d19) = %s\n"
    (Data_value.to_string (Execution.find_item exec 19).Execution.value);

  section "A privacy policy for the hospital repository";
  (* - researchers (level 0) see only the top level;
     - clinicians (level 1) may open the genetics pipeline W2;
     - auditors (level 2) may open everything but W4's database internals;
     - admins (level 3) see all.
     - the genetic disorders (d10) and the prognosis are confidential;
     - module M1's behaviour is protected by masking its input/output
       names below level 2. *)
  let policy =
    Policy.make
      ~expand_levels:[ ("W2", 1); ("W3", 2); ("W4", 3) ]
      ~data_levels:[ ("prognosis", 1) ]
      ~module_masks:[ (Disease.m1, [ "snps"; "disorders" ], 2) ]
      Disease.spec
  in
  List.iter
    (fun (who, level) ->
      Printf.printf "%s (level %d):\n" who level;
      let ev, proj = Policy.project_execution policy level exec in
      List.iter
        (fun (u, v) ->
          let show d =
            Printf.sprintf "%s=%s" (Ids.data_name d)
              (Data_value.to_string (Data_privacy.value_of proj d))
          in
          Printf.printf "  %s -> %s [%s]\n" (Exec_view.node_label ev u)
            (Exec_view.node_label ev v)
            (String.concat ", " (List.map show (Exec_view.edge_items ev u v))))
        (Wfpriv_graph.Digraph.edges (Exec_view.graph ev));
      print_newline ())
    [ ("researcher", 0); ("clinician", 1); ("auditor", 2); ("admin", 3) ];

  section "Provenance drill-down for the disorders item d10 (admin only)";
  let prov = Provenance.of_data exec 10 in
  Format.printf "%a@." Provenance.pp prov;
  Printf.printf "modules that contributed: %s\n"
    (String.concat ", "
       (List.map Ids.module_name (Provenance.contributing_modules exec 10)));

  section "Varying the patient (repeated executions, Sec. 3)";
  let patient2 =
    [
      ("snps", Data_value.Str "rs1801133");
      ("ethnicity", Data_value.Str "han");
      ("lifestyle", Data_value.Str "active");
      ("family_history", Data_value.Str "none");
      ("symptoms", Data_value.Str "headache");
    ]
  in
  let exec2 = Disease.run_with patient2 in
  Printf.printf "patient 2 prognosis (d19) = %s\n"
    (Data_value.to_string (Execution.find_item exec2 19).Execution.value);
  Printf.printf
    "the graph shape is identical across executions: %b (data differs)\n"
    (Wfpriv_graph.Digraph.equal (Execution.graph exec) (Execution.graph exec2))
