(* The paper's opening scenario (Sec. 1): "Finding erroneous or suspect
   data, a user may then ask provenance queries to determine what
   downstream data might have been affected, or to understand how the
   process failed that led to creating the data" — under privacy.

   A trial analyst at privilege level 1 finds the power figure suspect
   and debugs through their access view; the auditor at level 3 sees the
   full story. Run with: dune exec examples/provenance_debugging.exe *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Clinical = Wfpriv_workloads.Clinical

let section title = Printf.printf "\n### %s\n\n%!" title

let () =
  let exec = Clinical.run () in
  let policy = Clinical.policy in

  section "The suspect item";
  let power = List.hd (Execution.items_named exec "power") in
  let d = power.Execution.data_id in
  Printf.printf "item %s (%s) = %s, produced by %s\n" (Ids.data_name d)
    power.Execution.name
    (Data_value.to_string power.Execution.value)
    (Execution.node_label exec power.Execution.producer);

  section "Downstream impact (what might be wrong because of it)";
  let impacted = Provenance.impacted exec d in
  List.iter
    (fun d' ->
      let it = Execution.find_item exec d' in
      Printf.printf "  %s (%s)\n" (Ids.data_name d') it.Execution.name)
    impacted;

  section "Upstream: how the process produced it";
  Printf.printf "contributing modules: %s\n"
    (String.concat ", "
       (List.map Ids.module_name (Provenance.contributing_modules exec d)));
  Printf.printf "necessarily flowed through: %s\n"
    (String.concat ", "
       (List.map Ids.module_name (Provenance.necessary_modules exec d)));
  Printf.printf
    "(for this chain-shaped lineage the two coincide; for the findings \
     below they differ)\n";
  let findings = List.hd (Execution.items_named exec "findings") in
  let fd = findings.Execution.data_id in
  Printf.printf "findings %s: contributing %s\n" (Ids.data_name fd)
    (String.concat ", "
       (List.map Ids.module_name (Provenance.contributing_modules exec fd)));
  Printf.printf "findings %s: necessary    %s\n" (Ids.data_name fd)
    (String.concat ", "
       (List.map Ids.module_name (Provenance.necessary_modules exec fd)));
  Printf.printf
    "(the dominator analysis rules out M12/M13/M15 — each sits on a \
     parallel branch)\n";

  section "What the level-1 analyst can actually see";
  let ev, proj = Policy.project_execution policy 1 exec in
  Printf.printf "their view of the run:\n";
  List.iter
    (fun (u, v) ->
      Printf.printf "  %s -> %s [%s]\n" (Exec_view.node_label ev u)
        (Exec_view.node_label ev v)
        (String.concat ", "
           (List.map
              (fun d ->
                Printf.sprintf "%s=%s" (Ids.data_name d)
                  (Data_value.to_string (Data_privacy.value_of proj d)))
              (Exec_view.edge_items ev u v))))
    (Wfpriv_graph.Digraph.edges (Exec_view.graph ev));

  section "Searching the run for the suspect step, per privilege";
  List.iter
    (fun level ->
      let visible = function
        | Exec_search.Module_witness n -> (
            match Exec_view.module_of_node (Exec_view.full exec) n with
            | Some m ->
                Privilege.min_level_to_see (Policy.privilege policy) m <= level
            | None -> true)
        | Exec_search.Data_witness _ -> true
      in
      match Exec_search.search ~restrict_to:visible exec [ "power" ] with
      | Some a ->
          Printf.printf "level %d: hit, view prefix {%s}\n" level
            (String.concat ", " (Exec_view.prefix a.Exec_search.view))
      | None -> Printf.printf "level %d: no visible witness\n" level)
    [ 0; 1; 3 ];

  section "Structural query through the query language";
  let q = Query_parser.parse "before(~\"Power\", ~\"Compare\")" in
  List.iter
    (fun level ->
      let ev = Privilege.access_exec_view (Policy.privilege policy) level exec in
      Printf.printf "level %d: %s -> %b\n" level (Query_ast.to_string q)
        (Query_eval.holds_exec ev q))
    [ 0; 1 ]
