(* Interactive navigation and path queries: a user browses a stored
   execution by zooming composites open, the system enforcing their
   privileges at every step and auditing refused expansions; regular
   path queries answer "did the flow take this route?" at whatever
   granularity the user may see.

   Run with: dune exec examples/interactive_session.exe *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Disease = Wfpriv_workloads.Disease

let section title = Printf.printf "\n### %s\n\n%!" title

let show_view v =
  List.iter
    (fun (a, b) ->
      Printf.printf "  %s -> %s\n" (Exec_view.node_label v a)
        (Exec_view.node_label v b))
    (Wfpriv_graph.Digraph.edges (Exec_view.graph v))

let () =
  let exec = Disease.run () in
  let privilege =
    Privilege.make Disease.spec [ ("W2", 1); ("W3", 2); ("W4", 3) ]
  in

  section "A level-1 clinician starts at the coarsest view";
  let s = Session.start privilege ~level:1 exec in
  show_view (Session.current s);

  section "They zoom into M1 (allowed: W2 needs level 1)";
  let node_for m =
    List.find
      (fun n -> Exec_view.module_of_node (Session.current s) n = Some m)
      (Exec_view.nodes (Session.current s))
  in
  (match Session.zoom_in s (node_for Disease.m1) with
  | Session.Ok v -> show_view v
  | _ -> print_endline "  (unexpected refusal)");

  section "They try M4 and M2 (refused: W4 needs 3, W3 needs 2)";
  List.iter
    (fun m ->
      match Session.zoom_in s (node_for m) with
      | Session.Denied required ->
          Printf.printf "  %s refused: requires level %d\n" (Ids.module_name m)
            required
      | Session.Ok _ -> Printf.printf "  %s opened (unexpected)\n" (Ids.module_name m)
      | Session.Not_expandable -> Printf.printf "  %s not expandable\n" (Ids.module_name m))
    [ Disease.m4; Disease.m2 ];
  Printf.printf "audit trail: %d refused expansion attempts\n"
    (List.length (Session.denied_attempts s));
  Printf.printf "invariant — view within access rights: %b\n"
    (Session.within_access_view s);

  section "Path queries at the clinician's granularity";
  let v = Session.current s in
  let atom p = Path_query.Atom p in
  let name n = atom (Query_ast.Name_matches n) in
  (* Did the flow go input -> SNP expansion -> (something) -> disorder
     evaluation? At this view M4 is a single opaque step. *)
  let route =
    Path_query.(
      Seq ( atom (Query_ast.Module_is Ids.input_module),
            Seq (anything,
                 Seq (name "Expand SNP",
                      Seq (anything, Seq (name "Disorder Risk", anything))))))
  in
  Printf.printf "route I .* ExpandSNP .* DisorderRisk .*:\n";
  List.iter
    (fun (src, dst) ->
      Printf.printf "  matches from %s to %s\n"
        (Exec_view.node_label v src) (Exec_view.node_label v dst))
    (let nodes = Exec_view.nodes v in
     List.concat_map
       (fun src ->
         List.filter_map
           (fun dst ->
             if Path_query.matches_exec v route ~src ~dst then Some (src, dst)
             else None)
           nodes)
       nodes);

  section "The same question on the specification, per privilege";
  let pattern =
    Path_query.(
      Seq (name "Generate Database", Seq (name "OMIM", name "Combine")))
  in
  List.iter
    (fun level ->
      let sv = Privilege.access_view privilege level in
      let hits = Path_query.find_spec sv pattern in
      Printf.printf "level %d: %d matching path(s)\n" level (List.length hits))
    [ 1; 3 ];
  Printf.printf
    "-> the OMIM route is only assertable once W4 is within the caller's \
     rights.\n"
