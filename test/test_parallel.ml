(* The multicore runtime must be invisible: parallel and sequential
   paths return identical answers everywhere — closure rows, index
   postings, batched query witnesses at every privilege level — and the
   pool degrades gracefully (order-preserving merge, deterministic
   exception propagation, sequential fallback). *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Pool = Wfpriv_parallel.Pool
module Shard = Wfpriv_parallel.Shard
module Bitset = Wfpriv_graph.Bitset
module Disease = Wfpriv_workloads.Disease
module Clinical = Wfpriv_workloads.Clinical
module Synthetic = Wfpriv_workloads.Synthetic
module Rng = Wfpriv_workloads.Rng

let check = Alcotest.check
let intl = Alcotest.(list int)

(* One shared 4-way pool for the whole suite (spawn-once contract); a
   couple of tests build their own to pin other sizes. *)
let pool4 = lazy (Pool.create ~jobs:4)

(* ------------------------------------------------------------------ *)
(* Pool semantics *)

let test_pool_map_order () =
  let p = Lazy.force pool4 in
  List.iter
    (fun n ->
      let xs = Array.init n (fun i -> i) in
      List.iter
        (fun chunk ->
          let out = Pool.parallel_map ~chunk p (fun x -> (2 * x) + 1) xs in
          check intl
            (Printf.sprintf "map order n=%d chunk=%d" n chunk)
            (Array.to_list (Array.map (fun x -> (2 * x) + 1) xs))
            (Array.to_list out))
        [ 1; 3; 7; 64 ])
    [ 0; 1; 5; 100; 1000 ]

let test_pool_map_order_qcheck =
  QCheck.Test.make ~name:"parallel_map preserves order for any chunking"
    ~count:60
    QCheck.(pair (small_list small_int) (int_range 1 23))
    (fun (xs, chunk) ->
      let p = Lazy.force pool4 in
      let expect = List.map (fun x -> x * x) xs in
      Pool.parallel_map_list ~chunk p (fun x -> x * x) xs = expect)

let test_pool_exception () =
  let p = Lazy.force pool4 in
  (* Lowest failing index wins, deterministically, chunks uncancelled. *)
  (try
     Pool.parallel_for ~chunk:1 p 100 (fun i ->
         if i >= 37 then failwith (string_of_int i));
     Alcotest.fail "expected an exception"
   with Failure msg -> check Alcotest.string "lowest failing chunk" "37" msg);
  (* The pool survives a failed job. *)
  let out = Pool.parallel_map p (fun x -> x + 1) (Array.init 50 (fun i -> i)) in
  check Alcotest.int "pool alive after exception" 50 (Array.length out);
  check Alcotest.int "values intact" 50 out.(49)

let test_pool_sequential_fallback () =
  let p1 = Pool.create ~jobs:1 in
  let out = Pool.parallel_map_list p1 (fun x -> x * 3) [ 1; 2; 3 ] in
  check intl "jobs=1 pool maps sequentially" [ 3; 6; 9 ] out;
  Pool.shutdown p1;
  (* Nested loops on one pool run inline instead of deadlocking. *)
  let p = Lazy.force pool4 in
  let out =
    Pool.parallel_map_list ~chunk:1 p
      (fun x ->
        Pool.parallel_map_list ~chunk:1 p (fun y -> x + y) [ 10; 20 ])
      [ 1; 2; 3; 4 ]
  in
  check
    Alcotest.(list intl)
    "nested parallelism"
    [ [ 11; 21 ]; [ 12; 22 ]; [ 13; 23 ]; [ 14; 24 ] ]
    out;
  (* Loops after shutdown degrade to sequential. *)
  let p' = Pool.create ~jobs:3 in
  Pool.shutdown p';
  let out = Pool.parallel_map_list p' (fun x -> x - 1) [ 5; 6 ] in
  check intl "shutdown pool still answers" [ 4; 5 ] out

let test_shard_partition () =
  let buckets = Shard.partition ~shards:3 ~hash:(fun x -> x) [ 0; 1; 2; 3; 4; 5; 6 ] in
  check intl "bucket 0" [ 0; 3; 6 ] buckets.(0);
  check intl "bucket 1" [ 1; 4 ] buckets.(1);
  check intl "bucket 2" [ 2; 5 ] buckets.(2);
  let p = Lazy.force pool4 in
  let total =
    Shard.map_merge p ~shards:5 ~hash:Hashtbl.hash
      ~map:(List.fold_left ( + ) 0)
      ~merge:( + ) ~init:0
      (List.init 100 (fun i -> i))
  in
  check Alcotest.int "map_merge sums" 4950 total

(* ------------------------------------------------------------------ *)
(* Bitset fast paths vs. the naive bit-by-bit reference *)

let naive_elements words cap =
  let out = ref [] in
  for i = cap - 1 downto 0 do
    let w = i / 63 and b = i mod 63 in
    if words.(w) land (1 lsl b) <> 0 then out := i :: !out
  done;
  !out

let bitset_of_elems cap elems = Bitset.of_list cap elems

let test_bitset_qcheck =
  QCheck.Test.make ~name:"Bitset iter/fold/pop_count == naive loop" ~count:300
    QCheck.(pair (int_range 0 200) (small_list (int_range 0 10_000)))
    (fun (cap, raw) ->
      let elems = List.filter (fun i -> i < cap) raw |> List.sort_uniq compare in
      let s = bitset_of_elems cap elems in
      let via_iter = ref [] in
      Bitset.iter (fun i -> via_iter := i :: !via_iter) s;
      List.rev !via_iter = elems
      && Bitset.fold (fun i acc -> i :: acc) s [] = List.rev elems
      && Bitset.pop_count s = List.length elems
      && Bitset.cardinal s = List.length elems
      && Bitset.elements s = elems)

let test_bitset_word_edges () =
  (* Capacities and members straddling 63-bit word boundaries. *)
  List.iter
    (fun cap ->
      let elems =
        List.filter (fun i -> i >= 0 && i < cap) [ 0; 62; 63; 64; 125; 126; 127; cap - 1 ]
        |> List.sort_uniq compare
      in
      let s = bitset_of_elems cap elems in
      check intl
        (Printf.sprintf "elements at cap %d" cap)
        elems (Bitset.elements s);
      check Alcotest.int
        (Printf.sprintf "pop_count at cap %d" cap)
        (List.length elems) (Bitset.pop_count s);
      let words = Array.make ((cap + 62) / 63) 0 in
      List.iter (fun i -> words.(i / 63) <- words.(i / 63) lor (1 lsl (i mod 63))) elems;
      check intl "naive agrees" (naive_elements words cap) (Bitset.elements s))
    [ 1; 62; 63; 64; 126; 127; 200 ]

(* ------------------------------------------------------------------ *)
(* Workload fixtures (as test_engine.ml) *)

let depth_privilege spec =
  let h = Hierarchy.of_spec spec in
  Privilege.make spec
    (Spec.workflow_ids spec
    |> List.filter (fun w -> w <> Spec.root spec)
    |> List.map (fun w -> (w, Hierarchy.depth h w)))

let disease = lazy (Disease.spec, depth_privilege Disease.spec, Disease.run ())
let clinical = lazy (Clinical.spec, Policy.privilege Clinical.policy, Clinical.run ())

let synthetic =
  lazy
    (let rng = Rng.create 7 in
     let spec, exec = Synthetic.run rng Synthetic.default_params in
     (spec, depth_privilege spec, exec))

(* Big enough to cross the engine's sequential-fallback threshold, so
   the stratum-parallel sweep really runs. *)
let synthetic_large =
  lazy
    (let rng = Rng.create 14 in
     Synthetic.run rng
       {
         Synthetic.default_params with
         levels = 2;
         atomics_per_workflow = 140;
         edge_probability = 0.05;
       })

let workloads =
  [ ("disease", disease); ("clinical", clinical); ("synthetic", synthetic) ]

let catalog spec =
  let open Query_ast in
  let ms = Spec.module_ids spec in
  let nth k = List.nth ms (k mod List.length ms) in
  let m_a = nth 2 and m_b = nth (List.length ms - 2) in
  let ws = Spec.workflow_ids spec in
  let w_deep = List.nth ws (List.length ws - 1) in
  [
    Node Any;
    Node Atomic_only;
    Node (Module_is m_a);
    Node (Name_matches "e");
    Edge (Any, Any);
    Edge (Module_is m_a, Module_is m_b);
    Before (Any, Any);
    Before (Module_is m_a, Module_is m_b);
    Before (Module_is m_b, Module_is m_a);
    Before (Name_matches "a", Name_matches "e");
    Inside (Any, w_deep);
    Refines (Composite_only, Any);
    And (Node Any, Before (Any, Any));
    Or (Node (Name_matches "zzz"), Node Any);
    Not (Before (Module_is m_b, Module_is m_a));
  ]

(* ------------------------------------------------------------------ *)
(* Determinism: parallel closure == sequential closure, row by row *)

let test_closure_rows_identical () =
  let _, exec = Lazy.force synthetic_large in
  let ev = Exec_view.full exec in
  let seq_pool = Pool.create ~jobs:1 in
  let par = Lazy.force pool4 in
  let e_seq = Engine.of_exec_view ev in
  let e_par = Engine.of_exec_view ev in
  Engine.materialize_closure ~pool:seq_pool e_seq;
  Engine.materialize_closure ~pool:par e_par;
  check Alcotest.bool "large enough to exercise the parallel sweep" true
    (Engine.nb_nodes e_par >= 512);
  List.iter
    (fun u ->
      check intl
        (Printf.sprintf "closure row of node %d" u)
        (Engine.reachable_set e_seq u)
        (Engine.reachable_set e_par u))
    (Engine.nodes e_par);
  Pool.shutdown seq_pool

(* ------------------------------------------------------------------ *)
(* Determinism: parallel index build == sequential index build *)

let all_terms specs =
  List.concat_map
    (fun spec ->
      List.concat_map
        (fun m -> Module_def.terms (Spec.find_module spec m))
        (Spec.module_ids spec))
    specs
  |> List.map String.lowercase_ascii
  |> List.sort_uniq compare

let posting_triple (p : Index.posting) = (p.Index.doc, p.Index.module_id, p.Index.min_level)

let test_index_identical () =
  let dspec, dpriv, _ = Lazy.force disease in
  let cspec, cpriv, _ = Lazy.force clinical in
  let sspec, spriv, _ = Lazy.force synthetic in
  let entries =
    [ ("disease", dspec, dpriv); ("clinical", cspec, cpriv); ("synthetic", sspec, spriv) ]
  in
  let seq_pool = Pool.create ~jobs:1 in
  let i_seq = Index.build ~pool:seq_pool entries in
  let i_par = Index.build ~pool:(Lazy.force pool4) entries in
  Pool.shutdown seq_pool;
  check Alcotest.int "same term count" (Index.nb_terms i_seq) (Index.nb_terms i_par);
  check Alcotest.int "same posting count" (Index.nb_postings i_seq)
    (Index.nb_postings i_par);
  let terms = all_terms [ dspec; cspec; sspec ] in
  check Alcotest.bool "some terms" true (terms <> []);
  List.iter
    (fun level ->
      List.iter
        (fun term ->
          check
            Alcotest.(list (triple string int int))
            (Printf.sprintf "postings for %S at level %d" term level)
            (List.map posting_triple (Index.lookup i_seq ~level term))
            (List.map posting_triple (Index.lookup i_par ~level term)))
        terms)
    [ 0; 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Determinism + leakage: batched evaluation at every privilege level *)

let test_batch (name, workload) () =
  let spec, privilege, exec = Lazy.force workload in
  let qs = catalog spec in
  let plans = List.map Plan.compile qs in
  List.iter
    (fun level ->
      let gate = Access_gate.make privilege ~level in
      Access_gate.prepare gate;
      let ev = Access_gate.exec_view gate exec in
      let engine = Engine.of_exec_view ev in
      let sequential = List.map (Engine.run engine) plans in
      let batched = Engine.run_batch ~pool:(Lazy.force pool4) engine plans in
      List.iteri
        (fun i (s, b) ->
          let ctx what =
            Printf.sprintf "%s level %d plan %d: %s" name level i what
          in
          check Alcotest.bool (ctx "holds") s.Engine.holds b.Engine.holds;
          check intl (ctx "nodes") s.Engine.nodes b.Engine.nodes;
          (* Leakage: batched answers never emit a node above the gate. *)
          List.iter
            (fun n ->
              match Exec_view.module_of_node ev n with
              | None -> ()
              | Some m ->
                  if not (Access_gate.sees_module gate m) then
                    Alcotest.failf
                      "%s level %d: batched node %d (module %d) above level"
                      name level n m)
            b.Engine.nodes)
        (List.combine sequential batched))
    (Privilege.levels privilege)

let test_session_batch () =
  let _, privilege, exec = Lazy.force disease in
  let s = Session.start privilege ~level:2 exec in
  ignore (Session.zoom_to_access_view s);
  let qs = catalog Disease.spec in
  let one_by_one = List.map (Session.query s) qs in
  let batched = Session.query_batch ~pool:(Lazy.force pool4) s qs in
  List.iteri
    (fun i (a, b) ->
      check Alcotest.bool
        (Printf.sprintf "query %d holds" i)
        a.Query_eval.holds b.Query_eval.holds;
      check intl (Printf.sprintf "query %d nodes" i) a.Query_eval.nodes
        b.Query_eval.nodes)
    (List.combine one_by_one batched)

(* ------------------------------------------------------------------ *)
(* Reach_cache: LRU recency and stats *)

let test_reach_cache_lru () =
  let _, privilege, exec = Lazy.force disease in
  let ev = Privilege.access_exec_view privilege 1 exec in
  let c = Reach_cache.create ~capacity:2 () in
  let ea = Reach_cache.engine c ~key:"a" ev in
  ignore (Reach_cache.engine c ~key:"b" ev);
  (* Touch [a]: it becomes most-recently-used, so inserting [c] must
     evict [b], not [a] — the FIFO cache got this wrong. *)
  let ea' = Reach_cache.engine c ~key:"a" ev in
  check Alcotest.bool "hit returns the cached engine" true (ea == ea');
  ignore (Reach_cache.engine c ~key:"c" ev);
  check Alcotest.int "one eviction" 1 (Reach_cache.evictions c);
  let ea'' = Reach_cache.engine c ~key:"a" ev in
  check Alcotest.bool "recently-used survivor" true (ea == ea'');
  let stats = Reach_cache.stats c in
  check Alcotest.int "stats hits" (Reach_cache.hits c) stats.Reach_cache.hits;
  check Alcotest.int "stats misses" (Reach_cache.misses c) stats.Reach_cache.misses;
  check Alcotest.int "stats evictions" 1 stats.Reach_cache.evictions;
  check Alcotest.int "stats entries" 2 stats.Reach_cache.entries;
  Reach_cache.clear c;
  let z = Reach_cache.stats c in
  check Alcotest.int "cleared hits" 0 z.Reach_cache.hits;
  check Alcotest.int "cleared entries" 0 z.Reach_cache.entries

(* ------------------------------------------------------------------ *)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          qcheck test_pool_map_order_qcheck;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "sequential fallback" `Quick
            test_pool_sequential_fallback;
          Alcotest.test_case "shard partition/merge" `Quick test_shard_partition;
        ] );
      ( "bitset",
        [
          qcheck test_bitset_qcheck;
          Alcotest.test_case "word-boundary edges" `Quick test_bitset_word_edges;
        ] );
      ( "determinism",
        Alcotest.test_case "closure rows parallel == sequential" `Quick
          test_closure_rows_identical
        :: Alcotest.test_case "index parallel == sequential" `Quick
             test_index_identical
        :: Alcotest.test_case "session batch == one-by-one" `Quick
             test_session_batch
        :: List.map
             (fun wl ->
               Alcotest.test_case ("batch " ^ fst wl) `Quick (test_batch wl))
             workloads );
      ( "reach-cache",
        [ Alcotest.test_case "LRU + stats" `Quick test_reach_cache_lru ] );
    ]
