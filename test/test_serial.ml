(* Tests for the serialisation substrate: Json, Spec_codec, Exec_codec,
   Policy_codec and the Wfdsl textual language. *)

open Wfpriv_workflow
open Wfpriv_serial
module Disease = Wfpriv_workloads.Disease
module Synthetic = Wfpriv_workloads.Synthetic
module Rng = Wfpriv_workloads.Rng

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_atoms () =
  check Alcotest.bool "null" true (Json.parse "null" = Json.Null);
  check Alcotest.bool "true" true (Json.parse "true" = Json.Bool true);
  check Alcotest.bool "false" true (Json.parse " false " = Json.Bool false);
  check (Alcotest.float 0.0001) "int" 42.0 (Json.get_float (Json.parse "42"));
  check (Alcotest.float 0.0001) "negative" (-3.5)
    (Json.get_float (Json.parse "-3.5"));
  check (Alcotest.float 0.0001) "exponent" 1200.0
    (Json.get_float (Json.parse "1.2e3"));
  check Alcotest.string "string" "hi" (Json.get_string (Json.parse "\"hi\""))

let test_json_escapes () =
  check Alcotest.string "standard escapes" "a\"b\\c\nd"
    (Json.get_string (Json.parse "\"a\\\"b\\\\c\\nd\""));
  check Alcotest.string "unicode bmp" "\xc3\xa9"
    (Json.get_string (Json.parse "\"\\u00e9\""));
  check Alcotest.string "surrogate pair" "\xf0\x9d\x84\x9e"
    (Json.get_string (Json.parse "\"\\ud834\\udd1e\""))

let test_json_structures () =
  let v = Json.parse {| {"a": [1, 2, {"b": null}], "c": "x"} |} in
  check Alcotest.int "nested access" 2
    (Json.get_int (List.nth (Json.to_list (Json.member "a" v)) 1));
  check Alcotest.bool "member_opt missing" true (Json.member_opt "zz" v = None);
  check Alcotest.string "roundtrip compact"
    {|{"a":[1,2,{"b":null}],"c":"x"}|}
    (Json.to_string v)

let expect_parse_error src expected_line =
  match Json.parse src with
  | exception Json.Parse_error { line; _ } ->
      check Alcotest.int ("error line for " ^ src) expected_line line
  | _ -> Alcotest.fail ("expected parse error for " ^ src)

let test_json_errors () =
  expect_parse_error "{" 1;
  expect_parse_error "[1,]" 1;
  expect_parse_error "\"unterminated" 1;
  expect_parse_error "{\"a\": 1,}" 1;
  expect_parse_error "nul" 1;
  expect_parse_error "1 2" 1;
  expect_parse_error "{\n\"a\": ?\n}" 2;
  match Json.parse_result "[" with
  | Error msg ->
      check Alcotest.bool "message mentions position" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected error"

let json_gen =
  (* Random JSON values of bounded depth. *)
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.int i) (int_range (-1000) 1000);
        map (fun s -> Json.Str s) (string_size ~gen:printable (int_bound 8));
      ]
  in
  let value =
    sized_size (int_bound 3) (fix (fun self n ->
        if n = 0 then scalar
        else
          oneof
            [
              scalar;
              map (fun xs -> Json.Arr xs) (list_size (int_bound 4) (self (n - 1)));
              map
                (fun kvs ->
                  (* Dedupe keys to keep objects canonical. *)
                  let seen = Hashtbl.create 8 in
                  Json.Obj
                    (List.filter
                       (fun (k, _) ->
                         if Hashtbl.mem seen k then false
                         else begin
                           Hashtbl.replace seen k ();
                           true
                         end)
                       kvs))
                (list_size (int_bound 4)
                   (pair (string_size ~gen:printable (int_bound 6)) (self (n - 1))));
            ]))
  in
  QCheck.make value

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json parse ∘ to_string = id" ~count:300 json_gen
    (fun v -> Json.equal v (Json.parse (Json.to_string v)))

let prop_json_pretty_roundtrip =
  QCheck.Test.make ~name:"json parse ∘ to_string_pretty = id" ~count:300
    json_gen (fun v -> Json.equal v (Json.parse (Json.to_string_pretty v)))

(* ------------------------------------------------------------------ *)
(* Spec codec *)

let specs_equal a b =
  Spec.root a = Spec.root b
  && Spec.workflow_ids a = Spec.workflow_ids b
  && Spec.module_ids a = Spec.module_ids b
  && List.for_all
       (fun w -> Spec.find_workflow a w = Spec.find_workflow b w)
       (Spec.workflow_ids a)
  && List.for_all
       (fun m -> Spec.find_module a m = Spec.find_module b m)
       (Spec.module_ids a)

let test_spec_roundtrip_disease () =
  let s = Spec_codec.to_string ~pretty:true Disease.spec in
  check Alcotest.bool "roundtrip equal" true
    (specs_equal Disease.spec (Spec_codec.of_string s))

let prop_spec_roundtrip_synthetic =
  QCheck.Test.make ~name:"spec codec roundtrips synthetic specs" ~count:25
    (QCheck.int_bound 100_000) (fun seed ->
      let spec = Synthetic.spec (Rng.create seed) Synthetic.default_params in
      specs_equal spec (Spec_codec.of_string (Spec_codec.to_string spec)))

let test_spec_decode_rejects_invalid () =
  (* Valid JSON, invalid specification (cycle). *)
  let doc =
    {|{"root":"W","modules":[
        {"id":0,"name":"I","kind":"input"},
        {"id":1,"name":"O","kind":"output"},
        {"id":2,"name":"A","kind":"atomic"},
        {"id":3,"name":"B","kind":"atomic"}],
      "workflows":[{"id":"W","title":"t","members":[0,1,2,3],
        "edges":[{"src":2,"dst":3,"data":["x"]},
                 {"src":3,"dst":2,"data":["y"]}]}]}|}
  in
  match Spec_codec.of_string doc with
  | exception Spec.Invalid _ -> ()
  | _ -> Alcotest.fail "expected Spec.Invalid"

(* ------------------------------------------------------------------ *)
(* Exec codec *)

let execs_equal a b =
  Wfpriv_graph.Digraph.equal (Execution.graph a) (Execution.graph b)
  && Execution.nb_items a = Execution.nb_items b
  && List.for_all2
       (fun (x : Execution.item) (y : Execution.item) -> x = y)
       (Execution.items a) (Execution.items b)
  && List.for_all
       (fun n ->
         Execution.node_kind a n = Execution.node_kind b n
         && Execution.scope a n = Execution.scope b n)
       (Execution.nodes a)
  && List.for_all
       (fun (u, v) -> Execution.edge_items a u v = Execution.edge_items b u v)
       (Wfpriv_graph.Digraph.edges (Execution.graph a))

let test_exec_roundtrip_disease () =
  let exec = Disease.run () in
  let s = Exec_codec.to_string exec in
  check Alcotest.bool "roundtrip equal" true
    (execs_equal exec (Exec_codec.of_string s))

let prop_exec_roundtrip_synthetic =
  QCheck.Test.make ~name:"exec codec roundtrips synthetic runs" ~count:15
    (QCheck.int_bound 100_000) (fun seed ->
      let _, exec = Synthetic.run (Rng.create seed) Synthetic.default_params in
      execs_equal exec (Exec_codec.of_string (Exec_codec.to_string exec)))

let test_value_codec () =
  let v =
    Data_value.record
      [
        ("xs", Data_value.List [ Data_value.Int 1; Data_value.Bool true ]);
        ("s", Data_value.Str "hi");
        ("u", Data_value.Unit);
      ]
  in
  check Alcotest.bool "value roundtrip" true
    (Data_value.equal v (Exec_codec.decode_value (Exec_codec.encode_value v)))

(* ------------------------------------------------------------------ *)
(* Policy codec *)

let test_policy_roundtrip () =
  let open Wfpriv_privacy in
  let policy =
    Policy.make
      ~expand_levels:[ ("W2", 1); ("W3", 2) ]
      ~data_levels:[ ("snps", 1) ]
      ~module_masks:[ (Disease.m1, [ "disorders" ], 2) ]
      Disease.spec
  in
  let decoded = Policy_codec.of_string (Policy_codec.to_string policy) in
  List.iter
    (fun w ->
      check Alcotest.int ("level of " ^ w)
        (Privilege.required_level (Policy.privilege policy) w)
        (Privilege.required_level (Policy.privilege decoded) w))
    [ "W1"; "W2"; "W3"; "W4" ];
  check
    Alcotest.(list string)
    "masked names at 0"
    (Policy.for_user policy 0).Policy.masked_names
    (Policy.for_user decoded 0).Policy.masked_names;
  check
    Alcotest.(list int)
    "protected modules"
    (Policy.protected_modules policy)
    (Policy.protected_modules decoded)

(* ------------------------------------------------------------------ *)
(* Wfdsl *)

let quickstart_src =
  {|
# Quickstart pipeline in the textual language.
workflow main "Quickstart pipeline" {
  input;
  output;
  module M1 "Clean samples";
  module M2 "Analyze cohort" expands sub keywords [cohort, analysis];
  I -> M1 [samples];
  M1 -> M2 [cleaned];
  M2 -> O [report];
}
workflow sub "Cohort analysis" {
  module M3 "Align reads";
  module M4 "Score variants";
  M3 -> M4 [aligned];
}
root main
|}

let test_wfdsl_parse () =
  let spec = Wfdsl.parse quickstart_src in
  check Alcotest.string "root" "main" (Spec.root spec);
  check Alcotest.int "modules" 6 (Spec.nb_modules spec);
  let m2 = Spec.find_module spec (Ids.m 2) in
  check Alcotest.bool "M2 composite" true (Module_def.is_composite m2);
  check
    Alcotest.(list string)
    "keywords" [ "cohort"; "analysis" ]
    m2.Module_def.keywords;
  check (Alcotest.option (Alcotest.list Alcotest.int)) "edge data present"
    (Some [ Ids.m 1 ])
    (Option.map
       (fun (e : Spec.edge) -> [ e.Spec.src ])
       (Spec.edge_between spec (Ids.m 1) (Ids.m 2)))

let test_wfdsl_print_parse_roundtrip () =
  let printed = Wfdsl.print Disease.spec in
  let reparsed = Wfdsl.parse printed in
  check Alcotest.bool "disease roundtrip" true (specs_equal Disease.spec reparsed)

let test_wfdsl_errors () =
  let expect_syntax src =
    match Wfdsl.parse src with
    | exception Wfdsl.Syntax_error _ -> ()
    | _ -> Alcotest.fail ("expected syntax error in: " ^ src)
  in
  expect_syntax "workflow w {";
  expect_syntax "workflow w { module Q; } root w";
  expect_syntax "workflow w { module M1 } root w";
  expect_syntax "workflow w { M1 -> ; } root w";
  expect_syntax "workflow w {} ";
  (match Wfdsl.parse_result "workflow w {\n  module M1 oops;\n} root w" with
  | Error msg ->
      check Alcotest.bool "error mentions line 2" true
        (String.length msg >= 6 && String.sub msg 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "expected error");
  (* Semantic error surfaces as Spec.Invalid. *)
  match Wfdsl.parse "workflow w { module M1; module M1; } root w" with
  | exception Spec.Invalid _ -> ()
  | _ -> Alcotest.fail "expected Spec.Invalid for duplicate module"

let test_wfdsl_quoted_keywords () =
  (* Keywords with spaces round-trip through quoting. *)
  let spec =
    Spec.create ~root:"w"
      [
        Module_def.input;
        Module_def.output;
        Module_def.make
          ~keywords:[ "disorder risk"; "plain" ]
          ~id:(Ids.m 1) ~name:"A" Module_def.Atomic;
      ]
      [
        {
          Spec.wf_id = "w";
          title = "t";
          members = [ Ids.input_module; Ids.output_module; Ids.m 1 ];
          edges =
            [
              { Spec.src = Ids.input_module; dst = Ids.m 1; data = [ "x" ] };
              { Spec.src = Ids.m 1; dst = Ids.output_module; data = [ "y" ] };
            ];
        };
      ]
  in
  let reparsed = Wfdsl.parse (Wfdsl.print spec) in
  check Alcotest.(list string) "keywords survive"
    [ "disorder risk"; "plain" ]
    (Spec.find_module reparsed (Ids.m 1)).Module_def.keywords

let prop_wfdsl_roundtrip_synthetic =
  QCheck.Test.make ~name:"wfdsl print ∘ parse = id on synthetic specs"
    ~count:20 (QCheck.int_bound 100_000) (fun seed ->
      let spec = Synthetic.spec (Rng.create seed) Synthetic.default_params in
      specs_equal spec (Wfdsl.parse (Wfdsl.print spec)))

let qtests = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "serial"
    [
      ( "json",
        [
          Alcotest.test_case "atoms" `Quick test_json_atoms;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "structures" `Quick test_json_structures;
          Alcotest.test_case "errors carry positions" `Quick test_json_errors;
        ]
        @ qtests [ prop_json_roundtrip; prop_json_pretty_roundtrip ] );
      ( "spec_codec",
        [
          Alcotest.test_case "disease roundtrip" `Quick
            test_spec_roundtrip_disease;
          Alcotest.test_case "rejects invalid spec" `Quick
            test_spec_decode_rejects_invalid;
        ]
        @ qtests [ prop_spec_roundtrip_synthetic ] );
      ( "exec_codec",
        [
          Alcotest.test_case "disease roundtrip" `Quick
            test_exec_roundtrip_disease;
          Alcotest.test_case "value roundtrip" `Quick test_value_codec;
        ]
        @ qtests [ prop_exec_roundtrip_synthetic ] );
      ( "policy_codec",
        [ Alcotest.test_case "roundtrip" `Quick test_policy_roundtrip ] );
      ( "wfdsl",
        [
          Alcotest.test_case "parse quickstart" `Quick test_wfdsl_parse;
          Alcotest.test_case "print/parse roundtrip (disease)" `Quick
            test_wfdsl_print_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_wfdsl_errors;
          Alcotest.test_case "quoted keywords" `Quick test_wfdsl_quoted_keywords;
        ]
        @ qtests [ prop_wfdsl_roundtrip_synthetic ] );
    ]
