(* Tests for the extension layers: Reach_cache, Dp_count, Planner,
   Observed_table and Query_parser. *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Disease = Wfpriv_workloads.Disease
module Synthetic = Wfpriv_workloads.Synthetic
module Rng = Wfpriv_workloads.Rng
module Digraph = Wfpriv_graph.Digraph
module Reachability = Wfpriv_graph.Reachability

let check = Alcotest.check
let exec = Disease.run ()

(* ------------------------------------------------------------------ *)
(* Reach_cache *)

let test_cache_hits_and_correctness () =
  let cache = Reach_cache.create () in
  let view = Exec_view.full exec in
  let key = Reach_cache.group_key ~entry:"disease" ~run:0 ~prefix:[ "W1" ] () in
  let g = Exec_view.graph view in
  let nodes = Exec_view.nodes view in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          check Alcotest.bool "cache agrees with DFS"
            (Reachability.reaches g u v)
            (Reach_cache.reaches cache ~key view u v))
        nodes)
    nodes;
  check Alcotest.int "one miss" 1 (Reach_cache.misses cache);
  check Alcotest.bool "many hits" true (Reach_cache.hits cache > 100);
  Reach_cache.clear cache;
  check Alcotest.int "cleared" 0 (Reach_cache.entries cache)

let test_cache_eviction () =
  let cache = Reach_cache.create ~capacity:2 () in
  let view = Exec_view.coarsest exec in
  List.iter
    (fun k -> ignore (Reach_cache.reaches cache ~key:k view 0 1))
    [ "a"; "b"; "c"; "a" ];
  check Alcotest.int "capacity respected" 2 (Reach_cache.entries cache);
  (* "a" was evicted by "c": 4 lookups, 4 misses is wrong — "a";"b";"c"
     miss, then "a" misses again after eviction. *)
  check Alcotest.int "misses" 4 (Reach_cache.misses cache)

let test_cache_in_repository () =
  let policy = Policy.make ~expand_levels:[ ("W2", 1) ] Disease.spec in
  let repo = Repository.create () in
  Repository.add repo ~name:"disease" ~policy ~executions:[ exec ] ();
  let cache = Reach_cache.create () in
  let q = Query_ast.before_by_name "Genetic" "Disorder Risk" in
  let uncached = Repository.structural_query repo ~level:0 "disease" q in
  let cached = Repository.structural_query ~cache repo ~level:0 "disease" q in
  let cached2 = Repository.structural_query ~cache repo ~level:0 "disease" q in
  check Alcotest.bool "answers agree" true
    (List.map (fun w -> w.Query_eval.holds) uncached
    = List.map (fun w -> w.Query_eval.holds) cached
    && cached = cached2);
  check Alcotest.int "closure computed once" 1 (Reach_cache.misses cache);
  check Alcotest.bool "second query hit the cache" true
    (Reach_cache.hits cache > 0)

(* ------------------------------------------------------------------ *)
(* Dp_count *)

let runs =
  [ exec; Disease.run_with
      [
        ("snps", Data_value.Str "rs0");
        ("ethnicity", Data_value.Str "x");
        ("lifestyle", Data_value.Str "y");
        ("family_history", Data_value.Str "z");
        ("symptoms", Data_value.Str "w");
      ];
  ]

let test_exact_counts () =
  check Alcotest.int "M6 ran in both" 2
    (Dp_count.exact_count runs (Dp_count.Module_ran Disease.m6));
  check Alcotest.int "no module M99" 0
    (Dp_count.exact_count runs (Dp_count.Module_ran 200));
  check Alcotest.int "disorders flowed in both" 2
    (Dp_count.exact_count runs (Dp_count.Data_flowed "disorders"));
  check Alcotest.int "M3 before M6 in both" 2
    (Dp_count.exact_count runs (Dp_count.Ran_before (Disease.m3, Disease.m6)));
  check Alcotest.int "M6 never before M3" 0
    (Dp_count.exact_count runs (Dp_count.Ran_before (Disease.m6, Disease.m3)))

let test_laplace_properties () =
  let rng = Rng.create 77 in
  let uniform () = Rng.float rng 1.0 in
  let n = 20_000 in
  let scale = 2.0 in
  let samples = List.init n (fun _ -> Dp_count.laplace ~uniform ~scale) in
  let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int n in
  let mean_abs =
    List.fold_left (fun a x -> a +. Float.abs x) 0.0 samples /. float_of_int n
  in
  check Alcotest.bool "mean near 0" true (Float.abs mean < 0.1);
  check Alcotest.bool "E|X| near scale" true (Float.abs (mean_abs -. scale) < 0.1);
  Alcotest.check_raises "bad scale"
    (Invalid_argument "Dp_count.laplace: scale <= 0") (fun () ->
      ignore (Dp_count.laplace ~uniform ~scale:0.0))

let test_noisy_count_accuracy () =
  let rng = Rng.create 5 in
  let uniform () = Rng.float rng 1.0 in
  let q = Dp_count.Module_ran Disease.m6 in
  let exact = float_of_int (Dp_count.exact_count runs q) in
  let trials = 2_000 in
  let err epsilon =
    let total =
      List.fold_left ( +. ) 0.0
        (List.init trials (fun _ ->
             Float.abs (Dp_count.noisy_count ~uniform ~epsilon runs q -. exact)))
    in
    total /. float_of_int trials
  in
  let e_tight = err 10.0 and e_loose = err 0.5 in
  check Alcotest.bool "higher epsilon, lower error" true (e_tight < e_loose);
  check Alcotest.bool "error tracks 1/epsilon (tight)" true
    (Float.abs (e_tight -. Dp_count.expected_absolute_error ~epsilon:10.0) < 0.05);
  check Alcotest.bool "error tracks 1/epsilon (loose)" true
    (Float.abs (e_loose -. Dp_count.expected_absolute_error ~epsilon:0.5) < 0.3)

(* ------------------------------------------------------------------ *)
(* Planner *)

let w3 = Spec.graph_of Disease.spec "W3"

let test_plan_single_extremes () =
  (* For M13⇝M11: deletion loses M12⇝M11 (1 collateral); clustering
     absorbs only the target (internal - 1 = 0) but fabricates M10⇝M14.
     alpha = 1 weighs concealment only -> clustering; alpha = 0 weighs
     fabrication only -> deletion. *)
  let p1 = Planner.plan ~alpha:1.0 w3 [ (Disease.m13, Disease.m11) ] in
  check Alcotest.bool "alpha=1 clusters" true
    ((List.hd p1.Planner.decisions).Planner.mechanism = Planner.Cluster);
  check Alcotest.bool "verified" true (Planner.verify w3 p1);
  check Alcotest.int "cluster absorbs only the target" 1 p1.Planner.facts_hidden;
  check Alcotest.int "cluster loses nothing external" 0 p1.Planner.facts_lost;
  let p0 = Planner.plan ~alpha:0.0 w3 [ (Disease.m13, Disease.m11) ] in
  check Alcotest.bool "alpha=0 deletes" true
    ((List.hd p0.Planner.decisions).Planner.mechanism = Planner.Delete);
  check Alcotest.bool "verified" true (Planner.verify w3 p0);
  check Alcotest.int "deletion fabricates nothing" 0 p0.Planner.facts_fabricated;
  (* Forcing overrides scoring. *)
  let pf = Planner.plan ~alpha:0.0 ~force:Planner.Cluster w3 [ (Disease.m13, Disease.m11) ] in
  check Alcotest.bool "forced cluster" true
    (List.for_all
       (fun (d : Planner.decision) -> d.Planner.mechanism = Planner.Cluster)
       pf.Planner.decisions);
  check Alcotest.bool "forced plan verified" true (Planner.verify w3 pf)

let test_plan_multiple_targets () =
  let targets = [ (Disease.m13, Disease.m11); (Disease.m9, Disease.m14) ] in
  let p = Planner.plan ~alpha:0.5 w3 targets in
  check Alcotest.bool "all targets hidden" true (Planner.verify w3 p);
  check Alcotest.int "decision per target" 2 (List.length p.Planner.decisions);
  (* The clustering (if any) must be disjoint and convex. *)
  List.iter
    (fun c ->
      check Alcotest.bool "convex" true
        (Structural_privacy.convex_closure w3 c = List.sort compare c))
    p.Planner.clustering

let test_plan_validation () =
  (match Planner.plan w3 [ (Disease.m10, Disease.m14) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of non-fact");
  (match Planner.plan w3 [ (Disease.m13, Disease.m11); (Disease.m13, Disease.m11) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of duplicates");
  match Planner.plan ~alpha:2.0 w3 [ (Disease.m13, Disease.m11) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of bad alpha"

let prop_plan_always_hides =
  QCheck.Test.make ~name:"planner hides every target (random DAGs)" ~count:40
    (QCheck.triple (QCheck.int_bound 10_000) (QCheck.int_bound 10)
       (QCheck.float_range 0.0 1.0))
    (fun (seed, shift, alpha) ->
      let rng = Rng.create seed in
      let g = Synthetic.random_dag rng ~nodes:12 ~edge_probability:0.3 in
      let facts =
        Reachability.closure_facts (Reachability.closure g)
      in
      if facts = [] then true
      else begin
        let targets =
          List.filteri (fun i _ -> i mod 5 = shift mod 5) facts
          |> List.filteri (fun i _ -> i < 3)
        in
        if targets = [] then true
        else begin
          let p = Planner.plan ~alpha g targets in
          Planner.verify g p
        end
      end)

(* ------------------------------------------------------------------ *)
(* Observed_table *)

let test_observed_rows_atomic () =
  match Observed_table.rows_of_run exec Disease.m3 with
  | [ row ] ->
      check
        Alcotest.(list string)
        "input names" [ "ethnicity"; "snps" ]
        (List.map fst row.Observed_table.inputs);
      check
        Alcotest.(list string)
        "output names" [ "expanded_snps" ]
        (List.map fst row.Observed_table.outputs)
  | rows -> Alcotest.fail (Printf.sprintf "expected 1 row, got %d" (List.length rows))

let test_observed_rows_composite () =
  match Observed_table.rows_of_run exec Disease.m1 with
  | [ row ] ->
      check
        Alcotest.(list string)
        "composite consumes the workflow inputs" [ "ethnicity"; "snps" ]
        (List.map fst row.Observed_table.inputs);
      check
        Alcotest.(list string)
        "composite emits disorders" [ "disorders" ]
        (List.map fst row.Observed_table.outputs)
  | rows -> Alcotest.fail (Printf.sprintf "expected 1 row, got %d" (List.length rows))

let test_observed_across_runs () =
  let rows = Observed_table.of_runs runs Disease.m3 in
  check Alcotest.int "two distinct patients, two rows" 2 (List.length rows);
  check Alcotest.bool "consistent with a function" true
    (Observed_table.functional rows);
  check (Alcotest.float 0.0001) "revealed fraction" 0.5
    (Observed_table.revealed_fraction ~domain_size:4 rows);
  (* Inconsistent observations are detected. *)
  let fake =
    [
      { Observed_table.inputs = [ ("x", Data_value.Int 0) ];
        outputs = [ ("y", Data_value.Int 1) ] };
      { Observed_table.inputs = [ ("x", Data_value.Int 0) ];
        outputs = [ ("y", Data_value.Int 2) ] };
    ]
  in
  check Alcotest.bool "conflict flagged" false (Observed_table.functional fake)

(* ------------------------------------------------------------------ *)
(* Query_parser *)

let test_parser_basics () =
  let cases =
    [
      "node(*)";
      "node(~\"OMIM\")";
      "node(atomic)";
      "edge(M5, M6)";
      "before(~\"Expand SNP Set\", ~\"Query OMIM\")";
      "carries(*, M9, \"disorders\")";
      "not node(composite)";
      "inside(~\"OMIM\", W4)";
      "refines(M2, ~\"Update\")";
      "(node(*) and node(atomic)) or not edge(I, O)";
    ]
  in
  List.iter
    (fun src ->
      match Query_parser.parse_result src with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (src ^ " -> " ^ e))
    cases

let test_parser_roundtrip () =
  let q =
    Query_ast.And
      ( Query_ast.Before
          (Query_ast.Name_matches "Expand SNP Set", Query_ast.Name_matches "Query OMIM"),
        Query_ast.Not (Query_ast.Node (Query_ast.Module_is Disease.m5)) )
  in
  let printed = Query_ast.to_string q in
  check Alcotest.string "parse ∘ to_string = id" printed
    (Query_ast.to_string (Query_parser.parse printed))

let test_parser_semantics () =
  let v = View.full Disease.spec in
  let q = Query_parser.parse "before(~\"Expand SNP\", ~\"OMIM\")" in
  check Alcotest.bool "parsed query evaluates" true (Query_eval.holds_spec v q);
  let q2 = Query_parser.parse "node(M5) and carries(M8, M9, \"disorders\")" in
  check Alcotest.bool "module refs and carries" true (Query_eval.holds_spec v q2)

let test_parser_errors () =
  List.iter
    (fun src ->
      match Query_parser.parse_result src with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("expected error: " ^ src))
    [ ""; "node("; "node(*) and"; "frobnicate(*)"; "node(*) node(*)";
      "before(*)"; "node(~unquoted)" ]

let prop_parser_roundtrip =
  (* Random ASTs print to text that parses back to the same AST. *)
  let open QCheck.Gen in
  let pred_gen =
    oneof
      [
        return Query_ast.Any;
        return Query_ast.Atomic_only;
        return Query_ast.Composite_only;
        map (fun n -> Query_ast.Module_is (Ids.m (1 + n))) (int_bound 14);
        map
          (fun s -> Query_ast.Name_matches s)
          (string_size ~gen:(char_range 'a' 'z') (int_range 1 6));
      ]
  in
  let ast =
    sized_size (int_bound 3)
      (fix (fun self n ->
           if n = 0 then map (fun p -> Query_ast.Node p) pred_gen
           else
             oneof
               [
                 map (fun p -> Query_ast.Node p) pred_gen;
                 map2 (fun a b -> Query_ast.Edge (a, b)) pred_gen pred_gen;
                 map2 (fun a b -> Query_ast.Before (a, b)) pred_gen pred_gen;
                 map2
                   (fun (a, b) d -> Query_ast.Carries (a, b, d))
                   (pair pred_gen pred_gen)
                   (string_size ~gen:(char_range 'a' 'z') (int_range 1 5));
                 map2 (fun a b -> Query_ast.And (a, b)) (self (n - 1)) (self (n - 1));
                 map2 (fun a b -> Query_ast.Or (a, b)) (self (n - 1)) (self (n - 1));
                 map (fun a -> Query_ast.Not a) (self (n - 1));
               ]))
  in
  QCheck.Test.make ~name:"query parser inverts to_string" ~count:200
    (QCheck.make ast) (fun q ->
      Query_parser.parse (Query_ast.to_string q) = q)

let qtests = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "extensions"
    [
      ( "reach_cache",
        [
          Alcotest.test_case "hits and correctness" `Quick
            test_cache_hits_and_correctness;
          Alcotest.test_case "eviction" `Quick test_cache_eviction;
          Alcotest.test_case "repository integration" `Quick
            test_cache_in_repository;
        ] );
      ( "dp_count",
        [
          Alcotest.test_case "exact counts" `Quick test_exact_counts;
          Alcotest.test_case "laplace sampler" `Quick test_laplace_properties;
          Alcotest.test_case "noisy count accuracy" `Quick
            test_noisy_count_accuracy;
        ] );
      ( "planner",
        [
          Alcotest.test_case "alpha extremes" `Quick test_plan_single_extremes;
          Alcotest.test_case "multiple targets" `Quick test_plan_multiple_targets;
          Alcotest.test_case "validation" `Quick test_plan_validation;
        ]
        @ qtests [ prop_plan_always_hides ] );
      ( "observed_table",
        [
          Alcotest.test_case "atomic rows" `Quick test_observed_rows_atomic;
          Alcotest.test_case "composite rows" `Quick test_observed_rows_composite;
          Alcotest.test_case "across runs" `Quick test_observed_across_runs;
        ] );
      ( "query_parser",
        [
          Alcotest.test_case "accepts the grammar" `Quick test_parser_basics;
          Alcotest.test_case "roundtrip" `Quick test_parser_roundtrip;
          Alcotest.test_case "evaluates" `Quick test_parser_semantics;
          Alcotest.test_case "rejects junk" `Quick test_parser_errors;
        ]
        @ qtests [ prop_parser_roundtrip ] );
    ]
