(* Tests for Path_query: regular path queries over views. *)

open Wfpriv_workflow
open Wfpriv_query
module Disease = Wfpriv_workloads.Disease

let check = Alcotest.check
let spec = Disease.spec
let full = View.full spec
let name s = Path_query.Atom (Query_ast.Name_matches s)

let test_exact_path () =
  (* I . Expand SNP . Generate Database Queries . Query OMIM: the precise
     module sequence of Fig. 1's upper path. *)
  let pattern =
    Path_query.(
      Seq (Atom (Query_ast.Module_is Ids.input_module),
           Seq (name "Expand SNP", Seq (name "Generate Database", name "OMIM"))))
  in
  check Alcotest.bool "exact sequence matches" true
    (Path_query.matches_spec full pattern ~src:Ids.input_module ~dst:Disease.m6);
  (* The same pattern cannot reach PubMed. *)
  check Alcotest.bool "wrong terminal" false
    (Path_query.matches_spec full pattern ~src:Ids.input_module ~dst:Disease.m7)

let test_star_and_alt () =
  (* I .* O — any complete path. *)
  let whole =
    Path_query.(
      Seq (Atom (Query_ast.Module_is Ids.input_module),
           Seq (anything, Atom (Query_ast.Module_is Ids.output_module))))
  in
  check Alcotest.bool "some complete path" true
    (Path_query.matches_spec full whole ~src:Ids.input_module
       ~dst:Ids.output_module);
  (* I . any* . (OMIM | PubMed) . any* . O — the flow passes one of the
     two external databases. *)
  let via_db =
    Path_query.(
      Seq ( Atom (Query_ast.Module_is Ids.input_module),
            Seq (anything,
                 Seq (Alt (name "Query OMIM", name "Query PubMed"),
                      Seq (anything, Atom (Query_ast.Module_is Ids.output_module))))))
  in
  check Alcotest.bool "passes a database" true
    (Path_query.matches_spec full via_db ~src:Ids.input_module
       ~dst:Ids.output_module)

let test_negation_by_construction () =
  (* Paths from M9 to M15 avoiding the private datasets: spell out the
     allowed steps (everything but M10/M11) — here via the PubMed side. *)
  let not_private =
    Path_query.(
      Seq (Atom (Query_ast.Module_is Disease.m9),
           Seq (Star (Alt (name "PubMed", Alt (name "Reformat", name "Summarize"))),
                Atom (Query_ast.Module_is Disease.m15))))
  in
  check Alcotest.bool "pubmed-side path avoids private datasets" true
    (Path_query.matches_spec full not_private ~src:Disease.m9 ~dst:Disease.m15);
  (* But from M10 there is no private-free continuation. *)
  let from_m10 =
    Path_query.(
      Seq (Atom (Query_ast.Module_is Disease.m10),
           Seq (Star (name "PubMed"), Atom (Query_ast.Module_is Disease.m15))))
  in
  check Alcotest.bool "M10 cannot avoid M11" false
    (Path_query.matches_spec full from_m10 ~src:Disease.m10 ~dst:Disease.m15)

let test_single_node_and_eps () =
  let self = Path_query.(Atom (Query_ast.Module_is Disease.m5)) in
  check Alcotest.bool "single-node word" true
    (Path_query.matches_spec full self ~src:Disease.m5 ~dst:Disease.m5);
  check Alcotest.bool "eps matches no node sequence" false
    (Path_query.matches_spec full Path_query.Eps ~src:Disease.m5 ~dst:Disease.m5)

let test_find_and_witness () =
  let pattern = Path_query.(Seq (name "Generate Database", name "Query OMIM")) in
  check
    Alcotest.(list (pair int int))
    "answer set" [ (Disease.m5, Disease.m6) ]
    (Path_query.find_spec full pattern);
  (match
     Path_query.witness_spec full
       Path_query.(
         Seq (Atom (Query_ast.Module_is Ids.input_module),
              Seq (anything, Atom (Query_ast.Module_is Disease.m8))))
       ~src:Ids.input_module ~dst:Disease.m8
   with
  | Some path ->
      check Alcotest.int "path starts at I" Ids.input_module (List.hd path);
      check Alcotest.int "path ends at M8" Disease.m8
        (List.hd (List.rev path));
      (* Consecutive nodes are view edges. *)
      let g = View.graph full in
      let rec ok = function
        | a :: (b :: _ as rest) ->
            Wfpriv_graph.Digraph.mem_edge g a b && ok rest
        | _ -> true
      in
      check Alcotest.bool "witness is a real path" true (ok path)
  | None -> Alcotest.fail "witness expected")

let test_privacy_via_views () =
  (* On the coarsest view the OMIM step is invisible: the pattern fails
     even though it holds on the full expansion. *)
  let coarse = View.coarsest spec in
  let pattern = Path_query.(Seq (anything, Seq (name "OMIM", anything))) in
  check Alcotest.bool "full view matches" true
    (Path_query.find_spec full pattern <> []);
  check Alcotest.bool "coarse view hides it" true
    (Path_query.find_spec coarse pattern = [])

let test_exec_paths () =
  let exec = Disease.run () in
  let ev = Exec_view.full exec in
  let src = Execution.node_of_process exec 2 (* S2:M3 *) in
  let dst = Execution.node_of_process exec 7 (* S7:M8 *) in
  let via_omim =
    Path_query.(Seq (any, Seq (anything, Seq (name "OMIM", Seq (anything, any)))))
  in
  check Alcotest.bool "execution path through OMIM" true
    (Path_query.matches_exec ev via_omim ~src ~dst);
  (* Begin/end nodes participate as their module. *)
  let begins =
    Path_query.(
      Seq (Atom (Query_ast.Module_is Disease.m4), Seq (anything, any)))
  in
  let b = Execution.node_of_process exec 3 in
  check Alcotest.bool "composite begin node matches" true
    (Path_query.matches_exec ev begins ~src:b ~dst);
  (* I/O pseudo-modules are addressable by their reserved ids. *)
  let i_node =
    List.find
      (fun n -> Execution.node_kind exec n = Execution.Input)
      (Execution.nodes exec)
  in
  let o_node =
    List.find
      (fun n -> Execution.node_kind exec n = Execution.Output)
      (Execution.nodes exec)
  in
  let whole =
    Path_query.(
      Seq ( Atom (Query_ast.Module_is Ids.input_module),
            Seq (anything, Atom (Query_ast.Module_is Ids.output_module))))
  in
  check Alcotest.bool "I ...* O over the execution" true
    (Path_query.matches_exec ev whole ~src:i_node ~dst:o_node)

let test_to_string () =
  check Alcotest.string "rendering" "(~\"a\" . ~\"b\"*)"
    (Path_query.to_string
       Path_query.(Seq (name "a", Star (name "b"))))

let () =
  Alcotest.run "pathquery"
    [
      ( "path_query",
        [
          Alcotest.test_case "exact sequence" `Quick test_exact_path;
          Alcotest.test_case "star and alternation" `Quick test_star_and_alt;
          Alcotest.test_case "avoidance by construction" `Quick
            test_negation_by_construction;
          Alcotest.test_case "single node / eps" `Quick test_single_node_and_eps;
          Alcotest.test_case "find and witness" `Quick test_find_and_witness;
          Alcotest.test_case "privacy via views" `Quick test_privacy_via_views;
          Alcotest.test_case "execution paths" `Quick test_exec_paths;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
    ]
