(* Differential and leakage tests for the compiled query engine (PR 2).

   The engine must be a pure refactor: identical witnesses to the
   pre-refactor evaluator (kept verbatim as [Legacy_eval]) on every
   workload, at every privilege level, for every operator — and no plan
   operator may ever emit a node the gate's level cannot see. *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Disease = Wfpriv_workloads.Disease
module Clinical = Wfpriv_workloads.Clinical
module Synthetic = Wfpriv_workloads.Synthetic
module Rng = Wfpriv_workloads.Rng

let check = Alcotest.check
let intl = Alcotest.(list int)

(* ------------------------------------------------------------------ *)
(* Workload fixtures *)

(* Depth-based expansion levels (as the CLI demo uses) for workloads
   without a policy: deeper workflows need more privilege. *)
let depth_privilege spec =
  let h = Hierarchy.of_spec spec in
  Privilege.make spec
    (Spec.workflow_ids spec
    |> List.filter (fun w -> w <> Spec.root spec)
    |> List.map (fun w -> (w, Hierarchy.depth h w)))

let disease =
  lazy (Disease.spec, depth_privilege Disease.spec, Disease.run ())

let clinical =
  lazy (Clinical.spec, Policy.privilege Clinical.policy, Clinical.run ())

let synthetic =
  lazy
    (let rng = Rng.create 7 in
     let spec, exec = Synthetic.run rng Synthetic.default_params in
     (spec, depth_privilege spec, exec))

let workloads =
  [ ("disease", disease); ("clinical", clinical); ("synthetic", synthetic) ]

(* ------------------------------------------------------------------ *)
(* Query catalog: every Query_ast operator, with ids drawn from the
   spec under test so the same catalog exercises all three workloads. *)

let first_data_name spec =
  let names =
    List.concat_map
      (fun w -> (Spec.find_workflow spec w).Spec.edges)
      (Spec.workflow_ids spec)
    |> List.concat_map (fun (e : Spec.edge) -> e.Spec.data)
  in
  match names with d :: _ -> d | [] -> "no-data"

let catalog spec =
  let open Query_ast in
  let ms = Spec.module_ids spec in
  let nth k = List.nth ms (k mod List.length ms) in
  let m_a = nth 2 and m_b = nth (List.length ms - 2) in
  let ws = Spec.workflow_ids spec in
  let w_deep = List.nth ws (List.length ws - 1) in
  let data = first_data_name spec in
  [
    Node Any;
    Node Atomic_only;
    Node Composite_only;
    Node (Module_is m_a);
    Node (Name_matches "e");
    Node (Name_matches "zzz-no-such-module");
    Edge (Any, Any);
    Edge (Name_matches "a", Any);
    Edge (Module_is m_a, Module_is m_b);
    Carries (Any, Any, data);
    Carries (Name_matches "a", Any, data);
    Carries (Any, Any, "zzz-no-such-data");
    Before (Any, Any);
    Before (Module_is m_a, Module_is m_b);
    Before (Module_is m_b, Module_is m_a);
    Before (Name_matches "a", Name_matches "e");
    Inside (Any, w_deep);
    Inside (Atomic_only, w_deep);
    Inside (Module_is m_a, Spec.root spec);
    Inside (Any, "zzz-no-such-workflow");
    Refines (Composite_only, Any);
    Refines (Any, Atomic_only);
    Refines (Composite_only, Module_is m_a);
    And (Node Any, Before (Any, Any));
    And (Node (Name_matches "zzz"), Node Any);
    Or (Node (Module_is m_a), Node (Module_is m_b));
    Or (Node (Name_matches "zzz"), Node Any);
    Or (Node (Name_matches "zzz"), Node (Name_matches "yyy"));
    Not (Before (Module_is m_b, Module_is m_a));
    Not (Node (Name_matches "zzz"));
    And (Or (Node (Module_is m_a), Node (Module_is m_b)), Not (Edge (Any, Any)));
  ]

let preds spec =
  let open Query_ast in
  let ms = Spec.module_ids spec in
  [
    Any;
    Atomic_only;
    Composite_only;
    Module_is (List.hd ms);
    Module_is (List.nth ms (List.length ms / 2));
    Name_matches "a";
    Name_matches "e";
    Name_matches "zzz-no-such-module";
  ]

(* ------------------------------------------------------------------ *)
(* Tentpole differential: engine == legacy evaluator, everywhere *)

let test_differential (name, workload) () =
  let spec, privilege, exec = Lazy.force workload in
  List.iter
    (fun level ->
      let ctx fmt = Printf.sprintf "%s level %d: %s" name level fmt in
      let v = Privilege.access_view privilege level in
      let ev = Privilege.access_exec_view privilege level exec in
      List.iter
        (fun q ->
          let qs = Query_ast.to_string q in
          let ls = Legacy_eval.eval_spec v q in
          let ns = Query_eval.eval_spec v q in
          check Alcotest.bool (ctx ("spec holds " ^ qs)) ls.Legacy_eval.holds
            ns.Query_eval.holds;
          check intl (ctx ("spec nodes " ^ qs)) ls.Legacy_eval.nodes
            ns.Query_eval.nodes;
          let le = Legacy_eval.eval_exec ev q in
          let ne = Query_eval.eval_exec ev q in
          check Alcotest.bool (ctx ("exec holds " ^ qs)) le.Legacy_eval.holds
            ne.Query_eval.holds;
          check intl (ctx ("exec nodes " ^ qs)) le.Legacy_eval.nodes
            ne.Query_eval.nodes)
        (catalog spec);
      List.iter
        (fun p ->
          check intl (ctx "spec matching")
            (Legacy_eval.spec_nodes_matching v p)
            (Query_eval.spec_nodes_matching v p);
          check intl (ctx "exec matching")
            (Legacy_eval.exec_nodes_matching ev p)
            (Query_eval.exec_nodes_matching ev p);
          check intl (ctx "provenance of matches")
            (Legacy_eval.provenance_of_matches ev p)
            (Query_eval.provenance_of_matches ev p))
        (preds spec))
    (Privilege.levels privilege)

(* ------------------------------------------------------------------ *)
(* Leakage: no plan operator's intermediate output may contain a node
   above the gate's level, on either the spec or the execution side. *)

let test_leakage (name, workload) () =
  let spec, privilege, exec = Lazy.force workload in
  List.iter
    (fun level ->
      let gate = Access_gate.make privilege ~level in
      let ev = Access_gate.exec_view gate exec in
      let eng = Engine.of_exec_view ev in
      let seng = Engine.of_spec_view (Access_gate.spec_view gate) in
      List.iter
        (fun q ->
          let plan = Plan.compile q in
          let _, trace = Engine.run_trace eng plan in
          List.iter
            (fun (op, nodes) ->
              List.iter
                (fun n ->
                  match Exec_view.module_of_node ev n with
                  | None -> () (* execution input/output: public *)
                  | Some m ->
                      if not (Access_gate.sees_module gate m) then
                        Alcotest.failf
                          "%s level %d: exec node %d (module %d) above level \
                           in operator %s"
                          name level n m (Plan.to_string op))
                nodes)
            trace;
          let _, strace = Engine.run_trace seng plan in
          List.iter
            (fun (op, ms) ->
              List.iter
                (fun m ->
                  if not (Access_gate.sees_module gate m) then
                    Alcotest.failf
                      "%s level %d: spec module %d above level in operator %s"
                      name level m (Plan.to_string op))
                ms)
            strace)
        (catalog spec))
    (Privilege.levels privilege)

(* ------------------------------------------------------------------ *)
(* Satellite: deterministic zoom-out (deepest offender, lexicographic
   tie-break) *)

let test_deepest_offender_deterministic () =
  let spec, privilege, exec = Lazy.force disease in
  let gate = Access_gate.make privilege ~level:0 in
  let h = Hierarchy.of_spec spec in
  let expected prefix =
    (* Independent reimplementation of the documented rule. *)
    match Access_gate.offending gate prefix with
    | [] -> None
    | off ->
        Some
          (List.fold_left
             (fun best w ->
               let dw = Hierarchy.depth h w and db = Hierarchy.depth h best in
               if dw > db || (dw = db && w < best) then w else best)
             (List.hd off) (List.tl off))
  in
  let all = Spec.workflow_ids spec in
  let rec drive prefix acc =
    match Access_gate.deepest_offender gate prefix with
    | None -> List.rev acc
    | Some w ->
        check
          Alcotest.(option string)
          "deepest offender matches the documented rule" (expected prefix)
          (Some w);
        drive (Access_gate.collapse gate prefix w) (w :: acc)
  in
  let seq1 = drive all [] in
  let seq2 = drive all [] in
  check Alcotest.(list string) "collapse sequence is reproducible" seq1 seq2;
  check Alcotest.bool "level 0 collapses something" true (seq1 <> []);
  (* Depth ties are broken towards the lexicographically smallest id. *)
  List.iter
    (fun w ->
      let tied =
        List.filter
          (fun w' ->
            Hierarchy.depth h w' = Hierarchy.depth h w
            && Access_gate.offending gate [ w' ] <> [])
          all
      in
      List.iter (fun w' -> check Alcotest.bool "lex min among ties" true (w <= w'))
        (List.filter (fun w' -> List.mem w' (Access_gate.offending gate all)) tied
         |> List.filter (fun w' ->
                match Access_gate.deepest_offender gate all with
                | Some d -> Hierarchy.depth h w' = Hierarchy.depth h d && w = d
                | None -> false)))
    (Option.to_list (Access_gate.deepest_offender gate all));
  (* Zoom-out and on-the-fly still agree through the gate entry points. *)
  let q = Query_ast.before_by_name "Expand SNP" "OMIM" in
  let a = Secure_eval.gated_on_the_fly gate exec q in
  let b = Secure_eval.gated_zoom_out gate exec q in
  check Alcotest.bool "zoom-out agrees with on-the-fly" true
    (Secure_eval.agree a b);
  let b' = Secure_eval.gated_zoom_out gate exec q in
  check Alcotest.int "round count is deterministic" b.Secure_eval.collapse_count
    b'.Secure_eval.collapse_count

(* ------------------------------------------------------------------ *)
(* Search pipeline: the compiled search plan reproduces the ranking
   primitives it replaced, and repository rankings are deterministic. *)

let entry_l = Alcotest.(list (pair string (float 1e-9)))

let to_pairs = List.map (fun (e : Ranking.entry) -> (e.Ranking.doc, e.Ranking.score))

let test_search_pipeline () =
  let entries =
    [
      { Ranking.doc = "alpha"; score = 0.31 };
      { Ranking.doc = "beta"; score = 0.3 };
      { Ranking.doc = "gamma"; score = 0.7 };
      { Ranking.doc = "delta"; score = 0.31 };
    ]
  in
  let lookup _ = entries in
  let run ?quantize ?top () =
    Engine.run_search ~lookup (Plan.compile_search ?quantize ?top [ "kw" ])
  in
  check entry_l "plain rank" (to_pairs (Ranking.rank entries)) (to_pairs (run ()));
  check entry_l "quantized rank"
    (to_pairs (Ranking.rank (Ranking.quantize ~width:0.25 entries)))
    (to_pairs (run ~quantize:0.25 ()));
  check entry_l "top-k projection"
    (to_pairs (Ranking.top_k 2 (Ranking.rank entries)))
    (to_pairs (run ~top:2 ()))

let repo_fixture () =
  let _, _, _ = Lazy.force disease in
  let repo = Repository.create () in
  let disease_policy =
    let spec = Disease.spec in
    let h = Hierarchy.of_spec spec in
    Policy.make
      ~expand_levels:
        (Spec.workflow_ids spec
        |> List.filter (fun w -> w <> Spec.root spec)
        |> List.map (fun w -> (w, Hierarchy.depth h w)))
      spec
  in
  Repository.add repo ~name:"disease" ~policy:disease_policy
    ~executions:[ Disease.run () ] ();
  Repository.add repo ~name:"clinical" ~policy:Clinical.policy
    ~executions:[ Clinical.run () ] ();
  repo

let test_repository_ranking_deterministic () =
  let repo = repo_fixture () in
  List.iter
    (fun level ->
      List.iter
        (fun quantize_scores ->
          let run () =
            Repository.keyword_search repo ~level ?quantize_scores
              [ "patient"; "record" ]
            |> List.map (fun h ->
                   (h.Repository.entry_name, h.Repository.score))
          in
          let a = run () and b = run () in
          check entry_l "ranking is deterministic" a b;
          let scores = List.map snd a in
          check Alcotest.bool "descending scores" true
            (List.sort (fun x y -> compare y x) scores = scores);
          match quantize_scores with
          | None -> ()
          | Some w ->
              List.iter
                (fun s ->
                  let buckets = s /. w in
                  check Alcotest.bool "score on quantization grid" true
                    (Float.abs (buckets -. Float.round buckets) < 1e-6))
                scores)
        [ None; Some 0.1 ])
    [ 0; 1; 2; 3 ]

let test_structural_query_cache_differential () =
  let repo = repo_fixture () in
  let cache = Reach_cache.create () in
  let q = Query_ast.Before (Query_ast.Any, Query_ast.Any) in
  List.iter
    (fun level ->
      List.iter
        (fun name ->
          let plain = Repository.structural_query repo ~level name q in
          let cached = Repository.structural_query ~cache repo ~level name q in
          let strip = List.map (fun w -> (w.Query_eval.holds, w.Query_eval.nodes)) in
          check
            Alcotest.(list (pair bool intl))
            (Printf.sprintf "%s level %d cached == uncached" name level)
            (strip plain) (strip cached))
        [ "disease"; "clinical" ])
    [ 0; 1; 2; 3 ];
  check Alcotest.bool "cache was exercised" true (Reach_cache.hits cache > 0)

(* ------------------------------------------------------------------ *)
(* Session and cache engine reuse *)

let test_session_engine_reuse () =
  let _, privilege, exec = Lazy.force disease in
  let s = Session.start privilege ~level:2 exec in
  let e1 = Session.engine s in
  check Alcotest.bool "engine memoized per view" true (e1 == Session.engine s);
  let q = Query_ast.Before (Query_ast.Any, Query_ast.Any) in
  let w = Session.query s q in
  let direct = Query_eval.eval_exec (Session.current s) q in
  check Alcotest.bool "session query holds" direct.Query_eval.holds
    w.Query_eval.holds;
  check intl "session query nodes" direct.Query_eval.nodes w.Query_eval.nodes;
  ignore (Session.zoom_to_access_view s);
  check Alcotest.bool "engine rebuilt after zoom" true (e1 != Session.engine s)

let test_reach_cache_engine () =
  let _, privilege, exec = Lazy.force disease in
  let c = Reach_cache.create ~capacity:2 () in
  let ev = Privilege.access_exec_view privilege 1 exec in
  let e1 = Reach_cache.engine c ~key:"g1" ev in
  check Alcotest.int "one miss" 1 (Reach_cache.misses c);
  let e2 = Reach_cache.engine c ~key:"g1" ev in
  check Alcotest.int "one hit" 1 (Reach_cache.hits c);
  check Alcotest.bool "same prepared engine" true (e1 == e2);
  check Alcotest.int "one entry" 1 (Reach_cache.entries c);
  (* FIFO eviction under the capacity bound. *)
  ignore (Reach_cache.engine c ~key:"g2" ev);
  ignore (Reach_cache.engine c ~key:"g3" ev);
  let e1' = Reach_cache.engine c ~key:"g1" ev in
  check Alcotest.bool "g1 was evicted and rebuilt" true (e1 != e1')

(* ------------------------------------------------------------------ *)
(* Plan compilation shapes *)

let test_plan_shapes () =
  let open Query_ast in
  let q = And (Before (Any, Atomic_only), Not (Node Any)) in
  (match Plan.compile q with
  | Plan.Guarded_and (Plan.Reach_join _, Plan.Complement (Plan.Node_scan _)) ->
      ()
  | p -> Alcotest.failf "unexpected plan %s" (Plan.to_string p));
  check Alcotest.int "operator count" 4 (Plan.operator_count (Plan.compile q));
  (match Plan.compile (Carries (Any, Any, "d")) with
  | Plan.Edge_join (_, _, Some "d") -> ()
  | p -> Alcotest.failf "unexpected plan %s" (Plan.to_string p));
  let s = Plan.compile_search ~quantize:0.25 ~top:3 [ "a"; "b" ] in
  check Alcotest.bool "search plan renders" true
    (String.length (Plan.search_to_string s) > 0);
  match s with
  | Plan.Project_top (3, Plan.Rank (Plan.Quantize (_, Plan.Keyword_lookup _)))
    ->
      ()
  | _ -> Alcotest.failf "unexpected search plan %s" (Plan.search_to_string s)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "engine"
    [
      ( "differential",
        List.map
          (fun wl ->
            Alcotest.test_case (fst wl) `Quick (test_differential wl))
          workloads );
      ( "leakage",
        List.map
          (fun wl -> Alcotest.test_case (fst wl) `Quick (test_leakage wl))
          workloads );
      ( "zoom",
        [
          Alcotest.test_case "deterministic deepest offender" `Quick
            test_deepest_offender_deterministic;
        ] );
      ( "search",
        [
          Alcotest.test_case "pipeline == ranking primitives" `Quick
            test_search_pipeline;
          Alcotest.test_case "repository ranking deterministic" `Quick
            test_repository_ranking_deterministic;
          Alcotest.test_case "structural query cache differential" `Quick
            test_structural_query_cache_differential;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "session engine" `Quick test_session_engine_reuse;
          Alcotest.test_case "reach cache engine" `Quick test_reach_cache_engine;
        ] );
      ("plan", [ Alcotest.test_case "shapes" `Quick test_plan_shapes ]);
    ]
