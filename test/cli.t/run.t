The CLI renders the paper's Fig. 2 view of the disease execution:

  $ wfpriv run --prefix W1
  execution view prefix {W1}
  I -> S1:M1 [d0,d1]
  I -> S8:M2 [d2,d3,d4]
  S1:M1 -> S8:M2 [d10]
  S8:M2 -> O [d19]
  

Structural queries respect privilege levels (the demo assignment needs
level 2 for W4's internals):

  $ wfpriv query 'before(~"Expand SNP", ~"OMIM")' --level 0
  before(~"Expand SNP", ~"OMIM") at level 0: false

  $ wfpriv query 'before(~"Expand SNP", ~"OMIM")' --level 2
  before(~"Expand SNP", ~"OMIM") at level 2: true

Several queries form one batch against one prepared view; --jobs sizes
the domain pool and never changes answers:

  $ wfpriv query --jobs 4 --level 2 'before(~"Expand SNP", ~"OMIM")' 'before(atomic, atomic)'
  before(~"Expand SNP", ~"OMIM") at level 2: true
  before(atomic, atomic) at level 2: true

Keyword search caps answers at the caller's access view:

  $ wfpriv search --level 0 risk
  keyword "risk": witnesses M2
  view prefix {W1}
    I
    O
    M1 "Determine Genetic Susceptibility"
    M2 "Evaluate Disorder Risk"
    I -> M1 [ethnicity, snps]
    I -> M2 [family_history, lifestyle, symptoms]
    M1 -> M2 [disorders]
    M2 -> O [prognosis]
  

Export to the textual language and reload the file:

  $ wfpriv export --format dsl > disease.wf
  $ wfpriv hierarchy -f disease.wf
  W1
    W2
      W4
    W3
  
  prefixes: 6

Structural privacy from the shell (module ids: M13 = 14, M11 = 12):

  $ wfpriv structural 14 12 -m deletion
  delete: M13->M11
  collateral facts lost: 1

  $ wfpriv structural 14 12 -m clustering
  cluster: {M11, M13}
  spurious facts fabricated: 1

Persisted repositories:

  $ wfpriv repo init demo.json
  wrote demo.json (2 entries)
  $ wfpriv repo search demo.json -l 3 database
  disease-susceptibility (score 4.22), view {W1, W2}
  $ wfpriv repo prov-search demo.json -l 0 omim
  no hits at level 0

Provenance search on the built-in workload:

  $ wfpriv search --provenance --level 0 risk | head -2
  keyword "risk": needs {W1}
  execution view prefix {W1}

Durable directory stores: a write-ahead log plus snapshots instead of a
single JSON file. Appends journal one mutation; recovery replays the log:

  $ wfpriv repo init demo.d
  initialised demo.d: 2 entries, 2 records, snapshot 0
  $ wfpriv repo append demo.d disease-susceptibility --seed 7
  appended to disease-susceptibility (generation 1, last lsn 4)
  $ wfpriv repo status demo.d
  segments: 1
  snapshot: 0
  replayed records: 3
  last lsn: 4
  generation: 1
  entries: 2
  index segments: 0
  memtable: 2
  pending merges: 0
  $ wfpriv repo recover demo.d
  recovered demo.d: snapshot 0, replayed 3 records, last lsn 4, 2 entries

Checkpointing moves the snapshot to the log head so compaction can drop
every fully-covered segment:

  $ wfpriv repo compact demo.d
  checkpoint at lsn 4, dropped 1 segment(s), pruned 1 snapshot(s)
  $ wfpriv repo status demo.d
  segments: 1
  snapshot: 4
  replayed records: 0
  last lsn: 5
  generation: 1
  entries: 2
  index segments: 0
  memtable: 2
  pending merges: 0

Queries work identically on both store flavours:

  $ wfpriv repo search demo.d -l 3 database
  disease-susceptibility (score 4.22), view {W1, W2}

The compressed privacy-partitioned keyword index: one build serves
every privilege level, a lookup at level l decodes only the <= l
partitions. `index-stats` reports its deterministic shape (here on the
demo repository both store flavours contain):

  $ wfpriv index-stats demo.json
  documents: 2
  terms: 78
  postings: 107
  encoded bytes: 321 (3.00 per posting)
  level 0: 29 partitions, 32 postings, 96 bytes
  level 1: 20 partitions, 24 postings, 72 bytes
  level 2: 27 partitions, 33 postings, 99 bytes
  level 3: 14 partitions, 18 postings, 54 bytes

  $ wfpriv index-stats demo.json --json | head -5
  {
    "documents": 2,
    "terms": 78,
    "postings": 107,
    "encoded_bytes": 321,

`repo topk` ranks entries through block-max WAND over that index. Its
corpus covers every module at privilege floor <= level (the witness
predicate), so the hidden "database" modules surface only with
privilege; scores cover all floor-visible modules where `repo search`
scores the access-view frontier:

  $ wfpriv repo topk demo.json -l 3 database
  disease-susceptibility (score 5.62)

  $ wfpriv repo topk demo.json -l 0 database
  no hits at level 0

  $ wfpriv repo topk demo.json -l 0 risk trial
  clinical-trial (score 1.41)
  disease-susceptibility (score 1.41)

Observability: `wfpriv stats` runs a canned query session and reports
the privilege-partitioned counters, the histograms, the observer view
at the session level, and the audit trail. Denied queries are audited
with the required privilege floor only — never the hidden structure:

  $ wfpriv stats
  counters:
    cache.evictions          0
    cache.hits               0
    cache.misses             0
    engine.batch_plans       3
    engine.batches           1
    engine.closure_builds    1
    engine.closure_rows      15
    engine.extend_rows       0
    engine.extends           0
    engine.prepares          1
    engine.rows              2
    engine.runs              0
    gate.denials             1
    gate.nodes               2
    gate.queries             3
    gate.views               1
    gate.zooms               0
    index.blocks_decoded     0
    index.blocks_skipped     0
    index.build_postings     0
    index.build_terms        0
    index.builds             0
    index.lookup_postings    0
    index.lookups            0
    index.topk_queries       0
    live_index.erases        0
    live_index.merges        0
    live_index.seals         0
    live_repo.publishes      0
    policy.break_glass       0
    policy.compiles          0
    policy.consent_updates   0
    recovery.bytes_scanned   0
    recovery.replayed        0
    recovery.runs            0
    repo.erasures            0
    server.admitted          0
    server.cache_evictions   0
    server.cache_hits        0
    server.cache_misses      0
    server.denied            0
    server.rejected          0
    server.requests          0
    server.shed              0
    shard.frontier_exchanges 0
    shard.frontier_prepares  0
    shard.frontier_queries   0
    shard.frontier_rounds    0
    shard.repo_appends       0
    shard.repo_batches       0
    shard.repo_opens         0
    shard.topk_pruned        0
    shard.topk_queries       0
    shard.topk_scanned       0
    wal.appends              0
    wal.bytes                0
    wal.fsyncs               0
  histograms:
    engine.closure_build_ns  count=1
    engine.compile_ns        count=3
    index.build_ns           count=0
    server.latency_ns.append count=0
    server.latency_ns.erase  count=0
    server.latency_ns.query  count=0
    server.latency_ns.stats  count=0
    server.latency_ns.topk   count=0
    server.latency_ns.zoom_out count=0
    server.queue_depth       count=0
    wal.append_ns            count=0
  observer view at level 1:
    gate.denials             1
    gate.nodes               2
    gate.queries             3
    gate.views               1
  audit:
    #1 gate.access_view level=1 allowed nodes=15
    #2 gate.query level=1 allowed nodes=0 q='before(~"Expand SNP", ~"OMIM")'
    #3 gate.query level=1 allowed nodes=2 q='node(~"risk")'
    #4 gate.query level=1 denied floor=2 nodes=0 q='inside(*, W4)'

The text report is deterministic: volatile metrics (pool activity,
timings) are excluded, so the parallel runtime reports identically:

  $ wfpriv stats > seq.txt
  $ wfpriv stats --jobs 4 > par.txt
  $ diff seq.txt par.txt

At a sufficient level the same query is allowed and audited as such:

  $ wfpriv stats --level 2 'inside(*, W4)' | tail -3
  audit:
    #1 gate.access_view level=2 allowed nodes=20
    #2 gate.query level=2 allowed nodes=4 q='inside(*, W4)'

--json emits the full snapshot (volatile metrics and histograms
included) as one machine-readable document:

  $ wfpriv stats --json | grep -E '"(outcome|floor|audit_dropped)"'
        "outcome": "allowed",
        "outcome": "allowed",
        "outcome": "allowed",
        "outcome": "denied",
        "floor": 2,
    "audit_dropped": 0

Durable erasure: a subject's raw bytes are scrubbed from every on-disk
artifact. Plant a sentinel value as a root input, prove it reaches the
WAL, erase it, and prove no store file holds the bytes any more:

  $ wfpriv repo init erase.d
  initialised erase.d: 2 entries, 2 records, snapshot 0
  $ wfpriv repo append erase.d disease-susceptibility --seed 41 --input snps=ERASURE_SENTINEL_XYZZY
  appended to disease-susceptibility (generation 1, last lsn 4)
  $ grep -Rl ERASURE_SENTINEL_XYZZY erase.d
  erase.d/wal-0000000000000001.log
  $ wfpriv repo erase erase.d disease-susceptibility --data snps
  erased disease-susceptibility/snps (generation 2, dropped 1 segment(s), pruned 1 snapshot(s))
  $ grep -Rl ERASURE_SENTINEL_XYZZY erase.d
  [1]
  $ wfpriv repo recover erase.d
  recovered erase.d: snapshot 6, replayed 0 records, last lsn 7, 2 entries

Erasing the whole entry tombstones it out of the store; recovery and
queries agree it was never there:

  $ wfpriv repo erase erase.d disease-susceptibility
  erased disease-susceptibility (generation 3, dropped 1 segment(s), pruned 1 snapshot(s))
  $ wfpriv repo status erase.d
  segments: 1
  snapshot: 9
  replayed records: 0
  last lsn: 10
  generation: 3
  entries: 1
  index segments: 0
  memtable: 1
  pending merges: 0
  $ wfpriv repo query erase.d disease-susceptibility -l 3 'node(~"risk")'
  wfpriv: unknown entry "disease-susceptibility" (erased or never stored)
  [2]

The policy algebra from the shell: role views union onto the legacy
floor, and the compiled gate is all the engine ever sees:

  $ wfpriv policy show -l 1
  policy at level 1:
  visible workflows: W1, W2
  readable data: prognosis
  masked data: disorders
  fingerprint: l1/w{W1,W2}/m{0,1,2,3,4,5}/d{disorders}
  audit:
  $ wfpriv policy show -l 1 --role nurse:2
  policy at level 1:
  visible workflows: W1, W2, W3
  readable data: disorders, prognosis
  masked data: (none)
  fingerprint: l1/w{W1,W2,W3}/m{0,1,2,3,4,5,10,11,12,13,14,15,16}/d{}
  audit:

A revoked consent overrides whatever the floor would have granted, and
the fingerprint separates the two views:

  $ wfpriv policy show -l 1 --consent alice:W3,disorders --revoke alice
  policy at level 1:
  visible workflows: W1, W2
  readable data: prognosis
  masked data: disorders
  fingerprint: l1/w{W1,W2}/m{0,1,2,3,4,5}/d{disorders}
  audit:
    #1 policy.consent level=0 allowed nodes=2 q='grant subject=alice'
    #2 policy.consent level=0 allowed nodes=0 q='revoke subject=alice'

Break-glass grants are time-boxed: active at issue, inert after the
ttl expires, both transitions on the audit log:

  $ wfpriv policy break-glass --actor oncall --grant-level 3 --ttl 2 --reason emergency
  t=0, break-glass active: true
  visible workflows: W1, W2, W3, W4
  readable data: disorders, prognosis
  masked data: (none)
  fingerprint: l1/w{W1,W2,W3,W4}/m{0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16}/d{}
  t=2, break-glass active: false
  visible workflows: W1, W2
  readable data: prognosis
  masked data: disorders
  fingerprint: l1/w{W1,W2}/m{0,1,2,3,4,5}/d{disorders}
  audit:
    #1 policy.break_glass level=3 allowed nodes=0 q='actor=oncall ttl=2 reason=emergency'
    #2 policy.break_glass_expire level=3 allowed nodes=0 q='actor=oncall'
