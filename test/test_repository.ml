(* Tests for Repository (integrated privacy-aware search) and Secure_eval
   (on-the-fly vs. zoom-out evaluation). *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Disease = Wfpriv_workloads.Disease
module Synthetic = Wfpriv_workloads.Synthetic
module Rng = Wfpriv_workloads.Rng

let check = Alcotest.check
let strl = Alcotest.(list string)
let spec = Disease.spec
let exec = Disease.run ()

let policy =
  Policy.make
    ~expand_levels:[ ("W2", 1); ("W3", 2); ("W4", 3) ]
    ~data_levels:[ ("disorders", 2) ]
    spec

let make_repo () =
  let repo = Repository.create () in
  Repository.add repo ~name:"disease" ~policy ~executions:[ exec ] ();
  repo

(* ------------------------------------------------------------------ *)
(* Repository basics *)

let test_repo_admin () =
  let repo = make_repo () in
  check strl "names" [ "disease" ] (Repository.names repo);
  check Alcotest.int "entries" 1 (Repository.nb_entries repo);
  let e = Repository.find repo "disease" in
  check Alcotest.int "stored executions" 1 (List.length e.Repository.executions);
  Repository.add_execution repo ~name:"disease" (Disease.run ());
  check Alcotest.int "after add_execution" 2
    (List.length (Repository.find repo "disease").Repository.executions);
  (match Repository.add repo ~name:"disease" ~policy () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate name accepted");
  match Repository.find repo "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_repo_search_respects_level () =
  let repo = make_repo () in
  (* "omim" is only on M6 (inside W4, level 3). *)
  check Alcotest.int "level 0 gets no omim hit" 0
    (List.length (Repository.keyword_search repo ~level:0 [ "omim" ]));
  let hits = Repository.keyword_search repo ~level:3 [ "omim" ] in
  check Alcotest.int "level 3 gets the hit" 1 (List.length hits);
  (* "risk" is public. *)
  let hits0 = Repository.keyword_search repo ~level:0 [ "risk" ] in
  check Alcotest.int "public hit" 1 (List.length hits0);
  let a = (List.hd hits0).Repository.answer in
  check strl "answer stays within the coarsest access view" [ "W1" ]
    (View.prefix a.Keyword.view)

let test_repo_search_caps_view () =
  let repo = make_repo () in
  (* At level 1 the user can open W2 but not W4; a "database" query would
     like to show W4's modules but must be capped. *)
  let hits =
    Repository.keyword_search repo ~level:1 ~strategy:`Specific [ "database" ]
  in
  check Alcotest.int "one hit" 1 (List.length hits);
  let a = (List.hd hits).Repository.answer in
  check Alcotest.bool "capped below W4" true
    (not (List.mem "W4" (View.prefix a.Keyword.view)))

let test_repo_search_ranking () =
  (* Two entries; the one whose visible modules mention the term more
     often ranks first. *)
  let repo = make_repo () in
  let rng = Rng.create 7 in
  let spec2 = Synthetic.spec rng Synthetic.default_params in
  let policy2 = Policy.make spec2 in
  Repository.add repo ~name:"synthetic" ~policy:policy2 ();
  let hits = Repository.keyword_search repo ~level:3 [ "risk" ] in
  (* Only the disease workflow mentions "risk". *)
  check
    (Alcotest.list Alcotest.string)
    "only disease matches" [ "disease" ]
    (List.map (fun h -> h.Repository.entry_name) hits);
  let corpus = Repository.visible_corpus repo ~level:3 in
  check Alcotest.bool "corpus covers both entries" true
    (Tfidf.nb_docs corpus = 2)

let test_repo_structural_query () =
  let repo = make_repo () in
  let q = Query_ast.before_by_name "Expand SNP" "OMIM" in
  (match Repository.structural_query repo ~level:3 "disease" q with
  | [ w ] -> check Alcotest.bool "holds at level 3" true w.Query_eval.holds
  | _ -> Alcotest.fail "expected one witness");
  match Repository.structural_query repo ~level:0 "disease" q with
  | [ w ] -> check Alcotest.bool "hidden at level 0" false w.Query_eval.holds
  | _ -> Alcotest.fail "expected one witness"

(* ------------------------------------------------------------------ *)
(* Secure_eval: both strategies agree; zoom-out works harder *)

let privilege = Policy.privilege policy

let test_secure_eval_agreement () =
  let q = Query_ast.before_by_name "Expand SNP" "OMIM" in
  List.iter
    (fun level ->
      let a = Secure_eval.on_the_fly privilege ~level exec q in
      let b = Secure_eval.zoom_out privilege ~level exec q in
      check Alcotest.bool
        (Printf.sprintf "agree at level %d" level)
        true (Secure_eval.agree a b))
    [ 0; 1; 2; 3 ]

let test_secure_eval_costs () =
  let q = Query_ast.Node Query_ast.Any in
  let a = Secure_eval.on_the_fly privilege ~level:0 exec q in
  let b = Secure_eval.zoom_out privilege ~level:0 exec q in
  check Alcotest.int "on-the-fly builds one view" 1 a.Secure_eval.collapse_count;
  (* Zoom-out starts from the full 4-workflow expansion and must strip
     W4, W3, W2: three extra reconstructions. *)
  check Alcotest.int "zoom-out rebuilds repeatedly" 4 b.Secure_eval.collapse_count;
  check strl "both end at the access view" (Privilege.access_prefix privilege 0)
    b.Secure_eval.final_prefix

let prop_strategies_agree_on_synthetic =
  QCheck.Test.make ~name:"on-the-fly and zoom-out agree on synthetic runs"
    ~count:20
    (QCheck.pair (QCheck.int_bound 10_000) (QCheck.int_bound 3))
    (fun (seed, level) ->
      let rng = Rng.create seed in
      let spec, exec = Synthetic.run rng Synthetic.default_params in
      let assignments =
        List.filteri (fun i _ -> i > 0) (Spec.workflow_ids spec)
        |> List.mapi (fun i w -> (w, 1 + (i mod 3)))
      in
      let privilege = Privilege.make spec assignments in
      let q =
        Query_ast.Before (Query_ast.Atomic_only, Query_ast.Atomic_only)
      in
      let a = Secure_eval.on_the_fly privilege ~level exec q in
      let b = Secure_eval.zoom_out privilege ~level exec q in
      Secure_eval.agree a b)

let () =
  Alcotest.run "repository"
    [
      ( "repository",
        [
          Alcotest.test_case "admin" `Quick test_repo_admin;
          Alcotest.test_case "search respects levels" `Quick
            test_repo_search_respects_level;
          Alcotest.test_case "search caps views" `Quick test_repo_search_caps_view;
          Alcotest.test_case "ranking" `Quick test_repo_search_ranking;
          Alcotest.test_case "structural query" `Quick test_repo_structural_query;
        ] );
      ( "secure_eval",
        [
          Alcotest.test_case "strategies agree" `Quick test_secure_eval_agreement;
          Alcotest.test_case "cost asymmetry" `Quick test_secure_eval_costs;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_strategies_agree_on_synthetic ] );
    ]
