(* Tests for Privilege, Data_privacy, Module_privacy (Γ-privacy), Policy
   and Audit. *)

open Wfpriv_workflow
open Wfpriv_privacy
module Disease = Wfpriv_workloads.Disease

let check = Alcotest.check
let strl = Alcotest.(list string)
let spec = Disease.spec

(* ------------------------------------------------------------------ *)
(* Privilege / access views *)

let privilege = Privilege.make spec [ ("W2", 1); ("W3", 2); ("W4", 3) ]

let test_privilege_monotone () =
  check Alcotest.int "root is public" 0 (Privilege.required_level privilege "W1");
  check Alcotest.int "W2" 1 (Privilege.required_level privilege "W2");
  check Alcotest.int "W4 inherits max of chain" 3
    (Privilege.required_level privilege "W4");
  (* Even if W4 declared lower than its parent, the chain max applies. *)
  let p2 = Privilege.make spec [ ("W2", 2); ("W4", 1) ] in
  check Alcotest.int "child bumped to parent level" 2
    (Privilege.required_level p2 "W4")

let test_access_prefix_is_prefix () =
  let hierarchy = Hierarchy.of_spec spec in
  List.iter
    (fun level ->
      let p = Privilege.access_prefix privilege level in
      check Alcotest.bool
        (Printf.sprintf "prefix at level %d" level)
        true
        (Hierarchy.is_prefix hierarchy p))
    [ 0; 1; 2; 3; 42 ]

let test_access_views () =
  check strl "level 0 sees only W1" [ "W1" ]
    (Privilege.access_prefix privilege 0);
  check strl "level 1 adds W2" [ "W1"; "W2" ] (Privilege.access_prefix privilege 1);
  check strl "level 2 adds W3" [ "W1"; "W2"; "W3" ]
    (Privilege.access_prefix privilege 2);
  check strl "level 3 sees all" [ "W1"; "W2"; "W3"; "W4" ]
    (Privilege.access_prefix privilege 3);
  check Alcotest.int "min level to see M5" 3
    (Privilege.min_level_to_see privilege Disease.m5);
  check Alcotest.int "min level to see M9" 2
    (Privilege.min_level_to_see privilege Disease.m9);
  check Alcotest.int "min level to see M1" 0
    (Privilege.min_level_to_see privilege Disease.m1);
  check (Alcotest.list Alcotest.int) "levels in use" [ 0; 1; 2; 3 ]
    (Privilege.levels privilege)

let test_privilege_validation () =
  Alcotest.check_raises "unknown workflow"
    (Invalid_argument "Privilege.make: unknown workflow W9") (fun () ->
      ignore (Privilege.make spec [ ("W9", 1) ]));
  Alcotest.check_raises "negative level"
    (Invalid_argument "Privilege.make: negative level") (fun () ->
      ignore (Privilege.make spec [ ("W2", -1) ]))

(* ------------------------------------------------------------------ *)
(* Data privacy *)

let classification =
  Data_privacy.make [ ("disorders", 2); ("snps", 1); ("prognosis", 2) ]

let test_data_masking () =
  let exec = Disease.run () in
  let low = Data_privacy.project classification 0 exec in
  let mid = Data_privacy.project classification 1 exec in
  let high = Data_privacy.project classification 2 exec in
  check Alcotest.bool "d10 masked at 0" true (Data_privacy.is_masked low 10);
  check Alcotest.bool "d10 masked at 1" true (Data_privacy.is_masked mid 10);
  check Alcotest.bool "d10 readable at 2" false (Data_privacy.is_masked high 10);
  check Alcotest.bool "d0 masked at 0" true (Data_privacy.is_masked low 0);
  check Alcotest.bool "d0 readable at 1" false (Data_privacy.is_masked mid 0);
  check Alcotest.string "masked value is *" "*"
    (Data_value.to_string (Data_privacy.value_of low 10));
  check (Alcotest.list Alcotest.int) "masked items at level 0" [ 0; 10; 19 ]
    (Data_privacy.masked_items low);
  check (Alcotest.float 0.001) "visible ratio at 0" (17.0 /. 20.0)
    (Data_privacy.visible_ratio low);
  check strl "sensitive names at level 1" [ "disorders"; "prognosis" ]
    (Data_privacy.sensitive_names classification 1)

(* ------------------------------------------------------------------ *)
(* Module privacy: Γ-privacy *)

(* XOR module: y = x0 xor x1. Visible in full, it is fully determined; a
   classic example where hiding only the output or only one input gives
   the whole story away under equality of visible rows. *)
let xor_table =
  Module_privacy.of_function
    ~inputs:[ Module_privacy.int_attr "x0" 2; Module_privacy.int_attr "x1" 2 ]
    ~outputs:[ Module_privacy.int_attr "y" 2 ]
    (fun x ->
      match (x.(0), x.(1)) with
      | Data_value.Int a, Data_value.Int b -> [| Data_value.Int (a lxor b) |]
      | _ -> assert false)

let test_gamma_no_hiding () =
  check Alcotest.int "no hiding => Γ = 1" 1
    (Module_privacy.privacy_level xor_table ~hidden:[]);
  check Alcotest.bool "safe for Γ=1" true
    (Module_privacy.is_safe xor_table ~hidden:[] ~gamma:1);
  check Alcotest.bool "unsafe for Γ=2" false
    (Module_privacy.is_safe xor_table ~hidden:[] ~gamma:2)

let test_gamma_hide_output () =
  (* Hiding y: for any input the candidate outputs range over dom(y). *)
  check Alcotest.int "hide y => Γ = 2" 2
    (Module_privacy.privacy_level xor_table ~hidden:[ "y" ]);
  check Alcotest.int "candidates per input" 2
    (Module_privacy.candidate_outputs xor_table ~hidden:[ "y" ]
       [| Data_value.Int 0; Data_value.Int 1 |])

let test_gamma_hide_input () =
  (* Hiding x0: visible rows (x1=0 -> y∈{0,1}), so 2 candidates. *)
  check Alcotest.int "hide x0 => Γ = 2" 2
    (Module_privacy.privacy_level xor_table ~hidden:[ "x0" ]);
  check Alcotest.int "hide both inputs => Γ = 2" 2
    (Module_privacy.privacy_level xor_table ~hidden:[ "x0"; "x1" ])

let test_gamma_max () =
  check Alcotest.int "max achievable" 2 (Module_privacy.max_achievable_gamma xor_table);
  check Alcotest.int "hide everything" 2
    (Module_privacy.privacy_level xor_table ~hidden:[ "x0"; "x1"; "y" ])

let test_optimal_hiding () =
  (* Γ=2 is achievable by hiding any single attribute; unit weights make
     the lexicographically-smallest singleton optimal. *)
  check
    (Alcotest.option strl)
    "unit-weight optimum"
    (Some [ "x0" ])
    (Module_privacy.optimal_hiding xor_table ~gamma:2);
  (* Make inputs expensive: the optimum flips to the output. *)
  let weights a = if a = "y" then 1 else 10 in
  check
    (Alcotest.option strl)
    "weighted optimum"
    (Some [ "y" ])
    (Module_privacy.optimal_hiding ~weights xor_table ~gamma:2);
  check (Alcotest.option strl) "unachievable Γ" None
    (Module_privacy.optimal_hiding xor_table ~gamma:3)

let prop_ordered_matches_exhaustive =
  QCheck.Test.make
    ~name:"best-first exact search matches exhaustive cost" ~count:40
    (QCheck.pair (QCheck.int_bound 10_000) (QCheck.int_range 2 4))
    (fun (seed, gamma) ->
      let rng = Wfpriv_workloads.Rng.create seed in
      let table =
        Wfpriv_workloads.Synthetic.random_table rng ~n_inputs:2 ~n_outputs:2
          ~domain_size:2
      in
      let weights n = 1 + (Hashtbl.hash n mod 4) in
      let a = Module_privacy.optimal_hiding ~weights table ~gamma in
      let b = Module_privacy.optimal_hiding_ordered ~weights table ~gamma in
      match (a, b) with
      | None, None -> true
      | Some ha, Some hb ->
          Module_privacy.hiding_cost weights ha
          = Module_privacy.hiding_cost weights hb
          && Module_privacy.is_safe table ~hidden:hb ~gamma
      | _ -> false)

let test_ordered_beyond_cap () =
  (* 22 attributes defeat the exhaustive enumerator but not the ordered
     one (a cheap safe set exists: hide the single output). Singleton
     input domains keep the table tiny while the attribute count is what
     trips the cap. *)
  let inputs = List.init 21 (fun i -> Module_privacy.int_attr (Printf.sprintf "x%d" i) 1) in
  let outputs = [ Module_privacy.int_attr "y" 4 ] in
  let table =
    Module_privacy.of_function ~inputs ~outputs (fun x ->
        let sum =
          Array.fold_left
            (fun acc v -> match v with Data_value.Int n -> acc + n | _ -> acc)
            0 x
        in
        [| Data_value.Int (sum mod 4) |])
  in
  (match Module_privacy.optimal_hiding table ~gamma:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "exhaustive enumerator should refuse 22 attributes");
  match Module_privacy.optimal_hiding_ordered table ~gamma:4 with
  | Some [ "y" ] -> ()
  | Some other ->
      Alcotest.fail ("unexpected hidden set: " ^ String.concat "," other)
  | None -> Alcotest.fail "Γ=4 is achievable by hiding y"

let test_greedy_hiding_safe () =
  match Module_privacy.greedy_hiding xor_table ~gamma:2 with
  | Some hidden ->
      check Alcotest.bool "greedy result is safe" true
        (Module_privacy.is_safe xor_table ~hidden ~gamma:2)
  | None -> Alcotest.fail "greedy failed on achievable Γ"

(* A wider module: 3 input bits, 2 output bits, y = (parity, majority). *)
let wide_table =
  Module_privacy.of_function
    ~inputs:
      [
        Module_privacy.int_attr "a" 2;
        Module_privacy.int_attr "b" 2;
        Module_privacy.int_attr "c" 2;
      ]
    ~outputs:
      [ Module_privacy.int_attr "parity" 2; Module_privacy.int_attr "majority" 2 ]
    (fun x ->
      let v i = match x.(i) with Data_value.Int n -> n | _ -> assert false in
      let s = v 0 + v 1 + v 2 in
      [| Data_value.Int (s land 1); Data_value.Int (if s >= 2 then 1 else 0) |])

let test_wide_optimal_vs_greedy () =
  List.iter
    (fun gamma ->
      match
        ( Module_privacy.optimal_hiding wide_table ~gamma,
          Module_privacy.greedy_hiding wide_table ~gamma )
      with
      | Some opt, Some greedy ->
          check Alcotest.bool
            (Printf.sprintf "both safe at Γ=%d" gamma)
            true
            (Module_privacy.is_safe wide_table ~hidden:opt ~gamma
            && Module_privacy.is_safe wide_table ~hidden:greedy ~gamma);
          check Alcotest.bool "greedy cost >= optimal cost" true
            (Module_privacy.hiding_cost Module_privacy.unit_weights greedy
            >= Module_privacy.hiding_cost Module_privacy.unit_weights opt)
      | None, None -> ()
      | _ -> Alcotest.fail "optimal and greedy disagree on achievability")
    [ 2; 3; 4 ]

let test_table_validation () =
  (* Incomplete row set. *)
  (match
     Module_privacy.make_table
       ~inputs:[ Module_privacy.int_attr "x" 2 ]
       ~outputs:[ Module_privacy.int_attr "y" 2 ]
       [ ([| Data_value.Int 0 |], [| Data_value.Int 0 |]) ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected incomplete-domain rejection");
  (* Value outside its domain. *)
  match
    Module_privacy.make_table
      ~inputs:[ Module_privacy.int_attr "x" 2 ]
      ~outputs:[ Module_privacy.int_attr "y" 2 ]
      [
        ([| Data_value.Int 0 |], [| Data_value.Int 5 |]);
        ([| Data_value.Int 1 |], [| Data_value.Int 0 |]);
      ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected out-of-domain rejection"

let test_lookup () =
  let y =
    Module_privacy.lookup xor_table [| Data_value.Int 1; Data_value.Int 1 |]
  in
  check Alcotest.int "xor(1,1) = 0" 0
    (match y.(0) with Data_value.Int n -> n | _ -> -1)

(* Workflow-level network: m1 -> m2 chained through shared attribute "t". *)
let chain_network =
  let t1 =
    Module_privacy.of_function
      ~inputs:[ Module_privacy.int_attr "x" 2 ]
      ~outputs:[ Module_privacy.int_attr "t" 2 ]
      (fun x -> [| x.(0) |])
  in
  let t2 =
    Module_privacy.of_function
      ~inputs:[ Module_privacy.int_attr "t" 2 ]
      ~outputs:[ Module_privacy.int_attr "z" 2 ]
      (fun x ->
        match x.(0) with
        | Data_value.Int n -> [| Data_value.Int (1 - n) |]
        | _ -> assert false)
  in
  Module_privacy.make_network [ (Ids.m 1, t1); (Ids.m 2, t2) ]

let test_network_sharing () =
  check strl "shared attribute names" [ "t"; "x"; "z" ]
    (Module_privacy.network_attr_names chain_network);
  (* Hiding "t" hides m1's output AND m2's input simultaneously. *)
  let levels = Module_privacy.network_privacy_level chain_network ~hidden:[ "t" ] in
  check Alcotest.int "m1 gets Γ=2 from hiding t" 2 (List.assoc (Ids.m 1) levels);
  (* m2's output z is still visible: z = 1 - t reveals t, so hiding t
     alone leaves m2 exposed? No: with t hidden, for input t the visible
     relation pairs () with both z values — Γ(m2) = 2 as well. *)
  check Alcotest.int "m2 level" 2 (List.assoc (Ids.m 2) levels);
  check Alcotest.bool "network safe at Γ=2 hiding t" true
    (Module_privacy.network_is_safe chain_network ~hidden:[ "t" ] ~gamma:2)

let test_network_optimal () =
  check
    (Alcotest.option strl)
    "single shared attribute suffices"
    (Some [ "t" ])
    (Module_privacy.optimal_network_hiding chain_network ~gamma:2);
  match Module_privacy.greedy_network_hiding chain_network ~gamma:2 with
  | Some hidden ->
      check Alcotest.bool "greedy network safe" true
        (Module_privacy.network_is_safe chain_network ~hidden ~gamma:2)
  | None -> Alcotest.fail "greedy network failed"

(* Property: the optimal hiding set is always safe and never beats a
   manually-verified exhaustive scan. *)
let prop_optimal_is_minimal =
  QCheck.Test.make ~name:"optimal hiding is safe and minimal" ~count:25
    (QCheck.int_bound 1000) (fun seed ->
      let rng = Wfpriv_workloads.Rng.create seed in
      let table =
        Wfpriv_workloads.Synthetic.random_table rng ~n_inputs:2 ~n_outputs:1
          ~domain_size:2
      in
      let gamma = 2 in
      match Module_privacy.optimal_hiding table ~gamma with
      | None ->
          (* Must genuinely be unachievable even hiding everything. *)
          not
            (Module_privacy.is_safe table
               ~hidden:(Module_privacy.attr_names table)
               ~gamma)
      | Some hidden ->
          Module_privacy.is_safe table ~hidden ~gamma
          &&
          (* No strictly cheaper subset is safe: check all subsets. *)
          let names = Module_privacy.attr_names table in
          let n = List.length names in
          let cost = List.length in
          List.for_all
            (fun mask ->
              let subset =
                List.filteri (fun i _ -> mask land (1 lsl i) <> 0) names
              in
              (not (Module_privacy.is_safe table ~hidden:subset ~gamma))
              || cost subset >= cost hidden)
            (List.init (1 lsl n) Fun.id))

let prop_greedy_always_safe =
  QCheck.Test.make ~name:"greedy hiding, when Some, is safe" ~count:40
    (QCheck.pair (QCheck.int_bound 1000) (QCheck.int_range 2 4))
    (fun (seed, gamma) ->
      let rng = Wfpriv_workloads.Rng.create seed in
      let table =
        Wfpriv_workloads.Synthetic.random_table rng ~n_inputs:2 ~n_outputs:2
          ~domain_size:2
      in
      match Module_privacy.greedy_hiding table ~gamma with
      | Some hidden -> Module_privacy.is_safe table ~hidden ~gamma
      | None -> gamma > Module_privacy.max_achievable_gamma table)

let prop_hiding_monotone =
  QCheck.Test.make ~name:"Γ is monotone in the hidden set" ~count:40
    (QCheck.int_bound 1000) (fun seed ->
      let rng = Wfpriv_workloads.Rng.create seed in
      let table =
        Wfpriv_workloads.Synthetic.random_table rng ~n_inputs:2 ~n_outputs:1
          ~domain_size:3
      in
      let names = Module_privacy.attr_names table in
      let rec prefixes acc = function
        | [] -> [ acc ]
        | x :: rest -> acc :: prefixes (x :: acc) rest
      in
      let chains = prefixes [] names in
      let levels =
        List.map (fun h -> Module_privacy.privacy_level table ~hidden:h) chains
      in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
        | _ -> true
      in
      non_decreasing levels)

(* ------------------------------------------------------------------ *)
(* Spec_tables: tabulating real workflow modules *)

let snps_domain = [ Data_value.Str "rs1"; Data_value.Str "rs2"; Data_value.Str "rs3" ]
let ethnicity_domain = [ Data_value.Str "a"; Data_value.Str "b" ]

let disease_domains =
  [ ("snps", snps_domain); ("ethnicity", ethnicity_domain) ]

let test_spec_tables_names () =
  check strl "M3 receives the workflow inputs routed to M1"
    [ "ethnicity"; "snps" ]
    (Spec_tables.input_names spec Disease.m3);
  check strl "M3 sends the expanded set" [ "expanded_snps" ]
    (Spec_tables.output_names spec Disease.m3);
  (* M9 sits at a composite boundary: full expansion routes M8's output
     and the root inputs to it. *)
  check strl "M9 inputs"
    [ "disorders"; "family_history"; "lifestyle"; "symptoms" ]
    (Spec_tables.input_names spec Disease.m9)

let test_spec_tables_tabulate () =
  let table = Spec_tables.tabulate spec Disease.semantics ~domains:disease_domains Disease.m3 in
  check Alcotest.int "3x2 input combinations" 6 (Module_privacy.nb_rows table);
  (* M3 ignores ethnicity, so its output domain has 3 values. *)
  check Alcotest.int "Γ hiding snps = 3" 3
    (Module_privacy.privacy_level table ~hidden:[ "snps" ]);
  check Alcotest.int "Γ hiding ethnicity stays 1" 1
    (Module_privacy.privacy_level table ~hidden:[ "ethnicity" ]);
  check Alcotest.int "Γ hiding the output = 3" 3
    (Module_privacy.privacy_level table ~hidden:[ "expanded_snps" ])

let test_spec_tables_unsupported () =
  (match Spec_tables.tabulate spec Disease.semantics ~domains:disease_domains Disease.m1 with
  | exception Spec_tables.Unsupported _ -> ()
  | _ -> Alcotest.fail "composite modules cannot be tabulated");
  match Spec_tables.tabulate spec Disease.semantics ~domains:[] Disease.m3 with
  | exception Spec_tables.Unsupported _ -> ()
  | _ -> Alcotest.fail "missing domains must be rejected"

let test_spec_tables_recommend () =
  match
    Spec_tables.recommend_masks spec Disease.semantics ~domains:disease_domains
      ~private_modules:[ Disease.m3 ] ~gamma:3 ~level:2
  with
  | None -> Alcotest.fail "Γ=3 is achievable for M3"
  | Some masks ->
      (* Install the masks into a policy and check the hidden names are
         masked for low-privilege users. *)
      let policy = Policy.make ~module_masks:masks spec in
      let uv = Policy.for_user policy 0 in
      check Alcotest.bool "some name masked at level 0" true
        (uv.Policy.masked_names <> []);
      let exec = Disease.run () in
      let _, proj = Policy.project_execution policy 0 exec in
      let hidden_names = uv.Policy.masked_names in
      List.iter
        (fun (it : Execution.item) ->
          if List.mem it.Execution.name hidden_names then
            check Alcotest.bool
              (Ids.data_name it.Execution.data_id ^ " masked")
              true
              (Data_privacy.is_masked proj it.Execution.data_id))
        (Execution.items exec)

(* ------------------------------------------------------------------ *)
(* Audit: the empirical adversary *)

let test_audit_full_disclosure () =
  (* No hiding, all inputs observed: everything recovered. *)
  let inputs = List.map fst (Module_privacy.rows xor_table) in
  let a = Audit.assess xor_table (Audit.observe xor_table ~hidden:[] inputs) in
  check Alcotest.int "all pinned" 4 a.Audit.pinned;
  check (Alcotest.float 0.001) "fraction 1.0" 1.0 a.Audit.recovered_fraction;
  check Alcotest.int "empirical Γ = 1" 1 a.Audit.min_candidates

let test_audit_partial_observation () =
  let inputs = [ [| Data_value.Int 0; Data_value.Int 0 |] ] in
  let a = Audit.assess xor_table (Audit.observe xor_table ~hidden:[] inputs) in
  check Alcotest.int "only the observed row pinned" 1 a.Audit.pinned;
  check (Alcotest.float 0.001) "fraction 0.25" 0.25 a.Audit.recovered_fraction

let test_audit_respects_gamma () =
  (* With a Γ=2-safe hidden set, nothing is ever pinned, no matter how
     many executions are observed. *)
  let inputs = List.map fst (Module_privacy.rows xor_table) in
  let all = inputs @ inputs @ inputs in
  let a =
    Audit.assess xor_table (Audit.observe xor_table ~hidden:[ "y" ] all)
  in
  check Alcotest.int "nothing pinned" 0 a.Audit.pinned;
  check Alcotest.bool "empirical Γ >= 2" true (a.Audit.min_candidates >= 2);
  check (Alcotest.float 0.001) "fraction 0" 0.0 a.Audit.recovered_fraction

let prop_audit_never_beats_gamma =
  QCheck.Test.make
    ~name:"complete observation never beats the Γ guarantee" ~count:30
    (QCheck.pair (QCheck.int_bound 1000) (QCheck.int_bound 50))
    (fun (seed, extra_obs) ->
      let rng = Wfpriv_workloads.Rng.create seed in
      let table =
        Wfpriv_workloads.Synthetic.random_table rng ~n_inputs:2 ~n_outputs:1
          ~domain_size:2
      in
      match Module_privacy.optimal_hiding table ~gamma:2 with
      | None -> true
      | Some hidden ->
          (* Worst case for privacy: the adversary sees every input at
             least once (plus random repeats). *)
          let all_inputs = List.map fst (Module_privacy.rows table) in
          let obs =
            all_inputs
            @ List.init extra_obs (fun _ ->
                  Wfpriv_workloads.Rng.pick rng all_inputs)
          in
          let a = Audit.assess table (Audit.observe table ~hidden obs) in
          a.Audit.pinned = 0
          && a.Audit.confident_wrong = 0
          && a.Audit.min_candidates >= 2)

(* ------------------------------------------------------------------ *)
(* Policy *)

let policy =
  Policy.make
    ~expand_levels:[ ("W3", 2); ("W4", 3) ]
    ~data_levels:[ ("snps", 1) ]
    ~module_masks:[ (Disease.m1, [ "disorders"; "expanded_snps" ], 2) ]
    spec

let test_policy_compilation () =
  let uv0 = Policy.for_user policy 0 in
  check strl "level-0 prefix" [ "W1"; "W2" ] (View.prefix uv0.Policy.view);
  check strl "level-0 masks" [ "disorders"; "expanded_snps"; "snps" ]
    uv0.Policy.masked_names;
  let uv2 = Policy.for_user policy 2 in
  check strl "level-2 masks nothing" [] uv2.Policy.masked_names;
  check (Alcotest.list Alcotest.int) "protected modules" [ Disease.m1 ]
    (Policy.protected_modules policy);
  check Alcotest.int "audit level" 3 (Policy.audit_level policy)

let test_policy_projection () =
  let exec = Disease.run () in
  let ev, proj = Policy.project_execution policy 0 exec in
  check strl "exec view prefix" [ "W1"; "W2" ] (Exec_view.prefix ev);
  check Alcotest.bool "d10 (disorders) masked" true (Data_privacy.is_masked proj 10);
  check Alcotest.bool "d2 readable" false (Data_privacy.is_masked proj 2)

(* ------------------------------------------------------------------ *)
(* Policy algebra: union/intersection/override laws, fingerprints,
   consent and break-glass flows. *)

module PA = Policy_algebra
module Gate = Wfpriv_query.Access_gate

let algebra_base =
  Policy.make
    ~expand_levels:[ ("W2", 1); ("W3", 2); ("W4", 3) ]
    ~data_levels:[ ("disorders", 2); ("prognosis", 1) ]
    spec

(* A fixed environment: four role tiers, a granted consent, a revoked
   one, a void one (broken ancestor chain), a live break-glass grant and
   an expired one. Consent data names stay within the base policy's
   universe so every subexpression classifies the same names. *)
let algebra_env () =
  let env = PA.create () in
  PA.define_role env "intern" 0;
  PA.define_role env "nurse" 1;
  PA.define_role env "doctor" 2;
  PA.define_role env "auditor" 3;
  PA.grant_consent env ~subject:"alice" ~workflows:[ "W2"; "W3" ]
    ~data:[ "disorders" ] ();
  PA.grant_consent env ~subject:"bob" ~workflows:[ "W2"; "W3"; "W4" ]
    ~data:[ "disorders"; "prognosis" ] ();
  PA.revoke_consent env ~subject:"bob";
  PA.grant_consent env ~subject:"carol" ~workflows:[ "W4" ]
    ~data:[ "prognosis" ] ();
  PA.grant_consent env ~subject:"dave" ~workflows:[ "W3"; "W4" ]
    ~data:[ "disorders" ] ();
  PA.revoke_consent env ~subject:"dave";
  PA.grant_break_glass env ~actor:"oncall" ~level:3 ~ttl:5 ~reason:"incident";
  PA.grant_break_glass env ~actor:"stale" ~level:2 ~ttl:1 ~reason:"drill";
  PA.tick env;
  (* "stale" expired at t=1; "oncall" lives until t=5 *)
  env

let atoms =
  [
    PA.Floor; PA.Role "intern"; PA.Role "nurse"; PA.Role "doctor";
    PA.Role "auditor"; PA.Consent "alice"; PA.Consent "bob";
    PA.Consent "carol"; PA.Consent "dave"; PA.Break_glass "oncall";
    PA.Break_glass "stale";
  ]

let rec expr_to_string = function
  | PA.Floor -> "floor"
  | PA.Role r -> Printf.sprintf "role(%s)" r
  | PA.Consent s -> Printf.sprintf "consent(%s)" s
  | PA.Break_glass a -> Printf.sprintf "glass(%s)" a
  | PA.Union (a, b) ->
      Printf.sprintf "(%s | %s)" (expr_to_string a) (expr_to_string b)
  | PA.Inter (a, b) ->
      Printf.sprintf "(%s & %s)" (expr_to_string a) (expr_to_string b)
  | PA.Override (a, b) ->
      Printf.sprintf "(%s >> %s)" (expr_to_string a) (expr_to_string b)

let gen_expr =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n = 0 then oneofl atoms
           else
             frequency
               [
                 (2, oneofl atoms);
                 ( 3,
                   map2
                     (fun a b -> PA.Union (a, b))
                     (self (n / 2)) (self (n / 2)) );
                 ( 3,
                   map2
                     (fun a b -> PA.Inter (a, b))
                     (self (n / 2)) (self (n / 2)) );
                 ( 3,
                   map2
                     (fun a b -> PA.Override (a, b))
                     (self (n / 2)) (self (n / 2)) );
               ]))

let arb_expr = QCheck.make ~print:expr_to_string gen_expr
let arb_expr2 = QCheck.pair arb_expr arb_expr
let arb_level = QCheck.int_range 0 4

(* The compiled policy's denoted view, read back through the ordinary
   privilege machinery: visible workflows and readable data names. *)
let compiled_view env level e =
  let p = PA.compile env ~base:algebra_base ~level e in
  let priv = Policy.privilege p in
  let cls = Policy.data_classification p in
  let visible =
    List.filter
      (fun w -> Privilege.required_level priv w <= level)
      (Spec.workflow_ids spec)
  in
  let readable =
    List.filter
      (Data_privacy.readable cls level)
      (List.map fst (Policy.effective_data_levels p))
  in
  (visible, readable)

let union_sorted a b = List.sort_uniq compare (a @ b)
let inter_sorted a b = List.filter (fun x -> List.mem x b) a

let prop_union_is_set_union =
  QCheck.Test.make ~name:"compile(Union) is set-union of operand views"
    ~count:200
    (QCheck.pair arb_expr2 arb_level)
    (fun ((a, b), level) ->
      let env = algebra_env () in
      let va, ra = compiled_view env level a in
      let vb, rb = compiled_view env level b in
      let vu, ru = compiled_view env level (PA.Union (a, b)) in
      vu = union_sorted va vb && ru = union_sorted ra rb)

let prop_inter_is_set_inter =
  QCheck.Test.make ~name:"compile(Inter) is set-intersection of operand views"
    ~count:200
    (QCheck.pair arb_expr2 arb_level)
    (fun ((a, b), level) ->
      let env = algebra_env () in
      let va, ra = compiled_view env level a in
      let vb, rb = compiled_view env level b in
      let vi, ri = compiled_view env level (PA.Inter (a, b)) in
      vi = inter_sorted va vb && ri = inter_sorted ra rb)

(* Independent reference for Override: merge the exported per-id
   verdicts (left wherever it speaks, right elsewhere), then close the
   workflow grants into a valid prefix by demoting any grant whose
   ancestor chain is not fully granted. *)
let prop_override_matches_reference =
  QCheck.Test.make ~name:"compile(Override) matches the verdict-merge reference"
    ~count:200
    (QCheck.pair arb_expr2 arb_level)
    (fun ((a, b), level) ->
      let env = algebra_env () in
      let base = algebra_base in
      let merge va vb =
        List.map2
          (fun (k, x) (_, y) -> (k, if x = PA.Abstain then y else x))
          va vb
      in
      let wm =
        merge
          (PA.workflow_verdicts env ~base ~level a)
          (PA.workflow_verdicts env ~base ~level b)
      in
      let parent w =
        if w = Spec.root spec then None
        else Option.map (Spec.owner spec) (Spec.defined_by spec w)
      in
      let granted w =
        w = Spec.root spec || List.assoc_opt w wm = Some PA.Grant
      in
      let rec chain_ok w =
        match parent w with None -> true | Some p -> granted p && chain_ok p
      in
      let expect_visible =
        List.filter
          (fun w -> w = Spec.root spec || (granted w && chain_ok w))
          (Spec.workflow_ids spec)
      in
      let dm =
        merge
          (PA.data_verdicts env ~base ~level a)
          (PA.data_verdicts env ~base ~level b)
      in
      let expect_readable =
        List.filter_map
          (fun (n, v) -> if v = PA.Grant then Some n else None)
          dm
      in
      let vo, ro = compiled_view env level (PA.Override (a, b)) in
      vo = expect_visible && ro = expect_readable)

let prop_fingerprint_separates =
  QCheck.Test.make
    ~name:"gate fingerprints agree exactly on equal denoted views" ~count:200
    (QCheck.pair arb_expr2 arb_level)
    (fun ((a, b), level) ->
      let env = algebra_env () in
      let gate e =
        Gate.of_policy (PA.compile env ~base:algebra_base ~level e) ~level
      in
      let fp_equal =
        String.equal (Gate.fingerprint (gate a)) (Gate.fingerprint (gate b))
      in
      let view_equal = compiled_view env level a = compiled_view env level b in
      fp_equal = view_equal)

let test_algebra_floor_is_identity () =
  let env = algebra_env () in
  List.iter
    (fun level ->
      let compiled = PA.compile env ~base:algebra_base ~level PA.Floor in
      check Alcotest.string
        (Printf.sprintf "Floor reproduces the base gate at level %d" level)
        (Gate.fingerprint (Gate.of_policy algebra_base ~level))
        (Gate.fingerprint (Gate.of_policy compiled ~level)))
    [ 0; 1; 2; 3 ]

let test_algebra_revocation_denies () =
  let env = algebra_env () in
  (* dave's revoked grant {W3, W4, disorders} overrides a floor that
     would otherwise see everything. *)
  let v, r =
    compiled_view env 3 (PA.Override (PA.Consent "dave", PA.Floor))
  in
  check strl "revoked workflows denied" [ "W1"; "W2" ] v;
  check strl "revoked data denied" [ "prognosis" ] r

let test_algebra_void_consent () =
  let env = algebra_env () in
  (* carol consents to W4 without its parent W2: a grant that cannot
     stand alone is demoted, but her data grant still stands. *)
  let v, r = compiled_view env 0 (PA.Union (PA.Floor, PA.Consent "carol")) in
  check strl "broken-chain grant void" [ "W1" ] v;
  check strl "data grant survives" [ "prognosis" ] r

let test_algebra_break_glass_expiry () =
  let env = algebra_env () in
  let e = PA.Union (PA.Floor, PA.Break_glass "oncall") in
  let v_live, _ = compiled_view env 0 e in
  check strl "live grant widens the view" [ "W1"; "W2"; "W3"; "W4" ] v_live;
  check Alcotest.bool "expired grant is inert" true
    (fst (compiled_view env 0 (PA.Union (PA.Floor, PA.Break_glass "stale")))
    = [ "W1" ]);
  for _ = 1 to 4 do
    PA.tick env
  done;
  check Alcotest.bool "oncall expired" false (PA.break_glass_active env "oncall");
  let v_after, _ = compiled_view env 0 e in
  check strl "view reverts at expiry" [ "W1" ] v_after

let test_algebra_unknowns () =
  let env = algebra_env () in
  Alcotest.check_raises "unknown role"
    (Invalid_argument "Policy_algebra: unknown role \"ghost\"") (fun () ->
      ignore (PA.compile env ~base:algebra_base ~level:1 (PA.Role "ghost")));
  Alcotest.check_raises "unknown subject"
    (Invalid_argument "Policy_algebra: unknown consent subject \"ghost\"")
    (fun () ->
      ignore (PA.compile env ~base:algebra_base ~level:1 (PA.Consent "ghost")));
  check Alcotest.bool "revoking unknown subject raises" true
    (match PA.revoke_consent env ~subject:"ghost" with
    | () -> false
    | exception Not_found -> true)

(* ------------------------------------------------------------------ *)
(* Leakage: denial causes are indistinguishable.

   Three policies produce the same visible view at level 1 — the legacy
   privilege floor, a role intersection, and a revoked consent override.
   Whatever the cause, the compiled gates must be fingerprint-identical,
   answer every query bit-identically, and move the observer-visible
   counters by exactly the same deltas. Run under WFPRIV_JOBS=1 and 4 in
   CI: answers are jobs-invariant too. *)

let leakage_level = 1

let leakage_policies () =
  let env = algebra_env () in
  [
    ("legacy-floor", algebra_base);
    ( "role-intersection",
      PA.compile env ~base:algebra_base ~level:leakage_level
        (PA.Inter (PA.Floor, PA.Role "nurse")) );
    ( "revoked-consent",
      PA.compile env ~base:algebra_base ~level:leakage_level
        (PA.Override (PA.Consent "dave", PA.Floor)) );
  ]

let leakage_queries =
  [
    "before(~\"Expand SNP\", ~\"OMIM\")";
    "node(~\"risk\")";
    "inside(*, W4)";
    "inside(*, W2)";
  ]

(* One full serving exercise of a policy: gate, engine, query batch.
   Returns everything an observer at the level could see — witness
   answers, denied floors, the observer counter deltas and the audit
   lines (seq numbers stripped). *)
let leakage_run policy =
  let module Q = Wfpriv_query in
  let exec = Disease.run () in
  let before = Wfpriv_obs.Registry.observer_counters ~level:leakage_level in
  let audit_before =
    List.length (Wfpriv_obs.Audit_log.records ())
  in
  let gate = Gate.of_policy policy ~level:leakage_level in
  Gate.prepare gate;
  let engine = Q.Engine.of_exec_view (Gate.exec_view gate exec) in
  let qs = List.map Q.Query_parser.parse leakage_queries in
  let witnesses = Q.Engine.run_batch engine (List.map Q.Plan.compile qs) in
  List.iter2
    (fun q (w : Q.Engine.witness) ->
      Gate.audit_query gate q ~nodes:(List.length w.Q.Engine.nodes))
    qs witnesses;
  let answers =
    List.map
      (fun (w : Q.Engine.witness) -> (w.Q.Engine.holds, w.Q.Engine.nodes))
      witnesses
  in
  let floors = List.concat_map (Gate.denied_floors gate) qs in
  let after = Wfpriv_obs.Registry.observer_counters ~level:leakage_level in
  let deltas =
    List.map
      (fun (name, v) ->
        let v0 =
          match List.assoc_opt name before with Some x -> x | None -> 0
        in
        (name, v - v0))
      after
  in
  let audit =
    List.filteri
      (fun i _ -> i >= audit_before)
      (Wfpriv_obs.Audit_log.records ())
    |> List.map (fun r ->
           let line = Wfpriv_obs.Audit_log.render r in
           (* strip the per-run sequence number prefix "#N " *)
           match String.index_opt line ' ' with
           | Some i -> String.sub line (i + 1) (String.length line - i - 1)
           | None -> line)
  in
  (answers, floors, deltas, audit)

let test_leakage_causes_indistinguishable () =
  Wfpriv_obs.Config.set_enabled true;
  let policies = leakage_policies () in
  (* The gates themselves are indistinguishable... *)
  let fps =
    List.map
      (fun (_, p) ->
        Gate.fingerprint (Gate.of_policy p ~level:leakage_level))
      policies
  in
  List.iter
    (fun fp -> check Alcotest.string "fingerprints agree" (List.hd fps) fp)
    fps;
  (* ...and so is everything observable downstream of them. *)
  let runs = List.map (fun (name, p) -> (name, leakage_run p)) policies in
  let _, (answers0, floors0, deltas0, audit0) = List.hd runs in
  List.iter
    (fun (name, (answers, floors, deltas, audit)) ->
      check
        Alcotest.(list (pair bool (list int)))
        (name ^ ": answers bit-identical") answers0 answers;
      check
        Alcotest.(list int)
        (name ^ ": denied floors identical") floors0 floors;
      check
        Alcotest.(list (pair string int))
        (name ^ ": observer counter deltas identical") deltas0 deltas;
      check
        Alcotest.(list string)
        (name ^ ": audit lines identical") audit0 audit)
    runs

let qtests = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "privacy"
    [
      ( "privilege",
        [
          Alcotest.test_case "monotone levels" `Quick test_privilege_monotone;
          Alcotest.test_case "access prefixes are prefixes" `Quick
            test_access_prefix_is_prefix;
          Alcotest.test_case "access views" `Quick test_access_views;
          Alcotest.test_case "validation" `Quick test_privilege_validation;
        ] );
      ( "data_privacy",
        [ Alcotest.test_case "masking" `Quick test_data_masking ] );
      ( "module_privacy",
        [
          Alcotest.test_case "Γ without hiding" `Quick test_gamma_no_hiding;
          Alcotest.test_case "hide output" `Quick test_gamma_hide_output;
          Alcotest.test_case "hide input" `Quick test_gamma_hide_input;
          Alcotest.test_case "max achievable" `Quick test_gamma_max;
          Alcotest.test_case "optimal hiding" `Quick test_optimal_hiding;
          Alcotest.test_case "greedy is safe" `Quick test_greedy_hiding_safe;
          Alcotest.test_case "ordered search beyond the cap" `Quick
            test_ordered_beyond_cap;
          Alcotest.test_case "optimal vs greedy (wide)" `Quick
            test_wide_optimal_vs_greedy;
          Alcotest.test_case "table validation" `Quick test_table_validation;
          Alcotest.test_case "lookup" `Quick test_lookup;
          Alcotest.test_case "network sharing" `Quick test_network_sharing;
          Alcotest.test_case "network optimal" `Quick test_network_optimal;
        ]
        @ qtests
            [ prop_optimal_is_minimal; prop_greedy_always_safe;
              prop_hiding_monotone; prop_ordered_matches_exhaustive ]
      );
      ( "spec_tables",
        [
          Alcotest.test_case "effective I/O names" `Quick test_spec_tables_names;
          Alcotest.test_case "tabulation" `Quick test_spec_tables_tabulate;
          Alcotest.test_case "unsupported modules" `Quick
            test_spec_tables_unsupported;
          Alcotest.test_case "recommended masks -> policy" `Quick
            test_spec_tables_recommend;
        ] );
      ( "audit",
        [
          Alcotest.test_case "full disclosure" `Quick test_audit_full_disclosure;
          Alcotest.test_case "partial observation" `Quick
            test_audit_partial_observation;
          Alcotest.test_case "Γ-safe hiding defeats adversary" `Quick
            test_audit_respects_gamma;
        ]
        @ qtests [ prop_audit_never_beats_gamma ] );
      ( "policy",
        [
          Alcotest.test_case "compilation" `Quick test_policy_compilation;
          Alcotest.test_case "execution projection" `Quick test_policy_projection;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "Floor is the identity embedding" `Quick
            test_algebra_floor_is_identity;
          Alcotest.test_case "revocation denies" `Quick
            test_algebra_revocation_denies;
          Alcotest.test_case "broken-chain consent is void" `Quick
            test_algebra_void_consent;
          Alcotest.test_case "break-glass expires" `Quick
            test_algebra_break_glass_expiry;
          Alcotest.test_case "unknown names rejected" `Quick
            test_algebra_unknowns;
        ]
        @ qtests
            [ prop_union_is_set_union; prop_inter_is_set_inter;
              prop_override_matches_reference; prop_fingerprint_separates ]
      );
      ( "leakage",
        [
          Alcotest.test_case "denial causes indistinguishable" `Quick
            test_leakage_causes_indistinguishable;
        ] );
    ]
