(* Tests for the sharded repository + distributed-style query planner
   (lib/shard): the routing contract of Shard.bucket/partition
   (min_int included), the CRC'd shard-map manifest codec, the
   differential acceptance bar — sharded structural closures, keyword
   top-k, repositories and sessions bit-identical to the unsharded
   engine at shards {1,3,8} under sequential and 4-domain pools — the
   observer-leakage invariant of the sharded planner, and per-shard
   crash recovery (truncating one shard's WAL tail at every byte
   offset recovers that shard's last sealed state while the siblings
   keep theirs). *)

open Wfpriv_query
open Wfpriv_workflow
module Shard = Wfpriv_parallel.Shard
module Pool = Wfpriv_parallel.Pool
module Shard_map = Wfpriv_shard.Shard_map
module Frontier = Wfpriv_shard.Frontier
module Sharded_index = Wfpriv_shard.Sharded_index
module Sharded_repo = Wfpriv_shard.Sharded_repo
module Wal = Wfpriv_durable.Wal
module Durable_repo = Wfpriv_durable.Durable_repo
module Repo_store = Wfpriv_store.Repo_store
module Rng = Wfpriv_workloads.Rng
module Synthetic = Wfpriv_workloads.Synthetic
module Disease = Wfpriv_workloads.Disease
module Policy = Wfpriv_privacy.Policy
module Privilege = Wfpriv_privacy.Privilege
module Obs = Wfpriv_obs

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let with_obs f =
  Obs.Config.set_enabled true;
  Obs.Registry.reset ();
  Obs.Audit_log.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Config.set_enabled false;
      Obs.Registry.reset ())
    f

let with_pool jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Filesystem helpers (stdlib only, same shape as test_live) *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_dir () =
  let path = Filename.temp_file "wfpriv-shard-test" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let rec copy_tree src dst =
  if Sys.is_directory src then begin
    Sys.mkdir dst 0o755;
    Array.iter
      (fun e -> copy_tree (Filename.concat src e) (Filename.concat dst e))
      (Sys.readdir src)
  end
  else write_file dst (Wal.read_all src)

let in_tmp_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let snap repo = Repo_store.to_string repo

(* ------------------------------------------------------------------ *)
(* Workload helpers (the test_live corpus shapes) *)

let small_params =
  {
    Synthetic.default_params with
    levels = 1;
    composites_per_workflow = 1;
    atomics_per_workflow = 3;
  }

let tiny_params =
  {
    Synthetic.default_params with
    levels = 0;
    composites_per_workflow = 0;
    atomics_per_workflow = 2;
  }

let syn_index_entry seed name =
  let spec = Synthetic.spec (Rng.create seed) small_params in
  let subs =
    List.filter (fun w -> w <> Spec.root spec) (Spec.workflow_ids spec)
  in
  let expand_levels = List.mapi (fun i w -> (w, (i mod 3) + 1)) subs in
  let policy = Policy.make ~expand_levels spec in
  (name, Policy.spec policy, Policy.privilege policy)

let disease_index_entry name =
  let policy =
    Policy.make
      ~expand_levels:[ ("W2", 1); ("W3", 2); ("W4", 3) ]
      Disease.spec
  in
  (name, Policy.spec policy, Policy.privilege policy)

let corpus =
  List.mapi
    (fun i seed -> syn_index_entry seed (Printf.sprintf "syn%02d" i))
    [ 101; 102; 103; 104; 105; 106; 107 ]
  @ [ disease_index_entry "disease" ]

let probe_terms =
  let vocab = Synthetic.default_params.Synthetic.keyword_vocabulary in
  let w i = List.nth vocab i in
  [
    [ w 0 ];
    [ w 0; w 1 ];
    [ w 2; w 3; w 4 ];
    [ "no-such-term" ];
    [ w 5; "no-such-term" ];
    [ w 0; w 0; w 2 ];
  ]

let probe_levels = [ 0; 1; 2; 3; 9 ]

let rank_bits =
  List.map (fun (e : Ranking.entry) ->
      (e.Ranking.doc, Int64.bits_of_float e.Ranking.score))

let check_rank msg a b =
  check
    Alcotest.(list (pair string int64))
    msg (rank_bits a) (rank_bits b)

let entry_hash (name, _, _) = Shard_map.fnv1a name

(* ------------------------------------------------------------------ *)
(* Routing: the partition-key contract of Shard.bucket/partition *)

let test_bucket_min_int () =
  List.iter
    (fun shards ->
      check Alcotest.int
        (Printf.sprintf "min_int routes like 0 at %d shards" shards)
        (Shard.bucket ~shards 0)
        (Shard.bucket ~shards min_int);
      check Alcotest.int
        (Printf.sprintf "min_int lands in bucket 0 at %d shards" shards)
        0
        (Shard.bucket ~shards min_int);
      check Alcotest.int
        (Printf.sprintf "max_int in range at %d shards" shards)
        (max_int mod shards)
        (Shard.bucket ~shards max_int))
    [ 1; 2; 3; 7; 8; 4096 ];
  (match Shard.bucket ~shards:0 5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bucket must refuse shards < 1");
  match Shard.partition ~shards:0 ~hash:Fun.id [ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "partition must refuse shards < 1"

(* Inject the adversarial hashes (min_int, negatives) into an ordinary
   integer stream so the properties cover the sign-bit edge cases. *)
let spiked_int =
  QCheck.map
    (fun (x, spike) ->
      match spike mod 5 with
      | 0 -> min_int
      | 1 -> max_int
      | 2 -> -x
      | _ -> x)
    QCheck.(pair int small_nat)

let prop_bucket_in_range =
  QCheck.Test.make ~name:"bucket total and in range (min_int included)"
    ~count:500
    QCheck.(pair spiked_int (int_range 1 64))
    (fun (h, shards) ->
      let b = Shard.bucket ~shards h in
      0 <= b && b < shards)

let prop_partition_order_and_coverage =
  QCheck.Test.make
    ~name:"partition preserves within-bucket order; buckets disjoint, cover"
    ~count:200
    QCheck.(pair (list spiked_int) (int_range 1 8))
    (fun (xs, shards) ->
      let buckets = Shard.partition ~shards ~hash:Fun.id xs in
      Array.length buckets = shards
      && Array.to_list buckets
         |> List.mapi (fun i bucket ->
                (* Exactly the input elements routed to [i], in input
                   order — order preservation and disjointness at once. *)
                bucket = List.filter (fun x -> Shard.bucket ~shards x = i) xs)
         |> List.for_all Fun.id
      && Array.fold_left (fun n b -> n + List.length b) 0 buckets
         = List.length xs)

(* ------------------------------------------------------------------ *)
(* Manifest: the CRC'd shard-map codec *)

let test_manifest_roundtrip () =
  List.iter
    (fun shards ->
      let m = Shard_map.make ~shards in
      let m' = Shard_map.decode (Shard_map.encode m) in
      check Alcotest.int
        (Printf.sprintf "roundtrip %d shards" shards)
        shards m'.Shard_map.shards)
    [ 1; 2; 8; 4096 ];
  List.iter
    (fun shards ->
      match Shard_map.make ~shards with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "make must refuse %d shards" shards)
    [ 0; -1; 4097 ]

let test_manifest_corruption () =
  let image = Shard_map.encode (Shard_map.make ~shards:5) in
  (* Every single-byte flip and every truncation must be detected. *)
  for i = 0 to String.length image - 1 do
    let b = Bytes.of_string image in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    match Shard_map.decode (Bytes.to_string b) with
    | exception Shard_map.Corrupt _ -> ()
    | _ -> Alcotest.failf "flip at byte %d undetected" i
  done;
  for len = 0 to String.length image - 1 do
    match Shard_map.decode (String.sub image 0 len) with
    | exception Shard_map.Corrupt _ -> ()
    | _ -> Alcotest.failf "truncation to %d bytes undetected" len
  done

let test_manifest_save_load () =
  in_tmp_dir (fun dir ->
      check Alcotest.bool "no manifest yet" false (Shard_map.present dir);
      let m = Shard_map.make ~shards:6 in
      Shard_map.save ~dir m;
      check Alcotest.bool "manifest present" true (Shard_map.present dir);
      let m' = Shard_map.load ~dir in
      check Alcotest.int "shard count survives" 6 m'.Shard_map.shards;
      (* A damaged on-disk manifest is refused, not misrouted. *)
      let file = Filename.concat dir Shard_map.file_name in
      let image = Wal.read_all file in
      write_file file (String.sub image 0 (String.length image - 1));
      match Shard_map.load ~dir with
      | exception Shard_map.Corrupt _ -> ()
      | _ -> Alcotest.fail "damaged manifest must raise Corrupt")

let test_route_contract () =
  let m = Shard_map.make ~shards:8 in
  let names =
    [ ""; "a"; "alpha"; "disease-susceptibility"; "syn00"; "syn01" ]
  in
  List.iter
    (fun name ->
      check Alcotest.int
        (Printf.sprintf "route %S = bucket(fnv1a)" name)
        (Shard.bucket ~shards:8 (Shard_map.fnv1a name))
        (Shard_map.route m name);
      check Alcotest.bool
        (Printf.sprintf "fnv1a %S non-negative" name)
        true
        (Shard_map.fnv1a name >= 0))
    names;
  let spread =
    List.sort_uniq compare (List.map (Shard_map.route m) names)
  in
  check Alcotest.bool "routing spreads over shards" true
    (List.length spread > 1);
  check Alcotest.string "shard dir naming" "root/shard-0003"
    (Shard_map.shard_dir "root" 3)

(* ------------------------------------------------------------------ *)
(* Differential: sharded keyword top-k vs the unsharded index *)

let test_keyword_differential () =
  let union = Index.build corpus in
  List.iter
    (fun jobs ->
      with_pool jobs @@ fun pool ->
      List.iter
        (fun shards ->
          let parts = Shard.partition ~shards ~hash:entry_hash corpus in
          let sx = Sharded_index.build ~pool parts in
          let msg fmt =
            Printf.ksprintf
              (fun s -> Printf.sprintf "jobs=%d shards=%d %s" jobs shards s)
              fmt
          in
          check Alcotest.int (msg "doc_count") (Index.doc_count union)
            (Sharded_index.doc_count sx);
          List.iter
            (fun level ->
              List.iter
                (fun terms ->
                  let label =
                    msg "l%d [%s]" level (String.concat "," terms)
                  in
                  List.iter
                    (fun t ->
                      check Alcotest.int
                        (Printf.sprintf "%s df %s" label t)
                        (Index.df union ~level t)
                        (Sharded_index.df sx ~level t);
                      check Alcotest.int64
                        (Printf.sprintf "%s idf %s" label t)
                        (Int64.bits_of_float (Index.idf union ~level t))
                        (Int64.bits_of_float (Sharded_index.idf sx ~level t)))
                    terms;
                  check_rank
                    (label ^ " score_entries")
                    (Index.score_entries union ~level terms)
                    (Sharded_index.score_entries sx ~level terms);
                  List.iter
                    (fun k ->
                      check_rank
                        (Printf.sprintf "%s top-%d" label k)
                        (Index.top_k union ~level ~k terms)
                        (Sharded_index.top_k sx ~level ~k terms))
                    [ 1; 3; 20 ])
                probe_terms)
            probe_levels)
        [ 1; 3; 8 ])
    [ 1; 4 ]

let test_sharded_index_refusals () =
  (match Sharded_index.build [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty shard array must be refused");
  let e = syn_index_entry 7 "dup" in
  match Sharded_index.build [| [ e ]; [ e ] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cross-shard duplicate names must be refused"

(* ------------------------------------------------------------------ *)
(* Differential: frontier-exchange reachability vs the engine closure *)

let structural_queries =
  Query_ast.
    [
      Node Any;
      Node Atomic_only;
      Node Composite_only;
      Before (Any, Any);
      Before (Atomic_only, Composite_only);
      Edge (Any, Any);
      And (Node Atomic_only, Before (Any, Atomic_only));
      Not (Before (Composite_only, Composite_only));
    ]

let exec_fixture seed =
  let spec = Synthetic.spec (Rng.create seed) small_params in
  let subs =
    List.filter (fun w -> w <> Spec.root spec) (Spec.workflow_ids spec)
  in
  let expand_levels = List.mapi (fun i w -> (w, (i mod 3) + 1)) subs in
  let policy = Policy.make ~expand_levels spec in
  let exec =
    Executor.run spec
      (Synthetic.semantics spec)
      ~inputs:(Synthetic.inputs_for spec ~seed)
  in
  (policy, exec)

let check_witness msg (a : Engine.witness) (b : Engine.witness) =
  check Alcotest.bool (msg ^ ": holds") a.Engine.holds b.Engine.holds;
  check Alcotest.(list int) (msg ^ ": nodes") a.Engine.nodes b.Engine.nodes

let test_frontier_differential () =
  let policy, exec = exec_fixture 211 in
  List.iter
    (fun jobs ->
      with_pool jobs @@ fun pool ->
      List.iter
        (fun level ->
          let gate = Access_gate.of_policy policy ~level in
          let ev = Access_gate.exec_view gate exec in
          let plain = Engine.of_exec_view ev in
          List.iter
            (fun shards ->
              let msg s =
                Printf.sprintf "jobs=%d l%d shards=%d %s" jobs level shards s
              in
              let sharded =
                Frontier.engine_of_exec_view ~pool ~shards ev
              in
              check
                Alcotest.(list int)
                (msg "nodes") (Engine.nodes plain) (Engine.nodes sharded);
              List.iter
                (fun n ->
                  check
                    Alcotest.(list int)
                    (msg (Printf.sprintf "row %d" n))
                    (Engine.reachable_set plain n)
                    (Engine.reachable_set sharded n))
                (Engine.nodes plain);
              List.iter
                (fun q ->
                  let plan = Engine.compile q in
                  check_witness
                    (msg (Query_ast.to_string q))
                    (Engine.run plain plan) (Engine.run sharded plan))
                structural_queries;
              (* The low-level frontier agrees pairwise too. *)
              let f = Frontier.of_engine ~pool ~shards plain in
              check Alcotest.int (msg "frontier population")
                (Engine.nb_nodes plain) (Frontier.nb_nodes f);
              let nodes = Engine.nodes plain in
              List.iter
                (fun u ->
                  check Alcotest.bool
                    (msg (Printf.sprintf "owner %d in range" u))
                    true
                    (Frontier.owner f u >= 0 && Frontier.owner f u < shards);
                  List.iter
                    (fun v ->
                      check Alcotest.bool
                        (msg (Printf.sprintf "reaches %d %d" u v))
                        (Engine.reaches plain u v)
                        (Frontier.reaches f u v))
                    nodes)
                nodes;
              check Alcotest.bool (msg "queries ran rounds") true
                (shards = 1 || Frontier.rounds f > 0))
            [ 1; 3; 8 ])
        [ 0; 1; 3; 9 ])
    [ 1; 4 ]

(* shards = 1 must *be* the unsharded engine path, not a 1-shard
   emulation of it. *)
let test_one_shard_degenerates () =
  let policy, exec = exec_fixture 223 in
  let gate = Access_gate.of_policy policy ~level:9 in
  let ev = Access_gate.exec_view gate exec in
  let eng = Frontier.engine_of_exec_view ~shards:1 ev in
  let plain = Engine.of_exec_view ev in
  check Alcotest.string "same digest as the plain engine"
    (Engine.digest plain) (Engine.digest eng)

(* ------------------------------------------------------------------ *)
(* Differential: gated sessions carrying shard topology *)

let test_session_topology () =
  let policy, exec = exec_fixture 227 in
  let level = 2 in
  let gate_plain = Access_gate.of_policy policy ~level in
  let gate_sharded = Access_gate.of_policy ~shards:3 policy ~level in
  check Alcotest.int "plain gate reports 1 shard" 1
    (Access_gate.shards gate_plain);
  check Alcotest.int "sharded gate reports its topology" 3
    (Access_gate.shards gate_sharded);
  check Alcotest.bool "fingerprints split by topology" true
    (Access_gate.fingerprint gate_plain
    <> Access_gate.fingerprint gate_sharded);
  let s_plain = Session.start_gated gate_plain exec in
  let s_sharded = Session.start_gated gate_sharded exec in
  check Alcotest.int "session exposes the shard count" 3
    (Session.shards s_sharded);
  (* Topology fingerprints partition caches; answers never change. *)
  List.iter
    (fun q ->
      let a = Session.query s_plain q and b = Session.query s_sharded q in
      check Alcotest.bool (Query_ast.to_string q) true
        (a.Query_eval.holds = b.Query_eval.holds
        && a.Query_eval.nodes = b.Query_eval.nodes))
    structural_queries;
  (* Reach-cache keys carry the same epoch/topology segments. *)
  let k1 = Reach_cache.group_key ~entry:"e" ~run:0 ~prefix:[ "W1" ] () in
  let k2 =
    Reach_cache.group_key ~shards:3 ~entry:"e" ~run:0 ~prefix:[ "W1" ] ()
  in
  let k3 =
    Reach_cache.group_key ~generation:2 ~shards:3 ~entry:"e" ~run:0
      ~prefix:[ "W1" ] ()
  in
  check Alcotest.bool "topology in the group key" true (k1 <> k2);
  check Alcotest.bool "epoch and topology compose" true (k2 <> k3);
  check Alcotest.string "legacy keys unchanged" "e/0/{W1}" k1

(* ------------------------------------------------------------------ *)
(* Differential: the sharded durable repository vs an unsharded shadow *)

let add_syn_entry ?(params = tiny_params) name seed =
  let spec, exec = Synthetic.run (Rng.create seed) params in
  Repository.Add_entry
    { entry_name = name; policy = Policy.make spec; executions = [ exec ] }

let exec_of_repo repo name seed =
  let e = Repository.find repo name in
  let spec = e.Repository.spec in
  Executor.run spec
    (Synthetic.semantics spec)
    ~inputs:(Synthetic.inputs_for spec ~seed)

let test_sharded_repo_differential () =
  with_pool 4 @@ fun pool ->
  in_tmp_dir @@ fun dir ->
  let root = Filename.concat dir "store" in
  let t = Sharded_repo.init ~shards:3 root in
  Fun.protect ~finally:(fun () -> Sharded_repo.close t) @@ fun () ->
  let shadow = Repository.create () in
  let feed m =
    Repository.apply shadow m;
    ignore (Sharded_repo.append t m)
  in
  let names = List.init 9 (fun i -> Printf.sprintf "ent%02d" i) in
  List.iteri (fun i n -> feed (add_syn_entry ~params:small_params n (300 + i))) names;
  (* A streamed batch: same-name dependencies stay in one shard. *)
  let batch =
    [
      add_syn_entry ~params:small_params "late" 400;
      Repository.Add_execution
        { entry_name = "ent00"; exec = exec_of_repo shadow "ent00" 401 };
    ]
  in
  List.iter (Repository.apply shadow) batch;
  let g = Sharded_repo.append_streaming t batch in
  check Alcotest.bool "streamed batch raised the global epoch" true (g > 0);
  check Alcotest.int "generation is the per-shard sum" g
    (Sharded_repo.generation t);
  (* Every entry landed in exactly the shard the manifest routes to. *)
  let map = Sharded_repo.shard_map t in
  Array.iteri
    (fun s entries ->
      List.iter
        (fun (n, _, _) ->
          check Alcotest.int
            (Printf.sprintf "%s lives in its routed shard" n)
            (Shard_map.route map n) s)
        entries)
    (Sharded_repo.entries_by_shard t);
  (* The merged repository answers like the unsharded shadow. *)
  let merged = Sharded_repo.repo t in
  check
    Alcotest.(list string)
    "same entry names" (Repository.names shadow) (Repository.names merged);
  List.iter
    (fun n ->
      check Alcotest.int
        (Printf.sprintf "%s execution count" n)
        (List.length (Repository.find shadow n).Repository.executions)
        (List.length (Repository.find merged n).Repository.executions))
    (Repository.names shadow);
  let union = Repository.search_index shadow in
  let sx = Sharded_repo.index ~pool t in
  List.iter
    (fun level ->
      List.iter
        (fun terms ->
          check_rank
            (Printf.sprintf "served top-k l%d [%s]" level
               (String.concat "," terms))
            (Index.top_k union ~level ~k:5 terms)
            (Sharded_index.top_k sx ~level ~k:5 terms))
        probe_terms)
    probe_levels;
  (* Reopen from disk: parallel per-shard recovery, same answers. *)
  Sharded_repo.close t;
  let t2 = Sharded_repo.open_dir ~pool root in
  Fun.protect ~finally:(fun () -> Sharded_repo.close t2) @@ fun () ->
  check
    Alcotest.(list string)
    "names survive reopen" (Repository.names shadow)
    (Repository.names (Sharded_repo.repo t2));
  check Alcotest.int "generation survives reopen"
    (Sharded_repo.generation t) (Sharded_repo.generation t2);
  check Alcotest.string "merged image survives reopen" (snap merged)
    (snap (Sharded_repo.repo t2))

let test_sharded_repo_refusals () =
  in_tmp_dir @@ fun dir ->
  let root = Filename.concat dir "store" in
  let t = Sharded_repo.init ~shards:2 root in
  Sharded_repo.close t;
  (match Sharded_repo.init ~shards:2 root with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double init must be refused");
  check Alcotest.bool "is_sharded on a sharded root" true
    (Sharded_repo.is_sharded root);
  check Alcotest.bool "is_sharded on a plain dir" false
    (Sharded_repo.is_sharded dir);
  let t = Sharded_repo.open_dir root in
  Fun.protect ~finally:(fun () -> Sharded_repo.close t) @@ fun () ->
  (match Sharded_repo.append_streaming t [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty batch must be refused");
  (* A doomed batch (duplicate entry) must leave *no* shard changed,
     even when a sibling shard's group would have been valid. *)
  ignore (Sharded_repo.append t (add_syn_entry "a0" 1));
  let g_before = Sharded_repo.generation t in
  let image_before = snap (Sharded_repo.repo t) in
  (match
     Sharded_repo.append_streaming t
       [ add_syn_entry "b7" 2; add_syn_entry "a0" 3 ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate entry in a batch must be refused");
  check Alcotest.int "no shard committed the doomed batch" g_before
    (Sharded_repo.generation t);
  check Alcotest.string "repository image unchanged" image_before
    (snap (Sharded_repo.repo t))

(* ------------------------------------------------------------------ *)
(* Leakage: the sharded planner's observer view is blind to hidden
   structure (same scenario discipline as test_obs). *)

let leak_spec ~hidden_chain =
  let atom id name = Module_def.make ~id ~name Module_def.Atomic in
  let hidden_ids = List.init hidden_chain (fun i -> 4 + i) in
  let hidden =
    List.map (fun id -> atom id (Printf.sprintf "Hidden Step %d" id)) hidden_ids
  in
  let rec chain = function
    | a :: (b :: _ as rest) ->
        { Spec.src = a; dst = b; data = [ "h" ] } :: chain rest
    | _ -> []
  in
  let w1 =
    {
      Spec.wf_id = "W1";
      title = "root";
      members = [ Ids.input_module; Ids.output_module; 2; 3 ];
      edges =
        [
          { Spec.src = Ids.input_module; dst = 2; data = [ "a" ] };
          { Spec.src = 2; dst = 3; data = [ "b" ] };
          { Spec.src = 3; dst = Ids.output_module; data = [ "c" ] };
        ];
    }
  in
  let w2 =
    {
      Spec.wf_id = "W2";
      title = "secret";
      members = hidden_ids;
      edges = chain hidden_ids;
    }
  in
  Spec.create ~root:"W1"
    ([
       Module_def.input;
       Module_def.output;
       atom 2 "Visible Step";
       Module_def.make ~id:3 ~name:"Secret Unit" (Module_def.Composite "W2");
     ]
    @ hidden)
    [ w1; w2 ]

(* A corpus whose only difference is the hidden chain inside entry
   "secret": the level-0/1 doc universe and postings are identical. *)
let leak_corpus ~hidden_chain =
  let secret =
    let policy =
      Policy.make ~expand_levels:[ ("W2", 2) ] (leak_spec ~hidden_chain)
    in
    ("secret", Policy.spec policy, Policy.privilege policy)
  in
  [ syn_index_entry 501 "pub-a"; secret; syn_index_entry 502 "pub-b" ]

let leak_probe ~hidden_chain ~shards ~level =
  Obs.Registry.reset ();
  let parts =
    Shard.partition ~shards ~hash:entry_hash (leak_corpus ~hidden_chain)
  in
  let sx = Sharded_index.build parts in
  List.iter
    (fun terms ->
      ignore (Sharded_index.top_k sx ~level ~k:3 terms);
      ignore (Sharded_index.score_entries sx ~level terms))
    ([ [ "secret" ]; [ "hidden" ]; [ "visible" ] ] @ probe_terms);
  let spec = leak_spec ~hidden_chain in
  let policy = Policy.make ~expand_levels:[ ("W2", 2) ] spec in
  let exec =
    Executor.run spec (Synthetic.semantics spec)
      ~inputs:(Synthetic.inputs_for spec ~seed:1)
  in
  let gate = Access_gate.of_policy policy ~level in
  let ev = Access_gate.exec_view gate exec in
  let eng = Frontier.engine_of_exec_view ~shards ev in
  List.iter
    (fun q -> ignore (Engine.run eng (Engine.compile q)))
    structural_queries;
  Obs.Registry.observer_counters ~level

let test_sharded_leakage () =
  with_obs @@ fun () ->
  List.iter
    (fun shards ->
      List.iter
        (fun level ->
          let a = leak_probe ~hidden_chain:1 ~shards ~level in
          let b = leak_probe ~hidden_chain:4 ~shards ~level in
          check
            Alcotest.(list (pair string int))
            (Printf.sprintf
               "shards=%d observer at level %d blind to hidden structure"
               shards level)
            a b;
          check Alcotest.bool "sharded top-k counters present" true
            (match List.assoc_opt "shard.topk_queries" b with
            | Some n -> n > 0
            | None -> false))
        [ 0; 1 ])
    [ 3; 8 ];
  (* Privileged sharded work stays above the observer. *)
  Obs.Registry.reset ();
  let sx =
    Sharded_index.build
      (Shard.partition ~shards:3 ~hash:entry_hash (leak_corpus ~hidden_chain:4))
  in
  ignore (Sharded_index.top_k sx ~level:1 ~k:3 [ "risk" ]);
  let below = Obs.Registry.observer_counters ~level:1 in
  ignore (Sharded_index.top_k sx ~level:3 ~k:3 [ "secret"; "hidden" ]);
  check
    Alcotest.(list (pair string int))
    "level-3 sharded work invisible at level 1" below
    (Obs.Registry.observer_counters ~level:1)

(* ------------------------------------------------------------------ *)
(* Per-shard crash recovery: truncate ONE shard's WAL tail at every
   byte offset. The damaged shard must recover a sealed per-shard
   state (never a torn batch), siblings keep their full state, and the
   reopened store keeps serving and accepting appends. *)

let name_routed map shard tag =
  let rec go i =
    let name = Printf.sprintf "%s%02d" tag i in
    if Shard_map.route map name = shard then name else go (i + 1)
  in
  go 0

let test_shard_truncation_fuzz () =
  in_tmp_dir @@ fun dir ->
  let root = Filename.concat dir "store" in
  let t = Sharded_repo.init ~shards:3 root in
  let map = Sharded_repo.shard_map t in
  let target = 1 in
  (* Shadow of the target shard only, with a state table keyed by the
     replayed-record count (the same discipline as test_live). *)
  let shadow = Repository.create () in
  let states = Hashtbl.create 8 in
  let count = ref 0 in
  let note gen = Hashtbl.replace states !count (snap shadow, gen) in
  let apply_target ms =
    List.iter
      (fun m ->
        Repository.apply shadow m;
        incr count)
      ms
  in
  note 0;
  let a0 = name_routed map 0 "a" in
  let a1 = name_routed map target "b" in
  let a2 = name_routed map 2 "c" in
  ignore (Sharded_repo.append t (add_syn_entry a0 11));
  (* Mutation values are shared between the store and the shadow: the
     repository pins executions to the physically-same spec. *)
  let m_a1 = add_syn_entry a1 12 in
  ignore (Sharded_repo.append t m_a1);
  apply_target [ m_a1 ];
  note 0;
  ignore (Sharded_repo.append t (add_syn_entry a2 13));
  (* Batch 1 spans all three shards; the target's group is the two
     same-shard mutations, sealed atomically. *)
  let b1 = name_routed map target "d" in
  let target_group1 =
    [
      add_syn_entry b1 14;
      Repository.Add_execution
        { entry_name = a1; exec = exec_of_repo (Sharded_repo.repo t) a1 15 };
    ]
  in
  let batch1 =
    [ add_syn_entry (name_routed map 0 "e") 16 ]
    @ target_group1
    @ [ add_syn_entry (name_routed map 2 "f") 17 ]
  in
  ignore (Sharded_repo.append_streaming t batch1);
  apply_target target_group1;
  note 1;
  (* Batch 2 touches only the target shard. *)
  let target_group2 =
    [
      Repository.Add_execution
        { entry_name = b1; exec = exec_of_repo (Sharded_repo.repo t) b1 18 };
    ]
  in
  ignore (Sharded_repo.append_streaming t target_group2);
  apply_target target_group2;
  note 2;
  let full_images =
    Array.init 3 (fun s -> snap (Durable_repo.repo (Sharded_repo.shard_store t s)))
  in
  let full_names = Repository.names (Sharded_repo.repo t) in
  Sharded_repo.close t;
  let target_dir = Shard_map.shard_dir root target in
  let seg =
    match Wal.segments target_dir with
    | [ s ] -> s
    | l -> Alcotest.failf "expected one segment, got %d" (List.length l)
  in
  let image = Wal.read_all seg.Wal.path in
  for b = 0 to String.length image do
    in_tmp_dir (fun dir2 ->
        let root2 = Filename.concat dir2 "store" in
        copy_tree root root2;
        write_file
          (Filename.concat
             (Shard_map.shard_dir root2 target)
             (Filename.basename seg.Wal.path))
          (String.sub image 0 b);
        let t2 = Sharded_repo.open_dir root2 in
        Fun.protect ~finally:(fun () -> Sharded_repo.close t2) @@ fun () ->
        let store = Sharded_repo.shard_store t2 target in
        let report = Durable_repo.recovery_report store in
        (match
           Hashtbl.find_opt states report.Wfpriv_durable.Recovery.replayed
         with
        | None ->
            Alcotest.failf
              "offset %d: replay horizon %d sits inside a batch" b
              report.Wfpriv_durable.Recovery.replayed
        | Some (st, gen) ->
            check Alcotest.string
              (Printf.sprintf "offset %d recovers a sealed shard state" b)
              st
              (snap (Durable_repo.repo store));
            check Alcotest.int
              (Printf.sprintf "offset %d shard generation" b)
              gen
              report.Wfpriv_durable.Recovery.generation);
        (* Sibling shards are untouched by the damage. *)
        List.iter
          (fun s ->
            check Alcotest.string
              (Printf.sprintf "offset %d: shard %d keeps its state" b s)
              full_images.(s)
              (snap (Durable_repo.repo (Sharded_repo.shard_store t2 s))))
          [ 0; 2 ];
        (* The merged view is exactly siblings + recovered target. *)
        let expect_names =
          List.filter
            (fun n ->
              Shard_map.route map n <> target
              || List.mem n (Repository.names shadow)
              || Hashtbl.length states = 0)
            full_names
        in
        let merged_names = Repository.names (Sharded_repo.repo t2) in
        check Alcotest.bool
          (Printf.sprintf "offset %d: merged = siblings + recovered" b)
          true
          (List.for_all
             (fun n ->
               if Shard_map.route map n <> target then
                 List.mem n merged_names
               else true)
             expect_names);
        (* The store still accepts a fresh append after repair. *)
        let g_before = Sharded_repo.generation t2 in
        let shard, _ =
          Sharded_repo.append t2
            (Repository.Add_execution
               {
                 entry_name = a0;
                 exec = exec_of_repo (Sharded_repo.repo t2) a0 99;
               })
        in
        check Alcotest.int
          (Printf.sprintf "offset %d: append routes to shard 0" b)
          0 shard;
        check Alcotest.int
          (Printf.sprintf "offset %d: append is immediate (epoch stable)" b)
          g_before (Sharded_repo.generation t2))
  done

let () =
  Alcotest.run "shard"
    [
      ( "routing",
        [
          Alcotest.test_case "min_int and bounds" `Quick test_bucket_min_int;
          qcheck prop_bucket_in_range;
          qcheck prop_partition_order_and_coverage;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "corruption detected (every byte)" `Quick
            test_manifest_corruption;
          Alcotest.test_case "save/load" `Quick test_manifest_save_load;
          Alcotest.test_case "route contract" `Quick test_route_contract;
        ] );
      ( "differential",
        [
          Alcotest.test_case "keyword top-k vs unsharded index" `Quick
            test_keyword_differential;
          Alcotest.test_case "sharded index refusals" `Quick
            test_sharded_index_refusals;
          Alcotest.test_case "frontier closures vs engine" `Quick
            test_frontier_differential;
          Alcotest.test_case "one shard is the plain engine" `Quick
            test_one_shard_degenerates;
          Alcotest.test_case "session and cache topology" `Quick
            test_session_topology;
          Alcotest.test_case "sharded repository vs shadow" `Quick
            test_sharded_repo_differential;
          Alcotest.test_case "repository refusals" `Quick
            test_sharded_repo_refusals;
        ] );
      ( "leakage",
        [
          Alcotest.test_case "observer blind to hidden structure" `Quick
            test_sharded_leakage;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "one-shard truncation fuzz (every offset)"
            `Quick test_shard_truncation_fuzz;
        ] );
    ]
