(* Serving-layer tests (PR 6).

   Three suites:
   - wire: QCheck round-trip of request/response frames through both
     framings, plus rejection of truncated and oversized frames;
   - leakage, the PR's acceptance bar: responses are bit-identical with
     the result cache on and off, every cache key is partitioned by
     privilege level by construction, and traffic at one level never
     changes what another level is answered;
   - backpressure: floods of expensive zoom-outs are shed with
     retryable errors while cheap lookups keep draining, and the
     admission caps (queue bound, per-client in-flight) reject with
     retryable errors. *)

open Wfpriv_privacy
module Obs = Wfpriv_obs
module Server = Wfpriv_server.Server
module Scheduler = Wfpriv_server.Scheduler
module Wire = Wfpriv_server.Wire
module Repository = Wfpriv_query.Repository
module Durable_repo = Wfpriv_durable.Durable_repo
module Live_repo = Wfpriv_durable.Live_repo
module Disease = Wfpriv_workloads.Disease
module Clinical = Wfpriv_workloads.Clinical
module Synthetic = Wfpriv_workloads.Synthetic
module Rng = Wfpriv_workloads.Rng

let check = Alcotest.check

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_dir () =
  let path = Filename.temp_file "wfpriv-server-test" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let with_obs f =
  Obs.Config.set_enabled true;
  Obs.Registry.reset ();
  Obs.Audit_log.reset ();
  Fun.protect ~finally:(fun () -> Obs.Config.set_enabled false) f

let disease_policy =
  Policy.make
    ~expand_levels:[ ("W2", 1); ("W3", 2); ("W4", 3) ]
    ~data_levels:[ ("disorders", 2); ("prognosis", 1) ]
    Disease.spec

let demo_repo () =
  let repo = Repository.create () in
  Repository.add repo ~name:"disease-susceptibility" ~policy:disease_policy
    ~executions:[ Disease.run () ] ();
  Repository.add repo ~name:"clinical-trial" ~policy:Clinical.policy
    ~executions:[ Clinical.run () ] ();
  repo

let frame ?(rid = 1) ?(deadline_ms = 0) ~level req =
  { Wire.rid; level; deadline_ms; req }

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let gen_request =
  let open QCheck.Gen in
  let word = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let query = oneofl [ "node(*)"; "node(~\"risk\")"; "before(*, *)" ] in
  oneof
    [
      map3
        (fun entry run queries -> Wire.Query { entry; run; queries })
        word (int_bound 3)
        (list_size (int_range 1 4) query);
      map2 (fun k kws -> Wire.Topk { k; keywords = kws }) (int_range 1 10)
        (list_size (int_range 1 4) word);
      map2 (fun entry run -> Wire.Zoom_out { entry; run }) word (int_bound 3);
      map (fun p -> Wire.Stats { prefix = p }) (opt word);
      map3
        (fun entry workload seed -> Wire.Append { entry; workload; seed })
        word (opt word) (int_bound 1_000);
    ]

let gen_req_frame =
  let open QCheck.Gen in
  map3
    (fun rid level (deadline_ms, req) -> { Wire.rid; level; deadline_ms; req })
    (int_bound 1_000_000) (int_bound 9)
    (pair (int_bound 10_000) gen_request)

let gen_result =
  let open QCheck.Gen in
  let word = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  oneof
    [
      map
        (fun ws -> Wire.Witnesses ws)
        (list_size (int_bound 4)
           (pair bool (list_size (int_bound 5) (int_bound 1000))));
      map
        (fun hs -> Wire.Hits hs)
        (list_size (int_bound 4) (pair word (float_bound_inclusive 10.0)));
      map2
        (fun p n -> Wire.View { view_prefix = p; view_nodes = n })
        (list_size (int_bound 4) word)
        (int_bound 100);
      map
        (fun cs -> Wire.Counters cs)
        (list_size (int_bound 4) (pair word (int_bound 10_000)));
      map2
        (fun generation lsn -> Wire.Committed { generation; lsn })
        (int_bound 10_000) (int_bound 10_000);
    ]

let gen_response =
  let open QCheck.Gen in
  let code =
    oneofl
      [
        Wire.Bad_request; Wire.Unknown_entry; Wire.Over_capacity;
        Wire.Deadline_exceeded; Wire.Privilege;
      ]
  in
  oneof
    [
      map2 (fun rid result -> Wire.Result { rid; result }) (int_bound 1_000_000)
        gen_result;
      map3
        (fun rid (code, retryable) (floor, message) ->
          Wire.Error { rid; code; retryable; floor; message })
        (int_bound 1_000_000) (pair code bool)
        (pair (opt (int_bound 9))
           (string_size ~gen:(char_range ' ' 'z') (int_bound 30)));
    ]

let gen_mode = QCheck.Gen.oneofl [ Wire.Binary; Wire.Json ]

let roundtrip_request =
  QCheck.Test.make ~name:"request survives both framings" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_mode gen_req_frame))
    (fun (mode, f) ->
      let s = Wire.encode_request mode f in
      match Wire.decode_request s with
      | Wire.Frame (f', used) -> f' = f && used = String.length s
      | _ -> false)

let roundtrip_response =
  QCheck.Test.make ~name:"response survives both framings" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_mode gen_response))
    (fun (mode, r) ->
      let s = Wire.encode_response mode r in
      match Wire.decode_response s with
      | Wire.Frame (r', used) -> r' = r && used = String.length s
      | _ -> false)

let truncation_needs_more =
  QCheck.Test.make ~name:"every strict prefix reports Need_more" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_mode gen_req_frame))
    (fun (mode, f) ->
      let s = Wire.encode_request mode f in
      let ok = ref true in
      for len = 0 to String.length s - 1 do
        match Wire.decode_request (String.sub s 0 len) with
        | Wire.Need_more -> ()
        | _ -> ok := false
      done;
      !ok)

let test_frame_rejection () =
  let oversized =
    (* magic, version 1, u32 length = max_frame + 1 *)
    let b = Bytes.create 6 in
    Bytes.set b 0 '\xf7';
    Bytes.set b 1 '\x01';
    let plen = Wire.max_frame + 1 in
    for i = 0 to 3 do
      Bytes.set b (2 + i) (Char.chr ((plen lsr (8 * i)) land 0xff))
    done;
    Bytes.to_string b
  in
  (match Wire.decode_request oversized with
  | Wire.Corrupt _ -> ()
  | _ -> Alcotest.fail "oversized frame not rejected");
  let bad_version = "\xf7\x09\x00\x00\x00\x00" in
  (match Wire.decode_request bad_version with
  | Wire.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad version not rejected");
  let f = frame ~level:1 (Wire.Topk { k = 2; keywords = [ "snp" ] }) in
  let enc = Wire.encode_request Wire.Binary f in
  (* Extend the declared payload with garbage: trailing bytes must be
     rejected, not silently ignored. *)
  let plen = String.length enc - 6 + 1 in
  let b = Bytes.of_string (enc ^ "X") in
  for i = 0 to 3 do
    Bytes.set b (2 + i) (Char.chr ((plen lsr (8 * i)) land 0xff))
  done;
  (match Wire.decode_request (Bytes.to_string b) with
  | Wire.Corrupt _ -> ()
  | _ -> Alcotest.fail "trailing payload bytes not rejected");
  match Wire.decode_request "{\"v\":1,\"rid\":oops}\n" with
  | Wire.Corrupt _ -> ()
  | _ -> Alcotest.fail "malformed JSON line not rejected"

(* ------------------------------------------------------------------ *)
(* Leakage *)

let mixed_workload =
  [
    (0, Wire.Topk { k = 3; keywords = [ "snp"; "omim" ] });
    (1, Wire.Query
         {
           entry = "disease-susceptibility";
           run = 0;
           queries = [ "node(~\"risk\")"; "before(~\"Expand SNP\", ~\"OMIM\")" ];
         });
    (3, Wire.Query
         {
           entry = "disease-susceptibility";
           run = 0;
           queries = [ "node(~\"risk\")" ];
         });
    (0, Wire.Zoom_out { entry = "disease-susceptibility"; run = 0 });
    (3, Wire.Zoom_out { entry = "disease-susceptibility"; run = 0 });
    (1, Wire.Topk { k = 2; keywords = [ "trial" ] });
    (2, Wire.Query { entry = "clinical-trial"; run = 0; queries = [ "node(*)" ] });
  ]

(* Answer the workload twice through [handle] (so the second pass is
   all cache hits when the cache is on) and render every response. *)
let run_workload server =
  List.concat_map
    (fun pass ->
      List.mapi
        (fun i (level, req) ->
          let f = frame ~rid:((pass * 100) + i) ~level req in
          Wire.encode_response Wire.Json (Server.handle server ~client:i f))
        mixed_workload)
    [ 0; 1 ]

let test_cache_transparent () =
  with_obs @@ fun () ->
  let repo = demo_repo () in
  let on = Server.create repo in
  let off =
    Server.create ~config:{ Server.default_config with cache = false } repo
  in
  let r_on = run_workload on in
  let r_off = run_workload off in
  check (Alcotest.list Alcotest.string) "responses identical cache on/off"
    r_off r_on;
  let stats = Server.cache_stats on in
  check Alcotest.bool "cache-on run hit the cache" true
    (stats.Wfpriv_server.Level_cache.hits > 0);
  check Alcotest.int "cache-off never caches" 0
    (Server.cache_stats off).Wfpriv_server.Level_cache.entries

let test_cache_partitioned_by_level () =
  with_obs @@ fun () ->
  let server = Server.create (demo_repo ()) in
  ignore (run_workload server);
  let levels_used =
    List.sort_uniq compare (List.map fst mixed_workload)
    |> List.map (Printf.sprintf "l%d/")
  in
  List.iter
    (fun key ->
      check Alcotest.bool
        (Printf.sprintf "key %S carries its level prefix" key)
        true
        (List.exists
           (fun p -> String.length key >= String.length p
                     && String.sub key 0 (String.length p) = p)
           levels_used))
    (Server.cache_keys server)

let test_no_cross_level_interference () =
  with_obs @@ fun () ->
  let repo = demo_repo () in
  let ask server level =
    List.map
      (fun req ->
        Wire.encode_response Wire.Json
          (Server.handle server ~client:0 (frame ~level req)))
      [
        Wire.Query
          {
            entry = "disease-susceptibility";
            run = 0;
            queries = [ "node(~\"risk\")" ];
          };
        Wire.Zoom_out { entry = "disease-susceptibility"; run = 0 };
        Wire.Topk { k = 3; keywords = [ "snp" ] };
      ]
  in
  (* Fresh server, only level 0 traffic. *)
  let fresh = Server.create repo in
  let lone = ask fresh 0 in
  (* Warm server whose cache level 3 populated first. *)
  let warm = Server.create repo in
  ignore (ask warm 3);
  ignore (ask warm 3);
  let after = ask warm 0 in
  check (Alcotest.list Alcotest.string)
    "level-0 answers unchanged by level-3 cache traffic" lone after

let test_stats_observer_view () =
  with_obs @@ fun () ->
  let server = Server.create (demo_repo ()) in
  let topk level =
    ignore
      (Server.handle server ~client:0
         (frame ~level (Wire.Topk { k = 1; keywords = [ "snp" ] })))
  in
  topk 3;
  let counters_at level =
    match
      Server.handle server ~client:0
        (frame ~level (Wire.Stats { prefix = Some "server.requests" }))
    with
    | Wire.Result { result = Wire.Counters cs; _ } -> cs
    | _ -> Alcotest.fail "stats did not answer counters"
  in
  (* The level-0 observer must not see the level-3 request; its own
     stats request is the only one visible. *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "level-0 observer blind to level-3 traffic"
    [ ("server.requests", 1) ]
    (counters_at 0);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "level-3 observer sees both (plus the level-0 probe)"
    [ ("server.requests", 3) ]
    (counters_at 3)

(* ------------------------------------------------------------------ *)
(* Backpressure *)

let sched_config =
  { Scheduler.default_config with queue_capacity = 4; inflight_cap = 3 }

let make_server ?(config = { Server.default_config with sched = sched_config })
    now repo =
  Server.create ~config ~now:(fun () -> !now) repo

let zoom = Wire.Zoom_out { entry = "disease-susceptibility"; run = 0 }
let cheap = Wire.Topk { k = 2; keywords = [ "snp" ] }

let test_deadline_shedding () =
  with_obs @@ fun () ->
  let now = ref 0.0 in
  let server = make_server now (demo_repo ()) in
  (* Three zoom-outs with 10ms deadlines from distinct clients, one
     cheap lookup without a deadline. *)
  let submit client ?deadline_ms req =
    match
      Server.submit server ~client
        (frame ~rid:client ?deadline_ms ~level:1 req)
    with
    | None -> ()
    | Some _ -> Alcotest.fail "unexpected immediate response"
  in
  submit 1 ~deadline_ms:10 zoom;
  submit 2 ~deadline_ms:10 zoom;
  submit 3 ~deadline_ms:10 zoom;
  submit 4 cheap;
  (* One cycle releases the cheap batch and one expensive zoom. *)
  let first = Server.cycle server in
  check Alcotest.int "cheap batch + one expensive released" 2
    (List.length first);
  (* The clock jumps past every deadline: the queued zooms are shed
     with a retryable deadline-exceeded error, not executed. *)
  now := 1.0;
  let rest = Server.drain_all server in
  check Alcotest.int "remaining zooms answered" 2 (List.length rest);
  List.iter
    (fun (_, _, r) ->
      match r with
      | Wire.Error { code = Wire.Deadline_exceeded; retryable = true; _ } -> ()
      | _ -> Alcotest.fail "expected retryable deadline-exceeded")
    rest;
  let shed_records =
    List.filter
      (fun (r : Obs.Audit_log.record) -> r.op = "server.shed")
      (Obs.Audit_log.records ())
  in
  check Alcotest.int "both sheds audited" 2 (List.length shed_records);
  List.iter
    (fun (r : Obs.Audit_log.record) ->
      check Alcotest.string "shed record carries no query text" "" r.query;
      match r.outcome with
      | Obs.Audit_log.Denied { floor } ->
          check Alcotest.int "floor is the requester's level" 1 floor
      | Obs.Audit_log.Allowed -> Alcotest.fail "shed recorded as allowed")
    shed_records

let test_cheap_latency_bounded_under_flood () =
  with_obs @@ fun () ->
  let now = ref 0.0 in
  let server = make_server now (demo_repo ()) in
  (* A queue-filling flood of zoom-outs... *)
  for client = 1 to 4 do
    ignore (Server.submit server ~client (frame ~rid:client ~level:2 zoom))
  done;
  (* ...then one cheap lookup: it must be answered on the very next
     cycle, ahead of the backlog. *)
  (match Server.submit server ~client:9 (frame ~rid:99 ~level:2 cheap) with
  | None -> ()
  | Some _ -> Alcotest.fail "cheap lookup rejected");
  let responses = Server.cycle server in
  let cheap_answered =
    List.exists
      (fun (_, _, r) ->
        match r with
        | Wire.Result { rid = 99; result = Wire.Hits _ } -> true
        | _ -> false)
      responses
  in
  check Alcotest.bool "cheap lookup answered in the first cycle" true
    cheap_answered;
  check Alcotest.bool "zoom backlog still pending" true
    (List.length (Server.drain_all server) = 3)

let test_admission_caps () =
  with_obs @@ fun () ->
  let now = ref 0.0 in
  let server = make_server now (demo_repo ()) in
  (* Per-client in-flight cap (3): the 4th concurrent submit rejects. *)
  for i = 1 to 3 do
    match Server.submit server ~client:7 (frame ~rid:i ~level:0 cheap) with
    | None -> ()
    | Some _ -> Alcotest.fail "within-cap submit rejected"
  done;
  (match Server.submit server ~client:7 (frame ~rid:4 ~level:0 cheap) with
  | Some (Wire.Error { code = Wire.Over_capacity; retryable = true; _ }) -> ()
  | _ -> Alcotest.fail "expected retryable over-capacity (in-flight cap)");
  ignore (Server.drain_all server);
  (* Queue bound (4): distinct clients fill one level queue; the 5th
     rejects. *)
  for client = 11 to 14 do
    match Server.submit server ~client (frame ~rid:client ~level:0 cheap) with
    | None -> ()
    | Some _ -> Alcotest.fail "within-bound submit rejected"
  done;
  (match Server.submit server ~client:15 (frame ~rid:15 ~level:0 cheap) with
  | Some (Wire.Error { code = Wire.Over_capacity; retryable = true; _ }) -> ()
  | _ -> Alcotest.fail "expected retryable over-capacity (queue bound)");
  ignore (Server.drain_all server)

let test_privilege_denial_audited () =
  with_obs @@ fun () ->
  let server =
    Server.create
      ~config:{ Server.default_config with max_level = 3 }
      (demo_repo ())
  in
  (match Server.handle server ~client:0 (frame ~level:7 cheap) with
  | Wire.Error
      { code = Wire.Privilege; retryable = false; floor = Some 7; _ } ->
      ()
  | _ -> Alcotest.fail "expected privilege denial with floor");
  match
    List.filter
      (fun (r : Obs.Audit_log.record) -> r.op = "server.denied")
      (Obs.Audit_log.records ())
  with
  | [ r ] ->
      check Alcotest.int "denial filed at the ceiling" 3 r.level;
      check Alcotest.string "denial carries no query text" "" r.query;
      (match r.outcome with
      | Obs.Audit_log.Denied { floor } ->
          check Alcotest.int "floor is the claimed level" 7 floor
      | Obs.Audit_log.Allowed -> Alcotest.fail "denial recorded as allowed")
  | rs ->
      Alcotest.failf "expected exactly one server.denied record, got %d"
        (List.length rs)

(* ------------------------------------------------------------------ *)
(* Live serving: Append frames interleaved with queries *)

let synthetic_appender ~entry ~workload ~seed =
  (match workload with
  | None | Some "synthetic" -> ()
  | Some w -> invalid_arg (Printf.sprintf "unknown workload %S" w));
  let spec, exec = Synthetic.run (Rng.create seed) Synthetic.default_params in
  Repository.Add_entry
    { entry_name = entry; policy = Policy.make spec; executions = [ exec ] }

(* A live server over a durable store seeded with the demo corpus. *)
let with_live_server f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Durable_repo.init (Filename.concat dir "store") in
  Fun.protect ~finally:(fun () -> Durable_repo.close store) @@ fun () ->
  ignore
    (Durable_repo.append store
       (Repository.Add_entry
          {
            entry_name = "disease-susceptibility";
            policy = disease_policy;
            executions = [ Disease.run () ];
          }));
  ignore
    (Durable_repo.append store
       (Repository.Add_entry
          {
            entry_name = "clinical-trial";
            policy = Clinical.policy;
            executions = [ Clinical.run () ];
          }));
  let live = Live_repo.of_store store in
  let now = ref 0.0 in
  let server = Server.create_live ~now:(fun () -> !now) ~appender:synthetic_appender live in
  f server live

let test_frozen_rejects_append () =
  with_obs @@ fun () ->
  let server = Server.create (demo_repo ()) in
  match
    Server.handle server ~client:0
      (frame ~level:0 (Wire.Append { entry = "x"; workload = None; seed = 1 }))
  with
  | Wire.Error { code = Wire.Bad_request; retryable = false; _ } -> ()
  | _ -> Alcotest.fail "frozen backing must refuse appends"

let test_live_interleaved_appends () =
  with_obs @@ fun () ->
  with_live_server @@ fun server live ->
  check Alcotest.int "starts at generation 0" 0 (Server.generation server);
  let submit client req =
    match
      Server.submit server ~client (frame ~rid:client ~level:9 req)
    with
    | None -> ()
    | Some r ->
        Alcotest.failf "unexpected immediate response %s"
          (Wire.encode_response Wire.Json r)
  in
  (* Two appends from distinct clients interleaved with queries: each
     expensive append batch commits durably and publishes its own
     epoch, while the queries answer against a pinned generation. *)
  submit 1 (Wire.Append { entry = "syn-a"; workload = None; seed = 7 });
  submit 2 (Wire.Topk { k = 3; keywords = [ "snp" ] });
  submit 3
    (Wire.Append { entry = "syn-b"; workload = Some "synthetic"; seed = 8 });
  submit 4
    (Wire.Query
       { entry = "disease-susceptibility"; run = 0; queries = [ "node(*)" ] });
  let responses = Server.drain_all server in
  check Alcotest.int "every frame answered" 4 (List.length responses);
  let committed =
    List.filter_map
      (fun (_, _, r) ->
        match r with
        | Wire.Result { result = Wire.Committed { generation; lsn }; _ } ->
            Some (generation, lsn)
        | _ -> None)
      responses
  in
  (match List.sort compare committed with
  | [ (g1, l1); (g2, l2) ] ->
      check Alcotest.int "first streamed epoch" 1 g1;
      check Alcotest.int "second streamed epoch" 2 g2;
      check Alcotest.bool "commit lsns advance" true (l2 > l1)
  | l ->
      Alcotest.failf "expected 2 Committed responses, got %d" (List.length l));
  check Alcotest.int "server republished the epochs" 2
    (Server.generation server);
  (* An appender refusal surfaces as a per-frame bad-request. *)
  (match
     Server.handle server ~client:5
       (frame ~rid:50 ~level:9
          (Wire.Append { entry = "syn-c"; workload = Some "nope"; seed = 9 }))
   with
  | Wire.Error { code = Wire.Bad_request; retryable = false; _ } -> ()
  | _ -> Alcotest.fail "unknown workload must be refused");
  (* A duplicate entry name fails validation without committing. *)
  (match
     Server.handle server ~client:6
       (frame ~rid:60 ~level:9
          (Wire.Append { entry = "syn-a"; workload = None; seed = 10 }))
   with
  | Wire.Error { code = Wire.Bad_request; retryable = false; _ } -> ()
  | _ -> Alcotest.fail "duplicate entry must be refused");
  check Alcotest.int "failed appends publish nothing" 2
    (Server.generation server);
  (* The served answers now equal a frozen server over a frozen rebuild
     of the pinned generation — response-for-response. *)
  let g = Live_repo.pin live in
  let frozen = Server.create g.Live_repo.gen_repo in
  let ask srv req =
    Wire.encode_response Wire.Json
      (Server.handle srv ~client:9 (frame ~rid:77 ~level:9 req))
  in
  let vocab = Synthetic.default_params.Synthetic.keyword_vocabulary in
  List.iter
    (fun req ->
      check Alcotest.string "live answer = frozen rebuild answer"
        (ask frozen req) (ask server req))
    [
      Wire.Topk { k = 5; keywords = [ List.nth vocab 0; List.nth vocab 1 ] };
      Wire.Topk { k = 4; keywords = [ "snp"; List.nth vocab 2 ] };
      Wire.Query { entry = "syn-a"; run = 0; queries = [ "node(*)" ] };
      Wire.Query
        { entry = "disease-susceptibility"; run = 0;
          queries = [ "node(~\"risk\")" ] };
    ]

(* ------------------------------------------------------------------ *)
(* Scheduler batching *)

let test_batch_fusion () =
  let sched = Scheduler.create ~now:(fun () -> 0.0) () in
  List.iteri
    (fun i key ->
      match
        Scheduler.admit sched ~client:i ~level:0 ~cost:Scheduler.Cheap key
      with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "admit rejected")
    [ "a"; "a"; "a"; "b"; "a" ];
  (* One cheap batch per level per cycle: the fused leading run, then
     the key that broke it, then the trailing item. *)
  let next () =
    match Scheduler.drain sched ~batch_key:Fun.id () with
    | [ Scheduler.Batch items ] ->
        List.map (fun (i : string Scheduler.item) -> i.payload) items
    | evs ->
        Alcotest.failf "unexpected drain shape (%d events)" (List.length evs)
  in
  check (Alcotest.list Alcotest.string) "leading run fused" [ "a"; "a"; "a" ]
    (next ());
  check (Alcotest.list Alcotest.string) "different key breaks the batch"
    [ "b" ] (next ());
  check (Alcotest.list Alcotest.string) "trailing item batches alone" [ "a" ]
    (next ());
  check Alcotest.int "queues drained" 0 (Scheduler.pending sched)

let () =
  Alcotest.run "server"
    [
      ( "wire",
        List.map QCheck_alcotest.to_alcotest
          [ roundtrip_request; roundtrip_response; truncation_needs_more ]
        @ [ Alcotest.test_case "frame rejection" `Quick test_frame_rejection ]
      );
      ( "leakage",
        [
          Alcotest.test_case "cache transparent" `Quick test_cache_transparent;
          Alcotest.test_case "keys partitioned by level" `Quick
            test_cache_partitioned_by_level;
          Alcotest.test_case "no cross-level interference" `Quick
            test_no_cross_level_interference;
          Alcotest.test_case "stats observer view" `Quick
            test_stats_observer_view;
          Alcotest.test_case "privilege denial audited" `Quick
            test_privilege_denial_audited;
        ] );
      ( "live",
        [
          Alcotest.test_case "frozen backing refuses appends" `Quick
            test_frozen_rejects_append;
          Alcotest.test_case "interleaved appends and queries" `Quick
            test_live_interleaved_appends;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "deadline shedding" `Quick test_deadline_shedding;
          Alcotest.test_case "cheap latency bounded" `Quick
            test_cheap_latency_bounded_under_flood;
          Alcotest.test_case "admission caps" `Quick test_admission_caps;
          Alcotest.test_case "batch fusion" `Quick test_batch_fusion;
        ] );
    ]
