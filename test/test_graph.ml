(* Unit and property tests for the graph substrate: Bitset, Digraph, Topo,
   Reachability, Paths, Mincut, Dot. *)

open Wfpriv_graph

let check = Alcotest.check
let intl = Alcotest.(list int)
let pairs = Alcotest.(list (pair int int))

(* A small diamond DAG used across cases: 0 -> 1,2 -> 3, plus tail 3 -> 4. *)
let diamond () = Digraph.of_edges [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ]

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_basics () =
  let s = Bitset.create 100 in
  check Alcotest.bool "fresh empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  check Alcotest.int "cardinal" 4 (Bitset.cardinal s);
  check Alcotest.bool "mem 63" true (Bitset.mem s 63);
  check Alcotest.bool "mem 64" true (Bitset.mem s 64);
  check Alcotest.bool "not mem 1" false (Bitset.mem s 1);
  Bitset.remove s 63;
  check Alcotest.bool "removed" false (Bitset.mem s 63);
  check intl "elements sorted" [ 0; 64; 99 ] (Bitset.elements s)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "add out of range"
    (Invalid_argument "Bitset.add: index 10 out of [0,10)") (fun () ->
      Bitset.add s 10);
  Alcotest.check_raises "mem negative"
    (Invalid_argument "Bitset.mem: index -1 out of [0,10)") (fun () ->
      ignore (Bitset.mem s (-1)))

let test_bitset_setops () =
  let a = Bitset.of_list 70 [ 1; 2; 65 ] in
  let b = Bitset.of_list 70 [ 2; 3; 65 ] in
  let u = Bitset.copy a in
  Bitset.union_into ~dst:u b;
  check intl "union" [ 1; 2; 3; 65 ] (Bitset.elements u);
  let i = Bitset.copy a in
  Bitset.inter_into ~dst:i b;
  check intl "inter" [ 2; 65 ] (Bitset.elements i);
  let d = Bitset.copy a in
  Bitset.diff_into ~dst:d b;
  check intl "diff" [ 1 ] (Bitset.elements d);
  check Alcotest.bool "subset yes" true (Bitset.subset i a);
  check Alcotest.bool "subset no" false (Bitset.subset a b)

let bitset_prop_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/elements roundtrip" ~count:200
    QCheck.(list (int_bound 199))
    (fun xs ->
      let s = Bitset.of_list 200 xs in
      Bitset.elements s = List.sort_uniq compare xs)

let bitset_prop_union_card =
  QCheck.Test.make ~name:"bitset |a ∪ b| >= max(|a|,|b|)" ~count:200
    QCheck.(pair (list (int_bound 99)) (list (int_bound 99)))
    (fun (xs, ys) ->
      let a = Bitset.of_list 100 xs and b = Bitset.of_list 100 ys in
      let u = Bitset.copy a in
      Bitset.union_into ~dst:u b;
      Bitset.cardinal u >= max (Bitset.cardinal a) (Bitset.cardinal b)
      && Bitset.subset a u && Bitset.subset b u)

(* ------------------------------------------------------------------ *)
(* Digraph *)

let test_digraph_basics () =
  let g = diamond () in
  check Alcotest.int "nodes" 5 (Digraph.nb_nodes g);
  check Alcotest.int "edges" 5 (Digraph.nb_edges g);
  check intl "succ 0" [ 1; 2 ] (Digraph.succ g 0);
  check intl "pred 3" [ 1; 2 ] (Digraph.pred g 3);
  check intl "sources" [ 0 ] (Digraph.sources g);
  check intl "sinks" [ 4 ] (Digraph.sinks g);
  Digraph.add_edge g 0 1;
  check Alcotest.int "no parallel edges" 5 (Digraph.nb_edges g)

let test_digraph_removal () =
  let g = diamond () in
  Digraph.remove_edge g 1 3;
  check Alcotest.bool "edge gone" false (Digraph.mem_edge g 1 3);
  check Alcotest.int "edge count" 4 (Digraph.nb_edges g);
  Digraph.remove_node g 2;
  check Alcotest.bool "node gone" false (Digraph.mem_node g 2);
  check Alcotest.int "incident edges dropped" 2 (Digraph.nb_edges g);
  check intl "succ 0 after removal" [ 1 ] (Digraph.succ g 0)

let test_digraph_transpose_induced () =
  let g = diamond () in
  let t = Digraph.transpose g in
  check pairs "transposed edges"
    [ (1, 0); (2, 0); (3, 1); (3, 2); (4, 3) ]
    (Digraph.edges t);
  let sub = Digraph.induced g ~keep:(fun n -> n <> 2) in
  check intl "induced nodes" [ 0; 1; 3; 4 ] (Digraph.nodes sub);
  check pairs "induced edges" [ (0, 1); (1, 3); (3, 4) ] (Digraph.edges sub)

let test_digraph_copy_independent () =
  let g = diamond () in
  let h = Digraph.copy g in
  Digraph.remove_node h 0;
  check Alcotest.bool "original intact" true (Digraph.mem_node g 0);
  check Alcotest.bool "copies equal initially" false (Digraph.equal g h)

let digraph_gen =
  (* Random edge list over 12 nodes; may contain cycles. *)
  QCheck.(list_of_size (Gen.int_bound 40) (pair (int_bound 11) (int_bound 11)))

let digraph_prop_degree_sum =
  QCheck.Test.make ~name:"digraph sum of out-degrees = #edges" ~count:200
    digraph_gen (fun es ->
      let g = Digraph.of_edges es in
      let total =
        Digraph.fold_nodes (fun u acc -> acc + Digraph.out_degree g u) g 0
      in
      total = Digraph.nb_edges g)

let digraph_prop_transpose_involution =
  QCheck.Test.make ~name:"digraph transpose is an involution" ~count:200
    digraph_gen (fun es ->
      let g = Digraph.of_edges es in
      Digraph.equal g (Digraph.transpose (Digraph.transpose g)))

(* ------------------------------------------------------------------ *)
(* Topo *)

let test_topo_sort () =
  let g = diamond () in
  check (Alcotest.option intl) "lexicographically smallest order"
    (Some [ 0; 1; 2; 3; 4 ])
    (Topo.sort g);
  check Alcotest.bool "is dag" true (Topo.is_dag g)

let test_topo_cycle () =
  let g = Digraph.of_edges [ (0, 1); (1, 2); (2, 0) ] in
  check (Alcotest.option intl) "no order on cycle" None (Topo.sort g);
  (match Topo.find_cycle g with
  | Some cyc ->
      check Alcotest.int "cycle length" 3 (List.length cyc);
      (* consecutive edges (wrapping) must exist *)
      let ok =
        List.for_all2
          (fun a b -> Digraph.mem_edge g a b)
          cyc
          (List.tl cyc @ [ List.hd cyc ])
      in
      check Alcotest.bool "cycle edges exist" true ok
  | None -> Alcotest.fail "expected a cycle");
  Alcotest.check_raises "sort_exn raises"
    (Invalid_argument "Topo.sort_exn: graph has a cycle") (fun () ->
      ignore (Topo.sort_exn g))

let test_topo_scc () =
  let g =
    Digraph.of_edges [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 3); (4, 5) ]
  in
  let comps = Topo.scc g in
  check
    Alcotest.(list intl)
    "components" [ [ 0; 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (List.sort compare comps);
  let dag, comp_of = Topo.condensation g in
  check Alcotest.bool "condensation is a DAG" true (Topo.is_dag dag);
  check Alcotest.bool "same component" true (comp_of 0 = comp_of 2);
  check Alcotest.bool "different components" true (comp_of 2 <> comp_of 3)

let topo_prop_order_respects_edges =
  QCheck.Test.make ~name:"topo order puts edge sources first" ~count:200
    digraph_gen (fun es ->
      let g = Digraph.of_edges (List.filter (fun (a, b) -> a < b) es) in
      match Topo.sort g with
      | None -> false (* low→high edges can never cycle *)
      | Some order ->
          let pos = Hashtbl.create 16 in
          List.iteri (fun i n -> Hashtbl.replace pos n i) order;
          Digraph.fold_edges
            (fun u v acc -> acc && Hashtbl.find pos u < Hashtbl.find pos v)
            g true)

let topo_prop_scc_partition =
  QCheck.Test.make ~name:"SCCs partition the nodes" ~count:200 digraph_gen
    (fun es ->
      let g = Digraph.of_edges es in
      let comps = Topo.scc g in
      List.sort compare (List.concat comps) = Digraph.nodes g)

(* ------------------------------------------------------------------ *)
(* Reachability *)

let test_reachability_basics () =
  let g = diamond () in
  check Alcotest.bool "0 reaches 4" true (Reachability.reaches g 0 4);
  check Alcotest.bool "4 does not reach 0" false (Reachability.reaches g 4 0);
  check Alcotest.bool "reflexive" true (Reachability.reaches g 2 2);
  check intl "reachable_from 1" [ 1; 3; 4 ] (Reachability.reachable_from g 1);
  check intl "co_reachable 3" [ 0; 1; 2; 3 ] (Reachability.co_reachable g 3);
  check intl "between 0 3" [ 0; 1; 2; 3 ] (Reachability.between g ~src:0 ~dst:3);
  check intl "between unreachable" [] (Reachability.between g ~src:4 ~dst:0)

let test_closure_matches_dfs () =
  let g = diamond () in
  let c = Reachability.closure g in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          check Alcotest.bool
            (Printf.sprintf "closure %d->%d" u v)
            (Reachability.reaches g u v)
            (Reachability.closure_reaches c u v))
        (Digraph.nodes g))
    (Digraph.nodes g);
  check Alcotest.int "fact count" (List.length (Reachability.closure_facts c))
    (Reachability.nb_facts c)

let reach_prop_closure_agrees_dfs =
  QCheck.Test.make ~name:"closure agrees with DFS (incl. cyclic)" ~count:100
    digraph_gen (fun es ->
      let g = Digraph.of_edges es in
      let c = Reachability.closure g in
      List.for_all
        (fun u ->
          List.for_all
            (fun v ->
              Reachability.closure_reaches c u v = Reachability.reaches g u v)
            (Digraph.nodes g))
        (Digraph.nodes g))

let reach_prop_transitive =
  QCheck.Test.make ~name:"reachability facts are transitive" ~count:100
    digraph_gen (fun es ->
      let g = Digraph.of_edges es in
      let c = Reachability.closure g in
      let facts = Reachability.closure_facts c in
      List.for_all
        (fun (a, b) ->
          List.for_all
            (fun (b', d) ->
              b <> b' || d = a || Reachability.closure_reaches c a d)
            facts)
        facts)

(* ------------------------------------------------------------------ *)
(* Paths *)

let test_paths_shortest () =
  let g = diamond () in
  check
    (Alcotest.option intl)
    "shortest 0->4"
    (Some [ 0; 1; 3; 4 ])
    (Paths.shortest g ~src:0 ~dst:4);
  check (Alcotest.option Alcotest.int) "distance" (Some 3)
    (Paths.distance g ~src:0 ~dst:4);
  check (Alcotest.option intl) "self" (Some [ 2 ]) (Paths.shortest g ~src:2 ~dst:2);
  check (Alcotest.option intl) "unreachable" None (Paths.shortest g ~src:4 ~dst:0)

let test_paths_count_enumerate () =
  let g = diamond () in
  check Alcotest.int "two paths 0->3" 2 (Paths.count_paths g ~src:0 ~dst:3);
  check Alcotest.int "two paths 0->4" 2 (Paths.count_paths g ~src:0 ~dst:4);
  check
    Alcotest.(list intl)
    "enumerate 0->3 lexicographic"
    [ [ 0; 1; 3 ]; [ 0; 2; 3 ] ]
    (Paths.enumerate g ~src:0 ~dst:3);
  check
    Alcotest.(list intl)
    "limit respected"
    [ [ 0; 1; 3 ] ]
    (Paths.enumerate ~limit:1 g ~src:0 ~dst:3);
  check Alcotest.int "longest path" 3 (Paths.longest_path_length g)

let test_paths_cyclic_rejected () =
  let g = Digraph.of_edges [ (0, 1); (1, 0) ] in
  Alcotest.check_raises "count_paths cyclic"
    (Invalid_argument "Paths.count_paths: graph is cyclic") (fun () ->
      ignore (Paths.count_paths g ~src:0 ~dst:1))

let paths_prop_count_matches_enumeration =
  QCheck.Test.make ~name:"count_paths = |enumerate| on DAGs" ~count:100
    digraph_gen (fun es ->
      let g = Digraph.of_edges ((0, 1) :: List.filter (fun (a, b) -> a < b) es) in
      let c = Paths.count_paths g ~src:0 ~dst:11 in
      c > 10_000
      || c = List.length (Paths.enumerate ~limit:20_000 g ~src:0 ~dst:11))

let paths_prop_shortest_is_path =
  QCheck.Test.make ~name:"shortest returns a real path" ~count:200 digraph_gen
    (fun es ->
      let g = Digraph.of_edges es in
      match Paths.shortest g ~src:0 ~dst:11 with
      | None -> true
      | Some p ->
          let rec edges_ok = function
            | a :: (b :: _ as rest) -> Digraph.mem_edge g a b && edges_ok rest
            | _ -> true
          in
          List.hd p = 0 && List.hd (List.rev p) = 11 && edges_ok p)

(* ------------------------------------------------------------------ *)
(* Mincut *)

let test_mincut_diamond () =
  let g = diamond () in
  check Alcotest.int "max flow 0->3 is 2" 2
    (Mincut.max_flow g Mincut.uniform ~src:0 ~dst:3);
  check Alcotest.int "max flow 0->4 is 1" 1
    (Mincut.max_flow g Mincut.uniform ~src:0 ~dst:4);
  let cut = Mincut.min_cut g Mincut.uniform ~src:0 ~dst:4 in
  check pairs "bottleneck edge" [ (3, 4) ] cut;
  check Alcotest.bool "cut disconnects" true
    (Mincut.disconnects g cut ~src:0 ~dst:4)

let test_mincut_weighted () =
  (* 0 -> 1 -> 3 and 0 -> 2 -> 3; making one branch expensive steers the
     cut to the cheap edges. *)
  let g = Digraph.of_edges [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  let w (u, v) = if (u, v) = (0, 1) || (u, v) = (1, 3) then 10 else 1 in
  let cut = Mincut.min_cut g w ~src:0 ~dst:3 in
  check Alcotest.bool "cut avoids heavy edges" true
    (List.for_all (fun e -> w e = 1 || e = (0, 1) || e = (1, 3)) cut);
  check Alcotest.int "flow value" 11 (Mincut.max_flow g w ~src:0 ~dst:3);
  check Alcotest.bool "disconnects" true (Mincut.disconnects g cut ~src:0 ~dst:3)

let test_mincut_disconnected () =
  let g = Digraph.of_edges ~nodes:[ 9 ] [ (0, 1) ] in
  check Alcotest.int "flow to isolated node" 0
    (Mincut.max_flow g Mincut.uniform ~src:0 ~dst:9);
  check pairs "empty cut" [] (Mincut.min_cut g Mincut.uniform ~src:0 ~dst:9)

let test_min_vertex_cut () =
  (* 0 -> {1, 2} -> 3 -> 4: the bottleneck vertex is 3. *)
  let g = diamond () in
  check
    (Alcotest.option intl)
    "bottleneck vertex"
    (Some [ 3 ])
    (Mincut.min_vertex_cut g ~src:0 ~dst:4);
  (* 0 -> 3 needs both middle vertices. *)
  check
    (Alcotest.option intl)
    "two-vertex cut"
    (Some [ 1; 2 ])
    (Mincut.min_vertex_cut g ~src:0 ~dst:3);
  (* Direct edge: no vertex cut exists. *)
  let h = Digraph.of_edges [ (0, 1); (0, 2); (2, 1) ] in
  check (Alcotest.option intl) "direct edge" None
    (Mincut.min_vertex_cut h ~src:0 ~dst:1);
  check
    (Alcotest.option intl)
    "already disconnected"
    (Some [])
    (Mincut.min_vertex_cut (Digraph.of_edges ~nodes:[ 5 ] [ (0, 1) ]) ~src:1 ~dst:5)

let mincut_prop_vertex_cut_valid =
  QCheck.Test.make ~name:"vertex cuts disconnect and are minimal-size sane"
    ~count:80 digraph_gen (fun es ->
      let es = List.filter (fun (a, b) -> a <> b) es in
      let g = Digraph.of_edges ~nodes:[ 0; 11 ] es in
      match Mincut.min_vertex_cut g ~src:0 ~dst:11 with
      | None -> Digraph.mem_edge g 0 11
      | Some cut ->
          (not (List.mem 0 cut))
          && (not (List.mem 11 cut))
          && Mincut.vertex_cut_disconnects g cut ~src:0 ~dst:11)

let mincut_prop_duality =
  QCheck.Test.make ~name:"min cut weight = max flow, and disconnects"
    ~count:100 digraph_gen (fun es ->
      let es = List.filter (fun (a, b) -> a <> b) es in
      let g = Digraph.of_edges ~nodes:[ 0; 11 ] es in
      let flow = Mincut.max_flow g Mincut.uniform ~src:0 ~dst:11 in
      let cut = Mincut.min_cut g Mincut.uniform ~src:0 ~dst:11 in
      List.length cut = flow && Mincut.disconnects g cut ~src:0 ~dst:11)

(* ------------------------------------------------------------------ *)
(* Dot *)

let test_dot_render () =
  let g = Digraph.of_edges [ (0, 1) ] in
  let dot =
    Dot.render ~name:"t"
      ~node_style:(fun n ->
        { Dot.label = Printf.sprintf "n\"%d" n; shape = "box"; fill = Some "red" })
      ~edge_label:(fun _ _ -> Some "lbl")
      g
  in
  check Alcotest.bool "has header" true
    (String.length dot > 0 && String.sub dot 0 11 = "digraph \"t\"");
  check Alcotest.bool "escapes quotes" true
    (let needle = "n\\\"0" in
     let rec contains i =
       i + String.length needle <= String.length dot
       && (String.sub dot i (String.length needle) = needle || contains (i + 1))
     in
     contains 0);
  check Alcotest.bool "edge label present" true
    (let needle = "[label=\"lbl\"]" in
     let rec contains i =
       i + String.length needle <= String.length dot
       && (String.sub dot i (String.length needle) = needle || contains (i + 1))
     in
     contains 0)

(* ------------------------------------------------------------------ *)
(* Dominators *)

let test_dominators_diamond () =
  let g = diamond () in
  let d = Dominators.compute g ~entry:0 in
  check intl "dominators of 4" [ 0; 3; 4 ] (Dominators.dominators d 4);
  check intl "dominators of 3 (diamond merges)" [ 0; 3 ] (Dominators.dominators d 3);
  check Alcotest.bool "1 does not dominate 3" false (Dominators.dominates d 1 3);
  check Alcotest.bool "0 dominates everything" true
    (List.for_all (fun v -> Dominators.dominates d 0 v) (Digraph.nodes g));
  check (Alcotest.option Alcotest.int) "idom of 4" (Some 3)
    (Dominators.immediate_dominator d 4);
  check (Alcotest.option Alcotest.int) "idom of 3" (Some 0)
    (Dominators.immediate_dominator d 3);
  check (Alcotest.option Alcotest.int) "entry has no idom" None
    (Dominators.immediate_dominator d 0)

let test_dominators_chain_and_unreachable () =
  let g = Digraph.of_edges ~nodes:[ 9 ] [ (0, 1); (1, 2) ] in
  let d = Dominators.compute g ~entry:0 in
  check intl "chain dominators" [ 0; 1; 2 ] (Dominators.dominators d 2);
  check Alcotest.bool "unreachable not dominated" false
    (Dominators.dominates d 0 9);
  (match Dominators.dominators d 9 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found for unreachable node");
  Alcotest.check_raises "bad entry"
    (Invalid_argument "Dominators.compute: entry is not a node") (fun () ->
      ignore (Dominators.compute g ~entry:77))

let dominators_prop_sound =
  (* d dominates v iff removing d disconnects v from the entry. *)
  QCheck.Test.make ~name:"dominators = cut vertices for the entry" ~count:60
    digraph_gen (fun es ->
      let g = Digraph.of_edges ~nodes:[ 0 ] (List.filter (fun (a, b) -> a < b) es) in
      let d = Dominators.compute g ~entry:0 in
      List.for_all
        (fun v ->
          match Dominators.dominators d v with
          | exception Not_found -> not (Reachability.reaches g 0 v) || v = 0
          | doms ->
              List.for_all
                (fun candidate ->
                  let is_dom = List.mem candidate doms in
                  if candidate = v || candidate = 0 then is_dom
                  else begin
                    let h = Digraph.copy g in
                    Digraph.remove_node h candidate;
                    let cut_off = not (Reachability.reaches h 0 v) in
                    is_dom = cut_off
                  end)
                (Digraph.nodes g))
        (Digraph.nodes g))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "graph"
    [
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "set operations" `Quick test_bitset_setops;
        ]
        @ qsuite [ bitset_prop_roundtrip; bitset_prop_union_card ] );
      ( "digraph",
        [
          Alcotest.test_case "basics" `Quick test_digraph_basics;
          Alcotest.test_case "removal" `Quick test_digraph_removal;
          Alcotest.test_case "transpose/induced" `Quick
            test_digraph_transpose_induced;
          Alcotest.test_case "copy independent" `Quick
            test_digraph_copy_independent;
        ]
        @ qsuite [ digraph_prop_degree_sum; digraph_prop_transpose_involution ]
      );
      ( "topo",
        [
          Alcotest.test_case "sort" `Quick test_topo_sort;
          Alcotest.test_case "cycle detection" `Quick test_topo_cycle;
          Alcotest.test_case "scc/condensation" `Quick test_topo_scc;
        ]
        @ qsuite [ topo_prop_order_respects_edges; topo_prop_scc_partition ] );
      ( "reachability",
        [
          Alcotest.test_case "basics" `Quick test_reachability_basics;
          Alcotest.test_case "closure matches dfs" `Quick
            test_closure_matches_dfs;
        ]
        @ qsuite [ reach_prop_closure_agrees_dfs; reach_prop_transitive ] );
      ( "paths",
        [
          Alcotest.test_case "shortest" `Quick test_paths_shortest;
          Alcotest.test_case "count/enumerate" `Quick test_paths_count_enumerate;
          Alcotest.test_case "cyclic rejected" `Quick test_paths_cyclic_rejected;
        ]
        @ qsuite
            [ paths_prop_count_matches_enumeration; paths_prop_shortest_is_path ]
      );
      ( "mincut",
        [
          Alcotest.test_case "diamond" `Quick test_mincut_diamond;
          Alcotest.test_case "weighted" `Quick test_mincut_weighted;
          Alcotest.test_case "disconnected" `Quick test_mincut_disconnected;
          Alcotest.test_case "vertex cut" `Quick test_min_vertex_cut;
        ]
        @ qsuite [ mincut_prop_duality; mincut_prop_vertex_cut_valid ] );
      ( "dominators",
        [
          Alcotest.test_case "diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "chain and unreachable" `Quick
            test_dominators_chain_and_unreachable;
        ]
        @ qsuite [ dominators_prop_sound ] );
      ("dot", [ Alcotest.test_case "render" `Quick test_dot_render ]);
    ]
