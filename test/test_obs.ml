(* Observability layer tests (PR 4).

   Three layers are under test:
   - the primitives: lock-free counters (including under a 4-domain
     pool), log-bucketed histograms, the span sinks, the audit ring;
   - the audit discipline: denials record the required privilege floor
     and node *counts*, never the identity of hidden structure;
   - the leakage invariant, the PR's acceptance bar: everything an
     observer at level [p] can read — partitioned counter cells, audit
     records at [<= p] — is bit-identical between a workload and the
     same workload with a different *hidden* sub-structure, and work
     performed at higher levels never shows up below. *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Obs = Wfpriv_obs
module Pool = Wfpriv_parallel.Pool
module Disease = Wfpriv_workloads.Disease
module Synthetic = Wfpriv_workloads.Synthetic

let check = Alcotest.check

let with_obs f =
  Obs.Config.set_enabled true;
  Obs.Registry.reset ();
  Obs.Audit_log.reset ();
  Fun.protect ~finally:(fun () -> Obs.Config.set_enabled false) f

(* ------------------------------------------------------------------ *)
(* Primitives *)

let test_counter_cells () =
  with_obs @@ fun () ->
  let c = Obs.Registry.counter "test.cells" in
  Obs.Counter.reset c;
  Obs.Counter.incr_op c;
  Obs.Counter.add_op c 4;
  Obs.Counter.add c ~at:0 10;
  Obs.Counter.add c ~at:2 100;
  Obs.Counter.incr c ~at:2;
  check Alcotest.int "op cell" 5 (Obs.Counter.op_value c);
  check Alcotest.int "up to 0" 10 (Obs.Counter.value_up_to c 0);
  check Alcotest.int "up to 1" 10 (Obs.Counter.value_up_to c 1);
  check Alcotest.int "up to 2" 111 (Obs.Counter.value_up_to c 2);
  check Alcotest.int "total" 116 (Obs.Counter.total c);
  check
    Alcotest.(list (pair int int))
    "levels" [ (0, 10); (2, 101) ] (Obs.Counter.levels c);
  Obs.Config.set_enabled false;
  Obs.Counter.add c ~at:0 999;
  Obs.Counter.add_op c 999;
  Obs.Config.set_enabled true;
  check Alcotest.int "disabled recordings dropped" 116 (Obs.Counter.total c)

let test_counter_parallel () =
  with_obs @@ fun () ->
  let c = Obs.Registry.counter "test.parallel" in
  Obs.Counter.reset c;
  let pool = Pool.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Pool.parallel_for pool 40_000 (fun i ->
          if i mod 2 = 0 then Obs.Counter.incr_op c
          else Obs.Counter.incr c ~at:(i mod 3)));
  check Alcotest.int "no lost updates (op)" 20_000 (Obs.Counter.op_value c);
  check Alcotest.int "no lost updates (levels)" 20_000
    (Obs.Counter.value_up_to c 2);
  check Alcotest.int "no lost updates (total)" 40_000 (Obs.Counter.total c)

let test_histogram () =
  with_obs @@ fun () ->
  let h = Obs.Registry.histogram "test.hist" in
  Obs.Histogram.reset h;
  List.iter (Obs.Histogram.observe h) [ 0; 1; 2; 3; 1024; 1500; -7 ];
  check Alcotest.int "count" 7 (Obs.Histogram.count h);
  (* -7 clamps to 0 *)
  check Alcotest.int "sum" 2530 (Obs.Histogram.sum h);
  check
    Alcotest.(list (pair int int))
    "buckets: 0|1 -> 0, 2|3 -> 2, 1024|1500 -> 1024"
    [ (0, 3); (2, 2); (1024, 2) ]
    (Obs.Histogram.buckets h);
  let r = Obs.Histogram.time h (fun () -> 41 + 1) in
  check Alcotest.int "time returns" 42 r;
  check Alcotest.int "time observes" 8 (Obs.Histogram.count h)

let test_registry () =
  with_obs @@ fun () ->
  let c = Obs.Registry.counter "test.memo" in
  check Alcotest.bool "memoized" true (c == Obs.Registry.counter "test.memo");
  let h = Obs.Registry.histogram "test.memo.h" in
  check Alcotest.bool "histogram memoized" true
    (h == Obs.Registry.histogram "test.memo.h");
  check Alcotest.bool "kind mismatch rejected" true
    (try
       ignore (Obs.Registry.histogram "test.memo");
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "volatility mismatch rejected" true
    (try
       ignore (Obs.Registry.counter ~volatile:true "test.memo");
       false
     with Invalid_argument _ -> true)

let test_trace_sinks () =
  with_obs @@ fun () ->
  (* Null sink: nothing recorded. *)
  Obs.Trace.set_null ();
  Obs.Trace.with_span "t.null" (fun () -> ());
  check Alcotest.int "null records nothing" 0
    (List.length (Obs.Trace.ring_spans ()));
  (* Ring sink: spans with names and attributes, oldest first. *)
  Obs.Trace.set_ring ~capacity:2 ();
  Obs.Trace.with_span "t.a" (fun () -> ());
  Obs.Trace.with_span ~attrs:(fun () -> [ ("k", "v") ]) "t.b" (fun () -> ());
  Obs.Trace.with_span "t.c" (fun () -> ());
  let spans = Obs.Trace.ring_spans () in
  check
    Alcotest.(list string)
    "capacity evicts oldest" [ "t.b"; "t.c" ]
    (List.map (fun s -> s.Obs.Trace.name) spans);
  check
    Alcotest.(list (pair string string))
    "attrs" [ ("k", "v") ]
    (List.hd spans).Obs.Trace.attrs;
  (* A span is recorded even when the thunk raises. *)
  (try Obs.Trace.with_span "t.raise" (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.bool "span recorded on raise" true
    (List.exists
       (fun s -> s.Obs.Trace.name = "t.raise")
       (Obs.Trace.ring_spans ()));
  (* Jsonl sink: one parseable object per line. *)
  let path = Filename.temp_file "wfpriv-trace" ".jsonl" in
  Obs.Trace.set_jsonl path;
  Obs.Trace.with_span ~attrs:(fun () -> [ ("n", "3") ]) "t.file" (fun () -> ());
  Obs.Trace.close ();
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  let doc = Wfpriv_serial.Json.parse line in
  check Alcotest.string "span name round-trips" "t.file"
    Wfpriv_serial.Json.(get_string (member "span" doc));
  check Alcotest.string "attr round-trips" "3"
    Wfpriv_serial.Json.(get_string (member "n" doc))

(* ------------------------------------------------------------------ *)
(* Audit discipline *)

let depth_privilege spec =
  let h = Hierarchy.of_spec spec in
  Privilege.make spec
    (Spec.workflow_ids spec
    |> List.filter (fun w -> w <> Spec.root spec)
    |> List.map (fun w -> (w, Hierarchy.depth h w)))

let last_record () =
  match List.rev (Obs.Audit_log.records ()) with
  | r :: _ -> r
  | [] -> Alcotest.fail "no audit record"

let test_audit_zoom_denial () =
  with_obs @@ fun () ->
  let exec = Disease.run () in
  let privilege = depth_privilege Disease.spec in
  let s = Session.start privilege ~level:0 exec in
  (* Find a collapsed composite node and try to open it: level 0 may
     expand nothing, so some node must produce a denial. *)
  let denied =
    List.find_map
      (fun n ->
        match Session.zoom_in s n with
        | Session.Denied floor -> Some floor
        | _ -> None)
      (Exec_view.nodes (Session.current s))
  in
  let floor = Option.get denied in
  let r = last_record () in
  check Alcotest.string "op" "gate.zoom_in" r.Obs.Audit_log.op;
  check Alcotest.int "level" 0 r.Obs.Audit_log.level;
  check Alcotest.bool "denied with the required floor" true
    (r.Obs.Audit_log.outcome = Obs.Audit_log.Denied { floor });
  check Alcotest.int "no node identities, not even a count" 0
    r.Obs.Audit_log.nodes;
  check Alcotest.string "query field empty" "" r.Obs.Audit_log.query;
  (* The rendered line carries the floor and nothing identifying what
     stayed hidden: no module name, no workflow id, no node id. *)
  check Alcotest.string "render"
    (Printf.sprintf "#%d gate.zoom_in level=0 denied floor=%d nodes=0"
       r.Obs.Audit_log.seq floor)
    (Obs.Audit_log.render r)

let test_audit_query_denial () =
  with_obs @@ fun () ->
  let exec = Disease.run () in
  let privilege = depth_privilege Disease.spec in
  let s = Session.start privilege ~level:0 exec in
  ignore (Session.zoom_to_access_view s);
  (* W4 needs level 2 under the depth assignment; a level-0 structural
     query that names it is answered (false, from the access view) and
     audited as denied. *)
  let q = Query_ast.Inside (Query_ast.Any, "W4") in
  let w = Session.query s q in
  check Alcotest.bool "answer is privacy-safe" false w.Query_eval.holds;
  let r = last_record () in
  check Alcotest.string "op" "gate.query" r.Obs.Audit_log.op;
  check Alcotest.bool "denied, floor 2" true
    (r.Obs.Audit_log.outcome = Obs.Audit_log.Denied { floor = 2 });
  check Alcotest.int "zero visible witness nodes" 0 r.Obs.Audit_log.nodes;
  (* The record echoes the requester's own query text but names none of
     W4's hidden modules (M5..M8 in the paper's Fig. 1). *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let line = Obs.Audit_log.render r in
  List.iter
    (fun m ->
      check Alcotest.bool
        (Printf.sprintf "render does not leak %s" m)
        false (contains line m))
    [ "M5"; "M6"; "M7"; "M8" ]

(* ------------------------------------------------------------------ *)
(* The leakage invariant *)

(* Two specifications with identical *visible* structure — root W1 =
   I -> M2 -> M3(=W2) -> O — differing only inside the level-2 workflow
   W2: one hidden atomic vs. a three-atomic chain. An observer at level
   0 or 1 sees the same access views on both, so every observer-facing
   observability output must be identical too. *)
let leak_spec ~hidden_chain =
  let atom id name = Module_def.make ~id ~name Module_def.Atomic in
  let hidden_ids = List.init hidden_chain (fun i -> 4 + i) in
  let hidden =
    List.map (fun id -> atom id (Printf.sprintf "Hidden Step %d" id)) hidden_ids
  in
  let rec chain = function
    | a :: (b :: _ as rest) ->
        { Spec.src = a; dst = b; data = [ "h" ] } :: chain rest
    | _ -> []
  in
  let w1 =
    {
      Spec.wf_id = "W1";
      title = "root";
      members = [ Ids.input_module; Ids.output_module; 2; 3 ];
      edges =
        [
          { Spec.src = Ids.input_module; dst = 2; data = [ "a" ] };
          { Spec.src = 2; dst = 3; data = [ "b" ] };
          { Spec.src = 3; dst = Ids.output_module; data = [ "c" ] };
        ];
    }
  in
  let w2 =
    { Spec.wf_id = "W2"; title = "secret"; members = hidden_ids;
      edges = chain hidden_ids }
  in
  Spec.create ~root:"W1"
    ([ Module_def.input; Module_def.output; atom 2 "Visible Step";
       Module_def.make ~id:3 ~name:"Secret Unit" (Module_def.Composite "W2") ]
    @ hidden)
    [ w1; w2 ]

let leak_queries =
  Query_ast.
    [
      Node Atomic_only;
      Before (Any, Any);
      Node (Module_is 3);
      Inside (Any, "W2");
      Edge (Any, Module_is 3);
    ]

let run_workload spec ~level =
  let privilege = Privilege.make spec [ ("W2", 2) ] in
  let exec =
    Executor.run spec (Synthetic.semantics spec)
      ~inputs:(Synthetic.inputs_for spec ~seed:1)
  in
  let s = Session.start privilege ~level exec in
  ignore (Session.zoom_to_access_view s);
  List.iter (fun q -> ignore (Session.query s q)) leak_queries;
  s

(* Everything an observer at [level] may read. *)
let observer_fingerprint spec ~level =
  Obs.Registry.reset ();
  Obs.Audit_log.reset ();
  ignore (run_workload spec ~level);
  ( Obs.Registry.observer_counters ~level,
    List.map Obs.Audit_log.render (Obs.Audit_log.visible_at level) )

let fingerprint =
  Alcotest.(pair (list (pair string int)) (list string))

let test_leakage_invariance () =
  with_obs @@ fun () ->
  let small = leak_spec ~hidden_chain:1 in
  let big = leak_spec ~hidden_chain:3 in
  List.iter
    (fun level ->
      let a = observer_fingerprint small ~level in
      let b = observer_fingerprint big ~level in
      check fingerprint
        (Printf.sprintf
           "observer view at level %d blind to hidden structure" level)
        a b;
      check Alcotest.bool "fingerprint is non-trivial" true (fst a <> []))
    [ 0; 1 ]

let test_leakage_partition () =
  with_obs @@ fun () ->
  let spec = leak_spec ~hidden_chain:3 in
  Obs.Registry.reset ();
  Obs.Audit_log.reset ();
  ignore (run_workload spec ~level:1);
  let below = Obs.Registry.observer_counters ~level:1 in
  let audit_below = List.map Obs.Audit_log.render (Obs.Audit_log.visible_at 1) in
  (* Privileged work at level 2 must not disturb what level 1 reads. *)
  ignore (run_workload spec ~level:2);
  check
    Alcotest.(list (pair string int))
    "level-2 work invisible at level 1" below
    (Obs.Registry.observer_counters ~level:1);
  check
    Alcotest.(list string)
    "level-2 audit records invisible at level 1" audit_below
    (List.map Obs.Audit_log.render (Obs.Audit_log.visible_at 1));
  (* ... while the level-2 observer does see its own activity. *)
  check Alcotest.bool "level-2 observer sees more" true
    (Obs.Registry.observer_counters ~level:2 <> below)

(* ------------------------------------------------------------------ *)
(* The compressed index's decode/skip counters are recorded at the
   requesting level, so they are observer-visible. Two corpora over the
   same public doc universe, differing only in postings hidden at
   level >= 2, must leave a bit-identical observer view at levels 0 and
   1 — including for probes of a term that exists only in the hidden
   corpus. *)

let index_corpus ~hidden =
  let p doc module_id min_level = { Index.doc; module_id; min_level } in
  let base =
    [
      ("risk", p "alpha" 0 0);
      ("risk", p "beta" 1 0);
      ("omim", p "alpha" 1 1);
      ("omim", p "beta" 0 0);
      ("gene", p "beta" 2 1);
      ("gene", p "alpha" 3 0);
      ("gene", p "alpha" 4 0);
    ]
  in
  let high =
    [
      ("risk", p "alpha" 5 2);
      ("risk", p "beta" 6 3);
      ("omim", p "alpha" 5 2);
      ("omim", p "alpha" 6 2);
      ("secret", p "alpha" 5 2);
      ("secret", p "beta" 6 3);
    ]
  in
  base @ if hidden then high else []

let index_observer_fingerprint raw ~level =
  Obs.Registry.reset ();
  let index = Index.build_postings raw in
  List.iter
    (fun term -> ignore (Index.lookup index ~level term))
    [ "risk"; "omim"; "gene"; "secret" ];
  ignore (Index.matching_docs index ~level [ "risk"; "omim" ]);
  ignore (Index.top_k index ~level ~k:2 [ "gene"; "risk"; "secret" ]);
  Obs.Registry.observer_counters ~level

let test_index_leakage () =
  with_obs @@ fun () ->
  List.iter
    (fun level ->
      let a = index_observer_fingerprint (index_corpus ~hidden:false) ~level in
      let b = index_observer_fingerprint (index_corpus ~hidden:true) ~level in
      check
        Alcotest.(list (pair string int))
        (Printf.sprintf "index observer at level %d blind to hidden postings"
           level)
        a b;
      check Alcotest.bool "decode counter present and non-zero" true
        (match List.assoc_opt "index.blocks_decoded" b with
        | Some n -> n > 0
        | None -> false))
    [ 0; 1 ];
  (* Privileged decodes land above the observer: a level-3 sweep over the
     hidden partitions must not disturb what level 1 reads. *)
  Obs.Registry.reset ();
  let index = Index.build_postings (index_corpus ~hidden:true) in
  ignore (Index.lookup index ~level:1 "omim");
  let below = Obs.Registry.observer_counters ~level:1 in
  ignore (Index.lookup index ~level:3 "secret");
  ignore (Index.top_k index ~level:3 ~k:2 [ "risk"; "secret" ]);
  check
    Alcotest.(list (pair string int))
    "level-3 index work invisible at level 1" below
    (Obs.Registry.observer_counters ~level:1)

let () =
  Alcotest.run "obs"
    [
      ( "primitives",
        [
          Alcotest.test_case "counter cells" `Quick test_counter_cells;
          Alcotest.test_case "counter under 4 domains" `Quick
            test_counter_parallel;
          Alcotest.test_case "histogram buckets" `Quick test_histogram;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "trace sinks" `Quick test_trace_sinks;
        ] );
      ( "audit",
        [
          Alcotest.test_case "zoom denial: floor only" `Quick
            test_audit_zoom_denial;
          Alcotest.test_case "query denial: no hidden names" `Quick
            test_audit_query_denial;
        ] );
      ( "leakage",
        [
          Alcotest.test_case "observer view invariant" `Quick
            test_leakage_invariance;
          Alcotest.test_case "levels partition" `Quick test_leakage_partition;
          Alcotest.test_case "index decode counters blind to hidden postings"
            `Quick test_index_leakage;
        ] );
    ]
