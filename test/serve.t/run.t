The serving layer over stdio: one JSON request per line in, one JSON
response per line out. Stats and privilege denials are answered
immediately; queued work is drained in privilege round-robin order
after EOF. Level 9 exceeds the server ceiling of 3 and is denied with
the claimed level echoed as the floor.

  $ cat > reqs.txt <<'EOF'
  > {"v":1,"rid":1,"level":2,"op":"query","entry":"disease-susceptibility","run":0,"queries":["node(~\"risk\")"]}
  > {"v":1,"rid":2,"level":1,"op":"topk","k":3,"keywords":["snp","omim"]}
  > {"v":1,"rid":3,"level":0,"op":"zoom-out","entry":"disease-susceptibility","run":0}
  > {"v":1,"rid":4,"level":0,"op":"stats","prefix":"server."}
  > {"v":1,"rid":5,"level":9,"op":"query","entry":"clinical-trial","run":0,"queries":["node(*)"]}
  > {"v":1,"rid":6,"level":1,"op":"query","entry":"no-such-entry","run":0,"queries":["node(*)"]}
  > EOF
  $ wfpriv serve --stdio --max-level 3 < reqs.txt
  {"v":1,"rid":4,"ok":true,"kind":"counters","counters":[["server.admitted",1],["server.requests",2]]}
  {"v":1,"rid":5,"ok":false,"code":"privilege","retryable":false,"floor":9,"message":"privilege level above server ceiling"}
  {"v":1,"rid":2,"ok":true,"kind":"hits","hits":[{"doc":"disease-susceptibility","score":2.8109302162163288}]}
  {"v":1,"rid":1,"ok":true,"kind":"witnesses","witnesses":[{"holds":true,"nodes":[10,18]}]}
  {"v":1,"rid":3,"ok":true,"kind":"view","prefix":["W1"],"nodes":4}
  {"v":1,"rid":6,"ok":false,"code":"unknown-entry","retryable":false,"message":"unknown entry: no-such-entry"}
  served 6 responses

A malformed frame poisons the connection: the server answers what it
can, reports the corrupt stream once, and stops reading.

  $ printf '{"v":1,"rid":7,"level":0,"op"\n' | wfpriv serve --stdio
  {"v":1,"rid":0,"ok":false,"code":"bad-request","retryable":false,"message":"expected ':', found end of input"}
  served 1 responses

TCP: an ephemeral port is written atomically to --port-file, a client
drives the exchange with `wfpriv call`, and the server exits once
--max-requests responses are served.

  $ wfpriv serve --port 0 --port-file port.txt --max-requests 2 --timeout 30 > serve.log 2>&1 &
  $ for i in $(seq 100); do [ -f port.txt ] && break; sleep 0.1; done
  $ wfpriv call --port $(cat port.txt) \
  >   '{"v":1,"rid":1,"level":1,"op":"topk","k":2,"keywords":["trial"]}' \
  >   '{"v":1,"rid":2,"level":0,"op":"zoom-out","entry":"disease-susceptibility","run":0}'
  {"v":1,"rid":1,"ok":true,"kind":"hits","hits":[{"doc":"clinical-trial","score":1.4054651081081644}]}
  {"v":1,"rid":2,"ok":true,"kind":"view","prefix":["W1"],"nodes":4}
  $ wait
  $ cat serve.log
  served 2 responses

The same exchange over the length-prefixed binary framing: `call
--binary` encodes requests as binary frames; responses decode to the
same JSON lines, so the two framings are interchangeable on the wire.

  $ rm -f port.txt
  $ wfpriv serve --port 0 --port-file port.txt --max-requests 1 --timeout 30 > serve2.log 2>&1 &
  $ for i in $(seq 100); do [ -f port.txt ] && break; sleep 0.1; done
  $ wfpriv call --binary --port $(cat port.txt) \
  >   '{"v":1,"rid":9,"level":1,"op":"topk","k":2,"keywords":["trial"]}'
  {"v":1,"rid":9,"ok":true,"kind":"hits","hits":[{"doc":"clinical-trial","score":1.4054651081081644}]}
  $ wait
  $ cat serve2.log
  served 1 responses
