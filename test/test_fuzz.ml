(* Robustness fuzzing: every [parse_result]-style entry point must
   return [Error _] (never raise, never hang) on arbitrary input, and
   structured decoders must reject shape-violating documents with their
   documented exceptions only. *)

open Wfpriv_serial
open Wfpriv_query
module Synthetic = Wfpriv_workloads.Synthetic
module Rng = Wfpriv_workloads.Rng

let arbitrary_string =
  QCheck.(string_gen_of_size (Gen.int_bound 60) Gen.printable)

let arbitrary_bytes =
  QCheck.(string_gen_of_size (Gen.int_bound 60) (Gen.char_range '\000' '\255'))

(* ------------------------------------------------------------------ *)
(* Json *)

let prop_json_never_raises =
  QCheck.Test.make ~name:"Json.parse_result never raises (printable)" ~count:500
    arbitrary_string (fun s ->
      match Json.parse_result s with Ok _ | Error _ -> true)

let prop_json_never_raises_bytes =
  QCheck.Test.make ~name:"Json.parse_result never raises (bytes)" ~count:500
    arbitrary_bytes (fun s ->
      match Json.parse_result s with Ok _ | Error _ -> true)

let prop_json_mutation =
  (* Mutate one byte of a valid document: must parse or error, never
     raise; if it parses, printing must round-trip. *)
  QCheck.Test.make ~name:"Json survives single-byte mutations" ~count:300
    QCheck.(pair (int_bound 10_000) (pair small_nat (make Gen.(char_range ' ' '~'))))
    (fun (seed, (pos, c)) ->
      let spec = Synthetic.spec (Rng.create seed) Synthetic.default_params in
      let doc = Bytes.of_string (Spec_codec.to_string spec) in
      let pos = pos mod Bytes.length doc in
      Bytes.set doc pos c;
      match Json.parse_result (Bytes.to_string doc) with
      | Error _ -> true
      | Ok v -> Json.equal v (Json.parse (Json.to_string v)))

(* ------------------------------------------------------------------ *)
(* Wfdsl *)

let prop_wfdsl_never_raises =
  QCheck.Test.make ~name:"Wfdsl.parse_result never raises" ~count:500
    arbitrary_string (fun s ->
      match Wfdsl.parse_result s with Ok _ | Error _ -> true)

let prop_wfdsl_keyword_soup =
  (* Strings made of the language's own tokens are the nastiest input. *)
  let token =
    QCheck.Gen.oneofl
      [ "workflow"; "module"; "input"; "output"; "root"; "expands"; "keywords";
        "M1"; "I"; "O"; "->"; "{"; "}"; "["; "]"; ";"; ","; "\"x\""; "w" ]
  in
  QCheck.Test.make ~name:"Wfdsl survives token soup" ~count:500
    (QCheck.make QCheck.Gen.(map (String.concat " ") (list_size (int_bound 25) token)))
    (fun s -> match Wfdsl.parse_result s with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Query parser *)

let prop_query_parser_never_raises =
  QCheck.Test.make ~name:"Query_parser.parse_result never raises" ~count:500
    arbitrary_string (fun s ->
      match Query_parser.parse_result s with Ok _ | Error _ -> true)

let prop_query_parser_token_soup =
  let token =
    QCheck.Gen.oneofl
      [ "node"; "edge"; "before"; "carries"; "and"; "or"; "not"; "("; ")";
        "*"; "~"; "\"x\""; ","; "atomic"; "composite"; "M3" ]
  in
  QCheck.Test.make ~name:"Query_parser survives token soup" ~count:500
    (QCheck.make QCheck.Gen.(map (String.concat " ") (list_size (int_bound 20) token)))
    (fun s -> match Query_parser.parse_result s with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Structured decoders: shape violations raise Invalid_argument (or the
   documented validation exceptions), nothing else. *)

let acceptable_decode_failure f =
  match f () with
  | _ -> true
  | exception Invalid_argument _ -> true
  | exception Wfpriv_workflow.Spec.Invalid _ -> true
  | exception Not_found -> false
  | exception _ -> false

let prop_spec_decode_contained =
  (* Decoding random JSON values must either work or raise
     Invalid_argument / Spec.Invalid. *)
  QCheck.Test.make ~name:"Spec_codec.decode fails cleanly on random JSON"
    ~count:300 arbitrary_string (fun s ->
      match Json.parse_result ("{\"root\": \"w\", \"x\": \"" ^ s ^ "\"}") with
      | Error _ -> true
      | Ok j -> acceptable_decode_failure (fun () -> Spec_codec.decode j))

let prop_exec_decode_contained =
  QCheck.Test.make ~name:"Exec_codec.decode fails cleanly on truncated docs"
    ~count:100 (QCheck.int_bound 10_000) (fun seed ->
      let rng = Rng.create seed in
      let _, exec = Synthetic.run rng Synthetic.default_params in
      let doc = Exec_codec.to_string exec in
      (* Truncate at a random point, then close the braces crudely. *)
      let cut = 1 + Rng.int rng (String.length doc - 1) in
      let mangled = String.sub doc 0 cut ^ "}" in
      match Json.parse_result mangled with
      | Error _ -> true
      | Ok j -> acceptable_decode_failure (fun () -> Exec_codec.decode j))

(* ------------------------------------------------------------------ *)
(* Executor determinism under repeated runs *)

let prop_executor_deterministic =
  QCheck.Test.make ~name:"executor is deterministic across repeated runs"
    ~count:30 (QCheck.int_bound 10_000) (fun seed ->
      let rng1 = Rng.create seed and rng2 = Rng.create seed in
      let _, e1 = Synthetic.run rng1 Synthetic.default_params in
      let _, e2 = Synthetic.run rng2 Synthetic.default_params in
      Wfpriv_graph.Digraph.equal
        (Wfpriv_workflow.Execution.graph e1)
        (Wfpriv_workflow.Execution.graph e2)
      && Wfpriv_workflow.Execution.nb_items e1
         = Wfpriv_workflow.Execution.nb_items e2)

let () =
  Alcotest.run "fuzz"
    (List.map
       (fun (name, tests) -> (name, List.map QCheck_alcotest.to_alcotest tests))
       [
         ( "json",
           [ prop_json_never_raises; prop_json_never_raises_bytes; prop_json_mutation ] );
         ("wfdsl", [ prop_wfdsl_never_raises; prop_wfdsl_keyword_soup ]);
         ( "query_parser",
           [ prop_query_parser_never_raises; prop_query_parser_token_soup ] );
         ( "decoders",
           [ prop_spec_decode_contained; prop_exec_decode_contained ] );
         ("executor", [ prop_executor_deterministic ]);
       ])
