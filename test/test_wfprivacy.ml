(* Tests for Workflow_privacy: possible-worlds Γ with public modules —
   the companion paper's "hiding can be undone by known modules"
   phenomenon. *)

open Wfpriv_workflow
open Wfpriv_privacy

let check = Alcotest.check

let int_fun ~name_in ~name_out ~dom f =
  Module_privacy.of_function
    ~inputs:[ Module_privacy.int_attr name_in dom ]
    ~outputs:[ Module_privacy.int_attr name_out dom ]
    (fun x ->
      match x.(0) with
      | Data_value.Int n -> [| Data_value.Int (f n) |]
      | _ -> assert false)

let wiring id table vis =
  { Workflow_privacy.w_id = id; w_table = table; w_visibility = vis }

(* s --m1(identity)--> t --m2(identity)--> z over a binary domain. *)
let chain m2_vis =
  Workflow_privacy.make ~t_sources:[ "s" ]
    [
      wiring (Ids.m 1)
        (int_fun ~name_in:"s" ~name_out:"t" ~dom:2 Fun.id)
        Workflow_privacy.Private;
      wiring (Ids.m 2) (int_fun ~name_in:"t" ~name_out:"z" ~dom:2 Fun.id) m2_vis;
    ]

let gamma_of pipeline hidden m =
  List.assoc m (Workflow_privacy.gamma pipeline ~hidden)

let test_public_module_undoes_hiding () =
  (* Standalone analysis says hiding t gives m1 Γ=2 ... *)
  let p = chain Workflow_privacy.Public in
  check Alcotest.int "standalone Γ" 2
    (List.assoc (Ids.m 1) (Workflow_privacy.standalone_gamma p ~hidden:[ "t" ]));
  (* ... but the public identity m2 reveals t through z: Γ collapses. *)
  check Alcotest.int "workflow Γ with public downstream" 1
    (gamma_of p [ "t" ] (Ids.m 1));
  check Alcotest.bool "unsafe at Γ=2" false
    (Workflow_privacy.is_safe p ~hidden:[ "t" ] ~gamma:2)

let test_private_downstream_preserves_hiding () =
  let p = chain Workflow_privacy.Private in
  check Alcotest.int "workflow Γ with private downstream" 2
    (gamma_of p [ "t" ] (Ids.m 1));
  (* The downstream module's own privacy: its input and output are what
     they are; with t hidden, its Γ is 2 as well (bijection worlds). *)
  check Alcotest.int "m2's Γ" 2 (gamma_of p [ "t" ] (Ids.m 2))

let test_hiding_the_revealing_output_restores_gamma () =
  let p = chain Workflow_privacy.Public in
  (* Hiding z as well removes the leak even though m2 stays public. *)
  check Alcotest.int "hide t and z" 2 (gamma_of p [ "t"; "z" ] (Ids.m 1))

let test_lossy_public_module_leaks_partially () =
  (* s in 0..3; m1 = +1 mod 4 (private); m2 public parity: z = t mod 2.
     z reveals t's parity: 2 candidates remain instead of 4. *)
  let m1 =
    int_fun ~name_in:"s" ~name_out:"t" ~dom:4 (fun n -> (n + 1) mod 4)
  in
  let m2 =
    Module_privacy.of_function
      ~inputs:[ Module_privacy.int_attr "t" 4 ]
      ~outputs:[ Module_privacy.int_attr "z" 2 ]
      (fun x ->
        match x.(0) with
        | Data_value.Int n -> [| Data_value.Int (n mod 2) |]
        | _ -> assert false)
  in
  let p =
    Workflow_privacy.make ~t_sources:[ "s" ]
      [
        wiring (Ids.m 1) m1 Workflow_privacy.Private;
        wiring (Ids.m 2) m2 Workflow_privacy.Public;
      ]
  in
  check Alcotest.int "standalone claims 4" 4
    (List.assoc (Ids.m 1) (Workflow_privacy.standalone_gamma p ~hidden:[ "t" ]));
  check Alcotest.int "parity leak leaves 2" 2 (gamma_of p [ "t" ] (Ids.m 1))

let test_runs_and_accessors () =
  let p = chain Workflow_privacy.Public in
  check
    Alcotest.(list string)
    "data names" [ "s"; "t"; "z" ]
    (Workflow_privacy.data_names p);
  check Alcotest.int "two runs" 2 (List.length (Workflow_privacy.runs p));
  check Alcotest.int "one private module of 4 candidates" 4
    (Workflow_privacy.nb_candidate_worlds p);
  check Alcotest.int "source domain size" 2
    (List.length (List.assoc "s" (Workflow_privacy.sources p)))

let test_optimal_workflow_hiding () =
  (* With a public invertible downstream, hiding {t} alone is NOT safe:
     the optimum must also conceal z (or s). Standalone analysis would
     have accepted {t}. *)
  let p = chain Workflow_privacy.Public in
  (match Workflow_privacy.optimal_hiding p ~gamma:2 with
  | Some hidden ->
      check Alcotest.bool "hiding set is workflow-safe" true
        (Workflow_privacy.is_safe p ~hidden ~gamma:2);
      check Alcotest.bool "singleton {t} insufficient" true
        (hidden <> [ "t" ]);
      check Alcotest.int "needs two names" 2 (List.length hidden)
  | None -> Alcotest.fail "achievable: hide t and z");
  (* With a private downstream a single name suffices. *)
  let q = chain Workflow_privacy.Private in
  match Workflow_privacy.optimal_hiding q ~gamma:2 with
  | Some hidden -> check Alcotest.int "one name suffices" 1 (List.length hidden)
  | None -> Alcotest.fail "achievable"

let expect_ill_formed name f =
  match f () with
  | exception Workflow_privacy.Ill_formed _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Ill_formed")

let test_validation () =
  let id2 = int_fun ~name_in:"s" ~name_out:"t" ~dom:2 Fun.id in
  expect_ill_formed "duplicate producer" (fun () ->
      Workflow_privacy.make ~t_sources:[ "s" ]
        [
          wiring (Ids.m 1) id2 Workflow_privacy.Private;
          wiring (Ids.m 2) id2 Workflow_privacy.Private;
        ]);
  expect_ill_formed "missing producer" (fun () ->
      Workflow_privacy.make ~t_sources:[]
        [ wiring (Ids.m 1) id2 Workflow_privacy.Private ]);
  expect_ill_formed "cycle" (fun () ->
      Workflow_privacy.make ~t_sources:[]
        [
          wiring (Ids.m 1)
            (int_fun ~name_in:"a" ~name_out:"b" ~dom:2 Fun.id)
            Workflow_privacy.Private;
          wiring (Ids.m 2)
            (int_fun ~name_in:"b" ~name_out:"a" ~dom:2 Fun.id)
            Workflow_privacy.Private;
        ]);
  expect_ill_formed "conflicting domains" (fun () ->
      Workflow_privacy.make ~t_sources:[ "s" ]
        [
          wiring (Ids.m 1) id2 Workflow_privacy.Private;
          wiring (Ids.m 2)
            (int_fun ~name_in:"t" ~name_out:"u" ~dom:3 (fun n -> n mod 3))
            Workflow_privacy.Private;
        ]);
  expect_ill_formed "unconsumed source" (fun () ->
      Workflow_privacy.make ~t_sources:[ "s"; "ghost" ]
        [ wiring (Ids.m 1) id2 Workflow_privacy.Private ])

let test_of_spec_integration () =
  (* A tiny real specification: I -> M1 (private) -> M2 (public) -> O,
     with integer semantics over domain {0,1}. *)
  let m1 = Ids.m 1 and m2 = Ids.m 2 in
  let modules =
    [
      Module_def.input;
      Module_def.output;
      Module_def.make ~id:m1 ~name:"Proprietary scorer" Module_def.Atomic;
      Module_def.make ~id:m2 ~name:"Public normaliser" Module_def.Atomic;
    ]
  in
  let edge src dst data = { Spec.src; dst; data } in
  let spec =
    Spec.create ~root:"P" modules
      [
        {
          Spec.wf_id = "P";
          title = "pipeline";
          members = [ Ids.input_module; Ids.output_module; m1; m2 ];
          edges =
            [
              edge Ids.input_module m1 [ "s" ];
              edge m1 m2 [ "t" ];
              edge m2 Ids.output_module [ "z" ];
            ];
        };
      ]
  in
  let semantics mid inputs =
    let v = match List.assoc_opt "s" inputs with
      | Some (Data_value.Int n) -> n
      | _ -> (
          match List.assoc_opt "t" inputs with
          | Some (Data_value.Int n) -> n
          | _ -> 0)
    in
    if mid = m1 then [ ("t", Data_value.Int (1 - v)) ]
    else [ ("z", Data_value.Int v) ]
  in
  let dom = [ Data_value.Int 0; Data_value.Int 1 ] in
  let domains = [ ("s", dom); ("t", dom); ("z", dom) ] in
  let p =
    Workflow_privacy.of_spec spec semantics ~domains ~private_modules:[ m1 ]
  in
  check
    Alcotest.(list string)
    "sources detected" [ "s" ]
    (List.map fst (Workflow_privacy.sources p));
  (* The public normaliser is the identity: hiding t alone is useless. *)
  check Alcotest.int "public downstream leaks" 1 (gamma_of p [ "t" ] m1);
  check Alcotest.int "hide t and z" 2 (gamma_of p [ "t"; "z" ] m1)

let prop_workflow_gamma_never_exceeds_standalone =
  (* The workflow adversary knows strictly more (public functions and
     cross-module consistency), so workflow Γ ≤ standalone Γ. *)
  QCheck.Test.make
    ~name:"workflow Γ ≤ standalone Γ" ~count:25
    (QCheck.pair (QCheck.int_bound 10_000) QCheck.bool)
    (fun (seed, downstream_public) ->
      let rng = Wfpriv_workloads.Rng.create seed in
      let f1 =
        let shift = Wfpriv_workloads.Rng.int rng 2 in
        int_fun ~name_in:"s" ~name_out:"t" ~dom:2 (fun n -> (n + shift) mod 2)
      in
      let f2 =
        let mask = Wfpriv_workloads.Rng.int rng 2 in
        int_fun ~name_in:"t" ~name_out:"z" ~dom:2 (fun n -> n lxor mask)
      in
      let p =
        Workflow_privacy.make ~t_sources:[ "s" ]
          [
            wiring (Ids.m 1) f1 Workflow_privacy.Private;
            wiring (Ids.m 2) f2
              (if downstream_public then Workflow_privacy.Public
               else Workflow_privacy.Private);
          ]
      in
      let hidden = [ "t" ] in
      let wf = Workflow_privacy.gamma p ~hidden in
      let standalone = Workflow_privacy.standalone_gamma p ~hidden in
      List.for_all
        (fun (m, g) -> g <= List.assoc m standalone)
        wf)

let () =
  Alcotest.run "wfprivacy"
    [
      ( "possible_worlds",
        [
          Alcotest.test_case "public module undoes hiding" `Quick
            test_public_module_undoes_hiding;
          Alcotest.test_case "private downstream preserves hiding" `Quick
            test_private_downstream_preserves_hiding;
          Alcotest.test_case "hiding the leak restores Γ" `Quick
            test_hiding_the_revealing_output_restores_gamma;
          Alcotest.test_case "lossy public module leaks partially" `Quick
            test_lossy_public_module_leaks_partially;
          Alcotest.test_case "runs and accessors" `Quick test_runs_and_accessors;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "optimal workflow hiding" `Quick
            test_optimal_workflow_hiding;
          Alcotest.test_case "of_spec integration" `Quick
            test_of_spec_integration;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_workflow_gamma_never_exceeds_standalone ]
      );
    ]
