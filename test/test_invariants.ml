(* System-level invariants across workloads: properties that tie several
   subsystems together (access control × views × search × evaluation),
   checked on the disease, clinical and synthetic workloads. *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Disease = Wfpriv_workloads.Disease
module Clinical = Wfpriv_workloads.Clinical
module Synthetic = Wfpriv_workloads.Synthetic
module Rng = Wfpriv_workloads.Rng

let check = Alcotest.check

let synthetic_privilege spec rng =
  Privilege.make spec
    (Spec.workflow_ids spec
    |> List.filter (fun w -> w <> Spec.root spec)
    |> List.map (fun w -> (w, Rng.int rng 4)))

(* ------------------------------------------------------------------ *)

let prop_access_views_nest =
  QCheck.Test.make ~name:"higher levels see refinements of lower levels"
    ~count:25 (QCheck.int_bound 100_000) (fun seed ->
      let rng = Rng.create seed in
      let spec = Synthetic.spec rng Synthetic.default_params in
      let privilege = synthetic_privilege spec rng in
      let rec nested = function
        | a :: (b :: _ as rest) ->
            View.refines b a && nested rest
        | _ -> true
      in
      nested (List.map (Privilege.access_view privilege) [ 0; 1; 2; 3; 4 ]))

let prop_items_partition =
  QCheck.Test.make
    ~name:"visible and hidden items partition every view's items" ~count:20
    (QCheck.int_bound 100_000) (fun seed ->
      let rng = Rng.create seed in
      let spec, exec = Synthetic.run rng Synthetic.default_params in
      let hierarchy = Hierarchy.of_spec spec in
      let prefixes = Hierarchy.all_prefixes hierarchy in
      let p = List.nth prefixes (Rng.int rng (List.length prefixes)) in
      let v = Exec_view.of_prefix exec p in
      let visible = Exec_view.visible_items v in
      let hidden = Exec_view.hidden_items v in
      let all =
        List.map (fun (it : Execution.item) -> it.Execution.data_id)
          (Execution.items exec)
      in
      List.sort compare (visible @ hidden) = all
      && List.for_all (fun d -> not (List.mem d hidden)) visible)

let prop_search_respects_levels =
  QCheck.Test.make
    ~name:"keyword answers never expose modules above the caller's level"
    ~count:20
    (QCheck.pair (QCheck.int_bound 100_000) (QCheck.int_bound 3))
    (fun (seed, level) ->
      let rng = Rng.create seed in
      let spec = Synthetic.spec rng Synthetic.default_params in
      let privilege = synthetic_privilege spec rng in
      let repo = Repository.create () in
      Repository.add repo ~name:"wf"
        ~policy:
          (Policy.make
             ~expand_levels:
               (List.map
                  (fun w -> (w, Privilege.required_level privilege w))
                  (Spec.workflow_ids spec))
             spec)
        ();
      let term = List.hd Synthetic.default_params.Synthetic.keyword_vocabulary in
      List.for_all
        (fun h ->
          List.for_all
            (fun m -> Privilege.min_level_to_see privilege m <= level)
            (View.visible_modules h.Repository.answer.Keyword.view))
        (Repository.keyword_search repo ~level [ term ]))

let prop_minimal_never_larger_than_specific =
  QCheck.Test.make
    ~name:"`Minimal keyword answers expand no more than `Specific" ~count:25
    (QCheck.int_bound 100_000) (fun seed ->
      let rng = Rng.create seed in
      let spec = Synthetic.spec rng Synthetic.default_params in
      let vocab = Synthetic.default_params.Synthetic.keyword_vocabulary in
      let kw = List.nth vocab (Rng.int rng (List.length vocab)) in
      match
        ( Keyword.search ~strategy:`Minimal spec [ kw ],
          Keyword.search ~strategy:`Specific spec [ kw ] )
      with
      | None, None -> true
      | Some a, Some b ->
          List.length (View.prefix a.Keyword.view)
          <= List.length (View.prefix b.Keyword.view)
      | _ -> false)

let prop_secure_eval_agree_clinical =
  QCheck.Test.make ~name:"secure evaluation strategies agree on clinical"
    ~count:12 (QCheck.int_bound 3) (fun level ->
      let exec = Clinical.run () in
      let privilege = Policy.privilege Clinical.policy in
      let q = Query_ast.Before (Query_ast.Atomic_only, Query_ast.Atomic_only) in
      Secure_eval.agree
        (Secure_eval.on_the_fly privilege ~level exec q)
        (Secure_eval.zoom_out privilege ~level exec q))

let prop_masked_below_level =
  QCheck.Test.make
    ~name:"projected values are masked exactly below the required level"
    ~count:20 (QCheck.int_bound 100_000) (fun seed ->
      let rng = Rng.create seed in
      let exec = Disease.run () in
      let names =
        List.sort_uniq compare
          (List.map (fun (it : Execution.item) -> it.Execution.name)
             (Execution.items exec))
      in
      let assignment = List.map (fun n -> (n, Rng.int rng 4)) names in
      let classification = Data_privacy.make assignment in
      List.for_all
        (fun level ->
          let proj = Data_privacy.project classification level exec in
          List.for_all
            (fun (it : Execution.item) ->
              let required = List.assoc it.Execution.name assignment in
              Data_privacy.is_masked proj it.Execution.data_id
              = (required > level))
            (Execution.items exec))
        [ 0; 1; 2; 3 ])

let prop_planner_on_clinical =
  QCheck.Test.make ~name:"planner hides targets on the clinical analysis graph"
    ~count:10 (QCheck.float_range 0.0 1.0) (fun alpha ->
      let g = Spec.graph_of Clinical.spec "C3" in
      let facts =
        Wfpriv_graph.Reachability.closure_facts
          (Wfpriv_graph.Reachability.closure g)
      in
      let targets = List.filteri (fun i _ -> i mod 4 = 0) facts in
      targets = []
      ||
      let p = Planner.plan ~alpha g targets in
      Planner.verify g p)

let prop_view_meet_commutes =
  QCheck.Test.make ~name:"View.meet is commutative and coarser than both"
    ~count:20
    (QCheck.pair (QCheck.int_bound 5) (QCheck.int_bound 5))
    (fun (i, j) ->
      let spec = Disease.spec in
      let prefixes = Hierarchy.all_prefixes (Hierarchy.of_spec spec) in
      let a = View.of_prefix spec (List.nth prefixes (i mod 6)) in
      let b = View.of_prefix spec (List.nth prefixes (j mod 6)) in
      let m1 = View.meet a b and m2 = View.meet b a in
      View.equal m1 m2 && View.refines a m1 && View.refines b m1)

(* ------------------------------------------------------------------ *)
(* A couple of directed cross-subsystem checks. *)

let test_clinical_store_roundtrip_behaviour () =
  let repo = Repository.create () in
  Repository.add repo ~name:"clinical" ~policy:Clinical.policy
    ~executions:[ Clinical.run () ] ();
  let loaded =
    Wfpriv_store.Repo_store.of_string (Wfpriv_store.Repo_store.to_string repo)
  in
  let q = Query_parser.parse "before(~\"Split Arms\", ~\"Compare\")" in
  List.iter
    (fun level ->
      let a = Repository.structural_query repo ~level "clinical" q in
      let b = Repository.structural_query loaded ~level "clinical" q in
      check Alcotest.bool
        (Printf.sprintf "same answers at level %d" level)
        true
        (List.map (fun w -> w.Query_eval.holds) a
        = List.map (fun w -> w.Query_eval.holds) b))
    [ 0; 1; 2; 3 ]

let test_recommended_masks_defeat_adversary () =
  (* End-to-end: Spec_tables recommends masks for M3; install them; the
     adversary watching masked executions pins nothing about M3. *)
  let domains =
    [
      ("snps", [ Data_value.Str "rs1"; Data_value.Str "rs2" ]);
      ("ethnicity", [ Data_value.Str "a"; Data_value.Str "b" ]);
    ]
  in
  match
    Spec_tables.recommend_masks Disease.spec Disease.semantics ~domains
      ~private_modules:[ Disease.m3 ] ~gamma:2 ~level:2
  with
  | None -> Alcotest.fail "Γ=2 achievable"
  | Some masks ->
      let table =
        Spec_tables.tabulate Disease.spec Disease.semantics ~domains Disease.m3
      in
      let hidden = List.concat_map (fun (_, names, _) -> names) masks in
      let hidden =
        List.filter (fun h -> List.mem h (Module_privacy.attr_names table)) hidden
      in
      let inputs = List.map fst (Module_privacy.rows table) in
      let a = Audit.assess table (Audit.observe table ~hidden inputs) in
      check Alcotest.int "nothing pinned" 0 a.Audit.pinned;
      check Alcotest.bool "empirical Γ >= 2" true (a.Audit.min_candidates >= 2)

let () =
  Alcotest.run "invariants"
    [
      ( "cross-subsystem",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_access_views_nest;
            prop_items_partition;
            prop_search_respects_levels;
            prop_minimal_never_larger_than_specific;
            prop_secure_eval_agree_clinical;
            prop_masked_below_level;
            prop_planner_on_clinical;
            prop_view_meet_commutes;
          ]
        @ [
            Alcotest.test_case "clinical store roundtrip behaviour" `Quick
              test_clinical_store_roundtrip_behaviour;
            Alcotest.test_case "recommended masks defeat the adversary" `Quick
              test_recommended_masks_defeat_adversary;
          ] );
    ]
