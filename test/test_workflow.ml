(* Tests for the workflow model: Module_def, Spec validation, Hierarchy,
   View. The disease-susceptibility spec (paper Fig. 1/3) is the main
   fixture. *)

open Wfpriv_workflow
module Disease = Wfpriv_workloads.Disease

let check = Alcotest.check
let strl = Alcotest.(list string)
let intl = Alcotest.(list int)
let spec = Disease.spec

(* ------------------------------------------------------------------ *)
(* Module_def *)

let test_module_matching () =
  let md =
    Module_def.make ~keywords:[ "OMIM" ] ~id:(Ids.m 6) ~name:"Query OMIM"
      Module_def.Atomic
  in
  check Alcotest.bool "substring of name" true (Module_def.matches md "query");
  check Alcotest.bool "case-insensitive" true (Module_def.matches md "omim");
  check Alcotest.bool "keyword hit" true (Module_def.matches md "OMI");
  check Alcotest.bool "miss" false (Module_def.matches md "pubmed");
  check strl "terms" [ "omim"; "query" ] (Module_def.terms md)

let test_ids () =
  check Alcotest.string "M numbering" "M1" (Ids.module_name (Ids.m 1));
  check Alcotest.string "I" "I" (Ids.module_name Ids.input_module);
  check Alcotest.string "O" "O" (Ids.module_name Ids.output_module);
  check Alcotest.string "data" "d10" (Ids.data_name 10);
  check Alcotest.string "process" "S3" (Ids.process_name 3);
  Alcotest.check_raises "m 0 invalid"
    (Invalid_argument "Ids.m: module index must be >= 1") (fun () ->
      ignore (Ids.m 0))

(* ------------------------------------------------------------------ *)
(* Spec validation *)

let simple_modules () =
  [
    Module_def.input;
    Module_def.output;
    Module_def.make ~id:(Ids.m 1) ~name:"A" Module_def.Atomic;
    Module_def.make ~id:(Ids.m 2) ~name:"B" Module_def.Atomic;
  ]

let edge src dst data = { Spec.src; dst; data }

let simple_workflow ?(edges = []) () =
  {
    Spec.wf_id = "W";
    title = "simple";
    members = [ Ids.input_module; Ids.output_module; Ids.m 1; Ids.m 2 ];
    edges;
  }

let expect_invalid name f =
  match f () with
  | exception Spec.Invalid _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Spec.Invalid")

let test_spec_valid () =
  let s =
    Spec.create ~root:"W" (simple_modules ())
      [
        simple_workflow
          ~edges:
            [
              edge Ids.input_module (Ids.m 1) [ "x" ];
              edge (Ids.m 1) (Ids.m 2) [ "y" ];
              edge (Ids.m 2) Ids.output_module [ "z" ];
            ]
          ();
      ]
  in
  check Alcotest.int "modules" 4 (Spec.nb_modules s);
  check Alcotest.int "workflows" 1 (Spec.nb_workflows s);
  check intl "entries" [ Ids.input_module ] (Spec.entries s "W");
  check intl "exits" [ Ids.output_module ] (Spec.exits s "W");
  check Alcotest.string "owner" "W" (Spec.owner s (Ids.m 1))

let test_spec_rejects_cycle () =
  expect_invalid "dataflow cycle" (fun () ->
      Spec.create ~root:"W" (simple_modules ())
        [
          simple_workflow
            ~edges:
              [ edge (Ids.m 1) (Ids.m 2) [ "x" ]; edge (Ids.m 2) (Ids.m 1) [ "y" ] ]
            ();
        ])

let test_spec_rejects_self_loop () =
  expect_invalid "self loop" (fun () ->
      Spec.create ~root:"W" (simple_modules ())
        [ simple_workflow ~edges:[ edge (Ids.m 1) (Ids.m 1) [ "x" ] ] () ])

let test_spec_rejects_empty_data () =
  expect_invalid "empty data" (fun () ->
      Spec.create ~root:"W" (simple_modules ())
        [ simple_workflow ~edges:[ edge (Ids.m 1) (Ids.m 2) [] ] () ])

let test_spec_rejects_double_membership () =
  expect_invalid "module in two workflows" (fun () ->
      Spec.create ~root:"W"
        (simple_modules ()
        @ [ Module_def.make ~id:(Ids.m 3) ~name:"C" (Module_def.Composite "W2") ])
        [
          {
            (simple_workflow ()) with
            members =
              [ Ids.input_module; Ids.output_module; Ids.m 1; Ids.m 2; Ids.m 3 ];
          };
          { Spec.wf_id = "W2"; title = ""; members = [ Ids.m 1 ]; edges = [] };
        ])

let test_spec_rejects_orphan_workflow () =
  expect_invalid "workflow not defined by any composite" (fun () ->
      Spec.create ~root:"W"
        (simple_modules ()
        @ [ Module_def.make ~id:(Ids.m 3) ~name:"C" Module_def.Atomic ])
        [
          simple_workflow ();
          { Spec.wf_id = "W2"; title = ""; members = [ Ids.m 3 ]; edges = [] };
        ])

let test_spec_rejects_io_in_subworkflow () =
  expect_invalid "I/O outside root" (fun () ->
      Spec.create ~root:"W"
        [
          Module_def.input;
          Module_def.output;
          Module_def.make ~id:(Ids.m 1) ~name:"C" (Module_def.Composite "W2");
        ]
        [
          {
            Spec.wf_id = "W";
            title = "";
            members = [ Ids.output_module; Ids.m 1 ];
            edges = [];
          };
          {
            Spec.wf_id = "W2";
            title = "";
            members = [ Ids.input_module ];
            edges = [];
          };
        ])

let test_spec_rejects_unknown_expansion () =
  expect_invalid "expansion to unknown workflow" (fun () ->
      Spec.create ~root:"W"
        (simple_modules ()
        @ [ Module_def.make ~id:(Ids.m 3) ~name:"C" (Module_def.Composite "W9") ])
        [
          {
            (simple_workflow ()) with
            members =
              [ Ids.input_module; Ids.output_module; Ids.m 1; Ids.m 2; Ids.m 3 ];
          };
        ])

(* ------------------------------------------------------------------ *)
(* Disease spec shape (paper Fig. 1) *)

let test_disease_shape () =
  check Alcotest.int "17 modules (I, O, M1..M15)" 17 (Spec.nb_modules spec);
  check Alcotest.int "4 workflows" 4 (Spec.nb_workflows spec);
  check strl "workflow ids" [ "W1"; "W2"; "W3"; "W4" ] (Spec.workflow_ids spec);
  check Alcotest.string "root" "W1" (Spec.root spec);
  check intl "composites" [ Disease.m1; Disease.m2; Disease.m4 ]
    (Spec.composite_modules spec);
  check (Alcotest.option intl) "W2 defined by M1"
    (Some [ Disease.m1 ])
    (Option.map (fun m -> [ m ]) (Spec.defined_by spec "W2"));
  check intl "W2 entries" [ Disease.m3 ] (Spec.entries spec "W2");
  check intl "W2 exits" [ Disease.m4 ] (Spec.exits spec "W2");
  check intl "W4 entries" [ Disease.m5 ] (Spec.entries spec "W4");
  check intl "W4 exits" [ Disease.m8 ] (Spec.exits spec "W4");
  check intl "W3 entries" [ Disease.m9 ] (Spec.entries spec "W3");
  check intl "W3 exits" [ Disease.m15 ] (Spec.exits spec "W3")

(* ------------------------------------------------------------------ *)
(* Hierarchy (paper Fig. 3) *)

let hierarchy = Hierarchy.of_spec spec

let test_hierarchy_tree () =
  check Alcotest.string "root" "W1" (Hierarchy.root hierarchy);
  check strl "children of W1" [ "W2"; "W3" ] (Hierarchy.children hierarchy "W1");
  check strl "children of W2" [ "W4" ] (Hierarchy.children hierarchy "W2");
  check (Alcotest.option Alcotest.string) "parent of W4" (Some "W2")
    (Hierarchy.parent hierarchy "W4");
  check strl "ancestors of W4" [ "W1"; "W2"; "W4" ]
    (Hierarchy.ancestors hierarchy "W4");
  check Alcotest.int "depth W4" 2 (Hierarchy.depth hierarchy "W4");
  check Alcotest.int "height" 2 (Hierarchy.height hierarchy);
  check strl "descendants of W2" [ "W2"; "W4" ]
    (Hierarchy.descendants hierarchy "W2")

let test_hierarchy_note () =
  (* The paper's prose says "W3 is a subworkflow of W2", but its own
     Fig. 1 places M2 (defined by W3) in W1, so the τ-tree is
     W1 → {W2, W3}, W2 → W4 — which Fig. 3 depicts. We follow the figure;
     here we pin the invariant that τ-edges form a tree. *)
  List.iter
    (fun w ->
      if w <> "W1" then
        check Alcotest.bool
          (w ^ " has a parent")
          true
          (Hierarchy.parent hierarchy w <> None))
    (Hierarchy.workflows hierarchy)

let test_hierarchy_prefixes () =
  check Alcotest.bool "W1 is a prefix" true (Hierarchy.is_prefix hierarchy [ "W1" ]);
  check Alcotest.bool "W1,W2 is a prefix" true
    (Hierarchy.is_prefix hierarchy [ "W1"; "W2" ]);
  check Alcotest.bool "W1,W4 is not (skips W2)" false
    (Hierarchy.is_prefix hierarchy [ "W1"; "W4" ]);
  check Alcotest.bool "missing root" false (Hierarchy.is_prefix hierarchy [ "W2" ]);
  let all = Hierarchy.all_prefixes hierarchy in
  check Alcotest.int "prefix count" (Hierarchy.nb_prefixes hierarchy)
    (List.length all);
  check Alcotest.int "6 prefixes for Fig. 3's tree" 6 (List.length all);
  check
    Alcotest.(list strl)
    "enumeration"
    [
      [ "W1" ];
      [ "W1"; "W2" ];
      [ "W1"; "W3" ];
      [ "W1"; "W2"; "W3" ];
      [ "W1"; "W2"; "W4" ];
      [ "W1"; "W2"; "W3"; "W4" ];
    ]
    all

let test_module_path () =
  check strl "path of M5" [ "W1"; "W2"; "W4" ]
    (Hierarchy.module_path spec hierarchy Disease.m5);
  check strl "path of M1" [ "W1" ] (Hierarchy.module_path spec hierarchy Disease.m1)

(* ------------------------------------------------------------------ *)
(* Views (paper Sec. 2) *)

let test_view_coarsest () =
  let v = View.coarsest spec in
  check strl "prefix" [ "W1" ] (View.prefix v);
  check intl "visible"
    [ Ids.input_module; Ids.output_module; Disease.m1; Disease.m2 ]
    (View.visible_modules v);
  check strl "I->M1 data" [ "ethnicity"; "snps" ]
    (List.sort compare (View.edge_data v Ids.input_module Disease.m1))

let test_view_w1_w2 () =
  (* The paper's example: prefix {W1, W2} replaces M1 by W2's contents. *)
  let v = View.of_prefix spec [ "W1"; "W2" ] in
  check intl "visible"
    [ Ids.input_module; Ids.output_module; Disease.m2; Disease.m3; Disease.m4 ]
    (View.visible_modules v);
  let g = View.graph v in
  check Alcotest.bool "I -> M3" true (Wfpriv_graph.Digraph.mem_edge g Ids.input_module Disease.m3);
  check Alcotest.bool "M4 -> M2" true (Wfpriv_graph.Digraph.mem_edge g Disease.m4 Disease.m2);
  check strl "M4 -> M2 carries disorders" [ "disorders" ]
    (View.edge_data v Disease.m4 Disease.m2)

let test_view_full_expansion () =
  (* "the full expansion ... yields a workflow with module names I, O, M3,
     and M5−M15 and whose edges include one from M3 to M5 and another from
     M8 to M9" (paper Sec. 2). *)
  let v = View.full spec in
  let visible = View.visible_modules v in
  let expected =
    [ Ids.input_module; Ids.output_module; Disease.m3 ]
    @ [
        Disease.m5; Disease.m6; Disease.m7; Disease.m8; Disease.m9; Disease.m10;
        Disease.m11; Disease.m12; Disease.m13; Disease.m14; Disease.m15;
      ]
  in
  check intl "visible modules" (List.sort compare expected) visible;
  let g = View.graph v in
  check Alcotest.bool "edge M3 -> M5" true
    (Wfpriv_graph.Digraph.mem_edge g Disease.m3 Disease.m5);
  check Alcotest.bool "edge M8 -> M9" true
    (Wfpriv_graph.Digraph.mem_edge g Disease.m8 Disease.m9)

let test_view_representative () =
  let v = View.coarsest spec in
  check Alcotest.int "M5 represented by M1" Disease.m1
    (View.representative v Disease.m5);
  check Alcotest.int "M9 represented by M2" Disease.m2
    (View.representative v Disease.m9);
  check Alcotest.int "visible is itself" Disease.m1
    (View.representative v Disease.m1);
  let v2 = View.of_prefix spec [ "W1"; "W2" ] in
  check Alcotest.int "M5 represented by M4 under {W1,W2}" Disease.m4
    (View.representative v2 Disease.m5)

let test_view_zoom () =
  let v = View.coarsest spec in
  (match View.zoom_in v Disease.m1 with
  | Some v' -> check strl "zoomed prefix" [ "W1"; "W2" ] (View.prefix v')
  | None -> Alcotest.fail "zoom_in on visible composite failed");
  check Alcotest.bool "zoom_in atomic is None" true
    (View.zoom_in v Ids.input_module = None);
  let full = View.full spec in
  (match View.zoom_out full "W2" with
  | Some v' ->
      check strl "W2 and W4 dropped" [ "W1"; "W3" ] (View.prefix v')
  | None -> Alcotest.fail "zoom_out failed");
  check Alcotest.bool "cannot zoom out root" true (View.zoom_out full "W1" = None)

let test_view_refines_meet () =
  let a = View.full spec in
  let b = View.of_prefix spec [ "W1"; "W2" ] in
  check Alcotest.bool "full refines partial" true (View.refines a b);
  check Alcotest.bool "partial does not refine full" false (View.refines b a);
  let m = View.meet a b in
  check Alcotest.bool "meet equals coarser side" true (View.equal m b)

let view_prop_visible_edges_are_dag =
  QCheck.Test.make ~name:"every prefix view of disease is a DAG" ~count:50
    (QCheck.int_bound 5) (fun i ->
      let prefixes = Hierarchy.all_prefixes hierarchy in
      let p = List.nth prefixes (i mod List.length prefixes) in
      Wfpriv_graph.Topo.is_dag (View.graph (View.of_prefix spec p)))

let view_prop_representative_consistent =
  QCheck.Test.make ~name:"representative is visible and stable" ~count:100
    (QCheck.pair (QCheck.int_bound 5) (QCheck.int_bound 14))
    (fun (pi, mi) ->
      let prefixes = Hierarchy.all_prefixes hierarchy in
      let v = View.of_prefix spec (List.nth prefixes (pi mod 6)) in
      let m = Ids.m (1 + mi) in
      match Module_def.expansion (Spec.find_module spec m) with
      | Some w when List.mem w (View.prefix v) ->
          (* Expanded composites are spliced away: no representative. *)
          (match View.representative v m with
          | exception Not_found -> true
          | _ -> false)
      | _ ->
          let r = View.representative v m in
          View.is_visible v r && View.representative v r = r)

let () =
  Alcotest.run "workflow"
    [
      ( "module_def",
        [
          Alcotest.test_case "matching" `Quick test_module_matching;
          Alcotest.test_case "ids" `Quick test_ids;
        ] );
      ( "spec",
        [
          Alcotest.test_case "valid construction" `Quick test_spec_valid;
          Alcotest.test_case "rejects cycle" `Quick test_spec_rejects_cycle;
          Alcotest.test_case "rejects self-loop" `Quick
            test_spec_rejects_self_loop;
          Alcotest.test_case "rejects empty data" `Quick
            test_spec_rejects_empty_data;
          Alcotest.test_case "rejects double membership" `Quick
            test_spec_rejects_double_membership;
          Alcotest.test_case "rejects orphan workflow" `Quick
            test_spec_rejects_orphan_workflow;
          Alcotest.test_case "rejects I/O in subworkflow" `Quick
            test_spec_rejects_io_in_subworkflow;
          Alcotest.test_case "rejects unknown expansion" `Quick
            test_spec_rejects_unknown_expansion;
          Alcotest.test_case "disease shape (Fig. 1)" `Quick test_disease_shape;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "tree (Fig. 3)" `Quick test_hierarchy_tree;
          Alcotest.test_case "every non-root has a parent" `Quick
            test_hierarchy_note;
          Alcotest.test_case "prefixes" `Quick test_hierarchy_prefixes;
          Alcotest.test_case "module paths" `Quick test_module_path;
        ] );
      ( "view",
        [
          Alcotest.test_case "coarsest" `Quick test_view_coarsest;
          Alcotest.test_case "prefix {W1,W2} (paper example)" `Quick
            test_view_w1_w2;
          Alcotest.test_case "full expansion (paper example)" `Quick
            test_view_full_expansion;
          Alcotest.test_case "representatives" `Quick test_view_representative;
          Alcotest.test_case "zoom in/out" `Quick test_view_zoom;
          Alcotest.test_case "refines/meet" `Quick test_view_refines_meet;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ view_prop_visible_edges_are_dag; view_prop_representative_consistent ]
      );
    ]
