(* Tests for Exec_search (keyword search over executions) and the
   Clinical workload fixture. *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Disease = Wfpriv_workloads.Disease
module Clinical = Wfpriv_workloads.Clinical

let check = Alcotest.check
let strl = Alcotest.(list string)
let exec = Disease.run ()

(* ------------------------------------------------------------------ *)
(* Exec_search *)

let test_required_prefix_module () =
  (* M6 (Query OMIM) runs inside M4 inside M1: needs W2 and W4 open. *)
  let n = Execution.node_of_process exec 5 in
  check strl "atomic deep inside"
    [ "W1"; "W2"; "W4" ]
    (Exec_search.required_prefix exec (Exec_search.Module_witness n));
  (* M1's own begin node witnesses at the top level. *)
  let b = Execution.node_of_process exec 1 in
  check strl "composite witnesses collapsed" [ "W1" ]
    (Exec_search.required_prefix exec (Exec_search.Module_witness b))

let test_required_prefix_data () =
  (* d10 (disorders) crosses the top level: visible in the coarsest view. *)
  check strl "boundary-crossing item" [ "W1" ]
    (Exec_search.required_prefix exec (Exec_search.Data_witness 10));
  (* d8 (omim_disorders) only flows M6 -> M8 inside W4. *)
  check strl "deep internal item"
    [ "W1"; "W2"; "W4" ]
    (Exec_search.required_prefix exec (Exec_search.Data_witness 8));
  (* d11 (pmc_query) flows inside W3 only. *)
  check strl "item inside W3" [ "W1"; "W3" ]
    (Exec_search.required_prefix exec (Exec_search.Data_witness 11))

let test_exec_search_minimal_view () =
  (* "disorder" is witnessed most cheaply by a top-level element (M2's
     name or the d10 item): coarsest view suffices. *)
  (match Exec_search.search exec [ "disorder" ] with
  | Some a -> check strl "coarsest" [ "W1" ] (Exec_view.prefix a.Exec_search.view)
  | None -> Alcotest.fail "expected a hit");
  (* "omim" needs the execution opened down to W4. *)
  match Exec_search.search exec [ "omim" ] with
  | Some a ->
      check strl "opens W2/W4" [ "W1"; "W2"; "W4" ]
        (Exec_view.prefix a.Exec_search.view)
  | None -> Alcotest.fail "expected a hit"

let test_exec_search_multi_keyword () =
  match Exec_search.search exec [ "omim"; "notes"; "disorder" ] with
  | Some a ->
      check strl "union of requirements"
        [ "W1"; "W2"; "W3"; "W4" ]
        (Exec_view.prefix a.Exec_search.view);
      check Alcotest.int "three matches" 3 (List.length a.Exec_search.matches)
  | None -> Alcotest.fail "expected hits"

let test_exec_search_restriction_and_miss () =
  check Alcotest.bool "unmatchable keyword" true
    (Exec_search.search exec [ "quantum" ] = None);
  (* Deny data witnesses: "pmc_query" (an item name with no matching
     module) becomes unmatchable. *)
  let deny = function Exec_search.Data_witness _ -> false | _ -> true in
  check Alcotest.bool "restriction kills data witnesses" true
    (Exec_search.search ~restrict_to:deny exec [ "pmc_query" ] = None);
  Alcotest.check_raises "empty keywords"
    (Invalid_argument "Exec_search.search: empty keyword list") (fun () ->
      ignore (Exec_search.search exec []))

let test_exec_search_data_visible_in_answer () =
  match Exec_search.search exec [ "pmc_query" ] with
  | Some a ->
      check Alcotest.bool "witness item visible in the answer view" true
        (List.mem 11 (Exec_view.visible_items a.Exec_search.view))
  | None -> Alcotest.fail "expected a hit"

let prop_witness_always_visible =
  QCheck.Test.make ~name:"chosen witnesses are visible in the answer view"
    ~count:30
    (QCheck.int_bound 19)
    (fun d ->
      let item = Execution.find_item exec d in
      let kw = item.Execution.name in
      match Exec_search.search exec [ kw ] with
      | None -> false
      | Some a -> (
          match (List.hd a.Exec_search.matches).Exec_search.chosen with
          | Exec_search.Data_witness d' ->
              List.mem d' (Exec_view.visible_items a.Exec_search.view)
          | Exec_search.Module_witness n ->
              let rep = Exec_view.representative a.Exec_search.view n in
              List.mem rep (Exec_view.nodes a.Exec_search.view)))

(* ------------------------------------------------------------------ *)
(* Clinical workload *)

let test_clinical_shape () =
  check Alcotest.int "17 modules" 17 (Spec.nb_modules Clinical.spec);
  check strl "workflows" [ "C1"; "C2"; "C3"; "C4" ]
    (Spec.workflow_ids Clinical.spec);
  let h = Hierarchy.of_spec Clinical.spec in
  check strl "C4 under C2" [ "C1"; "C2"; "C4" ] (Hierarchy.ancestors h "C4");
  check strl "C3 under C1" [ "C1"; "C3" ] (Hierarchy.ancestors h "C3")

let test_clinical_runs () =
  let e = Clinical.run () in
  check Alcotest.bool "DAG" true (Wfpriv_graph.Topo.is_dag (Execution.graph e));
  let report = Execution.output_items e in
  check Alcotest.int "one output" 1 (List.length report);
  let value = Data_value.to_string (List.hd report).Execution.value in
  check Alcotest.bool "report derives from the full pipeline" true
    (String.length value > 30);
  (* The diamond in C3: both arms feed the comparison. *)
  check Alcotest.bool "treatment before compare" true
    (Provenance.executed_before e (Ids.m 12) (Ids.m 14));
  check Alcotest.bool "control before compare" true
    (Provenance.executed_before e (Ids.m 13) (Ids.m 14));
  check Alcotest.bool "arms are parallel" false
    (Provenance.executed_before e (Ids.m 12) (Ids.m 13))

let test_clinical_policy () =
  let e = Clinical.run () in
  let level0 = Policy.for_user Clinical.policy 0 in
  check strl "level 0 sees only the top" [ "C1" ] (View.prefix level0.Policy.view);
  let level1 = Policy.for_user Clinical.policy 1 in
  check Alcotest.bool "level 1 opens analysis but not de-identification" true
    (List.mem "C3" (View.prefix level1.Policy.view)
    && not (List.mem "C2" (View.prefix level1.Policy.view)));
  let _, proj = Policy.project_execution Clinical.policy 1 e in
  let records =
    (List.hd (Execution.items_named e "records")).Execution.data_id
  in
  check Alcotest.bool "records masked at level 1" true
    (Data_privacy.is_masked proj records);
  let _, proj3 = Policy.project_execution Clinical.policy 3 e in
  check Alcotest.bool "records readable at level 3" false
    (Data_privacy.is_masked proj3 records)

let test_clinical_module_privacy_interop () =
  (* The pseudonymisation composite's observed relation across runs. *)
  let runs =
    List.map
      (fun i ->
        Clinical.run_with
          [
            ("records", Data_value.Str (Printf.sprintf "batch-%d" i));
            ("consent", Data_value.Str "signed");
          ])
      [ 1; 2; 3 ]
  in
  let rows = Observed_table.of_runs runs (Ids.m 7) in
  check Alcotest.int "three distinct observations" 3 (List.length rows);
  check Alcotest.bool "functional" true (Observed_table.functional rows);
  check strl "consumes stripped data" [ "stripped" ]
    (Observed_table.input_names rows);
  check strl "emits pseudonymized data" [ "pseudonymized" ]
    (Observed_table.output_names rows)

let test_clinical_exec_search () =
  let e = Clinical.run () in
  (* "hash" is witnessed most cheaply by the collapsed M7 "Pseudonymize"
     composite (keyword "hash"), which only needs C2 open. *)
  (match Exec_search.search e [ "hash" ] with
  | Some a ->
      check strl "hash needs C2 open" [ "C1"; "C2" ]
        (Exec_view.prefix a.Exec_search.view)
  | None -> Alcotest.fail "expected a hit");
  (* The "hashed" data item itself lives inside C4. *)
  match Exec_search.search e [ "hashed" ] with
  | Some a ->
      check strl "the hashed item forces the deep chain open"
        [ "C1"; "C2"; "C4" ]
        (Exec_view.prefix a.Exec_search.view)
  | None -> Alcotest.fail "expected a hit"

let () =
  Alcotest.run "provsearch"
    [
      ( "exec_search",
        [
          Alcotest.test_case "module requirements" `Quick
            test_required_prefix_module;
          Alcotest.test_case "data requirements" `Quick test_required_prefix_data;
          Alcotest.test_case "minimal views" `Quick test_exec_search_minimal_view;
          Alcotest.test_case "multi keyword" `Quick test_exec_search_multi_keyword;
          Alcotest.test_case "restriction and misses" `Quick
            test_exec_search_restriction_and_miss;
          Alcotest.test_case "witness visibility" `Quick
            test_exec_search_data_visible_in_answer;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_witness_always_visible ] );
      ( "clinical",
        [
          Alcotest.test_case "shape" `Quick test_clinical_shape;
          Alcotest.test_case "executes" `Quick test_clinical_runs;
          Alcotest.test_case "policy" `Quick test_clinical_policy;
          Alcotest.test_case "module-privacy interop" `Quick
            test_clinical_module_privacy_interop;
          Alcotest.test_case "exec search" `Quick test_clinical_exec_search;
        ] );
    ]
