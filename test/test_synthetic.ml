(* Tests for the workload substrate: Rng determinism and the synthetic
   generators' validity across seeds and scales. *)

open Wfpriv_workflow
module Rng = Wfpriv_workloads.Rng
module Synthetic = Wfpriv_workloads.Synthetic
module Digraph = Wfpriv_graph.Digraph
module Topo = Wfpriv_graph.Topo

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  check Alcotest.(list int) "same seed, same stream" xs ys;
  let c = Rng.create 43 in
  let zs = List.init 20 (fun _ -> Rng.int c 1000) in
  check Alcotest.bool "different seed differs" true (xs <> zs)

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 7 in
    if x < 0 || x >= 7 then Alcotest.fail "int out of bounds";
    let y = Rng.int_in r 3 9 in
    if y < 3 || y > 9 then Alcotest.fail "int_in out of bounds";
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of bounds"
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_shuffle_sample () =
  let r = Rng.create 5 in
  let xs = [ 1; 2; 3; 4; 5; 6 ] in
  check Alcotest.(list int) "shuffle is a permutation" xs
    (List.sort compare (Rng.shuffle r xs));
  let s = Rng.sample r 3 xs in
  check Alcotest.int "sample size" 3 (List.length s);
  check Alcotest.int "sample distinct" 3 (List.length (List.sort_uniq compare s));
  check Alcotest.int "oversample returns all" 6 (List.length (Rng.sample r 99 xs))

let test_rng_split_independent () =
  let r = Rng.create 9 in
  let r1 = Rng.split r in
  let r2 = Rng.split r in
  let xs = List.init 10 (fun _ -> Rng.int r1 1000) in
  let ys = List.init 10 (fun _ -> Rng.int r2 1000) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

(* ------------------------------------------------------------------ *)
(* Synthetic specifications *)

let test_spec_valid_many_seeds () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let spec = Synthetic.spec rng Synthetic.default_params in
      (* Spec.create already validates; sanity-check scale and hierarchy. *)
      check Alcotest.bool
        (Printf.sprintf "seed %d: multiple workflows" seed)
        true
        (Spec.nb_workflows spec >= 3);
      let h = Hierarchy.of_spec spec in
      check Alcotest.bool "hierarchy rooted" true
        (Hierarchy.root h = Spec.root spec))
    [ 1; 2; 3; 17; 99; 12345 ]

let test_spec_deterministic () =
  let s1 = Synthetic.spec (Rng.create 11) Synthetic.default_params in
  let s2 = Synthetic.spec (Rng.create 11) Synthetic.default_params in
  check Alcotest.int "same module count" (Spec.nb_modules s1) (Spec.nb_modules s2);
  check Alcotest.(list string) "same workflows" (Spec.workflow_ids s1)
    (Spec.workflow_ids s2)

let test_spec_scales () =
  let params =
    {
      Synthetic.default_params with
      Synthetic.levels = 3;
      composites_per_workflow = 2;
      atomics_per_workflow = 6;
    }
  in
  let rng = Rng.create 21 in
  let spec = Synthetic.spec rng params in
  check Alcotest.bool "at least 100 modules" true (Spec.nb_modules spec >= 100);
  (* Full expansion of a large spec stays a DAG. *)
  check Alcotest.bool "full view DAG" true
    (Topo.is_dag (View.graph (View.full spec)))

let test_synthetic_runs () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let _, exec = Synthetic.run rng Synthetic.default_params in
      check Alcotest.bool
        (Printf.sprintf "seed %d: execution is a DAG" seed)
        true
        (Topo.is_dag (Execution.graph exec));
      check Alcotest.bool "produced data" true (Execution.nb_items exec > 0))
    [ 4; 8; 15; 16 ]

let prop_synthetic_exec_views_consistent =
  QCheck.Test.make ~name:"every prefix view of a synthetic run is a DAG"
    ~count:15 (QCheck.int_bound 10_000) (fun seed ->
      let rng = Rng.create seed in
      let spec, exec = Synthetic.run rng Synthetic.default_params in
      let h = Hierarchy.of_spec spec in
      let prefixes = Hierarchy.all_prefixes h in
      (* Sample a handful of prefixes (count grows fast). *)
      let some = List.filteri (fun i _ -> i mod 3 = 0) prefixes in
      List.for_all
        (fun p -> Topo.is_dag (Exec_view.graph (Exec_view.of_prefix exec p)))
        some)

let prop_items_unique_producers =
  QCheck.Test.make ~name:"each item has one producer and acyclic lineage"
    ~count:15 (QCheck.int_bound 10_000) (fun seed ->
      let rng = Rng.create seed in
      let _, exec = Synthetic.run rng Synthetic.default_params in
      List.for_all
        (fun (it : Execution.item) ->
          (* lineage terminates and never contains the item itself *)
          not (List.mem it.Execution.data_id (Provenance.lineage exec it.Execution.data_id)))
        (Execution.items exec))

let test_random_table_shape () =
  let rng = Rng.create 3 in
  let t = Synthetic.random_table rng ~n_inputs:2 ~n_outputs:2 ~domain_size:3 in
  check Alcotest.int "rows = 3^2" 9 (Wfpriv_privacy.Module_privacy.nb_rows t);
  check Alcotest.(list string) "attr names"
    [ "x0"; "x1"; "y0"; "y1" ]
    (Wfpriv_privacy.Module_privacy.attr_names t)

let test_random_dag_clustering () =
  let rng = Rng.create 13 in
  let g = Synthetic.random_dag rng ~nodes:20 ~edge_probability:0.3 in
  check Alcotest.bool "random dag is a DAG" true (Topo.is_dag g);
  check Alcotest.int "node count" 20 (Digraph.nb_nodes g);
  let clusters = Synthetic.random_clustering rng g ~nb_clusters:4 ~cluster_size:4 in
  check Alcotest.int "cluster count" 4 (List.length clusters);
  let all = List.concat clusters in
  check Alcotest.int "disjoint" (List.length all)
    (List.length (List.sort_uniq compare all))

let () =
  Alcotest.run "synthetic"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle/sample" `Quick test_rng_shuffle_sample;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
      ( "generator",
        [
          Alcotest.test_case "valid across seeds" `Quick test_spec_valid_many_seeds;
          Alcotest.test_case "deterministic" `Quick test_spec_deterministic;
          Alcotest.test_case "scales to 100+ modules" `Quick test_spec_scales;
          Alcotest.test_case "executes" `Quick test_synthetic_runs;
          Alcotest.test_case "random table" `Quick test_random_table_shape;
          Alcotest.test_case "random dag/clustering" `Quick
            test_random_dag_clustering;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_synthetic_exec_views_consistent; prop_items_unique_producers ]
      );
    ]
