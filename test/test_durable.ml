(* Tests for the durable storage engine (lib/durable): WAL framing,
   mutation codec, snapshots, recovery — including the crash-safety
   contract: truncating the log at EVERY byte offset must recover a
   prefix of the committed mutation sequence, while mid-log corruption
   must raise Wal.Corrupt rather than silently dropping history. *)

open Wfpriv_query
module Crc32 = Wfpriv_serial.Crc32
module Wal = Wfpriv_durable.Wal
module Snapshot = Wfpriv_durable.Snapshot
module Recovery = Wfpriv_durable.Recovery
module Mutation_codec = Wfpriv_durable.Mutation_codec
module Durable_repo = Wfpriv_durable.Durable_repo
module Repo_store = Wfpriv_store.Repo_store
module Rng = Wfpriv_workloads.Rng
module Synthetic = Wfpriv_workloads.Synthetic
module Disease = Wfpriv_workloads.Disease
open Wfpriv_workflow

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Filesystem helpers (stdlib only) *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_dir () =
  let path = Filename.temp_file "wfpriv-durable-test" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let copy_dir src dst =
  Sys.mkdir dst 0o755;
  Array.iter
    (fun e ->
      write_file (Filename.concat dst e)
        (Wal.read_all (Filename.concat src e)))
    (Sys.readdir src)

let in_tmp_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* A tiny executable spec keeps logs small enough to fuzz byte by byte. *)
let tiny_spec =
  Synthetic.spec (Rng.create 5)
    {
      Synthetic.default_params with
      levels = 0;
      composites_per_workflow = 0;
      atomics_per_workflow = 2;
    }

let tiny_exec seed =
  Executor.run tiny_spec
    (Synthetic.semantics tiny_spec)
    ~inputs:(Synthetic.inputs_for tiny_spec ~seed)

let tiny_policy = Wfpriv_privacy.Policy.make tiny_spec

let snap repo = Repo_store.to_string repo

(* Append an execution of the *stored* entry's spec (the repository
   requires executions to share their entry's physical spec, so after
   recovery the spec must come from the recovered policy — same move as
   `wfpriv repo append`). *)
let append_fresh t seed =
  let e = Repository.find (Durable_repo.repo t) "tiny" in
  let spec = e.Repository.spec in
  let exec =
    Executor.run spec
      (Synthetic.semantics spec)
      ~inputs:(Synthetic.inputs_for spec ~seed)
  in
  Durable_repo.append t
    (Repository.Add_execution { entry_name = "tiny"; exec })

(* ------------------------------------------------------------------ *)
(* CRC-32 *)

let test_crc32_vector () =
  check Alcotest.int "IEEE check value" 0xCBF43926 (Crc32.digest "123456789");
  check Alcotest.int "empty" 0 (Crc32.digest "")

let test_crc32_compose () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let k = 17 in
  let piecewise =
    Crc32.update (Crc32.update 0 s 0 k) s k (String.length s - k)
  in
  check Alcotest.int "update composes" (Crc32.digest s) piecewise

(* ------------------------------------------------------------------ *)
(* WAL framing *)

let arb_record =
  QCheck.(
    map
      (fun (lsn, tag, payload) -> { Wal.lsn; tag; payload })
      (triple (int_bound 1_000_000) (int_bound 255)
         (string_gen_of_size Gen.(int_bound 200) Gen.(char_range '\000' '\255'))))

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"WAL frame roundtrip" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_bound 8) arb_record)
    (fun records ->
      let image = String.concat "" (List.map Wal.encode records) in
      let decoded, valid = Wal.records_of_string image in
      decoded = records && valid = String.length image)

let prop_frame_torn_prefix =
  QCheck.Test.make ~name:"every truncation decodes to a record prefix"
    ~count:60
    (QCheck.list_of_size (QCheck.Gen.int_range 1 5) arb_record)
    (fun records ->
      let image = String.concat "" (List.map Wal.encode records) in
      let ok = ref true in
      for b = 0 to String.length image - 1 do
        let decoded, valid =
          Wal.records_of_string ~allow_torn:true (String.sub image 0 b)
        in
        let n = List.length decoded in
        ok :=
          !ok
          && n <= List.length records
          && decoded = List.filteri (fun i _ -> i < n) records
          && valid <= b
      done;
      !ok)

let test_corrupt_frame () =
  let r1 = { Wal.lsn = 1; tag = 1; payload = "hello" } in
  let r2 = { Wal.lsn = 2; tag = 2; payload = "world" } in
  let image = Wal.encode r1 ^ Wal.encode r2 in
  (* Flip a body byte of the first (non-tail) frame: checksum mismatch,
     never tolerated even in torn mode. *)
  let b = Bytes.of_string image in
  Bytes.set b 9 (Char.chr (Char.code (Bytes.get b 9) lxor 0xFF));
  let corrupted = Bytes.to_string b in
  match Wal.records_of_string ~allow_torn:true corrupted with
  | exception Wal.Corrupt { offset = 0; reason; _ } ->
      check Alcotest.bool "reason is checksum mismatch" true
        (String.length reason >= 8 && String.sub reason 0 8 = "checksum")
  | _ -> Alcotest.fail "mid-log corruption must raise Wal.Corrupt"

let test_torn_tail_needs_flag () =
  let image = Wal.encode { Wal.lsn = 1; tag = 1; payload = "hello" } in
  let torn = String.sub image 0 (String.length image - 2) in
  check Alcotest.bool "tolerated with flag" true
    (Wal.records_of_string ~allow_torn:true torn = ([], 0));
  match Wal.records_of_string torn with
  | exception Wal.Corrupt _ -> ()
  | _ -> Alcotest.fail "torn tail must raise without allow_torn"

(* ------------------------------------------------------------------ *)
(* Mutation codec *)

let test_mutation_roundtrip () =
  let repo = Repository.create () in
  let m1 =
    Repository.Add_entry
      {
        entry_name = "tiny";
        policy = tiny_policy;
        executions = [ tiny_exec 1 ];
      }
  in
  let tag, payload = Mutation_codec.encode m1 in
  Repository.apply repo (Mutation_codec.decode repo tag payload);
  let m2 =
    Repository.Add_execution { entry_name = "tiny"; exec = tiny_exec 2 }
  in
  let tag, payload = Mutation_codec.encode m2 in
  Repository.apply repo (Mutation_codec.decode repo tag payload);
  let direct = Repository.create () in
  Repository.apply direct m1;
  Repository.apply direct m2;
  check Alcotest.string "decoded replay = direct apply" (snap direct)
    (snap repo)

let test_mutation_unknown_entry () =
  let tag, payload =
    Mutation_codec.encode
      (Repository.Add_execution { entry_name = "ghost"; exec = tiny_exec 1 })
  in
  match Mutation_codec.decode (Repository.create ()) tag payload with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown entry must not decode"

(* ------------------------------------------------------------------ *)
(* Durable repo end to end *)

(* A store with an Add_entry and a few Add_executions; returns the store
   dir and the serialized repository after each prefix of the mutation
   sequence (states.(i) = after i mutations). *)
let build_store ?segment_bytes dir n_execs =
  let t = Durable_repo.init ?segment_bytes dir in
  let shadow = Repository.create () in
  let states = ref [ snap shadow ] in
  let record m =
    ignore (Durable_repo.append t m);
    Repository.apply shadow m;
    states := snap shadow :: !states
  in
  record
    (Repository.Add_entry
       { entry_name = "tiny"; policy = tiny_policy; executions = [] });
  for seed = 1 to n_execs do
    record
      (Repository.Add_execution { entry_name = "tiny"; exec = tiny_exec seed })
  done;
  Durable_repo.close t;
  Array.of_list (List.rev !states)

let test_reopen_equality () =
  in_tmp_dir (fun dir ->
      let states = build_store dir 3 in
      let repo, report = Recovery.open_dir dir in
      check Alcotest.string "recovered = committed"
        states.(Array.length states - 1)
        (snap repo);
      check Alcotest.int "all records replayed" 4 report.Recovery.replayed;
      check Alcotest.int "no torn bytes" 0 report.Recovery.torn_bytes)

let test_torn_write_fuzz () =
  (* The crash-safety contract, exhaustively: truncate the (single)
     segment at every byte offset; recovery must succeed and yield
     exactly the replay of some prefix of the committed mutations. *)
  in_tmp_dir (fun dir ->
      let states = build_store dir 3 in
      let seg =
        match Wal.segments dir with
        | [ s ] -> s
        | l -> Alcotest.failf "expected one segment, got %d" (List.length l)
      in
      let image = Wal.read_all seg.Wal.path in
      for b = 0 to String.length image do
        in_tmp_dir (fun dir2 ->
            let store2 = Filename.concat dir2 "store" in
            copy_dir dir store2;
            write_file
              (Filename.concat store2 (Filename.basename seg.Wal.path))
              (String.sub image 0 b);
            let repo, report = Recovery.open_dir store2 in
            let i = report.Recovery.replayed in
            if i >= Array.length states then
              Alcotest.failf "offset %d: replayed %d > committed" b i;
            check Alcotest.string
              (Printf.sprintf "offset %d recovers prefix" b)
              states.(i) (snap repo);
            (* Reopening for writing repairs the tail and accepts new
               appends. *)
            let t = Durable_repo.open_dir store2 in
            if i >= 1 then ignore (append_fresh t 99);
            Durable_repo.close t)
      done)

let test_midlog_corruption_refuses () =
  in_tmp_dir (fun dir ->
      let _ = build_store dir 3 in
      let seg = List.hd (Wal.segments dir) in
      let image = Wal.read_all seg.Wal.path in
      (* Corrupt a byte inside the first frame's body. *)
      let b = Bytes.of_string image in
      Bytes.set b 10 (Char.chr (Char.code (Bytes.get b 10) lxor 0x01));
      write_file seg.Wal.path (Bytes.to_string b);
      match Recovery.open_dir dir with
      | exception Wal.Corrupt _ -> ()
      | _ -> Alcotest.fail "mid-log corruption must raise Wal.Corrupt")

let test_missing_segment_refuses () =
  in_tmp_dir (fun dir ->
      let _ = build_store ~segment_bytes:64 dir 4 in
      match Wal.segments dir with
      | _ :: middle :: _ :: _ -> (
          Sys.remove middle.Wal.path;
          match Recovery.open_dir dir with
          | exception Wal.Corrupt _ -> ()
          | _ -> Alcotest.fail "sequence gap must raise Wal.Corrupt")
      | l -> Alcotest.failf "expected >= 3 segments, got %d" (List.length l))

let test_rotation_checkpoint_compact () =
  in_tmp_dir (fun dir ->
      (* Tiny threshold: every append rotates. *)
      let states = build_store ~segment_bytes:64 dir 4 in
      let final = states.(Array.length states - 1) in
      check Alcotest.bool "rotated into several segments" true
        (List.length (Wal.segments dir) > 1);
      let t = Durable_repo.open_dir dir in
      check Alcotest.string "recovered across segments" final
        (snap (Durable_repo.repo t));
      let lsn = Durable_repo.checkpoint t in
      check Alcotest.int "checkpoint at last lsn" 5 lsn;
      let dropped = Durable_repo.compact t in
      check Alcotest.bool "compaction dropped segments" true (dropped > 0);
      let pruned = Durable_repo.prune_snapshots t in
      check Alcotest.bool "old snapshots pruned" true (pruned > 0);
      Durable_repo.close t;
      let repo, report = Recovery.open_dir dir in
      check Alcotest.string "equal after compaction" final (snap repo);
      check Alcotest.int "snapshot covers the log" 5
        report.Recovery.snapshot_lsn;
      check Alcotest.int "nothing to replay" 0 report.Recovery.replayed;
      (* The compacted store still accepts appends. *)
      let t = Durable_repo.open_dir dir in
      check Alcotest.int "lsns continue" 6 (append_fresh t 9);
      Durable_repo.close t)

let test_snapshot_fallback () =
  in_tmp_dir (fun dir ->
      let states = build_store dir 2 in
      let t = Durable_repo.open_dir dir in
      let lsn = Durable_repo.checkpoint t in
      Durable_repo.close t;
      (* A half-written newest snapshot must fall back to replay. *)
      write_file (Snapshot.path dir lsn) "{ truncated";
      let repo, report = Recovery.open_dir dir in
      check Alcotest.string "fell back to older snapshot + log"
        states.(Array.length states - 1)
        (snap repo);
      check Alcotest.int "replayed from lsn 0" 3 report.Recovery.replayed)

let test_init_refuses_existing () =
  in_tmp_dir (fun dir ->
      let _ = build_store dir 1 in
      match Durable_repo.init dir with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "init must refuse an existing store")

let test_status () =
  in_tmp_dir (fun dir ->
      let _ = build_store dir 2 in
      let s = Durable_repo.status dir in
      check Alcotest.int "segments" 1 s.Durable_repo.st_segments;
      check Alcotest.int "snapshot" 0 s.Durable_repo.st_snapshot_lsn;
      check Alcotest.int "replayed" 3 s.Durable_repo.st_replayed;
      check Alcotest.int "last lsn" 3 s.Durable_repo.st_last_lsn;
      check Alcotest.int "entries" 1 s.Durable_repo.st_entries)

(* The facade also round-trips the full disease repository (bigger
   payloads, expand-level policies). *)
let test_disease_roundtrip () =
  in_tmp_dir (fun dir ->
      let t = Durable_repo.init dir in
      let policy =
        Wfpriv_privacy.Policy.make ~expand_levels:[ ("W2", 1) ] Disease.spec
      in
      ignore
        (Durable_repo.append t
           (Repository.Add_entry
              {
                entry_name = "disease";
                policy;
                executions = [ Disease.run () ];
              }));
      ignore
        (Durable_repo.append t
           (Repository.Add_execution
              { entry_name = "disease"; exec = Disease.run () }));
      let committed = snap (Durable_repo.repo t) in
      Durable_repo.close t;
      let repo, _ = Recovery.open_dir dir in
      check Alcotest.string "disease store survives recovery" committed
        (snap repo))

let () =
  Alcotest.run "durable"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vector" `Quick test_crc32_vector;
          Alcotest.test_case "update composes" `Quick test_crc32_compose;
        ] );
      ( "wal",
        List.map QCheck_alcotest.to_alcotest
          [ prop_frame_roundtrip; prop_frame_torn_prefix ]
        @ [
            Alcotest.test_case "corrupt frame" `Quick test_corrupt_frame;
            Alcotest.test_case "torn tail flag" `Quick
              test_torn_tail_needs_flag;
          ] );
      ( "codec",
        [
          Alcotest.test_case "mutation roundtrip" `Quick
            test_mutation_roundtrip;
          Alcotest.test_case "unknown entry" `Quick test_mutation_unknown_entry;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "reopen equality" `Quick test_reopen_equality;
          Alcotest.test_case "torn-write fuzz (every offset)" `Quick
            test_torn_write_fuzz;
          Alcotest.test_case "mid-log corruption" `Quick
            test_midlog_corruption_refuses;
          Alcotest.test_case "missing segment" `Quick
            test_missing_segment_refuses;
          Alcotest.test_case "snapshot fallback" `Quick test_snapshot_fallback;
        ] );
      ( "facade",
        [
          Alcotest.test_case "rotation + checkpoint + compact" `Quick
            test_rotation_checkpoint_compact;
          Alcotest.test_case "init refuses existing" `Quick
            test_init_refuses_existing;
          Alcotest.test_case "status" `Quick test_status;
          Alcotest.test_case "disease roundtrip" `Quick test_disease_roundtrip;
        ] );
    ]
