(* Tests for Executor, Execution, Provenance and Exec_view, pinned against
   the paper's Fig. 4 (execution) and Fig. 2 (provenance view). *)

open Wfpriv_workflow
module Disease = Wfpriv_workloads.Disease
module Digraph = Wfpriv_graph.Digraph

let check = Alcotest.check
let intl = Alcotest.(list int)
let strl = Alcotest.(list string)
let exec = Disease.run ()

let node_by_label e label =
  match
    List.find_opt (fun n -> String.equal (Execution.node_label e n) label)
      (Execution.nodes e)
  with
  | Some n -> n
  | None -> Alcotest.fail (Printf.sprintf "no node labelled %s" label)

(* ------------------------------------------------------------------ *)
(* Fig. 4: the execution *)

let test_fig4_process_numbering () =
  (* Process ids and begin/end bracketing exactly as in the paper. *)
  List.iter
    (fun label -> ignore (node_by_label exec label))
    [
      "I"; "O"; "S1:M1 begin"; "S1:M1 end"; "S2:M3"; "S3:M4 begin";
      "S3:M4 end"; "S4:M5"; "S5:M6"; "S6:M7"; "S7:M8"; "S8:M2 begin";
      "S8:M2 end"; "S9:M9"; "S10:M12"; "S11:M13"; "S12:M14"; "S13:M10";
      "S14:M11"; "S15:M15";
    ]

let test_fig4_data_flow () =
  let e = exec in
  let edge a b = Execution.edge_items e (node_by_label e a) (node_by_label e b) in
  check intl "I -> M1 begin carries d0,d1" [ 0; 1 ] (edge "I" "S1:M1 begin");
  check intl "I -> M2 begin carries d2,d3,d4" [ 2; 3; 4 ] (edge "I" "S8:M2 begin");
  check intl "M1 begin -> M3 carries d0,d1" [ 0; 1 ] (edge "S1:M1 begin" "S2:M3");
  check intl "M3 -> M4 begin carries d5" [ 5 ] (edge "S2:M3" "S3:M4 begin");
  check intl "M8 -> M4 end carries d10" [ 10 ] (edge "S7:M8" "S3:M4 end");
  check intl "M4 end -> M1 end carries d10" [ 10 ] (edge "S3:M4 end" "S1:M1 end");
  check intl "M1 end -> M2 begin carries d10" [ 10 ]
    (edge "S1:M1 end" "S8:M2 begin");
  check intl "M2 begin -> M9 carries d2,d3,d4,d10" [ 2; 3; 4; 10 ]
    (edge "S8:M2 begin" "S9:M9");
  check intl "M15 -> M2 end carries d19" [ 19 ] (edge "S15:M15" "S8:M2 end");
  check intl "M2 end -> O carries d19" [ 19 ] (edge "S8:M2 end" "O")

let test_fig4_items () =
  check Alcotest.int "20 data items d0..d19" 20 (Execution.nb_items exec);
  let it = Execution.find_item exec 10 in
  check Alcotest.string "d10 is the disorders output" "disorders"
    it.Execution.name;
  check Alcotest.string "d10 produced by S7:M8" "S7:M8"
    (Execution.node_label exec it.Execution.producer);
  let outs = Execution.output_items exec in
  check intl "workflow output is d19" [ 19 ]
    (List.map (fun (i : Execution.item) -> i.Execution.data_id) outs);
  check strl "items named snps" [ "rs429358,rs7412" ]
    (List.map
       (fun (i : Execution.item) -> Data_value.to_string i.Execution.value)
       (Execution.items_named exec "snps"))

let test_execution_is_dag_with_scopes () =
  check Alcotest.bool "DAG" true (Wfpriv_graph.Topo.is_dag (Execution.graph exec));
  let m5 = node_by_label exec "S4:M5" in
  (* M5 runs inside M4 (S3) inside M1 (S1). *)
  check intl "scope of S4:M5" [ 1; 3 ] (Execution.scope exec m5);
  let i = node_by_label exec "I" in
  check intl "scope of I" [] (Execution.scope exec i);
  let b = node_by_label exec "S3:M4 begin" in
  check intl "begin node carries own proc" [ 1; 3 ] (Execution.scope exec b)

let test_node_lookups () =
  check intl "nodes of M3" [ node_by_label exec "S2:M3" ]
    (Execution.nodes_of_module exec Disease.m3);
  check Alcotest.int "node of process 2" (node_by_label exec "S2:M3")
    (Execution.node_of_process exec 2);
  check (Alcotest.option Alcotest.int) "module of begin node"
    (Some Disease.m4)
    (Execution.module_of_node exec (node_by_label exec "S3:M4 begin"))

let test_executor_errors () =
  (* Semantics missing an edge's required output name must fail. *)
  let broken m inputs =
    if m = Disease.m3 then [ ("wrong_name", Data_value.Str "x") ]
    else Disease.semantics m inputs
  in
  (match Executor.run ~priority:Disease.priority Disease.spec broken
           ~inputs:Disease.default_inputs
   with
  | exception Executor.Execution_error _ -> ()
  | _ -> Alcotest.fail "expected Execution_error for missing output");
  (* Duplicate output names must fail. *)
  let dup m inputs =
    if m = Disease.m3 then
      [ ("expanded_snps", Data_value.Str "a"); ("expanded_snps", Data_value.Str "b") ]
    else Disease.semantics m inputs
  in
  match Executor.run ~priority:Disease.priority Disease.spec dup
          ~inputs:Disease.default_inputs
  with
  | exception Executor.Execution_error _ -> ()
  | _ -> Alcotest.fail "expected Execution_error for duplicate output"

let test_run_many_deterministic () =
  match Executor.run_many ~priority:Disease.priority Disease.spec
          Disease.semantics
          ~inputs_list:[ Disease.default_inputs; Disease.default_inputs ]
  with
  | [ a; b ] ->
      check Alcotest.bool "same graph" true
        (Digraph.equal (Execution.graph a) (Execution.graph b));
      check Alcotest.int "same item count" (Execution.nb_items a)
        (Execution.nb_items b)
  | _ -> Alcotest.fail "expected two executions"

(* ------------------------------------------------------------------ *)
(* Provenance *)

let test_provenance_of_d10 () =
  let p = Provenance.of_data exec 10 in
  let labels = List.map (Execution.node_label exec) p.Provenance.nodes in
  (* Everything that led to the disorders set: I, M1's subtree. *)
  check strl "provenance nodes of d10"
    [ "I"; "S1:M1 begin"; "S2:M3"; "S3:M4 begin"; "S4:M5"; "S5:M6"; "S6:M7"; "S7:M8" ]
    (List.sort compare labels)

let test_lineage_and_impact () =
  check intl "lineage of d5 is d0,d1" [ 0; 1 ] (Provenance.lineage exec 5);
  check intl "lineage of d10"
    [ 0; 1; 5; 6; 7; 8; 9 ]
    (Provenance.lineage exec 10);
  check Alcotest.bool "d19 depends on d0" true (Provenance.depends_on exec 19 0);
  check Alcotest.bool "d5 independent of d2" false
    (Provenance.depends_on exec 5 2);
  (* Downstream impact of the expanded SNP set: everything after M3. *)
  check intl "impact of d5"
    [ 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16; 17; 18; 19 ]
    (Provenance.impacted exec 5);
  check intl "impact of d19 is empty" [] (Provenance.impacted exec 19)

let test_contributing_modules () =
  let ms = Provenance.contributing_modules exec 10 in
  check intl "modules contributing to d10"
    (List.sort compare
       [ Disease.m1; Disease.m3; Disease.m4; Disease.m5; Disease.m6; Disease.m7; Disease.m8 ])
    ms

let test_necessary_modules () =
  (* d10 (disorders) necessarily flowed through M3, M5, M8 and the
     composites, but NOT M6 or M7 — they are parallel alternatives. *)
  let necessary = Provenance.necessary_modules exec 10 in
  List.iter
    (fun m ->
      check Alcotest.bool
        (Ids.module_name m ^ " necessary")
        true (List.mem m necessary))
    [ Disease.m1; Disease.m3; Disease.m4; Disease.m5; Disease.m8 ];
  List.iter
    (fun m ->
      check Alcotest.bool
        (Ids.module_name m ^ " not necessary (parallel branch)")
        false (List.mem m necessary))
    [ Disease.m6; Disease.m7 ];
  (* Contrast with contributing_modules, which includes both branches. *)
  let contributing = Provenance.contributing_modules exec 10 in
  check Alcotest.bool "necessary ⊆ contributing" true
    (List.for_all (fun m -> List.mem m contributing) necessary);
  check Alcotest.bool "strictly smaller here" true
    (List.length necessary < List.length contributing)

let test_executed_before () =
  (* The paper's example query: Expand SNP Set before Query OMIM. *)
  check Alcotest.bool "M3 before M6" true
    (Provenance.executed_before exec Disease.m3 Disease.m6);
  check Alcotest.bool "M6 not before M3" false
    (Provenance.executed_before exec Disease.m6 Disease.m3);
  check Alcotest.bool "M13 contributes to M11" true
    (Provenance.executed_before exec Disease.m13 Disease.m11)

(* ------------------------------------------------------------------ *)
(* Exec views (Fig. 2) *)

let test_fig2_coarsest_view () =
  let v = Exec_view.coarsest exec in
  check strl "prefix" [ "W1" ] (Exec_view.prefix v);
  let labels = List.map (Exec_view.node_label v) (Exec_view.nodes v) in
  check strl "exactly Fig. 2's nodes" [ "I"; "O"; "S1:M1"; "S8:M2" ]
    (List.sort compare labels);
  let n l =
    List.find (fun x -> Exec_view.node_label v x = l) (Exec_view.nodes v)
  in
  check intl "I->M1 d0,d1" [ 0; 1 ] (Exec_view.edge_items v (n "I") (n "S1:M1"));
  check intl "I->M2 d2,d3,d4" [ 2; 3; 4 ]
    (Exec_view.edge_items v (n "I") (n "S8:M2"));
  check intl "M1->M2 d10" [ 10 ] (Exec_view.edge_items v (n "S1:M1") (n "S8:M2"));
  check intl "M2->O d19" [ 19 ] (Exec_view.edge_items v (n "S8:M2") (n "O"));
  check Alcotest.bool "M1 collapsed" true (Exec_view.is_collapsed v (n "S1:M1"));
  check intl "visible items" [ 0; 1; 2; 3; 4; 10; 19 ] (Exec_view.visible_items v);
  check intl "hidden items" [ 5; 6; 7; 8; 9; 11; 12; 13; 14; 15; 16; 17; 18 ]
    (Exec_view.hidden_items v)

let test_partial_view () =
  (* Expanding only W2 keeps M4 collapsed inside it and M2 collapsed. *)
  let v = Exec_view.of_prefix exec [ "W1"; "W2" ] in
  let labels = List.map (Exec_view.node_label v) (Exec_view.nodes v) in
  check strl "nodes"
    [ "I"; "O"; "S1:M1 begin"; "S1:M1 end"; "S2:M3"; "S3:M4"; "S8:M2" ]
    (List.sort compare labels);
  let n l =
    List.find (fun x -> Exec_view.node_label v x = l) (Exec_view.nodes v)
  in
  check Alcotest.bool "M4 collapsed" true (Exec_view.is_collapsed v (n "S3:M4"));
  check Alcotest.bool "M1 begin kept (expanded)" false
    (Exec_view.is_collapsed v (n "S1:M1 begin"));
  check intl "M3 -> M4 carries d5" [ 5 ] (Exec_view.edge_items v (n "S2:M3") (n "S3:M4"))

let test_full_view_identity () =
  let v = Exec_view.full exec in
  check Alcotest.int "same node count" (List.length (Execution.nodes exec))
    (List.length (Exec_view.nodes v));
  check intl "nothing hidden" [] (Exec_view.hidden_items v);
  check Alcotest.bool "graphs equal" true
    (Digraph.equal (Exec_view.graph v) (Execution.graph exec))

let test_visible_lineage () =
  (* Full ancestry of the prognosis d19 spans d0..d18; the coarsest view
     only ever shows the boundary items. *)
  let coarse = Exec_view.coarsest exec in
  check intl "coarse lineage of d19" [ 0; 1; 2; 3; 4; 10 ]
    (Exec_view.visible_lineage coarse 19);
  (* Opening W2 (and nothing else) adds d5 (between M3 and M4). *)
  let mid = Exec_view.of_prefix exec [ "W1"; "W2" ] in
  check intl "lineage after opening W2" [ 0; 1; 2; 3; 4; 5; 10 ]
    (Exec_view.visible_lineage mid 19);
  (* The full view recovers the complete lineage. *)
  let full = Exec_view.full exec in
  check intl "full lineage" (Provenance.lineage exec 19)
    (Exec_view.visible_lineage full 19)

let test_view_representative_roundtrip () =
  let v = Exec_view.coarsest exec in
  let m5 = Execution.node_of_process exec 4 in
  let rep = Exec_view.representative v m5 in
  check Alcotest.string "M5 hidden inside S1:M1" "S1:M1" (Exec_view.node_label v rep)

(* Property: on every prefix, the view preserves the base reachability
   facts between its visible representative pairs (collapsing never loses
   connectivity, only granularity). *)
let prop_view_preserves_reachability =
  QCheck.Test.make ~name:"exec views preserve base reachability" ~count:30
    (QCheck.int_bound 5) (fun i ->
      let spec = Disease.spec in
      let hierarchy = Hierarchy.of_spec spec in
      let prefixes = Hierarchy.all_prefixes hierarchy in
      let p = List.nth prefixes (i mod List.length prefixes) in
      let v = Exec_view.of_prefix exec p in
      let base = Execution.graph exec in
      let vg = Exec_view.graph v in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let ra = Exec_view.representative v a
              and rb = Exec_view.representative v b in
              ra = rb
              || (not (Wfpriv_graph.Reachability.reaches base a b))
              || Wfpriv_graph.Reachability.reaches vg ra rb)
            (Execution.nodes exec))
        (Execution.nodes exec))

let () =
  Alcotest.run "execution"
    [
      ( "fig4",
        [
          Alcotest.test_case "process numbering" `Quick
            test_fig4_process_numbering;
          Alcotest.test_case "data flow" `Quick test_fig4_data_flow;
          Alcotest.test_case "items" `Quick test_fig4_items;
          Alcotest.test_case "dag + scopes" `Quick
            test_execution_is_dag_with_scopes;
          Alcotest.test_case "node lookups" `Quick test_node_lookups;
          Alcotest.test_case "executor errors" `Quick test_executor_errors;
          Alcotest.test_case "run_many deterministic" `Quick
            test_run_many_deterministic;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "subgraph of d10" `Quick test_provenance_of_d10;
          Alcotest.test_case "lineage and impact" `Quick test_lineage_and_impact;
          Alcotest.test_case "contributing modules" `Quick
            test_contributing_modules;
          Alcotest.test_case "necessary modules (dominators)" `Quick
            test_necessary_modules;
          Alcotest.test_case "executed before" `Quick test_executed_before;
        ] );
      ( "exec_view",
        [
          Alcotest.test_case "Fig. 2 coarsest view" `Quick
            test_fig2_coarsest_view;
          Alcotest.test_case "partial view {W1,W2}" `Quick test_partial_view;
          Alcotest.test_case "full view is identity" `Quick
            test_full_view_identity;
          Alcotest.test_case "representative roundtrip" `Quick
            test_view_representative_roundtrip;
          Alcotest.test_case "visible lineage" `Quick test_visible_lineage;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_view_preserves_reachability ] );
    ]
