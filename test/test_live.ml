(* Tests for the live-repository stack: the LSM keyword index
   (Live_index) pinned bit-for-bit against its frozen rebuild,
   incremental closure maintenance (Engine.extend) against from-scratch
   preparation, epoch/snapshot isolation of Live_repo — a pinned
   generation's answers and observer counters are bit-identical whatever
   hidden writes land in newer generations — and the crash-safety of
   streamed batches: truncating the log at every byte offset recovers
   the last sealed generation, never a partial batch, while an LSM merge
   writes nothing durable at all. *)

open Wfpriv_query
open Wfpriv_workflow
module Wal = Wfpriv_durable.Wal
module Recovery = Wfpriv_durable.Recovery
module Durable_repo = Wfpriv_durable.Durable_repo
module Live_repo = Wfpriv_durable.Live_repo
module Repo_store = Wfpriv_store.Repo_store
module Pool = Wfpriv_parallel.Pool
module Rng = Wfpriv_workloads.Rng
module Synthetic = Wfpriv_workloads.Synthetic
module Disease = Wfpriv_workloads.Disease
module Policy = Wfpriv_privacy.Policy
module Obs = Wfpriv_obs

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Filesystem helpers (stdlib only, same shape as test_durable) *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_dir () =
  let path = Filename.temp_file "wfpriv-live-test" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let copy_dir src dst =
  Sys.mkdir dst 0o755;
  Array.iter
    (fun e ->
      write_file (Filename.concat dst e)
        (Wal.read_all (Filename.concat src e)))
    (Sys.readdir src)

let in_tmp_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let dir_image dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun e -> (e, Wal.read_all (Filename.concat dir e)))

let snap repo = Repo_store.to_string repo

(* ------------------------------------------------------------------ *)
(* Workload helpers *)

let small_params =
  {
    Synthetic.default_params with
    levels = 1;
    composites_per_workflow = 1;
    atomics_per_workflow = 3;
  }

let tiny_params =
  {
    Synthetic.default_params with
    levels = 0;
    composites_per_workflow = 0;
    atomics_per_workflow = 2;
  }

(* An index entry with multi-level content: every sub-workflow of the
   synthetic spec gets an expansion floor, so terms spread over
   partitions 1..3 while the root stays public. *)
let syn_index_entry seed name =
  let spec = Synthetic.spec (Rng.create seed) small_params in
  let subs =
    List.filter (fun w -> w <> Spec.root spec) (Spec.workflow_ids spec)
  in
  let expand_levels = List.mapi (fun i w -> (w, (i mod 3) + 1)) subs in
  let policy = Policy.make ~expand_levels spec in
  (name, Policy.spec policy, Policy.privilege policy)

let disease_index_entry name =
  let policy =
    Policy.make
      ~expand_levels:[ ("W2", 1); ("W3", 2); ("W4", 3) ]
      Disease.spec
  in
  (name, Policy.spec policy, Policy.privilege policy)

let corpus =
  List.mapi
    (fun i seed -> syn_index_entry seed (Printf.sprintf "syn%02d" i))
    [ 101; 102; 103; 104; 105; 106; 107 ]
  @ [ disease_index_entry "disease" ]

let probe_terms =
  let vocab = Synthetic.default_params.Synthetic.keyword_vocabulary in
  let w i = List.nth vocab i in
  [
    [ w 0 ];
    [ w 0; w 1 ];
    [ w 2; w 3; w 4 ];
    [ "no-such-term" ];
    [ w 5; "no-such-term" ];
  ]

let probe_levels = [ 0; 1; 2; 3; 9 ]

(* Mutations for the durable tests. *)
let add_syn_entry ?(params = small_params) name seed =
  let spec, exec = Synthetic.run (Rng.create seed) params in
  Repository.Add_entry
    { entry_name = name; policy = Policy.make spec; executions = [ exec ] }

let add_hidden_disease name =
  let policy =
    Policy.make
      ~expand_levels:[ ("W2", 3); ("W3", 3); ("W4", 3) ]
      Disease.spec
  in
  Repository.Add_entry
    { entry_name = name; policy; executions = [ Disease.run () ] }

(* An execution of a *stored* entry (executions must share the entry's
   physical spec, so it comes from the live repository). *)
let exec_of_stored t name seed =
  let e = Repository.find (Durable_repo.repo t) name in
  let spec = e.Repository.spec in
  Executor.run spec
    (Synthetic.semantics spec)
    ~inputs:(Synthetic.inputs_for spec ~seed)

(* ------------------------------------------------------------------ *)
(* Bit-identity helpers *)

let rank_bits =
  List.map (fun (e : Ranking.entry) ->
      (e.Ranking.doc, Int64.bits_of_float e.Ranking.score))

let check_rank msg a b =
  check
    Alcotest.(list (pair string int64))
    msg (rank_bits a) (rank_bits b)

(* Every read of the view against the same read of a frozen index. *)
let check_view_against msg view idx =
  check Alcotest.int (msg ^ ": doc_count") (Index.doc_count idx)
    (Live_index.doc_count view);
  List.iter
    (fun level ->
      List.iter
        (fun terms ->
          let label =
            Printf.sprintf "%s l%d [%s]" msg level (String.concat "," terms)
          in
          List.iter
            (fun t ->
              check Alcotest.int
                (Printf.sprintf "%s df %s" label t)
                (Index.df idx ~level t)
                (Live_index.df view ~level t);
              check Alcotest.int64
                (Printf.sprintf "%s idf %s" label t)
                (Int64.bits_of_float (Index.idf idx ~level t))
                (Int64.bits_of_float (Live_index.idf view ~level t));
              check Alcotest.bool
                (Printf.sprintf "%s lookup %s" label t)
                true
                (Index.lookup idx ~level t = Live_index.lookup view ~level t))
            terms;
          check_rank (label ^ " scores")
            (Index.score_entries idx ~level terms)
            (Live_index.score_entries view ~level terms);
          check_rank (label ^ " topk")
            (Index.top_k idx ~level ~k:4 terms)
            (Live_index.top_k view ~level ~k:4 terms);
          check
            Alcotest.(list string)
            (label ^ " matching")
            (Index.matching_docs idx ~level terms)
            (Live_index.matching_docs view ~level terms))
        probe_terms)
    probe_levels

let check_view_vs_frozen msg view =
  check_view_against msg view (Live_index.to_index view)

(* ------------------------------------------------------------------ *)
(* LSM differential: every memtable/seal/merge state answers exactly
   like a frozen build of the same entries. *)

let test_lsm_differential () =
  let lsm = Live_index.create ~seal_threshold:2 ~fanout:2 () in
  (* An early view pinned before most writes: must stay bit-stable. *)
  let early = ref None in
  List.iteri
    (fun i e ->
      Live_index.add lsm e;
      let view = Live_index.snapshot lsm in
      if i = 2 then
        early :=
          Some (view, rank_bits (Live_index.top_k view ~level:9 ~k:4 []));
      check_view_vs_frozen (Printf.sprintf "after add %d" i) view)
    corpus;
  while Live_index.pending_merges lsm > 0 do
    check Alcotest.bool "maintain ran" true (Live_index.maintain lsm);
    check_view_vs_frozen "after merge" (Live_index.snapshot lsm)
  done;
  check Alcotest.bool "maintain idles when settled" false
    (Live_index.maintain lsm);
  Live_index.seal lsm;
  check_view_vs_frozen "after forced seal" (Live_index.snapshot lsm);
  check
    Alcotest.(list string)
    "entries in insertion order, merge history invisible"
    (List.map (fun (n, _, _) -> n) corpus)
    (List.map
       (fun (n, _, _) -> n)
       (Live_index.entries (Live_index.snapshot lsm)));
  match !early with
  | None -> Alcotest.fail "early view never pinned"
  | Some (view, before) ->
      check
        Alcotest.(list (pair string int64))
        "pinned view unchanged by later writes" before
        (rank_bits (Live_index.top_k view ~level:9 ~k:4 []));
      check Alcotest.int "pinned view kept its doc population" 3
        (List.length (Live_index.entries view))

(* ------------------------------------------------------------------ *)
(* Incremental closure: extending a memoized engine equals preparing
   the extended graph from scratch, sequential and parallel. *)

let check_engines_equal msg a b =
  check Alcotest.(list int) (msg ^ ": nodes") (Engine.nodes b) (Engine.nodes a);
  List.iter
    (fun n ->
      check
        Alcotest.(list int)
        (Printf.sprintf "%s: row %d" msg n)
        (Engine.reachable_set b n) (Engine.reachable_set a n))
    (Engine.nodes a)

let extend_fixture () =
  let spec = Synthetic.spec (Rng.create 21) Synthetic.default_params in
  let base = Engine.of_spec spec in
  let ids = Engine.nodes base in
  let top = List.fold_left max 0 ids in
  let arr = Array.of_list ids in
  let n_new = 6 in
  let nodes = List.init n_new (fun i -> (top + 1 + i, None)) in
  let edges =
    List.concat
      (List.init n_new (fun i ->
           let nid = top + 1 + i in
           let attach = (arr.(i * 7 mod Array.length arr), nid) in
           if i = 0 then [ attach ] else [ attach; (top + i, nid) ]))
  in
  (spec, top, nodes, edges)

let test_extend_differential () =
  let spec, top, nodes, edges = extend_fixture () in
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      (* Incremental path: closure memoized before the extension. *)
      let base = Engine.of_spec spec in
      Engine.materialize_closure ~pool base;
      let incremental = Engine.extend base ~nodes ~edges in
      Engine.materialize_closure ~pool incremental;
      (* From-scratch path: same extension, no memo to maintain. *)
      let scratch = Engine.extend (Engine.of_spec spec) ~nodes ~edges in
      check_engines_equal
        (Printf.sprintf "jobs=%d incremental = scratch" jobs)
        incremental scratch;
      (* The attach point gained its appended descendant chain. *)
      let src = fst (List.hd edges) in
      check Alcotest.bool "attach point reaches first appended node" true
        (Engine.reaches incremental src (top + 1));
      check Alcotest.bool "base engine is untouched" false
        (Engine.mem base (top + 1)))
    [ 1; 4 ]

let test_extend_errors () =
  let spec, top, _, _ = extend_fixture () in
  let base = Engine.of_spec spec in
  let old_a, old_b =
    match Engine.nodes base with
    | a :: b :: _ -> (a, b)
    | _ -> Alcotest.fail "fixture too small"
  in
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail msg
  in
  expect_invalid "duplicate node id must be refused" (fun () ->
      Engine.extend base ~nodes:[ (old_a, None) ] ~edges:[]);
  expect_invalid "edge into the frozen region must be refused" (fun () ->
      Engine.extend base ~nodes:[ (top + 1, None) ] ~edges:[ (old_a, old_b) ]);
  expect_invalid "unknown edge endpoint must be refused" (fun () ->
      Engine.extend base
        ~nodes:[ (top + 1, None) ]
        ~edges:[ (top + 999, top + 1) ])

(* ------------------------------------------------------------------ *)
(* Pinned-generation leakage: a level-0 reader's answers and observer
   counters are bit-identical whether or not hidden (higher-floor)
   writes land in newer generations while it reads. *)

let reader_probe view =
  ( List.map
      (fun ts -> rank_bits (Live_index.top_k view ~level:0 ~k:5 ts))
      probe_terms,
    List.map
      (fun ts -> rank_bits (Live_index.score_entries view ~level:0 ts))
      probe_terms,
    List.map (fun ts -> Live_index.matching_docs view ~level:0 ts) probe_terms,
    List.map
      (fun ts -> List.map (fun t -> Live_index.df view ~level:0 t) ts)
      probe_terms,
    List.map
      (fun ts ->
        List.map
          (fun t -> Int64.bits_of_float (Live_index.idf view ~level:0 t))
          ts)
      probe_terms )

let leakage_scenario ~jobs ~writes =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  in_tmp_dir @@ fun dir ->
  let t = Durable_repo.init dir in
  Fun.protect ~finally:(fun () -> Durable_repo.close t) @@ fun () ->
  ignore (Durable_repo.append t (add_syn_entry "alpha" 31));
  ignore (Durable_repo.append t (add_syn_entry "beta" 32));
  let live = Live_repo.of_store ~pool t in
  let g = Live_repo.pin live in
  Obs.Registry.reset ();
  if writes then
    ignore
      (Live_repo.append_streaming ~pool live
         [ add_hidden_disease "hidden-1"; add_hidden_disease "hidden-2" ]);
  let res = reader_probe g.Live_repo.gen_view in
  let counters = Obs.Registry.observer_counters ~level:0 in
  let current = Live_repo.pin live in
  ( res,
    counters,
    Live_repo.generation live,
    Live_index.doc_count current.Live_repo.gen_view )

let test_pinned_leakage () =
  Obs.Config.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Config.set_enabled false;
      Obs.Registry.reset ())
  @@ fun () ->
  List.iter
    (fun jobs ->
      let quiet, cq, gq, _ = leakage_scenario ~jobs ~writes:false in
      let busy, cb, gb, docs_busy = leakage_scenario ~jobs ~writes:true in
      check Alcotest.bool
        (Printf.sprintf "jobs=%d: reader results bit-identical" jobs)
        true (quiet = busy);
      check Alcotest.bool
        (Printf.sprintf "jobs=%d: reader recorded observer counters" jobs)
        true (cq <> []);
      check Alcotest.bool
        (Printf.sprintf "jobs=%d: observer counters identical" jobs)
        true (cq = cb);
      check Alcotest.int
        (Printf.sprintf "jobs=%d: hidden write published an epoch" jobs)
        (gq + 1) gb;
      (* The writes really landed: the *new* generation carries them. *)
      check Alcotest.int
        (Printf.sprintf "jobs=%d: new generation sees the hidden docs" jobs)
        4 docs_busy)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Streamed-batch crash fuzz: truncate the log at every byte offset.
   Recovery must land on the last *committed* generation — the replay
   horizon only ever sits on a batch boundary (or an immediate record),
   never inside a batch, and the reported generation matches. *)

let test_stream_truncation_fuzz () =
  in_tmp_dir (fun dir ->
      let t = Durable_repo.init dir in
      let shadow = Repository.create () in
      let states = Hashtbl.create 8 in
      let count = ref 0 in
      let note gen =
        Hashtbl.replace states !count (snap shadow, gen)
      in
      let apply ms = List.iter (fun m -> Repository.apply shadow m; incr count) ms in
      note 0;
      (* One immediate append first: both record kinds share the log. *)
      let m0 = add_syn_entry ~params:tiny_params "alpha" 41 in
      ignore (Durable_repo.append t m0);
      apply [ m0 ];
      note 0;
      let batch1 =
        [
          add_syn_entry ~params:tiny_params "beta" 42;
          Repository.Add_execution
            { entry_name = "alpha"; exec = exec_of_stored t "alpha" 43 };
        ]
      in
      let g1 = Durable_repo.append_streaming t batch1 in
      apply batch1;
      note g1;
      let batch2 =
        [
          Repository.Add_execution
            { entry_name = "beta"; exec = exec_of_stored t "beta" 44 };
        ]
      in
      let g2 = Durable_repo.append_streaming t batch2 in
      apply batch2;
      note g2;
      (* "gamma" is created *inside* this batch, so its follow-up
         execution must come from the same physical spec, not from the
         store (it is not there yet). *)
      let spec_g, exec_g = Synthetic.run (Rng.create 45) tiny_params in
      let batch3 =
        [
          Repository.Add_entry
            {
              entry_name = "gamma";
              policy = Policy.make spec_g;
              executions = [ exec_g ];
            };
          Repository.Add_execution
            {
              entry_name = "gamma";
              exec =
                Executor.run spec_g
                  (Synthetic.semantics spec_g)
                  ~inputs:(Synthetic.inputs_for spec_g ~seed:46);
            };
          Repository.Add_execution
            { entry_name = "alpha"; exec = exec_of_stored t "alpha" 47 };
        ]
      in
      let g3 = Durable_repo.append_streaming t batch3 in
      apply batch3;
      note g3;
      Durable_repo.close t;
      check Alcotest.int "three generations committed" 3 g3;
      let seg =
        match Wal.segments dir with
        | [ s ] -> s
        | l -> Alcotest.failf "expected one segment, got %d" (List.length l)
      in
      let image = Wal.read_all seg.Wal.path in
      for b = 0 to String.length image do
        in_tmp_dir (fun dir2 ->
            let store2 = Filename.concat dir2 "store" in
            copy_dir dir store2;
            write_file
              (Filename.concat store2 (Filename.basename seg.Wal.path))
              (String.sub image 0 b);
            let repo, report = Recovery.open_dir store2 in
            (match Hashtbl.find_opt states report.Recovery.replayed with
            | None ->
                Alcotest.failf
                  "offset %d: replay horizon %d sits inside a batch" b
                  report.Recovery.replayed
            | Some (st, gen) ->
                check Alcotest.string
                  (Printf.sprintf "offset %d recovers a sealed generation" b)
                  st (snap repo);
                check Alcotest.int
                  (Printf.sprintf "offset %d generation" b)
                  gen report.Recovery.generation);
            (* Reopening repairs the tail and accepts a fresh stream. *)
            let t2 = Durable_repo.open_dir store2 in
            if report.Recovery.replayed >= 1 then begin
              let g =
                Durable_repo.append_streaming t2
                  [
                    Repository.Add_execution
                      {
                        entry_name = "alpha";
                        exec = exec_of_stored t2 "alpha" 99;
                      };
                  ]
              in
              check Alcotest.int
                (Printf.sprintf "offset %d: generations continue" b)
                (report.Recovery.generation + 1)
                g
            end;
            Durable_repo.close t2)
      done)

(* ------------------------------------------------------------------ *)
(* Background merges are memory-only: the disk image is untouched, a
   pinned generation keeps answering identically, and a crash at any
   point mid-merge recovers the last sealed generation. *)

let test_merge_durability () =
  in_tmp_dir (fun dir ->
      let t = Durable_repo.init dir in
      Fun.protect ~finally:(fun () -> Durable_repo.close t) @@ fun () ->
      let entry i =
        let spec = Synthetic.spec (Rng.create (500 + i)) tiny_params in
        Repository.Add_entry
          {
            entry_name = Printf.sprintf "ent%02d" i;
            policy = Policy.make spec;
            executions = [];
          }
      in
      ignore (Durable_repo.append t (entry 0));
      let live = Live_repo.of_store t in
      for i = 1 to 40 do
        ignore (Live_repo.append_streaming live [ entry i ])
      done;
      check Alcotest.bool "merges are pending" true
        (Live_repo.pending_merges live > 0);
      let segs_before = Live_repo.index_segments live in
      let g = Live_repo.pin live in
      let pinned_before = reader_probe g.Live_repo.gen_view in
      let disk_before = dir_image dir in
      let merged = ref 0 in
      while Live_repo.maintain live do incr merged done;
      check Alcotest.bool "at least one merge ran" true (!merged > 0);
      check Alcotest.int "merge queue drained" 0
        (Live_repo.pending_merges live);
      check Alcotest.bool "segment count shrank" true
        (Live_repo.index_segments live < segs_before);
      check Alcotest.int "same epoch" g.Live_repo.gen_id
        (Live_repo.generation live);
      check Alcotest.bool "pinned generation answers unchanged" true
        (pinned_before = reader_probe g.Live_repo.gen_view);
      check Alcotest.bool "refreshed view answers unchanged" true
        (pinned_before = reader_probe (Live_repo.pin live).Live_repo.gen_view);
      check Alcotest.bool "nothing durable written by merges" true
        (disk_before = dir_image dir);
      (* A crash at any point during merging = recovery of this image. *)
      in_tmp_dir (fun dir2 ->
          let store2 = Filename.concat dir2 "store" in
          copy_dir dir store2;
          let repo, report = Recovery.open_dir store2 in
          check Alcotest.string "crash mid-merge recovers the sealed state"
            (snap g.Live_repo.gen_repo)
            (snap repo);
          check Alcotest.int "recovered generation" 40
            report.Recovery.generation))

(* ------------------------------------------------------------------ *)
(* Acceptance differential: every pinned generation answers exactly
   like a frozen rebuild of that generation — structurally (serialized
   repository) and for ranked search (float-identical top-k) — and
   stays bit-stable after later writes. *)

let test_pinned_vs_frozen_rebuild () =
  in_tmp_dir (fun dir ->
      let t = Durable_repo.init dir in
      Fun.protect ~finally:(fun () -> Durable_repo.close t) @@ fun () ->
      ignore (Durable_repo.append t (add_syn_entry "alpha" 61));
      let live = Live_repo.of_store t in
      let batches =
        [
          [ add_syn_entry "beta" 62; add_syn_entry "gamma" 63 ];
          [ add_hidden_disease "delta" ];
          [
            add_syn_entry "epsilon" 64;
            Repository.Add_execution
              {
                entry_name = "alpha";
                exec = exec_of_stored t "alpha" 65;
              };
          ];
        ]
      in
      let g0 = Live_repo.pin live in
      let pins =
        g0 :: List.map (fun b -> Live_repo.append_streaming live b) batches
      in
      check
        Alcotest.(list int)
        "epochs are monotonic" [ 0; 1; 2; 3 ]
        (List.map (fun (g : Live_repo.generation) -> g.Live_repo.gen_id) pins);
      let structural =
        List.map (fun (g : Live_repo.generation) -> snap g.Live_repo.gen_repo)
          pins
      in
      let ranked =
        List.map
          (fun (g : Live_repo.generation) -> reader_probe g.Live_repo.gen_view)
          pins
      in
      (* Frozen rebuild of each pinned generation, from its own repo. *)
      List.iteri
        (fun i (g : Live_repo.generation) ->
          check_view_against
            (Printf.sprintf "generation %d = frozen rebuild" i)
            g.Live_repo.gen_view
            (Repository.search_index g.Live_repo.gen_repo))
        pins;
      (* Older pins are immutable: identical after all later appends. *)
      List.iteri
        (fun i (g : Live_repo.generation) ->
          check Alcotest.string
            (Printf.sprintf "generation %d structurally stable" i)
            (List.nth structural i)
            (snap g.Live_repo.gen_repo);
          check Alcotest.bool
            (Printf.sprintf "generation %d ranked answers stable" i)
            true
            (List.nth ranked i = reader_probe g.Live_repo.gen_view))
        pins;
      (* The generations really differ (each append is visible). *)
      check Alcotest.int "distinct corpora across generations" 4
        (List.length (List.sort_uniq compare structural)))

let () =
  Alcotest.run "live"
    [
      ( "lsm",
        [ Alcotest.test_case "differential vs frozen" `Quick
            test_lsm_differential ] );
      ( "closure",
        [
          Alcotest.test_case "extend differential (jobs 1 and 4)" `Quick
            test_extend_differential;
          Alcotest.test_case "extend refusals" `Quick test_extend_errors;
        ] );
      ( "leakage",
        [
          Alcotest.test_case "pinned reader vs hidden writes" `Quick
            test_pinned_leakage;
        ] );
      ( "crash",
        [
          Alcotest.test_case "streamed-batch truncation fuzz (every offset)"
            `Quick test_stream_truncation_fuzz;
          Alcotest.test_case "merges write nothing durable" `Quick
            test_merge_durability;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "pinned = frozen rebuild, stable forever" `Quick
            test_pinned_vs_frozen_rebuild;
        ] );
    ]
