(* Tests for Query_ast, Query_eval, Keyword (incl. the paper's Fig. 5),
   Tfidf, Ranking (incl. the leakage attack) and Index. *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Disease = Wfpriv_workloads.Disease

let check = Alcotest.check
let intl = Alcotest.(list int)
let strl = Alcotest.(list string)
let spec = Disease.spec
let exec = Disease.run ()

(* ------------------------------------------------------------------ *)
(* Query_ast *)

let test_ast_printing () =
  let q = Query_ast.before_by_name "Expand SNP Set" "Query OMIM" in
  check Alcotest.string "to_string"
    "before(~\"Expand SNP Set\", ~\"Query OMIM\")"
    (Query_ast.to_string q);
  check Alcotest.int "size" 1 (Query_ast.size q);
  check Alcotest.int "size of composite" 4
    (Query_ast.size (Query_ast.And (q, Query_ast.Not (Query_ast.Node Query_ast.Any))))

(* ------------------------------------------------------------------ *)
(* Query_eval on specification views *)

let test_spec_eval_full () =
  let v = View.full spec in
  (* The paper's example: Expand SNP Set executed before Query OMIM. *)
  check Alcotest.bool "M3 before M6 in full view" true
    (Query_eval.holds_spec v (Query_ast.before_by_name "Expand SNP" "OMIM"));
  check Alcotest.bool "OMIM not before M3" false
    (Query_eval.holds_spec v (Query_ast.before_by_name "OMIM" "Expand SNP"));
  check intl "nodes matching 'PubMed'"
    [ Disease.m7; Disease.m12 ]
    (Query_eval.spec_nodes_matching v (Query_ast.Name_matches "PubMed"));
  check Alcotest.bool "edge M5 -> M6" true
    (Query_eval.holds_spec v
       (Query_ast.Edge (Query_ast.Name_matches "Generate Database", Query_ast.Name_matches "OMIM")));
  check Alcotest.bool "carries disorders" true
    (Query_eval.holds_spec v
       (Query_ast.Carries (Query_ast.Any, Query_ast.Name_matches "Generate Queries", "disorders")))

let test_spec_eval_coarse_hides () =
  let v = View.coarsest spec in
  (* M3 and M6 are invisible at the coarsest view: the query fails. *)
  check Alcotest.bool "hidden modules do not match" false
    (Query_eval.holds_spec v (Query_ast.before_by_name "Expand SNP" "OMIM"));
  (* But their composite ancestors still answer coarser queries. *)
  check Alcotest.bool "M1 before M2" true
    (Query_eval.holds_spec v
       (Query_ast.before_by_name "Genetic Susceptibility" "Disorder Risk"))

let test_spec_eval_connectives () =
  let v = View.full spec in
  let q1 = Query_ast.Node (Query_ast.Name_matches "PubMed") in
  let q2 = Query_ast.Node (Query_ast.Name_matches "nonexistent") in
  check Alcotest.bool "and" false (Query_eval.holds_spec v (Query_ast.And (q1, q2)));
  check Alcotest.bool "or" true (Query_eval.holds_spec v (Query_ast.Or (q2, q1)));
  check Alcotest.bool "not" true (Query_eval.holds_spec v (Query_ast.Not q2));
  check Alcotest.bool "composite_only finds none in full view" false
    (Query_eval.holds_spec v (Query_ast.Node Query_ast.Composite_only));
  check Alcotest.bool "composite_only in coarse view" true
    (Query_eval.holds_spec (View.coarsest spec) (Query_ast.Node Query_ast.Composite_only))

let test_spec_eval_tau_predicates () =
  let full = View.full spec in
  (* Inside is a τ-edge predicate: which visible modules live under W3? *)
  check intl "modules inside W3"
    [ Disease.m9; Disease.m10; Disease.m11; Disease.m12; Disease.m13;
      Disease.m14; Disease.m15 ]
    (Query_eval.eval_spec full (Query_ast.Inside (Query_ast.Any, "W3"))).Query_eval.nodes;
  check Alcotest.bool "PubMed module inside W4" true
    (Query_eval.holds_spec full
       (Query_ast.Inside (Query_ast.Name_matches "PubMed", "W4")));
  (* M12 'Search PubMed Central' is inside W3, not W4. *)
  check intl "only M7 is the W4 PubMed module" [ Disease.m7 ]
    (Query_eval.eval_spec full
       (Query_ast.Inside (Query_ast.Name_matches "PubMed", "W4"))).Query_eval.nodes;
  check Alcotest.bool "unknown workflow matches nothing" false
    (Query_eval.holds_spec full (Query_ast.Inside (Query_ast.Any, "W9")));
  (* Inside under W2 includes W4's modules (descendant workflow). *)
  check Alcotest.bool "descendants included" true
    (Query_eval.holds_spec full
       (Query_ast.Inside (Query_ast.Name_matches "OMIM", "W2")))

(* ------------------------------------------------------------------ *)
(* Query_eval on execution views *)

let test_exec_eval () =
  let full = Exec_view.full exec in
  check Alcotest.bool "M3 before M6 in execution" true
    (Query_eval.holds_exec full (Query_ast.before_by_name "Expand SNP" "OMIM"));
  let coarse = Exec_view.coarsest exec in
  check Alcotest.bool "hidden in coarse execution view" false
    (Query_eval.holds_exec coarse (Query_ast.before_by_name "Expand SNP" "OMIM"));
  (* Collapsed composites match through their module. *)
  check Alcotest.bool "S1:M1 matches Genetic Susceptibility" true
    (Query_eval.holds_exec coarse
       (Query_ast.Node (Query_ast.Name_matches "Genetic Susceptibility")));
  check Alcotest.bool "carries prognosis into O" true
    (Query_eval.holds_exec coarse
       (Query_ast.Carries (Query_ast.Name_matches "Disorder Risk", Query_ast.Any, "prognosis")))

let test_exec_eval_refines () =
  let full = Exec_view.full exec in
  (* M1 begin/end coexist with its internals in the full execution view:
     refines sees τ-descendancy. *)
  check Alcotest.bool "M1 refines to Query OMIM" true
    (Query_eval.holds_exec full
       (Query_ast.Refines
          (Query_ast.Name_matches "Genetic Susceptibility", Query_ast.Name_matches "OMIM")));
  check Alcotest.bool "M2 does not refine to OMIM" false
    (Query_eval.holds_exec full
       (Query_ast.Refines
          (Query_ast.Name_matches "Disorder Risk", Query_ast.Name_matches "OMIM")));
  check Alcotest.bool "M2 refines to the private-DB update" true
    (Query_eval.holds_exec full
       (Query_ast.Refines
          (Query_ast.Name_matches "Disorder Risk", Query_ast.Name_matches "Update Private")));
  (* Collapsed composites hide their internals from refines. *)
  let coarse = Exec_view.coarsest exec in
  check Alcotest.bool "coarse view hides the refinement" false
    (Query_eval.holds_exec coarse
       (Query_ast.Refines
          (Query_ast.Name_matches "Genetic Susceptibility", Query_ast.Name_matches "OMIM")));
  (* Inside works on executions too (the collapsed M2 is owned by W1). *)
  check Alcotest.bool "inside W1 on coarse view" true
    (Query_eval.holds_exec coarse (Query_ast.Inside (Query_ast.Any, "W1")));
  check Alcotest.bool "inside W3 invisible on coarse view" false
    (Query_eval.holds_exec coarse (Query_ast.Inside (Query_ast.Any, "W3")))

let test_exec_provenance_of_matches () =
  let full = Exec_view.full exec in
  let prov =
    Query_eval.provenance_of_matches full (Query_ast.Name_matches "Query OMIM")
  in
  let labels = List.map (Exec_view.node_label full) prov in
  check strl "provenance of Query OMIM"
    [ "I"; "S1:M1 begin"; "S2:M3"; "S3:M4 begin"; "S4:M5"; "S5:M6" ]
    (List.sort compare labels)

(* ------------------------------------------------------------------ *)
(* Keyword search: the paper's Fig. 5 *)

let test_fig5_specific_strategy () =
  match Keyword.search ~strategy:`Specific spec [ "database"; "disorder risk" ] with
  | None -> Alcotest.fail "query should match"
  | Some a ->
      check strl "prefix expands W1, W2, W4 but not W3" [ "W1"; "W2"; "W4" ]
        (View.prefix a.Keyword.view);
      (* Fig. 5's visible modules: I, O, M2 (collapsed), M3, M5..M8. *)
      check intl "visible modules"
        (List.sort compare
           [
             Ids.input_module; Ids.output_module; Disease.m2; Disease.m3;
             Disease.m5; Disease.m6; Disease.m7; Disease.m8;
           ])
        (Keyword.answer_modules a);
      (* M2 witnesses "disorder risk" while staying collapsed. *)
      let disorder = List.nth a.Keyword.matches 1 in
      check intl "disorder-risk witness is M2" [ Disease.m2 ]
        disorder.Keyword.witnesses

let test_minimal_strategy () =
  match Keyword.search ~strategy:`Minimal spec [ "database"; "disorder risk" ] with
  | None -> Alcotest.fail "query should match"
  | Some a ->
      (* M4 "Consult External Databases" witnesses "database" at depth 1:
         the minimal view only expands W2. *)
      check strl "minimal prefix" [ "W1"; "W2" ] (View.prefix a.Keyword.view)

let test_keyword_no_match () =
  check Alcotest.bool "unmatchable keyword" true
    (Keyword.search spec [ "database"; "quantum" ] = None)

let test_keyword_restriction () =
  (* Restricting away every module matching "database" below level:
     simulates privacy, forcing None. *)
  let deny m = not (Module_def.matches (Spec.find_module spec m) "database") in
  check Alcotest.bool "restricted search fails" true
    (Keyword.search ~restrict_to:deny spec [ "database" ] = None);
  (* Restriction that only kills the deep witnesses flips the minimal
     answer to a shallower one. *)
  match
    Keyword.search ~strategy:`Minimal
      ~restrict_to:(fun m -> m <> Disease.m4)
      spec [ "database" ]
  with
  | None -> Alcotest.fail "still matchable via W4 modules"
  | Some a ->
      check strl "forced into W4" [ "W1"; "W2"; "W4" ] (View.prefix a.Keyword.view)

let test_keyword_empty_rejected () =
  Alcotest.check_raises "empty keyword list"
    (Invalid_argument "Keyword.search: empty keyword list") (fun () ->
      ignore (Keyword.search spec []))

(* ------------------------------------------------------------------ *)
(* Tfidf *)

let corpus =
  Tfidf.build
    [
      ("doc1", [ "snp"; "snp"; "disorder" ]);
      ("doc2", [ "snp"; "pathway" ]);
      ("doc3", [ "pathway"; "pathway"; "pathway" ]);
    ]

let test_tfidf_basics () =
  check Alcotest.int "tf" 2 (Tfidf.tf corpus ~doc:"doc1" "snp");
  check Alcotest.int "tf case-insensitive" 2 (Tfidf.tf corpus ~doc:"doc1" "SNP");
  check Alcotest.int "tf missing" 0 (Tfidf.tf corpus ~doc:"doc3" "snp");
  check Alcotest.int "docs" 3 (Tfidf.nb_docs corpus);
  check Alcotest.bool "rarer term has higher idf" true
    (Tfidf.idf corpus "disorder" > Tfidf.idf corpus "snp");
  check Alcotest.bool "score favors doc1 for snp" true
    (Tfidf.score corpus ~doc:"doc1" [ "snp" ]
    > Tfidf.score corpus ~doc:"doc2" [ "snp" ]);
  check Alcotest.bool "unknown term scores 0" true
    (Tfidf.score corpus ~doc:"doc1" [ "quantum" ] = 0.0)

(* ------------------------------------------------------------------ *)
(* Ranking and the leakage attack *)

let test_rank_deterministic () =
  let entries =
    [
      { Ranking.doc = "b"; score = 1.0 };
      { Ranking.doc = "a"; score = 1.0 };
      { Ranking.doc = "c"; score = 2.0 };
    ]
  in
  check strl "order" [ "c"; "a"; "b" ]
    (List.map (fun (e : Ranking.entry) -> e.Ranking.doc) (Ranking.rank entries));
  check strl "top 2" [ "c"; "a" ]
    (List.map (fun (e : Ranking.entry) -> e.Ranking.doc) (Ranking.top_k 2 entries));
  check (Alcotest.option Alcotest.int) "position" (Some 2)
    (Ranking.position (Ranking.rank entries) "b")

let test_quantize () =
  let entries = [ { Ranking.doc = "a"; score = 3.7 } ] in
  match Ranking.quantize ~width:2.0 entries with
  | [ e ] -> check (Alcotest.float 0.0001) "floored to bucket" 2.0 e.Ranking.score
  | _ -> Alcotest.fail "unexpected"

let test_quantize_negative () =
  (* -3.7 belongs to bucket [-4, -2): flooring gives -4; truncation
     toward zero would misfile it at -2. *)
  match Ranking.quantize ~width:2.0 [ { Ranking.doc = "a"; score = -3.7 } ] with
  | [ e ] ->
      check (Alcotest.float 0.0001) "negative score floored" (-4.0)
        e.Ranking.score
  | _ -> Alcotest.fail "unexpected"

let test_leakage_attack_exact () =
  (* Target doc t with base 0; competitor d has known score 5; idf 1.
     Published ranking [t; d] implies tf > 5 (and tf <= 10): interval
     [6, 10]. *)
  let i =
    Ranking.infer_masked_tf ~target_base:0.0
      ~others:[ ("d", 5.0) ]
      ~idf:1.0 ~max_tf:10 ~ranking:[ "t"; "d" ] ~target:"t"
  in
  check Alcotest.int "lo" 6 i.Ranking.lo;
  check Alcotest.int "hi" 10 i.Ranking.hi;
  check Alcotest.int "width" 5 (Ranking.width i);
  (* Reverse order bounds from above (ties break toward 'd' < 't'). *)
  let j =
    Ranking.infer_masked_tf ~target_base:0.0
      ~others:[ ("d", 5.0) ]
      ~idf:1.0 ~max_tf:10 ~ranking:[ "d"; "t" ] ~target:"t"
  in
  check Alcotest.int "upper bound" 5 j.Ranking.hi;
  check Alcotest.int "lower bound 0" 0 j.Ranking.lo

let test_leakage_attack_quantized () =
  (* True tf = 7 against a competitor at 5, idf 1. The exact system
     publishes [t; d] (7 > 5); the quantised system (width 4) buckets
     both to 4 and publishes [d; t] by the tie rule. Compare what each
     published ranking lets the adversary conclude. *)
  let others = [ ("d", 5.0) ] in
  let exact =
    Ranking.infer_masked_tf ~target_base:0.0 ~others ~idf:1.0 ~max_tf:10
      ~ranking:[ "t"; "d" ] ~target:"t"
  in
  check Alcotest.int "exact lo" 6 exact.Ranking.lo;
  check Alcotest.int "exact width" 5 (Ranking.width exact);
  let fuzzy =
    Ranking.infer_masked_tf_quantized ~bucket_width:4.0 ~target_base:0.0
      ~others ~idf:1.0 ~max_tf:10 ~ranking:[ "d"; "t" ] ~target:"t"
  in
  (* bucket(s) <= 4 (tie resolves d-first): tf in [0, 7]. *)
  check Alcotest.int "quantised lo" 0 fuzzy.Ranking.lo;
  check Alcotest.int "quantised hi" 7 fuzzy.Ranking.hi;
  check Alcotest.bool "true tf feasible in both" true
    (exact.Ranking.lo <= 7 && 7 <= exact.Ranking.hi
    && fuzzy.Ranking.lo <= 7 && 7 <= fuzzy.Ranking.hi);
  check Alcotest.bool "quantised interval wider" true
    (Ranking.width fuzzy > Ranking.width exact)

let prop_true_tf_always_feasible =
  QCheck.Test.make ~name:"the true tf always lies in the inferred interval"
    ~count:100
    QCheck.(triple (int_bound 10) (int_bound 20) (int_bound 20))
    (fun (tf, s1, s2) ->
      let idf = 1.5 in
      let target_score = float_of_int tf *. idf in
      let others = [ ("d1", float_of_int s1); ("d2", float_of_int s2) ] in
      let entries =
        { Ranking.doc = "t"; score = target_score }
        :: List.map (fun (d, s) -> { Ranking.doc = d; score = s }) others
      in
      let ranking =
        List.map (fun (e : Ranking.entry) -> e.Ranking.doc) (Ranking.rank entries)
      in
      let i =
        Ranking.infer_masked_tf ~target_base:0.0 ~others ~idf ~max_tf:10
          ~ranking ~target:"t"
      in
      i.Ranking.lo <= tf && tf <= i.Ranking.hi)

let prop_quantized_leaks_less =
  QCheck.Test.make
    ~name:"quantised ranking never narrows the adversary's interval"
    ~count:100
    QCheck.(triple (int_bound 10) (int_bound 20) (pair (int_bound 20) (int_bound 3)))
    (fun (tf, s1, (s2, wsel)) ->
      let idf = 1.0 in
      let bucket_width = float_of_int (wsel + 2) in
      let others = [ ("d1", float_of_int s1); ("d2", float_of_int s2) ] in
      let quantized_entries =
        Ranking.quantize ~width:bucket_width
          ({ Ranking.doc = "t"; score = float_of_int tf *. idf }
          :: List.map (fun (d, s) -> { Ranking.doc = d; score = s }) others)
      in
      let ranking =
        List.map
          (fun (e : Ranking.entry) -> e.Ranking.doc)
          (Ranking.rank quantized_entries)
      in
      let fuzzy =
        Ranking.infer_masked_tf_quantized ~bucket_width ~target_base:0.0 ~others
          ~idf ~max_tf:10 ~ranking ~target:"t"
      in
      fuzzy.Ranking.lo <= tf && tf <= fuzzy.Ranking.hi)

(* ------------------------------------------------------------------ *)
(* Index *)

let privilege = Privilege.make spec [ ("W2", 1); ("W3", 2); ("W4", 3) ]
let entries = [ ("disease", spec, privilege) ]
let index = Index.build entries

let test_index_lookup_levels () =
  (* "omim" lives on M6 inside W4: requires level 3. *)
  check Alcotest.int "hidden at level 0" 0
    (List.length (Index.lookup index ~level:0 "omim"));
  check Alcotest.int "visible at level 3" 1
    (List.length (Index.lookup index ~level:3 "omim"));
  (* "risk" is on M2 at the top level: public. *)
  check Alcotest.int "public posting" 1
    (List.length (Index.lookup index ~level:0 "risk"));
  check Alcotest.bool "posting carries module id" true
    (match Index.lookup index ~level:3 "omim" with
    | [ p ] -> p.Index.module_id = Disease.m6
    | _ -> false)

let test_index_matches_scan () =
  List.iter
    (fun level ->
      List.iter
        (fun term ->
          let a = Index.lookup index ~level term in
          let b = Index.lookup_scan entries ~level term in
          check Alcotest.int
            (Printf.sprintf "scan agrees on %S at %d" term level)
            (List.length b) (List.length a))
        [ "omim"; "risk"; "pubmed"; "private"; "query"; "nonexistent" ])
    [ 0; 1; 2; 3 ]

(* Satellite property (PR 2): whatever partitions a lookup merges, the
   result is strictly sorted by (doc, module) — i.e. sorted and
   deduplicated — and identical to the index-free scan. *)
let prop_index_merge_sorted_dedup =
  let clinical_spec = Wfpriv_workloads.Clinical.spec in
  let random_privilege spec levels =
    let ws =
      List.filter (fun w -> w <> Spec.root spec) (Spec.workflow_ids spec)
    in
    Privilege.make spec
      (List.mapi (fun i w -> (w, levels.(i mod Array.length levels))) ws)
  in
  let all_terms =
    List.sort_uniq compare
      (List.concat_map
         (fun s ->
           List.concat_map
             (fun m -> Module_def.terms (Spec.find_module s m))
             (Spec.module_ids s))
         [ spec; clinical_spec ])
  in
  let rec strictly_sorted = function
    | a :: (b :: _ as tl) ->
        compare
          (a.Index.doc, a.Index.module_id)
          (b.Index.doc, b.Index.module_id)
        < 0
        && strictly_sorted tl
    | _ -> true
  in
  QCheck.Test.make
    ~name:"index merges stay sorted, deduplicated and scan-equal" ~count:100
    QCheck.(
      triple
        (array_of_size (Gen.return 6) (int_bound 3))
        (int_bound 4) small_nat)
    (fun (levels, level, ti) ->
      QCheck.assume (Array.length levels > 0);
      let entries =
        [
          ("disease", spec, random_privilege spec levels);
          ("clinical", clinical_spec, random_privilege clinical_spec levels);
        ]
      in
      let index = Index.build entries in
      let term = List.nth all_terms (ti mod List.length all_terms) in
      let merged = Index.lookup index ~level term in
      strictly_sorted merged
      && merged = Index.lookup_scan entries ~level term)

let test_per_level_index () =
  let pl = Index.build_per_level ~levels:[ 0; 1; 2; 3 ] entries in
  check Alcotest.int "same answers as shared index" 1
    (List.length (Index.lookup_per_level pl ~level:3 "omim"));
  check Alcotest.int "level 0 index hides omim" 0
    (List.length (Index.lookup_per_level pl ~level:0 "omim"));
  (* The strawman's cost: materialised postings far exceed the shared
     index's. *)
  check Alcotest.bool "space overhead" true
    (Index.per_level_postings pl > Index.nb_postings index)

(* ------------------------------------------------------------------ *)
(* Compressed postings: cursors, conjunctions and block-max WAND over
   random raw corpora, checked differentially against index-free
   references at every privilege level. *)

let doc_pool =
  [| "alpha"; "beta"; "delta"; "gamma"; "kappa"; "omega"; "sigma"; "zeta" |]

let term_pool = [| "t0"; "t1"; "t2"; "t3"; "t4"; "t5" |]

(* A raw corpus from a list of small int quadruples; duplicates are
   frequencies, exactly as Module_def.terms duplicates are. *)
let raw_corpus quads =
  List.map
    (fun (t, d, m, l) ->
      ( term_pool.(t mod Array.length term_pool),
        {
          Index.doc = doc_pool.(d mod Array.length doc_pool);
          module_id = m mod 7;
          min_level = l mod 4;
        } ))
    quads

let raw_gen =
  QCheck.(
    list_of_size (Gen.int_range 1 60)
      (quad (int_bound 7) (int_bound 7) (int_bound 6) (int_bound 3)))

let scan_raw raw ~level term =
  List.filter_map
    (fun (t, p) ->
      if String.equal t term && p.Index.min_level <= level then Some p
      else None)
    raw
  |> List.sort (fun a b ->
         compare
           (a.Index.doc, a.Index.module_id, a.Index.min_level)
           (b.Index.doc, b.Index.module_id, b.Index.min_level))

let prop_cursor_roundtrip =
  QCheck.Test.make
    ~name:"compressed lookups and cursors round-trip the raw scan" ~count:200
    raw_gen
    (fun quads ->
      let raw = raw_corpus quads in
      let index = Index.build_postings raw in
      List.for_all
        (fun level ->
          Array.for_all
            (fun term ->
              let scan = scan_raw raw ~level term in
              (* Multiset-and-order equality, duplicates included. *)
              Index.lookup index ~level term = scan
              &&
              (* The cursor streams (doc, total frequency) ascending. *)
              let expect =
                List.fold_left
                  (fun acc p ->
                    match acc with
                    | (d, n) :: tl when String.equal d p.Index.doc ->
                        (d, n + 1) :: tl
                    | _ -> (p.Index.doc, 1) :: acc)
                  [] scan
                |> List.rev
              in
              let rec drain c acc =
                match Index.cursor_next c with
                | None -> List.rev acc
                | Some x -> drain c (x :: acc)
              in
              drain (Index.cursor index ~level term) [] = expect)
            term_pool)
        [ 0; 1; 2; 3; 4 ])

let prop_matching_docs =
  QCheck.Test.make
    ~name:"galloping conjunctive intersection equals the naive conjunction"
    ~count:200
    QCheck.(pair raw_gen (list_of_size (Gen.int_range 1 3) (int_bound 7)))
    (fun (quads, tidx) ->
      let raw = raw_corpus quads in
      let index = Index.build_postings raw in
      let terms = List.map (fun i -> term_pool.(i mod Array.length term_pool)) tidx in
      List.for_all
        (fun level ->
          let naive =
            Array.to_list doc_pool |> List.sort compare
            |> List.filter (fun d ->
                   List.for_all
                     (fun t ->
                       List.exists
                         (fun p -> String.equal p.Index.doc d)
                         (scan_raw raw ~level t))
                     terms)
          in
          Index.matching_docs index ~level terms = naive)
        [ 0; 1; 2; 3 ])

let prop_wand_differential =
  QCheck.Test.make
    ~name:"top_k_wand returns exactly Ranking.top_k at all k and levels"
    ~count:200
    QCheck.(pair raw_gen (list_of_size (Gen.int_range 1 4) (int_bound 7)))
    (fun (quads, tidx) ->
      let raw = raw_corpus quads in
      let index = Index.build_postings raw in
      let terms = List.map (fun i -> term_pool.(i mod Array.length term_pool)) tidx in
      List.for_all
        (fun level ->
          let exhaustive = Index.score_entries index ~level terms in
          List.for_all
            (fun k ->
              Index.top_k index ~level ~k terms = Ranking.top_k k exhaustive)
            [ 0; 1; 2; 3; 5; 10 ])
        [ 0; 1; 2; 3; 4 ])

(* The spec-built index agrees with the TF/IDF model it claims to
   implement: per level, the corpus of every module whose privilege
   floor is <= the level (the witness-admissibility predicate). *)
let test_index_scores_match_corpus () =
  let entries2 =
    [
      ("disease", spec, privilege);
      ( "clinical",
        Wfpriv_workloads.Clinical.spec,
        Privilege.make Wfpriv_workloads.Clinical.spec [] );
    ]
  in
  let idx = Index.build entries2 in
  List.iter
    (fun level ->
      let corpus =
        Tfidf.build
          (List.map
             (fun (name, spec, privilege) ->
               let floor = Access_gate.module_floors privilege in
               ( name,
                 List.concat_map
                   (fun m ->
                     if floor m <= level then
                       Module_def.terms (Spec.find_module spec m)
                     else [])
                   (Spec.module_ids spec) ))
             entries2)
      in
      List.iter
        (fun term ->
          List.iter
            (fun (e : Ranking.entry) ->
              check (Alcotest.float 1e-12)
                (Printf.sprintf "score of %s for %S at %d" e.Ranking.doc term
                   level)
                (Tfidf.score corpus ~doc:e.Ranking.doc [ term ])
                e.Ranking.score)
            (Index.score_entries idx ~level [ term ]))
        [ "risk"; "omim"; "patient"; "database" ])
    [ 0; 1; 2; 3 ]

let () =
  Alcotest.run "query"
    [
      ("ast", [ Alcotest.test_case "printing/size" `Quick test_ast_printing ]);
      ( "spec_eval",
        [
          Alcotest.test_case "full view" `Quick test_spec_eval_full;
          Alcotest.test_case "coarse view hides" `Quick
            test_spec_eval_coarse_hides;
          Alcotest.test_case "connectives" `Quick test_spec_eval_connectives;
          Alcotest.test_case "tau predicates (inside)" `Quick
            test_spec_eval_tau_predicates;
        ] );
      ( "exec_eval",
        [
          Alcotest.test_case "execution views" `Quick test_exec_eval;
          Alcotest.test_case "refines / inside" `Quick test_exec_eval_refines;
          Alcotest.test_case "provenance of matches" `Quick
            test_exec_provenance_of_matches;
        ] );
      ( "keyword",
        [
          Alcotest.test_case "Fig. 5 via `Specific" `Quick
            test_fig5_specific_strategy;
          Alcotest.test_case "`Minimal prefers M4" `Quick test_minimal_strategy;
          Alcotest.test_case "no match" `Quick test_keyword_no_match;
          Alcotest.test_case "privacy restriction" `Quick test_keyword_restriction;
          Alcotest.test_case "empty rejected" `Quick test_keyword_empty_rejected;
        ] );
      ("tfidf", [ Alcotest.test_case "basics" `Quick test_tfidf_basics ]);
      ( "ranking",
        [
          Alcotest.test_case "deterministic rank" `Quick test_rank_deterministic;
          Alcotest.test_case "quantize" `Quick test_quantize;
          Alcotest.test_case "leakage attack (exact)" `Quick
            test_leakage_attack_exact;
          Alcotest.test_case "leakage attack (quantised)" `Quick
            test_leakage_attack_quantized;
          Alcotest.test_case "quantize negative" `Quick test_quantize_negative;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_true_tf_always_feasible; prop_quantized_leaks_less ] );
      ( "index",
        [
          Alcotest.test_case "level filtering" `Quick test_index_lookup_levels;
          Alcotest.test_case "matches linear scan" `Quick test_index_matches_scan;
          Alcotest.test_case "per-level strawman" `Quick test_per_level_index;
          Alcotest.test_case "scores match corpus" `Quick
            test_index_scores_match_corpus;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_index_merge_sorted_dedup;
              prop_cursor_roundtrip;
              prop_matching_docs;
              prop_wand_differential;
            ] );
    ]
