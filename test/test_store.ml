(* Tests for Session (interactive zooming), Repository.provenance_search,
   and Repo_store (whole-repository persistence). *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Disease = Wfpriv_workloads.Disease
module Clinical = Wfpriv_workloads.Clinical
module Rng = Wfpriv_workloads.Rng
module Repo_store = Wfpriv_store.Repo_store

let check = Alcotest.check
let strl = Alcotest.(list string)
let exec = Disease.run ()
let privilege = Privilege.make Disease.spec [ ("W2", 1); ("W3", 2); ("W4", 3) ]

(* ------------------------------------------------------------------ *)
(* Session *)

let node_showing session m =
  let v = Session.current session in
  List.find
    (fun n -> Exec_view.module_of_node v n = Some m)
    (Exec_view.nodes v)

let test_session_allowed_zoom () =
  let s = Session.start privilege ~level:1 exec in
  check strl "starts coarse" [ "W1" ] (Session.prefix s);
  (match Session.zoom_in s (node_showing s Disease.m1) with
  | Session.Ok _ -> ()
  | _ -> Alcotest.fail "level 1 may open W2");
  check strl "after zoom" [ "W1"; "W2" ] (Session.prefix s);
  check Alcotest.bool "invariant holds" true (Session.within_access_view s);
  (* Zoom back out. *)
  match Session.zoom_out s "W2" with
  | Session.Ok _ -> check strl "collapsed again" [ "W1" ] (Session.prefix s)
  | _ -> Alcotest.fail "zoom out failed"

let test_session_denied_zoom () =
  let s = Session.start privilege ~level:1 exec in
  (match Session.zoom_in s (node_showing s Disease.m2) with
  | Session.Denied required -> check Alcotest.int "W3 needs level 2" 2 required
  | _ -> Alcotest.fail "level 1 must not open W3");
  check strl "view unchanged" [ "W1" ] (Session.prefix s);
  check Alcotest.int "denial recorded" 1
    (List.length (Session.denied_attempts s));
  (* Nested denial: even after opening W2, W4 needs level 3. *)
  ignore (Session.zoom_in s (node_showing s Disease.m1));
  match Session.zoom_in s (node_showing s Disease.m4) with
  | Session.Denied required -> check Alcotest.int "W4 needs level 3" 3 required
  | _ -> Alcotest.fail "level 1 must not open W4"

let test_session_not_expandable () =
  let s = Session.start privilege ~level:3 exec in
  let v = Session.current s in
  let input_node =
    List.find (fun n -> Exec_view.module_of_node v n = None) (Exec_view.nodes v)
  in
  check Alcotest.bool "I is not expandable" true
    (Session.zoom_in s input_node = Session.Not_expandable);
  check Alcotest.bool "unknown node" true
    (Session.zoom_in s 9999 = Session.Not_expandable);
  check Alcotest.bool "zoom_out of root refused" true
    (Session.zoom_out s "W1" = Session.Not_expandable)

let test_session_jump_to_access_view () =
  let s = Session.start privilege ~level:2 exec in
  ignore (Session.zoom_to_access_view s);
  check strl "access view for level 2" [ "W1"; "W2"; "W3" ] (Session.prefix s);
  check Alcotest.bool "invariant" true (Session.within_access_view s)

let prop_session_never_escapes =
  (* Arbitrary navigation never exceeds the access view. *)
  QCheck.Test.make ~name:"sessions never exceed the access view" ~count:50
    (QCheck.pair (QCheck.int_bound 3) (QCheck.list_of_size (QCheck.Gen.int_bound 12) (QCheck.int_bound 30)))
    (fun (level, moves) ->
      let s = Session.start privilege ~level exec in
      List.iter
        (fun mv ->
          let nodes = Exec_view.nodes (Session.current s) in
          if mv mod 3 = 0 && List.length nodes > 0 then
            ignore (Session.zoom_in s (List.nth nodes (mv mod List.length nodes)))
          else if mv mod 3 = 1 then
            ignore (Session.zoom_out s (Printf.sprintf "W%d" (1 + (mv mod 4))))
          else ignore (Session.zoom_to_access_view s))
        moves;
      Session.within_access_view s)

(* ------------------------------------------------------------------ *)
(* Repository.provenance_search *)

let make_repo () =
  let repo = Repository.create () in
  let policy =
    Policy.make
      ~expand_levels:[ ("W2", 1); ("W3", 2); ("W4", 3) ]
      ~data_levels:[ ("pmc_query", 2) ]
      Disease.spec
  in
  Repository.add repo ~name:"disease" ~policy ~executions:[ exec; Disease.run () ] ();
  Repository.add repo ~name:"clinical" ~policy:Clinical.policy
    ~executions:[ Clinical.run () ] ();
  repo

let test_provenance_search_basic () =
  let repo = make_repo () in
  let hits = Repository.provenance_search repo ~level:3 [ "omim" ] in
  check Alcotest.int "both disease runs hit" 2 (List.length hits);
  List.iter
    (fun h ->
      check Alcotest.string "entry" "disease" h.Repository.prov_entry;
      check strl "answer view opens W2/W4"
        [ "W1"; "W2"; "W4" ]
        (Exec_view.prefix h.Repository.prov_answer.Exec_search.view))
    hits

let test_provenance_search_privacy () =
  let repo = make_repo () in
  (* At level 0 the OMIM witness is invisible: no hits. *)
  check Alcotest.int "hidden at level 0" 0
    (List.length (Repository.provenance_search repo ~level:0 [ "omim" ]));
  (* "pmc_query" is a data witness with data level 2: masked below. *)
  check Alcotest.int "data witness masked at level 1" 0
    (List.length (Repository.provenance_search repo ~level:1 [ "pmc_query" ]));
  check Alcotest.int "data witness readable at level 2" 2
    (List.length (Repository.provenance_search repo ~level:2 [ "pmc_query" ]));
  (* The answer view is capped at the access view even when the witness
     needs a deeper prefix. *)
  let hits = Repository.provenance_search repo ~level:2 [ "pmc_query" ] in
  List.iter
    (fun h ->
      check Alcotest.bool "capped below W4" true
        (not
           (List.mem "W4"
              (Exec_view.prefix h.Repository.prov_answer.Exec_search.view))))
    hits

let test_provenance_search_across_entries () =
  let repo = make_repo () in
  let hits = Repository.provenance_search repo ~level:3 [ "report" ] in
  check Alcotest.bool "clinical entry matches" true
    (List.exists (fun h -> h.Repository.prov_entry = "clinical") hits)

(* ------------------------------------------------------------------ *)
(* Materialized per-level repositories (the paper's strawman) *)

let test_materialized_space_overhead () =
  let repo = make_repo () in
  let m = Materialized.materialize repo ~levels:[ 0; 1; 2; 3 ] in
  check (Alcotest.list Alcotest.int) "levels" [ 0; 1; 2; 3 ]
    (Materialized.levels m);
  check Alcotest.bool "four copies cost more than one integrated store" true
    (Materialized.space m > Materialized.integrated_space repo)

let test_materialized_consistency_breaks () =
  let repo = make_repo () in
  let m = Materialized.materialize repo ~levels:[ 0; 2 ] in
  check Alcotest.bool "fresh materialisation is consistent" true
    (Materialized.consistent m repo);
  (* The master moves on; the copies silently go stale. *)
  Repository.add_execution repo ~name:"disease" (Disease.run ());
  check Alcotest.bool "stale after an update" false
    (Materialized.consistent m repo);
  (* Repairing requires touching every copy. *)
  let m' = Materialized.refresh_entry m repo "disease" in
  check Alcotest.bool "consistent after refresh" true
    (Materialized.consistent m' repo)

let test_materialized_search () =
  let repo = make_repo () in
  let m = Materialized.materialize repo ~levels:[ 0; 3 ] in
  (* "omim" (M6, deep in W4) is absent from the level-0 copy but present
     in the level-3 copy. *)
  check Alcotest.int "level-0 copy hides omim" 0
    (List.length (Materialized.search_copy m ~level:0 "omim"));
  check Alcotest.int "level-3 copy serves omim" 1
    (List.length (Materialized.search_copy m ~level:3 "omim"));
  (match Materialized.search_copy m ~level:1 "omim" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unmaterialised level must be rejected");
  (* And the copies agree with the integrated store's answers. *)
  check Alcotest.int "matches integrated search" 1
    (List.length (Repository.keyword_search repo ~level:3 [ "omim" ]))

(* ------------------------------------------------------------------ *)
(* Repo_store *)

let test_store_roundtrip () =
  let repo = make_repo () in
  let doc = Repo_store.to_string ~pretty:true repo in
  let loaded = Repo_store.of_string doc in
  check strl "entry names survive" (Repository.names repo)
    (Repository.names loaded);
  let e = Repository.find loaded "disease" in
  check Alcotest.int "executions survive" 2 (List.length e.Repository.executions);
  (* Loaded executions are bound to the loaded policy's spec. *)
  List.iter
    (fun exec ->
      check Alcotest.bool "spec physically shared" true
        (Execution.spec exec == Policy.spec e.Repository.policy))
    e.Repository.executions;
  (* Behaviour survives: the same searches give the same answers. *)
  let q = [ "omim" ] in
  check Alcotest.int "same provenance hits"
    (List.length (Repository.provenance_search repo ~level:3 q))
    (List.length (Repository.provenance_search loaded ~level:3 q));
  let ks = Repository.keyword_search loaded ~level:3 [ "risk" ] in
  check Alcotest.int "keyword search works on loaded repo" 1 (List.length ks)

let test_store_file_io () =
  let repo = make_repo () in
  let path = Filename.temp_file "wfpriv" ".repo.json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Repo_store.save path repo;
      let loaded = Repo_store.load path in
      check strl "file roundtrip" (Repository.names repo) (Repository.names loaded))

let test_store_rejects_garbage () =
  (match Repo_store.of_string "{\"version\": 2, \"entries\": []}" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "version check missing");
  match Repo_store.of_string "not json" with
  | exception Wfpriv_serial.Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "parse error expected"

let () =
  Alcotest.run "store"
    [
      ( "session",
        [
          Alcotest.test_case "allowed zoom" `Quick test_session_allowed_zoom;
          Alcotest.test_case "denied zoom" `Quick test_session_denied_zoom;
          Alcotest.test_case "not expandable" `Quick test_session_not_expandable;
          Alcotest.test_case "jump to access view" `Quick
            test_session_jump_to_access_view;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_session_never_escapes ] );
      ( "provenance_search",
        [
          Alcotest.test_case "basic" `Quick test_provenance_search_basic;
          Alcotest.test_case "privacy" `Quick test_provenance_search_privacy;
          Alcotest.test_case "across entries" `Quick
            test_provenance_search_across_entries;
        ] );
      ( "materialized",
        [
          Alcotest.test_case "space overhead" `Quick
            test_materialized_space_overhead;
          Alcotest.test_case "consistency breaks on update" `Quick
            test_materialized_consistency_breaks;
          Alcotest.test_case "per-copy search" `Quick test_materialized_search;
        ] );
      ( "repo_store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "file io" `Quick test_store_file_io;
          Alcotest.test_case "rejects garbage" `Quick test_store_rejects_garbage;
        ] );
    ]
