(* Tests for Structural_privacy, Soundness and Utility, pinned against the
   paper's Sec. 3 W3 examples: deleting M13 -> M11 also hides M12 ⇝ M11;
   clustering {M11, M13} fabricates M10 ⇝ M14. *)

open Wfpriv_workflow
open Wfpriv_privacy
module Disease = Wfpriv_workloads.Disease
module Synthetic = Wfpriv_workloads.Synthetic
module Rng = Wfpriv_workloads.Rng
module Digraph = Wfpriv_graph.Digraph
module Reachability = Wfpriv_graph.Reachability

let check = Alcotest.check
let pairs = Alcotest.(list (pair int int))

(* W3's internal dataflow graph (module ids as nodes). *)
let w3 () = Spec.graph_of Disease.spec "W3"

(* ------------------------------------------------------------------ *)
(* Deletion (paper: "delete the edge M13 -> M11 ... we may hide additional
   provenance information that does not need to be hidden (e.g., the
   existence of a path from M12 to M11)") *)

let test_deletion_paper_example () =
  let g = w3 () in
  let r =
    Structural_privacy.hide_by_deletion g (Disease.m13, Disease.m11)
  in
  check pairs "min cut is the single edge M13 -> M11"
    [ (Disease.m13, Disease.m11) ]
    r.Structural_privacy.cut;
  check Alcotest.bool "fact hidden" false
    (Reachability.reaches r.Structural_privacy.view Disease.m13 Disease.m11);
  (* The collateral damage the paper warns about. *)
  check Alcotest.bool "M12 ⇝ M11 lost too" true
    (List.mem (Disease.m12, Disease.m11) r.Structural_privacy.collateral);
  check Alcotest.bool "M10 ⇝ M11 survives" true
    (Reachability.reaches r.Structural_privacy.view Disease.m10 Disease.m11)

let test_deletion_weighted () =
  let g = w3 () in
  (* Make the direct edge precious: the cut must instead sever the path
     upstream (M12 -> M13 or M9 -> M12). *)
  let weights (u, v) =
    if (u, v) = (Disease.m13, Disease.m11) then 100 else 1
  in
  let r =
    Structural_privacy.hide_by_deletion ~weights g (Disease.m12, Disease.m11)
  in
  check Alcotest.bool "cut avoids the precious edge" true
    (not (List.mem (Disease.m13, Disease.m11) r.Structural_privacy.cut));
  check Alcotest.bool "target hidden" false
    (Reachability.reaches r.Structural_privacy.view Disease.m12 Disease.m11)

let test_vertex_deletion () =
  let g = w3 () in
  (* Hiding M12 ⇝ M14 by removing modules: M13 is the unique bottleneck. *)
  (match Structural_privacy.hide_by_vertex_deletion g (Disease.m12, Disease.m14) with
  | Some r ->
      check (Alcotest.list Alcotest.int) "M13 removed" [ Disease.m13 ]
        r.Structural_privacy.removed;
      check Alcotest.bool "facts about M13 wiped" true
        (r.Structural_privacy.facts_about_removed > 0);
      check Alcotest.bool "target gone" false
        (Reachability.reaches r.Structural_privacy.vd_view Disease.m12 Disease.m14)
  | None -> Alcotest.fail "vertex cut exists");
  (* A direct edge defeats vertex deletion. *)
  check Alcotest.bool "direct edge -> None" true
    (Structural_privacy.hide_by_vertex_deletion g (Disease.m13, Disease.m11) = None)

let prop_vertex_deletion_hides =
  QCheck.Test.make ~name:"vertex deletion severs the target when possible"
    ~count:40
    (QCheck.pair (QCheck.int_bound 10_000) (QCheck.int_bound 12))
    (fun (seed, a) ->
      let rng = Rng.create seed in
      let g = Synthetic.random_dag rng ~nodes:13 ~edge_probability:0.3 in
      let b = (a + 4) mod 13 in
      if a = b || not (Reachability.reaches g a b) then true
      else
        match Structural_privacy.hide_by_vertex_deletion g (a, b) with
        | None -> Digraph.mem_edge g a b
        | Some r ->
            not (Reachability.reaches r.Structural_privacy.vd_view a b))

let test_deletion_rejects_non_fact () =
  let g = w3 () in
  (match Structural_privacy.hide_by_deletion g (Disease.m10, Disease.m14) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of a non-fact");
  match Structural_privacy.hide_by_deletion g (Disease.m9, Disease.m9) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of u = v"

(* ------------------------------------------------------------------ *)
(* Clustering (paper: "cluster M11 and M13 into a single composite module.
   However, we may now infer incorrect provenance information, e.g., that
   there is a path from M10 to M14") *)

let test_clustering_paper_example () =
  let g = w3 () in
  let r = Structural_privacy.cluster_report g [ Disease.m11; Disease.m13 ] in
  check Alcotest.bool "quotient acyclic" true r.Structural_privacy.acyclic;
  check Alcotest.bool "target internal fact hidden" true
    (List.mem (Disease.m13, Disease.m11) r.Structural_privacy.internal_hidden);
  (* The fabricated fact, expressed over representatives: the cluster rep
     is min(M11, M13) = M11, and the spurious outside pair is M10 ⇝ M14. *)
  check Alcotest.bool "M10 ⇝ M14 is spurious" true
    (List.mem (Disease.m10, Disease.m14) r.Structural_privacy.spurious);
  check Alcotest.bool "M10 ⇝ M14 false in base" false
    (Reachability.reaches g Disease.m10 Disease.m14)

let test_hide_by_clustering_convex () =
  let g = w3 () in
  let r = Structural_privacy.hide_by_clustering g (Disease.m13, Disease.m11) in
  check (Alcotest.list Alcotest.int) "convex closure is just the pair"
    [ Disease.m11; Disease.m13 ]
    r.Structural_privacy.cluster;
  check Alcotest.bool "hides" true
    (Structural_privacy.hides g (Disease.m13, Disease.m11) ~method_:`Clustering)

let test_convex_closure_pulls_in_between () =
  let g = w3 () in
  (* M12 ⇝ M11 passes through M13: the convex closure must include it. *)
  let c = Structural_privacy.convex_closure g [ Disease.m12; Disease.m11 ] in
  check (Alcotest.list Alcotest.int) "between node included"
    [ Disease.m11; Disease.m12; Disease.m13 ]
    c

let test_quotient_validation () =
  let g = w3 () in
  (match Structural_privacy.quotient g [ [ Disease.m11 ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "singleton cluster accepted");
  match
    Structural_privacy.quotient g
      [ [ Disease.m11; Disease.m13 ]; [ Disease.m13; Disease.m14 ] ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlapping clusters accepted"

let test_nonconvex_cluster_cycles () =
  (* 0 -> 1 -> 2; clustering {0, 2} without 1 creates a quotient cycle. *)
  let g = Digraph.of_edges [ (0, 1); (1, 2) ] in
  let r = Structural_privacy.cluster_report g [ 0; 2 ] in
  check Alcotest.bool "cyclic quotient flagged" false r.Structural_privacy.acyclic

(* ------------------------------------------------------------------ *)
(* Soundness detection and repair *)

let test_soundness_check () =
  let g = w3 () in
  let v = Soundness.check g [ [ Disease.m11; Disease.m13 ] ] in
  check Alcotest.bool "unsound" false v.Soundness.sound;
  check Alcotest.bool "spurious includes M10 ⇝ M14" true
    (List.mem (Disease.m10, Disease.m14) v.Soundness.spurious);
  (* A harmless cluster: merging a chain's adjacent pair fabricates
     nothing here. *)
  let v2 = Soundness.check g [ [ Disease.m9; Disease.m12 ] ] in
  check Alcotest.bool "chain-head cluster sound" true v2.Soundness.sound

let test_repair_paper_example () =
  let g = w3 () in
  let clustering = [ [ Disease.m11; Disease.m13 ] ] in
  let repaired = Soundness.repair g clustering in
  check Alcotest.bool "repaired clustering is sound" true
    (Soundness.is_sound g repaired);
  check Alcotest.int "one split needed" 1 (Soundness.repair_steps g clustering)

let test_repair_keeps_innocent_clusters () =
  let g = w3 () in
  let clustering =
    [ [ Disease.m11; Disease.m13 ]; [ Disease.m9; Disease.m12 ] ]
  in
  let repaired = Soundness.repair g clustering in
  check Alcotest.bool "sound after repair" true (Soundness.is_sound g repaired);
  check Alcotest.bool "innocent cluster preserved" true
    (List.exists
       (fun c -> List.sort compare c = [ Disease.m9; Disease.m12 ])
       repaired)

let prop_repair_always_sound =
  QCheck.Test.make ~name:"repair always reaches a sound clustering" ~count:40
    (QCheck.int_bound 10_000) (fun seed ->
      let rng = Rng.create seed in
      let g = Synthetic.random_dag rng ~nodes:14 ~edge_probability:0.25 in
      let clustering =
        Synthetic.random_clustering rng g ~nb_clusters:3 ~cluster_size:3
      in
      clustering = [] || Soundness.is_sound g (Soundness.repair g clustering))

let prop_convex_clusters_acyclic =
  QCheck.Test.make ~name:"convex-closure clusters keep the quotient a DAG"
    ~count:40
    (QCheck.pair (QCheck.int_bound 10_000) (QCheck.int_bound 12))
    (fun (seed, a) ->
      let rng = Rng.create seed in
      let g = Synthetic.random_dag rng ~nodes:13 ~edge_probability:0.3 in
      let b = (a + 5) mod 13 in
      if a = b || not (Reachability.reaches g a b) then true
      else begin
        let r = Structural_privacy.hide_by_clustering g (a, b) in
        r.Structural_privacy.acyclic
      end)

let prop_deletion_hides =
  QCheck.Test.make ~name:"deletion always severs the target pair" ~count:40
    (QCheck.pair (QCheck.int_bound 10_000) (QCheck.int_bound 12))
    (fun (seed, a) ->
      let rng = Rng.create seed in
      let g = Synthetic.random_dag rng ~nodes:13 ~edge_probability:0.3 in
      let b = (a + 4) mod 13 in
      if a = b || not (Reachability.reaches g a b) then true
      else begin
        let r = Structural_privacy.hide_by_deletion g (a, b) in
        not (Reachability.reaches r.Structural_privacy.view a b)
      end)

(* ------------------------------------------------------------------ *)
(* Utility metrics *)

let test_reachability_score_identity () =
  let g = w3 () in
  let s = Utility.reachability_score ~base:g ~view:g ~map:Fun.id in
  check Alcotest.int "nothing lost" 0 s.Utility.lost;
  check Alcotest.int "nothing spurious" 0 s.Utility.spurious;
  check (Alcotest.float 0.0001) "precision 1" 1.0 s.Utility.precision;
  check (Alcotest.float 0.0001) "recall 1" 1.0 s.Utility.recall

let test_reachability_score_deletion () =
  let g = w3 () in
  let r = Structural_privacy.hide_by_deletion g (Disease.m13, Disease.m11) in
  let s =
    Utility.reachability_score ~base:g ~view:r.Structural_privacy.view ~map:Fun.id
  in
  (* Deletion never fabricates; it loses the target plus collateral. *)
  check Alcotest.int "no spurious" 0 s.Utility.spurious;
  check Alcotest.int "lost = target + collateral"
    (1 + List.length r.Structural_privacy.collateral)
    s.Utility.lost;
  check (Alcotest.float 0.0001) "precision stays 1" 1.0 s.Utility.precision

let test_reachability_score_clustering () =
  let g = w3 () in
  let r = Structural_privacy.cluster_report g [ Disease.m11; Disease.m13 ] in
  let map n =
    if List.mem n r.Structural_privacy.cluster then r.Structural_privacy.cluster_rep
    else n
  in
  let s =
    Utility.reachability_score ~base:g ~view:r.Structural_privacy.cluster_view ~map
  in
  check Alcotest.bool "clustering fabricates here" true (s.Utility.spurious > 0);
  check Alcotest.bool "precision drops below 1" true (s.Utility.precision < 1.0)

let test_data_utility () =
  let exec = Disease.run () in
  let weights name = if name = "disorders" then 5.0 else 1.0 in
  let all = Utility.data_utility ~weights exec ~visible:(fun _ -> true) in
  let without_disorders =
    Utility.data_utility ~weights exec ~visible:(fun d -> d <> 10)
  in
  check (Alcotest.float 0.0001) "full utility = 19 + 5" 24.0 all;
  check (Alcotest.float 0.0001) "hiding d10 costs 5" 19.0 without_disorders

let test_combined_utility () =
  let g = w3 () in
  let s = Utility.reachability_score ~base:g ~view:g ~map:Fun.id in
  check (Alcotest.float 0.0001) "perfect view, full disclosure" 1.0
    (Utility.combined ~alpha:0.5 ~connectivity:s ~disclosed_modules:7
       ~total_modules:7);
  check (Alcotest.float 0.0001) "alpha=1 ignores disclosure" 1.0
    (Utility.combined ~alpha:1.0 ~connectivity:s ~disclosed_modules:0
       ~total_modules:7);
  Alcotest.check_raises "alpha out of range"
    (Invalid_argument "Utility.combined: alpha") (fun () ->
      ignore
        (Utility.combined ~alpha:1.5 ~connectivity:s ~disclosed_modules:0
           ~total_modules:7))

let qtests = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "structural"
    [
      ( "deletion",
        [
          Alcotest.test_case "paper example M13 -> M11" `Quick
            test_deletion_paper_example;
          Alcotest.test_case "weighted cut" `Quick test_deletion_weighted;
          Alcotest.test_case "rejects non-facts" `Quick
            test_deletion_rejects_non_fact;
          Alcotest.test_case "vertex deletion" `Quick test_vertex_deletion;
        ]
        @ qtests [ prop_deletion_hides; prop_vertex_deletion_hides ] );
      ( "clustering",
        [
          Alcotest.test_case "paper example {M11,M13}" `Quick
            test_clustering_paper_example;
          Alcotest.test_case "hide_by_clustering convex" `Quick
            test_hide_by_clustering_convex;
          Alcotest.test_case "convex closure" `Quick
            test_convex_closure_pulls_in_between;
          Alcotest.test_case "quotient validation" `Quick test_quotient_validation;
          Alcotest.test_case "non-convex cluster cycles" `Quick
            test_nonconvex_cluster_cycles;
        ]
        @ qtests [ prop_convex_clusters_acyclic ] );
      ( "soundness",
        [
          Alcotest.test_case "detection" `Quick test_soundness_check;
          Alcotest.test_case "repair of the paper example" `Quick
            test_repair_paper_example;
          Alcotest.test_case "repair keeps innocent clusters" `Quick
            test_repair_keeps_innocent_clusters;
        ]
        @ qtests [ prop_repair_always_sound ] );
      ( "utility",
        [
          Alcotest.test_case "identity view" `Quick
            test_reachability_score_identity;
          Alcotest.test_case "deletion view" `Quick
            test_reachability_score_deletion;
          Alcotest.test_case "clustering view" `Quick
            test_reachability_score_clustering;
          Alcotest.test_case "data utility" `Quick test_data_utility;
          Alcotest.test_case "combined" `Quick test_combined_utility;
        ] );
    ]
