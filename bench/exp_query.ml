(* E5: on-the-fly vs. zoom-out query evaluation.
   E6: privacy-partitioned index vs. per-level indexes vs. full scan.
   E7: ranking leakage and the quantisation counter-measure. *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Rng = Wfpriv_workloads.Rng
module Synthetic = Wfpriv_workloads.Synthetic

let synthetic_case rng ~levels ~atomics =
  let params =
    {
      Synthetic.default_params with
      Synthetic.levels;
      atomics_per_workflow = atomics;
    }
  in
  let spec, exec = Synthetic.run rng params in
  let assignments =
    Spec.workflow_ids spec
    |> List.filter (fun w -> w <> Spec.root spec)
    |> List.mapi (fun i w -> (w, 1 + (i mod 3)))
  in
  (spec, exec, Privilege.make spec assignments)

let e5 () =
  Util.heading
    "E5  Privacy-preserving evaluation: on-the-fly vs. zoom-out (Sec. 4)";
  let rng = Rng.create 2024 in
  let q = Query_ast.Before (Query_ast.Atomic_only, Query_ast.Atomic_only) in
  let rows =
    List.map
      (fun (levels, atomics) ->
        let spec, exec, privilege = synthetic_case rng ~levels ~atomics in
        let level = 1 in
        let direct = Secure_eval.on_the_fly privilege ~level exec q in
        let zoomed = Secure_eval.zoom_out privilege ~level exec q in
        assert (Secure_eval.agree direct zoomed);
        let t_direct =
          Util.bench_ms (fun () -> Secure_eval.on_the_fly privilege ~level exec q)
        in
        let t_zoom =
          Util.bench_ms (fun () -> Secure_eval.zoom_out privilege ~level exec q)
        in
        [
          Printf.sprintf "%d/%d" levels atomics;
          string_of_int (Spec.nb_modules spec);
          string_of_int (List.length (Execution.nodes exec));
          string_of_int zoomed.Secure_eval.collapse_count;
          Util.fmt_f ~digits:3 t_direct;
          Util.fmt_f ~digits:3 t_zoom;
          Util.fmt_f (t_zoom /. t_direct);
        ])
      [ (1, 4); (2, 4); (2, 6); (3, 4); (3, 6) ]
  in
  Util.print_table
    [
      "depth/atomics"; "modules"; "exec nodes"; "zoom steps"; "on-the-fly ms";
      "zoom-out ms"; "slowdown";
    ]
    rows;
  Printf.printf
    "expected shape: both agree on every answer; zoom-out pays one view\n\
     reconstruction per hidden workflow and loses by a growing factor.\n"

let e6 () =
  Util.heading
    "E6  Indexing under privacy: shared partitioned index vs. alternatives (Sec. 4)";
  let rng = Rng.create 31 in
  let mk_entries n =
    List.init n (fun i ->
        let spec, _, privilege =
          synthetic_case rng ~levels:2 ~atomics:4
        in
        (Printf.sprintf "wf%d" i, spec, privilege))
  in
  let terms = [ "align"; "blast"; "variant"; "pathway"; "assay" ] in
  let rows =
    List.map
      (fun n ->
        let entries = mk_entries n in
        let idx, t_build = Util.time_ms (fun () -> Index.build entries) in
        let pl, t_build_pl =
          Util.time_ms (fun () -> Index.build_per_level ~levels:[ 0; 1; 2; 3 ] entries)
        in
        let t_idx =
          Util.bench_ms (fun () ->
              List.iter (fun t -> ignore (Index.lookup idx ~level:2 t)) terms)
        in
        let t_pl =
          Util.bench_ms (fun () ->
              List.iter
                (fun t -> ignore (Index.lookup_per_level pl ~level:2 t))
                terms)
        in
        let t_scan =
          Util.bench_ms (fun () ->
              List.iter
                (fun t -> ignore (Index.lookup_scan entries ~level:2 t))
                terms)
        in
        [
          string_of_int n;
          string_of_int (Index.nb_postings idx);
          string_of_int (Index.per_level_postings pl);
          Util.fmt_f t_build;
          Util.fmt_f t_build_pl;
          Util.fmt_f ~digits:4 t_idx;
          Util.fmt_f ~digits:4 t_pl;
          Util.fmt_f ~digits:4 t_scan;
        ])
      [ 4; 8; 16; 32 ]
  in
  Util.print_table
    [
      "repo size"; "shared postings"; "per-level postings"; "build ms";
      "per-level build ms"; "shared lookup ms"; "per-level lookup ms";
      "scan ms";
    ]
    rows;
  Printf.printf
    "expected shape: the shared partitioned index answers nearly as fast as\n\
     materialised per-level indexes at a fraction of the space; full scans\n\
     lose by orders of magnitude as the repository grows.\n"

let e7 () =
  Util.heading "E7  Ranking as a leakage channel, and score quantisation (Sec. 4)";
  let rng = Rng.create 64 in
  let max_tf = 10 in
  let idf = 1.0 in
  let trials = 200 in
  let widths = [ 0.0; 1.0; 2.0; 4.0; 8.0 ] in
  (* For each trial: a target doc with secret tf, 4 competitors with known
     scores. Publish a ranking (exact or quantised); measure the interval
     the adversary infers, and how well the published ranking preserves
     the true order (utility). *)
  let run_trial width =
    let tf = Rng.int rng (max_tf + 1) in
    let others =
      List.init 4 (fun i ->
          (Printf.sprintf "d%d" i, float_of_int (Rng.int rng (max_tf + 1))))
    in
    let entries =
      { Ranking.doc = "t"; score = float_of_int tf *. idf }
      :: List.map (fun (d, s) -> { Ranking.doc = d; score = s }) others
    in
    let true_order =
      List.map (fun (e : Ranking.entry) -> e.Ranking.doc) (Ranking.rank entries)
    in
    let published_entries =
      if width = 0.0 then entries else Ranking.quantize ~width entries
    in
    let published =
      List.map
        (fun (e : Ranking.entry) -> e.Ranking.doc)
        (Ranking.rank published_entries)
    in
    let interval =
      if width = 0.0 then
        Ranking.infer_masked_tf ~target_base:0.0 ~others ~idf ~max_tf
          ~ranking:published ~target:"t"
      else
        Ranking.infer_masked_tf_quantized ~bucket_width:width ~target_base:0.0
          ~others ~idf ~max_tf ~ranking:published ~target:"t"
    in
    (* Rank fidelity: fraction of ordered pairs agreeing with the truth. *)
    let pairs l =
      let rec go = function
        | [] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
      in
      go l
    in
    let truth_pairs = pairs true_order in
    let agree =
      List.length
        (List.filter
           (fun (a, b) ->
             match (Ranking.position (Ranking.rank published_entries) a,
                    Ranking.position (Ranking.rank published_entries) b)
             with
             | Some pa, Some pb -> pa < pb
             | _ -> false)
           truth_pairs)
    in
    ( float_of_int (Ranking.width interval) /. float_of_int (max_tf + 1),
      float_of_int agree /. float_of_int (List.length truth_pairs) )
  in
  let rows =
    List.map
      (fun width ->
        let results = List.init trials (fun _ -> run_trial width) in
        let n = float_of_int trials in
        let avg f = List.fold_left (fun a r -> a +. f r) 0.0 results /. n in
        [
          (if width = 0.0 then "exact" else Util.fmt_f ~digits:1 width);
          Util.fmt_pct (avg fst);
          Util.fmt_pct (1.0 -. avg fst);
          Util.fmt_pct (avg snd);
        ])
      widths
  in
  Util.print_table
    [ "bucket width"; "tf interval kept"; "leakage"; "rank fidelity" ]
    rows;
  Printf.printf
    "expected shape: exact ranking leaks most (narrow surviving interval);\n\
     wider buckets cut leakage at a modest cost in rank fidelity — the\n\
     privacy-aware ranking trade-off the paper calls for.\n"

let all () =
  e5 ();
  e6 ();
  e7 ()
