(* E5: on-the-fly vs. zoom-out query evaluation.
   E6: privacy-partitioned index vs. per-level indexes vs. full scan.
   E7: ranking leakage and the quantisation counter-measure. *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Rng = Wfpriv_workloads.Rng
module Synthetic = Wfpriv_workloads.Synthetic

let synthetic_case rng ~levels ~atomics =
  let params =
    {
      Synthetic.default_params with
      Synthetic.levels;
      atomics_per_workflow = atomics;
    }
  in
  let spec, exec = Synthetic.run rng params in
  let assignments =
    Spec.workflow_ids spec
    |> List.filter (fun w -> w <> Spec.root spec)
    |> List.mapi (fun i w -> (w, 1 + (i mod 3)))
  in
  (spec, exec, Privilege.make spec assignments)

let e5 () =
  Util.heading
    "E5  Privacy-preserving evaluation: on-the-fly vs. zoom-out (Sec. 4)";
  let rng = Rng.create 2024 in
  let q = Query_ast.Before (Query_ast.Atomic_only, Query_ast.Atomic_only) in
  let rows =
    List.map
      (fun (levels, atomics) ->
        let spec, exec, privilege = synthetic_case rng ~levels ~atomics in
        let level = 1 in
        let direct = Secure_eval.on_the_fly privilege ~level exec q in
        let zoomed = Secure_eval.zoom_out privilege ~level exec q in
        assert (Secure_eval.agree direct zoomed);
        let t_direct =
          Util.bench_ms (fun () -> Secure_eval.on_the_fly privilege ~level exec q)
        in
        let t_zoom =
          Util.bench_ms (fun () -> Secure_eval.zoom_out privilege ~level exec q)
        in
        [
          Printf.sprintf "%d/%d" levels atomics;
          string_of_int (Spec.nb_modules spec);
          string_of_int (List.length (Execution.nodes exec));
          string_of_int zoomed.Secure_eval.collapse_count;
          Util.fmt_f ~digits:3 t_direct;
          Util.fmt_f ~digits:3 t_zoom;
          Util.fmt_f (t_zoom /. t_direct);
        ])
      [ (1, 4); (2, 4); (2, 6); (3, 4); (3, 6) ]
  in
  Util.print_table
    [
      "depth/atomics"; "modules"; "exec nodes"; "zoom steps"; "on-the-fly ms";
      "zoom-out ms"; "slowdown";
    ]
    rows;
  Printf.printf
    "expected shape: both agree on every answer; zoom-out pays one view\n\
     reconstruction per hidden workflow and loses by a growing factor.\n"

let e6 () =
  Util.heading
    "E6  Indexing under privacy: shared partitioned index vs. alternatives (Sec. 4)";
  let rng = Rng.create 31 in
  let mk_entries n =
    List.init n (fun i ->
        let spec, _, privilege =
          synthetic_case rng ~levels:2 ~atomics:4
        in
        (Printf.sprintf "wf%d" i, spec, privilege))
  in
  let terms = [ "align"; "blast"; "variant"; "pathway"; "assay" ] in
  let rows =
    List.map
      (fun n ->
        let entries = mk_entries n in
        let idx, t_build = Util.time_ms (fun () -> Index.build entries) in
        let pl, t_build_pl =
          Util.time_ms (fun () -> Index.build_per_level ~levels:[ 0; 1; 2; 3 ] entries)
        in
        let t_idx =
          Util.bench_ms (fun () ->
              List.iter (fun t -> ignore (Index.lookup idx ~level:2 t)) terms)
        in
        let t_pl =
          Util.bench_ms (fun () ->
              List.iter
                (fun t -> ignore (Index.lookup_per_level pl ~level:2 t))
                terms)
        in
        let t_scan =
          Util.bench_ms (fun () ->
              List.iter
                (fun t -> ignore (Index.lookup_scan entries ~level:2 t))
                terms)
        in
        [
          string_of_int n;
          string_of_int (Index.nb_postings idx);
          string_of_int (Index.per_level_postings pl);
          Util.fmt_f t_build;
          Util.fmt_f t_build_pl;
          Util.fmt_f ~digits:4 t_idx;
          Util.fmt_f ~digits:4 t_pl;
          Util.fmt_f ~digits:4 t_scan;
        ])
      [ 4; 8; 16; 32 ]
  in
  Util.print_table
    [
      "repo size"; "shared postings"; "per-level postings"; "build ms";
      "per-level build ms"; "shared lookup ms"; "per-level lookup ms";
      "scan ms";
    ]
    rows;
  Printf.printf
    "expected shape: the shared partitioned index answers nearly as fast as\n\
     materialised per-level indexes at a fraction of the space; full scans\n\
     lose by orders of magnitude as the repository grows.\n"

let e7 () =
  Util.heading "E7  Ranking as a leakage channel, and score quantisation (Sec. 4)";
  let rng = Rng.create 64 in
  let max_tf = 10 in
  let idf = 1.0 in
  let trials = 200 in
  let widths = [ 0.0; 1.0; 2.0; 4.0; 8.0 ] in
  (* For each trial: a target doc with secret tf, 4 competitors with known
     scores. Publish a ranking (exact or quantised); measure the interval
     the adversary infers, and how well the published ranking preserves
     the true order (utility). *)
  let run_trial width =
    let tf = Rng.int rng (max_tf + 1) in
    let others =
      List.init 4 (fun i ->
          (Printf.sprintf "d%d" i, float_of_int (Rng.int rng (max_tf + 1))))
    in
    let entries =
      { Ranking.doc = "t"; score = float_of_int tf *. idf }
      :: List.map (fun (d, s) -> { Ranking.doc = d; score = s }) others
    in
    let true_order =
      List.map (fun (e : Ranking.entry) -> e.Ranking.doc) (Ranking.rank entries)
    in
    let published_entries =
      if width = 0.0 then entries else Ranking.quantize ~width entries
    in
    let published =
      List.map
        (fun (e : Ranking.entry) -> e.Ranking.doc)
        (Ranking.rank published_entries)
    in
    let interval =
      if width = 0.0 then
        Ranking.infer_masked_tf ~target_base:0.0 ~others ~idf ~max_tf
          ~ranking:published ~target:"t"
      else
        Ranking.infer_masked_tf_quantized ~bucket_width:width ~target_base:0.0
          ~others ~idf ~max_tf ~ranking:published ~target:"t"
    in
    (* Rank fidelity: fraction of ordered pairs agreeing with the truth. *)
    let pairs l =
      let rec go = function
        | [] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
      in
      go l
    in
    let truth_pairs = pairs true_order in
    let agree =
      List.length
        (List.filter
           (fun (a, b) ->
             match (Ranking.position (Ranking.rank published_entries) a,
                    Ranking.position (Ranking.rank published_entries) b)
             with
             | Some pa, Some pb -> pa < pb
             | _ -> false)
           truth_pairs)
    in
    ( float_of_int (Ranking.width interval) /. float_of_int (max_tf + 1),
      float_of_int agree /. float_of_int (List.length truth_pairs) )
  in
  let rows =
    List.map
      (fun width ->
        let results = List.init trials (fun _ -> run_trial width) in
        let n = float_of_int trials in
        let avg f = List.fold_left (fun a r -> a +. f r) 0.0 results /. n in
        [
          (if width = 0.0 then "exact" else Util.fmt_f ~digits:1 width);
          Util.fmt_pct (avg fst);
          Util.fmt_pct (1.0 -. avg fst);
          Util.fmt_pct (avg snd);
        ])
      widths
  in
  Util.print_table
    [ "bucket width"; "tf interval kept"; "leakage"; "rank fidelity" ]
    rows;
  Printf.printf
    "expected shape: exact ranking leaks most (narrow surviving interval);\n\
     wider buckets cut leakage at a modest cost in rank fidelity — the\n\
     privacy-aware ranking trade-off the paper calls for.\n"


(* E17: the succinct privacy-partitioned index. Space: delta-compressed
   posting blocks vs. the boxed-record layout this refactor replaced
   (one posting record per occurrence, lists per (term, level)).
   Time: block-max WAND top-k vs. exhaustive scoring over the same
   index, same floats, same order. *)

module Smap = Map.Make (String)

let e17 () =
  Util.heading
    "E17 Succinct index: compressed blocks vs. boxed postings; block-max WAND (Sec. 4)";
  let rng = Rng.create 1117 in
  (* Fixture sizes are fixed (no [--quick] shrinking): the whole
     experiment runs in under a second, and the block-skipping geometry
     — needle gaps several posting blocks wide — only exists at scale,
     so a shrunken corpus would gate CI on a different regime. *)
  let target = 100_000 in
  let n_docs = 20_000 in
  let n_terms = 64 in
  let term i = Printf.sprintf "term%02d" i in
  (* Zipf-ish term popularity: weight of term i is ~1/(i+1). *)
  let cum = Array.make n_terms 0 in
  let () =
    let acc = ref 0 in
    for i = 0 to n_terms - 1 do
      acc := !acc + (10_000 / (i + 1));
      cum.(i) <- !acc
    done
  in
  let pick_term () =
    let r = Rng.int rng cum.(n_terms - 1) in
    let rec go i = if r < cum.(i) then i else go (i + 1) in
    let i = go 0 in
    (term i, i)
  in
  (* Term frequencies are mostly 1 with a rare geometric heavy tail —
     a workflow term names a module once, a handful of hub terms recur.
     The query's two dense terms are public vocabulary (level 0, one
     partition) and unit-frequency except for one hub document each:
     their global maximum then promises far more than any ordinary
     block delivers, which is exactly the gap block-max pruning
     exploits. *)
  let heavy_tf () =
    if Rng.int rng 1024 = 0 then 2 lsl Rng.int rng 2 else 1
  in
  let seen = Array.init 2 (fun _ -> Hashtbl.create 1024) in
  let hub =
    List.concat_map
      (fun ti ->
        let d = Rng.int rng n_docs in
        Hashtbl.add seen.(ti) d ();
        let p =
          {
            Index.doc = Printf.sprintf "doc%05d" d;
            module_id = 0;
            min_level = 0;
          }
        in
        List.init 8 (fun _ -> (term ti, p)))
      [ 0; 1 ]
  in
  (* A deliberately rare query term: ~[needle_df] docs spread over the
     whole doc space, so consecutive matches are hundreds of docs apart
     — far wider than one posting block of the dense terms. *)
  let needle_df = max 8 (n_docs / 100) in
  let needle =
    List.init needle_df (fun i ->
        ( "needle",
          {
            Index.doc =
              Printf.sprintf "doc%05d"
                ((i * (n_docs / needle_df)) + Rng.int rng (n_docs / needle_df));
            module_id = Rng.int rng 4;
            min_level = 0;
          } ))
  in
  let raw = ref []
  and produced = ref (List.length needle + List.length hub) in
  while !produced < target do
    let t, ti = pick_term () in
    let tf =
      if ti < 2 then 1 else min (heavy_tf ()) (target - !produced)
    in
    let d = Rng.int rng n_docs in
    if ti < 2 && Hashtbl.mem seen.(ti) d then ()
    else begin
      if ti < 2 then Hashtbl.add seen.(ti) d ();
      let p =
        {
          Index.doc = Printf.sprintf "doc%05d" d;
          module_id = Rng.int rng 4;
          min_level = (if ti < 2 then 0 else Rng.int rng 4);
        }
      in
      for _ = 1 to tf do raw := (t, p) :: !raw done;
      produced := !produced + tf
    end
  done;
  let raw = needle @ hub @ !raw in
  let index, t_build = Util.time_ms (fun () -> Index.build_postings raw) in
  assert (Index.nb_postings index = target);
  (* The boxed baseline: per term, per level, a list of posting records,
     one per occurrence — the pre-compression in-memory layout. *)
  let boxed =
    List.fold_left
      (fun m (t, p) ->
        let by_level =
          match Smap.find_opt t m with
          | Some a -> a
          | None -> Array.make 4 []
        in
        by_level.(p.Index.min_level) <- p :: by_level.(p.Index.min_level);
        Smap.add t by_level m)
      Smap.empty raw
  in
  let bytes_of x = Obj.reachable_words (Obj.repr x) * (Sys.word_size / 8) in
  let boxed_bytes = bytes_of boxed in
  let idx_bytes = bytes_of index in
  let per_posting b = float_of_int b /. float_of_int target in
  let space_ratio = float_of_int boxed_bytes /. float_of_int idx_bytes in
  let level = 3 and k = 10 in
  (* One rare high-idf term plus two very common low-idf ones: the
     exhaustive pass scores every doc the common terms touch, WAND
     bounds the low-weight common blocks out once the heap fills. *)
  let query = [ "needle"; term 0; term 1 ] in
  let exhaustive () = Ranking.top_k k (Index.score_entries index ~level query) in
  let wand () = Index.top_k index ~level ~k query in
  let identical = exhaustive () = wand () in
  let t_exh = Util.bench_ms exhaustive in
  let t_wand = Util.bench_ms wand in
  let t_lookup =
    Util.bench_ms (fun () -> ignore (Index.lookup index ~level (term 0)))
  in
  let speedup = t_exh /. t_wand in
  Util.print_table
    [ "representation"; "bytes"; "bytes/posting"; "build ms" ]
    [
      [
        "boxed records"; string_of_int boxed_bytes;
        Util.fmt_f (per_posting boxed_bytes); "-";
      ];
      [
        "compressed index"; string_of_int idx_bytes;
        Util.fmt_f (per_posting idx_bytes); Util.fmt_f t_build;
      ];
      [
        "  (encoded payload)"; string_of_int (Index.encoded_bytes index);
        Util.fmt_f (per_posting (Index.encoded_bytes index)); "-";
      ];
    ];
  Util.print_table
    [ "top-k strategy"; "ms/query"; "identical" ]
    [
      [ "exhaustive score+rank"; Util.fmt_f ~digits:4 t_exh; "-" ];
      [
        "block-max WAND"; Util.fmt_f ~digits:4 t_wand;
        (if identical then "yes" else "NO");
      ];
    ];
  Printf.printf
    "postings %d  docs %d  terms %d  lookup %s ms  space ratio %.2fx  top-k speedup %.2fx\n"
    target n_docs n_terms
    (Util.fmt_f ~digits:4 t_lookup)
    space_ratio speedup;
  Util.emit "e17.bytes_per_posting_ratio" space_ratio;
  Util.emit "e17.topk_speedup" speedup;
  Util.emit "e17.identical" (if identical then 1.0 else 0.0);
  Printf.printf
    "expected shape: interned ids + delta blocks cut bytes/posting well\n\
     below the boxed-record layout, and block-max WAND answers top-k\n\
     several times faster than exhaustive scoring while returning the\n\
     identical ranked list.\n"

let all () =
  e5 ();
  e6 ();
  e7 ();
  e17 ()
