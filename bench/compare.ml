(* Bench regression comparator: `compare.exe BASELINE CURRENT`.

   BASELINE is the committed bench/baseline.json:

     { "tolerance": 0.25,
       "metrics": { "e14.engine_speedup": 3.0, "e15.identical": 1.0 } }

   CURRENT is a `bench/main.exe -- ... --json` document. Every baseline
   metric is higher-is-better (speedup ratios, invariant indicators);
   the gate fails when a current value drops below
   baseline * (1 - tolerance), or is missing entirely. An optional
   "slo" object holds lower-is-better latency ceilings (absolute, no
   tolerance — the ceilings already carry the headroom): the gate fails
   when a current value exceeds its ceiling or is missing. Metrics the
   current run emits beyond the baseline are informational: reported as
   `new` lines (so fresh experiments surface in CI logs before their
   baseline entry lands) but never gating — the baseline names exactly
   what is load-bearing. Every comparison also prints a signed
   percentage delta against its reference (baseline or ceiling), so CI
   logs show drift at a glance, not only pass/fail. Exit code 0 = pass,
   1 = regression, 2 = usage/parse error.

   This exists so CI needs no shell JSON parsing: the workflow runs the
   bench, saves the artifact, and calls this with two file names. *)

module J = Wfpriv_serial.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match J.parse_result (read_file path) with
  | Ok doc -> doc
  | Error e ->
      Printf.eprintf "compare: %s: %s\n" path e;
      exit 2

let obj_pairs what = function
  | J.Obj kvs -> kvs
  | _ ->
      Printf.eprintf "compare: %s is not a JSON object\n" what;
      exit 2

let () =
  if Array.length Sys.argv <> 3 then begin
    prerr_endline "usage: compare.exe BASELINE.json CURRENT.json";
    exit 2
  end;
  let baseline = parse_file Sys.argv.(1) in
  let current = parse_file Sys.argv.(2) in
  let tolerance =
    match J.member_opt "tolerance" baseline with
    | Some t -> J.get_float t
    | None -> 0.25
  in
  let gated = obj_pairs "baseline metrics" (J.member "metrics" baseline) in
  let cur = J.member "metrics" current in
  (* Signed percentage delta of [c] against reference [r] — "how far from
     the committed number", easier to eyeball in CI logs than the raw
     ratio when baselines differ by orders of magnitude. *)
  let delta_pct c r =
    if Float.abs r < 1e-12 then "n/a"
    else Printf.sprintf "%+.1f%%" (100.0 *. ((c -. r) /. r))
  in
  let failures =
    List.filter_map
      (fun (name, v) ->
        let base = J.get_float v in
        let floor = base *. (1.0 -. tolerance) in
        match J.member_opt name cur with
        | None -> Some (Printf.sprintf "%s: missing from current run" name)
        | Some c ->
            let c = J.get_float c in
            if c < floor then
              Some
                (Printf.sprintf
                   "%s: %.3f < %.3f (baseline %.3f, %s, tolerance %.0f%%)"
                   name c floor base (delta_pct c base) (100.0 *. tolerance))
            else begin
              Printf.printf "ok %s: %.3f (>= %.3f, %s vs baseline)\n" name c
                floor (delta_pct c base);
              None
            end)
      gated
  in
  (* Lower-is-better SLO ceilings: absolute, no tolerance. *)
  let slo =
    match J.member_opt "slo" baseline with
    | None -> []
    | Some s -> obj_pairs "baseline slo" s
  in
  let slo_failures =
    List.filter_map
      (fun (name, v) ->
        let ceiling = J.get_float v in
        match J.member_opt name cur with
        | None -> Some (Printf.sprintf "%s: missing from current run" name)
        | Some c ->
            let c = J.get_float c in
            if c > ceiling then
              Some
                (Printf.sprintf "%s: %.3f > ceiling %.3f (%s)" name c ceiling
                   (delta_pct c ceiling))
            else begin
              Printf.printf "ok %s: %.3f (<= %.3f, %s vs ceiling)\n" name c
                ceiling (delta_pct c ceiling);
              None
            end)
      slo
  in
  let failures = failures @ slo_failures in
  (* Current-only metrics: informational, never gating. *)
  List.iter
    (fun (name, v) ->
      if not (List.mem_assoc name gated || List.mem_assoc name slo) then
        Printf.printf "new %s: %.3f (not in baseline; informational)\n" name
          (J.get_float v))
    (obj_pairs "current metrics" cur);
  if failures = [] then print_endline "bench regression gate: pass"
  else begin
    List.iter (Printf.eprintf "REGRESSION %s\n") failures;
    exit 1
  end
