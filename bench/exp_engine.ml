(* E14: the compiled engine vs. the legacy list-and-DFS evaluator.

   Two costs the engine refactor removes are measured on synthetic
   executions of growing size (~10^2, 10^3, 10^4 provenance nodes):
   - per-query reachability: [Legacy_eval] runs a DFS per (src, dst)
     node pair per [Before]; a prepared [Engine] pays one bitset closure
     and then answers a whole batch of structural queries from the
     memoized rows (the ">= 5x on repeated queries at 10^4 nodes"
     acceptance bar);
   - secure zoom-out round counts per privilege level, now driven by
     [Access_gate] refinement. *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Rng = Wfpriv_workloads.Rng
module Synthetic = Wfpriv_workloads.Synthetic

(* Edge probability shrinks with size so average degree stays bounded:
   the generator draws Bernoulli edges over order-compatible pairs, and
   a constant probability would make 10^4-node executions quadratically
   dense (and generation quadratically slow). *)
let sizes =
  [
    ( "10^2",
      {
        Synthetic.default_params with
        levels = 1;
        atomics_per_workflow = 30;
        edge_probability = 0.2;
      } );
    ( "10^3",
      {
        Synthetic.default_params with
        levels = 2;
        atomics_per_workflow = 140;
        edge_probability = 0.05;
      } );
    ( "10^4",
      {
        Synthetic.default_params with
        levels = 2;
        composites_per_workflow = 3;
        atomics_per_workflow = 764;
        edge_probability = 0.01;
      } );
  ]

(* A session-style batch: many selective structural queries against one
   view. Selective module pairs keep the legacy cost finite at 10^4
   (its cost is |src matches| * |dst matches| DFS traversals). *)
let query_batch spec =
  let ms = Spec.module_ids spec in
  let nth k =
    let l = List.length ms in
    List.nth ms (((k mod l) + l) mod l)
  in
  let pair i =
    Query_ast.Before
      ( Query_ast.Module_is (nth (3 + (i * 7))),
        Query_ast.Module_is (nth (List.length ms - 3 - (i * 11))) )
  in
  List.init 40 pair
  @ Query_ast.
      [
        And (Node Atomic_only, Before (Module_is (nth 5), Module_is (nth 29)));
        Carries (Module_is (nth 13), Any, "o3");
        Edge (Module_is (nth 17), Any);
        Inside (Module_is (nth 23), Spec.root spec);
      ]

let depth_privilege spec =
  let h = Hierarchy.of_spec spec in
  Privilege.make spec
    (Spec.workflow_ids spec
    |> List.filter (fun w -> w <> Spec.root spec)
    |> List.map (fun w -> (w, Hierarchy.depth h w)))

let e14 () =
  Util.heading "E14 Compiled engine vs. legacy evaluator (query refactor)";
  (* --quick drops the 10^4 fixture: generation plus the legacy DFS
     batch dominate the harness's CI budget, and the 10^3 speedup is
     already far from the regression gate's threshold. *)
  let picked =
    if !Util.quick then
      List.filter (fun (l, _) -> l <> "10^4") sizes
    else sizes
  in
  let fixtures =
    List.map
      (fun (label, params) ->
        let rng = Rng.create 14 in
        let spec, exec = Synthetic.run rng params in
        (label, spec, exec))
      picked
  in
  Util.subheading "Repeated structural queries on one execution view";
  let rows =
    List.map
      (fun (label, spec, exec) ->
        let ev = Exec_view.full exec in
        let qs = query_batch spec in
        let legacy_ms =
          Util.bench_ms (fun () ->
              List.iter (fun q -> ignore (Legacy_eval.eval_exec ev q)) qs)
        in
        (* The session contract: prepare (and pay the closure) once, then
           serve every query of the batch from the memoized rows. *)
        let engine = Engine.of_exec_view ev in
        ignore
          (Engine.run_query engine (Query_ast.Before (Query_ast.Any, Query_ast.Any)));
        let engine_ms =
          Util.bench_ms (fun () ->
              List.iter (fun q -> ignore (Engine.run_query engine q)) qs)
        in
        let _, prepare_ms =
          Util.time_ms (fun () ->
              let e = Engine.of_exec_view ev in
              ignore
                (Engine.run_query e
                   (Query_ast.Before (Query_ast.Any, Query_ast.Any))))
        in
        (* The largest fixture's batch speedup is the headline metric the
           CI regression gate tracks (fixtures run smallest-to-largest,
           so the last emission wins). *)
        Util.emit "e14.engine_speedup" (legacy_ms /. engine_ms);
        Util.emit "e14.engine_ms" engine_ms;
        Util.emit "e14.legacy_ms" legacy_ms;
        [
          label;
          string_of_int (List.length (Exec_view.nodes ev));
          Util.fmt_f legacy_ms;
          Util.fmt_f engine_ms;
          Util.fmt_f prepare_ms;
          Util.fmt_f ~digits:1 (legacy_ms /. engine_ms);
        ])
      fixtures
  in
  Util.print_table
    [ "size"; "nodes"; "legacy ms"; "engine ms"; "prepare ms"; "speedup" ]
    rows;
  Printf.printf
    "expected shape: the prepared engine answers the batch >= 5x faster\n\
     than the legacy DFS evaluator at 10^4 nodes; preparation (one-off\n\
     per session / cached user group) stays a small multiple of a single\n\
     legacy batch.\n\n";
  Util.subheading "Secure zoom-out rounds per privilege level";
  let rows =
    List.concat_map
      (fun (label, spec, exec) ->
        let privilege = depth_privilege spec in
        let q = Query_ast.Before (Query_ast.Any, Query_ast.Any) in
        List.map
          (fun level ->
            let gate = Access_gate.make privilege ~level in
            let r = Secure_eval.gated_zoom_out gate exec q in
            let otf = Secure_eval.gated_on_the_fly gate exec q in
            [
              label;
              string_of_int level;
              string_of_int r.Secure_eval.collapse_count;
              string_of_bool (Secure_eval.agree r otf);
            ])
          (Privilege.levels privilege))
      fixtures
  in
  Util.print_table [ "size"; "level"; "zoom-out rounds"; "agrees" ] rows;
  Printf.printf
    "expected shape: round counts grow with the number of workflows the\n\
     level cannot expand (one collapse per offender, deepest first,\n\
     deterministic tie-break) and shrink to 1 at the top level; zoom-out\n\
     always agrees with on-the-fly, since both refine the same gate.\n"
