(* E18: the serving layer under mixed-privilege load.

   Two load shapes against one shared demo repository:

   - closed loop: a fixed client set issues the mixed-level request set
     synchronously round after round ([Server.handle]), once against a
     caching server and once against a cache-disabled one. The encoded
     response streams must be byte-identical (the cache-transparency
     invariant), the cache must be hit at every privilege level in the
     mix, and every cache key must carry its level prefix (the
     partition-by-construction invariant). Wall-clock QPS and p50/p99
     are reported as informational metrics.

   - open loop: arrivals on a virtual clock — one cheap lookup per
     1ms tick against a flood of two tightly-deadlined zoom-outs per
     tick. The scheduler must shed the zoom backlog (retryable errors)
     while cheap lookups keep a bounded p99 in virtual time: the
     admission-control acceptance bar, deterministic because the clock
     is injected.

   Gated metrics (bench/baseline.json): e18.identical,
   e18.cache_partitioned, e18.per_level_hits, e18.cache_hit_rate,
   e18.cheap_bounded. QPS and latencies are informational — this is a
   correctness-under-load gate, not a hardware-speed gate. *)

open Wfpriv_privacy
module Obs = Wfpriv_obs
module Server = Wfpriv_server.Server
module Scheduler = Wfpriv_server.Scheduler
module Wire = Wfpriv_server.Wire
module Level_cache = Wfpriv_server.Level_cache
module Repository = Wfpriv_query.Repository
module Disease = Wfpriv_workloads.Disease
module Clinical = Wfpriv_workloads.Clinical

let demo_repo () =
  let repo = Repository.create () in
  let disease_policy =
    Policy.make
      ~expand_levels:[ ("W2", 1); ("W3", 2); ("W4", 3) ]
      ~data_levels:[ ("disorders", 2); ("prognosis", 1) ]
      Disease.spec
  in
  Repository.add repo ~name:"disease-susceptibility" ~policy:disease_policy
    ~executions:[ Disease.run () ] ();
  Repository.add repo ~name:"clinical-trial" ~policy:Clinical.policy
    ~executions:[ Clinical.run () ] ();
  repo

(* The mixed-privilege request set of one closed-loop round. No [Stats]
   here: stats reads live counters, which legitimately differ between
   the caching and non-caching servers. *)
let request_mix =
  [
    (0, Wire.Topk { k = 3; keywords = [ "snp"; "omim" ] });
    (1, Wire.Query
         {
           entry = "disease-susceptibility";
           run = 0;
           queries = [ "node(~\"risk\")"; "before(~\"Expand SNP\", ~\"OMIM\")" ];
         });
    (2, Wire.Query
         { entry = "clinical-trial"; run = 0; queries = [ "node(*)" ] });
    (3, Wire.Query
         {
           entry = "disease-susceptibility";
           run = 0;
           queries = [ "node(~\"risk\")" ];
         });
    (0, Wire.Zoom_out { entry = "disease-susceptibility"; run = 0 });
    (3, Wire.Zoom_out { entry = "disease-susceptibility"; run = 0 });
    (1, Wire.Topk { k = 2; keywords = [ "trial" ] });
  ]

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
      let a = Array.of_list sorted in
      let i = int_of_float (p *. float_of_int (Array.length a)) in
      a.(min (Array.length a - 1) i)

let closed_loop ~rounds server =
  let out = Buffer.create 4096 in
  let lats = ref [] in
  let t0 = Unix.gettimeofday () in
  for round = 0 to rounds - 1 do
    List.iteri
      (fun i (level, req) ->
        let f = { Wire.rid = (round * 100) + i; level; deadline_ms = 0; req } in
        let s = Unix.gettimeofday () in
        let r = Server.handle server ~client:i f in
        lats := (Unix.gettimeofday () -. s) *. 1000.0 :: !lats;
        Buffer.add_string out (Wire.encode_response Wire.Json r))
      request_mix
  done;
  let secs = Unix.gettimeofday () -. t0 in
  (Buffer.contents out, !lats, secs)

let open_loop ~ticks repo =
  let now = ref 0.0 in
  let config =
    {
      Server.default_config with
      sched = { Scheduler.default_config with queue_capacity = 64 };
    }
  in
  let server = Server.create ~config ~now:(fun () -> !now) repo in
  let pending = Hashtbl.create 64 in
  let cheap_lats = ref [] in
  let sheds = ref 0 in
  let zooms = ref 0 in
  let record (r : Wire.response) =
    match r with
    | Wire.Error
        { code = Wire.Deadline_exceeded | Wire.Over_capacity; _ } ->
        incr sheds
    | Wire.Result { rid; result = Wire.Hits _ | Wire.Witnesses _ } -> (
        match Hashtbl.find_opt pending rid with
        | Some t -> cheap_lats := (!now -. t) *. 1000.0 :: !cheap_lats
        | None -> ())
    | _ -> ()
  in
  let rid = ref 0 in
  let submit ~client ?(deadline_ms = 0) ~level req =
    incr rid;
    match
      Server.submit server ~client { Wire.rid = !rid; level; deadline_ms; req }
    with
    | Some r -> record r
    | None -> ()
  in
  for tick = 0 to ticks - 1 do
    let level = tick mod 4 in
    let cheap =
      if tick mod 2 = 0 then Wire.Topk { k = 3; keywords = [ "snp" ] }
      else
        Wire.Query
          {
            entry = "disease-susceptibility";
            run = 0;
            queries = [ "node(~\"risk\")" ];
          }
    in
    Hashtbl.replace pending (!rid + 1) !now;
    submit ~client:(tick mod 8) ~level cheap;
    for z = 0 to 1 do
      incr zooms;
      submit
        ~client:(100 + ((tick + z) mod 16))
        ~deadline_ms:5
        ~level:((tick + z) mod 4)
        (Wire.Zoom_out { entry = "disease-susceptibility"; run = 0 })
    done;
    List.iter (fun (_, _, r) -> record r) (Server.cycle server);
    now := !now +. 0.001
  done;
  List.iter (fun (_, _, r) -> record r) (Server.drain_all server);
  (!cheap_lats, !sheds, !zooms)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let e18 () =
  Util.heading "E18 Serving layer: mixed-privilege load, cache, shedding";
  let saved_enabled = Obs.Config.enabled () in
  Obs.Config.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Config.set_enabled saved_enabled)
  @@ fun () ->
  let repo = demo_repo () in
  let rounds = if !Util.quick then 20 else 200 in
  let caching = Server.create repo in
  let plain =
    Server.create ~config:{ Server.default_config with cache = false } repo
  in
  let out_on, lats, secs = closed_loop ~rounds caching in
  let out_off, _, _ = closed_loop ~rounds plain in
  let n = rounds * List.length request_mix in
  let identical = if out_on = out_off then 1.0 else 0.0 in
  let stats = Server.cache_stats caching in
  let hit_rate =
    float_of_int stats.Level_cache.hits
    /. float_of_int (max 1 (stats.Level_cache.hits + stats.Level_cache.misses))
  in
  let mix_levels = List.sort_uniq compare (List.map fst request_mix) in
  let partitioned =
    if
      List.for_all
        (fun key ->
          List.exists
            (fun l -> starts_with ~prefix:(Printf.sprintf "l%d/" l) key)
            mix_levels)
        (Server.cache_keys caching)
    then 1.0
    else 0.0
  in
  let hit_cells =
    Obs.Counter.levels (Obs.Registry.counter "server.cache_hits")
  in
  let per_level_hits =
    if
      List.for_all
        (fun l ->
          match List.assoc_opt l hit_cells with
          | Some h -> h > 0
          | None -> false)
        mix_levels
    then 1.0
    else 0.0
  in
  let ticks = if !Util.quick then 100 else 1000 in
  let cheap_lats, sheds, zooms = open_loop ~ticks repo in
  let cheap_p99 = percentile 0.99 cheap_lats in
  (* Cheap work is released every cycle ahead of the zoom backlog, so
     its virtual-time p99 stays within a few 1ms ticks. *)
  let cheap_bounded = if cheap_p99 <= 5.0 then 1.0 else 0.0 in
  let shed_rate = float_of_int sheds /. float_of_int (max 1 zooms) in
  Util.print_table
    [ "load shape"; "requests"; "metric"; "value" ]
    [
      [ "closed loop"; string_of_int n; "identical on/off"; Printf.sprintf "%.0f" identical ];
      [ "closed loop"; string_of_int n; "cache hit rate"; Printf.sprintf "%.3f" hit_rate ];
      [ "closed loop"; string_of_int n; "qps"; Printf.sprintf "%.0f" (float_of_int n /. Float.max 1e-9 secs) ];
      [ "closed loop"; string_of_int n; "p50 ms"; Printf.sprintf "%.3f" (percentile 0.5 lats) ];
      [ "closed loop"; string_of_int n; "p99 ms"; Printf.sprintf "%.3f" (percentile 0.99 lats) ];
      [ "open loop"; string_of_int (3 * ticks); "shed rate (zooms)"; Printf.sprintf "%.3f" shed_rate ];
      [ "open loop"; string_of_int (3 * ticks); "cheap p99 (virtual ms)"; Printf.sprintf "%.3f" cheap_p99 ];
    ];
  Util.emit "e18.identical" identical;
  Util.emit "e18.cache_partitioned" partitioned;
  Util.emit "e18.per_level_hits" per_level_hits;
  Util.emit "e18.cache_hit_rate" hit_rate;
  Util.emit "e18.cheap_bounded" cheap_bounded;
  Util.emit "e18.qps_closed" (float_of_int n /. Float.max 1e-9 secs);
  Util.emit "e18.p50_ms" (percentile 0.5 lats);
  Util.emit "e18.p99_ms" (percentile 0.99 lats);
  Util.emit "e18.cheap_p99_ms" cheap_p99;
  Util.emit "e18.shed_rate" shed_rate
