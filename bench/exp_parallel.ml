(* E15: multicore runtime scaling (domain pool).

   Three hot paths gained a parallel mode in the runtime PR — closure
   materialization (stratum-parallel bitset rows), index construction
   (token-hash-sharded sort-and-group), and batched query evaluation
   (plans fanned across domains against one frozen view). This
   experiment measures wall-clock scaling curves over 1/2/4/8 domains on
   synthetic executions and, for every jobs setting, asserts the results
   are identical to the sequential path (closure rows, built index,
   witness lists) — the determinism contract, re-checked under timing
   pressure rather than test-sized fixtures.

   Honest-numbers note: speedup is bounded by the physical core count.
   On a single-core box every jobs > 1 column measures oversubscription
   overhead, not speedup; the identical-results assertions are the part
   that must hold everywhere. *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Pool = Wfpriv_parallel.Pool
module Rng = Wfpriv_workloads.Rng
module Synthetic = Wfpriv_workloads.Synthetic

(* Edge probability shrinks with size so average degree stays bounded
   (same rationale as E14); closure rows are O(n^2 / 63) words, so the
   node axis stops at ~10^4 while the index axis stretches further by
   registering the largest spec under several repository names. *)
let sizes () =
  let base =
    [
      ( "10^3",
        {
          Synthetic.default_params with
          levels = 2;
          atomics_per_workflow = 140;
          edge_probability = 0.05;
        } );
      ( "10^4",
        {
          Synthetic.default_params with
          levels = 2;
          composites_per_workflow = 3;
          atomics_per_workflow = 764;
          edge_probability = 0.01;
        } );
    ]
  in
  if !Util.quick then [ List.hd base ] else base

let jobs_axis () = if !Util.quick then [ 1; 4 ] else [ 1; 2; 4; 8 ]

let depth_privilege spec =
  let h = Hierarchy.of_spec spec in
  Privilege.make spec
    (Spec.workflow_ids spec
    |> List.filter (fun w -> w <> Spec.root spec)
    |> List.map (fun w -> (w, Hierarchy.depth h w)))

(* A 64-query batch in the session style: selective structural pairs
   plus a few non-reachability operators, all against one view. *)
let query_batch spec =
  let ms = Spec.module_ids spec in
  let nth k =
    let l = List.length ms in
    List.nth ms (((k mod l) + l) mod l)
  in
  let pair i =
    Query_ast.Before
      ( Query_ast.Module_is (nth (3 + (i * 7))),
        Query_ast.Module_is (nth (List.length ms - 3 - (i * 11))) )
  in
  List.init 60 pair
  @ Query_ast.
      [
        And (Node Atomic_only, Before (Module_is (nth 5), Module_is (nth 29)));
        Carries (Module_is (nth 13), Any, "o3");
        Edge (Module_is (nth 17), Any);
        Inside (Module_is (nth 23), Spec.root spec);
      ]

(* Order-sensitive fold over every closure row — [Hashtbl.hash] stops
   after a few nodes, so roll a full fingerprint by hand. *)
let closure_fingerprint e =
  List.fold_left
    (fun acc u ->
      List.fold_left
        (fun h v -> ((h * 131) + v + 1) land max_int)
        (acc lxor 0x9e3779b9)
        (Engine.reachable_set e u))
    0 (Engine.nodes e)

let witness_fingerprint (ws : Engine.witness list) =
  List.map (fun w -> (w.Engine.holds, w.Engine.nodes)) ws

let speedup_cell ~base ms = Util.fmt_f ~digits:2 (base /. ms)

let e15 () =
  Util.heading "E15 Multicore runtime scaling (domain pool)";
  Printf.printf
    "recommended domains on this machine: %d%s\n"
    (Domain.recommended_domain_count ())
    (if !Util.quick then "  [--quick: smoke-size fixtures]" else "");
  let fixtures =
    List.map
      (fun (label, params) ->
        let rng = Rng.create 14 in
        let spec, exec = Synthetic.run rng params in
        (label, spec, exec))
      (sizes ())
  in
  let jobs = jobs_axis () in
  let pools = List.map (fun j -> (j, Pool.create ~jobs:j)) jobs in
  let pool_of j = List.assoc j pools in
  Fun.protect ~finally:(fun () ->
      List.iter (fun (_, p) -> Pool.shutdown p) pools)
  @@ fun () ->
  (* -- Closure materialization ------------------------------------- *)
  Util.subheading "Closure materialization (stratum-parallel bitset rows)";
  let closure_rows =
    List.concat_map
      (fun (label, _spec, exec) ->
        let ev = Exec_view.full exec in
        let results =
          List.map
            (fun j ->
              let e = Engine.of_exec_view ev in
              let (), ms =
                Util.wall_ms (fun () ->
                    Engine.materialize_closure ~pool:(pool_of j) e)
              in
              (j, ms, closure_fingerprint e, Engine.nb_nodes e))
            jobs
        in
        let _, base_ms, base_fp, nodes = List.hd results in
        List.map
          (fun (j, ms, fp, _) ->
            if fp <> base_fp then
              failwith
                (Printf.sprintf
                   "E15: closure rows differ between jobs=1 and jobs=%d (%s)"
                   j label);
            [
              label;
              string_of_int nodes;
              string_of_int j;
              Util.fmt_f ms;
              speedup_cell ~base:base_ms ms;
              "yes";
            ])
          results)
      fixtures
  in
  Util.print_table
    [ "size"; "nodes"; "jobs"; "wall ms"; "speedup"; "rows identical" ]
    closure_rows;
  (* -- Index build -------------------------------------------------- *)
  Util.subheading "Index build (token-hash-sharded sort-and-group)";
  let index_rows =
    List.concat_map
      (fun (label, spec, _exec) ->
        let privilege = depth_privilege spec in
        (* Several repository entries over the same spec: postings scale
           with entries at zero extra generation cost. *)
        let copies = if !Util.quick then 2 else 8 in
        let entries =
          List.init copies (fun i ->
              (Printf.sprintf "wf%d" i, spec, privilege))
        in
        let results =
          List.map
            (fun j ->
              let ix, ms =
                Util.wall_ms (fun () -> Index.build ~pool:(pool_of j) entries)
              in
              (j, ms, ix))
            jobs
        in
        let _, base_ms, base_ix = List.hd results in
        List.map
          (fun (j, ms, ix) ->
            if
              Index.nb_terms ix <> Index.nb_terms base_ix
              || Index.nb_postings ix <> Index.nb_postings base_ix
            then
              failwith
                (Printf.sprintf
                   "E15: index differs between jobs=1 and jobs=%d (%s)" j label);
            [
              label ^ Printf.sprintf " x%d" copies;
              string_of_int (Index.nb_postings ix);
              string_of_int j;
              Util.fmt_f ms;
              speedup_cell ~base:base_ms ms;
              "yes";
            ])
          results)
      fixtures
  in
  Util.print_table
    [ "size"; "postings"; "jobs"; "wall ms"; "speedup"; "index identical" ]
    index_rows;
  (* -- Batched evaluation ------------------------------------------- *)
  Util.subheading "64-query batch against one prepared view";
  let batch_rows =
    List.concat_map
      (fun (label, spec, exec) ->
        let ev = Exec_view.full exec in
        let plans = List.map Plan.compile (query_batch spec) in
        let engine = Engine.of_exec_view ev in
        Engine.materialize_closure engine;
        let reference =
          witness_fingerprint (List.map (Engine.run engine) plans)
        in
        let results =
          List.map
            (fun j ->
              let answers = ref [] in
              let ms =
                Util.bench_wall_ms
                  ~budget_ms:(if !Util.quick then 10.0 else 120.0)
                  (fun () ->
                    answers := Engine.run_batch ~pool:(pool_of j) engine plans)
              in
              if witness_fingerprint !answers <> reference then
                failwith
                  (Printf.sprintf
                     "E15: batch answers differ between sequential and \
                      jobs=%d (%s)"
                     j label);
              (j, ms))
            jobs
        in
        let _, base_ms = List.hd results in
        (match List.find_opt (fun (j, _) -> j = 4) results with
        | Some (_, ms4) -> Util.emit "e15.batch_speedup_j4" (base_ms /. ms4)
        | None -> ());
        List.map
          (fun (j, ms) ->
            [
              label;
              string_of_int j;
              Util.fmt_f ms;
              speedup_cell ~base:base_ms ms;
              "yes";
            ])
          results)
      fixtures
  in
  Util.print_table
    [ "size"; "jobs"; "wall ms/batch"; "speedup"; "answers identical" ]
    batch_rows;
  (* Reached only if every identical-results assertion above held; the
     regression gate pins this at 1.0 (a determinism break, not a timing
     change, is what fails the build). *)
  Util.emit "e15.identical" 1.0;
  Printf.printf
    "expected shape: on an N-core machine closure and batch wall time\n\
     shrink towards 1/min(jobs, N) of the jobs=1 column (the acceptance\n\
     bar: >= 2.5x at 4 domains on 4+ physical cores); on fewer cores the\n\
     jobs > cores columns show scheduler overhead instead. The identical\n\
     columns are asserted, not eyeballed: any divergence between the\n\
     parallel and sequential paths aborts the experiment.\n"
