(* Bechamel micro-benchmarks: one Test.make per experiment id, measuring
   the hot operation behind that experiment (monotonic clock, ns/run).
   Invoked via `bench/main.exe bechamel`; complements the macro tables. *)

open Bechamel
open Toolkit
open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Pool = Wfpriv_parallel.Pool
module Bitset = Wfpriv_graph.Bitset
module Rng = Wfpriv_workloads.Rng
module Synthetic = Wfpriv_workloads.Synthetic
module Disease = Wfpriv_workloads.Disease

let disease_exec = lazy (Disease.run ())

let synthetic =
  lazy
    (let rng = Rng.create 11 in
     let spec, exec = Synthetic.run rng Synthetic.default_params in
     let privilege =
       Privilege.make spec
         (Spec.workflow_ids spec
         |> List.filter (fun w -> w <> Spec.root spec)
         |> List.mapi (fun i w -> (w, 1 + (i mod 3))))
     in
     (spec, exec, privilege))

let gamma_table =
  lazy
    (let rng = Rng.create 3 in
     Synthetic.random_table rng ~n_inputs:3 ~n_outputs:2 ~domain_size:2)

let tests () =
  let spec, exec, privilege = Lazy.force synthetic in
  let table = Lazy.force gamma_table in
  let entries = [ ("synthetic", spec, privilege) ] in
  let index = Index.build entries in
  let q = Query_ast.Before (Query_ast.Atomic_only, Query_ast.Atomic_only) in
  [
    Test.make ~name:"F1.spec-view-full"
      (Staged.stage (fun () -> View.full Disease.spec));
    Test.make ~name:"F2.exec-view-collapse"
      (Staged.stage (fun () -> Exec_view.coarsest (Lazy.force disease_exec)));
    Test.make ~name:"F3.hierarchy-prefixes"
      (Staged.stage (fun () ->
           Hierarchy.all_prefixes (Hierarchy.of_spec Disease.spec)));
    Test.make ~name:"F4.execute-disease"
      (Staged.stage (fun () -> Disease.run ()));
    Test.make ~name:"F5.keyword-search"
      (Staged.stage (fun () ->
           Keyword.search ~strategy:`Specific Disease.spec
             [ "database"; "disorder risk" ]));
    Test.make ~name:"E1.gamma-level"
      (Staged.stage (fun () ->
           Module_privacy.privacy_level table ~hidden:[ "x0"; "y0" ]));
    Test.make ~name:"E2.greedy-hiding"
      (Staged.stage (fun () -> Module_privacy.greedy_hiding table ~gamma:2));
    Test.make ~name:"E3.min-cut"
      (Staged.stage
         (let g = Spec.graph_of Disease.spec "W3" in
          fun () ->
            Structural_privacy.hide_by_deletion g (Disease.m13, Disease.m11)));
    Test.make ~name:"E4.soundness-check"
      (Staged.stage
         (let g = Spec.graph_of Disease.spec "W3" in
          fun () -> Soundness.check g [ [ Disease.m11; Disease.m13 ] ]));
    Test.make ~name:"E5.on-the-fly-eval"
      (Staged.stage (fun () -> Secure_eval.on_the_fly privilege ~level:1 exec q));
    Test.make ~name:"E5.zoom-out-eval"
      (Staged.stage (fun () -> Secure_eval.zoom_out privilege ~level:1 exec q));
    Test.make ~name:"E6.index-lookup"
      (Staged.stage (fun () -> Index.lookup index ~level:2 "align"));
    Test.make ~name:"E7.rank-and-infer"
      (Staged.stage (fun () ->
           Ranking.infer_masked_tf ~target_base:0.0
             ~others:[ ("d1", 3.0); ("d2", 7.0) ]
             ~idf:1.0 ~max_tf:10 ~ranking:[ "d2"; "t"; "d1" ] ~target:"t"));
    Test.make ~name:"E8.adversary-assess"
      (Staged.stage
         (let inputs = List.map fst (Module_privacy.rows table) in
          fun () ->
            Audit.assess table (Audit.observe table ~hidden:[ "y0" ] inputs)));
    Test.make ~name:"E9.noisy-count"
      (Staged.stage
         (let rng = Rng.create 1 in
          let uniform () = Rng.float rng 1.0 in
          let runs = [ Lazy.force disease_exec ] in
          fun () ->
            Dp_count.noisy_count ~uniform ~epsilon:1.0 runs
              (Dp_count.Module_ran Disease.m6)));
    Test.make ~name:"E10.plan-two-targets"
      (Staged.stage
         (let g = Spec.graph_of Disease.spec "W3" in
          fun () ->
            Planner.plan g
              [ (Disease.m13, Disease.m11); (Disease.m9, Disease.m14) ]));
    Test.make ~name:"E11.materialize"
      (Staged.stage
         (let repo = Repository.create () in
          let () =
            Repository.add repo ~name:"d"
              ~policy:(Policy.make ~expand_levels:[ ("W2", 1) ] Disease.spec)
              ~executions:[ Lazy.force disease_exec ] ()
          in
          fun () -> Materialized.materialize repo ~levels:[ 0; 1 ]));
    Test.make ~name:"A2.cached-reaches"
      (Staged.stage
         (let cache = Reach_cache.create () in
          let view = Exec_view.coarsest (Lazy.force disease_exec) in
          fun () -> Reach_cache.reaches cache ~key:"k" view 0 1));
    Test.make ~name:"S.session-zoom"
      (Staged.stage (fun () ->
           let s =
             Session.start
               (Privilege.make Disease.spec [ ("W2", 1) ])
               ~level:1 (Lazy.force disease_exec)
           in
           Session.zoom_to_access_view s));
    Test.make ~name:"E12.possible-worlds-gamma"
      (Staged.stage
         (let table =
            Module_privacy.of_function
              ~inputs:[ Module_privacy.int_attr "s" 2 ]
              ~outputs:[ Module_privacy.int_attr "t" 2 ]
              (fun x -> [| x.(0) |])
          in
          let table2 =
            Module_privacy.of_function
              ~inputs:[ Module_privacy.int_attr "t" 2 ]
              ~outputs:[ Module_privacy.int_attr "z" 2 ]
              (fun x -> [| x.(0) |])
          in
          let p =
            Workflow_privacy.make ~t_sources:[ "s" ]
              [
                { Workflow_privacy.w_id = Disease.m1; w_table = table;
                  w_visibility = Workflow_privacy.Private };
                { Workflow_privacy.w_id = Disease.m2; w_table = table2;
                  w_visibility = Workflow_privacy.Public };
              ]
          in
          fun () -> Workflow_privacy.gamma p ~hidden:[ "t" ]));
    Test.make ~name:"Q.path-query-nfa"
      (Staged.stage
         (let view = Wfpriv_workflow.View.full Disease.spec in
          let pattern =
            Path_query.(
              Seq ( Atom (Query_ast.Module_is Wfpriv_workflow.Ids.input_module),
                    Seq (anything,
                         Atom (Query_ast.Module_is Wfpriv_workflow.Ids.output_module))))
          in
          fun () ->
            Path_query.matches_spec view pattern
              ~src:Wfpriv_workflow.Ids.input_module
              ~dst:Wfpriv_workflow.Ids.output_module));
    Test.make ~name:"S.wal-frame-roundtrip"
      (Staged.stage
         (let module Wal = Wfpriv_durable.Wal in
          let record =
            { Wal.lsn = 42; tag = 1; payload = String.make 256 'x' }
          in
          fun () -> Wal.records_of_string (Wal.encode record)));
    Test.make ~name:"S.repo-store-roundtrip"
      (Staged.stage
         (let repo = Repository.create () in
          let () =
            Repository.add repo ~name:"d"
              ~policy:(Policy.make Disease.spec)
              ~executions:[ Lazy.force disease_exec ] ()
          in
          let doc = Wfpriv_store.Repo_store.to_string repo in
          fun () -> Wfpriv_store.Repo_store.of_string doc));
    Test.make ~name:"E15.pool-roundtrip"
      (Staged.stage
         (* Full pool lifetime: spawn 4 domains, map, park, join — the
            fixed cost a short-lived parallel section must amortize. *)
         (let xs = Array.init 1000 (fun i -> i) in
          fun () ->
            let p = Pool.create ~jobs:4 in
            Fun.protect
              ~finally:(fun () -> Pool.shutdown p)
              (fun () -> Pool.parallel_map p (fun x -> x * x) xs)));
    Test.make ~name:"E15.bitset-iter-sparse"
      (Staged.stage
         (* Word-skipping iteration over a 1-in-500 populated bitset. *)
         (let b = Bitset.create 50_000 in
          let () =
            let i = ref 0 in
            while !i < 50_000 do
              Bitset.add b !i;
              i := !i + 500
            done
          in
          fun () ->
            let acc = ref 0 in
            Bitset.iter (fun i -> acc := !acc + i) b;
            !acc));
  ]

let run () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let grouped = Test.make_grouped ~name:"wfpriv" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Util.heading "Bechamel micro-benchmarks (monotonic clock)";
  Hashtbl.iter
    (fun measure per_test ->
      let rows =
        Hashtbl.fold
          (fun name ols acc ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some (x :: _) -> Printf.sprintf "%.1f" x
              | _ -> "-"
            in
            (name, est) :: acc)
          per_test []
        |> List.sort compare
        |> List.map (fun (n, e) -> [ n; e ])
      in
      Printf.printf "measure: %s (ns/run)\n" measure;
      Util.print_table [ "benchmark"; "ns/run" ] rows)
    merged

(* ------------------------------------------------------------------ *)
(* The experiment table: every macro experiment the harness can run,
   keyed by its DESIGN.md id. Lives here (not in [Main]) so both the
   dispatcher and error messages share one source of truth. *)

let experiments =
  [
    ("f1", Exp_figures.f1);
    ("f2", Exp_figures.f2);
    ("f3", Exp_figures.f3);
    ("f4", Exp_figures.f4);
    ("f5", Exp_figures.f5);
    ("e1", Exp_privacy.e1);
    ("e2", Exp_privacy.e2);
    ("e3", Exp_privacy.e3);
    ("e4", Exp_privacy.e4);
    ("e5", Exp_query.e5);
    ("e6", Exp_query.e6);
    ("e7", Exp_query.e7);
    ("e8", Exp_privacy.e8);
    ("e9", Exp_extensions.e9);
    ("e10", Exp_extensions.e10);
    ("e11", Exp_extensions.e11);
    ("e12", Exp_extensions.e12);
    ("e13", Exp_durable.e13);
    ("e14", Exp_engine.e14);
    ("e15", Exp_parallel.e15);
    ("e16", Exp_obs.e16);
    ("e17", Exp_query.e17);
    ("e18", Exp_server.e18);
    ("e19", Exp_live.e19);
    ("e20", Exp_shard.e20);
    ("e21", Exp_durable.e21);
    ("a1", Exp_extensions.a1);
    ("a2", Exp_extensions.a2);
    ("a3", Exp_extensions.a3);
    ("bechamel", run);
  ]

let ids () = List.map fst experiments
let find id = List.assoc_opt id experiments
