(* Experiment harness entry point.

   Usage:
     dune exec bench/main.exe                    -- run everything
     dune exec bench/main.exe -- f1 e3 e7        -- run selected experiments
     dune exec bench/main.exe -- e15 --quick     -- smoke-size fixtures (CI)
     dune exec bench/main.exe -- bechamel        -- micro-benchmarks only

   Experiment ids map to DESIGN.md's index: F1-F5 regenerate the paper's
   figures, E1-E15 quantify the challenges its sections pose, and A1-A3
   are design ablations. The table itself lives in {!Bench_registry}. *)

let () =
  let args =
    Array.to_list Sys.argv |> List.tl |> List.map String.lowercase_ascii
  in
  let flags, ids =
    List.partition
      (fun a -> String.length a >= 2 && String.sub a 0 2 = "--")
      args
  in
  List.iter
    (function
      | "--quick" -> Util.quick := true
      | f ->
          Printf.eprintf "unknown flag %S (known flags: --quick)\n" f;
          exit 1)
    flags;
  match ids with
  | [] ->
      print_endline
        "wfpriv experiment harness: F1-F5 (paper figures), E1-E15 (challenge\n\
         experiments), A1-A3 (ablations), bechamel (micro-benchmarks).\n\
         Running everything.";
      List.iter (fun (_, f) -> f ()) Bench_registry.experiments
  | ids ->
      List.iter
        (fun id ->
          match Bench_registry.find id with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %S; available: %s\n" id
                (String.concat ", " (Bench_registry.ids ()));
              exit 1)
        ids
