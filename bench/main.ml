(* Experiment harness entry point.

   Usage:
     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- f1 e3 e7     -- run selected experiments
     dune exec bench/main.exe -- bechamel     -- micro-benchmarks only

   Experiment ids map to DESIGN.md's index: F1-F5 regenerate the paper's
   figures, E1-E14 quantify the challenges its sections pose, and A1-A3
   are design ablations. *)

let experiments =
  [
    ("f1", Exp_figures.f1);
    ("f2", Exp_figures.f2);
    ("f3", Exp_figures.f3);
    ("f4", Exp_figures.f4);
    ("f5", Exp_figures.f5);
    ("e1", Exp_privacy.e1);
    ("e2", Exp_privacy.e2);
    ("e3", Exp_privacy.e3);
    ("e4", Exp_privacy.e4);
    ("e5", Exp_query.e5);
    ("e6", Exp_query.e6);
    ("e7", Exp_query.e7);
    ("e8", Exp_privacy.e8);
    ("e9", Exp_extensions.e9);
    ("e10", Exp_extensions.e10);
    ("e11", Exp_extensions.e11);
    ("e12", Exp_extensions.e12);
    ("e13", Exp_durable.e13);
    ("e14", Exp_engine.e14);
    ("a1", Exp_extensions.a1);
    ("a2", Exp_extensions.a2);
    ("a3", Exp_extensions.a3);
    ("bechamel", Bench_registry.run);
  ]

let () =
  let args =
    Array.to_list Sys.argv |> List.tl
    |> List.map String.lowercase_ascii
  in
  match args with
  | [] ->
      print_endline
        "wfpriv experiment harness: F1-F5 (paper figures), E1-E14 (challenge\n\
         experiments), A1-A2 (ablations), bechamel (micro-benchmarks).\n\
         Running everything.";
      List.iter (fun (_, f) -> f ()) experiments
  | ids ->
      List.iter
        (fun id ->
          match List.assoc_opt id experiments with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %S; known: %s\n" id
                (String.concat ", " (List.map fst experiments));
              exit 1)
        ids
