(* Experiment harness entry point.

   Usage:
     dune exec bench/main.exe                    -- run everything
     dune exec bench/main.exe -- f1 e3 e7        -- run selected experiments
     dune exec bench/main.exe -- e15 --quick     -- smoke-size fixtures (CI)
     dune exec bench/main.exe -- e14 --json      -- headline metrics as JSON
     dune exec bench/main.exe -- bechamel        -- micro-benchmarks only

   Experiment ids map to DESIGN.md's index: F1-F5 regenerate the paper's
   figures, E1-E17 quantify the challenges its sections pose, and A1-A3
   are design ablations. The table itself lives in {!Bench_registry}.

   With [--json], every table and progress line is routed to stderr and
   stdout carries exactly one JSON document of the headline metrics the
   experiments {!Util.emit} — so `main.exe -- e13 e14 e15 --quick --json
   > out.json` always parses, no matter what the experiments print. The
   redirect happens at the file-descriptor level (stdout's fd is
   re-pointed at stderr) because experiments print through buffered
   channels and C-level writers alike. *)

let emit_json fd =
  let metrics =
    Util.metrics_sorted ()
    |> List.map (fun (name, v) -> (name, Wfpriv_serial.Json.Num v))
  in
  let doc =
    Wfpriv_serial.Json.Obj
      [
        ("quick", Wfpriv_serial.Json.Bool !Util.quick);
        ("metrics", Wfpriv_serial.Json.Obj metrics);
      ]
  in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc (Wfpriv_serial.Json.to_string_pretty doc);
  output_char oc '\n';
  flush oc

let () =
  let args =
    Array.to_list Sys.argv |> List.tl |> List.map String.lowercase_ascii
  in
  let flags, ids =
    List.partition
      (fun a -> String.length a >= 2 && String.sub a 0 2 = "--")
      args
  in
  let json = ref false in
  List.iter
    (function
      | "--quick" -> Util.quick := true
      | "--json" -> json := true
      | f ->
          Printf.eprintf "unknown flag %S (known flags: --quick, --json)\n" f;
          exit 1)
    flags;
  let json_fd =
    if not !json then None
    else begin
      (* Save the real stdout, then point fd 1 at stderr for the run. *)
      let saved = Unix.dup Unix.stdout in
      flush stdout;
      Unix.dup2 Unix.stderr Unix.stdout;
      Some saved
    end
  in
  (match ids with
  | [] ->
      print_endline
        "wfpriv experiment harness: F1-F5 (paper figures), E1-E16 (challenge\n\
         experiments), A1-A3 (ablations), bechamel (micro-benchmarks).\n\
         Running everything.";
      List.iter (fun (_, f) -> f ()) Bench_registry.experiments
  | ids ->
      List.iter
        (fun id ->
          match Bench_registry.find id with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %S; available: %s\n" id
                (String.concat ", " (Bench_registry.ids ()));
              exit 1)
        ids);
  match json_fd with
  | None -> ()
  | Some fd ->
      flush stdout;
      emit_json fd
