(* Shared helpers for the experiment harness: timing, table rendering. *)

let quick = ref false
(* Set by `bench/main.exe -- ... --quick`: experiments that honour it
   shrink their fixtures to smoke-test size (CI crash detection, no
   timing claims). *)

(* Headline metrics, collected as experiments run and rendered as one
   JSON document by `--json` (see [Main]): the machine-readable channel
   the CI regression gate consumes, while tables keep going to the
   progress stream. Later emissions of one name win, so an experiment
   re-run in the same process overwrites itself. *)
let metrics : (string * float) list ref = ref []

let emit name value =
  metrics := (name, value) :: List.remove_assoc name !metrics

let metrics_sorted () = List.sort compare !metrics

let time_ms f =
  let t0 = Sys.time () in
  let r = f () in
  let t1 = Sys.time () in
  (r, (t1 -. t0) *. 1000.0)

(* Wall-clock timing for parallel sections: [Sys.time] sums CPU over all
   domains, which would hide any speedup. *)
let wall_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, (t1 -. t0) *. 1000.0)

let bench_wall_ms ?(budget_ms = 50.0) f =
  let t0 = Unix.gettimeofday () in
  let rec go n =
    ignore (f ());
    let elapsed = (Unix.gettimeofday () -. t0) *. 1000.0 in
    if elapsed < budget_ms then go (n + 1) else (n, elapsed)
  in
  let n, elapsed = go 1 in
  elapsed /. float_of_int n

(* Repeat a thunk until ~[budget_ms] of CPU time is spent (at least once)
   and report the mean per-run milliseconds. *)
let bench_ms ?(budget_ms = 50.0) f =
  let t0 = Sys.time () in
  let rec go n =
    ignore (f ());
    let elapsed = (Sys.time () -. t0) *. 1000.0 in
    if elapsed < budget_ms then go (n + 1) else (n, elapsed)
  in
  let n, elapsed = go 1 in
  elapsed /. float_of_int n

let heading title =
  Printf.printf "\n==== %s ====\n%!" title

let subheading title = Printf.printf "\n-- %s --\n%!" title

(* Fixed-width table printer: header row + rows of strings. *)
let print_table header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout

let fmt_f ?(digits = 2) x = Printf.sprintf "%.*f" digits x
let fmt_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
