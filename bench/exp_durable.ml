(* E13: durable storage engine — WAL append cost and recovery time
   against the whole-file Repo_store baseline (DESIGN.md, Durability).
   The WAL journals one mutation per append; the baseline rewrites the
   entire repository file, so its per-append cost grows with the store. *)

open Wfpriv_query
module Disease = Wfpriv_workloads.Disease
module Durable_repo = Wfpriv_durable.Durable_repo
module Recovery = Wfpriv_durable.Recovery
module Repo_store = Wfpriv_store.Repo_store

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let e13 () =
  Util.heading "E13  Durable store: WAL appends vs whole-file saves";
  let n = 100 in
  let exec = Disease.run () in
  let policy = Wfpriv_privacy.Policy.make Disease.spec in
  (* WAL-backed: journal one record per append. *)
  let dir = fresh_dir "wfpriv-e13-wal" in
  let t = Durable_repo.init dir in
  let _ =
    Durable_repo.append t
      (Repository.Add_entry { entry_name = "d"; policy; executions = [] })
  in
  let (), wal_ms =
    Util.time_ms (fun () ->
        for _ = 1 to n do
          ignore
            (Durable_repo.append t
               (Repository.Add_execution { entry_name = "d"; exec }))
        done)
  in
  Durable_repo.close t;
  let (_, report), replay_ms = Util.time_ms (fun () -> Recovery.open_dir dir) in
  (* After a checkpoint recovery starts from the snapshot instead. *)
  let t = Durable_repo.open_dir dir in
  let _ = Durable_repo.checkpoint t in
  let _ = Durable_repo.compact t in
  let _ = Durable_repo.prune_snapshots t in
  Durable_repo.close t;
  let (_, report'), snap_ms = Util.time_ms (fun () -> Recovery.open_dir dir) in
  (* Baseline: rewrite the whole store file on every mutation. *)
  let file = Filename.temp_file "wfpriv-e13-file" ".json" in
  let repo = Repository.create () in
  Repository.add repo ~name:"d" ~policy ~executions:[] ();
  let (), file_ms =
    Util.time_ms (fun () ->
        for _ = 1 to n do
          Repository.add_execution repo ~name:"d" exec;
          Repo_store.save file repo
        done)
  in
  let _, load_ms = Util.time_ms (fun () -> Repo_store.load file) in
  Util.emit "e13.wal_ms_per_op" (wal_ms /. float_of_int n);
  Util.emit "e13.file_ms_per_op" (file_ms /. float_of_int n);
  Util.emit "e13.replay_ms" replay_ms;
  Util.emit "e13.snapshot_recover_ms" snap_ms;
  Util.print_table
    [ "store"; "op"; "total ms"; "ms/op" ]
    [
      [ "wal"; Printf.sprintf "%d appends" n; Util.fmt_f wal_ms;
        Util.fmt_f (wal_ms /. float_of_int n) ];
      [ "file"; Printf.sprintf "%d save cycles" n; Util.fmt_f file_ms;
        Util.fmt_f (file_ms /. float_of_int n) ];
      [ "wal"; Printf.sprintf "recover (replay %d)" report.Recovery.replayed;
        Util.fmt_f replay_ms; "-" ];
      [ "wal"; Printf.sprintf "recover (snapshot, replay %d)"
          report'.Recovery.replayed;
        Util.fmt_f snap_ms; "-" ];
      [ "file"; "load"; Util.fmt_f load_ms; "-" ];
    ];
  rm_rf dir;
  Sys.remove file;
  Printf.printf
    "expected shape: WAL ms/op stays flat while whole-file saves grow\n\
     linearly with the store; post-checkpoint recovery replays no records.\n"

(* E21: durable erasure — the history-rewrite cost as the store grows.
   `Durable_repo.erase` commits the tombstone, checkpoints the redacted
   state, compacts every pre-erase segment and prunes every pre-erase
   snapshot, so its cost is O(live store), not O(1) like a plain append.
   This experiment measures that curve, and checks the rewritten store
   recovers to the same entry count it held before the erase.

   Metrics:
   - e21.erase_ms_small / e21.erase_ms_large: one data-item erasure on
     the smallest and largest store (wall ms);
   - e21.erase_scaling: large/small cost ratio (expected to grow with
     the ratio of live records, not with the number of dead segments);
   - e21.recover_ms_large: reopening the rewritten large store (the
     redacted snapshot makes this replay-free);
   - e21.redaction_ok: 1.0 iff after erasing data "snps" every
     recovered execution masks it and the entry count is unchanged. *)

let e21 () =
  Util.heading "E21  Durable erasure: history-rewrite cost vs store size";
  let sizes = if !Util.quick then [ 8; 32 ] else [ 8; 64; 256 ] in
  let exec = Disease.run () in
  let policy = Wfpriv_privacy.Policy.make Disease.spec in
  let ok = ref true in
  let rows =
    List.map
      (fun n ->
        let dir = fresh_dir "wfpriv-e21" in
        let t = Durable_repo.init dir in
        ignore
          (Durable_repo.append t
             (Repository.Add_entry
                { entry_name = "subject"; policy; executions = [] }));
        for _ = 1 to n do
          ignore
            (Durable_repo.append t
               (Repository.Add_execution { entry_name = "subject"; exec }))
        done;
        let report, erase_ms =
          Util.wall_ms (fun () ->
              Durable_repo.erase t
                (Repository.Erase
                   { entry_name = "subject"; data_name = Some "snps" }))
        in
        Durable_repo.close t;
        let (repo, rep), recover_ms =
          Util.wall_ms (fun () -> Recovery.open_dir dir)
        in
        let e = Repository.find repo "subject" in
        if List.length e.Repository.executions <> n then ok := false;
        List.iter
          (fun ex ->
            match Wfpriv_workflow.Execution.items_named ex "snps" with
            | [] -> ok := false
            | items ->
                List.iter
                  (fun (it : Wfpriv_workflow.Execution.item) ->
                    if not (Wfpriv_workflow.Data_value.is_masked it.value)
                    then ok := false)
                  items)
          e.Repository.executions;
        if rep.Recovery.replayed <> 0 then ok := false;
        rm_rf dir;
        (n, erase_ms, recover_ms, report))
      sizes
  in
  let _, ms_small, _, _ = List.hd rows in
  let n_large, ms_large, recover_large, _ = List.nth rows (List.length rows - 1) in
  Util.emit "e21.erase_ms_small" ms_small;
  Util.emit "e21.erase_ms_large" ms_large;
  Util.emit "e21.erase_scaling" (ms_large /. Float.max 1e-6 ms_small);
  Util.emit "e21.recover_ms_large" recover_large;
  Util.emit "e21.redaction_ok" (if !ok then 1.0 else 0.0);
  Util.print_table
    [ "runs"; "erase ms"; "recover ms"; "dropped"; "pruned" ]
    (List.map
       (fun (n, erase_ms, recover_ms, r) ->
         [
           string_of_int n; Util.fmt_f erase_ms; Util.fmt_f recover_ms;
           string_of_int r.Durable_repo.er_dropped_segments;
           string_of_int r.Durable_repo.er_pruned_snapshots;
         ])
       rows);
  Printf.printf
    "expected shape: erase cost grows with the live store (each rewrite\n\
     re-snapshots %d runs) while recovery stays replay-free.\n"
    n_large
