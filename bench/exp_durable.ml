(* E13: durable storage engine — WAL append cost and recovery time
   against the whole-file Repo_store baseline (DESIGN.md, Durability).
   The WAL journals one mutation per append; the baseline rewrites the
   entire repository file, so its per-append cost grows with the store. *)

open Wfpriv_query
module Disease = Wfpriv_workloads.Disease
module Durable_repo = Wfpriv_durable.Durable_repo
module Recovery = Wfpriv_durable.Recovery
module Repo_store = Wfpriv_store.Repo_store

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let e13 () =
  Util.heading "E13  Durable store: WAL appends vs whole-file saves";
  let n = 100 in
  let exec = Disease.run () in
  let policy = Wfpriv_privacy.Policy.make Disease.spec in
  (* WAL-backed: journal one record per append. *)
  let dir = fresh_dir "wfpriv-e13-wal" in
  let t = Durable_repo.init dir in
  let _ =
    Durable_repo.append t
      (Repository.Add_entry { entry_name = "d"; policy; executions = [] })
  in
  let (), wal_ms =
    Util.time_ms (fun () ->
        for _ = 1 to n do
          ignore
            (Durable_repo.append t
               (Repository.Add_execution { entry_name = "d"; exec }))
        done)
  in
  Durable_repo.close t;
  let (_, report), replay_ms = Util.time_ms (fun () -> Recovery.open_dir dir) in
  (* After a checkpoint recovery starts from the snapshot instead. *)
  let t = Durable_repo.open_dir dir in
  let _ = Durable_repo.checkpoint t in
  let _ = Durable_repo.compact t in
  let _ = Durable_repo.prune_snapshots t in
  Durable_repo.close t;
  let (_, report'), snap_ms = Util.time_ms (fun () -> Recovery.open_dir dir) in
  (* Baseline: rewrite the whole store file on every mutation. *)
  let file = Filename.temp_file "wfpriv-e13-file" ".json" in
  let repo = Repository.create () in
  Repository.add repo ~name:"d" ~policy ~executions:[] ();
  let (), file_ms =
    Util.time_ms (fun () ->
        for _ = 1 to n do
          Repository.add_execution repo ~name:"d" exec;
          Repo_store.save file repo
        done)
  in
  let _, load_ms = Util.time_ms (fun () -> Repo_store.load file) in
  Util.emit "e13.wal_ms_per_op" (wal_ms /. float_of_int n);
  Util.emit "e13.file_ms_per_op" (file_ms /. float_of_int n);
  Util.emit "e13.replay_ms" replay_ms;
  Util.emit "e13.snapshot_recover_ms" snap_ms;
  Util.print_table
    [ "store"; "op"; "total ms"; "ms/op" ]
    [
      [ "wal"; Printf.sprintf "%d appends" n; Util.fmt_f wal_ms;
        Util.fmt_f (wal_ms /. float_of_int n) ];
      [ "file"; Printf.sprintf "%d save cycles" n; Util.fmt_f file_ms;
        Util.fmt_f (file_ms /. float_of_int n) ];
      [ "wal"; Printf.sprintf "recover (replay %d)" report.Recovery.replayed;
        Util.fmt_f replay_ms; "-" ];
      [ "wal"; Printf.sprintf "recover (snapshot, replay %d)"
          report'.Recovery.replayed;
        Util.fmt_f snap_ms; "-" ];
      [ "file"; "load"; Util.fmt_f load_ms; "-" ];
    ];
  rm_rf dir;
  Sys.remove file;
  Printf.printf
    "expected shape: WAL ms/op stays flat while whole-file saves grow\n\
     linearly with the store; post-checkpoint recovery replays no records.\n"
