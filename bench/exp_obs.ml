(* E16: observability overhead on the hot query path.

   The observability PR's contract is that instrumentation is safe to
   leave compiled into the hot paths: with the null trace sink, an
   instrumented site costs one atomic load when recording is off and a
   few [Atomic.fetch_and_add]s when it is on — [Engine.run] deliberately
   never reads the clock. This experiment measures the E14 workload (the
   repeated structural-query batch on one prepared view) three ways:

   - [off]: observability disabled (the default for library users);
   - [null]: metrics recording on, trace sink null — the `WFPRIV_OBS=1`
     production setting;
   - [ring]: metrics on and every span recorded to the in-memory ring —
     the ceiling, paid only while actively tracing.

   Acceptance bar (EXPERIMENTS.md): the null-sink column stays within 5%
   of the disabled column. *)

open Wfpriv_workflow
open Wfpriv_query
module Obs = Wfpriv_obs
module Rng = Wfpriv_workloads.Rng
module Synthetic = Wfpriv_workloads.Synthetic

(* Minimum single-iteration time within a CPU-time budget. E16 asks a
   ±5% question of a deterministic loop, so [Util.bench_ms]'s mean —
   which keeps every GC pause and scheduler preemption in the average —
   is the wrong estimator; the fastest observed iteration is the one
   with the least interference in all three modes. *)
let min_iter_ms ~budget_ms f =
  let t0 = Sys.time () in
  let rec go best =
    let s = Sys.time () in
    ignore (f ());
    let e = Sys.time () in
    let best = Float.min best ((e -. s) *. 1000.0) in
    if (e -. t0) *. 1000.0 < budget_ms then go best else best
  in
  go infinity

let e16 () =
  Util.heading "E16 Instrumentation overhead (metrics + null sink)";
  let saved_enabled = Obs.Config.enabled () in
  let picked =
    (* The 10^3 E14 fixture: big enough that a batch is real work, small
       enough that --quick CI runs afford several timed repetitions. *)
    List.filter (fun (l, _) -> l = "10^3") Exp_engine.sizes
  in
  let rows =
    List.concat_map
      (fun (label, params) ->
        let rng = Rng.create 14 in
        let spec, exec = Synthetic.run rng params in
        let ev = Exec_view.full exec in
        let qs = Exp_engine.query_batch spec in
        let engine = Engine.of_exec_view ev in
        Engine.materialize_closure engine;
        let plans = List.map Plan.compile qs in
        let batch () = List.iter (fun p -> ignore (Engine.run engine p)) plans in
        let budget_ms = if !Util.quick then 40.0 else 200.0 in
        (* The per-query instrumentation cost (a handful of atomic adds)
           sits far below this box's run-to-run noise, so measuring each
           mode once in sequence would mostly compare scheduler drift.
           Interleave the modes across several rounds — drift then hits
           all three alike — and keep each mode's minimum, the standard
           way to strip one-sided noise from a deterministic loop. *)
        let modes =
          [|
            (fun () -> Obs.Config.set_enabled false);
            (fun () ->
              Obs.Config.set_enabled true;
              Obs.Trace.set_null ());
            (fun () ->
              Obs.Config.set_enabled true;
              Obs.Trace.set_ring ());
          |]
        in
        let best = Array.make (Array.length modes) infinity in
        for _ = 1 to 5 do
          Array.iteri
            (fun i set ->
              set ();
              batch ();
              best.(i) <- Float.min best.(i) (min_iter_ms ~budget_ms batch))
            modes
        done;
        let off_ms = best.(0) and null_ms = best.(1) and ring_ms = best.(2) in
        Obs.Trace.set_null ();
        Obs.Config.set_enabled false;
        let pct over base = 100.0 *. ((over -. base) /. base) in
        Util.emit "e16.null_overhead_pct" (pct null_ms off_ms);
        Util.emit "e16.ring_overhead_pct" (pct ring_ms off_ms);
        [
          [ label; "off"; Util.fmt_f off_ms; "-" ];
          [ label; "null"; Util.fmt_f null_ms;
            Util.fmt_f ~digits:1 (pct null_ms off_ms) ];
          [ label; "ring"; Util.fmt_f ring_ms;
            Util.fmt_f ~digits:1 (pct ring_ms off_ms) ];
        ])
      picked
  in
  Obs.Config.set_enabled saved_enabled;
  Util.print_table [ "size"; "mode"; "batch ms"; "overhead %" ] rows;
  Printf.printf
    "expected shape: the null column stays within 5%% of off — counter\n\
     bumps are the only cost, Engine.run never reads the clock; ring\n\
     adds span recording (one mutex + clock pair per batch) and is the\n\
     bound paid while actively tracing. Negative percentages are timing\n\
     noise: treat anything under a few percent as parity.\n"
