(* E19: live ingestion — an open-loop writer streaming appends against
   closed-loop readers, plus incremental closure maintenance.

   Three claims:

   - epoch isolation: a reader that pins a generation before the writer
     starts gets bit-identical answers after every append has landed,
     and the final served answers equal a frozen server over a frozen
     rebuild of the final generation (response-for-response);

   - bounded reader latency: closed-loop query/top-k latency keeps a
     bounded p99 while the writer commits a durable generation per
     batch — the reader path never blocks on the writer;

   - incremental closures pay off: extending a memoized engine by a few
     appended nodes is much cheaper than re-preparing the extended
     graph from scratch.

   Gated metrics (bench/baseline.json): e19.pinned_identical,
   e19.final_matches_frozen, e19.query_p99_bounded,
   e19.incremental_closure_speedup. Appends/sec and raw latencies are
   informational. The run also feeds the server latency histograms
   whose p99 upper bounds are exported as slo.server.query_p99_ms and
   slo.server.topk_p99_ms — the lower-is-better SLO section of the
   baseline (bench/compare.ml). *)

open Wfpriv_privacy
module Obs = Wfpriv_obs
module Server = Wfpriv_server.Server
module Wire = Wfpriv_server.Wire
module Repository = Wfpriv_query.Repository
module Live_index = Wfpriv_query.Live_index
module Engine = Wfpriv_query.Engine
module Durable_repo = Wfpriv_durable.Durable_repo
module Live_repo = Wfpriv_durable.Live_repo
module Disease = Wfpriv_workloads.Disease
module Clinical = Wfpriv_workloads.Clinical
module Synthetic = Wfpriv_workloads.Synthetic
module Rng = Wfpriv_workloads.Rng

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let in_tmp_dir f =
  let dir = Filename.temp_file "wfpriv-e19" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
      let a = Array.of_list sorted in
      let i = int_of_float (p *. float_of_int (Array.length a)) in
      a.(min (Array.length a - 1) i)

let appender ~entry ~workload ~seed =
  (match workload with
  | None | Some "synthetic" -> ()
  | Some w -> invalid_arg (Printf.sprintf "unknown workload %S" w));
  let spec, exec = Synthetic.run (Rng.create seed) Synthetic.default_params in
  Repository.Add_entry
    { entry_name = entry; policy = Policy.make spec; executions = [ exec ] }

(* The closed-loop reader mix, all privilege levels represented. *)
let reader_mix =
  let vocab = Synthetic.default_params.Synthetic.keyword_vocabulary in
  [
    (0, Wire.Topk { k = 5; keywords = [ List.nth vocab 0; "snp" ] });
    (2, Wire.Topk { k = 3; keywords = [ List.nth vocab 1 ] });
    (1, Wire.Query
          {
            entry = "disease-susceptibility";
            run = 0;
            queries = [ "node(~\"risk\")" ];
          });
    (3, Wire.Query
          { entry = "clinical-trial"; run = 0; queries = [ "node(*)" ] });
  ]

let probe server =
  List.mapi
    (fun i (level, req) ->
      Wire.encode_response Wire.Json
        (Server.handle server ~client:(50 + i)
           { Wire.rid = 7000 + i; level; deadline_ms = 0; req }))
    reader_mix

(* Streamed ingestion against a live server on a virtual clock: an
   open-loop writer submits one append per tick; closed-loop readers
   issue the mix through [handle] (one in-flight request each),
   wall-clock timed. Returns (reader latencies ms, appends committed,
   ingest wall seconds, pinned_identical, final_matches_frozen). *)
let ingest_run ~ticks dir =
  let store = Durable_repo.init (Filename.concat dir "store") in
  Fun.protect ~finally:(fun () -> Durable_repo.close store) @@ fun () ->
  let disease_policy =
    Policy.make
      ~expand_levels:[ ("W2", 1); ("W3", 2); ("W4", 3) ]
      ~data_levels:[ ("disorders", 2); ("prognosis", 1) ]
      Disease.spec
  in
  ignore
    (Durable_repo.append store
       (Repository.Add_entry
          {
            entry_name = "disease-susceptibility";
            policy = disease_policy;
            executions = [ Disease.run () ];
          }));
  ignore
    (Durable_repo.append store
       (Repository.Add_entry
          {
            entry_name = "clinical-trial";
            policy = Clinical.policy;
            executions = [ Clinical.run () ];
          }));
  let live = Live_repo.of_store store in
  let now = ref 0.0 in
  let server = Server.create_live ~now:(fun () -> !now) ~appender live in
  (* A reader pins the pre-ingest generation and keeps its answers. *)
  let pinned = Live_repo.pin live in
  let pinned_before =
    List.map
      (fun (_, req) ->
        match req with
        | Wire.Topk { k; keywords } ->
            Live_index.top_k pinned.Live_repo.gen_view ~level:9 ~k keywords
        | _ -> [])
      reader_mix
  in
  let lats = ref [] in
  let committed = ref 0 in
  let rid = ref 0 in
  let t0 = Unix.gettimeofday () in
  for tick = 0 to ticks - 1 do
    (* Open-loop writer: one append frame per tick. *)
    incr rid;
    (match
       Server.submit server ~client:99
         {
           Wire.rid = !rid;
           level = 9;
           deadline_ms = 0;
           req =
             Wire.Append
               {
                 entry = Printf.sprintf "stream-%04d" tick;
                 workload = None;
                 seed = tick;
               };
         }
     with
    | None -> ()
    | Some _ -> failwith "e19: append rejected at admission");
    (* Closed-loop readers: the whole mix, synchronously, timed. *)
    List.iteri
      (fun i (level, req) ->
        incr rid;
        let s = Unix.gettimeofday () in
        ignore
          (Server.handle server ~client:i
             { Wire.rid = !rid; level; deadline_ms = 0; req });
        lats := (Unix.gettimeofday () -. s) *. 1000.0 :: !lats)
      reader_mix;
    (* Drain the cycle: the queued append commits and publishes. *)
    List.iter
      (fun (_, _, r) ->
        match r with
        | Wire.Result { result = Wire.Committed _; _ } -> incr committed
        | Wire.Result _ -> ()
        | Wire.Error { message; _ } -> failwith ("e19: append failed: " ^ message))
      (Server.drain_all server);
    now := !now +. 0.001
  done;
  let ingest_secs = Unix.gettimeofday () -. t0 in
  (* Epoch isolation: the pinned generation still answers bit-identically. *)
  let pinned_after =
    List.map
      (fun (_, req) ->
        match req with
        | Wire.Topk { k; keywords } ->
            Live_index.top_k pinned.Live_repo.gen_view ~level:9 ~k keywords
        | _ -> [])
      reader_mix
  in
  let pinned_identical = pinned_before = pinned_after in
  (* Final generation = frozen rebuild, response-for-response. *)
  let final = Live_repo.pin live in
  let frozen = Server.create final.Live_repo.gen_repo in
  let final_matches = probe server = probe frozen in
  (!lats, !committed, ingest_secs, pinned_identical, final_matches)

(* Incremental closure maintenance vs from-scratch preparation on a
   deep synthetic module universe. *)
let closure_speedup () =
  let params =
    {
      Synthetic.default_params with
      levels = (if !Util.quick then 3 else 4);
      composites_per_workflow = 3;
      atomics_per_workflow = 8;
    }
  in
  let spec = Synthetic.spec (Rng.create 19) params in
  let base = Engine.of_spec spec in
  let ids = Engine.nodes base in
  let top = List.fold_left max 0 ids in
  let arr = Array.of_list ids in
  let n_new = 24 in
  let nodes = List.init n_new (fun i -> (top + 1 + i, None)) in
  let edges =
    List.concat
      (List.init n_new (fun i ->
           let nid = top + 1 + i in
           let attach = (arr.(i * 131 mod Array.length arr), nid) in
           if i = 0 then [ attach ] else [ attach; (top + i, nid) ]))
  in
  Engine.materialize_closure base;
  let incr_ms =
    Util.bench_wall_ms (fun () ->
        let e = Engine.extend base ~nodes ~edges in
        Engine.materialize_closure e)
  in
  let scratch_ms =
    Util.bench_wall_ms (fun () ->
        let e = Engine.extend (Engine.of_spec spec) ~nodes ~edges in
        Engine.materialize_closure e)
  in
  (List.length ids, incr_ms, scratch_ms)

let bucket_p99_ms name =
  let h = Obs.Registry.histogram name in
  let total = Obs.Histogram.count h in
  if total = 0 then 0.0
  else begin
    let want = int_of_float (ceil (0.99 *. float_of_int total)) in
    let seen = ref 0 and p99_ub = ref 0 in
    List.iter
      (fun (lower, count) ->
        if !seen < want && count > 0 then begin
          seen := !seen + count;
          if !seen >= want then p99_ub := max 1 (2 * lower)
        end)
      (Obs.Histogram.buckets h);
    float_of_int !p99_ub /. 1e6
  end

let e19 () =
  Util.heading "E19 Live ingestion: streaming appends vs reader p99";
  let saved_enabled = Obs.Config.enabled () in
  Obs.Config.set_enabled true;
  Obs.Registry.reset ();
  Fun.protect ~finally:(fun () -> Obs.Config.set_enabled saved_enabled)
  @@ fun () ->
  let ticks = if !Util.quick then 30 else 200 in
  let lats, committed, ingest_secs, pinned_identical, final_matches =
    in_tmp_dir (fun dir -> ingest_run ~ticks dir)
  in
  let appends_per_sec = float_of_int committed /. Float.max 1e-9 ingest_secs in
  let query_p99 = percentile 0.99 lats in
  (* The bound is generous — the claim is "readers never block on the
     writer", not a hardware speed claim. *)
  let query_p99_bounded = if query_p99 <= 100.0 then 1.0 else 0.0 in
  let n_nodes, incr_ms, scratch_ms = closure_speedup () in
  let speedup = scratch_ms /. Float.max 1e-9 incr_ms in
  let slo_query = bucket_p99_ms "server.latency_ns.query" in
  let slo_topk = bucket_p99_ms "server.latency_ns.topk" in
  Util.print_table
    [ "metric"; "value" ]
    [
      [ "appends committed"; string_of_int committed ];
      [ "appends/sec (durable commits)"; Printf.sprintf "%.0f" appends_per_sec ];
      [ "reader p50 ms"; Printf.sprintf "%.3f" (percentile 0.5 lats) ];
      [ "reader p99 ms"; Printf.sprintf "%.3f" query_p99 ];
      [ "pinned generation identical"; Printf.sprintf "%.0f" (if pinned_identical then 1.0 else 0.0) ];
      [ "final = frozen rebuild"; Printf.sprintf "%.0f" (if final_matches then 1.0 else 0.0) ];
      [ "closure nodes"; string_of_int n_nodes ];
      [ "extend+materialize ms"; Printf.sprintf "%.3f" incr_ms ];
      [ "from-scratch ms"; Printf.sprintf "%.3f" scratch_ms ];
      [ "incremental speedup"; Printf.sprintf "%.2fx" speedup ];
      [ "slo server.query p99 ms"; Printf.sprintf "%.3f" slo_query ];
      [ "slo server.topk p99 ms"; Printf.sprintf "%.3f" slo_topk ];
    ];
  Util.emit "e19.pinned_identical" (if pinned_identical then 1.0 else 0.0);
  Util.emit "e19.final_matches_frozen" (if final_matches then 1.0 else 0.0);
  Util.emit "e19.query_p99_bounded" query_p99_bounded;
  Util.emit "e19.incremental_closure_speedup" speedup;
  Util.emit "e19.appends_per_sec" appends_per_sec;
  Util.emit "e19.reader_p99_ms" query_p99;
  Util.emit "slo.server.query_p99_ms" slo_query;
  Util.emit "slo.server.topk_p99_ms" slo_topk
