(* F1–F5: regenerate the paper's five figures from the implementation.
   These are exact artefacts (also pinned by the test suite); the harness
   prints them so EXPERIMENTS.md can cite the output verbatim. *)

open Wfpriv_workflow
open Wfpriv_query
module Disease = Wfpriv_workloads.Disease

let f1 () =
  Util.heading "F1  Fig. 1 — disease susceptibility workflow specification";
  Format.printf "%a@." Spec.pp Disease.spec;
  Printf.printf "modules: %d  workflows: %d  composites: %s\n"
    (Spec.nb_modules Disease.spec)
    (Spec.nb_workflows Disease.spec)
    (String.concat ", "
       (List.map Ids.module_name (Spec.composite_modules Disease.spec)))

let f2 () =
  Util.heading "F2  Fig. 2 — view of the provenance graph under prefix {W1}";
  let exec = Disease.run () in
  let v = Exec_view.coarsest exec in
  Format.printf "%a@." Exec_view.pp v

let f3 () =
  Util.heading "F3  Fig. 3 — expansion hierarchy and its prefixes";
  let h = Hierarchy.of_spec Disease.spec in
  Format.printf "%a@." Hierarchy.pp h;
  Printf.printf "prefixes (%d):\n" (Hierarchy.nb_prefixes h);
  List.iter
    (fun p -> Printf.printf "  {%s}\n" (String.concat ", " p))
    (Hierarchy.all_prefixes h)

let f4 () =
  Util.heading "F4  Fig. 4 — execution of the disease workflow";
  let exec = Disease.run () in
  Format.printf "%a@." Execution.pp exec;
  Printf.printf "process ids: S1..S%d   data items: d0..d%d\n"
    (List.length
       (List.filter
          (fun n ->
            match Execution.node_kind exec n with
            | Execution.Atomic_exec _ | Execution.Begin_composite _ -> true
            | _ -> false)
          (Execution.nodes exec)))
    (Execution.nb_items exec - 1)

let f5 () =
  Util.heading
    "F5  Fig. 5 — keyword query \"database, disorder risk\" (finest-witness answer)";
  match
    Keyword.search ~strategy:`Specific Disease.spec [ "database"; "disorder risk" ]
  with
  | None -> Printf.printf "no match (unexpected)\n"
  | Some a ->
      List.iter
        (fun (m : Keyword.match_info) ->
          Printf.printf "keyword %-15S witnesses: %s\n" m.Keyword.keyword
            (String.concat ", " (List.map Ids.module_name m.Keyword.witnesses)))
        a.Keyword.matches;
      Format.printf "%a@." View.pp a.Keyword.view

let all () =
  f1 ();
  f2 ();
  f3 ();
  f4 ();
  f5 ()
