(* E1, E2, E8: module privacy (Γ-privacy) experiments.
   E3, E4: structural privacy experiments. *)

open Wfpriv_privacy
module Rng = Wfpriv_workloads.Rng
module Synthetic = Wfpriv_workloads.Synthetic
module Reachability = Wfpriv_graph.Reachability
module Digraph = Wfpriv_graph.Digraph

(* A concrete stand-in for the paper's M1 "Determine Genetic
   Susceptibility": SNP panel (8 values) x ethnicity (4) -> disorder set
   (8) x risk score (4). Deterministic mixing keeps it interesting. *)
let m1_table =
  Module_privacy.of_function
    ~inputs:
      [ Module_privacy.int_attr "snps" 8; Module_privacy.int_attr "ethnicity" 4 ]
    ~outputs:
      [ Module_privacy.int_attr "disorders" 8; Module_privacy.int_attr "risk" 4 ]
    (fun x ->
      let v i =
        match x.(i) with Wfpriv_workflow.Data_value.Int n -> n | _ -> 0
      in
      let s = v 0 and e = v 1 in
      [|
        Wfpriv_workflow.Data_value.Int (((s * 3) + (e * 5)) mod 8);
        Wfpriv_workflow.Data_value.Int ((s + e) mod 4);
      |])

(* Utility weights: intermediate analysis data is cheap to hide, final
   outputs are precious (the optimisation has to work for its money). *)
let m1_weights = function
  | "disorders" -> 8
  | "risk" -> 6
  | "snps" -> 3
  | "ethnicity" -> 1
  | _ -> 1

let e1 () =
  Util.heading
    "E1  Privacy vs. utility: min-cost Γ-safe hiding for M1's table (Sec. 3)";
  let max_gamma = Module_privacy.max_achievable_gamma m1_table in
  Printf.printf "table: %d rows, max achievable Γ = %d\n"
    (Module_privacy.nb_rows m1_table)
    max_gamma;
  let rows =
    List.filter_map
      (fun gamma ->
        match Module_privacy.optimal_hiding ~weights:m1_weights m1_table ~gamma with
        | None -> Some [ string_of_int gamma; "-"; "unachievable"; "-" ]
        | Some hidden ->
            let cost = Module_privacy.hiding_cost m1_weights hidden in
            let total =
              Module_privacy.hiding_cost m1_weights
                (Module_privacy.attr_names m1_table)
            in
            Some
              [
                string_of_int gamma;
                string_of_int cost;
                String.concat "," hidden;
                Util.fmt_pct (1.0 -. (float_of_int cost /. float_of_int total));
              ])
      [ 2; 4; 8; 16; 32; 64 ]
  in
  Util.print_table [ "gamma"; "min cost"; "hidden set"; "utility kept" ] rows;
  Printf.printf
    "expected shape: cost grows with gamma; gamma > %d is unachievable.\n"
    max_gamma

let e2 () =
  Util.heading "E2  Exact vs. greedy hiding-set optimisation (Sec. 3)";
  let rng = Rng.create 42 in
  (* Skewed utility weights make the choice non-trivial: hiding y0 is
     expensive, inputs are cheap but individually weak. *)
  let weights name =
    1 + (Hashtbl.hash name mod 5) + if name.[0] = 'y' then 4 else 0
  in
  let rows =
    List.map
      (fun (n_in, n_out) ->
        let table =
          Synthetic.random_table rng ~n_inputs:n_in ~n_outputs:n_out
            ~domain_size:2
        in
        let gamma = 4 in
        let (opt, t_exact), (greedy, t_greedy) =
          ( Util.time_ms (fun () ->
                Module_privacy.optimal_hiding ~weights table ~gamma),
            Util.time_ms (fun () ->
                Module_privacy.greedy_hiding ~weights table ~gamma) )
        in
        let cost = function
          | Some h -> Module_privacy.hiding_cost weights h
          | None -> -1
        in
        [
          Printf.sprintf "%d+%d" n_in n_out;
          string_of_int (cost opt);
          string_of_int (cost greedy);
          (if cost opt > 0 then
             Util.fmt_f (float_of_int (cost greedy) /. float_of_int (cost opt))
           else "-");
          Util.fmt_f ~digits:3 t_exact;
          Util.fmt_f ~digits:3 t_greedy;
        ])
      [ (2, 2); (3, 3); (4, 4); (5, 5); (6, 6); (8, 4) ]
  in
  Util.print_table
    [ "attrs"; "opt cost"; "greedy cost"; "ratio"; "exact ms"; "greedy ms" ]
    rows;
  Printf.printf
    "expected shape: exact time explodes exponentially with attribute count\n\
     while greedy stays in low milliseconds; greedy usually matches the\n\
     optimum but can overpay on skewed weights (no approximation guarantee\n\
     — the hardness the companion paper proves).\n"

let e8 () =
  Util.heading
    "E8  Adversary: module function recovered vs. executions observed (Sec. 3)";
  let rng = Rng.create 7 in
  let table =
    Synthetic.random_table rng ~n_inputs:2 ~n_outputs:1 ~domain_size:4
  in
  let hidden =
    match Module_privacy.optimal_hiding table ~gamma:4 with
    | Some h -> h
    | None -> Module_privacy.attr_names table
  in
  let all_inputs = List.map fst (Module_privacy.rows table) in
  Printf.printf "table: %d rows; Γ=4-safe hidden set: {%s}\n"
    (List.length all_inputs)
    (String.concat ", " hidden);
  let rows =
    List.map
      (fun k ->
        let obs =
          List.init k (fun _ -> Rng.pick rng all_inputs)
        in
        let a_open = Audit.assess table (Audit.observe table ~hidden:[] obs) in
        let a_safe = Audit.assess table (Audit.observe table ~hidden obs) in
        [
          string_of_int k;
          Util.fmt_pct a_open.Audit.recovered_fraction;
          Util.fmt_pct a_safe.Audit.recovered_fraction;
          string_of_int a_safe.Audit.min_candidates;
        ])
      [ 1; 2; 4; 8; 16; 32; 64; 128 ]
  in
  Util.print_table
    [ "runs seen"; "recovered (no hiding)"; "recovered (Γ=4 hiding)"; "empirical Γ" ]
    rows;
  Printf.printf
    "expected shape: without hiding the adversary converges to 100%%;\n\
     with a Γ-safe hidden set recovery stays at 0%% and the empirical Γ >= 4.\n"

(* ------------------------------------------------------------------ *)

let e3 () =
  Util.heading
    "E3  Structural privacy: deletion vs. clustering (Sec. 3's two mechanisms)";
  let rng = Rng.create 99 in
  let rows =
    List.map
      (fun nodes ->
        let g = Synthetic.random_dag rng ~nodes ~edge_probability:(4.0 /. float_of_int nodes) in
        let closure = Reachability.closure g in
        let facts = Reachability.closure_facts closure in
        let candidates =
          List.filter
            (fun (u, v) -> not (Digraph.mem_edge g u v) || List.length facts < 30)
            facts
        in
        let sample =
          Rng.sample rng (min 20 (List.length candidates)) candidates
        in
        let stats =
          List.map
            (fun pair ->
              let d = Structural_privacy.hide_by_deletion g pair in
              let c = Structural_privacy.hide_by_clustering g pair in
              ( List.length d.Structural_privacy.collateral,
                List.length d.Structural_privacy.cut,
                List.length c.Structural_privacy.spurious,
                List.length c.Structural_privacy.cluster ))
            sample
        in
        let n = float_of_int (max 1 (List.length stats)) in
        let avg f = List.fold_left (fun a s -> a +. float_of_int (f s)) 0.0 stats /. n in
        [
          string_of_int nodes;
          string_of_int (List.length facts);
          string_of_int (List.length sample);
          Util.fmt_f (avg (fun (_, c, _, _) -> c));
          Util.fmt_f (avg (fun (c, _, _, _) -> c));
          Util.fmt_f (avg (fun (_, _, _, s) -> s));
          Util.fmt_f (avg (fun (_, _, s, _) -> s));
        ])
      [ 10; 20; 30; 40 ]
  in
  Util.print_table
    [
      "|V|"; "facts"; "pairs"; "cut size"; "deletion collateral";
      "cluster size"; "cluster spurious";
    ]
    rows;
  Printf.printf
    "expected shape: deletion loses true facts (collateral) but fabricates\n\
     nothing; clustering hides without losing external facts but fabricates\n\
     spurious ones — the paper's soundness trade-off.\n"

let e4 () =
  Util.heading "E4  Unsound view detection and repair (Sec. 3; Sun et al.)";
  let rng = Rng.create 5 in
  let rows =
    List.map
      (fun nodes ->
        let g = Synthetic.random_dag rng ~nodes ~edge_probability:0.15 in
        let trials = 10 in
        let results =
          List.init trials (fun _ ->
              let clustering =
                Synthetic.random_clustering rng g ~nb_clusters:(nodes / 8)
                  ~cluster_size:4
              in
              if clustering = [] then None
              else begin
                let v, t_detect = Util.time_ms (fun () -> Soundness.check g clustering) in
                let steps, t_repair =
                  Util.time_ms (fun () -> Soundness.repair_steps g clustering)
                in
                Some (v.Soundness.sound, List.length v.Soundness.spurious, steps, t_detect, t_repair)
              end)
          |> List.filter_map Fun.id
        in
        let n = float_of_int (max 1 (List.length results)) in
        let avg f = List.fold_left (fun a r -> a +. f r) 0.0 results /. n in
        let unsound =
          List.length (List.filter (fun (s, _, _, _, _) -> not s) results)
        in
        [
          string_of_int nodes;
          Printf.sprintf "%d/%d" unsound (List.length results);
          Util.fmt_f (avg (fun (_, sp, _, _, _) -> float_of_int sp));
          Util.fmt_f (avg (fun (_, _, st, _, _) -> float_of_int st));
          Util.fmt_f ~digits:3 (avg (fun (_, _, _, td, _) -> td));
          Util.fmt_f ~digits:3 (avg (fun (_, _, _, _, tr) -> tr));
        ])
      [ 16; 32; 48; 64 ]
  in
  Util.print_table
    [ "|V|"; "unsound"; "avg spurious"; "avg splits"; "detect ms"; "repair ms" ]
    rows;
  Printf.printf
    "expected shape: random clusterings are mostly unsound; repair needs few\n\
     splits; detection cost grows with closure size.\n"

let all () =
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e8 ()
