(* E9: differentially-private aggregate queries (paper Sec. 5's DP
        discussion, made concrete for the aggregates DP *can* serve).
   E10: multi-target structural-privacy planning ablation.
   A1:  ablation — bitset topological closure vs. per-node DFS.
   A2:  ablation — user-group reachability cache on/off. *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Rng = Wfpriv_workloads.Rng
module Synthetic = Wfpriv_workloads.Synthetic
module Disease = Wfpriv_workloads.Disease
module Digraph = Wfpriv_graph.Digraph
module Reachability = Wfpriv_graph.Reachability

let e9 () =
  Util.heading
    "E9  Differentially private repository aggregates (Sec. 5 discussion)";
  let rng = Rng.create 2 in
  let patients =
    List.init 40 (fun i ->
        [
          ("snps", Data_value.Str (Printf.sprintf "rs%d" (Rng.int rng 5)));
          ("ethnicity", Data_value.Str (Printf.sprintf "e%d" (Rng.int rng 3)));
          ("lifestyle", Data_value.Str (Printf.sprintf "l%d" (i mod 2)));
          ("family_history", Data_value.Str "none");
          ("symptoms", Data_value.Str "s");
        ])
  in
  let runs = List.map Disease.run_with patients in
  let q = Dp_count.Module_ran Disease.m6 in
  let exact = Dp_count.exact_count runs q in
  Printf.printf "query: #runs where M6 (Query OMIM) executed; exact = %d/40\n"
    exact;
  let trials = 500 in
  let rows =
    List.map
      (fun epsilon ->
        let uniform () = Rng.float rng 1.0 in
        let errors =
          List.init trials (fun _ ->
              Float.abs
                (Dp_count.noisy_count ~uniform ~epsilon runs q
                -. float_of_int exact))
        in
        let mean = List.fold_left ( +. ) 0.0 errors /. float_of_int trials in
        [
          Util.fmt_f ~digits:2 epsilon;
          Util.fmt_f mean;
          Util.fmt_f (Dp_count.expected_absolute_error ~epsilon);
        ])
      [ 0.1; 0.25; 0.5; 1.0; 2.0; 4.0 ]
  in
  Util.print_table [ "epsilon"; "measured |error|"; "theory 1/eps" ] rows;
  Printf.printf
    "expected shape: measured error tracks the 1/epsilon law — aggregates\n\
     tolerate DP noise even though provenance graphs themselves cannot\n\
     (the paper's reproducibility argument).\n"

let e10 () =
  Util.heading
    "E10 Planning multi-target structural privacy: per-target mechanism choice";
  let rng = Rng.create 12 in
  let trials = 15 in
  let strategies =
    [
      ("planner a=0.0", `Plan 0.0);
      ("planner a=0.5", `Plan 0.5);
      ("planner a=1.0", `Plan 1.0);
      ("all-delete", `Plan_forced Planner.Delete);
      ("all-cluster", `Plan_forced Planner.Cluster);
    ]
  in
  let run_strategy g targets = function
    | `Plan alpha ->
        let p = Planner.plan ~alpha g targets in
        ( p.Planner.facts_lost,
          p.Planner.facts_hidden,
          p.Planner.facts_fabricated,
          Planner.verify g p )
    | `Plan_forced mech ->
        let p = Planner.plan ~force:mech g targets in
        ( p.Planner.facts_lost,
          p.Planner.facts_hidden,
          p.Planner.facts_fabricated,
          Planner.verify g p )
  in
  let samples =
    List.init trials (fun _ ->
        let g = Synthetic.random_dag rng ~nodes:16 ~edge_probability:0.25 in
        let facts = Reachability.closure_facts (Reachability.closure g) in
        let targets = Rng.sample rng (min 3 (List.length facts)) facts in
        (g, targets))
    |> List.filter (fun (_, ts) -> ts <> [])
  in
  let rows =
    List.map
      (fun (name, strat) ->
        let lost, hid, fab, ok =
          List.fold_left
            (fun (l, h, f, ok) (g, targets) ->
              let l', h', f', ok' = run_strategy g targets strat in
              (l + l', h + h', f + f', ok && ok'))
            (0, 0, 0, true) samples
        in
        let n = float_of_int (List.length samples) in
        [
          name;
          Util.fmt_f (float_of_int lost /. n);
          Util.fmt_f (float_of_int hid /. n);
          Util.fmt_f (float_of_int fab /. n);
          string_of_bool ok;
        ])
      strategies
  in
  Util.print_table
    [
      "strategy"; "avg collateral lost"; "avg absorbed"; "avg fabricated";
      "all hidden";
    ]
    rows;
  Printf.printf
    "expected shape: a=0 (sound views) pays in collateral loss and\n\
     fabricates nothing; a=1 pays in fabrication with no collateral;\n\
     a=0.5 trades between them — and every strategy hides every target.\n"

let a1 () =
  Util.heading
    "A1  Ablation: transitive closure via bitset topo-sweep vs. per-node DFS";
  (* The DFS baseline mirrors what Reachability.closure falls back to on
     cyclic graphs: one full DFS per node. *)
  let dfs_closure g =
    List.iter (fun u -> ignore (Reachability.reachable_from g u)) (Digraph.nodes g)
  in
  let rng = Rng.create 4 in
  let rows =
    List.map
      (fun nodes ->
        let g =
          Synthetic.random_dag rng ~nodes
            ~edge_probability:(8.0 /. float_of_int nodes)
        in
        let t_bitset = Util.bench_ms (fun () -> Reachability.closure g) in
        let t_dfs = Util.bench_ms (fun () -> dfs_closure g) in
        [
          string_of_int nodes;
          string_of_int (Digraph.nb_edges g);
          Util.fmt_f ~digits:3 t_bitset;
          Util.fmt_f ~digits:3 t_dfs;
          Util.fmt_f (t_dfs /. t_bitset);
        ])
      [ 50; 100; 200; 400 ]
  in
  Util.print_table
    [ "|V|"; "|E|"; "bitset ms"; "per-node DFS ms"; "speedup" ]
    rows;
  Printf.printf
    "expected shape: the bitset sweep wins by a growing factor (word-level\n\
     parallelism on closure rows), which is why closures and E3/E4-scale\n\
     soundness checks stay cheap.\n"

let a2 () =
  Util.heading
    "A2  Ablation: per-user-group reachability cache for repeated queries (Sec. 4)";
  let rng = Rng.create 9 in
  let params =
    { Synthetic.default_params with Synthetic.levels = 3; atomics_per_workflow = 5 }
  in
  let spec, exec = Synthetic.run rng params in
  let privilege =
    Privilege.make spec
      (Spec.workflow_ids spec
      |> List.filter (fun w -> w <> Spec.root spec)
      |> List.mapi (fun i w -> (w, 1 + (i mod 2))))
  in
  let policy = Policy.make spec in
  ignore policy;
  let repo = Repository.create () in
  Repository.add repo
    ~name:"synthetic"
    ~policy:
      (Policy.make
         ~expand_levels:
           (Spec.workflow_ids spec
           |> List.filter (fun w -> w <> Spec.root spec)
           |> List.mapi (fun i w -> (w, 1 + (i mod 2))))
         spec)
    ~executions:[ exec ] ();
  ignore privilege;
  let queries =
    [
      Query_ast.Before (Query_ast.Atomic_only, Query_ast.Atomic_only);
      Query_ast.Before (Query_ast.Any, Query_ast.Atomic_only);
      Query_ast.Before (Query_ast.Atomic_only, Query_ast.Any);
    ]
  in
  let run_batch cache =
    List.iter
      (fun q ->
        List.iter
          (fun level ->
            ignore (Repository.structural_query ?cache repo ~level "synthetic" q))
          [ 1; 2 ])
      queries
  in
  let t_uncached = Util.bench_ms ~budget_ms:200.0 (fun () -> run_batch None) in
  let cache = Reach_cache.create () in
  let t_cached =
    Util.bench_ms ~budget_ms:200.0 (fun () -> run_batch (Some cache))
  in
  Util.print_table
    [ "mode"; "batch ms"; "speedup" ]
    [
      [ "uncached (DFS per pair)"; Util.fmt_f ~digits:3 t_uncached; "1.00" ];
      [
        "user-group cache";
        Util.fmt_f ~digits:3 t_cached;
        Util.fmt_f (t_uncached /. t_cached);
      ];
    ];
  Printf.printf
    "cache stats: %d entries, %d misses, %d hits\n"
    (Reach_cache.entries cache) (Reach_cache.misses cache)
    (Reach_cache.hits cache);
  Printf.printf
    "expected shape: two user groups need two closures total; every repeated\n\
     Before-query answers from the cache and the batch accelerates.\n"

let e11 () =
  Util.heading
    "E11 One integrated repository vs. per-level materialised copies (Sec. 1)";
  let rng = Rng.create 41 in
  let make_repo n =
    let repo = Repository.create () in
    for i = 0 to n - 1 do
      let spec, exec = Synthetic.run rng Synthetic.default_params in
      let policy =
        Policy.make
          ~expand_levels:
            (Spec.workflow_ids spec
            |> List.filter (fun w -> w <> Spec.root spec)
            |> List.mapi (fun j w -> (w, 1 + (j mod 3))))
          spec
      in
      Repository.add repo ~name:(Printf.sprintf "wf%d" i) ~policy
        ~executions:[ exec ] ()
    done;
    repo
  in
  let levels = [ 0; 1; 2; 3 ] in
  let rows =
    List.map
      (fun n ->
        let repo = make_repo n in
        let m, t_build = Util.time_ms (fun () -> Materialized.materialize repo ~levels) in
        let integrated = Materialized.integrated_space repo in
        let copies = Materialized.space m in
        (* The cost every update imposes on the materialised design. *)
        Repository.add_execution repo ~name:"wf0"
          (let e = Repository.find repo "wf0" in
           let spec = e.Repository.spec in
           Wfpriv_workflow.Executor.run spec (Synthetic.semantics spec)
             ~inputs:(Synthetic.inputs_for spec ~seed:999));
        let _, t_refresh =
          Util.time_ms (fun () -> Materialized.refresh_entry m repo "wf0")
        in
        let _, t_check = Util.time_ms (fun () -> Materialized.consistent m repo) in
        [
          string_of_int n;
          string_of_int integrated;
          string_of_int copies;
          Util.fmt_f (float_of_int copies /. float_of_int integrated);
          Util.fmt_f t_build;
          Util.fmt_f t_refresh;
          Util.fmt_f t_check;
        ])
      [ 2; 4; 8; 16 ]
  in
  Util.print_table
    [
      "entries"; "integrated space"; "4-copy space"; "ratio"; "build ms";
      "per-update refresh ms"; "consistency check ms";
    ]
    rows;
  Printf.printf
    "expected shape: materialised copies multiply storage by ~#levels and\n\
     impose per-update refresh work across every copy (skipping it leaves\n\
     stale, inconsistent answers — asserted in the test suite); the\n\
     integrated design pays neither.\n"

let a3 () =
  Util.heading
    "A3  Ablation: exhaustive vs. best-first exact hiding-set search";
  let rng = Rng.create 77 in
  let weights n = 1 + (Hashtbl.hash n mod 5) in
  let rows =
    List.map
      (fun (n_in, n_out) ->
        let table =
          Synthetic.random_table rng ~n_inputs:n_in ~n_outputs:n_out
            ~domain_size:2
        in
        let gamma = 4 in
        let exhaustive, t_exh =
          Util.time_ms (fun () ->
              Module_privacy.optimal_hiding ~weights table ~gamma)
        in
        let ordered, t_ord =
          Util.time_ms (fun () ->
              Module_privacy.optimal_hiding_ordered ~weights table ~gamma)
        in
        let cost = function
          | Some h -> string_of_int (Module_privacy.hiding_cost weights h)
          | None -> "-"
        in
        [
          Printf.sprintf "%d+%d" n_in n_out;
          cost exhaustive;
          cost ordered;
          Util.fmt_f ~digits:3 t_exh;
          Util.fmt_f ~digits:3 t_ord;
          Util.fmt_f (t_exh /. Float.max t_ord 0.0001);
        ])
      [ (3, 3); (4, 4); (5, 5); (6, 6); (8, 4) ]
  in
  Util.print_table
    [ "attrs"; "exh cost"; "ordered cost"; "exhaustive ms"; "best-first ms"; "speedup" ]
    rows;
  Printf.printf
    "expected shape: identical optimal costs; best-first stops at the first\n\
     safe subset in cost order and wins by orders of magnitude when cheap\n\
     solutions exist (it also has no attribute-count cap).\n"

let e12 () =
  Util.heading
    "E12 Workflow-level module privacy: public modules undo hiding (companion paper)";
  let int_fun ~name_in ~name_out ~dom_in ~dom_out f =
    Module_privacy.of_function
      ~inputs:[ Module_privacy.int_attr name_in dom_in ]
      ~outputs:[ Module_privacy.int_attr name_out dom_out ]
      (fun x ->
        match x.(0) with
        | Data_value.Int n -> [| Data_value.Int (f n) |]
        | _ -> assert false)
  in
  let wiring id table vis =
    { Workflow_privacy.w_id = id; w_table = table; w_visibility = vis }
  in
  let m1 = int_fun ~name_in:"s" ~name_out:"t" ~dom_in:4 ~dom_out:4 (fun n -> (n + 1) mod 4) in
  let variants =
    [
      ( "m2 private",
        int_fun ~name_in:"t" ~name_out:"z" ~dom_in:4 ~dom_out:4 (fun n -> (n + 2) mod 4),
        Workflow_privacy.Private );
      ( "m2 public, invertible",
        int_fun ~name_in:"t" ~name_out:"z" ~dom_in:4 ~dom_out:4 (fun n -> (n + 2) mod 4),
        Workflow_privacy.Public );
      ( "m2 public, parity (lossy)",
        int_fun ~name_in:"t" ~name_out:"z" ~dom_in:4 ~dom_out:2 (fun n -> n mod 2),
        Workflow_privacy.Public );
      ( "m2 public, constant",
        int_fun ~name_in:"t" ~name_out:"z" ~dom_in:4 ~dom_out:2 (fun _ -> 0),
        Workflow_privacy.Public );
    ]
  in
  let rows =
    List.map
      (fun (label, m2, vis) ->
        let p =
          Workflow_privacy.make ~t_sources:[ "s" ]
            [
              wiring (Wfpriv_workflow.Ids.m 1) m1 Workflow_privacy.Private;
              wiring (Wfpriv_workflow.Ids.m 2) m2 vis;
            ]
        in
        let hidden = [ "t" ] in
        let standalone =
          List.assoc (Wfpriv_workflow.Ids.m 1)
            (Workflow_privacy.standalone_gamma p ~hidden)
        in
        let (wf_gammas), ms =
          Util.time_ms (fun () -> Workflow_privacy.gamma p ~hidden)
        in
        let wf = List.assoc (Wfpriv_workflow.Ids.m 1) wf_gammas in
        [
          label;
          string_of_int standalone;
          string_of_int wf;
          string_of_int (Workflow_privacy.nb_candidate_worlds p);
          Util.fmt_f ms;
        ])
      variants
  in
  Util.print_table
    [
      "pipeline s -> m1(priv) -> t -> m2 -> z, hide {t}";
      "standalone gamma(m1)"; "workflow gamma(m1)"; "worlds"; "ms";
    ]
    rows;
  Printf.printf
    "expected shape: standalone analysis always claims gamma=4; the\n\
     possible-worlds analysis shows an invertible public module collapses\n\
     it to 1, a lossy one to 2, a constant one leaks nothing (4), and a\n\
     private downstream preserves 4 — hiding must account for what the\n\
     adversary already knows.\n"

let all () =
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  a1 ();
  a2 ();
  a3 ()
