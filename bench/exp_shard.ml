(* E20: sharded scatter/gather planning vs the single-memo engine.

   The tentpole claim of the sharding PR: on provenance graphs large
   enough that the unsharded engine's n x n closure memo dominates the
   cost of a structural-query session, hash-partitioning the graph
   across N shards and answering reachability by per-shard local
   closures plus a cross-shard frontier exchange cuts the prepared
   state by ~N and the build work by ~N^2/N — an *algorithmic* saving,
   measured here on one core (no parallelism claim is involved).

   Three gated metrics (bench/baseline.json):

   - e20.shard_speedup: structural throughput (prepare + selective
     query batch) at 8 shards vs 1 shard. 1 shard *is* the unsharded
     single-memo engine — `Frontier.engine_of_exec_view ~shards:1`
     returns the plain `Engine` — so the ratio is exactly "sharded
     planner vs what we had".

   - e20.identical: every witness of every query at every shard count
     equals the unsharded engine's, and the sharded keyword top-k is
     bit-identical (float-identical scores, identical order) to the
     unsharded index over the union of entries.

   - e20.counters_invariant: the observer-visible counters of a
     level-0 caller driving the sharded planner are bit-identical
     across two corpora that differ only in hidden structure.

   Corpus scale: full mode runs [entries] executions of ~3 x 10^4
   provenance nodes each (>= 10^6 nodes total, reported as e20.nodes);
   quick mode re-benches one such execution so the CI gate times the
   same per-graph costs without the generation bill. *)

open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Frontier = Wfpriv_shard.Frontier
module Sharded_index = Wfpriv_shard.Sharded_index
module Shard = Wfpriv_parallel.Shard
module Shard_map = Wfpriv_shard.Shard_map
module Rng = Wfpriv_workloads.Rng
module Synthetic = Wfpriv_workloads.Synthetic
module Obs = Wfpriv_obs

(* ~3 x 10^4 provenance nodes per execution (the E14 sizing idiom,
   bounded average degree): large enough that the n x n closure memo is
   the dominant per-session cost the sharded planner is built to cut. *)
let big_params =
  {
    Synthetic.default_params with
    levels = 2;
    composites_per_workflow = 3;
    atomics_per_workflow = 2300;
    edge_probability = 0.01;
  }

(* Selective structural batch: Reach_joins between specific modules.
   Selectivity matters for the *sharded* side — the frontier exchange
   memoizes per source, so a handful of sources touch a handful of
   rows; the unsharded side pays the full n x n closure on the first
   Reach_join regardless. *)
let query_batch spec =
  let ms = Spec.module_ids spec in
  let nth k =
    let l = List.length ms in
    List.nth ms (((k mod l) + l) mod l)
  in
  let pair i =
    (* Four distinct source modules across twelve joins: repeated
       sources hit the frontier's per-source memo, the way a session
       drilling into a few lineages does. *)
    Query_ast.Before
      ( Query_ast.Module_is (nth (3 + (i mod 4 * 7))),
        Query_ast.Module_is (nth (List.length ms - 3 - (i * 11))) )
  in
  List.init 12 pair
  @ Query_ast.
      [
        And (Node Atomic_only, Before (Module_is (nth 3), Module_is (nth 29)));
        Edge (Module_is (nth 17), Any);
        Node (Module_is (nth 41));
      ]

let witness_bits (w : Engine.witness) = (w.Engine.holds, w.Engine.nodes)

(* One prepared-session pass at [shards]: build the engine over the
   view (1 = the plain single-memo engine) and answer the whole batch. *)
let session ~shards ev plans =
  let eng =
    if shards = 1 then Engine.of_exec_view ev
    else Frontier.engine_of_exec_view ~shards ev
  in
  List.map (fun p -> witness_bits (Engine.run eng p)) plans

let shard_counts = [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Keyword: sharded global merge vs the unsharded index *)

let keyword_corpus n =
  List.init n (fun i ->
      let spec =
        Synthetic.spec
          (Rng.create (900 + i))
          {
            Synthetic.default_params with
            levels = 1;
            composites_per_workflow = 1;
            atomics_per_workflow = 4;
          }
      in
      let subs =
        List.filter (fun w -> w <> Spec.root spec) (Spec.workflow_ids spec)
      in
      let expand_levels = List.mapi (fun j w -> (w, (j mod 3) + 1)) subs in
      let policy = Policy.make ~expand_levels spec in
      (Printf.sprintf "doc%03d" i, Policy.spec policy, Policy.privilege policy))

let keyword_identical () =
  let corpus = keyword_corpus (if !Util.quick then 32 else 96) in
  let union = Index.build corpus in
  let vocab = Synthetic.default_params.Synthetic.keyword_vocabulary in
  let probes =
    [
      [ List.nth vocab 0 ];
      [ List.nth vocab 1; List.nth vocab 2 ];
      [ List.nth vocab 3; List.nth vocab 4; List.nth vocab 5 ];
    ]
  in
  let rank =
    List.map (fun (e : Ranking.entry) ->
        (e.Ranking.doc, Int64.bits_of_float e.Ranking.score))
  in
  List.for_all
    (fun shards ->
      let sx =
        Sharded_index.build
          (Shard.partition ~shards
             ~hash:(fun (n, _, _) -> Shard_map.fnv1a n)
             corpus)
      in
      List.for_all
        (fun level ->
          List.for_all
            (fun terms ->
              rank (Index.top_k union ~level ~k:5 terms)
              = rank (Sharded_index.top_k sx ~level ~k:5 terms))
            probes)
        [ 0; 1; 2; 9 ])
    [ 3; 8 ]

(* ------------------------------------------------------------------ *)
(* Leakage invariance of the sharded planner's observer counters *)

let leak_entry ~hidden_chain =
  let atom id name = Module_def.make ~id ~name Module_def.Atomic in
  let hidden_ids = List.init hidden_chain (fun i -> 4 + i) in
  let rec chain = function
    | a :: (b :: _ as rest) ->
        { Spec.src = a; dst = b; data = [ "h" ] } :: chain rest
    | _ -> []
  in
  let spec =
    Spec.create ~root:"W1"
      ([
         Module_def.input;
         Module_def.output;
         atom 2 "Visible Step";
         Module_def.make ~id:3 ~name:"Secret Unit" (Module_def.Composite "W2");
       ]
      @ List.map
          (fun id -> atom id (Printf.sprintf "Hidden Step %d" id))
          hidden_ids)
      [
        {
          Spec.wf_id = "W1";
          title = "root";
          members = [ Ids.input_module; Ids.output_module; 2; 3 ];
          edges =
            [
              { Spec.src = Ids.input_module; dst = 2; data = [ "a" ] };
              { Spec.src = 2; dst = 3; data = [ "b" ] };
              { Spec.src = 3; dst = Ids.output_module; data = [ "c" ] };
            ];
        };
        {
          Spec.wf_id = "W2";
          title = "secret";
          members = hidden_ids;
          edges = chain hidden_ids;
        };
      ]
  in
  Policy.make ~expand_levels:[ ("W2", 2) ] spec

let observer_fingerprint ~hidden_chain =
  Obs.Registry.reset ();
  let policy = leak_entry ~hidden_chain in
  let spec = Policy.spec policy in
  let exec =
    Executor.run spec (Synthetic.semantics spec)
      ~inputs:(Synthetic.inputs_for spec ~seed:1)
  in
  let gate = Access_gate.of_policy policy ~level:0 in
  let ev = Access_gate.exec_view gate exec in
  let eng = Frontier.engine_of_exec_view ~shards:8 ev in
  List.iter
    (fun q -> ignore (Engine.run eng (Engine.compile q)))
    Query_ast.
      [ Node Any; Before (Any, Any); Edge (Any, Atomic_only) ];
  let sx =
    Sharded_index.build
      (Shard.partition ~shards:8
         ~hash:(fun (n, _, _) -> Shard_map.fnv1a n)
         [ ("secret", Policy.spec policy, Policy.privilege policy) ])
  in
  ignore (Sharded_index.top_k sx ~level:0 ~k:3 [ "secret"; "visible" ]);
  Obs.Registry.observer_counters ~level:0

let counters_invariant () =
  let saved = Obs.Config.enabled () in
  Obs.Config.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Config.set_enabled saved;
      Obs.Registry.reset ())
  @@ fun () ->
  let a = observer_fingerprint ~hidden_chain:1 in
  let b = observer_fingerprint ~hidden_chain:4 in
  a = b && a <> []

(* ------------------------------------------------------------------ *)

let e20 () =
  Util.heading "E20 Sharded scatter/gather planner vs single-memo engine";
  let entries = if !Util.quick then 1 else 50 in
  let totals = Array.make (List.length shard_counts) 0.0 in
  let nodes_total = ref 0 in
  let identical = ref true in
  for i = 0 to entries - 1 do
    let spec, exec = Synthetic.run (Rng.create (2000 + i)) big_params in
    let ev = Exec_view.full exec in
    let plans = List.map Engine.compile (query_batch spec) in
    nodes_total := !nodes_total + Engine.nb_nodes (Engine.of_exec_view ev);
    let reference = session ~shards:1 ev plans in
    List.iteri
      (fun j shards ->
        (* A major collection before each timed run: the 1-shard session
           retires an n x n closure per run, and its collection debt
           must land in its own measurement, not a later shard count's. *)
        if !Util.quick then begin
          (* One graph, best of five sessions: same per-graph cost, no
             100-generation bill in CI, noise floor from the minimum. *)
          let best = ref infinity in
          for _ = 1 to 5 do
            Gc.full_major ();
            let _, ms = Util.wall_ms (fun () -> session ~shards ev plans) in
            if ms < !best then best := ms
          done;
          totals.(j) <- totals.(j) +. !best
        end
        else begin
          Gc.full_major ();
          let w, ms = Util.wall_ms (fun () -> session ~shards ev plans) in
          totals.(j) <- totals.(j) +. ms;
          if w <> reference then identical := false
        end)
      shard_counts;
    if !Util.quick then
      (* The timed loop discards witnesses; pin identity separately. *)
      List.iter
        (fun shards ->
          if session ~shards ev plans <> reference then identical := false)
        shard_counts
  done;
  let t1 = totals.(0) in
  let rows =
    List.mapi
      (fun j shards ->
        [
          string_of_int shards;
          Util.fmt_f totals.(j);
          Util.fmt_f ~digits:2 (t1 /. Float.max 1e-9 totals.(j)) ^ "x";
        ])
      shard_counts
  in
  Util.print_table [ "shards"; "prepare+query ms"; "speedup vs 1" ] rows;
  let t8 = totals.(List.length shard_counts - 1) in
  let speedup = t1 /. Float.max 1e-9 t8 in
  let kw_ok = keyword_identical () in
  let inv_ok = counters_invariant () in
  Util.print_table
    [ "metric"; "value" ]
    [
      [ "corpus nodes"; string_of_int !nodes_total ];
      [ "structural speedup (8 vs 1)"; Util.fmt_f ~digits:2 speedup ^ "x" ];
      [ "witnesses identical"; (if !identical then "yes" else "NO") ];
      [ "keyword top-k identical"; (if kw_ok then "yes" else "NO") ];
      [ "observer counters invariant"; (if inv_ok then "yes" else "NO") ];
    ];
  Util.emit "e20.nodes" (float_of_int !nodes_total);
  Util.emit "e20.shard_speedup" speedup;
  Util.emit "e20.identical" (if !identical && kw_ok then 1.0 else 0.0);
  Util.emit "e20.counters_invariant" (if inv_ok then 1.0 else 0.0)
