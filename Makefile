# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples cli doc clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

examples:
	for e in quickstart disease_susceptibility module_privacy_audit \
	         keyword_search structural_privacy provenance_debugging \
	         interactive_session; do \
	  echo "== $$e =="; dune exec examples/$$e.exe; done

cli:
	dune exec bin/wfpriv.exe -- --help

clean:
	dune clean
