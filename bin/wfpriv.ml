(* wfpriv — command-line tool over the privacy-aware workflow library.

   Operates on the built-in workloads (the paper's disease-susceptibility
   workflow, or seeded synthetic specifications), exposing views,
   executions, provenance, privacy transformations and search from the
   shell. Run `wfpriv --help` for the command list. *)

open Cmdliner
open Wfpriv_workflow
open Wfpriv_privacy
open Wfpriv_query
module Pool = Wfpriv_parallel.Pool
module Disease = Wfpriv_workloads.Disease
module Synthetic = Wfpriv_workloads.Synthetic
module Rng = Wfpriv_workloads.Rng

(* ------------------------------------------------------------------ *)
(* Workload selection *)

type workload = { spec : Spec.t; run : unit -> Execution.t }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Specs loaded from files get synthetic hash-based semantics so `run`
   and `query` still work on them. *)
let workload_of_spec seed spec =
  {
    spec;
    run =
      (fun () ->
        Executor.run spec (Synthetic.semantics spec)
          ~inputs:(Synthetic.inputs_for spec ~seed));
  }

let load_workload ?file name seed =
  match file with
  | Some path when Filename.check_suffix path ".json" ->
      workload_of_spec seed (Wfpriv_serial.Spec_codec.of_string (read_file path))
  | Some path -> workload_of_spec seed (Wfpriv_serial.Wfdsl.parse (read_file path))
  | None -> (
      match name with
      | "disease" -> { spec = Disease.spec; run = Disease.run }
      | "synthetic" ->
          workload_of_spec seed
            (Synthetic.spec (Rng.create seed) Synthetic.default_params)
      | other -> failwith (Printf.sprintf "unknown workload %S" other))

let workload_arg =
  Arg.(
    value
    & opt string "disease"
    & info [ "w"; "workload" ] ~docv:"NAME"
        ~doc:"Workload: $(b,disease) (the paper's Fig. 1) or $(b,synthetic).")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"FILE"
        ~doc:"Load the specification from FILE instead of a built-in \
              workload: .json (Spec_codec) or the textual .wf language \
              (Wfdsl).")

let seed_arg =
  Arg.(
    value
    & opt int 1
    & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for synthetic workloads.")

let level_arg =
  Arg.(
    value
    & opt int max_int
    & info [ "l"; "level" ] ~docv:"LEVEL"
        ~doc:"Privilege level of the caller (default: unlimited).")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Size of the domain pool used by parallel sections (batched \
           query evaluation, closure materialization, index build). \
           Default: the $(b,WFPRIV_JOBS) environment variable, else 1 \
           (sequential). Answers are identical at every setting.")

(* [--jobs N] resizes the process-wide default pool; 0 (the cmdliner
   default) leaves WFPRIV_JOBS / the sequential default in charge. *)
let apply_jobs n = if n > 0 then Pool.set_default_jobs n

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of text.")

let prefix_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "p"; "prefix" ] ~docv:"W1,W2"
        ~doc:"Comma-separated hierarchy prefix; default: full expansion.")

let parse_prefix spec = function
  | None -> Spec.workflow_ids spec
  | Some s -> String.split_on_char ',' s |> List.map String.trim

(* Demo privilege assignment: deeper workflows need higher levels. *)
let demo_privilege spec =
  let h = Hierarchy.of_spec spec in
  Privilege.make spec
    (Spec.workflow_ids spec
    |> List.filter (fun w -> w <> Spec.root spec)
    |> List.map (fun w -> (w, Hierarchy.depth h w)))

(* ------------------------------------------------------------------ *)
(* Commands *)

let show file workload seed prefix dot =
  let { spec; _ } = load_workload ?file workload seed in
  let view = View.of_prefix spec (parse_prefix spec prefix) in
  if dot then print_string (View.to_dot view)
  else Format.printf "%a@." View.pp view

let hierarchy file workload seed =
  let { spec; _ } = load_workload ?file workload seed in
  let h = Hierarchy.of_spec spec in
  Format.printf "%a@." Hierarchy.pp h;
  Printf.printf "prefixes: %d\n" (Hierarchy.nb_prefixes h)

let run_cmd file workload seed prefix dot =
  let wl = load_workload ?file workload seed in
  let exec = wl.run () in
  let ev = Exec_view.of_prefix exec (parse_prefix wl.spec prefix) in
  if dot then print_string (Exec_view.to_dot ev)
  else Format.printf "%a@." Exec_view.pp ev

let provenance file workload seed data =
  let wl = load_workload ?file workload seed in
  let exec = wl.run () in
  let p = Provenance.of_data exec data in
  Format.printf "%a@." Provenance.pp p;
  Printf.printf "lineage: %s\n"
    (String.concat ", " (List.map Ids.data_name (Provenance.lineage exec data)));
  Printf.printf "impacts: %s\n"
    (String.concat ", " (List.map Ids.data_name (Provenance.impacted exec data)))

let search file workload seed level keywords specific provenance =
  let wl = load_workload ?file workload seed in
  let spec = wl.spec in
  let privilege = demo_privilege spec in
  let level = if level = max_int then 99 else level in
  let gate = Access_gate.make privilege ~level in
  if provenance then begin
    (* Search an execution of the workload instead of its specification. *)
    let exec = wl.run () in
    let admissible = function
      | Exec_search.Module_witness n -> (
          match Execution.module_of_node exec n with
          | Some m -> Access_gate.sees_module gate m
          | None -> true)
      | Exec_search.Data_witness _ -> true
    in
    match Exec_search.search ~restrict_to:admissible exec keywords with
    | None -> Printf.printf "no provenance match at level %d\n" level
    | Some a ->
        List.iter
          (fun (m : Exec_search.match_info) ->
            Printf.printf "keyword %S: needs {%s}\n" m.Exec_search.keyword
              (String.concat ", " m.Exec_search.required_prefix))
          a.Exec_search.matches;
        Format.printf "%a@." Exec_view.pp a.Exec_search.view
  end
  else begin
    let visible m = Access_gate.sees_module gate m in
    let strategy = if specific then `Specific else `Minimal in
    match Keyword.search ~strategy ~restrict_to:visible spec keywords with
    | None -> Printf.printf "no match at level %d\n" level
    | Some a ->
        List.iter
          (fun (m : Keyword.match_info) ->
            Printf.printf "keyword %S: witnesses %s\n" m.Keyword.keyword
              (String.concat ", " (List.map Ids.module_name m.Keyword.witnesses)))
          a.Keyword.matches;
        let capped = Access_gate.cap_view gate a.Keyword.view in
        Format.printf "%a@." View.pp capped
  end

let query file workload seed level jobs query_srcs =
  apply_jobs jobs;
  let wl = load_workload ?file workload seed in
  let exec = wl.run () in
  let privilege = demo_privilege wl.spec in
  let level = if level = max_int then 99 else level in
  let qs = List.map Query_parser.parse query_srcs in
  (* One prepared access view serves the whole batch: the gate is frozen
     (prepare) before evaluation, queries are compiled once and fanned
     across the default pool — sequential unless --jobs/WFPRIV_JOBS. *)
  let gate = Access_gate.make privilege ~level in
  Access_gate.prepare gate;
  let engine = Engine.of_exec_view (Access_gate.exec_view gate exec) in
  let witnesses = Engine.run_batch engine (List.map Plan.compile qs) in
  List.iter2
    (fun q (w : Engine.witness) ->
      Printf.printf "%s at level %d: %b\n" (Query_ast.to_string q) level
        w.Engine.holds)
    qs witnesses

let structural file workload seed src dst method_ =
  let { spec; _ } = load_workload ?file workload seed in
  let view = View.full spec in
  let g = View.graph view in
  let pair = (src, dst) in
  match method_ with
  | "deletion" ->
      let r = Structural_privacy.hide_by_deletion g pair in
      Printf.printf "delete: %s\n"
        (String.concat ", "
           (List.map
              (fun (u, v) -> Ids.module_name u ^ "->" ^ Ids.module_name v)
              r.Structural_privacy.cut));
      Printf.printf "collateral facts lost: %d\n"
        (List.length r.Structural_privacy.collateral)
  | "clustering" ->
      let r = Structural_privacy.hide_by_clustering g pair in
      Printf.printf "cluster: {%s}\n"
        (String.concat ", "
           (List.map Ids.module_name r.Structural_privacy.cluster));
      Printf.printf "spurious facts fabricated: %d\n"
        (List.length r.Structural_privacy.spurious)
  | m -> failwith (Printf.sprintf "unknown method %S (deletion|clustering)" m)

let export file workload seed format =
  let wl = load_workload ?file workload seed in
  match format with
  | "json" ->
      print_string (Wfpriv_serial.Spec_codec.to_string ~pretty:true wl.spec);
      print_newline ()
  | "dsl" -> print_string (Wfpriv_serial.Wfdsl.print wl.spec)
  | "dot" -> print_string (View.to_dot (View.full wl.spec))
  | "exec-json" ->
      print_string (Wfpriv_serial.Exec_codec.to_string ~pretty:true (wl.run ()));
      print_newline ()
  | other -> failwith (Printf.sprintf "unknown format %S (json|dsl|dot|exec-json)" other)

(* ------------------------------------------------------------------ *)
(* Observability: `wfpriv stats` *)

module Obs = Wfpriv_obs
module Json = Wfpriv_serial.Json

(* A short, deterministic exercise: evaluate a query batch through a
   session (gate audits, engine counters, closure build) after zooming
   to the caller's access view. The default batch includes one query
   naming structure above low levels, so denials show up in the audit
   log out of the box. *)
let default_stats_queries =
  [
    "before(~\"Expand SNP\", ~\"OMIM\")";
    "node(~\"risk\")";
    "inside(*, W4)";
  ]

(* Text output promises cram-stable lines: volatile counters (pool
   scheduling, timings) and histogram sums are run- and jobs-dependent,
   so only stable counters, observation counts, the observer view and
   the audit log are printed. *)
let stats_text level =
  let items = Obs.Registry.snapshot () in
  print_string "counters:\n";
  List.iter
    (function
      | Obs.Registry.Counter_item { name; volatile = false; op; levels } ->
          let total =
            op + List.fold_left (fun acc (_, v) -> acc + v) 0 levels
          in
          Printf.printf "  %-24s %d\n" name total
      | _ -> ())
    items;
  print_string "histograms:\n";
  List.iter
    (function
      | Obs.Registry.Histogram_item { name; count; _ } ->
          Printf.printf "  %-24s count=%d\n" name count
      | _ -> ())
    items;
  Printf.printf "observer view at level %d:\n" level;
  List.iter
    (fun (name, v) -> Printf.printf "  %-24s %d\n" name v)
    (Obs.Registry.observer_counters ~level);
  print_string "audit:\n";
  List.iter
    (fun r -> Printf.printf "  %s\n" (Obs.Audit_log.render r))
    (Obs.Audit_log.records ())

let stats_json level =
  let pairs xs = Json.Arr (List.map (fun (k, v) -> Json.Arr [ Json.int k; Json.int v ]) xs) in
  let items = Obs.Registry.snapshot () in
  let counters =
    List.filter_map
      (function
        | Obs.Registry.Counter_item { name; volatile; op; levels } ->
            Some
              (Json.Obj
                 [
                   ("name", Json.str name);
                   ("volatile", Json.Bool volatile);
                   ("op", Json.int op);
                   ("levels", pairs levels);
                 ])
        | Obs.Registry.Histogram_item _ -> None)
      items
  in
  let histograms =
    List.filter_map
      (function
        | Obs.Registry.Histogram_item { name; count; sum; buckets } ->
            Some
              (Json.Obj
                 [
                   ("name", Json.str name);
                   ("count", Json.int count);
                   ("sum", Json.int sum);
                   ("buckets", pairs buckets);
                 ])
        | Obs.Registry.Counter_item _ -> None)
      items
  in
  let observer =
    Json.Obj
      [
        ("level", Json.int level);
        ( "counters",
          Json.Obj
            (List.map
               (fun (n, v) -> (n, Json.int v))
               (Obs.Registry.observer_counters ~level)) );
      ]
  in
  let audit =
    Json.Arr
      (List.map
         (fun (r : Obs.Audit_log.record) ->
           let outcome =
             match r.Obs.Audit_log.outcome with
             | Obs.Audit_log.Allowed -> [ ("outcome", Json.str "allowed") ]
             | Obs.Audit_log.Denied { floor } ->
                 [ ("outcome", Json.str "denied"); ("floor", Json.int floor) ]
           in
           Json.Obj
             ([
                ("seq", Json.int r.Obs.Audit_log.seq);
                ("op", Json.str r.Obs.Audit_log.op);
                ("level", Json.int r.Obs.Audit_log.level);
              ]
             @ outcome
             @ [
                 ("nodes", Json.int r.Obs.Audit_log.nodes);
                 ("query", Json.str r.Obs.Audit_log.query);
               ]))
         (Obs.Audit_log.records ()))
  in
  print_string
    (Json.to_string_pretty
       (Json.Obj
          [
            ("counters", Json.Arr counters);
            ("histograms", Json.Arr histograms);
            ("observer", observer);
            ("audit", audit);
            ("audit_dropped", Json.int (Obs.Audit_log.dropped ()));
          ]));
  print_newline ()

let stats file workload seed level jobs json_out query_srcs =
  apply_jobs jobs;
  Obs.Config.set_enabled true;
  let wl = load_workload ?file workload seed in
  let exec = wl.run () in
  let privilege = demo_privilege wl.spec in
  let level = if level = max_int then 1 else level in
  let srcs =
    if query_srcs = [] then default_stats_queries else query_srcs
  in
  let qs = List.map Query_parser.parse srcs in
  let session = Session.start privilege ~level exec in
  ignore (Session.zoom_to_access_view session);
  ignore (Session.query_batch session qs);
  if json_out then stats_json level else stats_text level

(* ------------------------------------------------------------------ *)
(* Repository commands *)

module Durable_repo = Wfpriv_durable.Durable_repo
module Live_repo = Wfpriv_durable.Live_repo
module Recovery = Wfpriv_durable.Recovery
module Sharded_repo = Wfpriv_shard.Sharded_repo
module Sharded_index = Wfpriv_shard.Sharded_index
module Frontier = Wfpriv_shard.Frontier

(* `repo` commands accept a legacy whole-file JSON store, a durable
   directory store (WAL + snapshots, lib/durable), or a sharded store
   (shard-map manifest + one durable store per shard, lib/shard). *)
let repo_load path =
  if Sys.file_exists path && Sys.is_directory path then
    if Sharded_repo.is_sharded path then begin
      let sr = Sharded_repo.open_dir path in
      Fun.protect
        ~finally:(fun () -> Sharded_repo.close sr)
        (fun () -> Sharded_repo.repo sr)
    end
    else fst (Recovery.open_dir path)
  else Wfpriv_store.Repo_store.load path

(* The demo privacy policy over the paper's Fig. 1 workflow — shared by
   `repo init`, the serve appender and the `policy` commands. *)
let disease_policy () =
  Policy.make
    ~expand_levels:[ ("W2", 1); ("W3", 2); ("W4", 3) ]
    ~data_levels:[ ("disorders", 2); ("prognosis", 1) ]
    Disease.spec

let demo_entries () =
  [
    ("disease-susceptibility", disease_policy (), [ Disease.run () ]);
    ( "clinical-trial",
      Wfpriv_workloads.Clinical.policy,
      [ Wfpriv_workloads.Clinical.run () ] );
  ]

let repo_init path shards =
  if shards > 0 && not (Filename.check_suffix path ".json") then begin
    (* Sharded directory store: entries route to per-shard WALs by the
       manifest's hash of their name. *)
    let sr = Sharded_repo.init ~shards path in
    Fun.protect
      ~finally:(fun () -> Sharded_repo.close sr)
      (fun () ->
        List.iter
          (fun (entry_name, policy, executions) ->
            ignore
              (Sharded_repo.append sr
                 (Repository.Add_entry { entry_name; policy; executions })))
          (demo_entries ());
        Printf.printf "initialised %s: %d shards, %d entries\n" path
          (Sharded_repo.shards sr)
          (Repository.nb_entries (Sharded_repo.repo sr)))
  end
  else if shards > 0 then
    failwith "--shards requires a directory store (not a .json path)"
  else if Filename.check_suffix path ".json" then begin
    (* Legacy single-file store. *)
    let repo = Repository.create () in
    List.iter
      (fun (name, policy, executions) ->
        Repository.add repo ~name ~policy ~executions ())
      (demo_entries ());
    Wfpriv_store.Repo_store.save path repo;
    Printf.printf "wrote %s (%d entries)\n" path (Repository.nb_entries repo)
  end
  else begin
    (* Durable directory store: each entry is a journaled mutation. *)
    let t = Durable_repo.init path in
    List.iter
      (fun (entry_name, policy, executions) ->
        ignore
          (Durable_repo.append t
             (Repository.Add_entry { entry_name; policy; executions })))
      (demo_entries ());
    Durable_repo.close t;
    Printf.printf "initialised %s: %d entries, %d records, snapshot %d\n" path
      (Repository.nb_entries (Durable_repo.repo t))
      (Durable_repo.last_lsn t)
      (Durable_repo.snapshot_lsn t)
  end

(* `--input NAME=VALUE` overrides of the synthetic root inputs — how
   the erasure CI gate plants a recognisable sentinel payload whose
   bytes it can then prove absent after `repo erase`. *)
let parse_input_override s =
  match String.index_opt s '=' with
  | Some i when i > 0 ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | _ -> failwith (Printf.sprintf "bad --input %S (expected NAME=VALUE)" s)

(* Entry lookup with a user-facing error instead of a bare Not_found —
   after `repo erase` the name is genuinely gone, so this is a normal
   condition, not an internal error. *)
let find_entry repo entry =
  match Repository.find repo entry with
  | e -> e
  | exception Not_found ->
      failwith (Printf.sprintf "unknown entry %S (erased or never stored)" entry)

(* Synthetic re-execution of a stored entry's spec: deterministic in
   the seed, valid for any spec — the mutation `repo append` journals. *)
let append_mutation repo entry seed overrides =
  let e = find_entry repo entry in
  let spec = e.Repository.spec in
  let inputs = Synthetic.inputs_for spec ~seed in
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name inputs) then
        failwith (Printf.sprintf "unknown root input %S for %s" name entry))
    overrides;
  let inputs =
    List.map
      (fun (name, v) ->
        match List.assoc_opt name overrides with
        | Some s -> (name, Data_value.Str s)
        | None -> (name, v))
      inputs
  in
  let exec = Executor.run spec (Synthetic.semantics spec) ~inputs in
  Repository.Add_execution { entry_name = entry; exec }

let repo_append_sharded path entry seed overrides =
  let sr = Sharded_repo.open_dir path in
  Fun.protect
    ~finally:(fun () -> Sharded_repo.close sr)
    (fun () ->
      let m = append_mutation (Sharded_repo.repo sr) entry seed overrides in
      let shard = Sharded_repo.route sr entry in
      let generation = Sharded_repo.append_streaming sr [ m ] in
      Printf.printf "appended to %s (shard %d, generation %d)\n" entry shard
        generation)

let repo_append path entry seed inputs =
  let overrides = List.map parse_input_override inputs in
  if Sharded_repo.is_sharded path then
    repo_append_sharded path entry seed overrides
  else
    let t = Durable_repo.open_dir path in
    Fun.protect
      ~finally:(fun () -> Durable_repo.close t)
      (fun () ->
        let m = append_mutation (Durable_repo.repo t) entry seed overrides in
        (* The streaming path: the execution journals as a batched record
           closed by a commit record publishing a fresh generation. *)
        let generation = Durable_repo.append_streaming t [ m ] in
        Printf.printf "appended to %s (generation %d, last lsn %d)\n" entry
          generation (Durable_repo.last_lsn t))

(* Durable erasure: journal the tombstone, checkpoint, drop every
   pre-erasure segment, prune every pre-erasure snapshot — after which
   the erased bytes exist in no on-disk artifact (the CI erasure gate
   greps the raw store to prove it). *)
let repo_erase path entry data =
  let mutation = Repository.Erase { entry_name = entry; data_name = data } in
  let target =
    match data with None -> entry | Some d -> Printf.sprintf "%s/%s" entry d
  in
  if Filename.check_suffix path ".json" then
    failwith "erase requires a durable directory store"
  else if Sharded_repo.is_sharded path then begin
    let sr = Sharded_repo.open_dir path in
    Fun.protect
      ~finally:(fun () -> Sharded_repo.close sr)
      (fun () ->
        let shard, r = Sharded_repo.erase sr mutation in
        Printf.printf
          "erased %s (shard %d, generation %d, dropped %d segment(s), \
           pruned %d snapshot(s))\n"
          target shard r.Durable_repo.er_generation
          r.Durable_repo.er_dropped_segments r.Durable_repo.er_pruned_snapshots)
  end
  else
    let t = Durable_repo.open_dir path in
    Fun.protect
      ~finally:(fun () -> Durable_repo.close t)
      (fun () ->
        let r = Durable_repo.erase t mutation in
        Printf.printf
          "erased %s (generation %d, dropped %d segment(s), pruned %d \
           snapshot(s))\n"
          target r.Durable_repo.er_generation r.Durable_repo.er_dropped_segments
          r.Durable_repo.er_pruned_snapshots)

let repo_recover path =
  if Sharded_repo.is_sharded path then begin
    (* Shards recover independently (in parallel across the pool); each
       truncates its own torn tail. *)
    let sr = Sharded_repo.open_dir path in
    Fun.protect
      ~finally:(fun () -> Sharded_repo.close sr)
      (fun () ->
        for i = 0 to Sharded_repo.shards sr - 1 do
          let st = Sharded_repo.shard_store sr i in
          let r = Durable_repo.recovery_report st in
          Printf.printf
            "shard %d: snapshot %d, replayed %d records, last lsn %d\n" i
            r.Recovery.snapshot_lsn r.Recovery.replayed r.Recovery.last_lsn;
          if r.Recovery.torn_bytes > 0 then
            Printf.printf "shard %d truncated torn tail: %d bytes\n" i
              r.Recovery.torn_bytes
        done;
        Printf.printf "recovered %s: %d shards, %d entries\n" path
          (Sharded_repo.shards sr)
          (Repository.nb_entries (Sharded_repo.repo sr)))
  end
  else
  let t = Durable_repo.open_dir path in
  Durable_repo.close t;
  let r = Durable_repo.recovery_report t in
  Printf.printf
    "recovered %s: snapshot %d, replayed %d records, last lsn %d, %d entries\n"
    path r.Recovery.snapshot_lsn r.Recovery.replayed r.Recovery.last_lsn
    (Repository.nb_entries (Durable_repo.repo t));
  if r.Recovery.torn_bytes > 0 then
    Printf.printf "truncated torn tail: %d bytes\n" r.Recovery.torn_bytes

let repo_compact path =
  if Sharded_repo.is_sharded path then begin
    let sr = Sharded_repo.open_dir path in
    Fun.protect
      ~finally:(fun () -> Sharded_repo.close sr)
      (fun () ->
        let lsns = Sharded_repo.checkpoint sr in
        let dropped = Sharded_repo.compact sr in
        let pruned = Sharded_repo.prune_snapshots sr in
        Printf.printf
          "checkpointed %d shard(s) (lsns %s), dropped %d segment(s), pruned \
           %d snapshot(s)\n"
          (List.length lsns)
          (String.concat "," (List.map string_of_int lsns))
          dropped pruned)
  end
  else
  let t = Durable_repo.open_dir path in
  Fun.protect
    ~finally:(fun () -> Durable_repo.close t)
    (fun () ->
      let lsn = Durable_repo.checkpoint t in
      let dropped = Durable_repo.compact t in
      let pruned = Durable_repo.prune_snapshots t in
      Printf.printf "checkpoint at lsn %d, dropped %d segment(s), pruned %d snapshot(s)\n"
        lsn dropped pruned)

let repo_status path =
  if Sharded_repo.is_sharded path then begin
    (* Per-shard status via a full recovery pass each, plus the global
       view a sharded reader computes: summed entries and generation. *)
    let map, sts = Sharded_repo.status path in
    Printf.printf "shards: %d\n" map.Wfpriv_shard.Shard_map.shards;
    List.iter
      (fun (i, s) ->
        Printf.printf
          "shard %d: segments %d, snapshot %d, last lsn %d, generation %d, \
           entries %d%s\n"
          i s.Durable_repo.st_segments s.Durable_repo.st_snapshot_lsn
          s.Durable_repo.st_last_lsn s.Durable_repo.st_generation
          s.Durable_repo.st_entries
          (if s.Durable_repo.st_torn_bytes > 0 then
             Printf.sprintf ", torn tail %d bytes" s.Durable_repo.st_torn_bytes
           else ""))
      sts;
    Printf.printf "entries: %d\n"
      (List.fold_left (fun acc (_, s) -> acc + s.Durable_repo.st_entries) 0 sts);
    Printf.printf "generation: %d\n"
      (List.fold_left
         (fun acc (_, s) -> acc + s.Durable_repo.st_generation)
         0 sts)
  end
  else
  let s = Durable_repo.status path in
  Printf.printf "segments: %d\n" s.Durable_repo.st_segments;
  Printf.printf "snapshot: %d\n" s.Durable_repo.st_snapshot_lsn;
  Printf.printf "replayed records: %d\n" s.Durable_repo.st_replayed;
  Printf.printf "last lsn: %d\n" s.Durable_repo.st_last_lsn;
  Printf.printf "generation: %d\n" s.Durable_repo.st_generation;
  Printf.printf "entries: %d\n" s.Durable_repo.st_entries;
  Printf.printf "index segments: %d\n" s.Durable_repo.st_index_segments;
  Printf.printf "memtable: %d\n" s.Durable_repo.st_memtable;
  Printf.printf "pending merges: %d\n" s.Durable_repo.st_pending_merges;
  if s.Durable_repo.st_torn_bytes > 0 then
    Printf.printf "torn tail: %d bytes\n" s.Durable_repo.st_torn_bytes

let repo_info path =
  let repo = repo_load path in
  List.iter
    (fun name ->
      let e = Repository.find repo name in
      Printf.printf "%s: %d modules, %d workflows, %d stored runs, audit level %d\n"
        name
        (Spec.nb_modules e.Repository.spec)
        (Spec.nb_workflows e.Repository.spec)
        (List.length e.Repository.executions)
        (Policy.audit_level e.Repository.policy))
    (Repository.names repo)

(* The demo repository, in memory: what `repo init` persists. *)
let demo_repository () =
  let repo = Repository.create () in
  List.iter
    (fun (name, policy, executions) ->
      Repository.add repo ~name ~policy ~executions ())
    (demo_entries ());
  repo

(* `index-stats`: size and shape of the privacy-partitioned compressed
   keyword index — terms, postings, per-level partitions and encoded
   bytes. Deterministic: block layout is a function of the corpus only. *)
let index_stats path json_out =
  let repo =
    match path with Some p -> repo_load p | None -> demo_repository ()
  in
  let index = Repository.search_index repo in
  let docs = Index.doc_count index in
  let terms = Index.nb_terms index in
  let postings = Index.nb_postings index in
  let bytes = Index.encoded_bytes index in
  let per_posting =
    if postings = 0 then 0.0 else float_of_int bytes /. float_of_int postings
  in
  let stats = Index.level_stats index in
  if json_out then begin
    let level s =
      Json.Obj
        [
          ("level", Json.int s.Index.stat_level);
          ("partitions", Json.int s.Index.stat_partitions);
          ("postings", Json.int s.Index.stat_postings);
          ("bytes", Json.int s.Index.stat_bytes);
        ]
    in
    print_string
      (Json.to_string_pretty
         (Json.Obj
            [
              ("documents", Json.int docs);
              ("terms", Json.int terms);
              ("postings", Json.int postings);
              ("encoded_bytes", Json.int bytes);
              ("levels", Json.Arr (List.map level stats));
            ]));
    print_newline ()
  end
  else begin
    Printf.printf "documents: %d\n" docs;
    Printf.printf "terms: %d\n" terms;
    Printf.printf "postings: %d\n" postings;
    Printf.printf "encoded bytes: %d (%.2f per posting)\n" bytes per_posting;
    List.iter
      (fun s ->
        Printf.printf "level %d: %d partitions, %d postings, %d bytes\n"
          s.Index.stat_level s.Index.stat_partitions s.Index.stat_postings
          s.Index.stat_bytes)
      stats
  end

let print_topk level hits =
  if hits = [] then Printf.printf "no hits at level %d\n" level
  else
    List.iter
      (fun (e : Ranking.entry) ->
        Printf.printf "%s (score %.2f)\n" e.Ranking.doc e.Ranking.score)
      hits

let repo_topk path level k keywords =
  if Sys.file_exists path && Sys.is_directory path
     && Sharded_repo.is_sharded path
  then begin
    (* Per-shard block-max WAND with global weights, upper-bound shard
       pruning, leakage-safe global merge — bit-identical to the
       unsharded index over the same entries. *)
    let sr = Sharded_repo.open_dir path in
    Fun.protect
      ~finally:(fun () -> Sharded_repo.close sr)
      (fun () ->
        let six = Sharded_repo.index sr in
        print_topk level (Sharded_index.top_k six ~level ~k keywords))
  end
  else
    let repo = repo_load path in
    print_topk level (Repository.keyword_topk repo ~level ~k keywords)

let repo_search path level keywords =
  let repo = repo_load path in
  let hits = Repository.keyword_search repo ~level keywords in
  if hits = [] then Printf.printf "no hits at level %d\n" level
  else
    List.iter
      (fun h ->
        Printf.printf "%s (score %.2f), view {%s}\n" h.Repository.entry_name
          h.Repository.score
          (String.concat ", " (View.prefix h.Repository.answer.Keyword.view)))
      hits

let repo_prov_search path level keywords =
  let repo = repo_load path in
  let hits = Repository.provenance_search repo ~level keywords in
  if hits = [] then Printf.printf "no hits at level %d\n" level
  else
    List.iter
      (fun h ->
        Printf.printf "%s run %d, view {%s}\n" h.Repository.prov_entry
          h.Repository.run
          (String.concat ", "
             (Wfpriv_workflow.Exec_view.prefix
                h.Repository.prov_answer.Exec_search.view)))
      hits

let repo_query path level entry query_src =
  if Sys.file_exists path && Sys.is_directory path
     && Sharded_repo.is_sharded path
  then begin
    (* The scatter/gather structural path: engines whose reachability
       oracle is the cross-shard frontier exchange. Answers are
       bit-identical to the unsharded evaluation (differential suite). *)
    let sr = Sharded_repo.open_dir path in
    Fun.protect
      ~finally:(fun () -> Sharded_repo.close sr)
      (fun () ->
        let nshards = Sharded_repo.shards sr in
        let e = find_entry (Sharded_repo.repo sr) entry in
        let gate =
          Access_gate.of_policy ~shards:nshards e.Repository.policy ~level
        in
        let plan = Plan.compile (Query_parser.parse query_src) in
        List.iteri
          (fun run exec ->
            let ev = Access_gate.exec_view gate exec in
            let engine = Frontier.engine_of_exec_view ~shards:nshards ev in
            let w = Engine.run engine plan in
            Printf.printf "%s run %d at level %d: %b\n" entry run level
              w.Engine.holds)
          e.Repository.executions)
  end
  else
    let repo = repo_load path in
    ignore (find_entry repo entry);
    let q = Query_parser.parse query_src in
    List.iteri
      (fun run w ->
        Printf.printf "%s run %d at level %d: %b\n" entry run level
          w.Query_eval.holds)
      (Repository.structural_query repo ~level entry q)

(* ------------------------------------------------------------------ *)
(* `policy` commands: the policy algebra (lib/privacy/policy_algebra) *)

(* The base policy the algebra refines: the demo disease policy for the
   built-in disease workload, a plain (floor-only) policy otherwise. *)
let base_policy_for file workload seed =
  let { spec; _ } = load_workload ?file workload seed in
  if file = None && workload = "disease" then disease_policy ()
  else Policy.make spec

let parse_role s =
  match String.index_opt s ':' with
  | Some i when i > 0 -> (
      let name = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      with
      | Some l -> (name, l)
      | None -> failwith (Printf.sprintf "bad --role %S (expected NAME:LEVEL)" s)
      )
  | _ -> failwith (Printf.sprintf "bad --role %S (expected NAME:LEVEL)" s)

(* `SUBJECT:ITEM[,ITEM..]` — items naming workflows of the spec become
   workflow grants, everything else a data-name grant. *)
let parse_consent spec s =
  match String.index_opt s ':' with
  | Some i when i > 0 ->
      let subject = String.sub s 0 i in
      let items =
        String.sub s (i + 1) (String.length s - i - 1)
        |> String.split_on_char ','
        |> List.map String.trim
        |> List.filter (fun x -> x <> "")
      in
      let wids = Spec.workflow_ids spec in
      let workflows, data = List.partition (fun it -> List.mem it wids) items in
      (subject, workflows, data)
  | _ ->
      failwith (Printf.sprintf "bad --consent %S (expected SUBJECT:ITEMS)" s)

let print_audit_tail () =
  print_string "audit:\n";
  List.iter
    (fun r -> Printf.printf "  %s\n" (Obs.Audit_log.render r))
    (Obs.Audit_log.records ())

let print_compiled_view env ~base ~level expr =
  let compiled = Policy_algebra.compile env ~base ~level expr in
  let gate = Access_gate.of_policy compiled ~level in
  let render = function [] -> "(none)" | l -> String.concat ", " l in
  Printf.printf "visible workflows: %s\n" (render (Access_gate.allowed gate));
  let names = List.map fst (Policy.effective_data_levels compiled) in
  let readable, masked = List.partition (Access_gate.data_readable gate) names in
  Printf.printf "readable data: %s\n" (render readable);
  Printf.printf "masked data: %s\n" (render masked);
  Printf.printf "fingerprint: %s\n" (Access_gate.fingerprint gate)

(* Build the expression `--role`/`--consent`/`--revoke` describe:
   revoked consents override a union of the floor, the roles and the
   (still granted) consents — the shape under which revocation denies
   exactly the revoked sets and everything else falls through. *)
let policy_show file workload seed level roles consents revoked =
  Obs.Config.set_enabled true;
  let { spec; _ } = load_workload ?file workload seed in
  let base = base_policy_for file workload seed in
  let env = Policy_algebra.create () in
  let expr =
    List.fold_left
      (fun acc rs ->
        let name, l = parse_role rs in
        Policy_algebra.define_role env name l;
        Policy_algebra.Union (acc, Policy_algebra.Role name))
      Policy_algebra.Floor roles
  in
  let expr =
    List.fold_left
      (fun acc cs ->
        let subject, workflows, data = parse_consent spec cs in
        Policy_algebra.grant_consent env ~subject ~workflows ~data ();
        Policy_algebra.Union (acc, Policy_algebra.Consent subject))
      expr consents
  in
  let expr =
    List.fold_left
      (fun acc subject ->
        Policy_algebra.revoke_consent env ~subject;
        Policy_algebra.Override (Policy_algebra.Consent subject, acc))
      expr revoked
  in
  Printf.printf "policy at level %d:\n" level;
  print_compiled_view env ~base ~level expr;
  print_audit_tail ()

(* Grant, show the widened view, tick past the ttl, show the reverted
   view — the whole round trip audited. *)
let policy_break_glass file workload seed level actor glass_level ttl reason =
  Obs.Config.set_enabled true;
  let base = base_policy_for file workload seed in
  let env = Policy_algebra.create () in
  Policy_algebra.grant_break_glass env ~actor ~level:glass_level ~ttl ~reason;
  let expr =
    Policy_algebra.Union (Policy_algebra.Floor, Policy_algebra.Break_glass actor)
  in
  Printf.printf "t=%d, break-glass active: %b\n" (Policy_algebra.now env)
    (Policy_algebra.break_glass_active env actor);
  print_compiled_view env ~base ~level expr;
  for _ = 1 to ttl do
    Policy_algebra.tick env
  done;
  Printf.printf "t=%d, break-glass active: %b\n" (Policy_algebra.now env)
    (Policy_algebra.break_glass_active env actor);
  print_compiled_view env ~base ~level expr;
  print_audit_tail ()

(* ------------------------------------------------------------------ *)
(* `serve` / `call`: the multi-session serving layer (lib/server) *)

module Server = Wfpriv_server.Server
module Wire = Wfpriv_server.Wire
module Scheduler = Wfpriv_server.Scheduler

(* Materialize an [Append] frame: a fresh entry built from the named
   workload, deterministic in the seed. This keeps lib/server free of
   any workload dependency — the CLI injects it. *)
let serve_appender ~entry ~workload ~seed =
  match Option.value workload ~default:"synthetic" with
  | "disease" ->
      Repository.Add_entry
        {
          entry_name = entry;
          policy = disease_policy ();
          executions = [ Disease.run () ];
        }
  | "synthetic" ->
      let spec, exec = Synthetic.run (Rng.create seed) Synthetic.default_params in
      Repository.Add_entry
        { entry_name = entry; policy = Policy.make spec; executions = [ exec ] }
  | other -> invalid_arg (Printf.sprintf "unknown workload %S" other)

let serve path port stdio port_file max_requests timeout max_level no_cache
    cache_capacity queue_capacity inflight_cap jobs =
  apply_jobs jobs;
  Obs.Config.set_enabled true;
  let config =
    {
      Server.default_config with
      max_level;
      cache = not no_cache;
      cache_capacity;
      sched =
        { Scheduler.default_config with queue_capacity; inflight_cap };
    }
  in
  let run_front server =
    if stdio then Server.serve_channels server stdin stdout
    else
      Server.serve_tcp server ~port ?port_file
        ?max_requests:(if max_requests > 0 then Some max_requests else None)
        ?timeout_s:(if timeout > 0.0 then Some timeout else None)
        ()
  in
  let served =
    match path with
    | Some p
      when Sys.file_exists p && Sys.is_directory p && Sharded_repo.is_sharded p
      ->
        (* A sharded store serves read-only: structural queries on
           frontier-backed engines, top-k on the sharded global merge,
           cache keys carrying the shard topology. *)
        let sr = Sharded_repo.open_dir p in
        Fun.protect
          ~finally:(fun () -> Sharded_repo.close sr)
          (fun () -> run_front (Server.create_sharded ~config sr))
    | Some p when Sys.file_exists p && Sys.is_directory p ->
        (* A durable directory store mounts live: queries pin the
           current generation, appends stream through the WAL. *)
        let store = Durable_repo.open_dir p in
        Fun.protect
          ~finally:(fun () -> Durable_repo.close store)
          (fun () ->
            let live = Live_repo.of_store store in
            run_front
              (Server.create_live ~config ~appender:serve_appender live))
    | _ ->
        let repo =
          match path with Some p -> repo_load p | None -> demo_repository ()
        in
        run_front (Server.create ~config repo)
  in
  Printf.printf "served %d responses\n" served

(* One-shot client: send request lines (the JSON wire shape) to a
   running server, print each response as a JSON line. [--binary]
   re-encodes the same requests through the binary framing — answers
   are identical by the codec round-trip property. *)
let call port binary reqs =
  let frames =
    List.map
      (fun src ->
        match Wire.decode_request (src ^ "\n") with
        | Wire.Frame (f, _) -> f
        | Wire.Need_more -> failwith "bad request: truncated"
        | Wire.Corrupt m -> failwith ("bad request: " ^ m))
      reqs
  in
  let mode = if binary then Wire.Binary else Wire.Json in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let oc = Unix.out_channel_of_descr sock in
  let ic = Unix.in_channel_of_descr sock in
  List.iter (fun f -> output_string oc (Wire.encode_request mode f)) frames;
  flush oc;
  let expected = List.length frames in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let got = ref 0 in
  while !got < expected do
    (match input ic chunk 0 (Bytes.length chunk) with
    | 0 -> failwith "server closed the connection early"
    | n -> Buffer.add_subbytes buf chunk 0 n);
    let s = Buffer.contents buf in
    let pos = ref 0 in
    let continue = ref true in
    while !continue do
      match Wire.decode_response ~pos:!pos s with
      | Wire.Frame (r, used) ->
          pos := !pos + used;
          print_string (Wire.encode_response Wire.Json r);
          incr got
      | Wire.Need_more -> continue := false
      | Wire.Corrupt m -> failwith ("bad response: " ^ m)
    done;
    let rest = String.sub s !pos (String.length s - !pos) in
    Buffer.clear buf;
    Buffer.add_string buf rest
  done;
  Unix.close sock

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing *)

let keywords_arg =
  Arg.(non_empty & pos_all string [] & info [] ~docv:"KEYWORD")

let specific_arg =
  Arg.(
    value & flag
    & info [ "specific" ]
        ~doc:"Finest-witness answers (the paper's Fig. 5 shape) instead of \
              minimal views.")

let provenance_flag =
  Arg.(
    value & flag
    & info [ "provenance" ]
        ~doc:"Search an execution of the workload (provenance) instead of \
              its specification.")

let show_cmd =
  Cmd.v
    (Cmd.info "show" ~doc:"Print a specification view for a prefix")
    Term.(const show $ file_arg $ workload_arg $ seed_arg $ prefix_arg $ dot_arg)

let hierarchy_cmd =
  Cmd.v
    (Cmd.info "hierarchy" ~doc:"Print the expansion hierarchy")
    Term.(const hierarchy $ file_arg $ workload_arg $ seed_arg)

let run_cmd_ =
  Cmd.v
    (Cmd.info "run" ~doc:"Execute the workflow and print the provenance view")
    Term.(const run_cmd $ file_arg $ workload_arg $ seed_arg $ prefix_arg $ dot_arg)

let prov_cmd =
  let data =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"DATA_ID")
  in
  Cmd.v
    (Cmd.info "provenance" ~doc:"Provenance / lineage / impact of a data item")
    Term.(const provenance $ file_arg $ workload_arg $ seed_arg $ data)

let search_cmd =
  Cmd.v
    (Cmd.info "search" ~doc:"Keyword search with privacy-capped answers")
    Term.(
      const search $ file_arg $ workload_arg $ seed_arg $ level_arg
      $ keywords_arg $ specific_arg $ provenance_flag)

let query_cmd =
  let qs =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"QUERY"
          ~doc:
            "Structural queries, e.g. 'before(~\"Expand SNP\", ~\"OMIM\")'. \
             Several queries form one batch against one prepared view \
             (see $(b,--jobs)).")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate structural queries at a level")
    Term.(
      const query $ file_arg $ workload_arg $ seed_arg $ level_arg $ jobs_arg
      $ qs)

let structural_cmd =
  let src = Arg.(required & pos 0 (some int) None & info [] ~docv:"SRC_ID") in
  let dst = Arg.(required & pos 1 (some int) None & info [] ~docv:"DST_ID") in
  let m =
    Arg.(
      value & opt string "deletion"
      & info [ "m"; "method" ] ~docv:"METHOD" ~doc:"deletion or clustering")
  in
  Cmd.v
    (Cmd.info "structural"
       ~doc:"Hide a reachability fact by deletion or clustering")
    Term.(const structural $ file_arg $ workload_arg $ seed_arg $ src $ dst $ m)

let export_cmd =
  let fmt =
    Arg.(
      value & opt string "dsl"
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Output format: dsl, json, dot or exec-json.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Serialise the specification (or an execution)")
    Term.(const export $ file_arg $ workload_arg $ seed_arg $ fmt)

let stats_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the full operator snapshot as JSON (volatile counters \
             and histogram sums included) instead of the deterministic \
             text report.")
  in
  let qs =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"QUERY"
          ~doc:
            "Structural queries for the instrumented exercise; default: \
             a small batch that includes one query naming structure \
             above low privilege levels.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a short instrumented exercise (a session evaluating a \
          query batch at $(b,--level)) and print the metrics registry, \
          the privilege-partitioned observer view and the audit log.")
    Term.(
      const stats $ file_arg $ workload_arg $ seed_arg $ level_arg $ jobs_arg
      $ json_flag $ qs)

let repo_group =
  let path p = Arg.(required & pos p (some string) None & info [] ~docv:"REPO_FILE") in
  let lvl =
    Arg.(
      value & opt int 0
      & info [ "l"; "level" ] ~docv:"LEVEL" ~doc:"Caller privilege level.")
  in
  let kws p = Arg.(non_empty & pos_right p string [] & info [] ~docv:"KEYWORD") in
  let init =
    let shards =
      Arg.(
        value & opt int 0
        & info [ "shards" ] ~docv:"N"
            ~doc:
              "Hash-partition the store across N per-shard write-ahead \
               logs under one root (entries route by name through the \
               shard-map manifest). 0 (default) keeps the single-store \
               layout; requires a directory path.")
    in
    Cmd.v
      (Cmd.info "init"
         ~doc:
           "Write a demo repository (disease + clinical). A *.json path \
            gets the legacy whole-file store; any other path becomes a \
            durable directory store (write-ahead log + snapshots), \
            sharded across per-shard stores with $(b,--shards).")
      Term.(const repo_init $ path 0 $ shards)
  in
  let append =
    let entry =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"ENTRY")
    in
    let inputs =
      Arg.(
        value & opt_all string []
        & info [ "input" ] ~docv:"NAME=VALUE"
            ~doc:
              "Override a root input of the re-executed spec with a \
               string value (repeatable). The CI erasure gate uses this \
               to plant a sentinel payload it later proves erased.")
    in
    Cmd.v
      (Cmd.info "append"
         ~doc:
           "Journal a fresh execution of ENTRY's spec to a durable \
            directory store (deterministic in --seed).")
      Term.(const repo_append $ path 0 $ entry $ seed_arg $ inputs)
  in
  let erase =
    let entry =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"ENTRY")
    in
    let data =
      Arg.(
        value
        & opt (some string) None
        & info [ "data" ] ~docv:"NAME"
            ~doc:
              "Redact only this data item (in every stored execution of \
               ENTRY) instead of tombstoning the whole entry.")
    in
    Cmd.v
      (Cmd.info "erase"
         ~doc:
           "Durably erase ENTRY (or one of its data items with \
            $(b,--data)) from a durable directory store: journal the \
            tombstone, rewrite WAL history and snapshots via checkpoint \
            + compact + prune, so the erased bytes survive in no on-disk \
            artifact.")
      Term.(const repo_erase $ path 0 $ entry $ data)
  in
  let recover =
    Cmd.v
      (Cmd.info "recover"
         ~doc:
           "Recover a durable directory store: load the newest snapshot, \
            replay the log, truncate any torn tail.")
      Term.(const repo_recover $ path 0)
  in
  let compact =
    Cmd.v
      (Cmd.info "compact"
         ~doc:
           "Checkpoint a durable directory store and drop segments and \
            snapshots the checkpoint covers.")
      Term.(const repo_compact $ path 0)
  in
  let status =
    Cmd.v
      (Cmd.info "status"
         ~doc:
           "Report segment count, snapshot id and replayed-record count \
            of a durable directory store.")
      Term.(const repo_status $ path 0)
  in
  let info_ =
    Cmd.v (Cmd.info "info" ~doc:"Summarise a repository file")
      Term.(const repo_info $ path 0)
  in
  let search =
    Cmd.v
      (Cmd.info "search" ~doc:"Keyword search over specifications")
      Term.(const repo_search $ path 0 $ lvl $ kws 0)
  in
  let prov =
    Cmd.v
      (Cmd.info "prov-search" ~doc:"Keyword search over stored executions")
      Term.(const repo_prov_search $ path 0 $ lvl $ kws 0)
  in
  let query =
    let entry = Arg.(required & pos 1 (some string) None & info [] ~docv:"ENTRY") in
    let q = Arg.(required & pos 2 (some string) None & info [] ~docv:"QUERY") in
    Cmd.v
      (Cmd.info "query" ~doc:"Structural query against stored executions")
      Term.(const repo_query $ path 0 $ lvl $ entry $ q)
  in
  let topk =
    let k =
      Arg.(
        value & opt int 10
        & info [ "k"; "top" ] ~docv:"K" ~doc:"Number of hits to return.")
    in
    Cmd.v
      (Cmd.info "topk"
         ~doc:
           "Top-K entries for the keywords by block-max WAND over the \
            compressed privacy-partitioned index; same ranking as \
            $(b,search), without materialising witness views.")
      Term.(const repo_topk $ path 0 $ lvl $ k $ kws 0)
  in
  Cmd.group
    (Cmd.info "repo" ~doc:"Operate on persisted repositories")
    [
      init; append; erase; recover; compact; status; info_; search; prov;
      query; topk;
    ]

let policy_group =
  let lvl =
    Arg.(
      value & opt int 1
      & info [ "l"; "level" ] ~docv:"LEVEL" ~doc:"Caller privilege level.")
  in
  let show =
    let roles =
      Arg.(
        value & opt_all string []
        & info [ "role" ] ~docv:"NAME:LEVEL"
            ~doc:
              "Define a role at a privilege level and union its view in \
               (repeatable).")
    in
    let consents =
      Arg.(
        value & opt_all string []
        & info [ "consent" ] ~docv:"SUBJECT:ITEM[,ITEM..]"
            ~doc:
              "Record a subject's consent to the listed workflows and \
               data names and union it in (repeatable).")
    in
    let revoked =
      Arg.(
        value & opt_all string []
        & info [ "revoke" ] ~docv:"SUBJECT"
            ~doc:
              "Revoke a previously given $(b,--consent): the subject's \
               granted sets become explicit denials overriding the rest \
               of the policy (repeatable).")
    in
    Cmd.v
      (Cmd.info "show"
         ~doc:
           "Compile a policy-algebra expression — the union of the \
            legacy floor, the given roles and consents, overridden by \
            any revocations — down to a single derived policy, and \
            print the visible workflows, readable/masked data names, \
            the gate fingerprint and the audit trail.")
      Term.(
        const policy_show $ file_arg $ workload_arg $ seed_arg $ lvl $ roles
        $ consents $ revoked)
  in
  let break_glass =
    let actor =
      Arg.(
        required
        & opt (some string) None
        & info [ "actor" ] ~docv:"NAME" ~doc:"Who receives the grant.")
    in
    let glass_level =
      Arg.(
        value & opt int 3
        & info [ "grant-level" ] ~docv:"LEVEL"
            ~doc:"Privilege level the emergency grant confers.")
    in
    let ttl =
      Arg.(
        value & opt int 2
        & info [ "ttl" ] ~docv:"TICKS"
            ~doc:"Logical-clock ticks before the grant expires.")
    in
    let reason =
      Arg.(
        value & opt string "emergency"
        & info [ "reason" ] ~docv:"TEXT" ~doc:"Recorded in the audit log.")
    in
    Cmd.v
      (Cmd.info "break-glass"
         ~doc:
           "Demonstrate a time-boxed emergency grant: show the caller's \
            widened view while the grant is live, advance the logical \
            clock past its ttl, and show the view reverting — every \
            step audited.")
      Term.(
        const policy_break_glass $ file_arg $ workload_arg $ seed_arg $ lvl
        $ actor $ glass_level $ ttl $ reason)
  in
  Cmd.group
    (Cmd.info "policy"
       ~doc:
         "Compose access policies in the policy algebra — union, \
          intersection and override of role, consent and break-glass \
          views — compiled down to the single gate mechanism the \
          engine already enforces.")
    [ show; break_glass ]

let index_stats_cmd =
  let path =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"REPO_FILE"
          ~doc:
            "Repository to index (legacy .json or durable directory); \
             default: the demo repository $(b,repo init) writes.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the statistics as one JSON document.")
  in
  Cmd.v
    (Cmd.info "index-stats"
       ~doc:
         "Build the compressed privacy-partitioned keyword index and \
          report its shape: documents, terms, postings, encoded bytes \
          and the per-privilege-level partition table.")
    Term.(const index_stats $ path $ json_flag)

let serve_cmd =
  let path =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"REPO_FILE"
          ~doc:
            "Repository to serve (legacy .json or durable directory); \
             default: the demo repository $(b,repo init) writes.")
  in
  let port =
    Arg.(
      value & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port on 127.0.0.1; 0 picks an ephemeral port.")
  in
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Serve stdin/stdout instead of a socket: frames in, frames \
             out, exit at EOF. Deterministic; what the cram smoke test \
             drives.")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:
            "Write the bound port here (atomically) once listening — the \
             rendezvous for scripted clients of ephemeral ports.")
  in
  let max_requests =
    Arg.(
      value & opt int 0
      & info [ "max-requests" ] ~docv:"N"
          ~doc:"Exit after producing N responses; 0 = no limit.")
  in
  let timeout =
    Arg.(
      value & opt float 0.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Exit after this many seconds; 0 = no limit.")
  in
  let max_level =
    Arg.(
      value
      & opt int Server.default_config.Server.max_level
      & info [ "max-level" ] ~docv:"LEVEL"
          ~doc:
            "Privilege ceiling: frames claiming a higher level are \
             denied (with the required floor only).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the privilege-partitioned result cache (responses \
             are bit-identical either way).")
  in
  let cache_capacity =
    Arg.(
      value
      & opt int Server.default_config.Server.cache_capacity
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Result-cache entries before LRU eviction.")
  in
  let queue_capacity =
    Arg.(
      value
      & opt int Scheduler.default_config.Scheduler.queue_capacity
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Admission queue bound per (level, cost class).")
  in
  let inflight_cap =
    Arg.(
      value
      & opt int Scheduler.default_config.Scheduler.inflight_cap
      & info [ "inflight-cap" ] ~docv:"N"
          ~doc:"In-flight requests allowed per client.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a repository to many concurrent sessions: length-prefixed \
          binary or JSON-lines framing, per-privilege-level admission \
          queues with batching and deadline shedding, and a result cache \
          partitioned by access-view fingerprint so no entry ever crosses \
          privilege levels.")
    Term.(
      const serve $ path $ port $ stdio $ port_file $ max_requests $ timeout
      $ max_level $ no_cache $ cache_capacity $ queue_capacity $ inflight_cap
      $ jobs_arg)

let call_cmd =
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"Port of a running wfpriv serve.")
  in
  let binary =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:"Send through the binary framing instead of JSON lines.")
  in
  let reqs =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Request lines, e.g. '{\"v\":1,\"rid\":1,\"level\":2,\
             \"op\":\"topk\",\"k\":3,\"keywords\":[\"snp\"]}'.")
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:
         "Send request lines to a running server and print one JSON \
          response line each.")
    Term.(const call $ port $ binary $ reqs)

let () =
  (* WFPRIV_OBS=1 turns metric recording on for any command;
     WFPRIV_TRACE=path additionally streams spans as JSON lines. *)
  Obs.Config.install_from_env ();
  Obs.Trace.install_from_env ();
  let info =
    Cmd.info "wfpriv" ~version:"1.0.0"
      ~doc:"Privacy-aware provenance workflow toolkit (CIDR 2011 reproduction)"
  in
  let code =
    (* ~catch:false so domain errors (bad store path, unknown entry,
       malformed flag values) render as one-line messages with a
       distinct exit code, not cmdliner's "internal error" banner. *)
    try
      Cmd.eval ~catch:false
        (Cmd.group info
           [
             show_cmd; hierarchy_cmd; run_cmd_; prov_cmd; search_cmd; query_cmd;
             structural_cmd; export_cmd; stats_cmd; index_stats_cmd; repo_group;
             policy_group; serve_cmd; call_cmd;
           ])
    with
    | Failure msg | Invalid_argument msg | Sys_error msg ->
        Printf.eprintf "wfpriv: %s\n" msg;
        2
  in
  Obs.Trace.close ();
  exit code
