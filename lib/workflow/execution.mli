(** Workflow executions — provenance graphs (paper, Sec. 2, Fig. 4).

    An execution is a DAG whose nodes are module executions. Following
    common practice, a composite module execution is represented by a
    {e begin} and an {e end} node bracketing its sub-workflow's
    executions. Every module execution carries a unique process id
    ([S1], [S2], ...) assigned in scheduling order; a composite's begin
    and end share one process id.

    Edges are annotated with the {e data items} that flow over them. Each
    data item is produced by exactly one node, has a unique id ([d0], ...)
    assigned in creation order, a name (the dataflow label from the
    specification), a value, and the list of items it was derived from
    (fine-grained lineage, used by {!Provenance}).

    Executions are produced by {!Executor.run}; this module is the
    read-only structure plus its (internal) builder. *)

type node_kind =
  | Input
  | Output
  | Atomic_exec of { proc : Ids.process_id; module_id : Ids.module_id }
  | Begin_composite of { proc : Ids.process_id; module_id : Ids.module_id }
  | End_composite of { proc : Ids.process_id; module_id : Ids.module_id }

type item = {
  data_id : Ids.data_id;
  name : string;
  value : Data_value.t;
  producer : int;  (** node id of the producing module execution *)
  derived_from : Ids.data_id list;  (** items consumed to produce this one *)
}

type t

val spec : t -> Spec.t

val graph : t -> Wfpriv_graph.Digraph.t
(** Fresh copy of the execution DAG over node ids. *)

val nodes : t -> int list
(** Sorted node ids. *)

val node_kind : t -> int -> node_kind
(** Raises [Not_found]. *)

val node_label : t -> int -> string
(** ["I"], ["O"], ["S1:M1 begin"], ["S2:M3"], ... (Fig. 4's labels). *)

val module_of_node : t -> int -> Ids.module_id option
(** The module a node executes; [None] for [Input]/[Output]. *)

val scope : t -> int -> Ids.process_id list
(** Process ids of the composite executions enclosing a node, outermost
    first. A composite's begin/end nodes include their own process id as
    the last element. Empty for top-level nodes. *)

val nodes_of_module : t -> Ids.module_id -> int list
(** All executions of a module (begin nodes for composites), sorted. *)

val node_of_process : t -> Ids.process_id -> int
(** The node carrying this process id (the begin node for composites).
    Raises [Not_found]. *)

val edge_items : t -> int -> int -> Ids.data_id list
(** Data items annotated on an edge, sorted; [[]] when absent. *)

val items : t -> item list
(** All data items in id order. *)

val nb_items : t -> int

val find_item : t -> Ids.data_id -> item
(** Raises [Not_found]. *)

val items_named : t -> string -> item list
(** Items whose name matches, in id order. *)

val redact_named : t -> string -> t
(** A copy whose items of the given name carry {!Data_value.masked}
    instead of their value — the erasure primitive. Structure (graph,
    lineage, edge annotations, ids) is untouched and the [spec] pointer
    is shared, so the result is interchangeable with the original for
    every structural operation. *)

val output_items : t -> item list
(** Items flowing into the [Output] node (the workflow results). *)

val to_dot : t -> string

val pp : Format.formatter -> t -> unit
(** Edge listing in the style of Fig. 4. *)

(** Mutable builder used by {!Executor}; not intended for direct use. *)
module Builder : sig
  type exec = t
  type t

  val create : Spec.t -> t

  val add_node : t -> scope:Ids.process_id list -> node_kind -> int
  val fresh_process : t -> Ids.process_id

  val add_item :
    t ->
    name:string ->
    value:Data_value.t ->
    producer:int ->
    derived_from:Ids.data_id list ->
    item

  val connect : t -> src:int -> dst:int -> Ids.data_id list -> unit
  (** Add an edge (or extend its annotation). *)

  val finish : t -> exec
  (** Freeze; checks the graph is a DAG and every item's producer exists.
      Raises [Invalid_argument] otherwise. *)
end
