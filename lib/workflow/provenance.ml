module Digraph = Wfpriv_graph.Digraph
module Reachability = Wfpriv_graph.Reachability

type t = {
  exec : Execution.t;
  focus : Ids.data_id;
  nodes : int list;
  graph : Digraph.t;
}

let of_data exec d =
  let item = Execution.find_item exec d in
  let g = Execution.graph exec in
  let nodes = Reachability.co_reachable g item.Execution.producer in
  let keep n = List.mem n nodes in
  { exec; focus = d; nodes; graph = Digraph.induced g ~keep }

let lineage exec d =
  ignore (Execution.find_item exec d);
  let seen = Hashtbl.create 16 in
  let rec go d' =
    List.iter
      (fun p ->
        if not (Hashtbl.mem seen p) then begin
          Hashtbl.replace seen p ();
          go p
        end)
      (Execution.find_item exec d').Execution.derived_from
  in
  go d;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare

let impacted exec d =
  ignore (Execution.find_item exec d);
  (* Forward closure over the inverted derivation edges. *)
  let children = Hashtbl.create 32 in
  List.iter
    (fun (it : Execution.item) ->
      List.iter
        (fun parent ->
          Hashtbl.replace children parent
            (it.data_id :: Option.value ~default:[] (Hashtbl.find_opt children parent)))
        it.derived_from)
    (Execution.items exec);
  let seen = Hashtbl.create 16 in
  let rec go d' =
    List.iter
      (fun c ->
        if not (Hashtbl.mem seen c) then begin
          Hashtbl.replace seen c ();
          go c
        end)
      (Option.value ~default:[] (Hashtbl.find_opt children d'))
  in
  go d;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare

let depends_on exec d d' = List.mem d' (lineage exec d)

let contributing_modules exec d =
  let prov = of_data exec d in
  List.filter_map (Execution.module_of_node exec) prov.nodes
  |> List.sort_uniq compare

let necessary_modules exec d =
  let item = Execution.find_item exec d in
  let g = Execution.graph exec in
  (* Virtual super-source so dominators are defined even with several
     sources (e.g. parameter nodes). *)
  let source = 1 + List.fold_left max 0 (Digraph.nodes g) in
  let sources = Digraph.sources g in
  Digraph.add_node g source;
  List.iter (fun s -> Digraph.add_edge g source s) sources;
  let doms = Wfpriv_graph.Dominators.compute g ~entry:source in
  Wfpriv_graph.Dominators.dominators doms item.Execution.producer
  |> List.filter_map (fun n ->
         if n = source then None else Execution.module_of_node exec n)
  |> List.sort_uniq compare

let executed_before exec m1 m2 =
  let g = Execution.graph exec in
  let n1 = Execution.nodes_of_module exec m1 in
  let n2 = Execution.nodes_of_module exec m2 in
  List.exists
    (fun a -> List.exists (fun b -> a <> b && Reachability.reaches g a b) n2)
    n1

let pp ppf t =
  Format.fprintf ppf "@[<v>provenance of %a:@," Ids.pp_data t.focus;
  List.iter
    (fun n -> Format.fprintf ppf "  %s@," (Execution.node_label t.exec n))
    t.nodes;
  Format.fprintf ppf "@]"
