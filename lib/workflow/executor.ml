type semantics =
  Ids.module_id -> (string * Data_value.t) list -> (string * Data_value.t) list

exception Execution_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Execution_error s)) fmt

type feed = int * Execution.item list (* source node, items delivered *)

let named_inputs feeds =
  List.concat_map
    (fun (_, its) ->
      List.map (fun (it : Execution.item) -> (it.name, it.value)) its)
    feeds
  |> List.sort compare

let input_ids feeds =
  List.concat_map
    (fun (_, its) -> List.map (fun (it : Execution.item) -> it.data_id) its)
    feeds
  |> List.sort_uniq compare

let check_no_dup_names ctx outs =
  let names = List.map fst outs in
  let sorted = List.sort compare names in
  let rec dup = function
    | a :: b :: _ when String.equal a b -> Some a
    | _ :: rest -> dup rest
    | [] -> None
  in
  match dup sorted with
  | Some n -> fail "%s produced output name %S twice" ctx n
  | None -> ()

let run ?(priority = fun _ -> 0) spec sem ~inputs =
  let b = Execution.Builder.create spec in
  let connect_feeds node feeds =
    List.iter
      (fun (src, its) ->
        Execution.Builder.connect b ~src ~dst:node
          (List.map (fun (it : Execution.item) -> it.data_id) its))
      feeds
  in
  (* Execute one module given its gathered input feeds; returns the node
     emitting its outputs and the produced (or forwarded) items. *)
  let rec exec_module m scope (feeds : feed list) : int * Execution.item list =
    let md = Spec.find_module spec m in
    match md.Module_def.kind with
    | Module_def.Input ->
        let node = Execution.Builder.add_node b ~scope Execution.Input in
        let items =
          List.map
            (fun (name, value) ->
              Execution.Builder.add_item b ~name ~value ~producer:node
                ~derived_from:[])
            inputs
        in
        (node, items)
    | Module_def.Output ->
        let node = Execution.Builder.add_node b ~scope Execution.Output in
        connect_feeds node feeds;
        (node, [])
    | Module_def.Atomic ->
        let proc = Execution.Builder.fresh_process b in
        let node =
          Execution.Builder.add_node b ~scope
            (Execution.Atomic_exec { proc; module_id = m })
        in
        connect_feeds node feeds;
        let outs = sem m (named_inputs feeds) in
        check_no_dup_names (Ids.module_name m) outs;
        let deps = input_ids feeds in
        let items =
          List.map
            (fun (name, value) ->
              Execution.Builder.add_item b ~name ~value ~producer:node
                ~derived_from:deps)
            outs
        in
        (node, items)
    | Module_def.Composite w ->
        let proc = Execution.Builder.fresh_process b in
        let inner_scope = scope @ [ proc ] in
        let bnode =
          Execution.Builder.add_node b ~scope:inner_scope
            (Execution.Begin_composite { proc; module_id = m })
        in
        connect_feeds bnode feeds;
        let all_items = List.concat_map snd feeds in
        let exits = exec_workflow w inner_scope ~entry_feed:(Some (bnode, all_items)) in
        let enode =
          Execution.Builder.add_node b ~scope:inner_scope
            (Execution.End_composite { proc; module_id = m })
        in
        List.iter
          (fun (xnode, xitems) ->
            Execution.Builder.connect b ~src:xnode ~dst:enode
              (List.map (fun (it : Execution.item) -> it.data_id) xitems))
          exits;
        (enode, List.concat_map snd exits)
  (* Execute every module of a workflow in deterministic dataflow order;
     returns the exit feeds (modules without outgoing internal edges). *)
  and exec_workflow w scope ~entry_feed : (int * Execution.item list) list =
    let wf = Spec.find_workflow spec w in
    let pending : (Ids.module_id, feed list) Hashtbl.t = Hashtbl.create 8 in
    let add_pending m f =
      Hashtbl.replace pending m (Option.value ~default:[] (Hashtbl.find_opt pending m) @ [ f ])
    in
    (* Edge lists per endpoint, built once per workflow (edge order
       preserved): the scheduling loop looks these up per module instead
       of filtering the whole edge list each time. *)
    let by_src : (Ids.module_id, Spec.edge list) Hashtbl.t = Hashtbl.create 64 in
    let by_dst_count = Hashtbl.create 64 in
    List.iter
      (fun (e : Spec.edge) ->
        Hashtbl.replace by_src e.src
          (e :: Option.value ~default:[] (Hashtbl.find_opt by_src e.src));
        Hashtbl.replace by_dst_count e.dst
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_dst_count e.dst)))
      (List.rev wf.Spec.edges);
    let in_remaining = Hashtbl.create 8 in
    List.iter
      (fun m ->
        let n = Option.value ~default:0 (Hashtbl.find_opt by_dst_count m) in
        Hashtbl.replace in_remaining m n)
      wf.Spec.members;
    (* Entry modules of a sub-workflow receive everything flowing into the
       composite they refine. *)
    (match entry_feed with
    | Some (bnode, items) ->
        List.iter
          (fun m -> add_pending m (bnode, items))
          (Spec.entries spec w)
    | None -> ());
    let ready =
      ref
        (List.filter (fun m -> Hashtbl.find in_remaining m = 0) wf.Spec.members)
    in
    let exits = ref [] in
    while !ready <> [] do
      let m =
        List.fold_left
          (fun best cand ->
            if (priority cand, cand) < (priority best, best) then cand else best)
          (List.hd !ready) (List.tl !ready)
      in
      ready := List.filter (fun x -> x <> m) !ready;
      let feeds = Option.value ~default:[] (Hashtbl.find_opt pending m) in
      let node, out_items = exec_module m scope feeds in
      let out_edges = Option.value ~default:[] (Hashtbl.find_opt by_src m) in
      if out_edges = [] then begin
        (* Exit module: outputs flow to the enclosing composite's end node
           (sub-workflows) or terminate (root). Output pseudo-modules
           terminate the flow by construction. *)
        let md = Spec.find_module spec m in
        if md.Module_def.kind <> Module_def.Output && out_items <> [] then
          exits := (node, out_items) :: !exits
      end
      else
        List.iter
          (fun (e : Spec.edge) ->
            let routed =
              List.filter
                (fun (it : Execution.item) -> List.mem it.name e.data)
                out_items
            in
            List.iter
              (fun name ->
                if
                  not
                    (List.exists
                       (fun (it : Execution.item) -> String.equal it.name name)
                       routed)
                then
                  fail "edge %s->%s expects data %S which %s did not produce"
                    (Ids.module_name e.src) (Ids.module_name e.dst) name
                    (Ids.module_name m))
              e.data;
            add_pending e.dst (node, routed);
            let r = Hashtbl.find in_remaining e.dst - 1 in
            Hashtbl.replace in_remaining e.dst r;
            if r = 0 then ready := e.dst :: !ready)
          out_edges
    done;
    Hashtbl.iter
      (fun m r ->
        if r > 0 then
          fail "module %s never became ready (dataflow starved)"
            (Ids.module_name m))
      in_remaining;
    List.rev !exits
  in
  ignore (exec_workflow (Spec.root spec) [] ~entry_feed:None);
  Execution.Builder.finish b

let table_semantics assoc : semantics =
 fun m inputs ->
  match List.assoc_opt m assoc with
  | Some f -> f inputs
  | None ->
      raise
        (Execution_error
           (Printf.sprintf "no semantics registered for module %s"
              (Ids.module_name m)))

let run_many ?priority spec sem ~inputs_list =
  List.map (fun inputs -> run ?priority spec sem ~inputs) inputs_list
