type kind = Input | Output | Atomic | Composite of Ids.workflow_id

type t = {
  id : Ids.module_id;
  name : string;
  kind : kind;
  keywords : string list;
}

let make ?(keywords = []) ~id ~name kind = { id; name; kind; keywords }
let input = make ~id:Ids.input_module ~name:"I" Input
let output = make ~id:Ids.output_module ~name:"O" Output

let is_composite m = match m.kind with Composite _ -> true | _ -> false
let expansion m = match m.kind with Composite w -> Some w | _ -> None

let lowercase = String.lowercase_ascii

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '-')
  |> List.filter (fun w -> w <> "")

let terms m =
  List.map lowercase (words m.name @ m.keywords)
  |> List.sort_uniq String.compare

(* Substring search; [needle] assumed non-empty after lowercasing. *)
let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  if n = 0 then true
  else begin
    let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  end

let matches m kw =
  let kw = lowercase kw in
  contains ~needle:kw (lowercase m.name)
  || List.exists (fun k -> contains ~needle:kw (lowercase k)) m.keywords

let pp ppf m =
  let kind_str =
    match m.kind with
    | Input -> "input"
    | Output -> "output"
    | Atomic -> "atomic"
    | Composite w -> Printf.sprintf "composite(%s)" w
  in
  Format.fprintf ppf "%a %S [%s]" Ids.pp_module m.id m.name kind_str
