module Digraph = Wfpriv_graph.Digraph
module Dot = Wfpriv_graph.Dot

type t = {
  exec : Execution.t;
  prefix : Ids.workflow_id list;
  graph : Digraph.t;
  rep : (int, int) Hashtbl.t; (* execution node -> view node *)
  collapsed : (int, unit) Hashtbl.t; (* view nodes hiding internals *)
  edge_items : (int * int, Ids.data_id list) Hashtbl.t;
}

let of_prefix exec ws =
  let spec = Execution.spec exec in
  let hierarchy = Hierarchy.of_spec spec in
  let prefix = Hierarchy.normalize_prefix hierarchy ws in
  (* proc id -> (begin node, expansion workflow) for every composite run *)
  let composite_info = Hashtbl.create 8 in
  List.iter
    (fun n ->
      match Execution.node_kind exec n with
      | Execution.Begin_composite { proc; module_id } ->
          let w =
            match Module_def.expansion (Spec.find_module spec module_id) with
            | Some w -> w
            | None -> assert false
          in
          Hashtbl.replace composite_info proc (n, w)
      | _ -> ())
    (Execution.nodes exec);
  let rep = Hashtbl.create 32 in
  let collapsed = Hashtbl.create 8 in
  List.iter
    (fun n ->
      (* Outermost enclosing composite whose expansion is not in the
         prefix absorbs the node. *)
      let collapse_at =
        List.find_opt
          (fun proc ->
            let _, w = Hashtbl.find composite_info proc in
            not (List.mem w prefix))
          (Execution.scope exec n)
      in
      match collapse_at with
      | Some proc ->
          let bnode, _ = Hashtbl.find composite_info proc in
          Hashtbl.replace rep n bnode;
          Hashtbl.replace collapsed bnode ()
      | None -> Hashtbl.replace rep n n)
    (Execution.nodes exec);
  let graph = Digraph.create () in
  let edge_items = Hashtbl.create 32 in
  List.iter (fun n -> Digraph.add_node graph (Hashtbl.find rep n)) (Execution.nodes exec);
  let base = Execution.graph exec in
  Digraph.iter_edges
    (fun u v ->
      let ru = Hashtbl.find rep u and rv = Hashtbl.find rep v in
      if ru <> rv then begin
        Digraph.add_edge graph ru rv;
        let items = Execution.edge_items exec u v in
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt edge_items (ru, rv))
        in
        Hashtbl.replace edge_items (ru, rv)
          (List.sort_uniq compare (existing @ items))
      end)
    base;
  { exec; prefix; graph; rep; collapsed; edge_items }

let full exec =
  of_prefix exec (Spec.workflow_ids (Execution.spec exec))

let coarsest exec = of_prefix exec [ Spec.root (Execution.spec exec) ]
let exec t = t.exec
let prefix t = t.prefix
let graph t = Digraph.copy t.graph
let nodes t = Digraph.nodes t.graph

let representative t n =
  match Hashtbl.find_opt t.rep n with Some r -> r | None -> raise Not_found

let is_collapsed t n = Hashtbl.mem t.collapsed n

let node_label t n =
  if is_collapsed t n then
    match Execution.node_kind t.exec n with
    | Execution.Begin_composite { proc; module_id } ->
        Printf.sprintf "%s:%s" (Ids.process_name proc) (Ids.module_name module_id)
    | _ -> Execution.node_label t.exec n
  else Execution.node_label t.exec n

let module_of_node t n = Execution.module_of_node t.exec n

let edge_items t u v =
  Option.value ~default:[] (Hashtbl.find_opt t.edge_items (u, v))

let visible_items t =
  Hashtbl.fold (fun _ items acc -> items @ acc) t.edge_items []
  |> List.sort_uniq compare

let hidden_items t =
  let visible = visible_items t in
  List.filter_map
    (fun (it : Execution.item) ->
      if List.mem it.Execution.data_id visible then None
      else Some it.Execution.data_id)
    (Execution.items t.exec)

let visible_lineage t d =
  let visible = visible_items t in
  List.filter (fun a -> List.mem a visible) (Provenance.lineage t.exec d)

let to_dot t =
  let style n =
    if is_collapsed t n then
      { Dot.label = node_label t n; shape = "box3d"; fill = Some "lightyellow" }
    else
      match Execution.node_kind t.exec n with
      | Execution.Input | Execution.Output ->
          { Dot.label = node_label t n; shape = "ellipse"; fill = Some "gray90" }
      | _ -> { Dot.label = node_label t n; shape = "box"; fill = None }
  in
  let edge_label u v =
    match edge_items t u v with
    | [] -> None
    | ds -> Some (String.concat "," (List.map Ids.data_name ds))
  in
  Dot.render ~name:"execution-view" ~node_style:style ~edge_label t.graph

let pp ppf t =
  Format.fprintf ppf "@[<v>execution view prefix {%s}@,"
    (String.concat ", " t.prefix);
  List.iter
    (fun (u, v) ->
      Format.fprintf ppf "%s -> %s [%s]@," (node_label t u) (node_label t v)
        (String.concat "," (List.map Ids.data_name (edge_items t u v))))
    (Digraph.edges t.graph);
  Format.fprintf ppf "@]"
