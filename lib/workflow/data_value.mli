(** Values carried by data items in workflow executions.

    The paper's modules move domain data (SNP sets, disorder lists, query
    strings) between modules; for privacy the only thing that matters is
    the value's identity and equality, so a small structured universe
    suffices. Values are immutable and totally ordered. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Record of (string * t) list
      (** Field list kept sorted by field name (enforced by {!record}). *)

val record : (string * t) list -> t
(** Build a record, sorting fields and rejecting duplicate names with
    [Invalid_argument]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash, compatible with {!equal}. *)

val to_string : t -> string
(** Compact single-line rendering, e.g. [{risk=high; n=3}]. *)

val pp : Format.formatter -> t -> unit

val masked : t
(** The distinguished placeholder shown instead of a hidden value
    ([Str "*"]). *)

val is_masked : t -> bool
