(** The expansion hierarchy and its prefixes (paper, Fig. 3).

    The τ-edges of a specification induce a tree over workflows: [W'] is a
    child of [W] when some composite module of [W] expands to [W']. A
    {e prefix} of this tree — any subtree containing the root, obtained by
    deleting whole subtrees — determines a view of the specification
    (see {!View}): the workflows in the prefix are the expanded ones. *)

type t

val of_spec : Spec.t -> t

val root : t -> Ids.workflow_id
val parent : t -> Ids.workflow_id -> Ids.workflow_id option
(** [None] for the root. Raises [Not_found] on unknown workflows. *)

val children : t -> Ids.workflow_id -> Ids.workflow_id list
(** Sorted. Raises [Not_found] on unknown workflows. *)

val ancestors : t -> Ids.workflow_id -> Ids.workflow_id list
(** Path from the root to the workflow, inclusive. *)

val descendants : t -> Ids.workflow_id -> Ids.workflow_id list
(** The workflow and everything below it, sorted. *)

val depth : t -> Ids.workflow_id -> int
(** Root has depth 0. *)

val height : t -> int
(** Maximum depth over all workflows. *)

val workflows : t -> Ids.workflow_id list
(** All workflows, sorted. *)

val is_prefix : t -> Ids.workflow_id list -> bool
(** True when the given set (duplicates ignored) contains the root and is
    closed under {!parent}. *)

val normalize_prefix : t -> Ids.workflow_id list -> Ids.workflow_id list
(** Sorted, deduplicated; raises [Invalid_argument] when not a prefix. *)

val all_prefixes : t -> Ids.workflow_id list list
(** Every prefix, each sorted, the list ordered by (size, contents). The
    count is exponential in general; intended for small hierarchies and
    tests. *)

val nb_prefixes : t -> int
(** Number of prefixes without enumerating them (product formula
    [p(v) = 1 + prod p(children)] counts subtrees containing each node;
    the root's value counts all prefixes including the trivial [{root}]).
*)

val module_path : Spec.t -> t -> Ids.module_id -> Ids.workflow_id list
(** Workflows that must all be expanded for the module to be visible: the
    ancestor chain of its owning workflow (root first). *)

val pp : Format.formatter -> t -> unit
(** Indented tree rendering, e.g. the paper's Fig. 3. *)
