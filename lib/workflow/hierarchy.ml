module Smap = Map.Make (String)

type t = {
  root : Ids.workflow_id;
  parent : Ids.workflow_id option Smap.t;
  children : Ids.workflow_id list Smap.t;
}

let of_spec spec =
  let root = Spec.root spec in
  let wfs = Spec.workflow_ids spec in
  let parent =
    List.fold_left
      (fun acc w ->
        let p =
          match Spec.defined_by spec w with
          | None -> None
          | Some m -> Some (Spec.owner spec m)
        in
        Smap.add w p acc)
      Smap.empty wfs
  in
  let children =
    List.fold_left
      (fun acc w ->
        match Smap.find w parent with
        | None -> acc
        | Some p ->
            let cur = Option.value ~default:[] (Smap.find_opt p acc) in
            Smap.add p (List.sort compare (w :: cur)) acc)
      Smap.empty wfs
  in
  { root; parent; children }

let root t = t.root

let parent t w =
  match Smap.find_opt w t.parent with Some p -> p | None -> raise Not_found

let children t w =
  if not (Smap.mem w t.parent) then raise Not_found;
  Option.value ~default:[] (Smap.find_opt w t.children)

let ancestors t w =
  let rec up w acc =
    match parent t w with None -> w :: acc | Some p -> up p (w :: acc)
  in
  up w []

let descendants t w =
  let rec down w acc =
    List.fold_left (fun acc c -> down c acc) (w :: acc) (children t w)
  in
  List.sort compare (down w [])

let depth t w = List.length (ancestors t w) - 1

let workflows t = Smap.fold (fun w _ acc -> w :: acc) t.parent [] |> List.rev

let height t =
  List.fold_left (fun acc w -> max acc (depth t w)) 0 (workflows t)

let is_prefix t ws =
  let set = List.sort_uniq compare ws in
  List.mem t.root set
  && List.for_all
       (fun w ->
         Smap.mem w t.parent
         && match parent t w with None -> true | Some p -> List.mem p set)
       set

let normalize_prefix t ws =
  if not (is_prefix t ws) then
    invalid_arg
      (Printf.sprintf "Hierarchy.normalize_prefix: {%s} is not a prefix"
         (String.concat ", " ws));
  List.sort_uniq compare ws

let all_prefixes t =
  (* Subtree-prefixes of node w that contain w: choose, for every child,
     either nothing or one of its own prefixes. *)
  let rec prefixes_of w =
    let child_choices =
      List.map (fun c -> [] :: prefixes_of c) (children t w)
    in
    List.fold_left
      (fun acc choice ->
        List.concat_map (fun base -> List.map (fun add -> add @ base) choice) acc)
      [ [ w ] ] child_choices
  in
  prefixes_of t.root
  |> List.map (List.sort compare)
  |> List.sort (fun a b ->
         compare (List.length a, a) (List.length b, b))

let nb_prefixes t =
  let rec count w =
    List.fold_left (fun acc c -> acc * (1 + count c)) 1 (children t w)
  in
  count t.root

let module_path spec t m =
  ancestors t (Spec.owner spec m)

let pp ppf t =
  let rec render w indent =
    Format.fprintf ppf "%s%s@," indent w;
    List.iter (fun c -> render c (indent ^ "  ")) (children t w)
  in
  Format.fprintf ppf "@[<v>";
  render t.root "";
  Format.fprintf ppf "@]"
