(** Module descriptors: the nodes of workflow specifications.

    A module is either the distinguished input/output pseudo-module of a
    top-level workflow, an atomic (executable) step, or a composite module
    defined by a τ-expansion into a sub-workflow (paper, Sec. 2).
    Keywords drive keyword search (Sec. 4); by convention every word of the
    human-readable name is implicitly a keyword too (see {!matches}). *)

type kind =
  | Input  (** the [I] pseudo-module; produces the workflow inputs *)
  | Output  (** the [O] pseudo-module; absorbs the workflow outputs *)
  | Atomic
  | Composite of Ids.workflow_id
      (** τ-edge target: the sub-workflow defining this module *)

type t = {
  id : Ids.module_id;
  name : string;  (** human-readable, e.g. ["Determine Genetic Susceptibility"] *)
  kind : kind;
  keywords : string list;  (** extra searchable terms beyond the name *)
}

val make : ?keywords:string list -> id:Ids.module_id -> name:string -> kind -> t
val input : t
(** The [I] pseudo-module (id {!Ids.input_module}). *)

val output : t
(** The [O] pseudo-module (id {!Ids.output_module}). *)

val is_composite : t -> bool
val expansion : t -> Ids.workflow_id option
(** [Some w] when the module is [Composite w]. *)

val terms : t -> string list
(** All searchable terms: lowercased name words plus lowercased keywords,
    deduplicated, sorted. *)

val matches : t -> string -> bool
(** [matches m kw] is [true] when lowercased [kw] occurs as a substring of
    the lowercased name or of any keyword — the matching rule used for the
    paper's Fig. 5 query ("Database" matches "Generate Database Queries"). *)

val pp : Format.formatter -> t -> unit
