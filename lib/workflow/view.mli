(** Views of a workflow specification defined by hierarchy prefixes
    (paper, Sec. 2).

    The view for prefix [P] is the flat workflow obtained from the root by
    repeatedly replacing each composite module whose expansion workflow is
    in [P] with the contents of that workflow: the composite's incoming
    edges are redirected to the sub-workflow's entry modules and its
    outgoing edges to the exit modules. Composite modules whose expansion
    is {e not} in [P] stay as opaque single nodes.

    Views are the unit of access control (a user's {e access view} is the
    finest view they may see) and the shape of query answers (Fig. 5). *)

type t

val of_prefix : Spec.t -> Ids.workflow_id list -> t
(** Raises [Invalid_argument] when the list is not a prefix of the
    expansion hierarchy. *)

val coarsest : Spec.t -> t
(** Prefix [{root}]: only the root workflow's own modules are visible. *)

val full : Spec.t -> t
(** Every workflow expanded: the paper's "full expansion". *)

val spec : t -> Spec.t
val prefix : t -> Ids.workflow_id list
(** Sorted. *)

val graph : t -> Wfpriv_graph.Digraph.t
(** Flat dataflow graph over visible module ids (fresh copy). *)

val visible_modules : t -> Ids.module_id list
(** Sorted. *)

val is_visible : t -> Ids.module_id -> bool

val edge_data : t -> Ids.module_id -> Ids.module_id -> string list
(** Data names on a visible edge; [[]] when the edge is absent. *)

val representative : t -> Ids.module_id -> Ids.module_id
(** The visible node standing for a module: the module itself when
    visible, otherwise the composite ancestor whose expansion was not
    taken. Raises [Not_found] on unknown modules and on composite modules
    whose expansion {e is} in the prefix (they are spliced into their
    contents and have no single stand-in). *)

val zoom_in : t -> Ids.module_id -> t option
(** Expand one visible composite module; [None] when the module is not a
    visible composite. *)

val zoom_out : t -> Ids.workflow_id -> t option
(** Collapse a non-root workflow of the prefix (and its descendants);
    [None] when the workflow is the root or not in the prefix. *)

val refines : t -> t -> bool
(** [refines a b]: [a]'s prefix contains [b]'s — [a] shows at least as
    much. *)

val meet : t -> t -> t
(** Coarsest common refinement bound from below: intersection of
    prefixes. Views must share a spec ([Invalid_argument] otherwise). *)

val node_label : t -> Ids.module_id -> string
(** ["M4 \"Consult External Databases\""]-style label. *)

val to_dot : t -> string
(** DOT rendering: composites as double octagons, I/O as ellipses. *)

val equal : t -> t -> bool
(** Same spec (physically) and same prefix. *)

val pp : Format.formatter -> t -> unit
