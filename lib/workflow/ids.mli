(** Identifier conventions shared by the workflow model.

    - Modules are numbered like the paper's [M1 .. M15]; the distinguished
      input and output pseudo-modules of a top-level workflow use reserved
      ids {!input_module} and {!output_module} and print as [I] / [O].
    - Workflows are named strings ([W1], [W2], ...).
    - Data items are numbered in creation order and print as [d0], [d1], ...
    - Process ids are numbered in scheduling order and print as [S1], ... *)

type module_id = int
type workflow_id = string
type data_id = int
type process_id = int

val input_module : module_id
(** Reserved id for the workflow input pseudo-module [I] (0). *)

val output_module : module_id
(** Reserved id for the workflow output pseudo-module [O] (-1 is invalid
    for graphs, so 1 is reserved; user modules start at {!first_user_id}).
*)

val first_user_id : module_id
(** Smallest id available for user-defined modules (2). *)

val m : int -> module_id
(** [m k] is the id of the module the paper calls [M<k>] ([k >= 1]);
    [module_name (m k) = "M<k>"]. Raises [Invalid_argument] on [k < 1]. *)

val module_name : module_id -> string
(** ["I"], ["O"] or ["M<n>"]. *)

val pp_module : Format.formatter -> module_id -> unit
val pp_workflow : Format.formatter -> workflow_id -> unit
val pp_data : Format.formatter -> data_id -> unit
(** Prints [d<n>]. *)

val pp_process : Format.formatter -> process_id -> unit
(** Prints [S<n>]. *)

val data_name : data_id -> string
val process_name : process_id -> string
