(** Views of executions (paper, Sec. 2, Fig. 2).

    A hierarchy prefix applied to an execution collapses every composite
    module execution whose defining workflow is outside the prefix into a
    single node: its begin/end pair and all enclosed executions merge, and
    only the data crossing the composite's boundary stays visible. Under
    prefix [{W1}], the paper's Fig. 4 execution becomes Fig. 2:
    [I -> S1:M1 -> S8:M2 -> O] with items [d0,d1 / d2,d3,d4 / d10 / d19].

    The nodes of a view are represented by the execution node id of the
    collapsed composite's begin node (or the original node id when not
    collapsed), so view nodes can be traced back to the execution. *)

type t

val of_prefix : Execution.t -> Ids.workflow_id list -> t
(** Raises [Invalid_argument] when the list is not a prefix of the spec's
    expansion hierarchy. *)

val full : Execution.t -> t
(** Identity view (every workflow expanded). *)

val coarsest : Execution.t -> t

val exec : t -> Execution.t
val prefix : t -> Ids.workflow_id list
val graph : t -> Wfpriv_graph.Digraph.t
(** Fresh copy of the collapsed DAG, over representative node ids. *)

val nodes : t -> int list
(** Sorted representative node ids. *)

val representative : t -> int -> int
(** View node standing for an execution node. *)

val is_collapsed : t -> int -> bool
(** Whether the view node hides a composite's internals. *)

val node_label : t -> int -> string
(** ["S1:M1"] for a collapsed composite (no begin/end suffix), otherwise
    the execution's own label. *)

val module_of_node : t -> int -> Ids.module_id option

val edge_items : t -> int -> int -> Ids.data_id list
(** Items annotated on a view edge — only data crossing collapse
    boundaries survives. *)

val visible_items : t -> Ids.data_id list
(** Items appearing on at least one view edge, sorted. *)

val hidden_items : t -> Ids.data_id list
(** Items of the execution absent from every view edge, sorted. *)

val visible_lineage : t -> Ids.data_id -> Ids.data_id list
(** The item's fine-grained ancestry ({!Provenance.lineage}) filtered to
    items visible in this view — what a user at this granularity can
    learn about where a result came from. The queried item itself need
    not be visible. Sorted; raises [Not_found] on unknown ids. *)

val to_dot : t -> string
val pp : Format.formatter -> t -> unit
