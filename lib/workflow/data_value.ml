type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Record of (string * t) list

let record fields =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) fields in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg (Printf.sprintf "Data_value.record: duplicate field %S" a);
        check rest
    | _ -> ()
  in
  check sorted;
  Record sorted

let rec compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Unit, _ -> -1
  | _, Unit -> 1
  | Bool x, Bool y -> Bool.compare x y
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Int x, Int y -> Int.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Str x, Str y -> String.compare x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | List xs, List ys -> List.compare compare xs ys
  | List _, _ -> -1
  | _, List _ -> 1
  | Record xs, Record ys ->
      List.compare
        (fun (fa, va) (fb, vb) ->
          let c = String.compare fa fb in
          if c <> 0 then c else compare va vb)
        xs ys

let equal a b = compare a b = 0

let rec hash = function
  | Unit -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash i
  | Str s -> Hashtbl.hash s
  | List xs -> List.fold_left (fun acc x -> (acc * 67) + hash x) 41 xs
  | Record fs ->
      List.fold_left
        (fun acc (f, v) -> (acc * 71) + Hashtbl.hash f + hash v)
        43 fs

let rec to_string = function
  | Unit -> "()"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Str s -> s
  | List xs -> "[" ^ String.concat "; " (List.map to_string xs) ^ "]"
  | Record fs ->
      "{"
      ^ String.concat "; " (List.map (fun (f, v) -> f ^ "=" ^ to_string v) fs)
      ^ "}"

let pp ppf v = Format.pp_print_string ppf (to_string v)
let masked = Str "*"
let is_masked v = equal v masked
