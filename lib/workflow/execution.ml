module Digraph = Wfpriv_graph.Digraph
module Topo = Wfpriv_graph.Topo
module Dot = Wfpriv_graph.Dot

type node_kind =
  | Input
  | Output
  | Atomic_exec of { proc : Ids.process_id; module_id : Ids.module_id }
  | Begin_composite of { proc : Ids.process_id; module_id : Ids.module_id }
  | End_composite of { proc : Ids.process_id; module_id : Ids.module_id }

type item = {
  data_id : Ids.data_id;
  name : string;
  value : Data_value.t;
  producer : int;
  derived_from : Ids.data_id list;
}

type t = {
  spec : Spec.t;
  graph : Digraph.t;
  kinds : (int, node_kind) Hashtbl.t;
  scopes : (int, Ids.process_id list) Hashtbl.t;
  edge_items : (int * int, Ids.data_id list) Hashtbl.t;
  items : item array;
}

let spec t = t.spec
let graph t = Digraph.copy t.graph
let nodes t = Digraph.nodes t.graph

let node_kind t n =
  match Hashtbl.find_opt t.kinds n with Some k -> k | None -> raise Not_found

let node_label t n =
  match node_kind t n with
  | Input -> "I"
  | Output -> "O"
  | Atomic_exec { proc; module_id } ->
      Printf.sprintf "%s:%s" (Ids.process_name proc) (Ids.module_name module_id)
  | Begin_composite { proc; module_id } ->
      Printf.sprintf "%s:%s begin" (Ids.process_name proc)
        (Ids.module_name module_id)
  | End_composite { proc; module_id } ->
      Printf.sprintf "%s:%s end" (Ids.process_name proc)
        (Ids.module_name module_id)

let module_of_node t n =
  match node_kind t n with
  | Input | Output -> None
  | Atomic_exec { module_id; _ }
  | Begin_composite { module_id; _ }
  | End_composite { module_id; _ } ->
      Some module_id

let scope t n =
  match Hashtbl.find_opt t.scopes n with Some s -> s | None -> raise Not_found

let nodes_of_module t m =
  List.filter
    (fun n ->
      match node_kind t n with
      | Atomic_exec { module_id; _ } | Begin_composite { module_id; _ } ->
          module_id = m
      | Input | Output | End_composite _ -> false)
    (nodes t)

let node_of_process t p =
  let found =
    List.find_opt
      (fun n ->
        match node_kind t n with
        | Atomic_exec { proc; _ } | Begin_composite { proc; _ } -> proc = p
        | Input | Output | End_composite _ -> false)
      (nodes t)
  in
  match found with Some n -> n | None -> raise Not_found

let edge_items t u v =
  Option.value ~default:[] (Hashtbl.find_opt t.edge_items (u, v))

let items t = Array.to_list t.items
let nb_items t = Array.length t.items

let find_item t d =
  if d < 0 || d >= Array.length t.items then raise Not_found else t.items.(d)

let items_named t name =
  List.filter (fun it -> String.equal it.name name) (items t)

let redact_named t name =
  (* Shares graph/kind/scope tables (read-only after Builder.finish) and
     keeps the same [spec] pointer: stores compare specs physically. *)
  {
    t with
    items =
      Array.map
        (fun it ->
          if String.equal it.name name then { it with value = Data_value.masked }
          else it)
        t.items;
  }

let output_items t =
  let out_node =
    List.find_opt (fun n -> node_kind t n = Output) (nodes t)
  in
  match out_node with
  | None -> []
  | Some o ->
      Digraph.pred t.graph o
      |> List.concat_map (fun p -> edge_items t p o)
      |> List.sort_uniq compare
      |> List.map (find_item t)

let to_dot t =
  let style n =
    match node_kind t n with
    | Input | Output ->
        { Dot.label = node_label t n; shape = "ellipse"; fill = Some "gray90" }
    | Atomic_exec _ -> { Dot.label = node_label t n; shape = "box"; fill = None }
    | Begin_composite _ | End_composite _ ->
        { Dot.label = node_label t n; shape = "box"; fill = Some "lightblue" }
  in
  let edge_label u v =
    match edge_items t u v with
    | [] -> None
    | ds -> Some (String.concat "," (List.map Ids.data_name ds))
  in
  Dot.render ~name:"execution" ~node_style:style ~edge_label t.graph

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (u, v) ->
      Format.fprintf ppf "%s -> %s [%s]@," (node_label t u) (node_label t v)
        (String.concat "," (List.map Ids.data_name (edge_items t u v))))
    (Digraph.edges t.graph);
  Format.fprintf ppf "@]"

module Builder = struct
  type exec = t

  type t = {
    b_spec : Spec.t;
    b_graph : Digraph.t;
    b_kinds : (int, node_kind) Hashtbl.t;
    b_scopes : (int, Ids.process_id list) Hashtbl.t;
    b_edges : (int * int, Ids.data_id list) Hashtbl.t;
    mutable b_items : item list; (* reversed *)
    mutable next_node : int;
    mutable next_proc : int;
    mutable next_data : int;
  }

  let create spec =
    {
      b_spec = spec;
      b_graph = Digraph.create ();
      b_kinds = Hashtbl.create 32;
      b_scopes = Hashtbl.create 32;
      b_edges = Hashtbl.create 32;
      b_items = [];
      next_node = 0;
      next_proc = 1;
      next_data = 0;
    }

  let add_node b ~scope kind =
    let n = b.next_node in
    b.next_node <- n + 1;
    Digraph.add_node b.b_graph n;
    Hashtbl.replace b.b_kinds n kind;
    Hashtbl.replace b.b_scopes n scope;
    n

  let fresh_process b =
    let p = b.next_proc in
    b.next_proc <- p + 1;
    p

  let add_item b ~name ~value ~producer ~derived_from =
    let d = b.next_data in
    b.next_data <- d + 1;
    let it = { data_id = d; name; value; producer; derived_from } in
    b.b_items <- it :: b.b_items;
    it

  let connect b ~src ~dst ds =
    Digraph.add_edge b.b_graph src dst;
    let existing = Option.value ~default:[] (Hashtbl.find_opt b.b_edges (src, dst)) in
    Hashtbl.replace b.b_edges (src, dst) (List.sort_uniq compare (existing @ ds))

  let finish b =
    if not (Topo.is_dag b.b_graph) then
      invalid_arg "Execution.Builder.finish: execution graph is cyclic";
    let items = Array.of_list (List.rev b.b_items) in
    Array.iter
      (fun it ->
        if not (Digraph.mem_node b.b_graph it.producer) then
          invalid_arg "Execution.Builder.finish: item with unknown producer")
      items;
    {
      spec = b.b_spec;
      graph = b.b_graph;
      kinds = b.b_kinds;
      scopes = b.b_scopes;
      edge_items = b.b_edges;
      items;
    }
end
