(** Deterministic workflow interpreter: specification + module semantics →
    execution (provenance graph).

    Module semantics are functions over {e named} values: a module receives
    the (name, value) pairs of every data item delivered to it and returns
    the (name, value) pairs it produces. Each produced pair becomes a fresh
    data item; an item flows along each outgoing dataflow edge whose
    annotation contains its name. The [Input] pseudo-module produces the
    caller-supplied workflow inputs.

    Composite modules execute like procedure calls (paper, Sec. 2): a
    begin node receives the composite's inputs, entry modules of the
    sub-workflow consume them, exit modules' outputs flow to the matching
    end node, and from there onward along the composite's outgoing edges.

    Scheduling is sequential and deterministic: among ready modules the one
    with the smallest [priority] (ties broken by module id) runs first;
    process ids are assigned in this order, which is how Fig. 4's
    [S1..S15] numbering is reproduced. *)

type semantics = Ids.module_id -> (string * Data_value.t) list -> (string * Data_value.t) list
(** [semantics m inputs] returns the named outputs of atomic module [m].
    Inputs arrive sorted by name. *)

exception Execution_error of string
(** Raised when semantics or routing are inconsistent with the spec:
    an atomic module without semantics for a required output name, an
    output name produced twice, etc. *)

val run :
  ?priority:(Ids.module_id -> int) ->
  Spec.t ->
  semantics ->
  inputs:(string * Data_value.t) list ->
  Execution.t
(** Execute the specification once. [inputs] are the items produced by the
    [Input] pseudo-module (or, for a root workflow without an [Input]
    module, delivered to its entry modules). Raises {!Execution_error} on
    inconsistency; the result is a valid DAG otherwise. *)

val table_semantics :
  (Ids.module_id * ((string * Data_value.t) list -> (string * Data_value.t) list)) list ->
  semantics
(** Assemble semantics from a per-module association list; missing modules
    raise {!Execution_error} when executed. *)

val run_many :
  ?priority:(Ids.module_id -> int) ->
  Spec.t ->
  semantics ->
  inputs_list:(string * Data_value.t) list list ->
  Execution.t list
(** Independent runs over several input assignments — "repeated executions
    of a workflow with varied inputs" (paper, Sec. 3). *)
