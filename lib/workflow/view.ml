module Digraph = Wfpriv_graph.Digraph
module Dot = Wfpriv_graph.Dot

type t = {
  spec : Spec.t;
  hierarchy : Hierarchy.t;
  prefix : Ids.workflow_id list; (* sorted *)
  graph : Digraph.t;
  edge_data : (Ids.module_id * Ids.module_id, string list) Hashtbl.t;
}

let expanded t w = List.mem w t.prefix

(* Flatten the root workflow under [prefix]. The graph is built by first
   inserting every workflow of the prefix as-is, then splicing each
   expanded composite out: in-edges move to the expansion's entries,
   out-edges to its exits. *)
let build spec prefix =
  let graph = Digraph.create () in
  let edge_data = Hashtbl.create 64 in
  let add_edge u v data =
    Digraph.add_edge graph u v;
    let existing = Option.value ~default:[] (Hashtbl.find_opt edge_data (u, v)) in
    Hashtbl.replace edge_data (u, v) (List.sort_uniq compare (existing @ data))
  in
  (* Insert all members and internal edges of every expanded workflow. *)
  List.iter
    (fun w ->
      let wf = Spec.find_workflow spec w in
      List.iter (Digraph.add_node graph) wf.Spec.members;
      List.iter
        (fun (e : Spec.edge) -> add_edge e.src e.dst e.data)
        wf.Spec.edges)
    prefix;
  (* Splice expanded composites shallowest-first: a deeper workflow's
     entries/exits stay in the graph until its own splice, so redirected
     edges always land on present nodes. *)
  let hierarchy = Hierarchy.of_spec spec in
  let by_depth =
    List.sort
      (fun a b -> compare (Hierarchy.depth hierarchy a) (Hierarchy.depth hierarchy b))
      prefix
  in
  List.iter
    (fun w ->
      match Spec.defined_by spec w with
      | None -> () (* root *)
      | Some comp ->
          let entry = Spec.entries spec w and exit = Spec.exits spec w in
          List.iter
            (fun p ->
              let data = Hashtbl.find edge_data (p, comp) in
              Hashtbl.remove edge_data (p, comp);
              List.iter (fun e -> add_edge p e data) entry)
            (Digraph.pred graph comp);
          List.iter
            (fun s ->
              let data = Hashtbl.find edge_data (comp, s) in
              Hashtbl.remove edge_data (comp, s);
              List.iter (fun x -> add_edge x s data) exit)
            (Digraph.succ graph comp);
          Digraph.remove_node graph comp)
    by_depth;
  (graph, edge_data, hierarchy)

let of_prefix spec ws =
  let hierarchy = Hierarchy.of_spec spec in
  let prefix = Hierarchy.normalize_prefix hierarchy ws in
  let graph, edge_data, hierarchy = build spec prefix in
  { spec; hierarchy; prefix; graph; edge_data }

let coarsest spec = of_prefix spec [ Spec.root spec ]
let full spec = of_prefix spec (Spec.workflow_ids spec)
let spec t = t.spec
let prefix t = t.prefix
let graph t = Digraph.copy t.graph
let visible_modules t = Digraph.nodes t.graph
let is_visible t m = Digraph.mem_node t.graph m

let edge_data t u v =
  Option.value ~default:[] (Hashtbl.find_opt t.edge_data (u, v))

let representative t m =
  if is_visible t m then m
  else begin
    let chain = Hierarchy.module_path t.spec t.hierarchy m in
    (* First workflow on the root->owner chain that is not expanded; the
       composite defining it is the visible stand-in. *)
    match List.find_opt (fun w -> not (expanded t w)) chain with
    | Some w -> (
        match Spec.defined_by t.spec w with
        | Some comp -> comp
        | None -> raise Not_found)
    | None ->
        (* Module's whole chain is expanded yet it is not in the graph:
           unknown module id. *)
        raise Not_found
  end

let zoom_in t m =
  if not (is_visible t m) then None
  else
    match Module_def.expansion (Spec.find_module t.spec m) with
    | None -> None
    | Some w -> Some (of_prefix t.spec (w :: t.prefix))

let zoom_out t w =
  if w = Spec.root t.spec || not (expanded t w) then None
  else begin
    let drop = Hierarchy.descendants t.hierarchy w in
    let prefix = List.filter (fun x -> not (List.mem x drop)) t.prefix in
    Some (of_prefix t.spec prefix)
  end

let refines a b = List.for_all (fun w -> List.mem w a.prefix) b.prefix

let meet a b =
  if a.spec != b.spec then invalid_arg "View.meet: views of different specs";
  of_prefix a.spec (List.filter (fun w -> List.mem w b.prefix) a.prefix)

let node_label t m =
  let md = Spec.find_module t.spec m in
  match md.Module_def.kind with
  | Module_def.Input -> "I"
  | Module_def.Output -> "O"
  | _ -> Printf.sprintf "%s %S" (Ids.module_name m) md.Module_def.name

let to_dot t =
  let style m =
    let md = Spec.find_module t.spec m in
    match md.Module_def.kind with
    | Module_def.Input | Module_def.Output ->
        { Dot.label = Ids.module_name m; shape = "ellipse"; fill = Some "gray90" }
    | Module_def.Atomic ->
        {
          Dot.label = Printf.sprintf "%s\n%s" (Ids.module_name m) md.Module_def.name;
          shape = "box";
          fill = None;
        }
    | Module_def.Composite w ->
        {
          Dot.label =
            Printf.sprintf "%s\n%s\n(= %s)" (Ids.module_name m)
              md.Module_def.name w;
          shape = "doubleoctagon";
          fill = Some "lightyellow";
        }
  in
  let edge_label u v =
    match edge_data t u v with [] -> None | d -> Some (String.concat ", " d)
  in
  Dot.render ~name:(Spec.root t.spec) ~node_style:style ~edge_label t.graph

let equal a b = a.spec == b.spec && a.prefix = b.prefix

let pp ppf t =
  Format.fprintf ppf "@[<v>view prefix {%s}@," (String.concat ", " t.prefix);
  List.iter
    (fun m -> Format.fprintf ppf "  %s@," (node_label t m))
    (visible_modules t);
  Digraph.iter_edges
    (fun u v ->
      Format.fprintf ppf "  %a -> %a [%s]@," Ids.pp_module u Ids.pp_module v
        (String.concat ", " (edge_data t u v)))
    t.graph;
  Format.fprintf ppf "@]"
