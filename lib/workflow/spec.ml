module Digraph = Wfpriv_graph.Digraph
module Topo = Wfpriv_graph.Topo
module Smap = Map.Make (String)
module Imap = Map.Make (Int)

type edge = { src : Ids.module_id; dst : Ids.module_id; data : string list }

type workflow = {
  wf_id : Ids.workflow_id;
  title : string;
  members : Ids.module_id list;
  edges : edge list;
}

type t = {
  root : Ids.workflow_id;
  workflows : workflow Smap.t;
  modules : Module_def.t Imap.t;
  owner_of : Ids.workflow_id Imap.t;
  defined_by : Ids.module_id Smap.t; (* workflow -> composite module it defines *)
}

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let normalize_workflow wf =
  {
    wf with
    members = List.sort_uniq compare wf.members;
    edges = List.sort (fun a b -> compare (a.src, a.dst) (b.src, b.dst)) wf.edges;
  }

let dataflow_graph wf =
  let g = Digraph.create () in
  List.iter (Digraph.add_node g) wf.members;
  List.iter (fun e -> Digraph.add_edge g e.src e.dst) wf.edges;
  g

let create ~root module_list workflow_list =
  let workflow_list = List.map normalize_workflow workflow_list in
  (* Unique module ids. *)
  let modules =
    List.fold_left
      (fun acc (m : Module_def.t) ->
        if Imap.mem m.id acc then
          fail "duplicate module id %s" (Ids.module_name m.id)
        else Imap.add m.id m acc)
      Imap.empty module_list
  in
  (* Unique workflow ids; root present. *)
  let workflows =
    List.fold_left
      (fun acc wf ->
        if Smap.mem wf.wf_id acc then fail "duplicate workflow id %s" wf.wf_id
        else Smap.add wf.wf_id wf acc)
      Smap.empty workflow_list
  in
  if not (Smap.mem root workflows) then fail "root workflow %s not declared" root;
  (* Membership: every member declared, every module in exactly one workflow. *)
  let owner_of =
    Smap.fold
      (fun wf_id wf acc ->
        List.fold_left
          (fun acc m ->
            if not (Imap.mem m modules) then
              fail "workflow %s lists undeclared module %s" wf_id
                (Ids.module_name m);
            match Imap.find_opt m acc with
            | Some other ->
                fail "module %s belongs to both %s and %s" (Ids.module_name m)
                  other wf_id
            | None -> Imap.add m wf_id acc)
          acc wf.members)
      workflows Imap.empty
  in
  Imap.iter
    (fun id _ ->
      if not (Imap.mem id owner_of) then
        fail "module %s belongs to no workflow" (Ids.module_name id))
    modules;
  (* Edges: same workflow, no self-loops, non-empty data, DAG. *)
  Smap.iter
    (fun wf_id wf ->
      List.iter
        (fun e ->
          if e.src = e.dst then
            fail "self-loop on %s in %s" (Ids.module_name e.src) wf_id;
          if e.data = [] then
            fail "edge %s->%s in %s carries no data names"
              (Ids.module_name e.src) (Ids.module_name e.dst) wf_id;
          let check m =
            if Imap.find_opt m owner_of <> Some wf_id then
              fail "edge endpoint %s is not a member of %s"
                (Ids.module_name m) wf_id
          in
          check e.src;
          check e.dst)
        wf.edges;
      if not (Topo.is_dag (dataflow_graph wf)) then
        fail "workflow %s has a dataflow cycle" wf_id)
    workflows;
  (* Input/Output placement. *)
  Imap.iter
    (fun id (m : Module_def.t) ->
      match m.kind with
      | Module_def.Input | Module_def.Output ->
          if Imap.find id owner_of <> root then
            fail "%s pseudo-module %s outside the root workflow"
              (if m.kind = Module_def.Input then "input" else "output")
              (Ids.module_name id)
      | Module_def.Atomic | Module_def.Composite _ -> ())
    modules;
  let count_kind wf_id k =
    let wf = Smap.find wf_id workflows in
    List.length
      (List.filter (fun m -> (Imap.find m modules).Module_def.kind = k) wf.members)
  in
  if count_kind root Module_def.Input > 1 then fail "multiple input modules";
  if count_kind root Module_def.Output > 1 then fail "multiple output modules";
  (* τ-edges: expansion targets exist, are not the root, and each non-root
     workflow is defined by exactly one composite. *)
  let defined_by =
    Imap.fold
      (fun id (m : Module_def.t) acc ->
        match m.Module_def.kind with
        | Module_def.Composite w ->
            if not (Smap.mem w workflows) then
              fail "composite %s expands to undeclared workflow %s"
                (Ids.module_name id) w;
            if w = root then
              fail "composite %s expands to the root workflow"
                (Ids.module_name id);
            if Smap.mem w acc then
              fail "workflow %s defines two composite modules" w;
            Smap.add w id acc
        | _ -> acc)
      modules Smap.empty
  in
  Smap.iter
    (fun wf_id _ ->
      if wf_id <> root && not (Smap.mem wf_id defined_by) then
        fail "workflow %s is not the expansion of any composite module" wf_id)
    workflows;
  (* Acyclicity of the expansion hierarchy: walking parents must reach root. *)
  Smap.iter
    (fun wf_id _ ->
      let rec climb seen w =
        if w = root then ()
        else if List.mem w seen then
          fail "expansion hierarchy contains a cycle through %s" w
        else
          let parent_module = Smap.find w defined_by in
          climb (w :: seen) (Imap.find parent_module owner_of)
      in
      climb [] wf_id)
    workflows;
  { root; workflows; modules; owner_of; defined_by }

let root t = t.root
let workflow_ids t = Smap.fold (fun k _ acc -> k :: acc) t.workflows [] |> List.rev

let find_workflow t w =
  match Smap.find_opt w t.workflows with Some wf -> wf | None -> raise Not_found

let module_ids t = Imap.fold (fun k _ acc -> k :: acc) t.modules [] |> List.rev

let find_module t m =
  match Imap.find_opt m t.modules with Some md -> md | None -> raise Not_found

let owner t m =
  match Imap.find_opt m t.owner_of with Some w -> w | None -> raise Not_found

let defined_by t w =
  if not (Smap.mem w t.workflows) then raise Not_found;
  Smap.find_opt w t.defined_by

let graph_of t w = dataflow_graph (find_workflow t w)

let edge_between t u v =
  match Imap.find_opt u t.owner_of with
  | None -> None
  | Some w ->
      List.find_opt (fun e -> e.src = u && e.dst = v) (Smap.find w t.workflows).edges

let entries t w =
  let wf = find_workflow t w in
  let has_in m = List.exists (fun e -> e.dst = m) wf.edges in
  List.filter (fun m -> not (has_in m)) wf.members

let exits t w =
  let wf = find_workflow t w in
  let has_out m = List.exists (fun e -> e.src = m) wf.edges in
  List.filter (fun m -> not (has_out m)) wf.members

let nb_modules t = Imap.cardinal t.modules
let nb_workflows t = Smap.cardinal t.workflows

let filter_modules t pred =
  Imap.fold (fun id m acc -> if pred m then id :: acc else acc) t.modules []
  |> List.rev

let atomic_modules t =
  filter_modules t (fun m -> m.Module_def.kind = Module_def.Atomic)

let composite_modules t = filter_modules t Module_def.is_composite

let pp ppf t =
  Format.fprintf ppf "@[<v>spec (root %s)@," t.root;
  Smap.iter
    (fun wf_id wf ->
      Format.fprintf ppf "  workflow %s %S@," wf_id wf.title;
      List.iter
        (fun m ->
          Format.fprintf ppf "    %a@," Module_def.pp (Imap.find m t.modules))
        wf.members;
      List.iter
        (fun e ->
          Format.fprintf ppf "    %a -> %a [%s]@," Ids.pp_module e.src
            Ids.pp_module e.dst
            (String.concat ", " e.data))
        wf.edges)
    t.workflows;
  Format.fprintf ppf "@]"
