(** Hierarchical workflow specifications (paper, Sec. 2).

    A specification is a set of workflows. Each workflow is a DAG of
    modules connected by dataflow edges; a composite module carries a
    τ-edge to the sub-workflow that defines it. The sub-workflow
    relationship must form a tree — the {e expansion hierarchy} — rooted at
    the distinguished root workflow (the paper's [W1], Fig. 3).

    Dataflow edges are annotated with the {e names} of the data that flow
    over them ([snps], [disorders], ...); names connect producers to
    consumers during execution. Within a sub-workflow, {e entry} modules
    (no in-edges) receive all data entering the composite module it
    defines, and {e exit} modules (no out-edges) send their outputs to the
    composite's completion.

    Values of type {!t} are immutable and validated at construction: use
    {!create} (or the lighter {!Builder}) and rely on every stated
    invariant afterwards. *)

type edge = {
  src : Ids.module_id;
  dst : Ids.module_id;
  data : string list;  (** names of data items flowing on this edge *)
}

type workflow = {
  wf_id : Ids.workflow_id;
  title : string;
  members : Ids.module_id list;  (** sorted, no duplicates *)
  edges : edge list;  (** sorted by (src, dst) *)
}

type t

exception Invalid of string
(** Raised by {!create} with a human-readable explanation. *)

val create :
  root:Ids.workflow_id -> Module_def.t list -> workflow list -> t
(** [create ~root modules workflows] validates and freezes a
    specification. Checks (raising {!Invalid}):
    - module ids unique; workflow ids unique; [root] present;
    - every member of a workflow is a declared module, and every module is
      a member of exactly one workflow;
    - edges connect members of the same workflow, no self-loops, each
      workflow's dataflow graph is a DAG, edge data-name lists non-empty;
    - [Input]/[Output] modules appear only in the root workflow (at most
      one of each, input a source / output a sink);
    - each composite module's expansion names an existing workflow other
      than the root, and each non-root workflow is the expansion of exactly
      one composite module (τ-edges form a tree: Fig. 3);
    - a composite module does not (transitively) expand to the workflow
      containing it. *)

val root : t -> Ids.workflow_id
val workflow_ids : t -> Ids.workflow_id list
(** Sorted. *)

val find_workflow : t -> Ids.workflow_id -> workflow
(** Raises [Not_found]. *)

val module_ids : t -> Ids.module_id list
(** Sorted. *)

val find_module : t -> Ids.module_id -> Module_def.t
(** Raises [Not_found]. *)

val owner : t -> Ids.module_id -> Ids.workflow_id
(** Workflow the module is a member of. Raises [Not_found]. *)

val defined_by : t -> Ids.workflow_id -> Ids.module_id option
(** The composite module this workflow defines; [None] for the root. *)

val graph_of : t -> Ids.workflow_id -> Wfpriv_graph.Digraph.t
(** Dataflow graph of one workflow (fresh copy, over module ids). *)

val edge_between : t -> Ids.module_id -> Ids.module_id -> edge option
(** The dataflow edge between two modules of the same workflow, if any. *)

val entries : t -> Ids.workflow_id -> Ids.module_id list
(** Members with no incoming dataflow edge (for the root this includes the
    [Input] module only, since everything else is fed by it). Sorted. *)

val exits : t -> Ids.workflow_id -> Ids.module_id list
(** Members with no outgoing dataflow edge. Sorted. *)

val nb_modules : t -> int
val nb_workflows : t -> int

val atomic_modules : t -> Ids.module_id list
val composite_modules : t -> Ids.module_id list

val pp : Format.formatter -> t -> unit
(** Multi-line listing of workflows, members and edges. *)
