type module_id = int
type workflow_id = string
type data_id = int
type process_id = int

let input_module = 0
let output_module = 1
let first_user_id = 2

let m k =
  if k < 1 then invalid_arg "Ids.m: module index must be >= 1";
  k + 1

let module_name = function
  | 0 -> "I"
  | 1 -> "O"
  | m -> Printf.sprintf "M%d" (m - 1)

let pp_module ppf m = Format.pp_print_string ppf (module_name m)
let pp_workflow ppf w = Format.pp_print_string ppf w
let data_name d = Printf.sprintf "d%d" d
let pp_data ppf d = Format.pp_print_string ppf (data_name d)
let process_name p = Printf.sprintf "S%d" p
let pp_process ppf p = Format.pp_print_string ppf (process_name p)
