(** Provenance queries over executions (paper, Sec. 2).

    The provenance of a data item [d] is the subgraph of the execution
    induced by the paths from the start of the execution to [d]'s
    producer — everything that contributed to producing [d]. Two
    granularities are provided: coarse (graph co-reachability of the
    producer node) and fine (the [derived_from] lineage recorded per
    item). Downstream impact ("what data might have been affected by this
    erroneous item?", paper Sec. 1) is the dual. *)

type t = {
  exec : Execution.t;
  focus : Ids.data_id;
  nodes : int list;  (** sorted node ids of the provenance subgraph *)
  graph : Wfpriv_graph.Digraph.t;  (** induced subgraph *)
}

val of_data : Execution.t -> Ids.data_id -> t
(** Coarse provenance subgraph of an item. Raises [Not_found] on unknown
    ids. *)

val lineage : Execution.t -> Ids.data_id -> Ids.data_id list
(** Fine-grained ancestry: every item [d'] such that [d] was (transitively)
    derived from [d'], sorted; excludes [d] itself. *)

val impacted : Execution.t -> Ids.data_id -> Ids.data_id list
(** Dual of {!lineage}: items (transitively) derived from [d], sorted. *)

val depends_on : Execution.t -> Ids.data_id -> Ids.data_id -> bool
(** [depends_on e d d'] — [d] was derived (transitively) from [d']. *)

val contributing_modules : Execution.t -> Ids.data_id -> Ids.module_id list
(** Modules with an execution inside the item's provenance subgraph,
    sorted — the facts structural privacy hides (paper, Sec. 3). *)

val necessary_modules : Execution.t -> Ids.data_id -> Ids.module_id list
(** Modules the item {e necessarily} flowed through: those with an
    execution node dominating the item's producer (w.r.t. a virtual
    source feeding all the execution's sources). Strictly stronger than
    {!contributing_modules} — a contributing module on only one of two
    parallel paths is not necessary. Sorted; includes the producer's own
    module. *)

val executed_before : Execution.t -> Ids.module_id -> Ids.module_id -> bool
(** True when some execution of the first module reaches (precedes in the
    dataflow order) some execution of the second — the predicate behind
    queries like "Expand SNP Set was executed before Query OMIM". *)

val pp : Format.formatter -> t -> unit
