type span = {
  name : string;
  start_ns : int;
  dur_ns : int;
  attrs : (string * string) list;
}

type sink_kind = Null | Ring | Jsonl

type state =
  | S_null
  | S_ring of { spans : span option array; mutable head : int }
  | S_jsonl of { path : string; oc : out_channel }

let lock = Mutex.create ()
let state = ref S_null

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let close_locked () =
  (match !state with S_jsonl { oc; _ } -> close_out oc | _ -> ());
  state := S_null

let sink () =
  with_lock (fun () ->
      match !state with S_null -> Null | S_ring _ -> Ring | S_jsonl _ -> Jsonl)

let set_null () = with_lock close_locked

let set_ring ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Trace.set_ring: capacity < 1";
  with_lock (fun () ->
      close_locked ();
      state := S_ring { spans = Array.make capacity None; head = 0 })

let set_jsonl path =
  with_lock (fun () ->
      close_locked ();
      let oc =
        open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_text ] 0o644 path
      in
      state := S_jsonl { path; oc })

let close () = with_lock close_locked

let install_from_env () =
  match Sys.getenv_opt "WFPRIV_TRACE" with
  | Some path when String.trim path <> "" ->
      Config.set_enabled true;
      set_jsonl path
  | _ -> ()

(* Minimal JSON string escaping: names and attributes are controlled
   identifiers, but stay safe on any input. *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let span_line s =
  let attrs =
    String.concat ""
      (List.map
         (fun (k, v) -> Printf.sprintf ",\"%s\":\"%s\"" (escape k) (escape v))
         s.attrs)
  in
  Printf.sprintf "{\"span\":\"%s\",\"start_ns\":%d,\"dur_ns\":%d%s}"
    (escape s.name) s.start_ns s.dur_ns attrs

let record s =
  with_lock (fun () ->
      match !state with
      | S_null -> ()
      | S_ring r ->
          r.spans.(r.head mod Array.length r.spans) <- Some s;
          r.head <- r.head + 1
      | S_jsonl { oc; _ } ->
          output_string oc (span_line s);
          output_char oc '\n';
          flush oc)

let with_span ?attrs name f =
  if (not (Config.enabled ())) || sink () = Null then f ()
  else begin
    let start_ns = Config.now_ns () in
    let finally () =
      let dur_ns = max 0 (Config.now_ns () - start_ns) in
      let attrs = match attrs with None -> [] | Some g -> g () in
      record { name; start_ns; dur_ns; attrs }
    in
    Fun.protect ~finally f
  end

let ring_spans () =
  with_lock (fun () ->
      match !state with
      | S_ring r ->
          let n = Array.length r.spans in
          let first = max 0 (r.head - n) in
          List.init (r.head - first) (fun i ->
              Option.get r.spans.((first + i) mod n))
      | _ -> [])
