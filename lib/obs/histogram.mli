(** Lock-free histograms over fixed log-scaled buckets.

    Bucket [i] covers values in [[2^i, 2^(i+1))] (bucket 0 additionally
    holds 0 and 1), for 63 buckets — enough for nanosecond latencies up
    to centuries with a constant, allocation-free [observe]: one bit
    scan plus three [Atomic.fetch_and_add]s. Histograms record latencies
    and sizes, which are operator-facing and inherently run-dependent:
    they never enter the privilege-partitioned observer view, only the
    observation {e count} is deterministic for a deterministic
    workload. *)

type t

val make : string -> t
(** Use {!Registry.histogram} rather than calling this directly. *)

val name : t -> string

val observe : t -> int -> unit
(** Record one value (negative values clamp to 0). Dropped while
    {!Config.enabled} is off. *)

val time : t -> (unit -> 'a) -> 'a
(** Run the thunk, recording its wall-clock nanoseconds. When disabled,
    runs the thunk without reading the clock. *)

val count : t -> int
val sum : t -> int

val buckets : t -> (int * int) list
(** Non-empty buckets as [(lower_bound, count)], ascending. *)

val reset : t -> unit
