(** The process-wide metric registry.

    Metrics are created once, memoized by name, and live for the
    process; {!reset} zeroes values but keeps registrations, so tests
    and the leakage suite can compare two runs of one process. Two
    projections exist:

    - the {e operator view} ({!snapshot}): every metric, every cell —
      for the process owner, who already sees every privilege level;
    - the {e observer view} ({!observer_counters}): only the
      privilege-partitioned counter cells at or below a level. This is
      the surface whose key invariant the leakage suite enforces: for
      every level [p] it is bit-identical between a run over a graph and
      a run over the same graph with additional hidden (higher-floor)
      nodes — observability output is part of the access view. *)

val counter : ?volatile:bool -> string -> Counter.t
(** Find or register. Raises [Invalid_argument] if the name is already
    registered as a histogram (or with a different volatility). *)

val histogram : string -> Histogram.t
(** Find or register. Raises [Invalid_argument] if the name is already a
    counter. *)

type item =
  | Counter_item of {
      name : string;
      volatile : bool;
      op : int;  (** operator-cell value *)
      levels : (int * int) list;  (** per-level cells, ascending *)
    }
  | Histogram_item of {
      name : string;
      count : int;
      sum : int;
      buckets : (int * int) list;
    }

val snapshot : unit -> item list
(** Every registered metric, sorted by name — the operator view. *)

val observer_counters : level:int -> (string * int) list
(** Non-volatile counters with at least one level cell [<= level], each
    summed over those cells only; sorted by name. Operator cells and
    histograms never appear: they may reflect work above the observer's
    level. *)

val observer_counters_prefixed :
  prefix:string -> level:int -> (string * int) list
(** {!observer_counters} restricted to names starting with [prefix] —
    the projection the serving layer's [stats] wire endpoint returns
    when a client asks for one subsystem (e.g. ["server."]) instead of
    the whole observer view. Same partitioning guarantee: only level
    cells [<= level] are ever summed. *)

val reset : unit -> unit
(** Zero every metric (registrations survive). *)
