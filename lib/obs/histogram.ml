let nb_buckets = 63

type t = {
  h_name : string;
  counts : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
}

let make name =
  {
    h_name = name;
    counts = Array.init nb_buckets (fun _ -> Atomic.make 0);
    h_count = Atomic.make 0;
    h_sum = Atomic.make 0;
  }

let name t = t.h_name

(* Index of the highest set bit, i.e. floor(log2 v); 0 and 1 land in
   bucket 0. *)
let bucket_of v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let observe t v =
  if Config.enabled () then begin
    let v = max 0 v in
    ignore (Atomic.fetch_and_add t.counts.(min (bucket_of v) (nb_buckets - 1)) 1);
    ignore (Atomic.fetch_and_add t.h_count 1);
    ignore (Atomic.fetch_and_add t.h_sum v)
  end

let time t f =
  if not (Config.enabled ()) then f ()
  else begin
    let t0 = Config.now_ns () in
    let finally () = observe t (Config.now_ns () - t0) in
    Fun.protect ~finally f
  end

let count t = Atomic.get t.h_count
let sum t = Atomic.get t.h_sum

let buckets t =
  let acc = ref [] in
  for i = nb_buckets - 1 downto 0 do
    let c = Atomic.get t.counts.(i) in
    if c > 0 then acc := ((if i = 0 then 0 else 1 lsl i), c) :: !acc
  done;
  !acc

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.counts;
  Atomic.set t.h_count 0;
  Atomic.set t.h_sum 0
