type t = {
  c_name : string;
  volatile : bool;
  op_cell : int Atomic.t;
  lock : Mutex.t; (* guards extension of [cells] *)
  mutable cells : (int * int Atomic.t) array; (* level -> cell, ascending *)
}

let make ?(volatile = false) name =
  {
    c_name = name;
    volatile;
    op_cell = Atomic.make 0;
    lock = Mutex.create ();
    cells = [||];
  }

let name t = t.c_name
let is_volatile t = t.volatile

let add_op t n = if Config.enabled () then ignore (Atomic.fetch_and_add t.op_cell n)
let incr_op t = add_op t 1

let find_cell arr level =
  let rec go i =
    if i >= Array.length arr then None
    else
      let l, c = arr.(i) in
      if l = level then Some c else if l > level then None else go (i + 1)
  in
  go 0

(* The unlocked scan can miss a cell another domain just added; the
   locked rescan is authoritative (and creates the cell if needed), so a
   miss costs one mutex round-trip, never a lost recording. *)
let cell t level =
  match find_cell t.cells level with
  | Some c -> c
  | None ->
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          match find_cell t.cells level with
          | Some c -> c
          | None ->
              let c = Atomic.make 0 in
              let cells =
                Array.append t.cells [| (level, c) |]
                |> Array.to_list
                |> List.sort (fun (a, _) (b, _) -> compare a b)
                |> Array.of_list
              in
              t.cells <- cells;
              c)

let add t ~at n = if Config.enabled () then ignore (Atomic.fetch_and_add (cell t at) n)
let incr t ~at = add t ~at 1

let op_value t = Atomic.get t.op_cell

let value_up_to t level =
  Array.fold_left
    (fun acc (l, c) -> if l <= level then acc + Atomic.get c else acc)
    0 t.cells

let levels t =
  Array.to_list (Array.map (fun (l, c) -> (l, Atomic.get c)) t.cells)

let total t = op_value t + value_up_to t max_int

let reset t =
  Atomic.set t.op_cell 0;
  Array.iter (fun (_, c) -> Atomic.set c 0) t.cells
