(** Span-based tracing with a pluggable sink.

    A span is one timed section of a coarse operation — a batch
    evaluation, a closure build, an index build, a recovery pass. Three
    sinks:

    - {e null} (the default): spans are not recorded and the clock is
      never read, so instrumentation sites cost one atomic load;
    - {e ring}: the last [capacity] spans in memory, for tests and the
      stats command;
    - {e jsonl}: one JSON object per line to a file — the
      [WFPRIV_TRACE=path] hook.

    Sinks are process-wide; recording is mutex-serialized, which is fine
    at span granularity (spans wrap operations, never per-node work).
    Span attributes must follow the same discipline as every other
    observability output: counts and levels, never the identities of
    nodes the access view hides. *)

type span = {
  name : string;
  start_ns : int;
  dur_ns : int;
  attrs : (string * string) list;
}

type sink_kind = Null | Ring | Jsonl

val sink : unit -> sink_kind
val set_null : unit -> unit
val set_ring : ?capacity:int -> unit -> unit
(** Default capacity 1024; resets the buffer. *)

val set_jsonl : string -> unit
(** Opens (truncates) the file; closes any previous jsonl sink. *)

val close : unit -> unit
(** Flush and close a jsonl sink and revert to null; no-op otherwise. *)

val install_from_env : unit -> unit
(** [WFPRIV_TRACE=path] installs a jsonl sink on [path] and turns
    {!Config.set_enabled} on (a requested trace implies observability);
    unset leaves the sink alone. *)

val with_span :
  ?attrs:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span. [attrs] is only forced when the span is
    actually recorded. The span is recorded even when the thunk raises. *)

val ring_spans : unit -> span list
(** Recorded spans, oldest first; [[]] unless the sink is a ring. *)
