(** Global observability switch and clock.

    Instrumentation sites all over the engine check {!enabled} before
    touching a counter or reading the clock, so a disabled process pays
    one atomic load per site and nothing else — the E16 contract. The
    switch is process-wide and domain-safe (an [Atomic.t]); flipping it
    mid-run only affects subsequent recordings. *)

val enabled : unit -> bool
(** Default: [false] until {!set_enabled} or {!install_from_env}. *)

val set_enabled : bool -> unit

val install_from_env : unit -> unit
(** Enable metrics when the [WFPRIV_OBS] environment variable is set to
    [1] (or [true]); leave the switch alone otherwise. Binaries call
    this once at startup. *)

val now_ns : unit -> int
(** Wall-clock nanoseconds ([Unix.gettimeofday] based) — span and
    latency timestamps. Monotonicity is not guaranteed; durations of
    negative length are clamped to 0 by the recorders. *)
