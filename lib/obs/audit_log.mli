(** Privilege-tagged audit trail of access decisions.

    Every gate-level decision — a structural query evaluated, a zoom
    allowed or refused, an access view materialized — appends one
    record: the operation, the requester's privilege level, the outcome,
    and a {e count} of the nodes involved. A denial records only the
    privilege {e floor} that would have been required, never the
    identity of what stayed hidden (the sanitization rule of Cheney &
    Perera, arXiv:1405.5777: metadata about sanitized provenance is
    itself provenance). The query text, when present, is the requester's
    own input echoed back.

    Records are privilege-tagged so the trail partitions like every
    other metric: {!visible_at} [p] returns only records of requests
    made at levels [<= p], whose contents depend only on views an
    observer at [p] may see.

    Storage is a bounded in-memory ring (capacity {!set_capacity},
    default 4096); overflow drops the oldest records and counts them in
    {!dropped}. Recording is mutex-serialized and dropped entirely while
    {!Config.enabled} is off. *)

type outcome = Allowed | Denied of { floor : int }

type record = {
  seq : int;  (** global sequence number, from 1 *)
  op : string;  (** e.g. ["gate.query"], ["gate.zoom_in"] *)
  level : int;  (** requester's privilege level *)
  outcome : outcome;
  nodes : int;  (** visible nodes involved in the answer *)
  query : string;  (** requester's query text; [""] when not a query *)
}

val record :
  op:string -> level:int -> ?query:string -> ?nodes:int -> outcome -> unit

val records : unit -> record list
(** Oldest first. *)

val visible_at : int -> record list
(** Records whose [level] is [<=] the argument, oldest first. *)

val dropped : unit -> int

val render : record -> string
(** One deterministic line, no timestamps:
    [#3 gate.query level=1 allowed nodes=5 q='before(atomic, atomic)'].
    Denials render as [denied floor=N]. *)

val set_capacity : int -> unit
(** Resets the ring. *)

val reset : unit -> unit
(** Clear records, the sequence counter and the drop count. *)
