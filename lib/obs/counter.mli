(** Lock-free, privilege-partitioned counters.

    A counter is a set of atomic cells: one {e operator} cell for
    infrastructure recordings (timings, scheduling, anything that spans
    privilege levels) and one cell per privilege level for recordings
    attributable to work done {e at} that level. The partitioning is the
    privacy boundary of the observability layer: an observer at level
    [p] may read only the level cells [<= p] (see
    {!Registry.observer_counters}), so the value it sees depends only on
    views it is allowed to see — hidden nodes cannot be counted through
    a metric (cf. the level-partitioned postings of {!Wfpriv_query.Index}).

    Increments are a single [Atomic.fetch_and_add] in steady state; the
    per-level cell table only takes a mutex the first time a level is
    seen. All recordings are dropped while {!Config.enabled} is off. *)

type t

val make : ?volatile:bool -> string -> t
(** [volatile] marks values that legitimately differ between runs of the
    same workload (timings, pool scheduling); renderers that promise
    deterministic output skip them. Default [false]. Use
    {!Registry.counter} rather than calling this directly. *)

val name : t -> string
val is_volatile : t -> bool

val incr_op : t -> unit
val add_op : t -> int -> unit
(** Record into the operator cell. *)

val incr : t -> at:int -> unit
val add : t -> at:int -> int -> unit
(** Record into the cell of privilege level [at]. *)

val op_value : t -> int

val value_up_to : t -> int -> int
(** Sum of the level cells [<=] the given level; operator recordings
    excluded. This is the only read an observer view performs. *)

val levels : t -> (int * int) list
(** Per-level cells, ascending level, zero cells included. *)

val total : t -> int
(** Operator cell plus every level cell. *)

val reset : t -> unit
