type metric = C of Counter.t | H of Histogram.t

let lock = Mutex.create ()
let table : (string, metric) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter ?(volatile = false) name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some (C c) when Counter.is_volatile c = volatile -> c
      | Some _ ->
          invalid_arg
            (Printf.sprintf "Registry.counter: %S already registered" name)
      | None ->
          let c = Counter.make ~volatile name in
          Hashtbl.replace table name (C c);
          c)

let histogram name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some (H h) -> h
      | Some (C _) ->
          invalid_arg
            (Printf.sprintf "Registry.histogram: %S already registered" name)
      | None ->
          let h = Histogram.make name in
          Hashtbl.replace table name (H h);
          h)

type item =
  | Counter_item of {
      name : string;
      volatile : bool;
      op : int;
      levels : (int * int) list;
    }
  | Histogram_item of {
      name : string;
      count : int;
      sum : int;
      buckets : (int * int) list;
    }

let sorted_metrics () =
  with_lock (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot () =
  List.map
    (fun (name, m) ->
      match m with
      | C c ->
          Counter_item
            {
              name;
              volatile = Counter.is_volatile c;
              op = Counter.op_value c;
              levels = Counter.levels c;
            }
      | H h ->
          Histogram_item
            {
              name;
              count = Histogram.count h;
              sum = Histogram.sum h;
              buckets = Histogram.buckets h;
            })
    (sorted_metrics ())

let observer_counters ~level =
  List.filter_map
    (fun (name, m) ->
      match m with
      | H _ -> None
      | C c ->
          if Counter.is_volatile c then None
          else if List.exists (fun (l, _) -> l <= level) (Counter.levels c)
          then Some (name, Counter.value_up_to c level)
          else None)
    (sorted_metrics ())

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let observer_counters_prefixed ~prefix ~level =
  List.filter (fun (name, _) -> starts_with ~prefix name)
    (observer_counters ~level)

let reset () =
  List.iter
    (fun (_, m) ->
      match m with C c -> Counter.reset c | H h -> Histogram.reset h)
    (sorted_metrics ())
