let flag = Atomic.make false
let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

let install_from_env () =
  match Sys.getenv_opt "WFPRIV_OBS" with
  | Some ("1" | "true" | "TRUE" | "yes") -> set_enabled true
  | _ -> ()

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
