type outcome = Allowed | Denied of { floor : int }

type record = {
  seq : int;
  op : string;
  level : int;
  outcome : outcome;
  nodes : int;
  query : string;
}

type state = {
  mutable ring : record option array;
  mutable head : int; (* total records ever appended *)
  mutable seq : int;
  mutable n_dropped : int;
}

let lock = Mutex.create ()
let state = { ring = Array.make 4096 None; head = 0; seq = 0; n_dropped = 0 }

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record ~op ~level ?(query = "") ?(nodes = 0) outcome =
  if Config.enabled () then
    with_lock (fun () ->
        let n = Array.length state.ring in
        if state.head >= n && state.ring.(state.head mod n) <> None then
          state.n_dropped <- state.n_dropped + 1;
        state.seq <- state.seq + 1;
        state.ring.(state.head mod n) <-
          Some { seq = state.seq; op; level; outcome; nodes; query };
        state.head <- state.head + 1)

let records () =
  with_lock (fun () ->
      let n = Array.length state.ring in
      let first = max 0 (state.head - n) in
      List.init (state.head - first) (fun i ->
          Option.get state.ring.((first + i) mod n)))

let visible_at level =
  List.filter (fun r -> r.level <= level) (records ())

let dropped () = with_lock (fun () -> state.n_dropped)

let render r =
  let outcome =
    match r.outcome with
    | Allowed -> "allowed"
    | Denied { floor } -> Printf.sprintf "denied floor=%d" floor
  in
  let q = if r.query = "" then "" else Printf.sprintf " q='%s'" r.query in
  Printf.sprintf "#%d %s level=%d %s nodes=%d%s" r.seq r.op r.level outcome
    r.nodes q

let set_capacity n =
  if n < 1 then invalid_arg "Audit_log.set_capacity: capacity < 1";
  with_lock (fun () ->
      state.ring <- Array.make n None;
      state.head <- 0)

let reset () =
  with_lock (fun () ->
      Array.fill state.ring 0 (Array.length state.ring) None;
      state.head <- 0;
      state.seq <- 0;
      state.n_dropped <- 0)
