(** Append-only write-ahead log of repository mutations.

    A log is a directory of segment files named [wal-<first_lsn>.log]
    (<first_lsn> = 16-digit zero-padded sequence number of the segment's
    first record). Record frame, little-endian:

    {v
    u32 length   byte length of the body (9 + |payload|)
    u32 crc32    CRC-32 (IEEE) of the body bytes
    body:
      u8  tag      record kind (Mutation_codec; unknown tags refuse to
                   decode, so the header is future-proof)
      u64 lsn      sequence number, strictly contiguous across the log
      ..  payload  tag-specific encoding
    v}

    Crash semantics: appends write whole frames, so a crash leaves at
    worst a {e prefix} of a frame at the tail of the newest segment (a
    "torn tail"), which readers tolerate when [allow_torn] is set. A
    complete frame with a bad checksum cannot come from a torn append —
    it is mid-log corruption and always raises {!Corrupt}. *)

exception Corrupt of { file : string; offset : int; reason : string }
(** Mid-log corruption: checksum mismatch, implausible frame, sequence
    gap (raised by {!Recovery}), or an undecodable record. Never raised
    for a torn tail when [allow_torn] is set. *)

type record = { lsn : int; tag : int; payload : string }

val encode : record -> string
(** The full frame (header + body) for one record. *)

val encoded_size : record -> int

val records_of_string :
  ?allow_torn:bool -> ?file:string -> string -> record list * int
(** Decode a segment image; returns the records and the count of leading
    bytes holding complete valid frames. [file] labels {!Corrupt}. *)

val read_file : ?allow_torn:bool -> string -> record list * int
val read_all : string -> string

(** {2 Segment files} *)

type segment = { first_lsn : int; path : string }

val segment_name : int -> string
val segments : string -> segment list
(** Segments of a store directory, sorted by [first_lsn]. *)

(** {2 Appending} *)

type writer

val create_segment : dir:string -> first_lsn:int -> writer
(** Create a fresh (empty) segment; raises [Invalid_argument] if the
    file already exists. *)

val open_append : string -> writer
(** Open an existing segment positioned at its end. *)

val append : writer -> record -> unit
(** Write one frame and flush it to the OS. *)

val bytes : writer -> int
(** Current size of the segment, for rotation decisions. *)

val writer_path : writer -> string
val close : writer -> unit
