(** Crash recovery: rebuild a repository from a store directory by
    loading the newest valid snapshot and replaying every subsequent WAL
    record in sequence order.

    Guarantees (tested by the torn-write fuzz in [test/test_durable.ml]
    and the live-path fuzz in [test/test_live.ml]): for any
    prefix-truncation of the log — what a crash mid-append leaves behind
    — [open_dir] succeeds and yields exactly the replay of some prefix
    of the committed mutation sequence (every record that was fully on
    disk), where a streamed batch commits atomically: its batched
    records apply only once their generation-commit record is durable,
    so recovery always lands on the last {e sealed} generation and a
    partially-journaled batch is invisible. Anything that is {e not} a
    torn tail or an uncommitted batch tail of the newest segment — a
    checksum mismatch, a sequence gap, a missing segment, an undecodable
    or inapplicable record, a batch interrupted by an unbatched record
    or spanning segments — raises {!Wal.Corrupt} rather than silently
    dropping committed history. *)

type report = {
  snapshot_lsn : int;  (** lsn of the checkpoint recovery started from *)
  last_lsn : int;
      (** lsn of the last committed record in the store (trailing
          uncommitted batch records excluded — their lsns are reused
          after truncation) *)
  replayed : int;  (** mutations replayed on top of the snapshot *)
  segments : int;  (** WAL segment files present *)
  torn_bytes : int;  (** trailing bytes of the newest segment to discard *)
  uncommitted_bytes : int;
      (** trailing bytes holding batched records whose commit never
          landed — discarded like a torn tail, immediately before it *)
  generation : int;
      (** the newest committed generation named by a commit record still
          in the log; 0 when none (a frozen or legacy store) *)
}

val open_dir : string -> Wfpriv_query.Repository.t * report
(** Read-only: tolerated torn tails are reported, not repaired (the
    {!Durable_repo} facade truncates them when opening for writing).
    Raises [Invalid_argument] if [dir] is not a directory, {!Wal.Corrupt}
    on mid-log corruption. *)
