(** Crash recovery: rebuild a repository from a store directory by
    loading the newest valid snapshot and replaying every subsequent WAL
    record in sequence order.

    Guarantees (tested by the torn-write fuzz in [test/test_durable.ml]):
    for any prefix-truncation of the log — what a crash mid-append leaves
    behind — [open_dir] succeeds and yields exactly the replay of some
    prefix of the committed mutation sequence (every record that was
    fully on disk). Anything that is {e not} a torn tail of the newest
    segment — a checksum mismatch, a sequence gap, a missing segment, an
    undecodable or inapplicable record — raises {!Wal.Corrupt} rather
    than silently dropping committed history. *)

type report = {
  snapshot_lsn : int;  (** lsn of the checkpoint recovery started from *)
  last_lsn : int;  (** lsn of the last mutation in the store *)
  replayed : int;  (** records replayed on top of the snapshot *)
  segments : int;  (** WAL segment files present *)
  torn_bytes : int;  (** trailing bytes of the newest segment to discard *)
}

val open_dir : string -> Wfpriv_query.Repository.t * report
(** Read-only: tolerated torn tails are reported, not repaired (the
    {!Durable_repo} facade truncates them when opening for writing).
    Raises [Invalid_argument] if [dir] is not a directory, {!Wal.Corrupt}
    on mid-log corruption. *)
