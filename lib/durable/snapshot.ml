(* Periodic full-repository checkpoints.

   A snapshot is the Repo_store JSON document of the whole repository,
   named [snap-<lsn>.json] where <lsn> is the sequence number of the
   last mutation it includes (0 = the empty repository). Snapshots are
   written to a unique temp file in the same directory and renamed into
   place, so a crash mid-checkpoint leaves at worst a stray *.tmp file
   and never a half-written snapshot under the real name. *)

open Wfpriv_query
module Repo_store = Wfpriv_store.Repo_store

let name lsn = Printf.sprintf "snap-%016d.json" lsn

let lsn_of_filename f =
  if
    String.length f = 26
    && String.sub f 0 5 = "snap-"
    && Filename.check_suffix f ".json"
  then
    match int_of_string_opt (String.sub f 5 16) with
    | Some lsn when lsn >= 0 -> Some lsn
    | _ -> None
  else None

let list dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map lsn_of_filename
  |> List.sort compare

let path dir lsn = Filename.concat dir (name lsn)

let write dir ~lsn repo =
  let final = path dir lsn in
  let tmp = Filename.temp_file ~temp_dir:dir "snap" ".tmp" in
  (try Repo_store.save tmp repo
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp final;
  final

let load dir ~lsn = Repo_store.load (path dir lsn)

(* Newest snapshot that parses; unreadable ones are skipped so recovery
   can fall back to an older checkpoint plus a longer replay. With no
   usable snapshot, recovery starts from the empty repository at lsn 0
   (and the sequence checks in Recovery refuse loudly if the log no
   longer reaches back that far). *)
let latest_valid dir =
  let rec try_load = function
    | [] -> (0, Repository.create ())
    | lsn :: older -> (
        match load dir ~lsn with
        | repo -> (lsn, repo)
        | exception _ -> try_load older)
  in
  try_load (List.rev (list dir))
