(* Crash recovery: rebuild a repository from a store directory.

   Procedure (see DESIGN.md "Durability"):
   1. load the newest snapshot that parses (older ones are fallbacks;
      none at all means the empty repository at lsn 0);
   2. scan WAL segments in first-lsn order, checking that record
      sequence numbers are strictly contiguous within and across
      segments and that the log reaches back to the snapshot;
   3. replay every record with lsn greater than the snapshot's onto the
      repository, in order — immediate-tagged mutations apply at once;
      batched-tagged mutations buffer until their generation-commit
      record arrives and apply then (a batch is all-or-nothing);
   4. tolerate a torn tail — an incomplete final record in the *newest*
      segment only — and an uncommitted batch tail (batched records with
      no commit yet, necessarily the trailing records of the newest
      segment), reporting how many bytes each contributes for the writer
      to truncate; any other malformation (checksum mismatch, sequence
      gap, undecodable or inapplicable record, torn frame mid-log, a
      batch interrupted by an unbatched record or spanning segments)
      raises [Wal.Corrupt]. *)

open Wfpriv_query
module Obs = Wfpriv_obs

let m_runs = Obs.Registry.counter "recovery.runs"
let m_bytes_scanned = Obs.Registry.counter "recovery.bytes_scanned"
let m_replayed = Obs.Registry.counter "recovery.replayed"

type report = {
  snapshot_lsn : int;  (** lsn of the checkpoint recovery started from *)
  last_lsn : int;  (** lsn of the last committed record in the store *)
  replayed : int;  (** mutations replayed on top of the snapshot *)
  segments : int;  (** WAL segment files present *)
  torn_bytes : int;  (** trailing bytes of the newest segment to discard *)
  uncommitted_bytes : int;
      (** bytes of a trailing batch whose commit never landed *)
  generation : int;  (** newest committed generation; 0 when none *)
}

let corrupt file offset reason = raise (Wal.Corrupt { file; offset; reason })

(* A buffered batched record, kept raw until its commit: decoding is
   contextual (an execution re-binds to its entry's spec), so a batch
   containing Add_entry then Add_execution of that entry must decode in
   order at apply time, not at read time. *)
type pending = {
  p_rec : Wal.record;
  p_path : string;
  p_offset : int;
  p_last_seg : bool;
}

let scan dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Recovery.open_dir: %s is not a directory" dir);
  let snapshot_lsn, repo = Snapshot.latest_valid dir in
  let segs = Wal.segments dir in
  let nb_segs = List.length segs in
  (match segs with
  | first :: _ when first.Wal.first_lsn > snapshot_lsn + 1 ->
      corrupt first.Wal.path 0
        (Printf.sprintf
           "log starts at lsn %d but the newest usable snapshot is %d: \
            records %d..%d are missing"
           first.Wal.first_lsn snapshot_lsn (snapshot_lsn + 1)
           (first.Wal.first_lsn - 1))
  | _ -> ());
  let next_expected = ref None in
  let replayed = ref 0 in
  let last_lsn = ref snapshot_lsn in
  let torn_bytes = ref 0 in
  let generation = ref 0 in
  let pending = ref [] in
  (* reversed *)
  List.iteri
    (fun i seg ->
      let is_last = i = nb_segs - 1 in
      (match !next_expected with
      | Some e when seg.Wal.first_lsn <> e ->
          corrupt seg.Wal.path 0
            (Printf.sprintf "segment starts at lsn %d, expected %d"
               seg.Wal.first_lsn e)
      | _ -> ());
      let data = Wal.read_all seg.Wal.path in
      Obs.Counter.add_op m_bytes_scanned (String.length data);
      let records, valid_bytes =
        Wal.records_of_string ~allow_torn:is_last ~file:seg.Wal.path data
      in
      if is_last then torn_bytes := String.length data - valid_bytes;
      let offset = ref 0 in
      List.iter
        (fun (r : Wal.record) ->
          let expected =
            match !next_expected with Some e -> e | None -> seg.Wal.first_lsn
          in
          if r.Wal.lsn <> expected then
            corrupt seg.Wal.path !offset
              (Printf.sprintf "record has lsn %d, expected %d" r.Wal.lsn
                 expected);
          (if r.Wal.tag = Mutation_codec.tag_commit then begin
             (* The epoch counter is tracked across the whole log —
                commit records below the snapshot still advance it. *)
             let g =
               try Mutation_codec.decode_commit r.Wal.payload
               with e ->
                 corrupt seg.Wal.path !offset
                   (Printf.sprintf "commit record lsn %d does not decode: %s"
                      r.Wal.lsn (Printexc.to_string e))
             in
             if g > !generation then generation := g;
             if r.Wal.lsn > snapshot_lsn then
               List.iter
                 (fun p ->
                   (try
                      let m =
                        Mutation_codec.decode repo p.p_rec.Wal.tag
                          p.p_rec.Wal.payload
                      in
                      Repository.apply repo m
                    with e ->
                      corrupt p.p_path p.p_offset
                        (Printf.sprintf "record lsn %d does not replay: %s"
                           p.p_rec.Wal.lsn (Printexc.to_string e)));
                   incr replayed)
                 (List.rev !pending);
             pending := [];
             last_lsn := r.Wal.lsn
           end
           else if Mutation_codec.is_batched r.Wal.tag then begin
             (* Buffered until its commit; invisible if none arrives.
                Records at or below the snapshot were committed (the
                writer never checkpoints mid-batch) and are already in
                the snapshot state. *)
             if r.Wal.lsn > snapshot_lsn then
               pending :=
                 {
                   p_rec = r;
                   p_path = seg.Wal.path;
                   p_offset = !offset;
                   p_last_seg = is_last;
                 }
                 :: !pending
           end
           else begin
             if !pending <> [] then
               corrupt seg.Wal.path !offset
                 (Printf.sprintf
                    "record lsn %d is unbatched inside an open batch" r.Wal.lsn);
             if r.Wal.lsn > snapshot_lsn then begin
               (try
                  let m = Mutation_codec.decode repo r.Wal.tag r.Wal.payload in
                  Repository.apply repo m
                with e ->
                  corrupt seg.Wal.path !offset
                    (Printf.sprintf "record lsn %d does not replay: %s"
                       r.Wal.lsn (Printexc.to_string e)));
               incr replayed
             end;
             last_lsn := r.Wal.lsn
           end);
          next_expected := Some (r.Wal.lsn + 1);
          offset := !offset + Wal.encoded_size r)
        records;
      (* An empty segment still pins the sequence: the next record ever
         written to it would get its first_lsn. *)
      if records = [] then
        next_expected :=
          Some
            (max seg.Wal.first_lsn
               (match !next_expected with
               | Some e -> e
               | None -> snapshot_lsn + 1)))
    segs;
  (* A trailing open batch is the mid-generation-publish crash: its
     records are dropped (they are the log's final records, so dropping
     them is a clean truncation) and reported so the writer can trim the
     file. The writer never rotates mid-batch, so they must all sit in
     the newest segment. *)
  let uncommitted = List.rev !pending in
  List.iter
    (fun p ->
      if not p.p_last_seg then
        corrupt p.p_path p.p_offset
          (Printf.sprintf
             "uncommitted batch record lsn %d outside the newest segment"
             p.p_rec.Wal.lsn))
    uncommitted;
  let uncommitted_bytes =
    List.fold_left (fun acc p -> acc + Wal.encoded_size p.p_rec) 0 uncommitted
  in
  ( repo,
    {
      snapshot_lsn;
      last_lsn = !last_lsn;
      replayed = !replayed;
      segments = nb_segs;
      torn_bytes = !torn_bytes;
      uncommitted_bytes;
      generation = !generation;
    } )

let open_dir dir =
  Obs.Trace.with_span "recovery.open_dir" (fun () ->
      let ((_, report) as result) = scan dir in
      Obs.Counter.incr_op m_runs;
      Obs.Counter.add_op m_replayed report.replayed;
      result)
