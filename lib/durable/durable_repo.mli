(** Facade over a durable directory store: a live
    {!Wfpriv_query.Repository.t} whose every mutation is journaled to
    the write-ahead log before being applied in memory. Contrast with
    {!Wfpriv_store.Repo_store}, which rewrites the whole repository file
    per change: appends here cost O(mutation), not O(store). *)

type t

val default_segment_bytes : int

val init : ?segment_bytes:int -> string -> t
(** Create a fresh store: the directory (made if missing, which must not
    already hold one), an empty snapshot at lsn 0, an empty first
    segment. Raises [Invalid_argument] if a store is already present. *)

val open_dir : ?segment_bytes:int -> string -> t
(** Recover an existing store and open it for appending. A torn tail in
    the newest segment is truncated (atomic rewrite) before the segment
    is reopened. Raises as {!Recovery.open_dir}. *)

val repo : t -> Wfpriv_query.Repository.t
(** The live repository. Mutate it only through {!append}, or the next
    recovery will not see the change. *)

val append : t -> Wfpriv_query.Repository.mutation -> int
(** Validate, journal (flushed), then apply; returns the record's lsn.
    Rotates to a fresh segment when the active one exceeds the
    threshold. Raises as {!Wfpriv_query.Repository.apply}, in which case
    nothing was journaled. *)

val checkpoint : t -> int
(** Write a snapshot at the current lsn and rotate the active segment,
    so {!compact} can drop everything older; returns the snapshot lsn. *)

val compact : t -> int
(** Delete segments whose records are all covered by the newest
    checkpoint; returns how many were deleted. *)

val prune_snapshots : t -> int
(** Delete all but the newest snapshot; returns how many were deleted. *)

val last_lsn : t -> int
val snapshot_lsn : t -> int
val recovery_report : t -> Recovery.report
val dir : t -> string
val close : t -> unit

(** {2 Read-only status} *)

type status = {
  st_segments : int;
  st_snapshot_lsn : int;
  st_replayed : int;
  st_last_lsn : int;
  st_entries : int;
  st_torn_bytes : int;
}

val status : string -> status
(** Via a full recovery pass, so [st_replayed] is the real replay count
    a reader would perform. *)
