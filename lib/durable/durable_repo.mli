(** Facade over a durable directory store: a live
    {!Wfpriv_query.Repository.t} whose every mutation is journaled to
    the write-ahead log before being applied in memory. Contrast with
    {!Wfpriv_store.Repo_store}, which rewrites the whole repository file
    per change: appends here cost O(mutation), not O(store). *)

type t

val default_segment_bytes : int

val init : ?segment_bytes:int -> string -> t
(** Create a fresh store: the directory (made if missing, which must not
    already hold one), an empty snapshot at lsn 0, an empty first
    segment. Raises [Invalid_argument] if a store is already present. *)

val open_dir : ?segment_bytes:int -> string -> t
(** Recover an existing store and open it for appending. A torn tail in
    the newest segment is truncated (atomic rewrite) before the segment
    is reopened. Raises as {!Recovery.open_dir}. *)

val repo : t -> Wfpriv_query.Repository.t
(** The live repository. Mutate it only through {!append}, or the next
    recovery will not see the change. *)

val append : t -> Wfpriv_query.Repository.mutation -> int
(** Validate, journal (flushed), then apply; returns the record's lsn.
    Rotates to a fresh segment when the active one exceeds the
    threshold. Raises as {!Wfpriv_query.Repository.apply}, in which case
    nothing was journaled. *)

val append_streaming : t -> Wfpriv_query.Repository.mutation list -> int
(** Streaming ingestion: journal the whole batch as batched records
    closed by one generation-commit record, then apply, publishing a new
    epoch; returns the generation id (monotonic from 1). The batch is
    atomic — recovery applies it only once the commit record is durable,
    so a crash mid-batch leaves the store on the previous generation
    with no partial state visible. Validation runs against a scratch
    snapshot first (later mutations may depend on earlier ones in the
    same batch); a doomed batch raises as
    {!Wfpriv_query.Repository.apply} with nothing journaled. Raises
    [Invalid_argument] on an empty batch. *)

val generation : t -> int
(** Newest committed epoch; 0 for a store that never streamed (the
    frozen-repo degenerate case). *)

val checkpoint : t -> int
(** Write a snapshot at the current lsn and rotate the active segment,
    so {!compact} can drop everything older; returns the snapshot lsn.
    When a generation has been published, a commit record re-asserting
    it is appended to the fresh segment (advancing [last_lsn] by one) so
    compaction cannot regress the epoch counter. *)

val compact : t -> int
(** Delete segments whose records are all covered by the newest
    checkpoint; returns how many were deleted. *)

val prune_snapshots : t -> int
(** Delete all but the newest snapshot; returns how many were deleted. *)

type erase_report = {
  er_generation : int;  (** epoch the erase committed as *)
  er_dropped_segments : int;
  er_pruned_snapshots : int;
}

val erase : t -> Wfpriv_query.Repository.mutation -> erase_report
(** Durable erasure: commit the {!Wfpriv_query.Repository.Erase}
    mutation as its own streamed batch, then rewrite history —
    {!checkpoint} (the fresh snapshot holds only the redacted state),
    {!compact} (every pre-erase segment, including the one carrying the
    original payload bytes and the erase record itself, is dropped) and
    {!prune_snapshots}. After it returns, the erased bytes are absent
    from every on-disk artifact; a subsequent recovery replays nothing
    that ever contained them. Raises [Invalid_argument] on a non-erase
    mutation, and as {!append_streaming} (unknown entry) with nothing
    journaled. *)

val last_lsn : t -> int
val snapshot_lsn : t -> int
val recovery_report : t -> Recovery.report
val dir : t -> string
val close : t -> unit

(** {2 Read-only status} *)

type status = {
  st_segments : int;
  st_snapshot_lsn : int;
  st_replayed : int;
  st_last_lsn : int;
  st_entries : int;
  st_torn_bytes : int;
  st_generation : int;  (** newest committed epoch; 0 when none *)
  st_index_segments : int;
      (** sealed LSM posting segments a live process at this position
          would carry (derived deterministically, default thresholds) *)
  st_memtable : int;  (** entries in the unsealed memtable, ditto *)
  st_pending_merges : int;  (** merge steps the maintainer still owes *)
}

val status : string -> status
(** Via a full recovery pass, so [st_replayed] is the real replay count
    a reader would perform. *)
