(** Periodic full-repository checkpoints: the {!Wfpriv_store.Repo_store}
    JSON document of the whole repository, named [snap-<lsn>.json] where
    <lsn> is the last mutation included (0 = empty). Written via temp
    file + atomic rename, so a half-written snapshot never appears under
    the real name. *)

val name : int -> string
val path : string -> int -> string
val list : string -> int list
(** Snapshot lsns present in a store directory, ascending. *)

val write : string -> lsn:int -> Wfpriv_query.Repository.t -> string
(** Atomically write a checkpoint; returns its path. *)

val load : string -> lsn:int -> Wfpriv_query.Repository.t

val latest_valid : string -> int * Wfpriv_query.Repository.t
(** Newest snapshot that parses, skipping unreadable ones; [(0, empty)]
    when none is usable. *)
