(** A live, queryable repository over a {!Durable_repo} store — the
    streaming-ingestion facade the server mounts.

    Epoch/snapshot isolation: one writer drives {!append_streaming}
    (journal a batch, commit it, publish a new {!generation}) and
    {!maintain} (one LSM merge step); readers {!pin} the current
    generation and query its frozen repository and index view, both of
    which stay valid and byte-for-byte unchanged whatever the writer
    does next. Readers never block the writer; the writer never
    invalidates a reader. A store that never streams stays on generation
    0 — the frozen-repo degenerate case, byte-compatible on disk. *)

type generation = {
  gen_id : int;  (** monotonic epoch id; 0 before any streamed batch *)
  gen_lsn : int;  (** last lsn covered by this epoch *)
  gen_repo : Wfpriv_query.Repository.t;
      (** immutable snapshot of the repository at this epoch *)
  gen_view : Wfpriv_query.Live_index.view;
      (** immutable LSM index view over exactly [gen_repo]'s entries *)
}

type t

val of_store : ?pool:Wfpriv_parallel.Pool.t -> Durable_repo.t -> t
(** Mount an open store: rebuild the LSM by streaming the recovered
    entries through the live add path (so the segment shape matches a
    process that reached the same stream position, and the offline
    {!Durable_repo.status} report) and publish the recovered generation. *)

val pin : t -> generation
(** The current generation. O(1); the returned record is immutable and
    remains queryable forever. *)

val append_streaming :
  ?pool:Wfpriv_parallel.Pool.t ->
  t ->
  Wfpriv_query.Repository.mutation list ->
  generation
(** Durably commit one batch ({!Durable_repo.append_streaming}) and
    publish the new epoch; entry additions extend the LSM memtable,
    executions carry no index content. Raises as the underlying append,
    in which case nothing — store or index — changed. *)

val maintain : ?pool:Wfpriv_parallel.Pool.t -> t -> bool
(** One background merge step; [true] if a merge ran. Reshapes segments
    only — the published view is refreshed in place, same epoch,
    content-identical answers; nothing durable is written, so a crash
    mid-merge loses nothing. *)

val store : t -> Durable_repo.t
val generation : t -> int

val index_segments : t -> int
val memtable_size : t -> int
val pending_merges : t -> int

val close : t -> unit
