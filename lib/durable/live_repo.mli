(** A live, queryable repository over a {!Durable_repo} store — the
    streaming-ingestion facade the server mounts.

    Epoch/snapshot isolation: one writer drives {!append_streaming}
    (journal a batch, commit it, publish a new {!generation}) and
    {!maintain} (one LSM merge step); readers {!pin} the current
    generation and query its frozen repository and index view, both of
    which stay valid and byte-for-byte unchanged whatever the writer
    does next. Readers never block the writer; the writer never
    invalidates a reader. A store that never streams stays on generation
    0 — the frozen-repo degenerate case, byte-compatible on disk. *)

type generation = {
  gen_id : int;  (** monotonic epoch id; 0 before any streamed batch *)
  gen_lsn : int;  (** last lsn covered by this epoch *)
  gen_repo : Wfpriv_query.Repository.t;
      (** immutable snapshot of the repository at this epoch *)
  gen_view : Wfpriv_query.Live_index.view;
      (** immutable LSM index view over exactly [gen_repo]'s entries *)
}

type t

val of_store : ?pool:Wfpriv_parallel.Pool.t -> Durable_repo.t -> t
(** Mount an open store: rebuild the LSM by streaming the recovered
    entries through the live add path (so the segment shape matches a
    process that reached the same stream position, and the offline
    {!Durable_repo.status} report) and publish the recovered generation. *)

val pin : t -> generation
(** The current generation. O(1); the returned record is immutable and
    remains queryable forever. *)

val append_streaming :
  ?pool:Wfpriv_parallel.Pool.t ->
  t ->
  Wfpriv_query.Repository.mutation list ->
  generation
(** Durably commit one batch ({!Durable_repo.append_streaming}) and
    publish the new epoch; entry additions extend the LSM memtable,
    executions carry no index content. Raises as the underlying append,
    in which case nothing — store or index — changed. Erase mutations
    must go through {!erase} (they rewrite history, not just append) and
    raise [Invalid_argument] here. *)

val erase :
  ?pool:Wfpriv_parallel.Pool.t ->
  t ->
  Wfpriv_query.Repository.mutation ->
  Durable_repo.erase_report
(** Durable erasure under live readers: run the full
    {!Durable_repo.erase} rewrite (commit + checkpoint + compact +
    prune), rewrite the LSM posting segment that held a removed entry
    (data redactions never touch the index — values are not indexed),
    and publish the new epoch. Corpus-scoped result caches key on the
    published generation, so post-erasure requests can never hit
    pre-erasure answers; entry-scoped answers are structure-only
    (witness node sets, view prefixes — never data values), so a
    redaction cannot change them and a removed entry's cached answers
    become unreachable behind the failing entry lookup. Readers pinned
    on older generations keep their frozen view until they re-pin.
    Raises as {!Durable_repo.erase} with nothing changed. *)

val maintain : ?pool:Wfpriv_parallel.Pool.t -> t -> bool
(** One background merge step; [true] if a merge ran. Reshapes segments
    only — the published view is refreshed in place, same epoch,
    content-identical answers; nothing durable is written, so a crash
    mid-merge loses nothing. *)

val store : t -> Durable_repo.t
val generation : t -> int

val index_segments : t -> int
val memtable_size : t -> int
val pending_merges : t -> int

val close : t -> unit
