(* Binary payloads for journaled repository mutations.

   Each WAL record carries a tag identifying the mutation kind and a
   compact payload built from length-prefixed fields (Binary). Specs are
   *not* stored per execution: as in Repo_store, an execution is encoded
   with its "spec" field stripped and is re-bound on decode to the spec
   of its entry's policy — the policy is the single source of truth for
   the spec, and payloads stay an order of magnitude smaller.

   Decoding is therefore contextual: [decode repo tag payload] needs the
   repository state *as of that log position* to resolve the entry a new
   execution attaches to. Recovery replays records in order, so the
   context is always available. *)

open Wfpriv_query
open Wfpriv_serial
module Repo_store = Wfpriv_store.Repo_store

let tag_add_entry = 1
let tag_add_execution = 2

let exec_to_json exec =
  Json.to_string (Repo_store.strip_spec (Exec_codec.encode exec))

let exec_of_json spec s = Exec_codec.decode_with_spec spec (Json.parse s)

let encode mutation =
  let w = Binary.Writer.create () in
  match mutation with
  | Repository.Add_entry { entry_name; policy; executions } ->
      Binary.Writer.str w entry_name;
      Binary.Writer.str w (Policy_codec.to_string policy);
      Binary.Writer.varint w (List.length executions);
      List.iter (fun exec -> Binary.Writer.str w (exec_to_json exec)) executions;
      (tag_add_entry, Binary.Writer.contents w)
  | Repository.Add_execution { entry_name; exec } ->
      Binary.Writer.str w entry_name;
      Binary.Writer.str w (exec_to_json exec);
      (tag_add_execution, Binary.Writer.contents w)

let decode repo tag payload =
  let r = Binary.Reader.of_string payload in
  let mutation =
    if tag = tag_add_entry then begin
      let entry_name = Binary.Reader.str r in
      let policy = Policy_codec.of_string (Binary.Reader.str r) in
      let spec = Wfpriv_privacy.Policy.spec policy in
      let n = Binary.Reader.varint r in
      let executions =
        List.init n (fun _ -> exec_of_json spec (Binary.Reader.str r))
      in
      Repository.Add_entry { entry_name; policy; executions }
    end
    else if tag = tag_add_execution then begin
      let entry_name = Binary.Reader.str r in
      let spec =
        match Repository.find repo entry_name with
        | e -> e.Repository.spec
        | exception Not_found ->
            invalid_arg
              (Printf.sprintf
                 "Mutation_codec: Add_execution for unknown entry %S" entry_name)
      in
      let exec = exec_of_json spec (Binary.Reader.str r) in
      Repository.Add_execution { entry_name; exec }
    end
    else invalid_arg (Printf.sprintf "Mutation_codec: unknown record tag %d" tag)
  in
  if not (Binary.Reader.at_end r) then
    invalid_arg "Mutation_codec: trailing bytes in payload";
  mutation
