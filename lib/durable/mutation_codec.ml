(* Binary payloads for journaled repository mutations.

   Each WAL record carries a tag identifying the mutation kind and a
   compact payload built from length-prefixed fields (Binary). Specs are
   *not* stored per execution: as in Repo_store, an execution is encoded
   with its "spec" field stripped and is re-bound on decode to the spec
   of its entry's policy — the policy is the single source of truth for
   the spec, and payloads stay an order of magnitude smaller.

   Decoding is therefore contextual: [decode repo tag payload] needs the
   repository state *as of that log position* to resolve the entry a new
   execution attaches to. Recovery replays records in order, so the
   context is always available. *)

open Wfpriv_query
open Wfpriv_serial
module Repo_store = Wfpriv_store.Repo_store

let tag_add_entry = 1
let tag_add_execution = 2

(* The streaming append path journals a batch as batched-tagged mutation
   records followed by one commit record naming the published
   generation; recovery buffers batched records and applies them only
   when their commit arrives, so a torn batch is invisible. The payload
   bytes of a batched record are identical to the immediate-tag ones —
   only the tag differs. *)
let tag_commit = 3
let tag_add_entry_batched = 5
let tag_add_execution_batched = 6

(* Erasure records carry only the entry name and the optional data name
   — never the bytes being erased. The record itself is transient: the
   erasure protocol checkpoints and compacts right after committing, so
   both the erased payload and the erase record leave the log. *)
let tag_erase = 7
let tag_erase_batched = 8

let is_batched tag =
  tag = tag_add_entry_batched || tag = tag_add_execution_batched
  || tag = tag_erase_batched

let exec_to_json exec =
  Json.to_string (Repo_store.strip_spec (Exec_codec.encode exec))

let exec_of_json spec s = Exec_codec.decode_with_spec spec (Json.parse s)

let encode ?(batched = false) mutation =
  let w = Binary.Writer.create () in
  match mutation with
  | Repository.Add_entry { entry_name; policy; executions } ->
      Binary.Writer.str w entry_name;
      Binary.Writer.str w (Policy_codec.to_string policy);
      Binary.Writer.varint w (List.length executions);
      List.iter (fun exec -> Binary.Writer.str w (exec_to_json exec)) executions;
      ( (if batched then tag_add_entry_batched else tag_add_entry),
        Binary.Writer.contents w )
  | Repository.Add_execution { entry_name; exec } ->
      Binary.Writer.str w entry_name;
      Binary.Writer.str w (exec_to_json exec);
      ( (if batched then tag_add_execution_batched else tag_add_execution),
        Binary.Writer.contents w )
  | Repository.Erase { entry_name; data_name } ->
      Binary.Writer.str w entry_name;
      (match data_name with
      | None -> Binary.Writer.u8 w 0
      | Some n ->
          Binary.Writer.u8 w 1;
          Binary.Writer.str w n);
      ((if batched then tag_erase_batched else tag_erase), Binary.Writer.contents w)

let encode_commit ~generation =
  if generation < 1 then invalid_arg "Mutation_codec: generation < 1";
  let w = Binary.Writer.create () in
  Binary.Writer.varint w generation;
  (tag_commit, Binary.Writer.contents w)

let decode_commit payload =
  let r = Binary.Reader.of_string payload in
  let generation = Binary.Reader.varint r in
  if not (Binary.Reader.at_end r) then
    invalid_arg "Mutation_codec: trailing bytes in commit payload";
  generation

let decode repo tag payload =
  let r = Binary.Reader.of_string payload in
  (* A batched record decodes exactly like its immediate twin. *)
  let tag =
    if tag = tag_add_entry_batched then tag_add_entry
    else if tag = tag_add_execution_batched then tag_add_execution
    else if tag = tag_erase_batched then tag_erase
    else tag
  in
  let mutation =
    if tag = tag_add_entry then begin
      let entry_name = Binary.Reader.str r in
      let policy = Policy_codec.of_string (Binary.Reader.str r) in
      let spec = Wfpriv_privacy.Policy.spec policy in
      let n = Binary.Reader.varint r in
      let executions =
        List.init n (fun _ -> exec_of_json spec (Binary.Reader.str r))
      in
      Repository.Add_entry { entry_name; policy; executions }
    end
    else if tag = tag_add_execution then begin
      let entry_name = Binary.Reader.str r in
      let spec =
        match Repository.find repo entry_name with
        | e -> e.Repository.spec
        | exception Not_found ->
            invalid_arg
              (Printf.sprintf
                 "Mutation_codec: Add_execution for unknown entry %S" entry_name)
      in
      let exec = exec_of_json spec (Binary.Reader.str r) in
      Repository.Add_execution { entry_name; exec }
    end
    else if tag = tag_erase then begin
      let entry_name = Binary.Reader.str r in
      let data_name =
        match Binary.Reader.u8 r with
        | 0 -> None
        | 1 -> Some (Binary.Reader.str r)
        | t ->
            invalid_arg (Printf.sprintf "Mutation_codec: bad erase scope tag %d" t)
      in
      Repository.Erase { entry_name; data_name }
    end
    else invalid_arg (Printf.sprintf "Mutation_codec: unknown record tag %d" tag)
  in
  if not (Binary.Reader.at_end r) then
    invalid_arg "Mutation_codec: trailing bytes in payload";
  mutation
