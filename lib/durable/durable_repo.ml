(* Facade over a directory store: a live Repository.t whose every
   mutation is journaled to the WAL before being applied in memory.

   Lifecycle: [init] creates a fresh store (empty snapshot at lsn 0 plus
   an empty first segment); [open_dir] recovers an existing one —
   repairing a torn tail by rewriting the newest segment's valid prefix
   in place (temp file + rename) — and opens it for appending;
   [checkpoint] writes a snapshot at the current lsn and rotates to a
   fresh segment; [compact] deletes segments every record of which is
   covered by the newest checkpoint. *)

open Wfpriv_query
module Obs = Wfpriv_obs

type t = {
  dir : string;
  segment_bytes : int;  (** rotate the active segment beyond this size *)
  repo : Repository.t;
  mutable last_lsn : int;
  mutable snapshot_lsn : int;
  mutable generation : int;  (** newest committed epoch; 0 when none *)
  mutable writer : Wal.writer;
  report : Recovery.report;  (** what recovery saw when opening *)
}

let default_segment_bytes = 4 * 1024 * 1024

let repo t = t.repo
let last_lsn t = t.last_lsn
let snapshot_lsn t = t.snapshot_lsn
let generation t = t.generation
let recovery_report t = t.report
let dir t = t.dir

let store_files dir =
  Wal.segments dir <> [] || Snapshot.list dir <> []

let init ?(segment_bytes = default_segment_bytes) dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      invalid_arg (Printf.sprintf "Durable_repo.init: %s is not a directory" dir);
    if store_files dir then
      invalid_arg
        (Printf.sprintf "Durable_repo.init: %s already holds a store" dir)
  end
  else Sys.mkdir dir 0o755;
  let repo = Repository.create () in
  ignore (Snapshot.write dir ~lsn:0 repo);
  let writer = Wal.create_segment ~dir ~first_lsn:1 in
  {
    dir;
    segment_bytes;
    repo;
    last_lsn = 0;
    snapshot_lsn = 0;
    generation = 0;
    writer;
    report =
      {
        Recovery.snapshot_lsn = 0;
        last_lsn = 0;
        replayed = 0;
        segments = 1;
        torn_bytes = 0;
        uncommitted_bytes = 0;
        generation = 0;
      };
  }

(* Drop the last [torn_bytes] bytes of [path], atomically. *)
let truncate_file path ~torn_bytes =
  let data = Wal.read_all path in
  let keep = String.length data - torn_bytes in
  let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) "wal" ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (String.sub data 0 keep));
  Sys.rename tmp path

let open_dir ?(segment_bytes = default_segment_bytes) dir =
  let repo, report = Recovery.open_dir dir in
  let segs = Wal.segments dir in
  let writer =
    match List.rev segs with
    | [] -> Wal.create_segment ~dir ~first_lsn:(report.Recovery.last_lsn + 1)
    | last :: _ ->
        (* An uncommitted batch tail is discarded exactly like a torn
           tail — it sits immediately before it at the end of the newest
           segment, and its lsns are reused by the next append. *)
        let drop =
          report.Recovery.torn_bytes + report.Recovery.uncommitted_bytes
        in
        if drop > 0 then truncate_file last.Wal.path ~torn_bytes:drop;
        Wal.open_append last.Wal.path
  in
  {
    dir;
    segment_bytes;
    repo;
    last_lsn = report.Recovery.last_lsn;
    snapshot_lsn = report.Recovery.snapshot_lsn;
    generation = report.Recovery.generation;
    writer;
    report;
  }

let rotate t =
  (* An empty active segment already starts at the next lsn. *)
  if Wal.bytes t.writer > 0 then begin
    Wal.close t.writer;
    t.writer <- Wal.create_segment ~dir:t.dir ~first_lsn:(t.last_lsn + 1)
  end

let append t mutation =
  (* Refuse doomed mutations *before* journaling: a record that reached
     the log must always replay. *)
  Repository.validate t.repo mutation;
  let tag, payload = Mutation_codec.encode mutation in
  let lsn = t.last_lsn + 1 in
  Wal.append t.writer { Wal.lsn; tag; payload };
  Repository.apply t.repo mutation;
  t.last_lsn <- lsn;
  if Wal.bytes t.writer >= t.segment_bytes then rotate t;
  lsn

let append_streaming t mutations =
  if mutations = [] then
    invalid_arg "Durable_repo.append_streaming: empty batch";
  (* Pre-validate the whole batch against a scratch snapshot (later
     mutations may depend on earlier ones, e.g. an execution of an entry
     added in the same batch), so a doomed batch leaves both the log and
     the repository untouched. *)
  let scratch = Repository.freeze t.repo in
  List.iter
    (fun m ->
      Repository.validate scratch m;
      Repository.apply scratch m)
    mutations;
  (* Journal the batch as batched records plus one commit, then apply.
     No rotation mid-batch: recovery relies on an uncommitted tail being
     a suffix of the newest segment. *)
  List.iter
    (fun m ->
      let tag, payload = Mutation_codec.encode ~batched:true m in
      let lsn = t.last_lsn + 1 in
      Wal.append t.writer { Wal.lsn; tag; payload };
      t.last_lsn <- lsn)
    mutations;
  let generation = t.generation + 1 in
  let tag, payload = Mutation_codec.encode_commit ~generation in
  let lsn = t.last_lsn + 1 in
  Wal.append t.writer { Wal.lsn; tag; payload };
  t.last_lsn <- lsn;
  List.iter (Repository.apply t.repo) mutations;
  t.generation <- generation;
  if Wal.bytes t.writer >= t.segment_bytes then rotate t;
  generation

let checkpoint t =
  ignore (Snapshot.write t.dir ~lsn:t.last_lsn t.repo);
  t.snapshot_lsn <- t.last_lsn;
  rotate t;
  let lsn = t.last_lsn in
  (* Snapshots do not record the epoch counter; when one exists,
     re-assert it as a fresh commit record in the post-rotate segment so
     compaction (which may drop every older commit) cannot regress the
     generation on the next recovery. Legacy generation-0 stores write
     nothing, keeping their log byte-compatible. *)
  if t.generation > 0 then begin
    let tag, payload = Mutation_codec.encode_commit ~generation:t.generation in
    let commit_lsn = t.last_lsn + 1 in
    Wal.append t.writer { Wal.lsn = commit_lsn; tag; payload };
    t.last_lsn <- commit_lsn
  end;
  lsn

(* Drop every segment whose records all have lsn <= the newest
   checkpoint. A segment's last lsn is the next segment's first minus
   one; the active (newest) segment is always kept. *)
let compact t =
  let rec drop = function
    | seg :: (next :: _ as rest) when next.Wal.first_lsn <= t.snapshot_lsn + 1 ->
        Sys.remove seg.Wal.path;
        1 + drop rest
    | _ -> 0
  in
  drop (Wal.segments t.dir)

(* Also prune snapshots older than the newest valid one. *)
let prune_snapshots t =
  match List.rev (Snapshot.list t.dir) with
  | [] | [ _ ] -> 0
  | _newest :: older ->
      List.iter (fun lsn -> Sys.remove (Snapshot.path t.dir lsn)) older;
      List.length older

let m_erasures = Obs.Registry.counter "repo.erasures"

type erase_report = {
  er_generation : int;
  er_dropped_segments : int;
  er_pruned_snapshots : int;
}

(* Durable erasure: commit the erase like any streamed batch, then
   rewrite history so the erased bytes leave the disk entirely —
   checkpoint (the new snapshot holds only the redacted state and the
   rotate closes the segment carrying both the original payload and the
   erase record), compact (drop every covered segment), and prune the
   older snapshots. What remains on disk afterwards: one snapshot of the
   redacted repository and an active segment holding one generation
   commit. Pinned in-memory readers keep their frozen pre-erasure
   generation until they re-pin — durability of the erasure is a disk
   property, visibility follows the epoch bump. *)
let erase t mutation =
  (match mutation with
  | Repository.Erase _ -> ()
  | Repository.Add_entry _ | Repository.Add_execution _ ->
      invalid_arg "Durable_repo.erase: not an erase mutation");
  let er_generation = append_streaming t [ mutation ] in
  ignore (checkpoint t);
  let er_dropped_segments = compact t in
  let er_pruned_snapshots = prune_snapshots t in
  Obs.Counter.incr_op m_erasures;
  { er_generation; er_dropped_segments; er_pruned_snapshots }

let close t = Wal.close t.writer

(* ------------------------------------------------------------------ *)
(* Read-only status, via a full recovery pass (so the replayed-record
   count reported is the real one). *)

type status = {
  st_segments : int;
  st_snapshot_lsn : int;
  st_replayed : int;
  st_last_lsn : int;
  st_entries : int;
  st_torn_bytes : int;
  st_generation : int;
  st_index_segments : int;
  st_memtable : int;
  st_pending_merges : int;
}

let status dir =
  let repo, (report : Recovery.report) = Recovery.open_dir dir in
  (* The LSM shape a live process at this stream position would carry
     (segments are derived, in-memory state — rebuilt from the recovered
     entries with the default thresholds, deterministically). *)
  let lsm = Live_index.of_entries (Repository.index_entries repo) in
  {
    st_segments = report.Recovery.segments;
    st_snapshot_lsn = report.Recovery.snapshot_lsn;
    st_replayed = report.Recovery.replayed;
    st_last_lsn = report.Recovery.last_lsn;
    st_entries = Repository.nb_entries repo;
    st_torn_bytes = report.Recovery.torn_bytes;
    st_generation = report.Recovery.generation;
    st_index_segments = Live_index.segments lsm;
    st_memtable = Live_index.memtable_size lsm;
    st_pending_merges = Live_index.pending_merges lsm;
  }
