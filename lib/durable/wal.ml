(* Append-only write-ahead log of repository mutations.

   A log is a directory of segment files named [wal-<first_lsn>.log],
   where <first_lsn> is the 16-digit zero-padded log sequence number of
   the segment's first record. Within a segment, records are laid out
   back to back:

     u32 LE   length   -- byte length of the body (9 + |payload|)
     u32 LE   crc32    -- CRC-32 (IEEE) of the body bytes
     body:
       u8     tag      -- record kind (see Mutation_codec); unknown tags
                          are a decode error, so the header is
                          future-proof against new mutation kinds
       u64 LE lsn      -- sequence number, strictly contiguous
       bytes  payload  -- tag-specific encoding

   Crash semantics: appends write the full frame and flush, so a crash
   can only leave a *prefix* of a record at the tail of the newest
   segment (a torn tail). Readers therefore treat an incomplete frame at
   end-of-input as torn when [allow_torn] is set, and report how many
   bytes were valid so the caller can truncate. A frame that is fully
   present but fails its checksum cannot result from a torn append-only
   write — it is bit rot or tampering — and always raises [Corrupt]. *)

open Wfpriv_serial
module Obs = Wfpriv_obs

(* Durability metrics are operator-scope: the log serves the whole
   repository, below any privilege boundary. One flush per append is the
   write-path durability barrier, so [wal.fsyncs] counts exactly the
   flushes issued. *)
let m_appends = Obs.Registry.counter "wal.appends"
let m_fsyncs = Obs.Registry.counter "wal.fsyncs"
let m_bytes = Obs.Registry.counter "wal.bytes"
let h_append_ns = Obs.Registry.histogram "wal.append_ns"

exception Corrupt of { file : string; offset : int; reason : string }
(** Mid-log corruption: a complete record whose checksum fails, an
    implausible frame, or (via Recovery) a sequence gap. Distinct from a
    torn tail, which is tolerated. *)

let () =
  Printexc.register_printer (function
    | Corrupt { file; offset; reason } ->
        Some
          (Printf.sprintf "Wal.Corrupt(%s at byte %d: %s)" file offset reason)
    | _ -> None)

type record = { lsn : int; tag : int; payload : string }

let header_bytes = 8
let body_overhead = 9 (* tag + lsn *)

(* Upper bound on a single frame; anything larger is treated as a
   corrupt length field rather than an allocation request. *)
let max_record_bytes = 1 lsl 30

let encode { lsn; tag; payload } =
  let body = Binary.Writer.create ~capacity:(body_overhead + String.length payload) () in
  Binary.Writer.u8 body tag;
  Binary.Writer.u64 body lsn;
  Binary.Writer.raw body payload;
  let body = Binary.Writer.contents body in
  let w = Binary.Writer.create ~capacity:(header_bytes + String.length body) () in
  Binary.Writer.u32 w (String.length body);
  Binary.Writer.u32 w (Crc32.digest body);
  Binary.Writer.raw w body;
  Binary.Writer.contents w

let encoded_size r = header_bytes + body_overhead + String.length r.payload

(* Decode a whole segment image. Returns the records and the number of
   leading bytes that held complete, valid frames. With [allow_torn], an
   incomplete frame at end-of-input terminates the scan cleanly;
   otherwise it raises [Corrupt]. *)
let records_of_string ?(allow_torn = false) ?(file = "<string>") data =
  let n = String.length data in
  let corrupt offset reason = raise (Corrupt { file; offset; reason }) in
  let torn offset reason acc =
    if allow_torn then (List.rev acc, offset) else corrupt offset reason
  in
  let rec go pos acc =
    if pos = n then (List.rev acc, pos)
    else if n - pos < header_bytes then torn pos "truncated record header" acc
    else begin
      let r = Binary.Reader.of_string ~pos data in
      let len = Binary.Reader.u32 r in
      let crc = Binary.Reader.u32 r in
      if len < body_overhead || len > max_record_bytes then
        corrupt pos (Printf.sprintf "implausible record length %d" len)
      else if n - pos - header_bytes < len then
        torn pos "truncated record body" acc
      else begin
        let actual = Crc32.digest ~pos:(pos + header_bytes) ~len data in
        if actual <> crc then
          corrupt pos
            (Printf.sprintf "checksum mismatch (stored %08x, computed %08x)"
               crc actual);
        let tag = Binary.Reader.u8 r in
        let lsn = Binary.Reader.u64 r in
        let payload = Binary.Reader.raw r (len - body_overhead) in
        go (pos + header_bytes + len) ({ lsn; tag; payload } :: acc)
      end
    end
  in
  go 0 []

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_file ?allow_torn path =
  records_of_string ?allow_torn ~file:path (read_all path)

(* ------------------------------------------------------------------ *)
(* Segment files *)

type segment = { first_lsn : int; path : string }

let segment_name first_lsn = Printf.sprintf "wal-%016d.log" first_lsn

let segment_of_filename dir f =
  if
    String.length f = 24
    && String.sub f 0 4 = "wal-"
    && Filename.check_suffix f ".log"
  then
    match int_of_string_opt (String.sub f 4 16) with
    | Some first_lsn when first_lsn >= 0 ->
        Some { first_lsn; path = Filename.concat dir f }
    | _ -> None
  else None

let segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (segment_of_filename dir)
  |> List.sort (fun a b -> compare a.first_lsn b.first_lsn)

(* ------------------------------------------------------------------ *)
(* Writer *)

type writer = { w_path : string; oc : out_channel; mutable w_bytes : int }

let create_segment ~dir ~first_lsn =
  let w_path = Filename.concat dir (segment_name first_lsn) in
  if Sys.file_exists w_path then
    invalid_arg (Printf.sprintf "Wal.create_segment: %s exists" w_path);
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 w_path
  in
  { w_path; oc; w_bytes = 0 }

let open_append path =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path
  in
  { w_path = path; oc; w_bytes = out_channel_length oc }

let append w record =
  let frame = encode record in
  Obs.Histogram.time h_append_ns (fun () ->
      output_string w.oc frame;
      flush w.oc);
  Obs.Counter.incr_op m_appends;
  Obs.Counter.incr_op m_fsyncs;
  Obs.Counter.add_op m_bytes (String.length frame);
  w.w_bytes <- w.w_bytes + String.length frame

let bytes w = w.w_bytes
let writer_path w = w.w_path
let close w = close_out w.oc
