(* A live, queryable repository over a durable store: the streaming
   ingestion facade the server mounts.

   One writer drives [append_streaming] and [maintain]; any number of
   readers hold a pinned {!generation} — an immutable record of the
   epoch id, the frozen repository state, and the LSM index view as of
   that epoch's commit. Publishing a new generation never touches an
   already-pinned one (Repository.freeze is an O(1) capture of an
   immutable entry list; Live_index views are immutable by
   construction), so readers never block the writer and the writer never
   invalidates a reader. A store that never streams stays on generation
   0 — the frozen-repo degenerate case. *)

open Wfpriv_query
module Policy = Wfpriv_privacy.Policy
module Pool = Wfpriv_parallel.Pool
module Obs = Wfpriv_obs

let m_publishes = Obs.Registry.counter "live_repo.publishes"

type generation = {
  gen_id : int;
  gen_lsn : int;
  gen_repo : Repository.t;
  gen_view : Live_index.view;
}

type t = {
  store : Durable_repo.t;
  lsm : Live_index.t;
  mutable current : generation;
}

let publish ?pool t ~gen_id =
  let g =
    {
      gen_id;
      gen_lsn = Durable_repo.last_lsn t.store;
      gen_repo = Repository.freeze (Durable_repo.repo t.store);
      gen_view = Live_index.snapshot ?pool t.lsm;
    }
  in
  t.current <- g;
  Obs.Counter.incr_op m_publishes;
  g

let of_store ?pool store =
  (* Stream the recovered entries through the same add path a live
     process used, so the segment shape equals the one at this stream
     position (and the offline status report). *)
  let lsm =
    Live_index.of_entries ?pool
      (Repository.index_entries (Durable_repo.repo store))
  in
  let current =
    {
      gen_id = Durable_repo.generation store;
      gen_lsn = Durable_repo.last_lsn store;
      gen_repo = Repository.freeze (Durable_repo.repo store);
      gen_view = Live_index.snapshot ?pool lsm;
    }
  in
  { store; lsm; current }

let pin t = t.current
let store t = t.store
let generation t = t.current.gen_id
let index_segments t = Live_index.segments t.lsm
let memtable_size t = Live_index.memtable_size t.lsm
let pending_merges t = Live_index.pending_merges t.lsm

let append_streaming ?pool t mutations =
  (* Journal + apply first (atomic; raises with nothing changed on a
     doomed batch), then extend the index — only entry additions carry
     index content, an execution never does. *)
  let gen_id = Durable_repo.append_streaming t.store mutations in
  List.iter
    (fun m ->
      match m with
      | Repository.Add_entry { entry_name; policy; _ } ->
          Live_index.add ?pool t.lsm
            (entry_name, Policy.spec policy, Policy.privilege policy)
      | Repository.Add_execution _ -> ()
      | Repository.Erase _ ->
          invalid_arg "Live_repo.append_streaming: erase via Live_repo.erase")
    mutations;
  publish ?pool t ~gen_id

let erase ?pool t mutation =
  (* The durable rewrite first (journal, checkpoint, compact, prune —
     raises with nothing changed on an unknown entry), then the
     in-memory LSM: a whole-entry erase rewrites the posting segment
     that held it; a data redaction never touches the index, values are
     not indexed. The epoch bump re-keys gates and caches so
     post-erasure requests can never hit pre-erasure cached results;
     pinned readers keep their frozen generation until they re-pin. *)
  let report = Durable_repo.erase t.store mutation in
  (match mutation with
  | Repository.Erase { entry_name; data_name = None } ->
      ignore (Live_index.erase ?pool t.lsm entry_name)
  | _ -> ());
  ignore (publish ?pool t ~gen_id:report.Durable_repo.er_generation);
  report

let maintain ?pool t =
  if Live_index.maintain ?pool t.lsm then begin
    (* A merge reshapes segments without changing any answer: refresh
       the published view in place, same epoch, content-identical. *)
    t.current <- { t.current with gen_view = Live_index.snapshot ?pool t.lsm };
    true
  end
  else false

let close t = Durable_repo.close t.store
