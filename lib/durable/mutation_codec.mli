(** Binary payloads for journaled {!Wfpriv_query.Repository.mutation}
    values. Executions are stored without their spec (exactly as in
    {!Wfpriv_store.Repo_store}) and re-bound on decode to the spec of
    their entry's policy, which keeps records compact and the policy the
    single source of truth.

    Decoding is contextual: resolving the entry an [Add_execution]
    attaches to needs the repository state {e as of that log position},
    which replay naturally provides. *)

val tag_add_entry : int
val tag_add_execution : int

val tag_commit : int
(** Generation-commit record: closes a batch of batched-tagged mutation
    records and names the epoch they publish. Recovery applies a batch
    only when its commit is durable — a torn or unfinished batch is
    invisible after restart. *)

val tag_add_entry_batched : int
val tag_add_execution_batched : int
(** Batched twins of the mutation tags (identical payload bytes): the
    streaming append path journals these, followed by one
    {!tag_commit}. *)

val tag_erase : int
val tag_erase_batched : int
(** Erasure records: entry name plus optional data name, never the bytes
    being erased. Replayed like any mutation; the durable erasure
    protocol checkpoints and compacts immediately after committing one,
    so neither the erased payload nor the erase record outlives the
    rewrite on disk. *)

val is_batched : int -> bool
(** Whether the tag is one of the batched mutation tags. *)

val encode : ?batched:bool -> Wfpriv_query.Repository.mutation -> int * string
(** [(tag, payload)] for a WAL record. [batched] (default false) selects
    the batched twin tag; the payload is unchanged. *)

val encode_commit : generation:int -> int * string
(** The commit record publishing [generation] (a positive epoch id).
    Raises [Invalid_argument] when [generation < 1]. *)

val decode_commit : string -> int
(** The generation a commit payload names. Raises [Invalid_argument] on
    trailing bytes. *)

val decode :
  Wfpriv_query.Repository.t -> int -> string -> Wfpriv_query.Repository.mutation
(** [decode repo tag payload]. Batched tags decode exactly like their
    immediate twins. Raises [Invalid_argument] on unknown tags (including
    {!tag_commit} — a commit is not a mutation), trailing bytes, or an
    [Add_execution] naming an entry absent from [repo]; underlying codec
    exceptions pass through. *)
