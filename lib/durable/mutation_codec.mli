(** Binary payloads for journaled {!Wfpriv_query.Repository.mutation}
    values. Executions are stored without their spec (exactly as in
    {!Wfpriv_store.Repo_store}) and re-bound on decode to the spec of
    their entry's policy, which keeps records compact and the policy the
    single source of truth.

    Decoding is contextual: resolving the entry an [Add_execution]
    attaches to needs the repository state {e as of that log position},
    which replay naturally provides. *)

val tag_add_entry : int
val tag_add_execution : int

val encode : Wfpriv_query.Repository.mutation -> int * string
(** [(tag, payload)] for a WAL record. *)

val decode :
  Wfpriv_query.Repository.t -> int -> string -> Wfpriv_query.Repository.mutation
(** [decode repo tag payload]. Raises [Invalid_argument] on unknown
    tags, trailing bytes, or an [Add_execution] naming an entry absent
    from [repo]; underlying codec exceptions pass through. *)
