let partition ~shards ~hash xs =
  if shards < 1 then invalid_arg "Shard.partition: shards < 1";
  let buckets = Array.make shards [] in
  List.iter
    (fun x ->
      let b = hash x land max_int mod shards in
      buckets.(b) <- x :: buckets.(b))
    xs;
  Array.map List.rev buckets

let map_merge pool ~shards ~hash ~map ~merge ~init xs =
  let buckets = partition ~shards ~hash xs in
  let mapped = Pool.parallel_map ~chunk:1 pool map buckets in
  Array.fold_left merge init mapped
