(* The routing function is deliberately tiny and total: clearing the
   sign bit with [land max_int] maps every int — including [min_int],
   whose only set bit is the sign bit and which therefore routes like 0
   — into [0, max_int], and the remainder picks the bucket. Sharded
   stores persist partition keys derived from this function, so its
   behaviour on every input is contract, not accident (see the qcheck
   routing suite in test/test_shard.ml). *)
let bucket ~shards h =
  if shards < 1 then invalid_arg "Shard.bucket: shards < 1";
  h land max_int mod shards

let partition ~shards ~hash xs =
  if shards < 1 then invalid_arg "Shard.partition: shards < 1";
  let buckets = Array.make shards [] in
  List.iter
    (fun x ->
      let b = bucket ~shards (hash x) in
      buckets.(b) <- x :: buckets.(b))
    xs;
  Array.map List.rev buckets

let map_merge pool ~shards ~hash ~map ~merge ~init xs =
  let buckets = partition ~shards ~hash xs in
  let mapped = Pool.parallel_map ~chunk:1 pool map buckets in
  Array.fold_left merge init mapped
