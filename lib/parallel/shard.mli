(** Partition/merge skeleton over a {!Pool}: split the input by a hash
    into disjoint shards, map every shard on its own domain, merge in
    shard-index order. Because shards are disjoint and the merge order
    fixed, the result is independent of scheduling whenever [map] and
    [merge] are pure. *)

val bucket : shards:int -> int -> int
(** [bucket ~shards h] is the routing function of the whole sharding
    stack: the shard index in [0, shards) for hash value [h]. Defined as
    [(h land max_int) mod shards] — the [land max_int] clears the sign
    bit, so every input (negatives included) lands in range. The one
    subtle input is [min_int], whose only set bit {e is} the sign bit:
    it maps to bucket 0, exactly like a hash of 0. That behaviour is
    part of the contract (property-tested, not incidental): routing is
    total, deterministic, and stable for any [int], so on-disk partition
    keys may rely on it. Raises [Invalid_argument] if [shards < 1]. *)

val partition : shards:int -> hash:('a -> int) -> 'a list -> 'a list array
(** [partition ~shards ~hash xs] routes each element to bucket
    [bucket ~shards (hash x)], preserving the relative order of elements
    within a bucket; every element appears in exactly one bucket (the
    disjoint-coverage property the qcheck suite pins). Raises
    [Invalid_argument] if [shards < 1]. *)

val map_merge :
  Pool.t ->
  shards:int ->
  hash:('a -> int) ->
  map:('a list -> 'b) ->
  merge:('b -> 'b -> 'b) ->
  init:'b ->
  'a list ->
  'b
(** [map_merge pool ~shards ~hash ~map ~merge ~init xs] partitions [xs],
    applies [map] to every bucket in parallel, and folds the mapped
    buckets left-to-right with [merge] starting from [init]. *)
