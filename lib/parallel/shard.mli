(** Partition/merge skeleton over a {!Pool}: split the input by a hash
    into disjoint shards, map every shard on its own domain, merge in
    shard-index order. Because shards are disjoint and the merge order
    fixed, the result is independent of scheduling whenever [map] and
    [merge] are pure. *)

val partition : shards:int -> hash:('a -> int) -> 'a list -> 'a list array
(** [partition ~shards ~hash xs] routes each element to bucket
    [(hash x land max_int) mod shards], preserving the relative order of
    elements within a bucket. Raises [Invalid_argument] if [shards < 1]. *)

val map_merge :
  Pool.t ->
  shards:int ->
  hash:('a -> int) ->
  map:('a list -> 'b) ->
  merge:('b -> 'b -> 'b) ->
  init:'b ->
  'a list ->
  'b
(** [map_merge pool ~shards ~hash ~map ~merge ~init xs] partitions [xs],
    applies [map] to every bucket in parallel, and folds the mapped
    buckets left-to-right with [merge] starting from [init]. *)
