(* Spawn-once domain pool. One job runs at a time per pool (the submit
   mutex); workers park on [work] between jobs and are woken by a
   generation bump. Chunks are claimed from an atomic counter, so load
   balances across domains of unequal speed; completion is tracked by a
   per-job pending count. Exceptions are recorded per chunk and the
   lowest-indexed one re-raised after the join, which makes failure
   deterministic for deterministic [f]. *)

(* Scheduling metrics (operator-facing; volatile, since chunk counts and
   busy time depend on the jobs setting): how often loops fan out vs.
   fall back, how many chunks they split into, and the summed per-domain
   wall time spent inside chunk bodies. *)
module Obs = Wfpriv_obs

let m_parallel = Obs.Registry.counter ~volatile:true "pool.parallel_jobs"
let m_sequential = Obs.Registry.counter ~volatile:true "pool.sequential_jobs"
let m_chunks = Obs.Registry.counter ~volatile:true "pool.chunks"
let m_tasks = Obs.Registry.counter ~volatile:true "pool.tasks"
let m_busy_ns = Obs.Registry.counter ~volatile:true "pool.busy_ns"

type job = {
  run : int -> unit; (* chunk index -> work *)
  nchunks : int;
  next : int Atomic.t;
  jlock : Mutex.t; (* protects pending and first_exn *)
  jdone : Condition.t;
  mutable pending : int;
  mutable first_exn : (int * exn * Printexc.raw_backtrace) option;
}

type t = {
  n_jobs : int;
  lock : Mutex.t; (* protects current, generation, stopped *)
  work : Condition.t;
  submit : Mutex.t; (* held for the duration of one parallel loop *)
  mutable current : job option;
  mutable generation : int;
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
}

let run_chunks j =
  let continue = ref true in
  while !continue do
    let c = Atomic.fetch_and_add j.next 1 in
    if c >= j.nchunks then continue := false
    else begin
      let t0 = if Obs.Config.enabled () then Obs.Config.now_ns () else 0 in
      (try j.run c
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock j.jlock;
         (match j.first_exn with
         | Some (c0, _, _) when c0 <= c -> ()
         | _ -> j.first_exn <- Some (c, e, bt));
         Mutex.unlock j.jlock);
      if Obs.Config.enabled () then
        Obs.Counter.add_op m_busy_ns (max 0 (Obs.Config.now_ns () - t0));
      Mutex.lock j.jlock;
      j.pending <- j.pending - 1;
      if j.pending = 0 then Condition.broadcast j.jdone;
      Mutex.unlock j.jlock
    end
  done

let worker t =
  let last_gen = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock t.lock;
    while (not t.stopped) && t.generation = !last_gen do
      Condition.wait t.work t.lock
    done;
    if t.stopped then begin
      Mutex.unlock t.lock;
      continue := false
    end
    else begin
      last_gen := t.generation;
      let job = t.current in
      Mutex.unlock t.lock;
      match job with Some j -> run_chunks j | None -> ()
    end
  done

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  let t =
    {
      n_jobs = jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      submit = Mutex.create ();
      current = None;
      generation = 0;
      stopped = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.n_jobs

let shutdown t =
  Mutex.lock t.lock;
  t.stopped <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let sequential_for n f =
  for i = 0 to n - 1 do
    f i
  done

let parallel_for ?chunk t n f =
  if n <= 0 then ()
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 ((n + (4 * t.n_jobs) - 1) / (4 * t.n_jobs))
    in
    let nchunks = (n + chunk - 1) / chunk in
    (* Sequential fallback: degenerate pool, unchunkable input, stopped
       pool, or a loop issued while this pool is busy (nested
       parallelism deadlocks a shared pool; running inline does not). *)
    if t.n_jobs <= 1 || nchunks <= 1 || t.stopped || not (Mutex.try_lock t.submit)
    then begin
      Obs.Counter.incr_op m_sequential;
      Obs.Counter.add_op m_tasks n;
      sequential_for n f
    end
    else
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.submit)
        (fun () ->
          Obs.Counter.incr_op m_parallel;
          Obs.Counter.add_op m_chunks nchunks;
          Obs.Counter.add_op m_tasks n;
          let j =
            {
              run =
                (fun c ->
                  let lo = c * chunk in
                  let hi = min n (lo + chunk) in
                  for i = lo to hi - 1 do
                    f i
                  done);
              nchunks;
              next = Atomic.make 0;
              jlock = Mutex.create ();
              jdone = Condition.create ();
              pending = nchunks;
              first_exn = None;
            }
          in
          Mutex.lock t.lock;
          t.current <- Some j;
          t.generation <- t.generation + 1;
          Condition.broadcast t.work;
          Mutex.unlock t.lock;
          run_chunks j;
          Mutex.lock j.jlock;
          while j.pending > 0 do
            Condition.wait j.jdone j.jlock
          done;
          Mutex.unlock j.jlock;
          Mutex.lock t.lock;
          t.current <- None;
          Mutex.unlock t.lock;
          match j.first_exn with
          | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
  end

let parallel_map ?chunk t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?chunk t n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some y -> y | None -> assert false) out
  end

let parallel_map_list ?chunk t f xs =
  Array.to_list (parallel_map ?chunk t f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* Shared default pool *)

let global_lock = Mutex.create ()
let default_override = ref None
let global_pool = ref None
let at_exit_registered = ref false

let env_jobs () =
  match Sys.getenv_opt "WFPRIV_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (min n 64)
      | _ -> None)

let default_jobs () =
  match !default_override with
  | Some n -> n
  | None -> ( match env_jobs () with Some n -> n | None -> 1)

let global () =
  Mutex.lock global_lock;
  let p =
    match !global_pool with
    | Some p -> p
    | None ->
        let p = create ~jobs:(default_jobs ()) in
        global_pool := Some p;
        if not !at_exit_registered then begin
          at_exit_registered := true;
          at_exit (fun () ->
              match !global_pool with Some p -> shutdown p | None -> ())
        end;
        p
  in
  Mutex.unlock global_lock;
  p

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs < 1";
  Mutex.lock global_lock;
  default_override := Some n;
  (match !global_pool with
  | Some p when p.n_jobs <> n ->
      shutdown p;
      global_pool := None
  | _ -> ());
  Mutex.unlock global_lock
