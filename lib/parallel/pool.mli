(** Spawn-once domain pool with chunked data-parallel loops.

    A pool owns [jobs - 1] worker domains (the caller participates as the
    [jobs]-th worker), spawned once at {!create} and parked on a condition
    variable between jobs — no per-loop spawn cost. {!parallel_for} and
    {!parallel_map} split an index range into chunks claimed from an
    atomic counter; results are merged in index order, so the output is
    identical to the sequential loop regardless of scheduling.

    Determinism contract: for a pure [f], every entry point returns
    exactly what its sequential fallback returns — same values, same
    order, and on failure the exception raised by the {e lowest-indexed}
    failing chunk (chunks are never cancelled, so the raised exception
    does not depend on scheduling).

    Graceful degradation: a pool of [jobs <= 1], an input too small to
    chunk, or a loop issued while the pool is already busy (nested
    parallelism) all run sequentially in the caller — never an error. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains. Raises
    [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int
(** Parallelism degree (caller included); [1] means always sequential. *)

val shutdown : t -> unit
(** Park, signal and join every worker. Idempotent. Loops issued after
    shutdown run sequentially. *)

(** {2 Loops} *)

val parallel_for : ?chunk:int -> t -> int -> (int -> unit) -> unit
(** [parallel_for t n f] runs [f i] for every [i] in [0 .. n-1], split
    into chunks of [chunk] indices (default: [n] split into about four
    chunks per worker). [f] must only write to caller-partitioned state:
    distinct indices must touch disjoint mutable locations. *)

val parallel_map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Index-ordered parallel map: [(parallel_map t f xs).(i) = f xs.(i)]. *)

val parallel_map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Same, preserving list order. *)

(** {2 Shared default pool}

    Library entry points that take [?pool] default to this process-wide
    pool, sized by [set_default_jobs] if called, else the [WFPRIV_JOBS]
    environment variable, else 1 — so unconfigured programs stay purely
    sequential. *)

val default_jobs : unit -> int
(** Effective default parallelism ([set_default_jobs] override, else
    [WFPRIV_JOBS], else 1). *)

val set_default_jobs : int -> unit
(** Override the default degree; tears down an already-built global pool
    of a different size (rebuilt lazily). Raises [Invalid_argument] if
    [jobs < 1]. *)

val global : unit -> t
(** The shared pool, built on first use with {!default_jobs} workers and
    joined at exit. *)
