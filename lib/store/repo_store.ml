open Wfpriv_query
open Wfpriv_serial
open Wfpriv_privacy

let strip_spec = function
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "spec") fields)
  | other -> other

let encode repo =
  Json.Obj
    [
      ("version", Json.int 1);
      ( "entries",
        Json.Arr
          (List.map
             (fun name ->
               let e = Repository.find repo name in
               Json.Obj
                 [
                   ("name", Json.str e.Repository.name);
                   ("policy", Policy_codec.encode e.Repository.policy);
                   ( "executions",
                     Json.Arr
                       (List.map
                          (fun exec -> strip_spec (Exec_codec.encode exec))
                          e.Repository.executions) );
                 ])
             (Repository.names repo)) );
    ]

let decode j =
  (match Json.get_int (Json.member "version" j) with
  | 1 -> ()
  | v -> invalid_arg (Printf.sprintf "Repo_store: unsupported version %d" v));
  let repo = Repository.create () in
  List.iter
    (fun ej ->
      let name = Json.get_string (Json.member "name" ej) in
      let policy = Policy_codec.decode (Json.member "policy" ej) in
      let spec = Policy.spec policy in
      let executions =
        List.map
          (fun xj -> Exec_codec.decode_with_spec spec xj)
          (Json.to_list (Json.member "executions" ej))
      in
      Repository.add repo ~name ~policy ~executions ())
    (Json.to_list (Json.member "entries" j));
  repo

let to_string ?(pretty = false) repo =
  let j = encode repo in
  if pretty then Json.to_string_pretty j else Json.to_string j

let of_string s = decode (Json.parse s)

let save path repo =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ~pretty:true repo);
      output_char oc '\n')

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
