open Wfpriv_query
open Wfpriv_serial
open Wfpriv_privacy

let strip_spec = function
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "spec") fields)
  | other -> other

let encode repo =
  Json.Obj
    [
      ("version", Json.int 1);
      ( "entries",
        Json.Arr
          (List.map
             (fun name ->
               let e = Repository.find repo name in
               Json.Obj
                 [
                   ("name", Json.str e.Repository.name);
                   ("policy", Policy_codec.encode e.Repository.policy);
                   ( "executions",
                     Json.Arr
                       (List.map
                          (fun exec -> strip_spec (Exec_codec.encode exec))
                          e.Repository.executions) );
                 ])
             (Repository.names repo)) );
    ]

let decode j =
  (match Json.get_int (Json.member "version" j) with
  | 1 -> ()
  | v -> invalid_arg (Printf.sprintf "Repo_store: unsupported version %d" v));
  let repo = Repository.create () in
  List.iter
    (fun ej ->
      let name = Json.get_string (Json.member "name" ej) in
      let policy = Policy_codec.decode (Json.member "policy" ej) in
      let spec = Policy.spec policy in
      let executions =
        List.map
          (fun xj -> Exec_codec.decode_with_spec spec xj)
          (Json.to_list (Json.member "executions" ej))
      in
      Repository.add repo ~name ~policy ~executions ())
    (Json.to_list (Json.member "entries" j));
  repo

let to_string ?(pretty = false) repo =
  let j = encode repo in
  if pretty then Json.to_string_pretty j else Json.to_string j

let of_string s = decode (Json.parse s)

(* Write via a unique temp file in the target directory, then rename
   into place: rename within a directory is atomic on POSIX, so a crash
   mid-save can no longer destroy the previous good copy. *)
let save path repo =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  (try
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (to_string ~pretty:true repo);
         output_char oc '\n')
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
