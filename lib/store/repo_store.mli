(** Whole-repository persistence: save and load a
    {!Wfpriv_query.Repository.t} — entries, policies and stored
    executions — as one JSON document, the artefact a site would actually
    publish ("repositories ... made available as part of scientific
    information sharing", paper Sec. 1).

    Format:

    {v
    { "version": 1,
      "entries": [ { "name": "...",
                     "policy": { ... Policy_codec ... },
                     "executions": [ { ... Exec_codec, without the spec } ] } ] }
    v}

    To avoid duplicating the specification per execution, stored
    executions reference the entry's policy spec: {!save} strips the
    [spec] field {!Wfpriv_serial.Exec_codec} emits and {!load} re-injects
    the decoded policy's. Loading re-validates everything (specs,
    policies, execution DAGs) — a tampered document fails loudly. *)

val encode : Wfpriv_query.Repository.t -> Wfpriv_serial.Json.t
val decode : Wfpriv_serial.Json.t -> Wfpriv_query.Repository.t

val strip_spec : Wfpriv_serial.Json.t -> Wfpriv_serial.Json.t
(** Drop the ["spec"] field from an encoded execution, for stores (this
    one, and the durable engine's WAL records) that re-bind executions to
    their entry's policy spec on load. *)

val save : string -> Wfpriv_query.Repository.t -> unit
(** Write to a file (pretty-printed), via a unique temp file in the same
    directory followed by an atomic rename — a crash mid-save never
    destroys the previous good copy. *)

val to_string : ?pretty:bool -> Wfpriv_query.Repository.t -> string
val of_string : string -> Wfpriv_query.Repository.t

val load : string -> Wfpriv_query.Repository.t
(** Read from a file. Raises [Sys_error], {!Wfpriv_serial.Json.Parse_error},
    or validation exceptions from the underlying codecs. *)
