(** Whole-repository persistence: save and load a
    {!Wfpriv_query.Repository.t} — entries, policies and stored
    executions — as one JSON document, the artefact a site would actually
    publish ("repositories ... made available as part of scientific
    information sharing", paper Sec. 1).

    Format:

    {v
    { "version": 1,
      "entries": [ { "name": "...",
                     "policy": { ... Policy_codec ... },
                     "executions": [ { ... Exec_codec, without the spec } ] } ] }
    v}

    To avoid duplicating the specification per execution, stored
    executions reference the entry's policy spec: {!save} strips the
    [spec] field {!Wfpriv_serial.Exec_codec} emits and {!load} re-injects
    the decoded policy's. Loading re-validates everything (specs,
    policies, execution DAGs) — a tampered document fails loudly. *)

val encode : Wfpriv_query.Repository.t -> Wfpriv_serial.Json.t
val decode : Wfpriv_serial.Json.t -> Wfpriv_query.Repository.t

val to_string : ?pretty:bool -> Wfpriv_query.Repository.t -> string
val of_string : string -> Wfpriv_query.Repository.t

val save : string -> Wfpriv_query.Repository.t -> unit
(** Write to a file (pretty-printed). *)

val load : string -> Wfpriv_query.Repository.t
(** Read from a file. Raises [Sys_error], {!Wfpriv_serial.Json.Parse_error},
    or validation exceptions from the underlying codecs. *)
