(* LRU result cache over (fingerprint, request digest) keys — the
   Reach_cache discipline (monotone tick, stalest-slot scan, ties to the
   smaller key) applied to wire results. Entries never invalidate: the
   repository being served is immutable, so eviction only bounds
   memory. *)

module Obs = Wfpriv_obs

let m_hits = Obs.Registry.counter "server.cache_hits"
let m_misses = Obs.Registry.counter "server.cache_misses"
let m_evictions = Obs.Registry.counter "server.cache_evictions"

type slot = { value : Wire.result; mutable last_used : int }
type stats = { hits : int; misses : int; evictions : int; entries : int }

type t = {
  table : (string, slot) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Level_cache.create: capacity < 1";
  { table = Hashtbl.create 64; capacity; tick = 0; hits = 0; misses = 0;
    evictions = 0 }

let key ~fingerprint ~request = fingerprint ^ "|" ^ request

let find t ~level k =
  match Hashtbl.find_opt t.table k with
  | Some slot ->
      t.hits <- t.hits + 1;
      Obs.Counter.incr m_hits ~at:level;
      t.tick <- t.tick + 1;
      slot.last_used <- t.tick;
      Some slot.value
  | None ->
      t.misses <- t.misses + 1;
      Obs.Counter.incr m_misses ~at:level;
      None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k slot best ->
        match best with
        | Some (_, bu) when bu < slot.last_used -> best
        | Some (bk, bu) when bu = slot.last_used && bk < k -> best
        | _ -> Some (k, slot.last_used))
      t.table None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evictions <- t.evictions + 1;
      Obs.Counter.incr_op m_evictions
  | None -> ()

let add t k value =
  if not (Hashtbl.mem t.table k) && Hashtbl.length t.table >= t.capacity then
    evict_lru t;
  t.tick <- t.tick + 1;
  Hashtbl.replace t.table k { value; last_used = t.tick }

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare

let stats t : stats =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
  }

let clear t =
  Hashtbl.reset t.table;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
