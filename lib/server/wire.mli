(** Versioned request/response frames of the serving layer.

    One wire vocabulary, two framings over the {!Wfpriv_serial} codecs:

    - {e binary}: magic byte [0xF7], version byte, little-endian [u32]
      payload length, then a {!Wfpriv_serial.Binary} payload — the
      length prefix makes frame extraction O(1) and lets the reader
      reject oversized frames before buffering them;
    - {e JSON lines}: one {!Wfpriv_serial.Json} object per ['\n']-
      terminated line, self-describing and shell-scriptable.

    A connection picks its framing implicitly with its first byte
    ([0xF7] cannot begin a JSON document), and both framings decode to
    the same {!req_frame}/{!response} values — the codec round-trip
    property the QCheck suite pins. Scores cross the wire as hex float
    literals (binary) or shortest-roundtrip decimals (JSON), so decoded
    responses are bit-identical to what the server computed. *)

type request =
  | Query of { entry : string; run : int; queries : string list }
      (** structural queries against stored execution [run] of [entry],
          evaluated on the caller's access view; compatible [Query]
          frames are batched onto one {!Wfpriv_query.Engine.run_batch} *)
  | Topk of { k : int; keywords : string list }
      (** block-max WAND top-[k] over the repository's
          privacy-partitioned index *)
  | Zoom_out of { entry : string; run : int }
      (** materialize the caller's finest permitted view of the run —
          the expensive endpoint admission control must not let starve
          the cheap ones *)
  | Stats of { prefix : string option }
      (** the caller's observer view of the metric registry, optionally
          restricted to names starting with [prefix] *)
  | Append of { entry : string; workload : string option; seed : int }
      (** streaming ingestion: ask the server to append entry [entry]
          (materialized by its mounted appender from [workload]/[seed])
          to the live repository; all [Append] frames of one scheduler
          batch commit as a single durable generation *)
  | Erase of { entry : string; data : string option }
      (** durable erasure: tombstone the whole entry ([data = None]) or
          redact one named data item in every stored execution, rewriting
          WAL history, snapshots and posting segments so the erased bytes
          are absent from disk; acknowledged with {!Committed} carrying
          the bumped generation *)

type req_frame = {
  rid : int;  (** request id, echoed verbatim in the response *)
  level : int;  (** claimed privilege level *)
  deadline_ms : int;  (** queueing deadline; [0] = none *)
  req : request;
}

type result =
  | Witnesses of (bool * int list) list  (** per query, in input order *)
  | Hits of (string * float) list  (** (doc, score), rank order *)
  | View of { view_prefix : string list; view_nodes : int }
  | Counters of (string * int) list
  | Committed of { generation : int; lsn : int }
      (** append acknowledgement: the epoch the batch published and the
          lsn of its durable commit record *)

type error_code =
  | Bad_request  (** malformed frame or unparsable query text *)
  | Unknown_entry
  | Over_capacity  (** shed at admission; retry later *)
  | Deadline_exceeded  (** shed from the queue; retry later *)
  | Privilege  (** claimed level above the connection's ceiling *)

type response =
  | Result of { rid : int; result : result }
  | Error of {
      rid : int;
      code : error_code;
      retryable : bool;
      floor : int option;
          (** on [Privilege]: the level the request would have needed —
              and nothing else about it (the audit-denial discipline) *)
      message : string;
    }

type mode = Binary | Json

val max_frame : int
(** Upper bound on a frame's payload bytes; longer frames are rejected
    as {!Corrupt} without being buffered. *)

exception Malformed of string
(** Raised by the payload decoders on tag, bound or shape violations. *)

val encode_request : mode -> req_frame -> string
(** A complete frame: header + payload (binary), or one
    newline-terminated line (JSON). *)

val encode_response : mode -> response -> string

type 'a progress =
  | Frame of 'a * int  (** decoded value, bytes consumed *)
  | Need_more  (** the buffer holds a prefix of a valid frame *)
  | Corrupt of string  (** unrecoverable: close the connection *)

val decode_request : ?pos:int -> string -> req_frame progress
(** Incremental frame extraction with per-frame mode detection: a first
    byte of [0xF7] is a binary frame, anything else a JSON line.
    Truncated frames report {!Need_more}; oversized length prefixes,
    bad magic/version, unknown tags and shape errors report
    {!Corrupt}. *)

val decode_response : ?pos:int -> string -> response progress

val mode_at : ?pos:int -> string -> mode
(** The framing the byte at [pos] begins: {!Binary} on the magic byte,
    {!Json} otherwise (callers answer in the mode they were asked in). *)

val error_code_string : error_code -> string
(** Stable lowercase rendering, e.g. ["over-capacity"]. *)

val request_digest : request -> string option
(** Canonical digest of everything that determines a request's answer
    (the kind and its parameters — not [rid] or the deadline): the
    second half of the level cache's key. [None] for requests that must
    never be cached ({!Stats} reads live counters; {!Append} and
    {!Erase} are writes). *)
