module Obs = Wfpriv_obs

(* Admission/queueing counters are privilege-partitioned: an observer at
   level p sees exactly the admission behaviour of traffic at <= p,
   never whether higher-privileged clients were queueing. Queue depth is
   operator-facing (a histogram, sampled at admission). *)
let m_admitted = Obs.Registry.counter "server.admitted"
let m_rejected = Obs.Registry.counter "server.rejected"
let m_shed = Obs.Registry.counter "server.shed"
let h_queue_depth = Obs.Registry.histogram "server.queue_depth"

type cost = Cheap | Expensive

type config = {
  queue_capacity : int;
  inflight_cap : int;
  batch_limit : int;
  expensive_per_cycle : int;
}

let default_config =
  {
    queue_capacity = 256;
    inflight_cap = 64;
    batch_limit = 16;
    expensive_per_cycle = 1;
  }

type 'a item = {
  client : int;
  level : int;
  cost : cost;
  deadline : float;
  seq : int;
  payload : 'a;
}

type 'a level_queues = { cheap : 'a item Queue.t; expensive : 'a item Queue.t }

type 'a t = {
  cfg : config;
  now : unit -> float;
  levels : (int, 'a level_queues) Hashtbl.t;
  inflight : (int, int) Hashtbl.t; (* client -> queued + executing *)
  mutable seq : int;
  mutable cursor : int; (* round-robin start offset over sorted levels *)
  mutable queued : int;
}

let create ?(config = default_config) ?(now = Unix.gettimeofday) () =
  if
    config.queue_capacity < 1 || config.inflight_cap < 1
    || config.batch_limit < 1
    || config.expensive_per_cycle < 0
  then invalid_arg "Scheduler.create: bad config";
  {
    cfg = config;
    now;
    levels = Hashtbl.create 8;
    inflight = Hashtbl.create 32;
    seq = 0;
    cursor = 0;
    queued = 0;
  }

let config t = t.cfg

type reject = Queue_full | Inflight_exceeded

let queues_of t level =
  match Hashtbl.find_opt t.levels level with
  | Some q -> q
  | None ->
      let q = { cheap = Queue.create (); expensive = Queue.create () } in
      Hashtbl.replace t.levels level q;
      q

let inflight_of t client =
  Option.value ~default:0 (Hashtbl.find_opt t.inflight client)

let admit t ~client ~level ~cost ?(deadline_ms = 0) payload =
  let q = queues_of t level in
  let target = match cost with Cheap -> q.cheap | Expensive -> q.expensive in
  if Queue.length target >= t.cfg.queue_capacity then begin
    Obs.Counter.incr m_rejected ~at:level;
    Error Queue_full
  end
  else if inflight_of t client >= t.cfg.inflight_cap then begin
    Obs.Counter.incr m_rejected ~at:level;
    Error Inflight_exceeded
  end
  else begin
    t.seq <- t.seq + 1;
    let deadline =
      if deadline_ms <= 0 then infinity
      else t.now () +. (float_of_int deadline_ms /. 1000.0)
    in
    let item = { client; level; cost; deadline; seq = t.seq; payload } in
    Queue.add item target;
    t.queued <- t.queued + 1;
    Hashtbl.replace t.inflight client (inflight_of t client + 1);
    Obs.Counter.incr m_admitted ~at:level;
    Obs.Histogram.observe h_queue_depth t.queued;
    Ok item
  end

let finish t item =
  match Hashtbl.find_opt t.inflight item.client with
  | Some n when n > 1 -> Hashtbl.replace t.inflight item.client (n - 1)
  | Some _ -> Hashtbl.remove t.inflight item.client
  | None -> ()

type 'a event = Batch of 'a item list | Shed of 'a item

let pop t queue =
  let item = Queue.pop queue in
  t.queued <- t.queued - 1;
  item

(* Shed expired items from the head of the queue. Deadlines are not
   monotone in admission order, so an expired item can hide behind a
   live head; it is shed once it reaches the head on a later cycle —
   still before execution, which is the guarantee that matters. *)
let shed_expired t queue ~now acc =
  let rec go acc =
    match Queue.peek_opt queue with
    | Some item when item.deadline < now ->
        Obs.Counter.incr m_shed ~at:item.level;
        go (Shed (pop t queue) :: acc)
    | _ -> acc
  in
  go acc

let drain t ~batch_key ?(max_events = max_int) () =
  let now = t.now () in
  let levels =
    Hashtbl.fold (fun l _ acc -> l :: acc) t.levels [] |> List.sort compare
  in
  let n_levels = List.length levels in
  let ordered =
    if n_levels = 0 then []
    else
      let start = t.cursor mod n_levels in
      let arr = Array.of_list levels in
      List.init n_levels (fun i -> arr.((start + i) mod n_levels))
  in
  t.cursor <- t.cursor + 1;
  let events = ref [] in
  let n_events = ref 0 in
  let expensive_left = ref t.cfg.expensive_per_cycle in
  let push e =
    events := e :: !events;
    incr n_events
  in
  (* Cheap pass over every level first: fairness means cheap work always
     gets a slice of the cycle before any expensive release. *)
  List.iter
    (fun level ->
      if !n_events < max_events then begin
        let q = queues_of t level in
        events := shed_expired t q.cheap ~now !events;
        n_events := List.length !events;
        match Queue.peek_opt q.cheap with
        | None -> ()
        | Some head ->
            let key = batch_key head.payload in
            let batch = ref [ pop t q.cheap ] in
            let rec fuse () =
              if List.length !batch < t.cfg.batch_limit then
                match Queue.peek_opt q.cheap with
                | Some next
                  when next.deadline >= now && batch_key next.payload = key ->
                    batch := pop t q.cheap :: !batch;
                    fuse ()
                | _ -> ()
            in
            fuse ();
            push (Batch (List.rev !batch))
      end)
    ordered;
  (* Expensive pass: at most [expensive_per_cycle] releases per cycle,
     round-robin over levels. *)
  List.iter
    (fun level ->
      if !n_events < max_events && !expensive_left > 0 then begin
        let q = queues_of t level in
        events := shed_expired t q.expensive ~now !events;
        n_events := List.length !events;
        match Queue.peek_opt q.expensive with
        | None -> ()
        | Some _ ->
            decr expensive_left;
            push (Batch [ pop t q.expensive ])
      end)
    ordered;
  List.rev !events

let pending t = t.queued

let queue_depth t ~level =
  match Hashtbl.find_opt t.levels level with
  | None -> 0
  | Some q -> Queue.length q.cheap + Queue.length q.expensive
