module B = Wfpriv_serial.Binary
module J = Wfpriv_serial.Json

type request =
  | Query of { entry : string; run : int; queries : string list }
  | Topk of { k : int; keywords : string list }
  | Zoom_out of { entry : string; run : int }
  | Stats of { prefix : string option }
  | Append of { entry : string; workload : string option; seed : int }
  | Erase of { entry : string; data : string option }

type req_frame = { rid : int; level : int; deadline_ms : int; req : request }

type result =
  | Witnesses of (bool * int list) list
  | Hits of (string * float) list
  | View of { view_prefix : string list; view_nodes : int }
  | Counters of (string * int) list
  | Committed of { generation : int; lsn : int }

type error_code =
  | Bad_request
  | Unknown_entry
  | Over_capacity
  | Deadline_exceeded
  | Privilege

type response =
  | Result of { rid : int; result : result }
  | Error of {
      rid : int;
      code : error_code;
      retryable : bool;
      floor : int option;
      message : string;
    }

type mode = Binary | Json

let magic = 0xF7
let version = 1
let max_frame = 1 lsl 20

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let error_code_string = function
  | Bad_request -> "bad-request"
  | Unknown_entry -> "unknown-entry"
  | Over_capacity -> "over-capacity"
  | Deadline_exceeded -> "deadline-exceeded"
  | Privilege -> "privilege"

let error_code_of_string = function
  | "bad-request" -> Bad_request
  | "unknown-entry" -> Unknown_entry
  | "over-capacity" -> Over_capacity
  | "deadline-exceeded" -> Deadline_exceeded
  | "privilege" -> Privilege
  | s -> malformed "unknown error code %S" s

(* ------------------------------------------------------------------ *)
(* Binary payloads.

   Scores travel as hex float literals ("%h"), which round-trip
   bit-exactly and keep the payload free of 64-bit integer encodings
   (OCaml ints are 63-bit; Int64 bit patterns would not fit u64's int
   interface). *)

let w_list w f xs =
  B.Writer.varint w (List.length xs);
  List.iter (f w) xs

let r_list r f =
  let n = B.Reader.varint r in
  if n > max_frame then malformed "list length %d out of bounds" n;
  List.init n (fun _ -> f r)

let w_req w { rid; level; deadline_ms; req } =
  B.Writer.varint w rid;
  B.Writer.varint w level;
  B.Writer.varint w deadline_ms;
  match req with
  | Query { entry; run; queries } ->
      B.Writer.u8 w 1;
      B.Writer.str w entry;
      B.Writer.varint w run;
      w_list w (fun w q -> B.Writer.str w q) queries
  | Topk { k; keywords } ->
      B.Writer.u8 w 2;
      B.Writer.varint w k;
      w_list w (fun w s -> B.Writer.str w s) keywords
  | Zoom_out { entry; run } ->
      B.Writer.u8 w 3;
      B.Writer.str w entry;
      B.Writer.varint w run
  | Stats { prefix } -> (
      B.Writer.u8 w 4;
      match prefix with
      | None -> B.Writer.u8 w 0
      | Some p ->
          B.Writer.u8 w 1;
          B.Writer.str w p)
  | Append { entry; workload; seed } ->
      B.Writer.u8 w 5;
      B.Writer.str w entry;
      (match workload with
      | None -> B.Writer.u8 w 0
      | Some wl ->
          B.Writer.u8 w 1;
          B.Writer.str w wl);
      B.Writer.varint w seed
  | Erase { entry; data } ->
      B.Writer.u8 w 6;
      B.Writer.str w entry;
      (match data with
      | None -> B.Writer.u8 w 0
      | Some d ->
          B.Writer.u8 w 1;
          B.Writer.str w d)

let r_req r =
  let rid = B.Reader.varint r in
  let level = B.Reader.varint r in
  let deadline_ms = B.Reader.varint r in
  let req =
    match B.Reader.u8 r with
    | 1 ->
        let entry = B.Reader.str r in
        let run = B.Reader.varint r in
        let queries = r_list r B.Reader.str in
        Query { entry; run; queries }
    | 2 ->
        let k = B.Reader.varint r in
        let keywords = r_list r B.Reader.str in
        Topk { k; keywords }
    | 3 ->
        let entry = B.Reader.str r in
        let run = B.Reader.varint r in
        Zoom_out { entry; run }
    | 4 ->
        let prefix =
          match B.Reader.u8 r with
          | 0 -> None
          | 1 -> Some (B.Reader.str r)
          | t -> malformed "bad stats prefix tag %d" t
        in
        Stats { prefix }
    | 5 ->
        let entry = B.Reader.str r in
        let workload =
          match B.Reader.u8 r with
          | 0 -> None
          | 1 -> Some (B.Reader.str r)
          | t -> malformed "bad workload tag %d" t
        in
        let seed = B.Reader.varint r in
        Append { entry; workload; seed }
    | 6 ->
        let entry = B.Reader.str r in
        let data =
          match B.Reader.u8 r with
          | 0 -> None
          | 1 -> Some (B.Reader.str r)
          | t -> malformed "bad erase data tag %d" t
        in
        Erase { entry; data }
    | t -> malformed "unknown request tag %d" t
  in
  { rid; level; deadline_ms; req }

let w_score w f = B.Writer.str w (Printf.sprintf "%h" f)

let r_score r =
  let s = B.Reader.str r in
  match float_of_string_opt s with
  | Some f -> f
  | None -> malformed "bad score literal %S" s

let w_resp w = function
  | Result { rid; result } -> (
      B.Writer.u8 w 1;
      B.Writer.varint w rid;
      match result with
      | Witnesses ws ->
          B.Writer.u8 w 1;
          w_list w
            (fun w (holds, nodes) ->
              B.Writer.u8 w (if holds then 1 else 0);
              w_list w (fun w n -> B.Writer.varint w n) nodes)
            ws
      | Hits hs ->
          B.Writer.u8 w 2;
          w_list w
            (fun w (doc, score) ->
              B.Writer.str w doc;
              w_score w score)
            hs
      | View { view_prefix; view_nodes } ->
          B.Writer.u8 w 3;
          w_list w (fun w s -> B.Writer.str w s) view_prefix;
          B.Writer.varint w view_nodes
      | Counters cs ->
          B.Writer.u8 w 4;
          w_list w
            (fun w (name, v) ->
              B.Writer.str w name;
              B.Writer.varint w v)
            cs
      | Committed { generation; lsn } ->
          B.Writer.u8 w 5;
          B.Writer.varint w generation;
          B.Writer.varint w lsn)
  | Error { rid; code; retryable; floor; message } -> (
      B.Writer.u8 w 2;
      B.Writer.varint w rid;
      B.Writer.str w (error_code_string code);
      B.Writer.u8 w (if retryable then 1 else 0);
      (match floor with
      | None -> B.Writer.u8 w 0
      | Some f ->
          B.Writer.u8 w 1;
          B.Writer.varint w f);
      B.Writer.str w message)

let r_resp r =
  match B.Reader.u8 r with
  | 1 ->
      let rid = B.Reader.varint r in
      let result =
        match B.Reader.u8 r with
        | 1 ->
            Witnesses
              (r_list r (fun r ->
                   let holds =
                     match B.Reader.u8 r with
                     | 0 -> false
                     | 1 -> true
                     | t -> malformed "bad bool %d" t
                   in
                   let nodes = r_list r B.Reader.varint in
                   (holds, nodes)))
        | 2 ->
            Hits
              (r_list r (fun r ->
                   let doc = B.Reader.str r in
                   let score = r_score r in
                   (doc, score)))
        | 3 ->
            let view_prefix = r_list r B.Reader.str in
            let view_nodes = B.Reader.varint r in
            View { view_prefix; view_nodes }
        | 4 ->
            Counters
              (r_list r (fun r ->
                   let name = B.Reader.str r in
                   let v = B.Reader.varint r in
                   (name, v)))
        | 5 ->
            let generation = B.Reader.varint r in
            let lsn = B.Reader.varint r in
            Committed { generation; lsn }
        | t -> malformed "unknown result tag %d" t
      in
      Result { rid; result }
  | 2 ->
      let rid = B.Reader.varint r in
      let code = error_code_of_string (B.Reader.str r) in
      let retryable =
        match B.Reader.u8 r with
        | 0 -> false
        | 1 -> true
        | t -> malformed "bad bool %d" t
      in
      let floor =
        match B.Reader.u8 r with
        | 0 -> None
        | 1 -> Some (B.Reader.varint r)
        | t -> malformed "bad floor tag %d" t
      in
      let message = B.Reader.str r in
      Error { rid; code; retryable; floor; message }
  | t -> malformed "unknown response tag %d" t

(* ------------------------------------------------------------------ *)
(* JSON payloads *)

let j_strings xs = J.Arr (List.map (fun s -> J.str s) xs)

let req_to_json { rid; level; deadline_ms; req } =
  let base =
    [ ("v", J.int version); ("rid", J.int rid); ("level", J.int level) ]
  in
  let deadline =
    if deadline_ms = 0 then [] else [ ("deadline_ms", J.int deadline_ms) ]
  in
  let body =
    match req with
    | Query { entry; run; queries } ->
        [
          ("op", J.str "query");
          ("entry", J.str entry);
          ("run", J.int run);
          ("queries", j_strings queries);
        ]
    | Topk { k; keywords } ->
        [ ("op", J.str "topk"); ("k", J.int k); ("keywords", j_strings keywords) ]
    | Zoom_out { entry; run } ->
        [ ("op", J.str "zoom-out"); ("entry", J.str entry); ("run", J.int run) ]
    | Stats { prefix } -> (
        ("op", J.str "stats")
        ::
        (match prefix with None -> [] | Some p -> [ ("prefix", J.str p) ]))
    | Append { entry; workload; seed } ->
        [ ("op", J.str "append"); ("entry", J.str entry) ]
        @ (match workload with
          | None -> []
          | Some wl -> [ ("workload", J.str wl) ])
        @ [ ("seed", J.int seed) ]
    | Erase { entry; data } -> (
        [ ("op", J.str "erase"); ("entry", J.str entry) ]
        @ match data with None -> [] | Some d -> [ ("data", J.str d) ])
  in
  J.Obj (base @ deadline @ body)

let get_nat what j =
  let n = J.get_int j in
  if n < 0 then malformed "%s must be non-negative" what;
  n

let member_nat name ?(default = -1) obj =
  match J.member_opt name obj with
  | Some v -> get_nat name v
  | None ->
      if default >= 0 then default else malformed "missing field %S" name

let member_str name obj =
  match J.member_opt name obj with
  | Some v -> J.get_string v
  | None -> malformed "missing field %S" name

let member_strings name obj =
  match J.member_opt name obj with
  | Some v -> List.map J.get_string (J.to_list v)
  | None -> malformed "missing field %S" name

let check_version obj =
  match J.member_opt "v" obj with
  | Some v when J.get_int v = version -> ()
  | Some v -> malformed "unsupported protocol version %d" (J.get_int v)
  | None -> malformed "missing field \"v\""

let req_of_json obj =
  check_version obj;
  let rid = member_nat "rid" obj in
  let level = member_nat "level" obj in
  let deadline_ms = member_nat "deadline_ms" ~default:0 obj in
  let req =
    match member_str "op" obj with
    | "query" ->
        Query
          {
            entry = member_str "entry" obj;
            run = member_nat "run" ~default:0 obj;
            queries = member_strings "queries" obj;
          }
    | "topk" ->
        Topk { k = member_nat "k" obj; keywords = member_strings "keywords" obj }
    | "zoom-out" ->
        Zoom_out
          { entry = member_str "entry" obj; run = member_nat "run" ~default:0 obj }
    | "stats" ->
        Stats
          {
            prefix =
              (match J.member_opt "prefix" obj with
              | Some p -> Some (J.get_string p)
              | None -> None);
          }
    | "append" ->
        Append
          {
            entry = member_str "entry" obj;
            workload =
              (match J.member_opt "workload" obj with
              | Some wl -> Some (J.get_string wl)
              | None -> None);
            seed = member_nat "seed" ~default:0 obj;
          }
    | "erase" ->
        Erase
          {
            entry = member_str "entry" obj;
            data =
              (match J.member_opt "data" obj with
              | Some d -> Some (J.get_string d)
              | None -> None);
          }
    | op -> malformed "unknown op %S" op
  in
  { rid; level; deadline_ms; req }

let resp_to_json = function
  | Result { rid; result } ->
      let body =
        match result with
        | Witnesses ws ->
            [
              ("kind", J.str "witnesses");
              ( "witnesses",
                J.Arr
                  (List.map
                     (fun (holds, nodes) ->
                       J.Obj
                         [
                           ("holds", J.Bool holds);
                           ("nodes", J.Arr (List.map J.int nodes));
                         ])
                     ws) );
            ]
        | Hits hs ->
            [
              ("kind", J.str "hits");
              ( "hits",
                J.Arr
                  (List.map
                     (fun (doc, score) ->
                       J.Obj [ ("doc", J.str doc); ("score", J.Num score) ])
                     hs) );
            ]
        | View { view_prefix; view_nodes } ->
            [
              ("kind", J.str "view");
              ("prefix", j_strings view_prefix);
              ("nodes", J.int view_nodes);
            ]
        | Counters cs ->
            [
              ("kind", J.str "counters");
              ( "counters",
                J.Arr
                  (List.map
                     (fun (name, v) -> J.Arr [ J.str name; J.int v ])
                     cs) );
            ]
        | Committed { generation; lsn } ->
            [
              ("kind", J.str "committed");
              ("generation", J.int generation);
              ("lsn", J.int lsn);
            ]
      in
      J.Obj
        ([ ("v", J.int version); ("rid", J.int rid); ("ok", J.Bool true) ]
        @ body)
  | Error { rid; code; retryable; floor; message } ->
      J.Obj
        ([
           ("v", J.int version);
           ("rid", J.int rid);
           ("ok", J.Bool false);
           ("code", J.str (error_code_string code));
           ("retryable", J.Bool retryable);
         ]
        @ (match floor with None -> [] | Some f -> [ ("floor", J.int f) ])
        @ [ ("message", J.str message) ])

let resp_of_json obj =
  check_version obj;
  let rid = member_nat "rid" obj in
  match J.member_opt "ok" obj with
  | Some (J.Bool true) ->
      let result =
        match member_str "kind" obj with
        | "witnesses" ->
            Witnesses
              (J.to_list (J.member "witnesses" obj)
              |> List.map (fun w ->
                     ( J.get_bool (J.member "holds" w),
                       List.map J.get_int (J.to_list (J.member "nodes" w)) )))
        | "hits" ->
            Hits
              (J.to_list (J.member "hits" obj)
              |> List.map (fun h ->
                     ( J.get_string (J.member "doc" h),
                       J.get_float (J.member "score" h) )))
        | "view" ->
            View
              {
                view_prefix =
                  List.map J.get_string (J.to_list (J.member "prefix" obj));
                view_nodes = member_nat "nodes" obj;
              }
        | "counters" ->
            Counters
              (J.to_list (J.member "counters" obj)
              |> List.map (fun pair ->
                     match J.to_list pair with
                     | [ n; v ] -> (J.get_string n, J.get_int v)
                     | _ -> malformed "bad counter pair"))
        | "committed" ->
            Committed
              {
                generation = member_nat "generation" obj;
                lsn = member_nat "lsn" obj;
              }
        | k -> malformed "unknown result kind %S" k
      in
      Result { rid; result }
  | Some (J.Bool false) ->
      Error
        {
          rid;
          code = error_code_of_string (member_str "code" obj);
          retryable = J.get_bool (J.member "retryable" obj);
          floor =
            (match J.member_opt "floor" obj with
            | Some f -> Some (get_nat "floor" f)
            | None -> None);
          message = member_str "message" obj;
        }
  | _ -> malformed "missing field \"ok\""

(* ------------------------------------------------------------------ *)
(* Framing *)

let frame_binary payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Wire: frame exceeds max_frame";
  let w = B.Writer.create ~capacity:(len + 8) () in
  B.Writer.u8 w magic;
  B.Writer.u8 w version;
  B.Writer.u32 w len;
  B.Writer.raw w payload;
  B.Writer.contents w

let encode mode payload_bin payload_json =
  match mode with
  | Binary ->
      let w = B.Writer.create () in
      payload_bin w;
      frame_binary (B.Writer.contents w)
  | Json -> J.to_string payload_json ^ "\n"

let encode_request mode f = encode mode (fun w -> w_req w f) (req_to_json f)
let encode_response mode r = encode mode (fun w -> w_resp w r) (resp_to_json r)

type 'a progress = Frame of 'a * int | Need_more | Corrupt of string

let mode_at ?(pos = 0) s =
  if pos < String.length s && Char.code s.[pos] = magic then Binary else Json

(* Extract one frame starting at [pos]: binary when the first byte is
   the magic, else one JSON line. Shape errors inside a complete frame
   are [Corrupt] — a framing-level failure the connection cannot recover
   from, unlike an application-level [Error] response. *)
let decode_frame ?(pos = 0) s ~of_binary ~of_json =
  let len = String.length s - pos in
  if len <= 0 then Need_more
  else if Char.code s.[pos] = magic then
    if len < 6 then Need_more
    else
      let v = Char.code s.[pos + 1] in
      let r = B.Reader.of_string ~pos:(pos + 2) s in
      let plen = B.Reader.u32 r in
      if v <> version then Corrupt (Printf.sprintf "bad frame version %d" v)
      else if plen > max_frame then
        Corrupt (Printf.sprintf "frame of %d bytes exceeds max %d" plen max_frame)
      else if len < 6 + plen then Need_more
      else
        let payload = String.sub s (pos + 6) plen in
        match of_binary (B.Reader.of_string payload) with
        | value -> Frame (value, 6 + plen)
        | exception Malformed m -> Corrupt m
        | exception B.Truncated -> Corrupt "truncated payload"
  else
    match String.index_from_opt s pos '\n' with
    | None ->
        if len > max_frame then Corrupt "unterminated line exceeds max frame"
        else Need_more
    | Some nl -> (
        let line = String.sub s pos (nl - pos) in
        match J.parse line with
        | doc -> (
            match of_json doc with
            | value -> Frame (value, nl - pos + 1)
            | exception Malformed m -> Corrupt m
            | exception Invalid_argument m -> Corrupt m)
        | exception J.Parse_error { message; _ } -> Corrupt message)

let decode_request ?pos s =
  (* A complete binary payload must also consume cleanly: trailing bytes
     mean the sender and receiver disagree on the schema. *)
  let of_binary r =
    let f = r_req r in
    if not (B.Reader.at_end r) then malformed "trailing bytes in payload";
    f
  in
  decode_frame ?pos s ~of_binary ~of_json:req_of_json

let decode_response ?pos s =
  let of_binary r =
    let f = r_resp r in
    if not (B.Reader.at_end r) then malformed "trailing bytes in payload";
    f
  in
  decode_frame ?pos s ~of_binary ~of_json:resp_of_json

(* ------------------------------------------------------------------ *)

let request_digest = function
  | Query { entry; run; queries } ->
      Some
        (Printf.sprintf "q/%s/%d/%s" entry run
           (String.concat "\x00" queries))
  | Topk { k; keywords } ->
      Some (Printf.sprintf "t/%d/%s" k (String.concat "\x00" keywords))
  | Zoom_out { entry; run } -> Some (Printf.sprintf "z/%s/%d" entry run)
  | Stats _ -> None
  | Append _ -> None
  | Erase _ -> None
