(** The serving layer's result cache, partitioned by privilege level.

    One cache is shared by every session the server multiplexes, so the
    hard invariant of Davidson et al.'s per-level view semantics applies:
    a cache hit must never reveal what a differently-privileged session
    computed. The discipline is entirely in the key: entries are keyed
    by [(access-view fingerprint, request digest)], where the
    fingerprint is {!Wfpriv_query.Access_gate.fingerprint} — a canonical
    rendering of the caller's visibility whose privilege level is a
    syntactic prefix. Two sessions collide on a key iff they have the
    same level {e and} the same access view {e and} asked the same
    question, in which case sharing the answer reveals nothing: it is
    bit-identical to what the reader would have computed alone (the
    leakage suite pins this with the cache on and off).

    Eviction is exact LRU under a fixed capacity, the {!Reach_cache}
    discipline: entries never invalidate (the served repository is
    immutable), they are only shed to bound memory. Hits and misses are
    recorded per privilege level ([server.cache_hits] /
    [server.cache_misses]), so the observer view of cache behaviour is
    itself partitioned. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the entry count (default 1024); eviction is
    least-recently-used, ties broken deterministically. Raises
    [Invalid_argument] if [capacity < 1]. *)

val key : fingerprint:string -> request:string -> string
(** The canonical cache key. The fingerprint comes first, so every key
    of level [l] starts with [l]'s fingerprint prefix — the partition is
    syntactic, which is what {!keys} lets tests assert. *)

val find : t -> level:int -> string -> Wire.result option
(** Bumps recency and the per-level hit/miss counters. *)

val add : t -> string -> Wire.result -> unit
(** Insert (or refresh) an entry, evicting the LRU slot when full. *)

val keys : t -> string list
(** Every resident key, sorted — the leakage suite checks that all keys
    carry their level's fingerprint prefix and that flushing one level's
    traffic never resides under another level's prefix. *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : t -> stats
val clear : t -> unit
