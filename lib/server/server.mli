(** The multi-session serving layer: one shared repository, thousands of
    sessions at different privilege levels, admission control in front,
    a privilege-partitioned result cache behind.

    A server owns a {!Wfpriv_query.Repository.t} (immutable while
    serving), a {!Scheduler} for admission/batching/shedding, a
    {!Level_cache} for results, one prepared gate per (entry, level)
    and one cached engine per (entry, run, level) — the per-user-group
    discipline of {!Wfpriv_query.Reach_cache} promoted to a serving
    front-end. Privilege never relaxes here: every evaluation happens
    through a gate's access view exactly as in the single-process CLI,
    and every response is bit-identical to what that CLI would print,
    whatever the cache or batching did (the server leakage suite pins
    this).

    Two front-ends share the in-process pipeline: {!serve_channels}
    (stdin/stdout framing, scriptable and deterministic) and
    {!serve_tcp} (a single-threaded [select] loop multiplexing many
    connections). Tests and the E18 load generator drive the pipeline
    directly through {!submit}/{!cycle} with a virtual clock. *)

type config = {
  max_level : int;
      (** privilege ceiling of the listener: frames claiming more are
          denied with the required floor only *)
  cache : bool;  (** serve results from the level cache *)
  cache_capacity : int;
  engine_capacity : int;  (** cached prepared engines (per user group) *)
  sched : Scheduler.config;
}

val default_config : config
(** [max_level = 9], cache on (1024 entries), 256 engines,
    {!Scheduler.default_config}. *)

type t

val create :
  ?config:config -> ?now:(unit -> float) -> Wfpriv_query.Repository.t -> t
(** Serve a frozen repository — the degenerate single-generation case:
    [generation] stays 0 and [Append] frames are refused. *)

type appender =
  entry:string -> workload:string option -> seed:int -> Wfpriv_query.Repository.mutation
(** Materializes an {!Wire.Append} frame into a repository mutation.
    Injected so the serving layer stays workload-agnostic (the CLI
    mounts a synthetic-workload appender). May raise [Invalid_argument]
    to refuse a frame. *)

val create_live :
  ?config:config ->
  ?now:(unit -> float) ->
  ?appender:appender ->
  Wfpriv_durable.Live_repo.t ->
  t
(** Serve a live repository: queries execute against the pinned current
    generation; [Append] frames (refused without an [appender]) batch
    into one durable commit — one published generation — per scheduler
    cycle, and each cycle runs one background LSM merge step. *)

val create_sharded :
  ?config:config ->
  ?now:(unit -> float) ->
  Wfpriv_shard.Sharded_repo.t ->
  t
(** Serve a sharded store read-only (appends are refused like on a
    frozen backing; write to a sharded store through the CLI and
    restart or point a fresh server at it). Structural queries run on
    frontier-backed engines ({!Wfpriv_shard.Frontier}), top-k frames on
    the sharded global merge ({!Wfpriv_shard.Sharded_index}) — answers
    bit-identical to serving the equivalent unsharded repository, while
    every cache fingerprint carries the shard topology and the sharded
    generation so no entry ever crosses layouts or epochs. *)

val repo : t -> Wfpriv_query.Repository.t
(** The repository queries currently execute against: the frozen one,
    or the live backing's pinned current generation. *)

val generation : t -> int
(** Current epoch; 0 on a frozen backing. On a sharded backing, the
    global (summed) {!Wfpriv_shard.Sharded_repo.generation}. *)

val shards : t -> int
(** Shard count of the backing; 1 unless created by
    {!create_sharded}. *)

val maintain_idle : ?max_steps:int -> t -> int
(** Run up to [max_steps] (default 4) background LSM merge steps
    ({!Wfpriv_durable.Live_repo.maintain}); returns how many ran (0 on
    frozen and sharded backings, and once the backlog is empty).
    {!serve_tcp} calls this on its select-timeout path, so merge debt
    drains while the loop is idle instead of one step per request
    cycle only. *)

val cache_stats : t -> Level_cache.stats
val cache_keys : t -> string list

val handle : t -> client:int -> Wire.req_frame -> Wire.response
(** Validate and execute one frame synchronously, bypassing admission —
    the closed-loop path (one in-flight request per client needs no
    queue). Identical responses to the scheduled path. *)

val submit :
  t -> client:int -> ?mode:Wire.mode -> Wire.req_frame -> Wire.response option
(** Admission: [None] means queued (a later {!cycle} will answer);
    [Some r] is an immediate response — a privilege denial, a
    validation error, or a retryable [over-capacity] rejection. *)

val cycle : t -> (int * Wire.mode * Wire.response) list
(** One scheduler drain: shed expired items (retryable
    [deadline-exceeded]), execute batches — compatible structural
    queries fused onto one {!Wfpriv_query.Engine.run_batch}, top-k
    frames onto one {!Wfpriv_query.Engine.run_searches} — and return
    [(client, mode, response)] in completion order. *)

val drain_all : t -> (int * Wire.mode * Wire.response) list
(** Run {!cycle} until the queues are empty. *)

val served : t -> int
(** Responses produced since {!create} (errors and sheds included). *)

val serve_channels : t -> in_channel -> out_channel -> int
(** Frame-by-frame service of a channel pair: requests are admitted as
    they parse, queued work is drained after EOF, responses are written
    in completion order in the mode of their request. Returns the number
    of responses written. A corrupt frame stops reading (one
    [bad-request] error is emitted first). *)

val serve_tcp :
  t ->
  port:int ->
  ?port_file:string ->
  ?max_requests:int ->
  ?timeout_s:float ->
  unit ->
  int
(** Single-threaded [select] loop on [127.0.0.1:port] ([port = 0] picks
    an ephemeral port). [port_file] is written (atomically) with the
    bound port once listening — the rendezvous the smoke test uses.
    The loop exits after [max_requests] responses (once flushed) or
    [timeout_s] seconds; with neither, it runs until interrupted.
    Select timeouts with no pending work drive {!maintain_idle}.
    Returns the number of responses written. *)
