module Q = Wfpriv_query
module D = Wfpriv_durable
module W = Wfpriv_workflow
module Sh = Wfpriv_shard
module Obs = Wfpriv_obs

(* Request volume and privilege denials are privilege-partitioned
   counters; per-endpoint latency is operator-facing (histograms). *)
let m_requests = Obs.Registry.counter "server.requests"
let m_denied = Obs.Registry.counter "server.denied"
let h_lat_query = Obs.Registry.histogram "server.latency_ns.query"
let h_lat_topk = Obs.Registry.histogram "server.latency_ns.topk"
let h_lat_zoom = Obs.Registry.histogram "server.latency_ns.zoom_out"
let h_lat_stats = Obs.Registry.histogram "server.latency_ns.stats"
let h_lat_append = Obs.Registry.histogram "server.latency_ns.append"
let h_lat_erase = Obs.Registry.histogram "server.latency_ns.erase"

type config = {
  max_level : int;
  cache : bool;
  cache_capacity : int;
  engine_capacity : int;
  sched : Scheduler.config;
}

let default_config =
  {
    max_level = 9;
    cache = true;
    cache_capacity = 1024;
    engine_capacity = 256;
    sched = Scheduler.default_config;
  }

(* What sits in the scheduler queues: the frame plus the framing its
   answer must use. *)
type job = { jm : Wire.mode; jf : Wire.req_frame }

(* A frozen repository (immutable while serving — the degenerate
   single-generation case), a live one whose writer publishes a new
   generation per committed append batch, or a sharded store served
   read-only (appends to a sharded store go through the CLI offline;
   the serving loop reopens nothing). Readers always execute against
   the pinned current generation, never mid-batch state. *)
type backing =
  | Frozen of Q.Repository.t
  | Live of D.Live_repo.t
  | Sharded of Sh.Sharded_repo.t

type appender =
  entry:string -> workload:string option -> seed:int -> Q.Repository.mutation

type t = {
  cfg : config;
  backing : backing;
  appender : appender option;
  cache : Level_cache.t option;
  rcache : Q.Reach_cache.t; (* prepared engines, shared across levels
                               with equal access prefixes *)
  sched : job Scheduler.t;
  gates : (string * int, Q.Access_gate.t * string) Hashtbl.t;
      (* (entry, level) -> prepared gate + fingerprint. Entries are
         append-only and a policy never changes, so gates (and the
         engines below) stay valid across generations and need no
         epoch in their key. *)
  mutable index : Q.Index.t option; (* built on first top-k (frozen) *)
  mutable sindex : (int * Sh.Sharded_index.t) option;
      (* sharded top-k index, keyed by the generation it was built at *)
  sengines : (string, Q.Engine.t) Hashtbl.t;
      (* frontier-backed engines per user group (sharded backing only;
         keys carry the shard topology via Reach_cache.group_key) *)
  mutable served : int;
}

let make ?(config = default_config) ?(now = Unix.gettimeofday) ?appender
    backing =
  if config.max_level < 0 || config.cache_capacity < 1 || config.engine_capacity < 1
  then invalid_arg "Server.create: bad config";
  {
    cfg = config;
    backing;
    appender;
    cache =
      (if config.cache then
         Some (Level_cache.create ~capacity:config.cache_capacity ())
       else None);
    rcache = Q.Reach_cache.create ~capacity:config.engine_capacity ();
    sched = Scheduler.create ~config:config.sched ~now ();
    gates = Hashtbl.create 32;
    index = None;
    sindex = None;
    sengines = Hashtbl.create 32;
    served = 0;
  }

let create ?config ?now repo = make ?config ?now (Frozen repo)

let create_live ?config ?now ?appender live =
  make ?config ?now ?appender (Live live)

let create_sharded ?config ?now sr = make ?config ?now (Sharded sr)

let repo t =
  match t.backing with
  | Frozen r -> r
  | Live lr -> (D.Live_repo.pin lr).D.Live_repo.gen_repo
  | Sharded sr -> Sh.Sharded_repo.repo sr

let generation t =
  match t.backing with
  | Frozen _ -> 0
  | Live lr -> D.Live_repo.generation lr
  | Sharded sr -> Sh.Sharded_repo.generation sr

let shards t =
  match t.backing with Sharded sr -> Sh.Sharded_repo.shards sr | _ -> 1

let cache_stats t =
  match t.cache with
  | Some c -> Level_cache.stats c
  | None -> { Level_cache.hits = 0; misses = 0; evictions = 0; entries = 0 }

let cache_keys t =
  match t.cache with Some c -> Level_cache.keys c | None -> []

let served t = t.served

let respond t r =
  t.served <- t.served + 1;
  r

(* {2 Shared lookups} *)

let gate_for t (e : Q.Repository.entry) level =
  match Hashtbl.find_opt t.gates (e.name, level) with
  | Some g -> g
  | None ->
      (* Gates carry the backing's shard topology so every fingerprint
         — hence every Level_cache key — partitions by layout as well
         as by visibility; unsharded backings keep the historical
         strings (shards 1 adds nothing). *)
      let gate = Q.Access_gate.of_policy ~shards:(shards t) e.policy ~level in
      Q.Access_gate.prepare gate;
      let g = (gate, Q.Access_gate.fingerprint gate) in
      Hashtbl.replace t.gates (e.name, level) g;
      g

let engine_for t gate ~entry ~run exec =
  (* The view is determined by the access prefix alone, so levels with
     equal prefixes share one prepared engine — Reach_cache's user-group
     sharing. Results stay level-partitioned in the level cache. *)
  let view = Q.Access_gate.exec_view gate exec in
  let prefix = W.Exec_view.prefix view in
  match t.backing with
  | Sharded sr -> (
      (* Frontier-backed engines: reachability by cross-shard exchange,
         bit-identical to the memoized closure (the differential suite
         pins it). Reach_cache cannot host these — it prepares its own
         plain engines — so they memoize here, keyed with the topology
         suffix so no group key ever collides with an unsharded one. *)
      let nshards = Sh.Sharded_repo.shards sr in
      let key =
        Q.Reach_cache.group_key ~shards:nshards ~entry ~run ~prefix ()
      in
      match Hashtbl.find_opt t.sengines key with
      | Some eng -> eng
      | None ->
          let eng = Sh.Frontier.engine_of_exec_view ~shards:nshards view in
          Hashtbl.replace t.sengines key eng;
          eng)
  | Frozen _ | Live _ ->
      let key = Q.Reach_cache.group_key ~entry ~run ~prefix () in
      Q.Reach_cache.engine t.rcache ~key view

let index_for t =
  match t.index with
  | Some ix -> ix
  | None ->
      let ix = Q.Repository.search_index (repo t) in
      t.index <- Some ix;
      ix

let sindex_for t sr =
  let g = Sh.Sharded_repo.generation sr in
  match t.sindex with
  | Some (g', six) when g' = g -> six
  | _ ->
      let six = Sh.Sharded_repo.index sr in
      t.sindex <- Some (g, six);
      six

let cache_find t ~level key =
  match t.cache with
  | None -> None
  | Some c -> Level_cache.find c ~level key

let cache_add t key v =
  match t.cache with None -> () | Some c -> Level_cache.add c key v

let digest_of (f : Wire.req_frame) =
  match Wire.request_digest f.req with
  | Some d -> d
  | None -> invalid_arg "Server: uncacheable request digested"

(* {2 Error responses} *)

let bad rid message =
  Wire.Error
    { rid; code = Wire.Bad_request; retryable = false; floor = None; message }

let unknown_entry rid entry =
  Wire.Error
    {
      rid;
      code = Wire.Unknown_entry;
      retryable = false;
      floor = None;
      message = "unknown entry: " ^ entry;
    }

(* {2 Endpoint execution}

   Every path audits from the {e result} (node counts, hit counts), so
   the audit trail is identical whether the result came from the cache
   or from evaluation — a cache hit is unobservable in every channel a
   client or auditor can read. *)

let audit_witnesses gate asts = function
  | Wire.Witnesses ws when List.length ws = List.length asts ->
      List.iter2
        (fun ast (_, nodes) ->
          Q.Access_gate.audit_query gate ast ~nodes:(List.length nodes))
        asts ws
  | _ -> ()

type q_state =
  | Q_err of Wire.response
  | Q_hit of Q.Query_ast.t list * Wire.result
  | Q_miss of Q.Query_ast.t list

let exec_query_group t ~level ~entry ~run frames =
  match Q.Repository.find (repo t) entry with
  | exception Not_found ->
      List.map (fun (f : Wire.req_frame) -> unknown_entry f.rid entry) frames
  | e -> (
      match List.nth_opt e.executions run with
      | None ->
          List.map
            (fun (f : Wire.req_frame) ->
              bad f.rid (Printf.sprintf "run %d out of range for %s" run entry))
            frames
      | Some exec ->
          let gate, fp = gate_for t e level in
          let states =
            List.map
              (fun (f : Wire.req_frame) ->
                match f.req with
                | Wire.Query { queries; _ } -> (
                    match List.map Q.Query_parser.parse queries with
                    | asts -> (
                        let key =
                          Level_cache.key ~fingerprint:fp
                            ~request:(digest_of f)
                        in
                        match cache_find t ~level key with
                        | Some r -> (f, key, Q_hit (asts, r))
                        | None -> (f, key, Q_miss asts))
                    | exception Q.Query_parser.Syntax_error { pos; message } ->
                        ( f,
                          "",
                          Q_err
                            (bad f.rid
                               (Printf.sprintf "syntax error at %d: %s" pos
                                  message)) ))
                | _ -> (f, "", Q_err (bad f.rid "mixed batch")))
              frames
          in
          let miss_plans =
            List.concat_map
              (fun (_, _, st) ->
                match st with
                | Q_miss asts -> List.map Q.Engine.compile asts
                | _ -> [])
              states
          in
          let miss_witnesses =
            if miss_plans = [] then []
            else
              let eng = engine_for t gate ~entry ~run exec in
              Q.Engine.run_batch eng miss_plans
          in
          let rem = ref miss_witnesses in
          let take n =
            let rec go n acc =
              if n = 0 then List.rev acc
              else
                match !rem with
                | [] -> List.rev acc
                | w :: tl ->
                    rem := tl;
                    go (n - 1) (w :: acc)
            in
            go n []
          in
          List.map
            (fun ((f : Wire.req_frame), key, st) ->
              match st with
              | Q_err r -> r
              | Q_hit (asts, result) ->
                  audit_witnesses gate asts result;
                  Wire.Result { rid = f.rid; result }
              | Q_miss asts ->
                  let ws = take (List.length asts) in
                  let result =
                    Wire.Witnesses
                      (List.map
                         (fun (w : Q.Engine.witness) -> (w.holds, w.nodes))
                         ws)
                  in
                  cache_add t key result;
                  audit_witnesses gate asts result;
                  Wire.Result { rid = f.rid; result })
            states)

let audit_topk ~level keywords = function
  | Wire.Hits hits ->
      Obs.Audit_log.record ~op:"server.topk" ~level
        ~query:(String.concat " " keywords)
        ~nodes:(List.length hits) Obs.Audit_log.Allowed
  | _ -> ()

type t_state =
  | T_err of Wire.response
  | T_hit of string list * Wire.result
  | T_miss of int * string list

(* Top-k answers depend on the whole visible corpus, so their cache
   fingerprint carries the pinned generation (entry-scoped results do
   not: an execution's DAG never changes once stored) and, on a sharded
   backing, the shard topology (its generation counter only means
   something within one layout). Generation 0 with one shard keeps the
   frozen byte format. *)
let topk_fingerprint t ~level =
  let g = generation t in
  let epoch = if g = 0 then "" else Printf.sprintf "g%d/" g in
  let s = shards t in
  let topology = if s <= 1 then "" else Printf.sprintf "s%d/" s in
  Printf.sprintf "l%d/%s%stopk" level epoch topology

(* The canonical top-k pipeline dispatches to the sharded global merge
   (per-shard WAND under global weights, upper-bound pruning);
   everything else — in particular quantized pipelines — ranks the
   exhaustive merged scores. The same dispatch rule as the frozen and
   LSM paths, so answers are bit-identical across all three. *)
let run_search_sharded ~sindex ~level plan =
  match plan with
  | Q.Plan.Project_top (k, Q.Plan.Rank (Q.Plan.Keyword_lookup kws)) ->
      Sh.Sharded_index.top_k sindex ~level ~k kws
  | plan ->
      Q.Engine.run_search
        ~lookup:(fun kws -> Sh.Sharded_index.score_entries sindex ~level kws)
        plan

let run_searches t ~level plans =
  match t.backing with
  | Frozen _ -> Q.Engine.run_searches ~index:(index_for t) ~level plans
  | Live lr ->
      Q.Engine.run_searches_live
        ~view:(D.Live_repo.pin lr).D.Live_repo.gen_view ~level plans
  | Sharded sr ->
      let sindex = sindex_for t sr in
      List.map (run_search_sharded ~sindex ~level) plans

let exec_topk_group t ~level frames =
  let fp = topk_fingerprint t ~level in
  let states =
    List.map
      (fun (f : Wire.req_frame) ->
        match f.req with
        | Wire.Topk { k; keywords } -> (
            if k <= 0 then (f, "", T_err (bad f.rid "k must be positive"))
            else
              let key =
                Level_cache.key ~fingerprint:fp ~request:(digest_of f)
              in
              match cache_find t ~level key with
              | Some r -> (f, key, T_hit (keywords, r))
              | None -> (f, key, T_miss (k, keywords)))
        | _ -> (f, "", T_err (bad f.rid "mixed batch")))
      frames
  in
  let searches =
    List.filter_map
      (fun (_, _, st) ->
        match st with
        | T_miss (k, kw) -> Some (Q.Plan.compile_search ~top:k kw)
        | _ -> None)
      states
  in
  let results =
    if searches = [] then [] else run_searches t ~level searches
  in
  let rem = ref results in
  List.map
    (fun ((f : Wire.req_frame), key, st) ->
      match st with
      | T_err r -> r
      | T_hit (kw, result) ->
          audit_topk ~level kw result;
          Wire.Result { rid = f.rid; result }
      | T_miss (_, kw) ->
          let entries =
            match !rem with
            | e :: tl ->
                rem := tl;
                e
            | [] -> []
          in
          let result =
            Wire.Hits
              (List.map
                 (fun (en : Q.Ranking.entry) -> (en.doc, en.score))
                 entries)
          in
          cache_add t key result;
          audit_topk ~level kw result;
          Wire.Result { rid = f.rid; result })
    states

let exec_zoom t ~level (f : Wire.req_frame) =
  match f.req with
  | Wire.Zoom_out { entry; run } -> (
      match Q.Repository.find (repo t) entry with
      | exception Not_found -> unknown_entry f.rid entry
      | e -> (
          match List.nth_opt e.executions run with
          | None ->
              bad f.rid (Printf.sprintf "run %d out of range for %s" run entry)
          | Some exec ->
              let gate, fp = gate_for t e level in
              let key =
                Level_cache.key ~fingerprint:fp ~request:(digest_of f)
              in
              let result =
                match cache_find t ~level key with
                | Some r -> r
                | None ->
                    let view = Q.Access_gate.exec_view gate exec in
                    let r =
                      Wire.View
                        {
                          view_prefix = W.Exec_view.prefix view;
                          view_nodes = List.length (W.Exec_view.nodes view);
                        }
                    in
                    cache_add t key r;
                    r
              in
              (match result with
               | Wire.View { view_nodes; _ } ->
                   Q.Access_gate.audit_view gate ~op:"server.zoom_out"
                     ~nodes:view_nodes
               | _ -> ());
              Wire.Result { rid = f.rid; result }))
  | _ -> bad f.rid "mixed batch"

(* {2 Streaming ingestion}

   All [Append] frames of one scheduler batch commit as a single
   {!D.Live_repo.append_streaming} call — one WAL batch, one fsync'd
   commit record, one published generation. Frames whose mutation
   cannot apply (duplicate entry, unknown workload) are answered
   individually with [bad-request] after a dry run on a scratch
   snapshot, so one bad frame never poisons the batch. *)

type a_state = A_err of Wire.response | A_ok of Q.Repository.mutation

let exec_append_group t ~level frames =
  match (t.backing, t.appender) with
  | Frozen _, _ ->
      List.map
        (fun (f : Wire.req_frame) ->
          bad f.rid "repository is frozen: no live store mounted")
        frames
  | Sharded _, _ ->
      List.map
        (fun (f : Wire.req_frame) ->
          bad f.rid "sharded store is served read-only: append via the CLI")
        frames
  | Live _, None ->
      List.map
        (fun (f : Wire.req_frame) -> bad f.rid "server accepts no appends")
        frames
  | Live lr, Some make_mutation ->
      let scratch =
        Q.Repository.freeze (D.Durable_repo.repo (D.Live_repo.store lr))
      in
      let states =
        List.map
          (fun (f : Wire.req_frame) ->
            match f.req with
            | Wire.Append { entry; workload; seed } -> (
                match
                  let m = make_mutation ~entry ~workload ~seed in
                  Q.Repository.validate scratch m;
                  Q.Repository.apply scratch m;
                  m
                with
                | m -> (f, A_ok m)
                | exception Invalid_argument msg -> (f, A_err (bad f.rid msg)))
            | _ -> (f, A_err (bad f.rid "mixed batch")))
          frames
      in
      let muts =
        List.filter_map
          (fun (_, st) -> match st with A_ok m -> Some m | A_err _ -> None)
          states
      in
      let committed =
        if muts = [] then None
        else
          match D.Live_repo.append_streaming lr muts with
          | g -> Some (Ok g)
          | exception Invalid_argument msg -> Some (Error msg)
      in
      (match committed with
      | Some (Ok _) ->
          Obs.Audit_log.record ~op:"server.append" ~level
            ~nodes:(List.length muts) Obs.Audit_log.Allowed
      | _ -> ());
      List.map
        (fun ((f : Wire.req_frame), st) ->
          match (st, committed) with
          | A_err r, _ -> r
          | A_ok _, Some (Ok g) ->
              Wire.Result
                {
                  rid = f.rid;
                  result =
                    Wire.Committed
                      {
                        generation = g.D.Live_repo.gen_id;
                        lsn = g.D.Live_repo.gen_lsn;
                      };
                }
          | A_ok _, Some (Error msg) -> bad f.rid msg
          | A_ok _, None -> bad f.rid "empty batch")
        states

(* {2 Durable erasure}

   Each erase is a full history rewrite — journal, checkpoint, compact,
   prune, plus the LSM segment rewrite — so frames execute one at a
   time, live backing only. Erasure is governed by the entry policy's
   audit level (the level that sees everything the policy mentions): a
   caller below it is refused with only that floor recorded, the same
   claimed-floor discipline every other denial follows. *)

let exec_erase t ~level (f : Wire.req_frame) =
  match f.req with
  | Wire.Erase { entry; data } -> (
      match t.backing with
      | Frozen _ -> bad f.rid "repository is frozen: no live store mounted"
      | Sharded _ ->
          bad f.rid "sharded store is served read-only: erase via the CLI"
      | Live lr -> (
          match Q.Repository.find (repo t) entry with
          | exception Not_found -> unknown_entry f.rid entry
          | e ->
              let floor = Wfpriv_privacy.Policy.audit_level e.policy in
              if level < floor then begin
                Obs.Counter.incr m_denied ~at:level;
                Obs.Audit_log.record ~op:"server.erase" ~level
                  (Obs.Audit_log.Denied { floor });
                Wire.Error
                  {
                    rid = f.rid;
                    code = Wire.Privilege;
                    retryable = false;
                    floor = Some floor;
                    message = "erasure requires the entry's audit level";
                  }
              end
              else
                let mutation =
                  Q.Repository.Erase { entry_name = entry; data_name = data }
                in
                (match D.Live_repo.erase lr mutation with
                | report ->
                    Obs.Audit_log.record ~op:"server.erase" ~level ~query:entry
                      ~nodes:report.D.Durable_repo.er_dropped_segments
                      Obs.Audit_log.Allowed;
                    (* The frozen-path index (if one was built) may hold
                       the erased entry; drop it so the next top-k
                       rebuilds from the surviving corpus. *)
                    t.index <- None;
                    Wire.Result
                      {
                        rid = f.rid;
                        result =
                          Wire.Committed
                            {
                              generation = report.D.Durable_repo.er_generation;
                              lsn = (D.Live_repo.pin lr).D.Live_repo.gen_lsn;
                            };
                      }
                | exception Invalid_argument msg -> bad f.rid msg)))
  | _ -> bad f.rid "mixed batch"

let exec_stats _t ~level (f : Wire.req_frame) =
  match f.req with
  | Wire.Stats { prefix } ->
      let counters =
        match prefix with
        | None -> Obs.Registry.observer_counters ~level
        | Some p -> Obs.Registry.observer_counters_prefixed ~prefix:p ~level
      in
      Wire.Result { rid = f.rid; result = Wire.Counters counters }
  | _ -> bad f.rid "mixed batch"

(* All frames of a batch share a batch key, hence a kind (and for
   queries an entry and run). Responses in input order. *)
let exec_frames t ~level frames =
  match (List.hd frames : Wire.req_frame).req with
  | Wire.Query { entry; run; _ } ->
      Obs.Histogram.time h_lat_query (fun () ->
          exec_query_group t ~level ~entry ~run frames)
  | Wire.Topk _ ->
      Obs.Histogram.time h_lat_topk (fun () -> exec_topk_group t ~level frames)
  | Wire.Zoom_out _ ->
      Obs.Histogram.time h_lat_zoom (fun () ->
          List.map (exec_zoom t ~level) frames)
  | Wire.Stats _ ->
      Obs.Histogram.time h_lat_stats (fun () ->
          List.map (exec_stats t ~level) frames)
  | Wire.Append _ ->
      Obs.Histogram.time h_lat_append (fun () ->
          exec_append_group t ~level frames)
  | Wire.Erase _ ->
      Obs.Histogram.time h_lat_erase (fun () ->
          List.map (exec_erase t ~level) frames)

(* {2 Admission} *)

(* A privilege denial records only the required floor (the claimed
   level), never what was asked — and is filed at the server's ceiling
   so the trail itself stays below it. *)
let validate t (f : Wire.req_frame) =
  if f.level < 0 then Some (bad f.rid "negative privilege level")
  else if f.level > t.cfg.max_level then begin
    Obs.Counter.incr m_denied ~at:t.cfg.max_level;
    Obs.Audit_log.record ~op:"server.denied" ~level:t.cfg.max_level
      (Obs.Audit_log.Denied { floor = f.level });
    Some
      (Wire.Error
         {
           rid = f.rid;
           code = Wire.Privilege;
           retryable = false;
           floor = Some f.level;
           message = "privilege level above server ceiling";
         })
  end
  else None

let audit_shed ~level =
  Obs.Audit_log.record ~op:"server.shed" ~level
    (Obs.Audit_log.Denied { floor = level })

let handle t ~client:_ (f : Wire.req_frame) =
  match validate t f with
  | Some r -> respond t r
  | None ->
      Obs.Counter.incr m_requests ~at:f.level;
      respond t (List.hd (exec_frames t ~level:f.level [ f ]))

let submit t ~client ?(mode = Wire.Json) (f : Wire.req_frame) =
  match validate t f with
  | Some r -> Some (respond t r)
  | None -> (
      Obs.Counter.incr m_requests ~at:f.level;
      match f.req with
      | Wire.Stats _ ->
          (* Stats reads live counters: answered immediately, never
             queued, never cached. *)
          Some
            (respond t
               (Obs.Histogram.time h_lat_stats (fun () ->
                    exec_stats t ~level:f.level f)))
      | _ -> (
          let cost =
            match f.req with
            | Wire.Zoom_out _ | Wire.Append _ | Wire.Erase _ ->
                Scheduler.Expensive
            | _ -> Scheduler.Cheap
          in
          match
            Scheduler.admit t.sched ~client ~level:f.level ~cost
              ~deadline_ms:f.deadline_ms { jm = mode; jf = f }
          with
          | Ok _ -> None
          | Error reject ->
              let message =
                match reject with
                | Scheduler.Queue_full -> "queue full; retry later"
                | Scheduler.Inflight_exceeded ->
                    "client in-flight cap exceeded; retry later"
              in
              audit_shed ~level:f.level;
              Some
                (respond t
                   (Wire.Error
                      {
                        rid = f.rid;
                        code = Wire.Over_capacity;
                        retryable = true;
                        floor = None;
                        message;
                      }))))

let batch_key (j : job) =
  match j.jf.req with
  | Wire.Query { entry; run; _ } -> Printf.sprintf "q/%s/%d" entry run
  | Wire.Topk _ -> "t"
  | Wire.Zoom_out { entry; run } -> Printf.sprintf "z/%s/%d" entry run
  | Wire.Stats _ -> "s"
  | Wire.Append _ -> "a" (* the whole batch commits as one generation *)
  | Wire.Erase _ -> "e" (* grouped for ordering; executed one at a time *)

let cycle t =
  (* One LSM merge step per cycle: background maintenance rides the
     serving loop without a thread, bounded so a deep merge backlog
     cannot stall the queues. No-op when nothing is pending (and always
     on a frozen backing). *)
  (match t.backing with
  | Live lr -> ignore (D.Live_repo.maintain lr)
  | Frozen _ | Sharded _ -> ());
  let events = Scheduler.drain t.sched ~batch_key () in
  List.concat_map
    (fun ev ->
      match ev with
      | Scheduler.Shed (item : job Scheduler.item) ->
          Scheduler.finish t.sched item;
          audit_shed ~level:item.level;
          [
            ( item.client,
              item.payload.jm,
              respond t
                (Wire.Error
                   {
                     rid = item.payload.jf.rid;
                     code = Wire.Deadline_exceeded;
                     retryable = true;
                     floor = None;
                     message = "deadline exceeded in queue; retry later";
                   }) );
          ]
      | Scheduler.Batch items ->
          let frames =
            List.map (fun (it : job Scheduler.item) -> it.payload.jf) items
          in
          let responses =
            exec_frames t
              ~level:(List.hd items : job Scheduler.item).level
              frames
          in
          List.iter (Scheduler.finish t.sched) items;
          List.map2
            (fun (it : job Scheduler.item) r ->
              (it.client, it.payload.jm, respond t r))
            items responses)
    events

let drain_all t =
  let rec go acc =
    match cycle t with [] -> List.concat (List.rev acc) | rs -> go (rs :: acc)
  in
  go []

(* Idle-time LSM maintenance: burn down the merge backlog while the
   serving loop has nothing else to do (the select-timeout path of
   {!serve_tcp}), bounded per call so a newly arrived request never
   waits behind more than [max_steps] merge steps. *)
let maintain_idle ?(max_steps = 4) t =
  match t.backing with
  | Live lr ->
      let steps = ref 0 in
      while !steps < max_steps && D.Live_repo.maintain lr do
        incr steps
      done;
      !steps
  | Frozen _ | Sharded _ -> 0

(* {2 Front-ends} *)

(* Parse every complete frame of [buf], submit each; immediate
   responses go through [emit]. Returns [Some message] on a corrupt
   frame (the caller answers once and stops reading). The unconsumed
   tail stays in [buf]. *)
let feed t ~client buf emit =
  let s = Buffer.contents buf in
  let pos = ref 0 in
  let corrupt = ref None in
  let continue = ref true in
  while !continue do
    if !pos >= String.length s || !corrupt <> None then continue := false
    else
      match Wire.decode_request ~pos:!pos s with
      | Wire.Need_more -> continue := false
      | Wire.Corrupt m -> corrupt := Some m
      | Wire.Frame (f, used) ->
          let mode = Wire.mode_at ~pos:!pos s in
          pos := !pos + used;
          (match submit t ~client ~mode f with
           | Some r -> emit mode r
           | None -> ())
  done;
  let rest = String.sub s !pos (String.length s - !pos) in
  Buffer.clear buf;
  Buffer.add_string buf rest;
  !corrupt

let corrupt_response message =
  Wire.Error
    {
      rid = 0;
      code = Wire.Bad_request;
      retryable = false;
      floor = None;
      message;
    }

let serve_channels t ic oc =
  let written = ref 0 in
  let emit mode r =
    output_string oc (Wire.encode_response mode r);
    incr written
  in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let stop = ref false in
  while not !stop do
    match input ic chunk 0 (Bytes.length chunk) with
    | 0 -> stop := true
    | exception End_of_file -> stop := true
    | n -> (
        Buffer.add_subbytes buf chunk 0 n;
        match feed t ~client:0 buf (emit) with
        | None -> ()
        | Some m ->
            emit Wire.Json (respond t (corrupt_response m));
            stop := true)
  done;
  List.iter (fun (_, mode, r) -> emit mode r) (drain_all t);
  flush oc;
  !written

let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable out : string; (* encoded responses not yet written *)
  mutable closing : bool; (* EOF or corrupt: flush out, then close *)
}

let serve_tcp t ~port ?port_file ?max_requests ?timeout_s () =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen lsock 64;
  Unix.set_nonblock lsock;
  (match (Unix.getsockname lsock, port_file) with
  | Unix.ADDR_INET (_, p), Some file ->
      write_atomic file (string_of_int p ^ "\n")
  | _ -> ());
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_client = ref 0 in
  let produced = ref 0 (* quota: responses routed, even to gone clients *) in
  let written = ref 0 in
  let deadline =
    match timeout_s with
    | Some s -> Unix.gettimeofday () +. s
    | None -> infinity
  in
  let enqueue c mode r =
    c.out <- c.out ^ Wire.encode_response mode r;
    incr produced;
    incr written
  in
  let quota_met () =
    match max_requests with Some m -> !produced >= m | None -> false
  in
  let stop = ref false in
  while not !stop do
    if Unix.gettimeofday () > deadline then stop := true
    else begin
      let rds =
        lsock
        :: Hashtbl.fold
             (fun _ c acc -> if c.closing then acc else c.fd :: acc)
             conns []
      in
      let wrs =
        Hashtbl.fold
          (fun _ c acc -> if c.out <> "" then c.fd :: acc else acc)
          conns []
      in
      let tick = if Scheduler.pending t.sched > 0 then 0.0 else 0.05 in
      let r, w, _ =
        try Unix.select rds wrs [] tick
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      (* Select timed out with nothing to read, write, or schedule: the
         loop is idle, so spend the lull on background LSM merges
         instead of sleeping through the backlog. *)
      if r = [] && w = [] && Scheduler.pending t.sched = 0 then
        ignore (maintain_idle t);
      if List.mem lsock r then begin
        let rec accept_all () =
          match Unix.accept lsock with
          | fd, _ ->
              Unix.set_nonblock fd;
              incr next_client;
              Hashtbl.replace conns !next_client
                { fd; inbuf = Buffer.create 1024; out = ""; closing = false };
              accept_all ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_all ()
        in
        accept_all ()
      end;
      let chunk = Bytes.create 4096 in
      Hashtbl.iter
        (fun id c ->
          if (not c.closing) && List.mem c.fd r then
            match Unix.read c.fd chunk 0 (Bytes.length chunk) with
            | 0 -> c.closing <- true
            | n -> (
                Buffer.add_subbytes c.inbuf chunk 0 n;
                match feed t ~client:id c.inbuf (enqueue c) with
                | None -> ()
                | Some m ->
                    enqueue c Wire.Json (respond t (corrupt_response m));
                    c.closing <- true)
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                ()
            | exception Unix.Unix_error (_, _, _) -> c.closing <- true)
        conns;
      List.iter
        (fun (client, mode, resp) ->
          match Hashtbl.find_opt conns client with
          | Some c -> enqueue c mode resp
          | None -> incr produced (* client gone; drop the bytes *))
        (cycle t);
      Hashtbl.iter
        (fun _ c ->
          if c.out <> "" && List.mem c.fd w then
            let b = Bytes.of_string c.out in
            match Unix.write c.fd b 0 (Bytes.length b) with
            | n -> c.out <- String.sub c.out n (String.length c.out - n)
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                ()
            | exception Unix.Unix_error (_, _, _) ->
                c.out <- "";
                c.closing <- true)
        conns;
      let dead =
        Hashtbl.fold
          (fun id c acc ->
            if c.closing && c.out = "" then (id, c) :: acc else acc)
          conns []
      in
      List.iter
        (fun (id, c) ->
          (try Unix.close c.fd with Unix.Unix_error _ -> ());
          Hashtbl.remove conns id)
        dead;
      if
        quota_met ()
        && Scheduler.pending t.sched = 0
        && Hashtbl.fold (fun _ c acc -> acc && c.out = "") conns true
      then stop := true
    end
  done;
  Hashtbl.iter
    (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    conns;
  (try Unix.close lsock with Unix.Unix_error _ -> ());
  !written
