(** Admission control and batching for the serving layer.

    Requests are admitted into bounded per-privilege-level queues, two
    per level: one for cheap work (lookups, top-k, structural query
    batches) and one for expensive work (zoom-outs, which materialize
    whole views). A drain cycle visits levels round-robin, emits cheap
    batches first — consecutive items whose caller-supplied batch key
    matches are fused into one batch, the hook the server uses to land
    compatible plans on one {!Wfpriv_query.Engine.run_batch} — and caps
    the expensive items it releases per cycle, so a flood of zoom-outs
    can delay cheap lookups by at most [expensive_per_cycle] expensive
    evaluations per cycle, never starve them.

    Backpressure is threefold, all surfaced as {e retryable} rejections
    so clients back off instead of piling on:
    - a full level queue rejects at admission ([Queue_full]);
    - a client exceeding its in-flight cap rejects at admission
      ([Inflight_exceeded]);
    - an admitted item whose deadline passes while queued is shed at
      drain time ({!Shed}).

    The clock is injected ([?now]) so tests and the E18 load generator
    drive shedding deterministically with a virtual clock. The scheduler
    itself is single-domain: parallelism happens {e inside} a batch
    (the engine's domain pool), not across the control loop. *)

type cost = Cheap | Expensive

type config = {
  queue_capacity : int;  (** per (level, cost-class) queue *)
  inflight_cap : int;  (** per client, queued + executing *)
  batch_limit : int;  (** max items fused into one cheap batch *)
  expensive_per_cycle : int;  (** expensive items released per drain *)
}

val default_config : config
(** [{ queue_capacity = 256; inflight_cap = 64; batch_limit = 16;
      expensive_per_cycle = 1 }] *)

type 'a item = {
  client : int;
  level : int;
  cost : cost;
  deadline : float;  (** absolute seconds; [infinity] = none *)
  seq : int;  (** admission order, globally unique *)
  payload : 'a;
}

type 'a t

val create : ?config:config -> ?now:(unit -> float) -> unit -> 'a t
(** [now] defaults to [Unix.gettimeofday]. *)

val config : 'a t -> config

type reject = Queue_full | Inflight_exceeded

val admit :
  'a t ->
  client:int ->
  level:int ->
  cost:cost ->
  ?deadline_ms:int ->
  'a ->
  ('a item, reject) result
(** [deadline_ms] is relative to [now ()] at admission; [0] (the
    default) means no deadline. A rejected item was never queued; the
    caller answers with a retryable error. *)

val finish : 'a t -> 'a item -> unit
(** The item's response has been produced (result, error or shed):
    release its in-flight slot. *)

type 'a event =
  | Batch of 'a item list
      (** non-empty; same level, same cost, and for cheap items the same
          batch key — execute together, answer each *)
  | Shed of 'a item  (** deadline expired in queue; answer retryable *)

val drain :
  'a t -> batch_key:('a -> string) -> ?max_events:int -> unit -> 'a event list
(** One scheduling cycle over all levels (round-robin, rotating the
    starting level so no level is systematically first). Expired items
    are shed before batching. The caller must {!finish} every item of
    every event. An empty result means the queues are empty. *)

val pending : 'a t -> int
(** Items admitted but not yet drained. *)

val queue_depth : 'a t -> level:int -> int
(** Queued items at one level, both cost classes. *)
