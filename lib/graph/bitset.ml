type t = { mutable words : int array; cap : int }

let bits_per_word = 63 (* OCaml native ints hold 63 usable bits on 64-bit *)

let create cap =
  if cap < 0 then invalid_arg "Bitset.create: negative capacity";
  let nwords = (cap + bits_per_word - 1) / bits_per_word in
  { words = Array.make (max nwords 1) 0; cap }

let capacity s = s.cap

let widen s cap =
  if cap < s.cap then
    invalid_arg
      (Printf.sprintf "Bitset.widen: capacity shrinks (%d to %d)" s.cap cap);
  let nwords = (cap + bits_per_word - 1) / bits_per_word in
  let words = Array.make (max nwords 1) 0 in
  Array.blit s.words 0 words 0 (Array.length s.words);
  { words; cap }

let check s i op =
  if i < 0 || i >= s.cap then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d out of [0,%d)" op i s.cap)

let add s i =
  check s i "add";
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) <- s.words.(w) lor (1 lsl b)

let remove s i =
  check s i "remove";
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) <- s.words.(w) land lnot (1 lsl b)

let mem s i =
  check s i "mem";
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) land (1 lsl b) <> 0

(* SWAR popcount over the 63-bit word. The classic 64-bit masks do not
   fit an OCaml int literal, so each is assembled from its 32-bit half;
   [lsl] wraps modulo 2^63, which only drops bit 63 — a bit the word
   never has. The final byte-sum multiply also wraps mod 2^63, but the
   count is read from bits 56..62 and never exceeds 63, so the truncated
   top byte still holds it. *)
let mask_5555 = (0x55555555 lsl 32) lor 0x55555555
let mask_3333 = (0x33333333 lsl 32) lor 0x33333333
let mask_0f0f = (0x0f0f0f0f lsl 32) lor 0x0f0f0f0f
let mask_0101 = (0x01010101 lsl 32) lor 0x01010101

let popcount x =
  let x = x - ((x lsr 1) land mask_5555) in
  let x = (x land mask_3333) + ((x lsr 2) land mask_3333) in
  let x = (x + (x lsr 4)) land mask_0f0f in
  (x * mask_0101) lsr 56

let cardinal s =
  let acc = ref 0 in
  for w = 0 to Array.length s.words - 1 do
    let word = s.words.(w) in
    if word <> 0 then acc := !acc + popcount word
  done;
  !acc

let pop_count = cardinal
let is_empty s = Array.for_all (fun w -> w = 0) s.words
let copy s = { words = Array.copy s.words; cap = s.cap }
let clear s = Array.fill s.words 0 (Array.length s.words) 0

let check_same_cap a b op =
  if a.cap <> b.cap then
    invalid_arg (Printf.sprintf "Bitset.%s: capacity mismatch (%d vs %d)" op a.cap b.cap)

let union_into ~dst src =
  check_same_cap dst src "union_into";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let inter_into ~dst src =
  check_same_cap dst src "inter_into";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land src.words.(w)
  done

let diff_into ~dst src =
  check_same_cap dst src "diff_into";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land lnot src.words.(w)
  done

let equal a b = a.cap = b.cap && a.words = b.words

let subset a b =
  check_same_cap a b "subset";
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land lnot b.words.(w) <> 0 then ok := false
  done;
  !ok

(* Number of trailing zeros of a one-bit word [b = 1 lsl k]: the bits
   below the set bit, counted. *)
let ntz_pow2 b = popcount (b - 1)

let iter f s =
  for w = 0 to Array.length s.words - 1 do
    let word = ref s.words.(w) in
    if !word <> 0 then begin
      let base = w * bits_per_word in
      while !word <> 0 do
        let b = !word land (- !word) in
        f (base + ntz_pow2 b);
        word := !word land (!word - 1)
      done
    end
  done

let fold f s init =
  let acc = ref init in
  for w = 0 to Array.length s.words - 1 do
    let word = ref s.words.(w) in
    if !word <> 0 then begin
      let base = w * bits_per_word in
      while !word <> 0 do
        let b = !word land (- !word) in
        acc := f (base + ntz_pow2 b) !acc;
        word := !word land (!word - 1)
      done
    end
  done;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list cap xs =
  let s = create cap in
  List.iter (add s) xs;
  s

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Format.pp_print_int)
    (elements s)
