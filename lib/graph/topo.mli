(** Topological ordering, cycle detection and strongly connected components.

    Workflow specifications and executions are DAGs; these checks enforce
    the invariant at construction time, and SCCs are used when repairing
    clustered (composite) views that would otherwise create cycles. *)

val sort : Digraph.t -> int list option
(** [sort g] is [Some order] listing every node so that each edge goes from
    an earlier to a later node, or [None] when [g] is cyclic. The order is
    deterministic: Kahn's algorithm with a min-priority frontier, so among
    all valid orders the lexicographically smallest is returned. *)

val sort_exn : Digraph.t -> int list
(** Like {!sort} but raises [Invalid_argument] on a cyclic graph. *)

val is_dag : Digraph.t -> bool

val find_cycle : Digraph.t -> int list option
(** [find_cycle g] is [Some [v1; ...; vk]] with edges [v1->v2->...->vk->v1]
    when [g] has a cycle, else [None]. *)

val scc : Digraph.t -> int list list
(** Strongly connected components (Tarjan), each sorted increasingly, the
    list in reverse topological order of the condensation. *)

val condensation : Digraph.t -> Digraph.t * (int -> int)
(** [condensation g] is the DAG of SCCs plus the mapping from original node
    to its component id (components numbered by {!scc} position). *)
