(** Reachability queries and transitive closures.

    Structural privacy is stated in terms of reachability facts ("module M
    contributes to the data output by M′"), so this module provides both
    one-off DFS queries and a bitset-matrix transitive closure used when a
    whole graph's fact set must be compared against a view's. *)

val reaches : Digraph.t -> int -> int -> bool
(** [reaches g u v] is [true] iff there is a (possibly empty) path
    [u -> ... -> v]. [reaches g u u = true] whenever [u] is a node. *)

val reachable_from : Digraph.t -> int -> int list
(** Nodes reachable from [u] (including [u]), increasing order. *)

val co_reachable : Digraph.t -> int -> int list
(** Nodes that can reach [u] (including [u]), increasing order. *)

val between : Digraph.t -> src:int -> dst:int -> int list
(** Nodes lying on some path from [src] to [dst] (inclusive); empty when
    [dst] is unreachable. This is the induced-node set of the provenance
    subgraph between two nodes. *)

type closure
(** Transitive closure of a graph, supporting O(1) queries. *)

val closure : Digraph.t -> closure
(** Compute the full closure. O(V * E / 63) via bitset rows propagated in
    reverse topological order (falls back to per-node DFS on cyclic
    graphs). *)

val closure_reaches : closure -> int -> int -> bool
(** [closure_reaches c u v]: reflexive-transitive reachability. Nodes
    absent from the closed graph are never related. *)

val closure_facts : closure -> (int * int) list
(** All ordered pairs [(u, v)], [u <> v], with [u] reaching [v]; sorted.
    These are the "reachability facts" whose preservation defines view
    utility and whose concealment defines structural privacy. *)

val nb_facts : closure -> int
(** [List.length (closure_facts c)] without materializing the list. *)
