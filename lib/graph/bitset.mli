(** Dense, fixed-capacity bit sets over the integer universe [0, capacity).

    Used as rows of transitive-closure matrices and as compact node sets in
    reachability computations, where the node universe is known up front.
    All operations besides {!copy}, {!union} and {!inter} are constant-time
    or linear in the number of 63-bit words. *)

type t

val create : int -> t
(** [create capacity] is the empty set able to hold elements
    [0 .. capacity - 1]. Raises [Invalid_argument] if [capacity < 0]. *)

val capacity : t -> int
(** Number of elements the set can hold. *)

val widen : t -> int -> t
(** [widen s capacity] is a fresh set over the larger universe
    [0, capacity) holding exactly the elements of [s] — the word array is
    copied into the wider allocation, so the cost is [s]'s word count,
    not the new capacity's. Raises [Invalid_argument] if [capacity] is
    smaller than [s]'s. Grows closure rows in place of a rebuild when a
    graph is extended with appended nodes. *)

val add : t -> int -> unit
(** [add s i] inserts [i]. Raises [Invalid_argument] if [i] is out of
    range. *)

val remove : t -> int -> unit
(** [remove s i] deletes [i]; no-op when absent. *)

val mem : t -> int -> bool
(** Membership test. Raises [Invalid_argument] if out of range. *)

val cardinal : t -> int
(** Number of elements currently in the set. Skips zero words and counts
    set words with a SWAR popcount (no per-bit probing). *)

val pop_count : t -> int
(** Alias of {!cardinal} (the population count of the underlying bit
    vector). *)

val is_empty : t -> bool

val copy : t -> t

val clear : t -> unit
(** Remove every element. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every element of [src] to [dst]. The two sets
    must have equal capacity. *)

val inter_into : dst:t -> t -> unit
(** [inter_into ~dst src] removes from [dst] elements absent from [src]. *)

val diff_into : dst:t -> t -> unit
(** [diff_into ~dst src] removes from [dst] every element of [src]. *)

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] is in [b]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate elements in increasing order. Zero words are skipped and set
    bits are extracted with lowest-set-bit arithmetic, so cost is
    O(words + elements), not O(capacity). *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over elements in increasing order; same word-skipping fast path
    as {!iter}. *)

val elements : t -> int list
(** Elements in increasing order. *)

val of_list : int -> int list -> t
(** [of_list capacity xs] is the set of [xs]. *)

val pp : Format.formatter -> t -> unit
