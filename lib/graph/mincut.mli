(** Minimum s-t cuts on edge-weighted directed graphs.

    Structural privacy by deletion — "remove edges so no path connects
    module [u] to module [v]" while losing as little other provenance as
    possible — is exactly a minimum s-t cut. Edge weights model the utility
    of the dataflow link; unweighted cuts minimize the number of deleted
    edges. Solved with Edmonds–Karp (BFS augmenting paths), adequate for
    workflow-scale graphs. *)

type weights = int * int -> int
(** Capacity function over edges. Must be positive on every edge of the
    graph; violations raise [Invalid_argument] during {!min_cut}. *)

val uniform : weights
(** Every edge has capacity 1: minimize the number of deleted edges. *)

val max_flow : Digraph.t -> weights -> src:int -> dst:int -> int
(** Value of a maximum [src]->[dst] flow. 0 when either node is absent or
    [dst] unreachable. Raises [Invalid_argument] when [src = dst]. *)

val min_cut : Digraph.t -> weights -> src:int -> dst:int -> (int * int) list
(** A minimum-capacity set of edges whose removal disconnects [dst] from
    [src], sorted lexicographically. Empty when already disconnected.
    By max-flow/min-cut duality the returned set's total weight equals
    [max_flow]. *)

val disconnects : Digraph.t -> (int * int) list -> src:int -> dst:int -> bool
(** [disconnects g cut ~src ~dst] checks that removing [cut] from [g]
    leaves [dst] unreachable from [src] (validation helper). *)

val min_vertex_cut : Digraph.t -> src:int -> dst:int -> int list option
(** A minimum set of vertices (excluding [src] and [dst]) whose removal
    disconnects [dst] from [src], sorted — via the standard node-splitting
    reduction to edge min-cut. [Some []] when already disconnected;
    [None] when no vertex cut exists (a direct [src -> dst] edge).
    Raises [Invalid_argument] when [src = dst]. *)

val vertex_cut_disconnects : Digraph.t -> int list -> src:int -> dst:int -> bool
(** Validation helper for {!min_vertex_cut}. *)
