module Int_set = Set.Make (Int)

type t = {
  succ : (int, Int_set.t) Hashtbl.t;
  pred : (int, Int_set.t) Hashtbl.t;
  mutable nb_edges : int;
}

let create ?(initial_capacity = 16) () =
  {
    succ = Hashtbl.create initial_capacity;
    pred = Hashtbl.create initial_capacity;
    nb_edges = 0;
  }

let mem_node g u = Hashtbl.mem g.succ u

let add_node g u =
  if u < 0 then invalid_arg "Digraph.add_node: negative id";
  if not (mem_node g u) then begin
    Hashtbl.replace g.succ u Int_set.empty;
    Hashtbl.replace g.pred u Int_set.empty
  end

let succ_set g u =
  match Hashtbl.find_opt g.succ u with
  | Some s -> s
  | None -> raise Not_found

let pred_set g u =
  match Hashtbl.find_opt g.pred u with
  | Some s -> s
  | None -> raise Not_found

let mem_edge g u v =
  match Hashtbl.find_opt g.succ u with
  | Some s -> Int_set.mem v s
  | None -> false

let add_edge g u v =
  add_node g u;
  add_node g v;
  if not (mem_edge g u v) then begin
    Hashtbl.replace g.succ u (Int_set.add v (succ_set g u));
    Hashtbl.replace g.pred v (Int_set.add u (pred_set g v));
    g.nb_edges <- g.nb_edges + 1
  end

let remove_edge g u v =
  if mem_edge g u v then begin
    Hashtbl.replace g.succ u (Int_set.remove v (succ_set g u));
    Hashtbl.replace g.pred v (Int_set.remove u (pred_set g v));
    g.nb_edges <- g.nb_edges - 1
  end

let remove_node g u =
  if mem_node g u then begin
    Int_set.iter (fun v -> remove_edge g u v) (succ_set g u);
    Int_set.iter (fun w -> remove_edge g w u) (pred_set g u);
    Hashtbl.remove g.succ u;
    Hashtbl.remove g.pred u
  end

let nb_nodes g = Hashtbl.length g.succ
let nb_edges g = g.nb_edges
let succ g u = Int_set.elements (succ_set g u)
let pred g u = Int_set.elements (pred_set g u)
let out_degree g u = Int_set.cardinal (succ_set g u)
let in_degree g u = Int_set.cardinal (pred_set g u)

let nodes g =
  Hashtbl.fold (fun u _ acc -> u :: acc) g.succ [] |> List.sort compare

let edges g =
  Hashtbl.fold
    (fun u s acc -> Int_set.fold (fun v acc -> (u, v) :: acc) s acc)
    g.succ []
  |> List.sort compare

let iter_nodes f g = List.iter f (nodes g)
let iter_edges f g = List.iter (fun (u, v) -> f u v) (edges g)
let iter_succ f g u = Int_set.iter f (succ_set g u)
let iter_pred f g u = Int_set.iter f (pred_set g u)
let fold_nodes f g init = List.fold_left (fun acc u -> f u acc) init (nodes g)

let fold_edges f g init =
  List.fold_left (fun acc (u, v) -> f u v acc) init (edges g)

let copy g =
  { succ = Hashtbl.copy g.succ; pred = Hashtbl.copy g.pred; nb_edges = g.nb_edges }

let transpose g =
  { succ = Hashtbl.copy g.pred; pred = Hashtbl.copy g.succ; nb_edges = g.nb_edges }

let sources g =
  fold_nodes (fun u acc -> if in_degree g u = 0 then u :: acc else acc) g []
  |> List.rev

let sinks g =
  fold_nodes (fun u acc -> if out_degree g u = 0 then u :: acc else acc) g []
  |> List.rev

let of_edges ?(nodes = []) edge_list =
  let g = create () in
  List.iter (add_node g) nodes;
  List.iter (fun (u, v) -> add_edge g u v) edge_list;
  g

let induced g ~keep =
  let h = create () in
  iter_nodes (fun u -> if keep u then add_node h u) g;
  iter_edges (fun u v -> if keep u && keep v then add_edge h u v) g;
  h

let equal a b = nodes a = nodes b && edges a = edges b

let pp ppf g =
  Format.fprintf ppf "@[<v>nodes: %a@,edges: %a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    (nodes g)
    (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf (u, v) ->
         Format.fprintf ppf "%d->%d" u v))
    (edges g)
