type t = {
  entry : int;
  dom : (int, Bitset.t) Hashtbl.t; (* node -> dominator set (dense ids) *)
  index_of : (int, int) Hashtbl.t;
  node_of : int array;
}

let compute g ~entry =
  if not (Digraph.mem_node g entry) then
    invalid_arg "Dominators.compute: entry is not a node";
  let node_of = Array.of_list (Digraph.nodes g) in
  let n = Array.length node_of in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i u -> Hashtbl.replace index_of u i) node_of;
  (* Reverse post-order from the entry for fast convergence. *)
  let order = ref [] in
  let visited = Hashtbl.create n in
  let rec dfs u =
    if not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      List.iter dfs (Digraph.succ g u);
      order := u :: !order
    end
  in
  dfs entry;
  let rpo = !order in
  let dom = Hashtbl.create n in
  let full () =
    let s = Bitset.create n in
    List.iter (fun u -> Bitset.add s (Hashtbl.find index_of u)) rpo;
    s
  in
  List.iter
    (fun u ->
      let s = if u = entry then Bitset.create n else full () in
      if u = entry then Bitset.add s (Hashtbl.find index_of entry);
      Hashtbl.replace dom u s)
    rpo;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun u ->
        if u <> entry then begin
          let preds =
            List.filter (fun p -> Hashtbl.mem visited p) (Digraph.pred g u)
          in
          let acc =
            match preds with
            | [] -> Bitset.create n (* only the entry has no reachable preds *)
            | p :: rest ->
                let s = Bitset.copy (Hashtbl.find dom p) in
                List.iter (fun q -> Bitset.inter_into ~dst:s (Hashtbl.find dom q)) rest;
                s
          in
          Bitset.add acc (Hashtbl.find index_of u);
          if not (Bitset.equal acc (Hashtbl.find dom u)) then begin
            Hashtbl.replace dom u acc;
            changed := true
          end
        end)
      rpo
  done;
  { entry; dom; index_of; node_of }

let dominators t v =
  match Hashtbl.find_opt t.dom v with
  | None -> raise Not_found
  | Some s -> List.map (fun i -> t.node_of.(i)) (Bitset.elements s) |> List.sort compare

let dominates t d v =
  match (Hashtbl.find_opt t.dom v, Hashtbl.find_opt t.index_of d) with
  | Some s, Some i -> Bitset.mem s i
  | _ -> false

let strict_dominators t v = List.filter (fun d -> d <> v) (dominators t v)

let immediate_dominator t v =
  let strict = strict_dominators t v in
  if v = t.entry then None
  else begin
    (* The strict dominator dominated by every other strict dominator. *)
    List.find_opt
      (fun d -> List.for_all (fun d' -> dominates t d' d) strict)
      strict
  end
