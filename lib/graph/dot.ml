type node_style = { label : string; shape : string; fill : string option }

let default_node_style id =
  { label = string_of_int id; shape = "box"; fill = None }

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ?(name = "g") ?(node_style = default_node_style) ?edge_label g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=TB;\n";
  List.iter
    (fun u ->
      let st = node_style u in
      let fill =
        match st.fill with
        | Some c -> Printf.sprintf ", style=filled, fillcolor=\"%s\"" (escape c)
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s%s];\n" u
           (escape st.label) st.shape fill))
    (Digraph.nodes g);
  List.iter
    (fun (u, v) ->
      let lbl =
        match edge_label with
        | Some f -> (
            match f u v with
            | Some s -> Printf.sprintf " [label=\"%s\"]" (escape s)
            | None -> "")
        | None -> ""
      in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" u v lbl))
    (Digraph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let render_to_file ?name ?node_style ?edge_label path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?name ?node_style ?edge_label g))
