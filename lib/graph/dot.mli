(** Graphviz DOT rendering for digraphs.

    Callers provide naming and styling callbacks so the same renderer
    serves workflow specifications, views and execution (provenance)
    graphs. Output is deterministic (nodes and edges emitted in sorted
    order) so goldens can be tested. *)

type node_style = {
  label : string;
  shape : string;  (** e.g. ["box"], ["ellipse"], ["doubleoctagon"] *)
  fill : string option;  (** X11 color name; [None] = unfilled *)
}

val default_node_style : int -> node_style
(** Box labelled with the node id. *)

val render :
  ?name:string ->
  ?node_style:(int -> node_style) ->
  ?edge_label:(int -> int -> string option) ->
  Digraph.t ->
  string
(** [render g] is a complete [digraph { ... }] document. String labels are
    escaped. *)

val render_to_file :
  ?name:string ->
  ?node_style:(int -> node_style) ->
  ?edge_label:(int -> int -> string option) ->
  string ->
  Digraph.t ->
  unit
(** Write {!render} output to the given path. *)
