(** Dominators in rooted flow graphs.

    Node [d] dominates node [v] (w.r.t. an entry node) when every path
    from the entry to [v] passes through [d]. In provenance terms, the
    dominators of a data item's producer are the modules the data
    {e necessarily} flowed through — stronger information than
    reachability, and precisely what a debugging user wants when asking
    "which steps could have corrupted this output?" (paper Sec. 1).

    Implemented as the classic iterative data-flow computation
    ([dom(v) = {v} ∪ ⋂ dom(preds)]) over a reverse post-order; O(V·E)
    worst case, fast in practice on workflow graphs. Nodes unreachable
    from the entry have no dominator set. *)

type t

val compute : Digraph.t -> entry:int -> t
(** Raises [Invalid_argument] when [entry] is not a node. *)

val dominators : t -> int -> int list
(** All dominators of a node, sorted, including the node itself and the
    entry. Raises [Not_found] for nodes unreachable from the entry. *)

val dominates : t -> int -> int -> bool
(** [dominates t d v] — every entry→[v] path passes through [d]. False
    when [v] is unreachable. *)

val immediate_dominator : t -> int -> int option
(** The unique closest strict dominator; [None] for the entry itself.
    Raises [Not_found] for unreachable nodes. *)

val strict_dominators : t -> int -> int list
(** {!dominators} minus the node itself. *)
