(** Path queries: shortest paths and bounded path enumeration.

    Used by the query engine ("was [Expand SNP Set] executed before
    [Query OMIM]?" needs a witness path) and by the structural-privacy
    analyses (counting distinct information-flow routes between modules). *)

val shortest : Digraph.t -> src:int -> dst:int -> int list option
(** [shortest g ~src ~dst] is the node sequence of a minimum-hop path from
    [src] to [dst] (inclusive), or [None]. BFS; deterministic because
    successors are explored in increasing order. [Some [src]] when
    [src = dst]. *)

val distance : Digraph.t -> src:int -> dst:int -> int option
(** Hop count of {!shortest}. *)

val count_paths : Digraph.t -> src:int -> dst:int -> int
(** Number of distinct simple paths from [src] to [dst]. Only meaningful on
    DAGs (raises [Invalid_argument] on cyclic input); linear in edges via
    memoized topological sweep. Counts saturate at [max_int]. *)

val enumerate : ?limit:int -> Digraph.t -> src:int -> dst:int -> int list list
(** Up to [limit] (default 100) simple paths from [src] to [dst], each as a
    node list, in lexicographic order. DAG-only ([Invalid_argument]
    otherwise). *)

val longest_path_length : Digraph.t -> int
(** Length (in edges) of the longest path in a DAG — the workflow's depth.
    Raises [Invalid_argument] on cyclic input; 0 for an empty graph. *)
