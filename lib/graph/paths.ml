let shortest g ~src ~dst =
  if (not (Digraph.mem_node g src)) || not (Digraph.mem_node g dst) then None
  else begin
    let parent = Hashtbl.create 16 in
    let queue = Queue.create () in
    Hashtbl.replace parent src src;
    Queue.add src queue;
    let found = ref (src = dst) in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if not (Hashtbl.mem parent v) then begin
            Hashtbl.replace parent v u;
            if v = dst then found := true;
            Queue.add v queue
          end)
        (Digraph.succ g u)
    done;
    if not (Hashtbl.mem parent dst) then None
    else begin
      let rec build v acc =
        if v = src then src :: acc else build (Hashtbl.find parent v) (v :: acc)
      in
      Some (build dst [])
    end
  end

let distance g ~src ~dst =
  Option.map (fun p -> List.length p - 1) (shortest g ~src ~dst)

let require_dag g op =
  if not (Topo.is_dag g) then
    invalid_arg (Printf.sprintf "Paths.%s: graph is cyclic" op)

let saturating_add a b = if a > max_int - b then max_int else a + b

let count_paths g ~src ~dst =
  require_dag g "count_paths";
  if (not (Digraph.mem_node g src)) || not (Digraph.mem_node g dst) then 0
  else begin
    (* counts.(u) = #paths u ~> dst, computed by memoized recursion. *)
    let memo = Hashtbl.create 16 in
    let rec count u =
      match Hashtbl.find_opt memo u with
      | Some c -> c
      | None ->
          let c =
            if u = dst then 1
            else
              List.fold_left
                (fun acc v -> saturating_add acc (count v))
                0 (Digraph.succ g u)
          in
          Hashtbl.replace memo u c;
          c
    in
    count src
  end

let enumerate ?(limit = 100) g ~src ~dst =
  require_dag g "enumerate";
  if (not (Digraph.mem_node g src)) || not (Digraph.mem_node g dst) then []
  else begin
    let results = ref [] and n = ref 0 in
    let rec go u prefix =
      if !n < limit then
        if u = dst then begin
          results := List.rev (dst :: prefix) :: !results;
          incr n
        end
        else List.iter (fun v -> go v (u :: prefix)) (Digraph.succ g u)
    in
    go src [];
    List.rev !results
  end

let longest_path_length g =
  require_dag g "longest_path_length";
  let order = Topo.sort_exn g in
  let depth = Hashtbl.create 16 in
  List.iter
    (fun u ->
      let d =
        List.fold_left
          (fun acc p -> max acc (1 + Hashtbl.find depth p))
          0 (Digraph.pred g u)
      in
      Hashtbl.replace depth u d)
    order;
  Hashtbl.fold (fun _ d acc -> max acc d) depth 0
