(** Mutable directed graphs over integer node identifiers.

    This is the shared substrate for workflow specifications, execution
    (provenance) graphs, views and the privacy transformations. Nodes are
    arbitrary non-negative [int] identifiers assigned by the caller; edges
    are unlabelled here (layers above keep their own [edge -> payload]
    tables keyed by the [(src, dst)] pair).

    Parallel edges are not represented: adding an existing edge is a no-op.
    Self-loops are allowed by the structure (workflow layers reject them at
    construction time). All query operations are O(degree) or better. *)

type t

val create : ?initial_capacity:int -> unit -> t
(** Fresh empty graph. [initial_capacity] sizes internal tables. *)

val add_node : t -> int -> unit
(** Insert an isolated node; no-op when already present. Raises
    [Invalid_argument] on negative ids. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts edge [u -> v], inserting both endpoints as
    needed. No-op when the edge already exists. *)

val remove_edge : t -> int -> int -> unit
(** Delete an edge; no-op when absent. *)

val remove_node : t -> int -> unit
(** Delete a node and all incident edges; no-op when absent. *)

val mem_node : t -> int -> bool
val mem_edge : t -> int -> int -> bool

val nb_nodes : t -> int
val nb_edges : t -> int

val succ : t -> int -> int list
(** Successors of a node in increasing order. Raises [Not_found] when the
    node is absent. *)

val pred : t -> int -> int list
(** Predecessors in increasing order. Raises [Not_found] when absent. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val nodes : t -> int list
(** All nodes in increasing order. *)

val edges : t -> (int * int) list
(** All edges, sorted lexicographically. *)

val iter_nodes : (int -> unit) -> t -> unit
val iter_edges : (int -> int -> unit) -> t -> unit
val iter_succ : (int -> unit) -> t -> int -> unit
val iter_pred : (int -> unit) -> t -> int -> unit

val fold_nodes : (int -> 'a -> 'a) -> t -> 'a -> 'a
val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val copy : t -> t
(** Deep, independent copy. *)

val transpose : t -> t
(** Graph with every edge reversed. *)

val sources : t -> int list
(** Nodes with in-degree 0, increasing order. *)

val sinks : t -> int list
(** Nodes with out-degree 0, increasing order. *)

val of_edges : ?nodes:int list -> (int * int) list -> t
(** Build from an edge list, plus optional extra isolated nodes. *)

val induced : t -> keep:(int -> bool) -> t
(** Subgraph induced by the nodes satisfying [keep]. *)

val equal : t -> t -> bool
(** Same node set and edge set. *)

val pp : Format.formatter -> t -> unit
