let dfs_from g u =
  let visited = Hashtbl.create 16 in
  let rec go u =
    if not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      Digraph.iter_succ go g u
    end
  in
  if Digraph.mem_node g u then go u;
  visited

let reaches g u v =
  if (not (Digraph.mem_node g u)) || not (Digraph.mem_node g v) then false
  else Hashtbl.mem (dfs_from g u) v

let reachable_from g u =
  Hashtbl.fold (fun k () acc -> k :: acc) (dfs_from g u) []
  |> List.sort compare

let co_reachable g u = reachable_from (Digraph.transpose g) u

let between g ~src ~dst =
  let fwd = dfs_from g src in
  let bwd = dfs_from (Digraph.transpose g) dst in
  if Hashtbl.mem fwd dst then
    Hashtbl.fold
      (fun k () acc -> if Hashtbl.mem bwd k then k :: acc else acc)
      fwd []
    |> List.sort compare
  else []

type closure = {
  index_of : (int, int) Hashtbl.t;
  node_of : int array;
  rows : Bitset.t array; (* rows.(i) = dense indices reachable from node i *)
}

let closure g =
  let node_of = Array.of_list (Digraph.nodes g) in
  let n = Array.length node_of in
  let index_of = Hashtbl.create (max n 1) in
  Array.iteri (fun i u -> Hashtbl.replace index_of u i) node_of;
  let rows = Array.init n (fun _ -> Bitset.create n) in
  let fill_row_via_dfs u =
    let i = Hashtbl.find index_of u in
    let visited = dfs_from g u in
    Hashtbl.iter (fun v () -> Bitset.add rows.(i) (Hashtbl.find index_of v)) visited
  in
  (match Topo.sort g with
  | Some order ->
      (* Reverse topological order: a node's row is itself plus the union of
         its successors' already-complete rows. *)
      List.iter
        (fun u ->
          let i = Hashtbl.find index_of u in
          Bitset.add rows.(i) i;
          Digraph.iter_succ
            (fun v ->
              let j = Hashtbl.find index_of v in
              Bitset.union_into ~dst:rows.(i) rows.(j))
            g u)
        (List.rev order)
  | None -> Array.iter fill_row_via_dfs node_of);
  { index_of; node_of; rows }

let closure_reaches c u v =
  match (Hashtbl.find_opt c.index_of u, Hashtbl.find_opt c.index_of v) with
  | Some i, Some j -> Bitset.mem c.rows.(i) j
  | _ -> false

let closure_facts c =
  let facts = ref [] in
  Array.iteri
    (fun i row ->
      Bitset.iter
        (fun j ->
          if i <> j then facts := (c.node_of.(i), c.node_of.(j)) :: !facts)
        row)
    c.rows;
  List.sort compare !facts

let nb_facts c =
  let total = ref 0 in
  Array.iteri
    (fun i row ->
      let card = Bitset.cardinal row in
      total := !total + card - (if Bitset.mem row i then 1 else 0))
    c.rows;
  !total
