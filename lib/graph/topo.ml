module Int_map = Map.Make (Int)

(* Kahn's algorithm with a sorted-set frontier for a deterministic,
   lexicographically-smallest order. *)
let sort g =
  let module S = Set.Make (Int) in
  let indeg =
    Digraph.fold_nodes (fun u m -> Int_map.add u (Digraph.in_degree g u) m) g
      Int_map.empty
  in
  let frontier =
    Int_map.fold (fun u d s -> if d = 0 then S.add u s else s) indeg S.empty
  in
  let rec loop frontier indeg acc n =
    match S.min_elt_opt frontier with
    | None -> if n = Digraph.nb_nodes g then Some (List.rev acc) else None
    | Some u ->
        let frontier = S.remove u frontier in
        let frontier, indeg =
          List.fold_left
            (fun (frontier, indeg) v ->
              let d = Int_map.find v indeg - 1 in
              let indeg = Int_map.add v d indeg in
              if d = 0 then (S.add v frontier, indeg) else (frontier, indeg))
            (frontier, indeg) (Digraph.succ g u)
        in
        loop frontier indeg (u :: acc) (n + 1)
  in
  loop frontier indeg [] 0

let sort_exn g =
  match sort g with
  | Some order -> order
  | None -> invalid_arg "Topo.sort_exn: graph has a cycle"

let is_dag g = Option.is_some (sort g)

(* Iterative DFS with colouring; returns the cycle found via back edge. *)
let find_cycle g =
  let color = Hashtbl.create 16 in
  (* 0 absent/white, 1 grey, 2 black *)
  let parent = Hashtbl.create 16 in
  let result = ref None in
  let rec dfs u =
    Hashtbl.replace color u 1;
    List.iter
      (fun v ->
        if !result = None then
          match Hashtbl.find_opt color v with
          | Some 1 ->
              (* back edge u -> v: cycle is v ... u *)
              let rec collect w acc =
                if w = v then v :: acc
                else collect (Hashtbl.find parent w) (w :: acc)
              in
              result := Some (collect u [])
          | Some _ -> ()
          | None ->
              Hashtbl.replace parent v u;
              dfs v)
      (Digraph.succ g u);
    Hashtbl.replace color u 2
  in
  List.iter
    (fun u -> if !result = None && not (Hashtbl.mem color u) then dfs u)
    (Digraph.nodes g);
  !result

(* Tarjan's SCC, iterative to survive deep graphs. *)
let scc g =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Digraph.succ g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := List.sort compare (pop []) :: !components
    end
  in
  List.iter
    (fun v -> if not (Hashtbl.mem index v) then strongconnect v)
    (Digraph.nodes g);
  List.rev !components

let condensation g =
  let comps = scc g in
  let comp_of = Hashtbl.create 16 in
  List.iteri
    (fun i comp -> List.iter (fun v -> Hashtbl.replace comp_of v i) comp)
    comps;
  let dag = Digraph.create () in
  List.iteri (fun i _ -> Digraph.add_node dag i) comps;
  Digraph.iter_edges
    (fun u v ->
      let cu = Hashtbl.find comp_of u and cv = Hashtbl.find comp_of v in
      if cu <> cv then Digraph.add_edge dag cu cv)
    g;
  (dag, fun v -> Hashtbl.find comp_of v)
