type weights = int * int -> int

let uniform _ = 1

(* Residual network as a hashtable of (u,v) -> residual capacity, seeded
   with forward capacities and zero-capacity reverse arcs. *)
type residual = {
  cap : (int * int, int) Hashtbl.t;
  adj : (int, int list) Hashtbl.t; (* residual adjacency, both directions *)
}

let build_residual g w =
  let cap = Hashtbl.create 64 in
  let adj = Hashtbl.create 64 in
  let add_adj u v =
    let cur = Option.value ~default:[] (Hashtbl.find_opt adj u) in
    if not (List.mem v cur) then Hashtbl.replace adj u (v :: cur)
  in
  Digraph.iter_edges
    (fun u v ->
      let c = w (u, v) in
      if c <= 0 then
        invalid_arg
          (Printf.sprintf "Mincut: non-positive capacity on edge %d->%d" u v);
      Hashtbl.replace cap (u, v)
        (c + Option.value ~default:0 (Hashtbl.find_opt cap (u, v)));
      if not (Hashtbl.mem cap (v, u)) then Hashtbl.replace cap (v, u) 0;
      add_adj u v;
      add_adj v u)
    g;
  { cap; adj }

let residual_cap r u v = Option.value ~default:0 (Hashtbl.find_opt r.cap (u, v))

(* BFS in the residual network; returns parent map if dst reached. *)
let bfs r ~src ~dst =
  let parent = Hashtbl.create 16 in
  let queue = Queue.create () in
  Hashtbl.replace parent src src;
  Queue.add src queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if (not (Hashtbl.mem parent v)) && residual_cap r u v > 0 then begin
          Hashtbl.replace parent v u;
          if v = dst then found := true else Queue.add v queue
        end)
      (List.sort compare (Option.value ~default:[] (Hashtbl.find_opt r.adj u)))
  done;
  if !found then Some parent else None

let run_max_flow g w ~src ~dst =
  if src = dst then invalid_arg "Mincut: src = dst";
  if (not (Digraph.mem_node g src)) || not (Digraph.mem_node g dst) then
    (build_residual g w, 0)
  else begin
    let r = build_residual g w in
    let flow = ref 0 in
    let rec augment () =
      match bfs r ~src ~dst with
      | None -> ()
      | Some parent ->
          (* bottleneck along the path *)
          let rec bottleneck v acc =
            if v = src then acc
            else
              let u = Hashtbl.find parent v in
              bottleneck u (min acc (residual_cap r u v))
          in
          let b = bottleneck dst max_int in
          let rec push v =
            if v <> src then begin
              let u = Hashtbl.find parent v in
              Hashtbl.replace r.cap (u, v) (residual_cap r u v - b);
              Hashtbl.replace r.cap (v, u) (residual_cap r v u + b);
              push u
            end
          in
          push dst;
          flow := !flow + b;
          augment ()
    in
    augment ();
    (r, !flow)
  end

let max_flow g w ~src ~dst = snd (run_max_flow g w ~src ~dst)

let min_cut g w ~src ~dst =
  let r, _ = run_max_flow g w ~src ~dst in
  if not (Digraph.mem_node g src) then []
  else begin
    (* Source side = nodes reachable from src in the final residual net. *)
    let side = Hashtbl.create 16 in
    let rec go u =
      if not (Hashtbl.mem side u) then begin
        Hashtbl.replace side u ();
        List.iter
          (fun v -> if residual_cap r u v > 0 then go v)
          (Option.value ~default:[] (Hashtbl.find_opt r.adj u))
      end
    in
    go src;
    Digraph.fold_edges
      (fun u v acc ->
        if Hashtbl.mem side u && not (Hashtbl.mem side v) then (u, v) :: acc
        else acc)
      g []
    |> List.sort compare
  end

let disconnects g cut ~src ~dst =
  let h = Digraph.copy g in
  List.iter (fun (u, v) -> Digraph.remove_edge h u v) cut;
  not (Reachability.reaches h src dst)

(* Node splitting: v becomes v_in = 2v -> v_out = 2v+1 with capacity 1;
   original edges get effectively-infinite capacity, so min cuts only
   ever cross split arcs. *)
let min_vertex_cut g ~src ~dst =
  if src = dst then invalid_arg "Mincut.min_vertex_cut: src = dst";
  if (not (Digraph.mem_node g src)) || not (Digraph.mem_node g dst) then
    Some []
  else if Digraph.mem_edge g src dst then None
  else begin
    let infinite = 1 + Digraph.nb_nodes g in
    let split = Digraph.create () in
    Digraph.iter_nodes
      (fun v ->
        if v <> src && v <> dst then Digraph.add_edge split (2 * v) ((2 * v) + 1))
      g;
    Digraph.iter_edges
      (fun u v ->
        let u_out = if u = src || u = dst then 2 * u else (2 * u) + 1 in
        let v_in = 2 * v in
        Digraph.add_edge split u_out v_in)
      g;
    let weights (a, b) = if b = a + 1 && a mod 2 = 0 then 1 else infinite in
    let cut = min_cut split weights ~src:(2 * src) ~dst:(2 * dst) in
    if List.exists (fun e -> weights e >= infinite) cut then None
    else Some (List.map (fun (a, _) -> a / 2) cut |> List.sort compare)
  end

let vertex_cut_disconnects g vertices ~src ~dst =
  let h = Digraph.copy g in
  List.iter (Digraph.remove_node h) vertices;
  not (Reachability.reaches h src dst)
