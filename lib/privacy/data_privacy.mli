(** Data privacy: masking of (intermediate) data values (paper, Sec. 3).

    Data items are classified by their {e name} (the dataflow label in the
    specification — all items called [disorders] across all executions are
    equally sensitive) and each name is assigned the privilege level
    required to read the value. A user below that level still sees the
    item's existence and id in their execution view — the graph shape is
    governed by structural privacy, not here — but the value is replaced
    by {!Wfpriv_workflow.Data_value.masked}.

    A {!projection} bundles an execution with a user's level: the
    read-API through which query evaluation sees values. *)

type t
(** Sensitivity classification: data name → required level. *)

val make :
  ?default_level:Privilege.level ->
  (string * Privilege.level) list ->
  t
(** Unlisted names require [default_level] (default 0 = public). Raises
    [Invalid_argument] on negative levels or duplicate names. *)

val public : t
(** Everything readable by everyone. *)

val required_level : t -> string -> Privilege.level

val readable : t -> Privilege.level -> string -> bool

type projection = {
  exec : Wfpriv_workflow.Execution.t;
  classification : t;
  level : Privilege.level;
}

val project : t -> Privilege.level -> Wfpriv_workflow.Execution.t -> projection

val value_of : projection -> Wfpriv_workflow.Ids.data_id -> Wfpriv_workflow.Data_value.t
(** The item's value, or [Data_value.masked] when the user's level is
    insufficient. Raises [Not_found] on unknown ids. *)

val is_masked : projection -> Wfpriv_workflow.Ids.data_id -> bool

val masked_items : projection -> Wfpriv_workflow.Ids.data_id list
(** Items whose value is hidden at this level, sorted. *)

val visible_ratio : projection -> float
(** Fraction of items whose value is readable (1.0 on an empty
    execution). *)

val sensitive_names : t -> Privilege.level -> string list
(** Names not readable at the given level, sorted. *)
