(** Differentially private aggregate queries over execution collections.

    The paper (Sec. 5) observes that differential privacy cannot protect
    {e provenance itself} — noisy provenance breaks reproducibility — but
    the classical DP mechanism fits the {e aggregate} questions a shared
    repository also answers ("in how many runs did module M execute?",
    "how often did data [disorders] flow?"). Counting queries over a set
    of executions have sensitivity 1 (each run contributes 0 or 1), so
    the Laplace mechanism with scale [1/ε] gives ε-differential privacy
    per query.

    Randomness is supplied by the caller as a uniform sampler so results
    stay reproducible under seeded generators (no hidden global state). *)

type query =
  | Module_ran of Wfpriv_workflow.Ids.module_id
      (** the module executed at least once in the run *)
  | Data_flowed of string  (** an item with this name was produced *)
  | Ran_before of Wfpriv_workflow.Ids.module_id * Wfpriv_workflow.Ids.module_id
      (** first module preceded the second in the run's dataflow *)

val matches : Wfpriv_workflow.Execution.t -> query -> bool

val exact_count : Wfpriv_workflow.Execution.t list -> query -> int

val sensitivity : query -> int
(** Always 1: adding/removing one execution changes any count by ≤ 1. *)

val laplace : uniform:(unit -> float) -> scale:float -> float
(** One Laplace(0, scale) sample via inverse-CDF from a uniform draw in
    [0, 1). Raises [Invalid_argument] when [scale <= 0]. *)

val noisy_count :
  uniform:(unit -> float) ->
  epsilon:float ->
  Wfpriv_workflow.Execution.t list ->
  query ->
  float
(** ε-DP count: [exact + Laplace(sensitivity/ε)]. Raises
    [Invalid_argument] when [epsilon <= 0]. *)

val expected_absolute_error : epsilon:float -> float
(** [E|noise| = sensitivity/ε] — the utility the mechanism promises, used
    by experiment E9 to compare against measured error. *)
