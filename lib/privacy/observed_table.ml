open Wfpriv_workflow

type row = {
  inputs : (string * Data_value.t) list;
  outputs : (string * Data_value.t) list;
}

let named_items exec ids =
  List.map
    (fun d ->
      let it = Execution.find_item exec d in
      (it.Execution.name, it.Execution.value))
    ids
  |> List.sort compare

let rows_of_run exec m =
  ignore (Spec.find_module (Execution.spec exec) m);
  let g = Execution.graph exec in
  (* For atomic modules the node itself consumes and produces; for
     composites the begin node consumes and the matching end node (same
     process id) produces. *)
  List.map
    (fun n ->
      let inputs =
        Wfpriv_graph.Digraph.pred g n
        |> List.concat_map (fun p -> Execution.edge_items exec p n)
        |> List.sort_uniq compare
      in
      let out_node =
        match Execution.node_kind exec n with
        | Execution.Begin_composite { proc; _ } ->
            List.find
              (fun n' ->
                match Execution.node_kind exec n' with
                | Execution.End_composite { proc = p'; _ } -> p' = proc
                | _ -> false)
              (Execution.nodes exec)
        | _ -> n
      in
      let outputs =
        match Execution.node_kind exec n with
        | Execution.Begin_composite _ ->
            (* Items flowing out of the end node (or produced inside and
               crossing the boundary). *)
            Wfpriv_graph.Digraph.succ g out_node
            |> List.concat_map (fun s -> Execution.edge_items exec out_node s)
            |> List.sort_uniq compare
        | _ ->
            List.filter_map
              (fun (it : Execution.item) ->
                if it.Execution.producer = n then Some it.Execution.data_id
                else None)
              (Execution.items exec)
      in
      { inputs = named_items exec inputs; outputs = named_items exec outputs })
    (Execution.nodes_of_module exec m)

let of_runs execs m =
  List.concat_map (fun e -> rows_of_run e m) execs |> List.sort_uniq compare

let functional rows =
  let by_inputs = Hashtbl.create 16 in
  List.for_all
    (fun r ->
      match Hashtbl.find_opt by_inputs r.inputs with
      | Some outputs -> outputs = r.outputs
      | None ->
          Hashtbl.replace by_inputs r.inputs r.outputs;
          true)
    rows

let union_names project rows =
  List.concat_map (fun r -> List.map fst (project r)) rows
  |> List.sort_uniq compare

let input_names rows = union_names (fun r -> r.inputs) rows
let output_names rows = union_names (fun r -> r.outputs) rows

let revealed_fraction ~domain_size rows =
  if domain_size <= 0 then invalid_arg "Observed_table.revealed_fraction";
  let distinct_inputs =
    List.sort_uniq compare (List.map (fun r -> r.inputs) rows)
  in
  float_of_int (List.length distinct_inputs) /. float_of_int domain_size
