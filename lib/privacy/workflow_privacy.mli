(** Workflow-level Γ-privacy with {e public} modules — the full
    possible-worlds semantics of the paper's companion work
    (arXiv:1005.5543): in a workflow, some modules are proprietary
    (private) while others are textbook steps whose behaviour the
    adversary already knows (public). Hiding a data item then interacts
    with knowledge: a hidden value feeding a {e known, invertible} public
    module is recoverable from that module's visible output, so the same
    hidden set gives far less privacy than standalone analysis suggests.

    The model: a {!t} is an acyclic pipeline of relation-table modules
    wired by data names, with distinguished source names (workflow
    inputs). The adversary observes, for {e every} workflow input, the
    visible data values of the run. A {e possible world} re-chooses each
    private module's function arbitrarily (over its declared domains),
    keeps public modules fixed at their true functions, re-executes all
    runs, and is {e consistent} when every run's visible values match the
    observation. [Γ(m, H)] is the least, over inputs [x] to [m], number
    of distinct values consistent worlds assign to [m(x)].

    Everything is exact and exponential in (candidate functions per
    private module) — intended for the small domains where the
    companion paper's phenomena are already visible; {!nb_worlds} reports
    the search size so callers can bound it. *)

type visibility = Public | Private

type wiring = {
  w_id : Wfpriv_workflow.Ids.module_id;
  w_table : Module_privacy.table;
      (** attribute names double as data names: inputs consumed, outputs
          produced *)
  w_visibility : visibility;
}

type t

exception Ill_formed of string

val make : t_sources:string list -> wiring list -> t
(** Validates: every non-source input name is produced by exactly one
    module, no name produced twice, the wiring is acyclic, shared names
    have equal domains, and module ids are distinct. Raises
    {!Ill_formed}. *)

val of_spec :
  Wfpriv_workflow.Spec.t ->
  Wfpriv_workflow.Executor.semantics ->
  domains:(string * Wfpriv_workflow.Data_value.t list) list ->
  private_modules:Wfpriv_workflow.Ids.module_id list ->
  t
(** Build the pipeline from a real specification: every atomic module is
    tabulated over the declared domains ({!Spec_tables.tabulate} on the
    full expansion), marked [Private] when listed and [Public] otherwise;
    sources are the data names nothing produces. Domains must be declared
    for {e every} data name (outputs too, so shared-name domains agree).
    Raises {!Spec_tables.Unsupported} / {!Ill_formed} on failure. *)

val sources : t -> (string * Wfpriv_workflow.Data_value.t list) list
(** Source names with their domains (taken from the consuming tables). *)

val data_names : t -> string list
(** Every data name in the pipeline, sorted. *)

val runs : t -> (string * Wfpriv_workflow.Data_value.t) list list
(** One complete assignment (data name → value) per workflow-input
    combination, with the true functions. *)

val nb_candidate_worlds : t -> int
(** Product over private modules of (output-space size ^ rows) —
    the exact search's cost; saturates at [max_int]. *)

val gamma :
  t -> hidden:string list -> (Wfpriv_workflow.Ids.module_id * int) list
(** Γ per private module under the hidden-name set, by exhaustive
    possible-world enumeration. Raises [Invalid_argument] on unknown
    hidden names and {!Ill_formed} via {!make}'s guarantees. *)

val standalone_gamma :
  t -> hidden:string list -> (Wfpriv_workflow.Ids.module_id * int) list
(** Each private module analysed in isolation
    ({!Module_privacy.privacy_level} on its own table) — the optimistic
    estimate the workflow-level analysis corrects. *)

val is_safe : t -> hidden:string list -> gamma:int -> bool
(** Workflow-level safety: every private module reaches the target. *)

val optimal_hiding :
  ?weights:Module_privacy.weights -> t -> gamma:int -> string list option
(** Minimum-cost data-name set that is workflow-level Γ-safe (best-first
    cost-ordered search over name subsets, each candidate checked by
    possible-world enumeration — exact and expensive; meant for the same
    small pipelines as {!gamma}). [None] when unachievable even hiding
    every name. Note that, unlike the standalone problem, safety here is
    {e not} monotone-trivial: hiding more never hurts, but a set that
    standalone analysis accepts may fail (E12), so this is the search a
    deployment would actually need. *)
