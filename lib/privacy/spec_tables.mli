(** End-to-end workflow-level module privacy: from a specification and
    its executable semantics to relation tables, a shared-attribute
    network, and ready-to-install policy masks.

    This closes the loop the paper draws between its model (Sec. 2) and
    module privacy (Sec. 3): the data names of the {e full expansion}
    view are the attributes an adversary observes across executions, so a
    module's table is obtained by tabulating its semantics over declared
    finite domains for its incoming data names, and hiding is decided
    network-wide ("hide once, hidden everywhere" — a name masked for one
    module is masked wherever it flows).

    Output-attribute domains are {e inferred} as the set of values the
    module actually produces over the tabulated input product (the
    relation's active range); input domains must be declared. *)

exception Unsupported of string
(** Raised when a module cannot be tabulated: not atomic, no incoming
    dataflow in the full expansion, inconsistent output names across
    rows, or an input name without a declared domain. *)

val input_names :
  Wfpriv_workflow.Spec.t -> Wfpriv_workflow.Ids.module_id -> string list
(** Data names the module receives in the full expansion, sorted. *)

val output_names :
  Wfpriv_workflow.Spec.t -> Wfpriv_workflow.Ids.module_id -> string list
(** Data names the module sends onward in the full expansion, sorted. *)

val tabulate :
  Wfpriv_workflow.Spec.t ->
  Wfpriv_workflow.Executor.semantics ->
  domains:(string * Wfpriv_workflow.Data_value.t list) list ->
  Wfpriv_workflow.Ids.module_id ->
  Module_privacy.table
(** The module's full relation over the declared input domains. *)

val network :
  Wfpriv_workflow.Spec.t ->
  Wfpriv_workflow.Executor.semantics ->
  domains:(string * Wfpriv_workflow.Data_value.t list) list ->
  private_modules:Wfpriv_workflow.Ids.module_id list ->
  Module_privacy.network
(** Tables for every private module, tied by shared data names. *)

val recommend_masks :
  ?weights:Module_privacy.weights ->
  Wfpriv_workflow.Spec.t ->
  Wfpriv_workflow.Executor.semantics ->
  domains:(string * Wfpriv_workflow.Data_value.t list) list ->
  private_modules:Wfpriv_workflow.Ids.module_id list ->
  gamma:int ->
  level:Privilege.level ->
  (Wfpriv_workflow.Ids.module_id * string list * Privilege.level) list option
(** Compute a minimum-cost network-wide Γ-safe hidden name set (exact for
    ≤ 20 names, greedy beyond) and shape it as {!Policy.make}
    [module_masks] entries — each private module masked on the hidden
    names among its own attributes, below [level]. [None] when Γ is
    unachievable. *)
