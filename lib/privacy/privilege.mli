(** Access privileges and access views (paper, Sec. 2–3).

    Privileges are totally ordered integer levels: level 0 is public and
    higher levels see more. A specification's privacy settings assign to
    each workflow the level required to expand it; the {e access view} of
    a user is the finest view whose prefix only contains workflows the
    user may expand. Expansion requirements are made monotone along the
    hierarchy (a child can never require less than its parent) so access
    views are always valid prefixes. *)

type level = int

type user = { name : string; level : level }

val user : ?name:string -> level -> user

type t
(** Expansion-level assignment for one specification. *)

val make : Wfpriv_workflow.Spec.t -> (Wfpriv_workflow.Ids.workflow_id * level) list -> t
(** [make spec assignments] assigns each listed workflow its required
    level (unlisted workflows default to 0, the root is forced to 0) and
    then takes the running maximum down the hierarchy to enforce
    monotonicity. Raises [Invalid_argument] on unknown workflow ids or
    negative levels. *)

val public : Wfpriv_workflow.Spec.t -> t
(** Everything expandable by everyone. *)

val spec : t -> Wfpriv_workflow.Spec.t

val required_level : t -> Wfpriv_workflow.Ids.workflow_id -> level
(** Effective (monotone) level required to expand a workflow. *)

val access_prefix : t -> level -> Wfpriv_workflow.Ids.workflow_id list
(** Workflows expandable at the given level — always a prefix. *)

val access_view : t -> level -> Wfpriv_workflow.View.t
(** The user's finest specification view. *)

val access_exec_view : t -> level -> Wfpriv_workflow.Execution.t -> Wfpriv_workflow.Exec_view.t
(** The user's finest view of an execution. *)

val can_expand : t -> level -> Wfpriv_workflow.Ids.workflow_id -> bool

val min_level_to_see : t -> Wfpriv_workflow.Ids.module_id -> level
(** Smallest level at which the module is visible (its whole ancestor
    chain expandable). *)

val levels : t -> level list
(** The distinct effective levels in use, sorted — the interesting points
    of the privilege lattice. Always contains 0. *)
