(** Utility measures for the privacy–utility trade-off (paper Sec. 3–4).

    The paper defines the utility of a (possibly transformed) result as a
    function of (a) the number of correct node-connectivity relationships
    captured, and (b) the amount/weight of data disclosed. These metrics
    quantify both, for graphs and for data masking. *)

type reachability_score = {
  preserved : int;  (** base facts still implied by the view *)
  lost : int;  (** base facts no longer implied *)
  spurious : int;  (** view facts false in the base *)
  precision : float;
      (** fraction of view facts that are true, i.e.
          [1 - spurious / view facts] (1.0 when the view has no facts) *)
  recall : float;  (** preserved / base facts (1.0 when base empty) *)
}

val reachability_score :
  base:Wfpriv_graph.Digraph.t ->
  view:Wfpriv_graph.Digraph.t ->
  map:(int -> int) ->
  reachability_score
(** [map] sends base nodes to their view representatives (identity for
    deletion views). A base fact [(u, v)] is preserved when
    [map u <> map v] and the view connects them; a view fact is spurious
    when no base pair mapping onto it is connected. *)

val data_utility :
  weights:(string -> float) -> Wfpriv_workflow.Execution.t -> visible:(Wfpriv_workflow.Ids.data_id -> bool) -> float
(** Total weight (by data name) of items whose value is visible. *)

val combined :
  alpha:float -> connectivity:reachability_score -> disclosed_modules:int -> total_modules:int -> float
(** The paper's "function of both": [alpha * connectivity-F1 +
    (1 - alpha) * disclosure-ratio], in [0, 1]. [Invalid_argument] unless
    [0 <= alpha <= 1]. *)
