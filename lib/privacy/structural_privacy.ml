module Digraph = Wfpriv_graph.Digraph
module Reachability = Wfpriv_graph.Reachability
module Mincut = Wfpriv_graph.Mincut
module Topo = Wfpriv_graph.Topo

type fact = int * int

let facts_of g = Reachability.closure_facts (Reachability.closure g)

let check_target g (u, v) =
  if u = v then invalid_arg "Structural_privacy: target with u = v";
  if not (Reachability.reaches g u v) then
    invalid_arg
      (Printf.sprintf "Structural_privacy: fact %d⇝%d does not hold" u v)

type deletion_report = {
  cut : (int * int) list;
  view : Digraph.t;
  base_facts : int;
  hidden_target : fact;
  collateral : fact list;
}

let hide_by_deletion ?(weights = Mincut.uniform) g ((u, v) as target) =
  check_target g target;
  let cut = Mincut.min_cut g weights ~src:u ~dst:v in
  let view = Digraph.copy g in
  List.iter (fun (a, b) -> Digraph.remove_edge view a b) cut;
  let base = facts_of g in
  let after = facts_of view in
  let collateral =
    List.filter (fun f -> f <> target && not (List.mem f after)) base
  in
  { cut; view; base_facts = List.length base; hidden_target = target; collateral }

type vertex_deletion_report = {
  removed : int list;
  vd_view : Digraph.t;
  vd_collateral : fact list;
  facts_about_removed : int;
}

let hide_by_vertex_deletion g ((u, v) as target) =
  check_target g target;
  match Mincut.min_vertex_cut g ~src:u ~dst:v with
  | None -> None
  | Some removed ->
      let view = Digraph.copy g in
      List.iter (Digraph.remove_node view) removed;
      let base = facts_of g in
      let after = facts_of view in
      let about_removed, between_survivors =
        List.partition
          (fun (a, b) -> List.mem a removed || List.mem b removed)
          base
      in
      let vd_collateral =
        List.filter
          (fun f -> f <> target && not (List.mem f after))
          between_survivors
      in
      Some
        {
          removed;
          vd_view = view;
          vd_collateral;
          facts_about_removed = List.length about_removed;
        }

type clustering = int list list

let validate_clustering g clusters =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun group ->
      if List.length group < 2 then
        invalid_arg "Structural_privacy: cluster of size < 2";
      List.iter
        (fun n ->
          if not (Digraph.mem_node g n) then
            invalid_arg
              (Printf.sprintf "Structural_privacy: unknown node %d in cluster" n);
          if Hashtbl.mem seen n then
            invalid_arg
              (Printf.sprintf "Structural_privacy: node %d in two clusters" n);
          Hashtbl.replace seen n ())
        group)
    clusters

let quotient g clusters =
  validate_clustering g clusters;
  let rep = Hashtbl.create 16 in
  List.iter
    (fun group ->
      let r = List.fold_left min (List.hd group) group in
      List.iter (fun n -> Hashtbl.replace rep n r) group)
    clusters;
  let map n = Option.value ~default:n (Hashtbl.find_opt rep n) in
  let q = Digraph.create () in
  Digraph.iter_nodes (fun n -> Digraph.add_node q (map n)) g;
  Digraph.iter_edges
    (fun a b ->
      let ra = map a and rb = map b in
      if ra <> rb then Digraph.add_edge q ra rb)
    g;
  (q, map)

let convex_closure g nodes =
  (* Fixpoint: add every node lying between two current members. *)
  let current = ref (List.sort_uniq compare nodes) in
  let changed = ref true in
  while !changed do
    changed := false;
    let members = !current in
    let additions =
      List.concat_map
        (fun a ->
          List.concat_map
            (fun b -> if a = b then [] else Reachability.between g ~src:a ~dst:b)
            members)
        members
      |> List.sort_uniq compare
      |> List.filter (fun n -> not (List.mem n members))
    in
    if additions <> [] then begin
      current := List.sort_uniq compare (additions @ members);
      changed := true
    end
  done;
  !current

type cluster_report = {
  cluster : int list;
  cluster_view : Digraph.t;
  cluster_rep : int;
  internal_hidden : fact list;
  spurious : fact list;
  acyclic : bool;
}

let cluster_report g group =
  let group = List.sort_uniq compare group in
  let view, map = quotient g [ group ] in
  let rep = List.fold_left min (List.hd group) group in
  let base_closure = Reachability.closure g in
  let view_closure = Reachability.closure view in
  let internal_hidden =
    List.filter
      (fun (a, b) -> List.mem a group && List.mem b group)
      (Reachability.closure_facts base_closure)
  in
  (* A view fact (a, b) over representatives is spurious when no pair of
     base nodes mapping to (a, b) is actually connected. *)
  let base_nodes = Digraph.nodes g in
  let preimage r = List.filter (fun n -> map n = r) base_nodes in
  let spurious =
    List.filter
      (fun (a, b) ->
        not
          (List.exists
             (fun x ->
               List.exists
                 (fun y ->
                   x <> y && Reachability.closure_reaches base_closure x y)
                 (preimage b))
             (preimage a)))
      (Reachability.closure_facts view_closure)
  in
  {
    cluster = group;
    cluster_view = view;
    cluster_rep = rep;
    internal_hidden;
    spurious;
    acyclic = Topo.is_dag view;
  }

let hide_by_clustering g ((u, v) as target) =
  check_target g target;
  cluster_report g (convex_closure g [ u; v ])

let hides g ((u, v) as target) ~method_ =
  check_target g target;
  match method_ with
  | `Deletion ->
      let r = hide_by_deletion g target in
      not (Reachability.reaches r.view u v)
  | `Clustering ->
      let r = hide_by_clustering g target in
      (* Both endpoints merged into one composite: the fact is no longer
         expressible, hence hidden. *)
      List.mem u r.cluster && List.mem v r.cluster
