(** A small algebra of access policies compiling down to the single
    {!Policy} (and hence the single [Access_gate]) the rest of the
    system already understands.

    The paper's privilege model is one total order; real deployments
    need role-based grants, per-subject consent, and emergency
    break-glass access. Rather than teaching the engine, the caches or
    the server a second permission mechanism, an {!expr} {e denotes} an
    access view — a prefix-closed set of visible workflows plus a set
    of readable data names — and {!compile} folds that view back into a
    derived {!Policy.t}. Evaluation then runs through the ordinary
    [Access_gate.of_policy]; policy identity rides the gate fingerprint,
    so result and reachability caches stay partitioned per compiled
    policy by construction.

    {2 Semantics}

    Expressions evaluate, per workflow and per data name, to a
    three-valued {!verdict}:

    - [Floor] is total: grants exactly what the base policy's legacy
      privilege floor grants at the caller's level, denies the rest.
    - [Role r] grants the view at the role's level and {e abstains}
      elsewhere; likewise [Break_glass a] while the grant is live.
    - [Consent s] grants the subject's consented workflows/data names
      and abstains elsewhere; once revoked it {e denies} them instead
      (and still abstains elsewhere), so revocation only bites when
      composed with {!Override} or {!Inter}.
    - [Union] is permit-overrides, [Inter] deny-overrides, and
      [Override l r] takes [l]'s verdict wherever [l] speaks (is not
      abstaining) and falls through to [r] elsewhere.

    At every node the grant set over workflows is normalized to a valid
    access prefix: a granted workflow whose ancestor chain is not fully
    granted is demoted to an explicit denial (a grant that cannot stand
    alone is void). Unions and intersections of valid prefixes are valid
    prefixes, so for those the normalization is the identity and the
    compiled gates' visible sets are {e exactly} the set-union /
    set-intersection of the operands' — the law the qcheck suite in
    [test/test_privacy.ml] checks. At the top, abstention means denial
    (closed world) and the root is always visible.

    Denied workflows compile to floor [max(legacy floor, level + 1)]:
    whatever the {e cause} of a denial — floor, role, revoked consent —
    the derived policy expresses it the same way, so audit floors,
    observer counters and answers cannot distinguish causes beyond what
    the visible set itself reveals (the leakage-gate invariant).

    Consent and break-glass state live in an environment {!t} with a
    deterministic logical clock; every administrative action and every
    break-glass expiry appends to the {!Wfpriv_obs.Audit_log}. *)

type expr =
  | Floor  (** the base policy's legacy privilege floor *)
  | Role of string  (** a named role: the view at the role's level *)
  | Consent of string  (** a subject's consent grant (deny once revoked) *)
  | Break_glass of string  (** an actor's live emergency grant *)
  | Union of expr * expr
  | Inter of expr * expr
  | Override of expr * expr

type verdict = Grant | Deny | Abstain

type t
(** Environment: role definitions, consent grants, live break-glass
    grants, and the logical clock. *)

val create : unit -> t

val define_role : t -> string -> Privilege.level -> unit
(** Define (or redefine) a role as a privilege level. Raises
    [Invalid_argument] on negative levels. *)

val grant_consent :
  t ->
  subject:string ->
  ?workflows:Wfpriv_workflow.Ids.workflow_id list ->
  ?data:string list ->
  unit ->
  unit
(** Record a subject's consent to expand the given workflows and read
    the given data names (audited, [policy.consent] / allowed).
    Re-granting replaces the previous grant and clears revocation. *)

val revoke_consent : t -> subject:string -> unit
(** Flip the subject's grant to revoked (audited). [Consent subject]
    then denies the previously granted sets. Raises [Not_found] on
    unknown subjects. *)

val grant_break_glass :
  t -> actor:string -> level:Privilege.level -> ttl:int -> reason:string -> unit
(** A time-boxed emergency grant: [Break_glass actor] denotes the view
    at [level] until [ttl] clock ticks elapse. Audited at the claimed
    level ([policy.break_glass]). Raises [Invalid_argument] on negative
    levels or non-positive ttl. *)

val break_glass_active : t -> string -> bool

val now : t -> int
(** The logical clock, starting at 0. *)

val tick : t -> unit
(** Advance the clock one step. Break-glass grants whose ttl has
    elapsed are dropped and audited ([policy.break_glass_expire], at
    the granted level, in actor order). *)

val workflow_verdicts :
  t ->
  base:Policy.t ->
  level:Privilege.level ->
  expr ->
  (Wfpriv_workflow.Ids.workflow_id * verdict) list
(** The normalized per-workflow verdicts of the expression over the
    base policy's workflow universe, in [Spec.workflow_ids] order —
    what {!compile} closes over. Raises [Invalid_argument] on roles or
    consent subjects the environment does not know. *)

val data_verdicts :
  t ->
  base:Policy.t ->
  level:Privilege.level ->
  expr ->
  (string * verdict) list
(** Per-data-name verdicts over the universe: every name the base
    policy classifies plus every name mentioned by a consent grant the
    expression references, sorted. *)

val compile : t -> base:Policy.t -> level:Privilege.level -> expr -> Policy.t
(** Fold the expression's denoted view into a derived {!Policy.t} for
    use at exactly [level]: visible workflows get their legacy floor
    capped at [level], denied ones [max(legacy, level + 1)]; readable
    names likewise, unreadable ones [max(legacy, level + 1)]. Feed the
    result to [Access_gate.of_policy ~level]: the gate's visible set is
    the denoted view, and its fingerprint distinguishes any two
    compiled policies denoting different views. *)
