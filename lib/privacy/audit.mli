(** Adversary simulation: empirical validation of module privacy
    (paper Sec. 3: the guarantee must hold "over repeated executions of a
    workflow with varied inputs").

    The adversary watches [k] executions of a module on (distinct or
    repeated) inputs, seeing only the visible attributes of each run, and
    then tries to predict the module's output on {e every} input of the
    domain. {!observe} accumulates the visible relation; {!assess}
    measures how much of the function the adversary pins down. With an
    empty hidden set the adversary recovers exactly the observed rows;
    with a Γ-safe hidden set the candidate set for every input stays
    ≥ Γ — the property experiment E8 demonstrates. *)

type observation
(** The adversary's accumulated knowledge about one module. *)

val observe :
  Module_privacy.table ->
  hidden:string list ->
  Wfpriv_workflow.Data_value.t array list ->
  observation
(** Run the module on each listed input tuple and record the visible
    projection of each run. *)

type assessment = {
  runs : int;  (** executions observed *)
  domain_size : int;  (** inputs in the module's full domain *)
  pinned : int;
      (** inputs whose candidate-output set is a singleton {e and} equal to
          the true output — the adversary knows the output exactly *)
  confident_wrong : int;
      (** inputs with a singleton candidate set that is {e not} the true
          output: the over-confident adversary guesses, and is wrong
          (possible only under partial observation) *)
  min_candidates : int;
      (** the worst-case candidate-set size over inputs with at least one
          compatible observation — the empirical Γ (domain inputs with no
          compatible observation are unconstrained and excluded) *)
  recovered_fraction : float;  (** pinned / domain_size *)
}

val assess : Module_privacy.table -> observation -> assessment
(** For each input of the full domain, compute the candidate outputs
    consistent with the observations (same possible-worlds semantics as
    {!Module_privacy.candidate_outputs}, but over the {e observed} visible
    relation rather than the full table — i.e. an adversary who assumes
    what they saw is everything). When the observations cover the whole
    domain and the hidden set is Γ-safe, [min_candidates >= Γ] and
    [pinned = confident_wrong = 0]; under partial observation the
    over-confident adversary can pin inputs (sometimes wrongly), which is
    exactly what experiment E8 charts. *)

val recovered_fraction :
  Module_privacy.table ->
  hidden:string list ->
  Wfpriv_workflow.Data_value.t array list ->
  float
(** Convenience: [assess] ∘ [observe], returning only the fraction. *)
