open Wfpriv_workflow
module Obs = Wfpriv_obs

type expr =
  | Floor
  | Role of string
  | Consent of string
  | Break_glass of string
  | Union of expr * expr
  | Inter of expr * expr
  | Override of expr * expr

type verdict = Grant | Deny | Abstain

type consent = {
  c_workflows : Ids.workflow_id list;
  c_data : string list;
  mutable c_revoked : bool;
}

type bg = { bg_level : Privilege.level; bg_expires : int }

type t = {
  roles : (string, Privilege.level) Hashtbl.t;
  consents : (string, consent) Hashtbl.t;
  glass : (string, bg) Hashtbl.t;
  mutable clock : int;
}

let m_compiles = Obs.Registry.counter "policy.compiles"
let m_consents = Obs.Registry.counter "policy.consent_updates"
let m_break_glass = Obs.Registry.counter "policy.break_glass"

let create () =
  {
    roles = Hashtbl.create 7;
    consents = Hashtbl.create 7;
    glass = Hashtbl.create 7;
    clock = 0;
  }

let define_role t name level =
  if level < 0 then invalid_arg "Policy_algebra.define_role: negative level";
  Hashtbl.replace t.roles name level

let grant_consent t ~subject ?(workflows = []) ?(data = []) () =
  Hashtbl.replace t.consents subject
    { c_workflows = workflows; c_data = data; c_revoked = false };
  Obs.Counter.incr_op m_consents;
  Obs.Audit_log.record ~op:"policy.consent" ~level:0
    ~query:(Printf.sprintf "grant subject=%s" subject)
    ~nodes:(List.length workflows + List.length data)
    Obs.Audit_log.Allowed

let revoke_consent t ~subject =
  match Hashtbl.find_opt t.consents subject with
  | None -> raise Not_found
  | Some c ->
      c.c_revoked <- true;
      Obs.Counter.incr_op m_consents;
      Obs.Audit_log.record ~op:"policy.consent" ~level:0
        ~query:(Printf.sprintf "revoke subject=%s" subject)
        Obs.Audit_log.Allowed

let grant_break_glass t ~actor ~level ~ttl ~reason =
  if level < 0 then invalid_arg "Policy_algebra.grant_break_glass: negative level";
  if ttl <= 0 then invalid_arg "Policy_algebra.grant_break_glass: ttl must be positive";
  Hashtbl.replace t.glass actor { bg_level = level; bg_expires = t.clock + ttl };
  Obs.Counter.incr_op m_break_glass;
  Obs.Audit_log.record ~op:"policy.break_glass" ~level
    ~query:(Printf.sprintf "actor=%s ttl=%d reason=%s" actor ttl reason)
    Obs.Audit_log.Allowed

let break_glass_active t actor =
  match Hashtbl.find_opt t.glass actor with
  | Some g -> g.bg_expires > t.clock
  | None -> false

let now t = t.clock

let tick t =
  t.clock <- t.clock + 1;
  (* Expire in actor order so the audit trail is deterministic. *)
  let expired =
    Hashtbl.fold
      (fun actor g acc -> if g.bg_expires <= t.clock then (actor, g) :: acc else acc)
      t.glass []
    |> List.sort compare
  in
  List.iter
    (fun (actor, g) ->
      Hashtbl.remove t.glass actor;
      Obs.Audit_log.record ~op:"policy.break_glass_expire" ~level:g.bg_level
        ~query:(Printf.sprintf "actor=%s" actor)
        Obs.Audit_log.Allowed)
    expired

(* ------------------------------------------------------------------ *)
(* Evaluation. Universes are tiny (a spec's workflows, a policy's data
   names), so verdict maps are plain association lists. *)

let parent spec w =
  if w = Spec.root spec then None
  else Option.map (Spec.owner spec) (Spec.defined_by spec w)

(* Normalize a workflow verdict map to a valid access prefix: a grant
   whose ancestor chain is not fully granted is void — demoted to an
   explicit denial. Unions/intersections of normalized maps are already
   normalized (prefixes are closed under both), so for those this is the
   identity; [Override] can displace an ancestor and genuinely needs it. *)
let normalize spec verdicts =
  let granted w =
    w = Spec.root spec
    || List.assoc_opt w verdicts = Some Grant
  in
  let rec chain_ok w =
    match parent spec w with
    | None -> true
    | Some p -> granted p && chain_ok p
  in
  List.map
    (fun (w, v) -> if v = Grant && not (chain_ok w) then (w, Deny) else (w, v))
    verdicts

let union_v a b =
  match (a, b) with
  | Grant, _ | _, Grant -> Grant
  | Deny, _ | _, Deny -> Deny
  | Abstain, Abstain -> Abstain

let inter_v a b =
  match (a, b) with
  | Deny, _ | _, Deny -> Deny
  | Abstain, _ | _, Abstain -> Abstain
  | Grant, Grant -> Grant

let override_v a b = match a with Abstain -> b | _ -> a

let role_level t r =
  match Hashtbl.find_opt t.roles r with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Policy_algebra: unknown role %S" r)

let consent_of t s =
  match Hashtbl.find_opt t.consents s with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Policy_algebra: unknown consent subject %S" s)

(* Data-name universe: everything the base policy classifies plus every
   name a referenced consent grant mentions (so revocations can deny
   names the base policy never listed). *)
let data_universe t base expr =
  let rec mentioned = function
    | Floor | Role _ | Break_glass _ -> []
    | Consent s -> (consent_of t s).c_data
    | Union (a, b) | Inter (a, b) | Override (a, b) -> mentioned a @ mentioned b
  in
  List.map fst (Policy.effective_data_levels base) @ mentioned expr
  |> List.sort_uniq compare

let eval_workflows t ~base ~level expr =
  let spec = Policy.spec base in
  let priv = Policy.privilege base in
  let universe = Spec.workflow_ids spec in
  let at_level l =
    List.map
      (fun w -> (w, if Privilege.required_level priv w <= l then Grant else Abstain))
      universe
  in
  let map2 f a b = List.map2 (fun (w, va) (_, vb) -> (w, f va vb)) a b in
  let rec eval = function
    | Floor ->
        List.map
          (fun w ->
            (w, if Privilege.required_level priv w <= level then Grant else Deny))
          universe
    | Role r -> at_level (role_level t r)
    | Break_glass a ->
        if break_glass_active t a then
          at_level (Hashtbl.find t.glass a).bg_level
        else List.map (fun w -> (w, Abstain)) universe
    | Consent s ->
        let c = consent_of t s in
        let marked = if c.c_revoked then Deny else Grant in
        normalize spec
          (List.map
             (fun w -> (w, if List.mem w c.c_workflows then marked else Abstain))
             universe)
    | Union (a, b) -> map2 union_v (eval a) (eval b)
    | Inter (a, b) -> map2 inter_v (eval a) (eval b)
    | Override (a, b) -> normalize spec (map2 override_v (eval a) (eval b))
  in
  eval expr

let eval_data t ~base ~level expr =
  let classification = Policy.data_classification base in
  let universe = data_universe t base expr in
  let at_level l =
    List.map
      (fun n ->
        (n, if Data_privacy.required_level classification n <= l then Grant else Abstain))
      universe
  in
  let map2 f a b = List.map2 (fun (n, va) (_, vb) -> (n, f va vb)) a b in
  let rec eval = function
    | Floor ->
        List.map
          (fun n ->
            ( n,
              if Data_privacy.required_level classification n <= level then Grant
              else Deny ))
          universe
    | Role r -> at_level (role_level t r)
    | Break_glass a ->
        if break_glass_active t a then at_level (Hashtbl.find t.glass a).bg_level
        else List.map (fun n -> (n, Abstain)) universe
    | Consent s ->
        let c = consent_of t s in
        let marked = if c.c_revoked then Deny else Grant in
        List.map
          (fun n -> (n, if List.mem n c.c_data then marked else Abstain))
          universe
    | Union (a, b) -> map2 union_v (eval a) (eval b)
    | Inter (a, b) -> map2 inter_v (eval a) (eval b)
    | Override (a, b) -> map2 override_v (eval a) (eval b)
  in
  eval expr

let workflow_verdicts = eval_workflows
let data_verdicts = eval_data

let compile t ~base ~level expr =
  if level < 0 then invalid_arg "Policy_algebra.compile: negative level";
  let spec = Policy.spec base in
  let priv = Policy.privilege base in
  let root = Spec.root spec in
  let wv = eval_workflows t ~base ~level expr in
  let dv = eval_data t ~base ~level expr in
  let classification = Policy.data_classification base in
  (* Closed world at the top: abstention denies. Denials compile to the
     same floor regardless of cause, so nothing downstream (audit
     floors, counters, answers) can tell a role denial from a revoked
     consent from a plain privilege floor. *)
  let expand_levels =
    List.filter_map
      (fun (w, v) ->
        if w = root then None
        else
          let legacy = Privilege.required_level priv w in
          match v with
          | Grant -> Some (w, min legacy level)
          | Deny | Abstain -> Some (w, max legacy (level + 1)))
      wv
  in
  let data_levels =
    List.map
      (fun (n, v) ->
        let legacy = Data_privacy.required_level classification n in
        match v with
        | Grant -> (n, min legacy level)
        | Deny | Abstain -> (n, max legacy (level + 1)))
      dv
  in
  Obs.Counter.incr m_compiles ~at:level;
  Policy.make ~expand_levels ~data_levels spec
