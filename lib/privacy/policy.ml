open Wfpriv_workflow

type t = {
  p_spec : Spec.t;
  p_privilege : Privilege.t;
  declared_data : (string * Privilege.level) list;
  module_masks : (Ids.module_id * string list * Privilege.level) list;
}

let make ?(expand_levels = []) ?(data_levels = []) ?(module_masks = []) spec =
  let p_privilege = Privilege.make spec expand_levels in
  List.iter
    (fun (m, names, level) ->
      ignore (Spec.find_module spec m);
      if level < 0 then invalid_arg "Policy.make: negative level";
      if names = [] then invalid_arg "Policy.make: empty module mask")
    module_masks;
  { p_spec = spec; p_privilege; declared_data = data_levels; module_masks }

let spec t = t.p_spec
let privilege t = t.p_privilege

let effective_data_levels t =
  let bump acc (name, level) =
    let cur = Option.value ~default:0 (List.assoc_opt name acc) in
    (name, max cur level) :: List.remove_assoc name acc
  in
  let from_masks =
    List.concat_map
      (fun (_, names, level) -> List.map (fun n -> (n, level)) names)
      t.module_masks
  in
  List.fold_left bump [] (t.declared_data @ from_masks)
  |> List.sort compare

let data_classification t = Data_privacy.make (effective_data_levels t)

type user_view = {
  level : Privilege.level;
  view : View.t;
  masked_names : string list;
}

let for_user t level =
  {
    level;
    view = Privilege.access_view t.p_privilege level;
    masked_names = Data_privacy.sensitive_names (data_classification t) level;
  }

let project_execution t level exec =
  ( Privilege.access_exec_view t.p_privilege level exec,
    Data_privacy.project (data_classification t) level exec )

let protected_modules t =
  List.map (fun (m, _, _) -> m) t.module_masks |> List.sort_uniq compare

let expand_levels t =
  Spec.workflow_ids t.p_spec
  |> List.map (fun w -> (w, Privilege.required_level t.p_privilege w))

let data_levels t = List.sort compare t.declared_data
let module_masks t = t.module_masks

let audit_level t =
  let data_max =
    List.fold_left (fun acc (_, l) -> max acc l) 0 (effective_data_levels t)
  in
  let expand_max =
    List.fold_left
      (fun acc w -> max acc (Privilege.required_level t.p_privilege w))
      0
      (Spec.workflow_ids t.p_spec)
  in
  max data_max expand_max
