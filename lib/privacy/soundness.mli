(** Detecting and repairing unsound workflow views
    (paper Sec. 3–4; notion from Sun et al., SIGMOD 2009).

    A clustered view is {e sound} when every reachability fact it implies
    between its nodes is witnessed in the base graph — no spurious
    provenance. Unsound views mislead provenance analysis, so after a
    clustering transformation one detects the spurious pairs and repairs
    the view by splitting clusters until soundness holds, keeping clusters
    as large as possible (each split discloses structure, reducing
    privacy). *)

type verdict = {
  sound : bool;
  spurious : (int * int) list;
      (** facts implied by the view but false in the base graph, expressed
          over view representatives, sorted *)
}

val check :
  Wfpriv_graph.Digraph.t -> Structural_privacy.clustering -> verdict
(** Raises [Invalid_argument] on invalid clusterings (see
    {!Structural_privacy.quotient}). *)

val is_sound : Wfpriv_graph.Digraph.t -> Structural_privacy.clustering -> bool

val repair :
  Wfpriv_graph.Digraph.t ->
  Structural_privacy.clustering ->
  Structural_privacy.clustering
(** Split offending clusters along topological cuts until {!is_sound}
    holds. Deterministic; terminates because every step splits some
    cluster and singletons are dropped (the fully-split clustering is
    trivially sound). The result preserves every cluster that caused no
    spuriousness. *)

val repair_steps :
  Wfpriv_graph.Digraph.t ->
  Structural_privacy.clustering ->
  int
(** Number of splits {!repair} performed (for the E4 experiment). *)
