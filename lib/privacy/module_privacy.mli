(** Module privacy: Γ-privacy by hiding intermediate data
    (paper Sec. 3; algorithmics reconstructed from the companion paper
    arXiv:1005.5543, "Preserving module privacy in workflow provenance").

    A module's behaviour is an explicit {e relation table}: one row per
    point of its (finite) input domain, mapping an input tuple to an
    output tuple. Publishing provenance for all executions reveals, for
    every row, the values of the {e visible} attributes; the attributes in
    the chosen hidden set [H] are masked in every execution.

    The adversary's knowledge is the visible relation
    [R_vis = { (vis_in(x), vis_out(f(x))) | x ∈ dom }]. A candidate
    function [g] is {e consistent} when for every input [x],
    [(vis_in(x), vis_out(g(x)))] belongs to [R_vis]. The possible outputs
    for [x] are [OUT_x = { g(x) | g consistent }] — concretely, every
    output tuple [y] whose visible part is paired with [vis_in(x)] in
    [R_vis], with hidden output attributes ranging over their full
    domains.

    [H] is {e Γ-safe} when [|OUT_x| ≥ Γ] for every input [x]; the
    guarantee holds over repeated executions with varied inputs because
    hiding is by attribute, not by run. Since attributes (data) carry
    utility weights, finding a minimum-weight Γ-safe [H] is the paper's
    "interesting optimization problem": {!optimal_hiding} solves it
    exactly (exponential in attribute count), {!greedy_hiding}
    heuristically.

    The workflow-level composition ({!network}) ties attributes of
    different modules that name the same data item: hiding a data name
    hides it for its producer and all its consumers, everywhere. *)

type attr = {
  attr_name : string;
  domain : Wfpriv_workflow.Data_value.t list;  (** finite, non-empty, no duplicates *)
}

val attr : string -> Wfpriv_workflow.Data_value.t list -> attr
(** Validates the domain (non-empty, duplicate-free). *)

val int_attr : string -> int -> attr
(** [int_attr name k] has domain [{0 .. k-1}]. *)

type table
(** A total function over the product of input domains. *)

val make_table :
  ?module_id:Wfpriv_workflow.Ids.module_id ->
  inputs:attr list ->
  outputs:attr list ->
  (Wfpriv_workflow.Data_value.t array * Wfpriv_workflow.Data_value.t array) list ->
  table
(** Validates: attribute names unique across inputs and outputs; rows
    cover the full input product exactly once; every value drawn from its
    attribute's domain. Raises [Invalid_argument] otherwise. *)

val of_function :
  ?module_id:Wfpriv_workflow.Ids.module_id ->
  inputs:attr list ->
  outputs:attr list ->
  (Wfpriv_workflow.Data_value.t array -> Wfpriv_workflow.Data_value.t array) ->
  table
(** Tabulate a function over the full input product. *)

val inputs : table -> attr list
val outputs : table -> attr list
val attr_names : table -> string list
(** Input then output attribute names. *)

val rows : table ->
  (Wfpriv_workflow.Data_value.t array * Wfpriv_workflow.Data_value.t array) list
(** Rows in input-product order. *)

val nb_rows : table -> int

val lookup : table -> Wfpriv_workflow.Data_value.t array -> Wfpriv_workflow.Data_value.t array
(** [lookup t x] is [f(x)]. Raises [Not_found] when [x] is not a valid
    input tuple. *)

val candidate_outputs :
  table -> hidden:string list -> Wfpriv_workflow.Data_value.t array -> int
(** [|OUT_x|] for one input tuple under the hidden set. Unknown attribute
    names in [hidden] raise [Invalid_argument]. *)

val privacy_level : table -> hidden:string list -> int
(** [Γ(H) = min_x |OUT_x|]; at least 1, and 1 when nothing is hidden. *)

val is_safe : table -> hidden:string list -> gamma:int -> bool

val max_achievable_gamma : table -> int
(** [Γ] when everything is hidden: the product of output domain sizes. *)

type weights = string -> int
(** Utility weight (hiding cost) of an attribute; must be positive. *)

val unit_weights : weights

val hiding_cost : weights -> string list -> int

val optimal_hiding :
  ?weights:weights -> table -> gamma:int -> string list option
(** Minimum-cost Γ-safe hidden set (ties broken by size, then
    lexicographically), or [None] when even hiding everything fails.
    Enumerates subsets: raises [Invalid_argument] beyond 20 attributes —
    use {!greedy_hiding} there. *)

val greedy_hiding :
  ?weights:weights -> table -> gamma:int -> string list option
(** Grows the hidden set by the best privacy-gain-per-cost attribute
    (log-scale gain on [Γ(H)]); falls back to cheapest-first when no
    single attribute improves [Γ]. Always Γ-safe when [Some]; cost may
    exceed the optimum. *)

val optimal_hiding_ordered :
  ?weights:weights -> table -> gamma:int -> string list option
(** Exact like {!optimal_hiding} (the returned set has minimum cost;
    tie-breaking may differ) but enumerates candidate sets {e best-first}
    by total cost and stops at the first Γ-safe one, so it has no
    attribute-count cap and is fast whenever a cheap safe set exists —
    the worst case (Γ unachievable or barely achievable) still visits
    exponentially many subsets. Ablation A3 measures the difference. *)

val ordered_subset_search :
  weights:weights ->
  names:string list ->
  safe:(string list -> bool) ->
  string list option
(** The best-first enumerator behind {!optimal_hiding_ordered}, exposed
    for other exact minimisation problems over attribute/name subsets
    (e.g. {!Workflow_privacy.optimal_hiding}): generates subsets of
    [names] in nondecreasing total weight and returns the first
    satisfying [safe] (sorted), or [None] after exhausting all [2^n]. *)

(** {2 Workflow-level composition} *)

type network = {
  tables : (Wfpriv_workflow.Ids.module_id * table) list;
      (** the private modules requiring protection *)
  shared : (string * Wfpriv_workflow.Ids.module_id list) list;
      (** data name → modules whose table mentions it (derived helper;
          see {!make_network}) *)
}

val make_network : (Wfpriv_workflow.Ids.module_id * table) list -> network
(** Attributes with equal names across tables denote the same workflow
    data item (producer's output, consumers' input). *)

val network_attr_names : network -> string list
(** All distinct data names, sorted. *)

val network_privacy_level :
  network -> hidden:string list -> (Wfpriv_workflow.Ids.module_id * int) list
(** Per-module [Γ(H ∩ attrs(m))]. *)

val network_is_safe : network -> hidden:string list -> gamma:int -> bool
(** Every private module reaches [gamma]. *)

val optimal_network_hiding :
  ?weights:weights -> network -> gamma:int -> string list option
(** Exact minimum-cost set of data names making every module Γ-safe
    (subset enumeration over distinct names; ≤ 20). *)

val greedy_network_hiding :
  ?weights:weights -> network -> gamma:int -> string list option

val pp_table : Format.formatter -> table -> unit
