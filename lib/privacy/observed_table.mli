(** Deriving a module's observed I/O relation from stored executions.

    Module privacy reasons over a module's relation table; in a deployed
    repository that relation is exactly what provenance {e reveals}: for
    every execution of module [m], the named data items flowing in and
    the items it produced. This module extracts those rows, bridging the
    workflow layer (Sec. 2) to the Γ-privacy machinery (Sec. 3) — it is
    how an auditor measures what the repository has already leaked about
    a module. *)

type row = {
  inputs : (string * Wfpriv_workflow.Data_value.t) list;  (** sorted by name *)
  outputs : (string * Wfpriv_workflow.Data_value.t) list;  (** sorted by name *)
}

val rows_of_run : Wfpriv_workflow.Execution.t -> Wfpriv_workflow.Ids.module_id -> row list
(** One row per execution node of the module in this run (composite
    modules observe at their begin/end boundary). Raises [Not_found] on
    modules absent from the spec. *)

val of_runs :
  Wfpriv_workflow.Execution.t list -> Wfpriv_workflow.Ids.module_id -> row list
(** Distinct observed rows across runs, sorted. *)

val functional : row list -> bool
(** No two rows share inputs with different outputs — sanity check that
    observations are consistent with the module being a function. *)

val input_names : row list -> string list
val output_names : row list -> string list
(** Union of names across rows, sorted. *)

val revealed_fraction :
  domain_size:int -> row list -> float
(** [|distinct observed input rows| / domain_size]: how much of the
    module's input domain the repository has exposed. *)
