module Digraph = Wfpriv_graph.Digraph
module Reachability = Wfpriv_graph.Reachability
module Topo = Wfpriv_graph.Topo
module Paths = Wfpriv_graph.Paths

type verdict = { sound : bool; spurious : (int * int) list }

let check g clusters =
  let view, map = Structural_privacy.quotient g clusters in
  let base_closure = Reachability.closure g in
  let view_closure = Reachability.closure view in
  let base_nodes = Digraph.nodes g in
  let preimage r = List.filter (fun n -> map n = r) base_nodes in
  let spurious =
    List.filter
      (fun (a, b) ->
        not
          (List.exists
             (fun x ->
               List.exists
                 (fun y ->
                   x <> y && Reachability.closure_reaches base_closure x y)
                 (preimage b))
             (preimage a)))
      (Reachability.closure_facts view_closure)
  in
  { sound = spurious = []; spurious }

let is_sound g clusters = (check g clusters).sound

(* Split one cluster at its topological median (positions in a fixed
   topological order of the base graph; falls back to the id order on
   cyclic bases). Returns the one-or-two non-trivial parts. *)
let split_cluster g cluster =
  let order =
    match Topo.sort g with
    | Some o -> o
    | None -> Digraph.nodes g
  in
  let position n =
    let rec find i = function
      | [] -> max_int
      | x :: rest -> if x = n then i else find (i + 1) rest
    in
    find 0 order
  in
  let sorted =
    List.sort (fun a b -> compare (position a, a) (position b, b)) cluster
  in
  let k = List.length sorted / 2 in
  let left = List.filteri (fun i _ -> i < k) sorted in
  let right = List.filteri (fun i _ -> i >= k) sorted in
  List.filter (fun part -> List.length part >= 2) [ left; right ]

let rec repair_count g clusters steps =
  let verdict = check g clusters in
  if verdict.sound then (clusters, steps)
  else begin
    let view, map = Structural_privacy.quotient g clusters in
    let a, b = List.hd verdict.spurious in
    (* Clusters implicated in the spurious fact: any cluster whose
       representative lies on a witness path from a to b in the view. *)
    let witness =
      match Paths.shortest view ~src:a ~dst:b with Some p -> p | None -> [ a; b ]
    in
    let reps_of_clusters =
      List.map (fun c -> List.fold_left min (List.hd c) c) clusters
    in
    let implicated =
      List.filter (fun r -> List.mem r witness) reps_of_clusters
    in
    let target_rep =
      match implicated with
      | r :: _ -> r
      | [] ->
          (* Shouldn't happen: a spurious fact needs a cluster on its
             path. Fall back to the largest cluster to guarantee
             progress. *)
          List.fold_left
            (fun best c ->
              let r = List.fold_left min (List.hd c) c in
              match best with
              | Some (s, _) when s >= List.length c -> best
              | _ -> Some (List.length c, r))
            None clusters
          |> Option.get |> snd
    in
    ignore map;
    let to_split =
      List.find (fun c -> List.fold_left min (List.hd c) c = target_rep) clusters
    in
    let rest = List.filter (fun c -> c != to_split) clusters in
    let parts = split_cluster g to_split in
    repair_count g (rest @ parts) (steps + 1)
  end

let repair g clusters = fst (repair_count g clusters 0)
let repair_steps g clusters = snd (repair_count g clusters 0)
