open Wfpriv_workflow

let visible_indices attrs hidden =
  List.mapi (fun i (a : Module_privacy.attr) -> (i, a)) attrs
  |> List.filter_map (fun (i, a) ->
         if List.mem a.Module_privacy.attr_name hidden then None else Some i)

let project indices tuple = Array.of_list (List.map (fun i -> tuple.(i)) indices)

let tuple_compare a b =
  let n = Array.length a and m = Array.length b in
  if n <> m then compare n m
  else begin
    let rec go i =
      if i = n then 0
      else
        let c = Data_value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

module Tuple_map = Map.Make (struct
  type t = Data_value.t array

  let compare = tuple_compare
end)

type observation = {
  hidden : string list;
  nb_runs : int;
  seen : Data_value.t array list Tuple_map.t; (* vis_in -> distinct vis_outs *)
}

let observe table ~hidden inputs_list =
  let vi = visible_indices (Module_privacy.inputs table) hidden in
  let vo = visible_indices (Module_privacy.outputs table) hidden in
  let seen =
    List.fold_left
      (fun acc x ->
        let y = Module_privacy.lookup table x in
        let kx = project vi x and ky = project vo y in
        let cur = Option.value ~default:[] (Tuple_map.find_opt kx acc) in
        if List.exists (fun k -> tuple_compare k ky = 0) cur then acc
        else Tuple_map.add kx (ky :: cur) acc)
      Tuple_map.empty inputs_list
  in
  { hidden; nb_runs = List.length inputs_list; seen }

type assessment = {
  runs : int;
  domain_size : int;
  pinned : int;
  confident_wrong : int;
  min_candidates : int;
  recovered_fraction : float;
}

let full_domain attrs =
  List.fold_left
    (fun acc (a : Module_privacy.attr) ->
      List.concat_map
        (fun tuple -> List.map (fun v -> tuple @ [ v ]) a.Module_privacy.domain)
        acc)
    [ [] ] attrs
  |> List.map Array.of_list

let assess table obs =
  let vi = visible_indices (Module_privacy.inputs table) obs.hidden in
  let vo = visible_indices (Module_privacy.outputs table) obs.hidden in
  let hidden_out_product =
    List.fold_left
      (fun acc (a : Module_privacy.attr) ->
        if List.mem a.Module_privacy.attr_name obs.hidden then
          acc * List.length a.Module_privacy.domain
        else acc)
      1 (Module_privacy.outputs table)
  in
  let domain = full_domain (Module_privacy.inputs table) in
  let runs = obs.nb_runs in
  let pinned, confident_wrong, min_candidates =
    List.fold_left
      (fun (pinned, wrong, mc) x ->
        let kx = project vi x in
        match Tuple_map.find_opt kx obs.seen with
        | None -> (pinned, wrong, mc) (* unconstrained input *)
        | Some outs ->
            let candidates = List.length outs * hidden_out_product in
            if candidates = 1 then begin
              (* No hidden output attribute and one visible output group:
                 the adversary's single guess is that group's tuple. *)
              let guess = List.hd outs in
              let truth = project vo (Module_privacy.lookup table x) in
              if tuple_compare guess truth = 0 then (pinned + 1, wrong, 1)
              else (pinned, wrong + 1, 1)
            end
            else (pinned, wrong, min mc candidates))
      (0, 0, max_int) domain
  in
  let domain_size = List.length domain in
  {
    runs;
    domain_size;
    pinned;
    confident_wrong;
    min_candidates = (if min_candidates = max_int then 0 else min_candidates);
    recovered_fraction = float_of_int pinned /. float_of_int domain_size;
  }

let recovered_fraction table ~hidden inputs_list =
  (assess table (observe table ~hidden inputs_list)).recovered_fraction
