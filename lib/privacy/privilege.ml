open Wfpriv_workflow
module Smap = Map.Make (String)

type level = int
type user = { name : string; level : level }

let user ?(name = "user") level = { name; level }

type t = { p_spec : Spec.t; effective : level Smap.t }

let make spec assignments =
  let declared =
    List.fold_left
      (fun acc (w, l) ->
        if l < 0 then invalid_arg "Privilege.make: negative level";
        if not (List.mem w (Spec.workflow_ids spec)) then
          invalid_arg (Printf.sprintf "Privilege.make: unknown workflow %s" w);
        Smap.add w l acc)
      Smap.empty assignments
  in
  let hierarchy = Hierarchy.of_spec spec in
  (* Effective level = max of declared levels along the ancestor chain;
     the root is public by definition. *)
  let effective =
    List.fold_left
      (fun acc w ->
        let chain = Hierarchy.ancestors hierarchy w in
        let l =
          List.fold_left
            (fun acc' a ->
              if a = Spec.root spec then acc'
              else max acc' (Option.value ~default:0 (Smap.find_opt a declared)))
            0 chain
        in
        Smap.add w l acc)
      Smap.empty (Spec.workflow_ids spec)
  in
  { p_spec = spec; effective }

let public spec = make spec []
let spec t = t.p_spec

let required_level t w =
  match Smap.find_opt w t.effective with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Privilege: unknown workflow %s" w)

let access_prefix t level =
  Spec.workflow_ids t.p_spec
  |> List.filter (fun w -> required_level t w <= level)

let access_view t level = View.of_prefix t.p_spec (access_prefix t level)

let access_exec_view t level exec =
  Exec_view.of_prefix exec (access_prefix t level)

let can_expand t level w = required_level t w <= level

let min_level_to_see t m =
  let hierarchy = Hierarchy.of_spec t.p_spec in
  let chain = Hierarchy.module_path t.p_spec hierarchy m in
  List.fold_left (fun acc w -> max acc (required_level t w)) 0 chain

let levels t =
  Smap.fold (fun _ l acc -> l :: acc) t.effective [ 0 ]
  |> List.sort_uniq compare
