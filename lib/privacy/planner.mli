(** Structural-privacy planning: hide a {e set} of reachability facts,
    choosing a mechanism per fact to maximise utility.

    The paper (Sec. 3) presents deletion and clustering as alternatives
    with dual failure modes — deletion destroys true facts, clustering
    fabricates false ones — and asks for optimisation that balances
    "privacy ... while preserving soundness and minimizing unnecessary
    loss of information". The planner scores both mechanisms for every
    target fact on the base graph and picks, per fact, the one minimising
    [alpha * facts_concealed_beyond_target + (1 - alpha) *
    facts_fabricated], where deletion conceals its collateral and
    clustering conceals its extra internal facts while fabricating its
    spurious ones. [alpha = 0] yields sound views (fabrication is the
    only cost, so deletion always wins its ties); [alpha = 1] minimises
    total concealment regardless of soundness.

    Chosen clusterings are merged (overlapping clusters unioned, convex
    closure re-taken) and deletions applied to the quotient, so a single
    published view hides every target. {!verify} re-checks the result
    against the final view — the planner's output is validated, not
    trusted. *)

type mechanism = Delete | Cluster

type decision = {
  target : Structural_privacy.fact;
  mechanism : mechanism;
  score_delete : float;  (** alpha-weighted cost of deleting *)
  score_cluster : float;  (** alpha-weighted cost of clustering *)
}

type plan = {
  decisions : decision list;  (** one per target, input order *)
  deleted_edges : (int * int) list;
  clustering : Structural_privacy.clustering;
      (** merged, convex, disjoint clusters *)
  view : Wfpriv_graph.Digraph.t;
      (** final published graph: quotient minus deleted edges *)
  rep : int -> int;  (** base node → view node *)
  facts_lost : int;
      (** collateral: true facts between nodes that remain {e distinct} in
          the view yet are no longer implied — unnecessary loss *)
  facts_hidden : int;
      (** true facts absorbed inside composites (endpoints share a
          cluster) — the intended concealment, not counted as loss *)
  facts_fabricated : int;  (** view facts false in the base *)
}

val plan :
  ?alpha:float ->
  ?force:mechanism ->
  Wfpriv_graph.Digraph.t ->
  Structural_privacy.fact list ->
  plan
(** [alpha] defaults to 0.5. [force] overrides the per-target choice with
    one mechanism (the all-deletion / all-clustering baselines of
    experiment E10). Raises [Invalid_argument] when a target does not
    hold in the base graph, on duplicate targets, or when
    [alpha ∉ [0,1]]. *)

val verify : Wfpriv_graph.Digraph.t -> plan -> bool
(** Every target is hidden in the final view: its endpoints share a
    cluster, or the view has no path between their representatives. *)
