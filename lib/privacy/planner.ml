module Digraph = Wfpriv_graph.Digraph
module Reachability = Wfpriv_graph.Reachability
module Mincut = Wfpriv_graph.Mincut

type mechanism = Delete | Cluster

type decision = {
  target : Structural_privacy.fact;
  mechanism : mechanism;
  score_delete : float;
  score_cluster : float;
}

type plan = {
  decisions : decision list;
  deleted_edges : (int * int) list;
  clustering : Structural_privacy.clustering;
  view : Digraph.t;
  rep : int -> int;
  facts_lost : int;
  facts_hidden : int;
  facts_fabricated : int;
}

(* Merge overlapping clusters and re-take convex closures until the
   clustering is disjoint and every cluster convex. Termination: each
   round either merges two clusters (count strictly decreases) or reaches
   a fixpoint. *)
let rec consolidate g clusters =
  let clusters = List.map (Structural_privacy.convex_closure g) clusters in
  let overlap a b = List.exists (fun x -> List.mem x b) a in
  let rec merge_round = function
    | [] -> None
    | c :: rest -> (
        match List.partition (overlap c) rest with
        | [], _ -> (
            match merge_round rest with
            | Some merged -> Some (c :: merged)
            | None -> None)
        | overlapping, disjoint ->
            Some
              ((List.sort_uniq compare (List.concat (c :: overlapping)))
              :: disjoint))
  in
  match merge_round clusters with
  | Some merged when List.length merged < List.length clusters ->
      consolidate g merged
  | Some merged -> merged
  | None -> clusters

let plan ?(alpha = 0.5) ?force g targets =
  if alpha < 0.0 || alpha > 1.0 then invalid_arg "Planner.plan: alpha";
  let sorted = List.sort_uniq compare targets in
  if List.length sorted <> List.length targets then
    invalid_arg "Planner.plan: duplicate targets";
  (* Score both mechanisms per target on the base graph. *)
  let decisions =
    List.map
      (fun target ->
        let d = Structural_privacy.hide_by_deletion g target in
        let c = Structural_privacy.hide_by_clustering g target in
        let score_delete =
          alpha *. float_of_int (List.length d.Structural_privacy.collateral)
        in
        let score_cluster =
          (alpha
          *. float_of_int (List.length c.Structural_privacy.internal_hidden - 1)
          )
          +. ((1.0 -. alpha)
             *. float_of_int (List.length c.Structural_privacy.spurious))
        in
        let mechanism =
          match force with
          | Some m -> m
          | None -> if score_delete <= score_cluster then Delete else Cluster
        in
        { target; mechanism; score_delete; score_cluster })
      targets
  in
  (* Build the merged clustering from the Cluster decisions. *)
  let cluster_seeds =
    List.filter_map
      (fun d ->
        if d.mechanism = Cluster then
          Some (Structural_privacy.convex_closure g [ fst d.target; snd d.target ])
        else None)
      decisions
  in
  let clustering =
    consolidate g cluster_seeds
    |> List.filter (fun c -> List.length c >= 2)
  in
  let view, rep =
    if clustering = [] then (Digraph.copy g, Fun.id)
    else Structural_privacy.quotient g clustering
  in
  (* Apply deletions on the evolving quotient view. *)
  let deleted = ref [] in
  List.iter
    (fun d ->
      if d.mechanism = Delete then begin
        let u = rep (fst d.target) and v = rep (snd d.target) in
        if u <> v && Reachability.reaches view u v then begin
          let cut = Mincut.min_cut view Mincut.uniform ~src:u ~dst:v in
          List.iter (fun (a, b) -> Digraph.remove_edge view a b) cut;
          deleted := !deleted @ cut
        end
      end)
    decisions;
  (* Final accounting against the base graph: split absorbed (same-rep)
     facts from genuinely lost external ones. *)
  let score = Utility.reachability_score ~base:g ~view ~map:rep in
  let base_facts = Reachability.closure_facts (Reachability.closure g) in
  let hidden =
    List.length (List.filter (fun (u, v) -> rep u = rep v) base_facts)
  in
  {
    decisions;
    deleted_edges = !deleted;
    clustering;
    view;
    rep;
    facts_lost = score.Utility.lost - hidden;
    facts_hidden = hidden;
    facts_fabricated = score.Utility.spurious;
  }

let verify g p =
  List.for_all
    (fun d ->
      let u, v = d.target in
      (if not (Reachability.reaches g u v) then
         invalid_arg "Planner.verify: target does not hold in the base");
      let ru = p.rep u and rv = p.rep v in
      ru = rv || not (Reachability.reaches p.view ru rv))
    p.decisions
