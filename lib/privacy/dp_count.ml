open Wfpriv_workflow

type query =
  | Module_ran of Ids.module_id
  | Data_flowed of string
  | Ran_before of Ids.module_id * Ids.module_id

let matches exec = function
  | Module_ran m -> Execution.nodes_of_module exec m <> []
  | Data_flowed name -> Execution.items_named exec name <> []
  | Ran_before (m1, m2) -> Provenance.executed_before exec m1 m2

let exact_count execs q =
  List.length (List.filter (fun e -> matches e q) execs)

let sensitivity _ = 1

let laplace ~uniform ~scale =
  if scale <= 0.0 then invalid_arg "Dp_count.laplace: scale <= 0";
  (* Inverse CDF: u uniform in (-1/2, 1/2], noise = -scale*sgn(u)*ln(1-2|u|). *)
  let u = uniform () -. 0.5 in
  let sign = if u < 0.0 then -1.0 else 1.0 in
  let magnitude = Float.max epsilon_float (1.0 -. (2.0 *. Float.abs u)) in
  -.scale *. sign *. log magnitude

let noisy_count ~uniform ~epsilon execs q =
  if epsilon <= 0.0 then invalid_arg "Dp_count.noisy_count: epsilon <= 0";
  let scale = float_of_int (sensitivity q) /. epsilon in
  float_of_int (exact_count execs q) +. laplace ~uniform ~scale

let expected_absolute_error ~epsilon =
  if epsilon <= 0.0 then invalid_arg "Dp_count.expected_absolute_error";
  1.0 /. epsilon
