open Wfpriv_workflow
module Digraph = Wfpriv_graph.Digraph

exception Unsupported of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let full_view_names spec m ~incoming =
  ignore (Spec.find_module spec m);
  let view = View.full spec in
  if not (View.is_visible view m) then
    fail "module %s is not atomic (not visible in the full expansion)"
      (Ids.module_name m);
  let g = View.graph view in
  let neighbours = if incoming then Digraph.pred g m else Digraph.succ g m in
  List.concat_map
    (fun n ->
      if incoming then View.edge_data view n m else View.edge_data view m n)
    neighbours
  |> List.sort_uniq compare

let input_names spec m = full_view_names spec m ~incoming:true
let output_names spec m = full_view_names spec m ~incoming:false

let tabulate spec semantics ~domains m =
  let in_names = input_names spec m in
  if in_names = [] then
    fail "module %s has no incoming dataflow to tabulate over"
      (Ids.module_name m);
  let domain_of name =
    match List.assoc_opt name domains with
    | Some d when d <> [] -> d
    | Some _ -> fail "empty domain declared for %S" name
    | None -> fail "no domain declared for input %S of %s" name (Ids.module_name m)
  in
  let in_attrs =
    List.map (fun n -> Module_privacy.attr n (domain_of n)) in_names
  in
  (* Enumerate the input product and run the semantics. *)
  let product =
    List.fold_left
      (fun acc (a : Module_privacy.attr) ->
        List.concat_map
          (fun tuple ->
            List.map (fun v -> tuple @ [ v ]) a.Module_privacy.domain)
          acc)
      [ [] ] in_attrs
  in
  let rows =
    List.map
      (fun tuple ->
        let named = List.combine in_names tuple in
        let outs = semantics m (List.sort compare named) in
        (Array.of_list tuple, List.sort compare outs))
      product
  in
  (* Output schema: names must agree across rows; domains inferred from
     the produced values (plus declared extras when available). *)
  let out_names =
    match rows with
    | (_, outs) :: rest ->
        let names = List.map fst outs in
        List.iter
          (fun (_, outs') ->
            if List.map fst outs' <> names then
              fail "module %s produces inconsistent output names"
                (Ids.module_name m))
          rest;
        names
    | [] -> assert false
  in
  let out_attrs =
    List.map
      (fun name ->
        let observed =
          List.map (fun (_, outs) -> List.assoc name outs) rows
          |> List.sort_uniq Data_value.compare
        in
        let declared = Option.value ~default:[] (List.assoc_opt name domains) in
        let domain =
          List.sort_uniq Data_value.compare (observed @ declared)
        in
        Module_privacy.attr name domain)
      out_names
  in
  Module_privacy.make_table ~module_id:m ~inputs:in_attrs ~outputs:out_attrs
    (List.map
       (fun (x, outs) ->
         (x, Array.of_list (List.map (fun n -> List.assoc n outs) out_names)))
       rows)

let network spec semantics ~domains ~private_modules =
  if private_modules = [] then
    invalid_arg "Spec_tables.network: no private modules";
  Module_privacy.make_network
    (List.map (fun m -> (m, tabulate spec semantics ~domains m)) private_modules)

let recommend_masks ?weights spec semantics ~domains ~private_modules ~gamma
    ~level =
  let net = network spec semantics ~domains ~private_modules in
  let hidden =
    if List.length (Module_privacy.network_attr_names net) <= 20 then
      Module_privacy.optimal_network_hiding ?weights net ~gamma
    else Module_privacy.greedy_network_hiding ?weights net ~gamma
  in
  Option.map
    (fun hidden ->
      List.filter_map
        (fun (m, table) ->
          let names =
            List.filter
              (fun h -> List.mem h (Module_privacy.attr_names table))
              hidden
          in
          if names = [] then None else Some (m, names, level))
        net.Module_privacy.tables)
    hidden
